// Ghostcells reproduces the paper's motivating scenario (Figure 1): a 2-D
// array partitioned block-block over a process grid, each process holding
// ghost cells around its block, so neighbouring sub-arrays overlap and the
// ghost-ring corners are written by four processes at once. The program
// shows the conflict structure first — Spec.Conflicts exposes the paper's
// P×P overlap matrix W and its greedy coloring (4 colors on the 2-D grid
// instead of column-wise's 2) — then checkpoints the array with each
// atomicity strategy and verifies the overlapped regions, all through the
// public atomio facade.
//
// Run: go run ./examples/ghostcells
package main

import (
	"fmt"
	"log"

	"atomio"
)

const (
	M, N   = 96, 96 // global array
	Px, Py = 3, 3   // process grid
	R      = 4      // ghost width (overlap)
)

func main() {
	const platform = "IBM SP"

	spec, err := atomio.New(
		atomio.Platform(platform),
		atomio.Array(M, N),
		atomio.Procs(Px*Py),
		atomio.Overlap(R),
		atomio.Pattern("block"),
		atomio.Verify(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Show the conflict structure first: the overlap matrix of the 3x3
	// ghost-cell grid and its greedy coloring.
	conflicts, err := spec.Conflicts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block-block %dx%d over a %dx%d grid, ghost width %d\n", M, N, Px, Py, R)
	fmt.Printf("overlap matrix W:\n%v\n", conflicts)
	fmt.Printf("greedy coloring: %v (%d I/O phases; column-wise needs only 2)\n\n",
		conflicts.Colors, conflicts.Phases)

	// Checkpoint with each strategy and verify.
	methods, err := atomio.Methods(platform)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range methods {
		spec.Strategy = name
		res, err := spec.Run()
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		status := "atomic"
		if !rep.Atomic() {
			status = "VIOLATED"
		}
		fmt.Printf("%-10s checkpoint: %s, %3d overlapped atoms (%5d bytes), virtual time %v\n",
			name, status, rep.Atoms, rep.OverlappedBytes, res.Makespan)
	}
}
