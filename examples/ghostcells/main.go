// Ghostcells reproduces the paper's motivating scenario (Figure 1): a 2-D
// array partitioned block-block over a process grid, each process holding
// ghost cells around its block, so neighbouring sub-arrays overlap and the
// ghost-ring corners are written by four processes at once. The program
// checkpoints the array with each atomicity strategy and verifies the
// overlapped regions, then shows what the paper's greedy coloring does with
// the 2-D conflict graph (4 colors instead of column-wise's 2).
//
// Run: go run ./examples/ghostcells
package main

import (
	"fmt"
	"log"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/harness"
	"atomio/internal/interval"
	"atomio/internal/mpi"
	"atomio/internal/mpiio"
	"atomio/internal/pfs"
	"atomio/internal/platform"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

const (
	M, N   = 96, 96 // global array
	Px, Py = 3, 3   // process grid
	R      = 4      // ghost width (overlap)
)

func main() {
	prof := platform.IBMSP()

	// Show the conflict structure first: the overlap matrix of the 3x3
	// ghost-cell grid and its greedy coloring.
	views := make([]interval.List, Px*Py)
	for rank := range views {
		piece, err := workload.BlockBlock(M, N, Px, Py, R, rank)
		if err != nil {
			log.Fatal(err)
		}
		views[rank] = interval.List(piece.Filetype.Flatten())
	}
	w := core.BuildOverlapMatrix(views)
	colors, numColors := core.GreedyColor(w)
	fmt.Printf("block-block %dx%d over a %dx%d grid, ghost width %d\n", M, N, Px, Py, R)
	fmt.Printf("overlap matrix W:\n%v\n", w)
	fmt.Printf("greedy coloring: %v (%d I/O phases; column-wise needs only 2)\n\n", colors, numColors)

	// Checkpoint with each strategy and verify.
	for _, strat := range harness.Methods(prof) {
		fs := pfs.MustNew(prof.PFSConfig(true))
		mgr := prof.NewLockManager()
		res, err := mpi.Run(prof.MPIConfig(Px*Py), func(comm *mpi.Comm) error {
			piece, err := workload.BlockBlock(M, N, Px, Py, R, comm.Rank())
			if err != nil {
				return err
			}
			f, err := mpiio.Open(comm, fs, mgr, "ghost.dat")
			if err != nil {
				return err
			}
			if err := f.SetView(0, datatype.Byte, piece.Filetype); err != nil {
				return err
			}
			if err := f.SetAtomicity(true); err != nil {
				return err
			}
			if err := f.SetStrategy(strat); err != nil {
				return err
			}
			buf := make([]byte, piece.BufBytes)
			verify.Fill(comm.Rank(), buf)
			if err := f.WriteAll(buf); err != nil {
				return err
			}
			return f.Close()
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := verify.Check(fs, "ghost.dat", views)
		if err != nil {
			log.Fatal(err)
		}
		status := "atomic"
		if !rep.Atomic() {
			status = "VIOLATED"
		}
		fmt.Printf("%-10s checkpoint: %s, %3d overlapped atoms (%5d bytes), virtual time %v\n",
			strat.Name(), status, rep.Atoms, rep.OverlappedBytes, res.MaxTime)
	}
}
