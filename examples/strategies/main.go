// Strategies compares the three atomicity implementations side by side on
// one workload and platform, the laptop-scale version of the paper's
// Figure 8: same column-wise overlapping write, bandwidth per strategy and
// process count, with atomicity verified on the file bytes for every cell.
//
// Run: go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"atomio/internal/harness"
	"atomio/internal/platform"
)

func main() {
	const (
		M, N = 1024, 8192 // 8 MB array
		R    = 32
	)
	prof := platform.IBMSP()
	procs := []int{2, 4, 8, 16}

	fmt.Printf("%s  column-wise %dx%d (8 MB), R=%d, all cells verified atomic\n\n", prof.Name, M, N, R)
	fmt.Printf("%-6s", "P")
	for _, s := range harness.Methods(prof) {
		fmt.Printf("%16s", s.Name())
	}
	fmt.Println()
	for _, p := range procs {
		fmt.Printf("%-6d", p)
		for _, strat := range harness.Methods(prof) {
			res, err := harness.Experiment{
				Platform:  prof,
				M:         M,
				N:         N,
				Procs:     p,
				Overlap:   R,
				Pattern:   harness.ColumnWise,
				Strategy:  strat,
				StoreData: true,
				Verify:    true,
			}.Run()
			if err != nil {
				log.Fatal(err)
			}
			if !res.Report.Atomic() {
				log.Fatalf("%s P=%d violated atomicity: %v", strat.Name(), p, res.Report.Violations)
			}
			fmt.Printf("%11.2f MB/s", res.BandwidthMBs)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Figure 8): locking worst and flat;")
	fmt.Println("ordering best; coloring in between, one barrier-separated phase per color")
}
