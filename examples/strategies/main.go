// Strategies compares the three atomicity implementations side by side on
// one workload and platform, the laptop-scale version of the paper's
// Figure 8: same column-wise overlapping write, bandwidth per strategy and
// process count, with atomicity verified on the file bytes for every cell.
// The whole comparison is driven through the public atomio facade:
// atomio.Methods lists the strategies the paper measures on the platform,
// and atomio.Run executes one verified cell per (P, strategy) pair.
//
// Run: go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"atomio"
)

func main() {
	const (
		M, N = 1024, 8192 // 8 MB array
		R    = 32
	)
	const platform = "IBM SP"
	procs := []int{2, 4, 8, 16}

	methods, err := atomio.Methods(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  column-wise %dx%d (8 MB), R=%d, all cells verified atomic\n\n", platform, M, N, R)
	fmt.Printf("%-6s", "P")
	for _, name := range methods {
		fmt.Printf("%16s", name)
	}
	fmt.Println()
	for _, p := range procs {
		fmt.Printf("%-6d", p)
		for _, name := range methods {
			res, err := atomio.Run(
				atomio.Platform(platform),
				atomio.Array(M, N),
				atomio.Procs(p),
				atomio.Overlap(R),
				atomio.Strategy(name),
				atomio.Verify(true),
			)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Report.Atomic() {
				log.Fatalf("%s P=%d violated atomicity: %v", name, p, res.Report.Violations)
			}
			fmt.Printf("%11.2f MB/s", res.BandwidthMBs)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Figure 8): locking worst and flat;")
	fmt.Println("ordering best; coloring in between, one barrier-separated phase per color")
}
