// Checkpoint models the paper's introduction: a long-running simulation
// that "outputs data periodically for the purposes of check-pointing as
// well as progressive visualization". Each iteration evolves a column-wise
// partitioned field (with overlapping boundary columns) and writes it to a
// fresh checkpoint file in MPI atomic mode. The example reports how the
// choice of atomicity strategy changes the cumulative virtual time spent in
// I/O across checkpoints — the cost a production code would actually feel.
//
// Run: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"atomio/internal/datatype"
	"atomio/internal/harness"
	"atomio/internal/mpi"
	"atomio/internal/mpiio"
	"atomio/internal/pfs"
	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/workload"
)

const (
	M, N        = 512, 8192 // field size in bytes (4 MB)
	P           = 8
	R           = 16 // overlapping boundary columns
	checkpoints = 5
	computeCost = 50 * sim.Millisecond // simulated compute between dumps
)

func main() {
	prof := platform.Cplant() // the paper's lockless platform
	fmt.Printf("periodic checkpointing on %s: %d dumps of a %dx%d field, P=%d, R=%d\n\n",
		prof.Name, checkpoints, M, N, P, R)

	for _, strat := range harness.Methods(prof) {
		fs := pfs.MustNew(prof.PFSConfig(false))
		res, err := mpi.Run(prof.MPIConfig(P), func(comm *mpi.Comm) error {
			piece, err := workload.ColumnWise(M, N, P, R, comm.Rank())
			if err != nil {
				return err
			}
			buf := make([]byte, piece.BufBytes)
			var ioTime sim.VTime
			for step := 0; step < checkpoints; step++ {
				// Evolve the field (virtual compute, perfectly parallel).
				comm.Clock().Advance(computeCost)

				name := fmt.Sprintf("ckpt-%03d.dat", step)
				f, err := mpiio.Open(comm, fs, nil, name)
				if err != nil {
					return err
				}
				if err := f.SetView(0, datatype.Byte, piece.Filetype); err != nil {
					return err
				}
				if err := f.SetAtomicity(true); err != nil {
					return err
				}
				if err := f.SetStrategy(strat); err != nil {
					return err
				}
				start := comm.Now()
				if err := f.WriteAll(buf); err != nil {
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				ioTime += comm.Now() - start
			}
			if comm.Rank() == 0 {
				fmt.Printf("%-10s rank 0 spent %v of virtual time in checkpoint I/O (%d dumps)\n",
					strat.Name(), ioTime, checkpoints)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		total := checkpoints * int64(M) * int64(N)
		ioBW := float64(total) / (1 << 20) / (res.MaxTime - checkpoints*computeCost).Seconds()
		fmt.Printf("%-10s makespan %v, effective checkpoint bandwidth %.2f MB/s\n\n",
			strat.Name(), res.MaxTime, ioBW)
	}
	fmt.Println("(locking is unavailable on Cplant/ENFS, exactly as in the paper's §4)")
}
