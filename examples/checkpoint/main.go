// Checkpoint models the paper's introduction: a long-running simulation
// that "outputs data periodically for the purposes of check-pointing as
// well as progressive visualization". Each iteration evolves a column-wise
// partitioned field (with overlapping boundary columns) and writes it to a
// fresh checkpoint file in MPI atomic mode — the facade's Checkpoints and
// Compute options drive the whole loop inside one simulation, so server
// queues and caches carry over between dumps. The example reports how the
// choice of atomicity strategy changes the cumulative virtual time spent in
// I/O across checkpoints — the cost a production code would actually feel.
//
// Run: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"time"

	"atomio"
)

const (
	M, N        = 512, 8192 // field size in bytes (4 MB)
	P           = 8
	R           = 16 // overlapping boundary columns
	checkpoints = 5
	computeCost = 50 * time.Millisecond // simulated compute between dumps
)

func main() {
	const platform = "Cplant" // the paper's lockless platform
	fmt.Printf("periodic checkpointing on %s: %d dumps of a %dx%d field, P=%d, R=%d\n\n",
		platform, checkpoints, M, N, P, R)

	methods, err := atomio.Methods(platform)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range methods {
		res, err := atomio.Run(
			atomio.Platform(platform),
			atomio.Array(M, N),
			atomio.Procs(P),
			atomio.Overlap(R),
			atomio.Strategy(name),
			atomio.Checkpoints(checkpoints),
			atomio.Compute(computeCost),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s slowest rank spent %v of virtual time in checkpoint I/O (%d dumps)\n",
			name, res.IOTime, checkpoints)
		compute := atomio.VTime(checkpoints * computeCost)
		ioBW := float64(res.ArrayBytes) / (1 << 20) / (res.Makespan - compute).Seconds()
		fmt.Printf("%-10s makespan %v, effective checkpoint bandwidth %.2f MB/s\n\n",
			name, res.Makespan, ioBW)
	}
	fmt.Println("(locking is unavailable on Cplant/ENFS, exactly as in the paper's §4)")
}
