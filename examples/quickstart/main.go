// Quickstart mirrors the paper's Figure 4 code fragment line for line: each
// process builds a column-wise subarray filetype, sets it as its file view,
// switches the file to MPI atomic mode, and performs one collective write —
// the minimal concurrent overlapping I/O program.
//
//	MPI fragment (Figure 4)                    This program
//	-----------------------                    ------------
//	MPI_File_open(comm, ...)                   mpiio.Open(comm, fs, mgr, ...)
//	MPI_File_set_atomicity(fh, 1)              f.SetAtomicity(true)
//	MPI_Type_create_subarray(2, sizes,         datatype.NewSubarray(sizes,
//	    sub_sizes, starts, MPI_ORDER_C,            subSizes, starts,
//	    MPI_CHAR, &filetype)                       datatype.Byte)
//	MPI_File_set_view(fh, disp, MPI_CHAR,      f.SetView(0, datatype.Byte,
//	    filetype, "native", info)                  filetype)
//	MPI_File_write_all(fh, buf, ...)           f.WriteAll(buf)
//	MPI_File_close(&fh)                        f.Close()
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"atomio/internal/datatype"
	"atomio/internal/interval"
	"atomio/internal/mpi"
	"atomio/internal/mpiio"
	"atomio/internal/pfs"
	"atomio/internal/platform"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

func main() {
	const (
		M, N = 64, 256 // global array, bytes
		P    = 4       // processes
		R    = 8       // overlapped columns
	)
	prof := platform.Origin2000()
	fs := pfs.MustNew(prof.PFSConfig(true))
	mgr := prof.NewLockManager()

	views := make([]interval.List, P)
	_, err := mpi.Run(prof.MPIConfig(P), func(comm *mpi.Comm) error {
		// The Figure 4 fragment, reading top to bottom.
		f, err := mpiio.Open(comm, fs, mgr, "quickstart.dat")
		if err != nil {
			return err
		}
		if err := f.SetAtomicity(true); err != nil {
			return err
		}
		piece, err := workload.ColumnWise(M, N, P, R, comm.Rank())
		if err != nil {
			return err
		}
		views[comm.Rank()] = interval.List(piece.Filetype.Flatten())
		if err := f.SetView(0, datatype.Byte, piece.Filetype); err != nil {
			return err
		}
		buf := make([]byte, piece.BufBytes)
		verify.Fill(comm.Rank(), buf)
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := verify.Check(fs, "quickstart.dat", views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote a %dx%d array column-wise from %d processes with %d overlapped columns\n",
		M, N, P, R)
	fmt.Printf("overlapped atoms: %d (%d bytes)\n", rep.Atoms, rep.OverlappedBytes)
	if rep.Atomic() {
		fmt.Println("MPI atomicity: satisfied — every overlapped region holds one writer's data")
	} else {
		fmt.Printf("MPI atomicity: VIOLATED: %v\n", rep.Violations)
	}
}
