// Quickstart mirrors the paper's Figure 4 code fragment through the public
// atomio facade: each process builds a column-wise subarray filetype, sets
// it as its file view, switches the file to MPI atomic mode, and performs
// one collective write — the minimal concurrent overlapping I/O program.
// The facade resolves each option into the internal machinery the MPI
// fragment would touch:
//
//	MPI fragment (Figure 4)                    Facade option
//	-----------------------                    -------------
//	MPI_Comm of P ranks                        atomio.Procs(4)
//	MPI_Type_create_subarray(2, sizes, ...)    atomio.Array(64, 256) with
//	    per-rank column blocks                     atomio.Overlap(8)
//	MPI_File_set_view(fh, disp, ...)           derived from the pattern
//	MPI_File_set_atomicity(fh, 1)              always on; enforced by
//	                                               atomio.Strategy("coloring")
//	MPI_File_write_all(fh, buf, ...)           atomio.Run(...)
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"atomio"
)

func main() {
	const (
		M, N = 64, 256 // global array, bytes
		P    = 4       // processes
		R    = 8       // overlapped columns
	)
	res, err := atomio.Run(
		atomio.Platform("Origin2000"),
		atomio.Array(M, N),
		atomio.Procs(P),
		atomio.Overlap(R),
		atomio.Strategy("coloring"),
		atomio.Verify(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote a %dx%d array column-wise from %d processes with %d overlapped columns\n",
		M, N, P, R)
	fmt.Printf("overlapped atoms: %d (%d bytes)\n", res.Report.Atoms, res.Report.OverlappedBytes)
	if res.Report.Atomic() {
		fmt.Println("MPI atomicity: satisfied — every overlapped region holds one writer's data")
	} else {
		fmt.Printf("MPI atomicity: VIOLATED: %v\n", res.Report.Violations)
	}
}
