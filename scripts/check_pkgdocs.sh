#!/bin/sh
# check_pkgdocs.sh fails the build if any internal/* package (or cmd/*
# command) is missing a package-level godoc comment, so `go doc ./...`
# keeps reading as a tour of the system. A package comment is a comment
# block starting "// Package <name>" (or "// Command <name>" for mains)
# in one of the package's non-test Go files.
set -eu

cd "$(dirname "$0")/.."

fail=0
for pkg in $(go list ./internal/... ./cmd/...); do
    dir=$(go list -f '{{.Dir}}' "$pkg")
    files=$(go list -f '{{range .GoFiles}}{{.}} {{end}}' "$pkg")
    found=0
    for f in $files; do
        if grep -Eq '^// (Package|Command) ' "$dir/$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "check_pkgdocs: $pkg has no package comment" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "check_pkgdocs: add a '// Package <name> ...' comment to each package above" >&2
    exit 1
fi
echo "check_pkgdocs: all packages documented"
