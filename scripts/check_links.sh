#!/bin/sh
# check_links.sh verifies every relative markdown link in the repo's
# documentation points at a file or directory that exists. External
# (http/https/mailto) links are skipped — CI has no network guarantee —
# and intra-page anchors are checked only for having a target file.
set -eu

cd "$(dirname "$0")/.."

docs="README.md ROADMAP.md PAPER.md PAPERS.md CHANGES.md ISSUE.md"
for f in docs/*.md; do
    [ -e "$f" ] && docs="$docs $f"
done

fail=0
for doc in $docs; do
    [ -e "$doc" ] || continue
    # Pull out ](target) link targets, one per line.
    targets=$(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//' || true)
    for t in $targets; do
        case "$t" in
        http://*|https://*|mailto:*) continue ;;
        esac
        # Strip an anchor suffix; a bare "#anchor" refers to the doc itself.
        path=${t%%#*}
        [ -n "$path" ] || continue
        base=$(dirname "$doc")
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "check_links: $doc links to missing $t" >&2
            fail=1
        fi
    done
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_links: all relative links resolve"
