package main

import (
	"io"
	"strings"
	"testing"
)

// TestParseFlags tables the figure8 command line: well-formed inputs
// produce a config, malformed inputs produce a diagnostic under the
// binary's name.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		want string // diagnostic substring for the failing cases
	}{
		{"empty", nil, true, ""},
		{"full grid knobs", []string{"-platform", "Cplant", "-size", "32 MB", "-store", "-v",
			"-workers", "2", "-progress", "-json", "a.json", "-csv", "b.csv",
			"-lockshards", "4", "-servers", "7", "-sharedstore"}, true, ""},
		{"scale", []string{"-scale", "-workers", "2"}, true, ""},
		{"scale to 16k", []string{"-scale", "-maxp", "16384"}, true, ""},
		{"scale lowered", []string{"-scale", "-maxp", "64"}, true, ""},
		{"goroutine engine", []string{"-engine", "goroutine"}, true, ""},
		{"negative lockshards", []string{"-lockshards", "-1"}, false, "-lockshards must be non-negative"},
		{"negative servers", []string{"-servers", "-1"}, false, "-servers must be non-negative"},
		{"non-numeric workers", []string{"-workers", "x"}, false, "invalid value"},
		{"two modes", []string{"-scale", "-shardsweep"}, false, "mutually exclusive"},
		{"shardsweep with lockshards", []string{"-shardsweep", "-lockshards", "2"}, false, "would be ignored"},
		{"shardsweep with servers", []string{"-shardsweep", "-servers", "3"}, false, "would be ignored"},
		{"degraded with sharedstore", []string{"-degraded", "-sharedstore"}, false, "would be ignored"},
		{"scale with platform", []string{"-scale", "-platform", "Cplant"}, false, "incompatible"},
		{"maxp without scale", []string{"-maxp", "2048"}, false, "-maxp is only meaningful with -scale"},
		{"maxp too small", []string{"-scale", "-maxp", "32"}, false, "-maxp must be at least 64"},
		{"maxp too large", []string{"-scale", "-maxp", "32768"}, false, "-maxp must be at most 16384"},
		{"non-numeric maxp", []string{"-scale", "-maxp", "x"}, false, "invalid value"},
		{"fleet", []string{"-fleet"}, true, ""},
		{"fleet seeded", []string{"-fleet", "-seed", "42", "-cells", "500", "-workers", "4"}, true, ""},
		{"fleet with engine", []string{"-fleet", "-engine", "goroutine", "-sharedstore", "-lockshards", "2"}, true, ""},
		{"fleet with scale", []string{"-fleet", "-scale"}, false, "mutually exclusive"},
		{"fleet with degraded", []string{"-fleet", "-degraded"}, false, "mutually exclusive"},
		{"fleet with servers", []string{"-fleet", "-servers", "4"}, false, "fault surface"},
		{"fleet with platform", []string{"-fleet", "-platform", "Cplant"}, false, "incompatible"},
		{"fleet with store", []string{"-fleet", "-store"}, false, "incompatible"},
		{"seed without fleet", []string{"-seed", "2"}, false, "only meaningful with -fleet"},
		{"cells without fleet", []string{"-cells", "50"}, false, "only meaningful with -fleet"},
		{"zero cells", []string{"-fleet", "-cells", "0"}, false, "-cells must be at least 1"},
		{"non-numeric seed", []string{"-fleet", "-seed", "x"}, false, "invalid value"},
		{"unknown engine", []string{"-engine", "threads"}, false, "-engine"},
		{"empty engine keeps default", []string{"-engine", ""}, true, ""},
		{"unknown flag", []string{"-nosuch"}, false, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			cfg, err := parseFlags(tc.args, &buf)
			if tc.ok {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v; stderr %q", tc.args, err, buf.String())
				}
				if cfg == nil {
					t.Fatal("no config")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v): want error", tc.args)
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Errorf("diagnostic %q missing %q", buf.String(), tc.want)
			}
		})
	}
}

// TestParseFlagsBinds checks the parsed values reach the config.
func TestParseFlagsBinds(t *testing.T) {
	cfg, err := parseFlags([]string{"-platform", "IBM SP", "-size", "1 GB", "-store",
		"-workers", "5", "-lockshards", "2", "-servers", "6", "-sharedstore"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.platform != "IBM SP" || cfg.size != "1 GB" || !cfg.store ||
		cfg.out.Workers != 5 || cfg.model.LockShards != 2 ||
		cfg.model.Servers != 6 || !cfg.model.SharedStore {
		t.Errorf("config = %+v out=%+v model=%+v", cfg, cfg.out, cfg.model)
	}

	cfg, err = parseFlags([]string{"-scale", "-maxp", "4096", "-engine", "goroutine"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.scale || cfg.maxp != 4096 || cfg.model.Engine != "goroutine" {
		t.Errorf("scale config = %+v model=%+v", cfg, cfg.model)
	}

	cfg, err = parseFlags([]string{"-fleet", "-seed", "9", "-cells", "64"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.fleet || cfg.seed != 9 || cfg.cells != 64 {
		t.Errorf("fleet config = %+v", cfg)
	}
}
