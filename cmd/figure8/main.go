// Command figure8 regenerates the paper's Figure 8: aggregate write
// bandwidth of the column-wise concurrent overlapping write for 4, 8 and 16
// processes, per atomicity strategy, on the three simulated platforms at
// the three array sizes (32 MB, 128 MB, 1 GB).
//
// Usage:
//
//	figure8 [-platform name] [-size label] [-store] [-v]
//
// Without flags all nine panels run data-less (time accounting only), which
// keeps the 1 GB panels memory-flat.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomio/internal/harness"
)

func main() {
	platformFlag := flag.String("platform", "", "run only this platform (Cplant, Origin2000, IBM SP)")
	sizeFlag := flag.String("size", "", "run only this array size (32 MB, 128 MB, 1 GB)")
	store := flag.Bool("store", false, "materialize file bytes (needs memory for large sizes)")
	verbose := flag.Bool("v", false, "also print virtual makespans and written volumes")
	flag.Parse()

	ran := 0
	for _, panel := range harness.Figure8Panels() {
		if *platformFlag != "" && panel.Platform.Name != *platformFlag {
			continue
		}
		if *sizeFlag != "" && panel.Label != *sizeFlag {
			continue
		}
		series, err := harness.RunPanel(panel, *store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure8: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.RenderPanel(panel, series))
		if *verbose {
			for _, s := range series {
				fmt.Printf("  # %-10s", s.Method)
				for _, p := range harness.Figure8Procs {
					fmt.Printf("  P%-2d %8.1fms %5dMB", p, s.MakespanMS[p], s.Written[p]>>20)
				}
				fmt.Println()
			}
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "figure8: no panels matched the filters")
		os.Exit(1)
	}
}
