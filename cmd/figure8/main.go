// Command figure8 regenerates the paper's Figure 8: aggregate write
// bandwidth of the column-wise concurrent overlapping write for 4, 8 and 16
// processes, per atomicity strategy, on the three simulated platforms at
// the three array sizes (32 MB, 128 MB, 1 GB).
//
// Usage:
//
//	figure8 [-platform name] [-size label] [-store] [-v]
//	        [-workers N] [-progress] [-json file] [-csv file]
//	        [-scale] [-maxp P] [-engine name] [-lockshards S]
//	        [-shardsweep] [-servers N] [-sharedstore] [-degraded]
//	        [-fleet] [-seed S] [-cells N]
//	        [-trace-out file] [-trace-limit N] [-metrics]
//
// Without flags all nine panels run data-less (time accounting only), which
// keeps the 1 GB panels memory-flat. Cells run concurrently on a worker
// pool; every cell is an independent virtual-time simulation, so -workers
// changes wall-clock time only, never the reported bandwidths.
//
// With -scale the command runs the large-P scaling grid instead (process
// counts up to 1024 with non-contiguous interleaved views, see
// atomio.Scaling) and prints one row per cell; -json emits the same
// atomio.bench/v1 records as the Figure 8 grid. -maxp raises (or lowers)
// the grid's process-count ceiling: past 1024 the grid continues into the
// locking-only extended points (2048–16384 ranks, see atomio.ScalingTo),
// the regime the single-threaded event-loop engine (-engine eventloop, the
// default) exists for.
//
// -lockshards S partitions every cell's lock-manager table across S offset
// stripes (see internal/lock). Reported numbers are byte-identical for any
// S — sharding changes host-side lock-service concurrency only — which
// makes the flag a live determinism check. -shardsweep runs the dedicated
// shard sweep (atomio.ShardSweep): one contended locking cell per shard
// count, printing virtual bandwidth (constant) next to wall time.
//
// -servers N overrides every cell's simulated I/O-server count (a real
// model parameter: reported numbers change with it). -sharedstore runs
// every cell on the pre-striping shared file store instead of per-server
// stores; output is byte-identical either way, so diffing a -sharedstore
// run against a default run is a live oracle check of the striped storage
// subsystem. -degraded runs the degraded-server scenario grid instead
// (atomio.Degraded): healthy baseline, one slow server, a hot server
// absorbing skewed affinity, and a server-count rebalance, printing each
// cell's bandwidth next to its hottest server's queue occupancy and byte
// share; the emitted records carry per-server stats columns.
//
// -fleet runs the seeded failure-injection fleet instead (atomio.Fleet):
// -cells randomized (platform × strategy × pattern × fault-script ×
// recovery) cells drawn from -seed, with cell 0 a pinned negative control
// that is torn by construction. Every cell verifies its file content and
// prints its atomicity verdict; the run then applies the fleet gate (no
// recovery-enabled cell torn, at least one torn cell overall). On a gate
// failure the offending cell is shrunk to a minimal reproducer and printed
// before exiting non-zero. Fault decisions are pure functions of virtual
// time, so the whole report — verdicts included — is byte-identical across
// runs and engines for a fixed (seed, cells) pair.
//
// -trace-out records every cell's structured virtual-time event stream and
// writes one trace file per cell: a ".json" path gets the Chrome
// trace-event format (open it at ui.perfetto.dev), any other extension gets
// atomio.trace/v1 JSONL (the format cmd/atomtrace consumes). The stream is
// byte-identical across engines, worker counts and lock-shard counts.
// -trace-limit bounds per-actor event memory for large-P cells. -metrics
// alone records the metrics registry — message counts, queue depths, lock
// waits — into the emitted records without keeping event streams.
//
// Flags are declared through the shared internal/cli layer; grids are
// resolved and executed by the public atomio facade.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"atomio"
	"atomio/internal/cli"
	"atomio/internal/harness"
)

// config is the parsed command line.
type config struct {
	platform   string
	size       string
	store      bool
	verbose    bool
	scale      bool
	maxp       int
	shardSweep bool
	degraded   bool
	fleet      bool
	seed       uint64
	cells      int
	out        *cli.Output
	model      *cli.Model
	trace      *cli.Trace
}

// parseFlags parses and validates the command line, printing diagnostics
// to stderr.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	app := cli.New("figure8")
	app.SetOutput(stderr)
	cfg := &config{}
	platformFlag := app.Platform("", "run only this platform (Cplant, Origin2000, IBM SP)")
	sizeFlag := app.Flags.String("size", "", "run only this array size (32 MB, 128 MB, 1 GB)")
	app.Flags.BoolVar(&cfg.store, "store", false, "materialize file bytes (needs memory for large sizes)")
	app.Flags.BoolVar(&cfg.verbose, "v", false, "also print virtual makespans and written volumes")
	app.Flags.BoolVar(&cfg.scale, "scale", false, "run the large-P scaling grid instead of Figure 8")
	app.Flags.IntVar(&cfg.maxp, "maxp", 1024,
		"largest process count of the -scale grid (past 1024: locking-only extended points up to 16384)")
	app.Flags.BoolVar(&cfg.shardSweep, "shardsweep", false, "run the lock-shard sweep instead of Figure 8")
	app.Flags.BoolVar(&cfg.degraded, "degraded", false, "run the degraded-server scenario grid instead of Figure 8")
	app.Flags.BoolVar(&cfg.fleet, "fleet", false, "run the seeded failure-injection fleet instead of Figure 8")
	app.Flags.Uint64Var(&cfg.seed, "seed", 1, "fleet PRNG seed; (seed, cells) reproduces the fleet exactly")
	app.Flags.IntVar(&cfg.cells, "cells", 200, "fleet cell count, including the pinned negative control")
	cfg.out = app.Output(true)
	// -store clamps the worker count (see runFigure8); say so in the help.
	app.Flags.Lookup("workers").Usage = "concurrent cells (0 = all CPUs, or 1 when -store is set)"
	cfg.model = app.Model()
	cfg.trace = app.Trace()
	app.Check(func() error {
		exclusive := 0
		for _, f := range []bool{cfg.scale, cfg.shardSweep, cfg.degraded, cfg.fleet} {
			if f {
				exclusive++
			}
		}
		if exclusive > 1 {
			return errors.New("-scale, -shardsweep, -degraded and -fleet are mutually exclusive")
		}
		if cfg.shardSweep && cfg.model.LockShards != 0 {
			return errors.New("-shardsweep sweeps its own shard counts; -lockshards would be ignored")
		}
		if cfg.shardSweep && (cfg.model.Servers != 0 || cfg.model.SharedStore) {
			return errors.New("-shardsweep fixes its own cell; -servers and -sharedstore would be ignored")
		}
		if cfg.degraded && (cfg.model.Servers != 0 || cfg.model.SharedStore || cfg.model.LockShards != 0) {
			return errors.New("-degraded fixes its own scenarios; -servers, -sharedstore and -lockshards would be ignored")
		}
		if cfg.fleet && cfg.model.Servers != 0 {
			return errors.New("-fleet fixes two I/O servers per cell; -servers would change the fault surface")
		}
		if (cfg.seed != 1 || cfg.cells != 200) && !cfg.fleet {
			return errors.New("-seed and -cells are only meaningful with -fleet")
		}
		if cfg.cells < 1 {
			return fmt.Errorf("-cells must be at least 1 (the negative control), got %d", cfg.cells)
		}
		if cfg.scale || cfg.shardSweep || cfg.degraded || cfg.fleet {
			// These grids fix their own platform, shapes and data mode;
			// reject flags that would otherwise be silently ignored.
			if *platformFlag != "" || *sizeFlag != "" || cfg.store || cfg.verbose {
				return errors.New("-scale/-shardsweep/-degraded/-fleet are incompatible with -platform, -size, -store and -v")
			}
		}
		if cfg.maxp != 1024 && !cfg.scale {
			return errors.New("-maxp is only meaningful with -scale")
		}
		if cfg.maxp < 64 {
			return fmt.Errorf("-maxp must be at least 64 (the smallest scaling point), got %d", cfg.maxp)
		}
		if cfg.maxp > 16384 {
			return fmt.Errorf("-maxp must be at most 16384 (the largest scaling point), got %d", cfg.maxp)
		}
		return nil
	})
	if err := app.Parse(args); err != nil {
		return nil, err
	}
	cfg.platform = *platformFlag
	cfg.size = *sizeFlag
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.ExitCode(err))
	}
	switch {
	case cfg.shardSweep:
		runShardSweep(cfg)
	case cfg.degraded:
		runDegraded(cfg)
	case cfg.fleet:
		runFleet(cfg)
	case cfg.scale:
		runScaling(cfg)
	default:
		runFigure8(cfg)
	}
}

// runFigure8 executes the (possibly narrowed) Figure 8 grid and renders
// the nine panels.
func runFigure8(cfg *config) {
	grid := atomio.Figure8()
	grid.StoreData = cfg.store
	cfg.model.Apply(&grid)
	var err error
	if cfg.platform != "" {
		if grid, err = grid.WithPlatform(cfg.platform); err != nil {
			fatal(err)
		}
	}
	if cfg.size != "" {
		if grid, err = grid.WithSize(cfg.size); err != nil {
			fatal(err)
		}
	}

	// Materialized runs hold each in-flight array's bytes in memory; the
	// 1 GB cells would multiply that by the worker count, so -store runs
	// one cell at a time unless the user explicitly asks for more.
	if cfg.store && cfg.out.Workers == 0 {
		cfg.out.Workers = 1
	}
	cells, err := grid.Cells()
	if err != nil {
		fatal(err)
	}
	results := runCells(cells, cfg)

	for _, size := range grid.Sizes {
		for _, name := range grid.Platforms {
			prof, err := atomio.PlatformByName(name)
			if err != nil {
				fatal(err)
			}
			panel := harness.Panel{Platform: prof, N: size.N, Label: size.Label}
			series := panelSeries(panel, results)
			fmt.Print(harness.RenderPanel(panel, series))
			if cfg.verbose {
				for _, s := range series {
					fmt.Printf("  # %-10s", s.Method)
					for _, p := range harness.Figure8Procs {
						fmt.Printf("  P%-2d %8.1fms %5dMB", p, s.MakespanMS[p], s.Written[p]>>20)
					}
					fmt.Println()
				}
			}
			fmt.Println()
		}
	}
}

// runCells executes cells with the shared progress/emit/error handling the
// grids use, exiting non-zero on any cell failure.
func runCells(cells []atomio.Cell, cfg *config) []atomio.CellResult {
	cfg.trace.ApplyCells(cells)
	results := atomio.RunGrid(cells, cfg.out.RunOptions("figure8"))
	if err := atomio.FirstErr(results); err != nil {
		fatal(err)
	}
	if err := atomio.EmitFiles(cfg.out.JSON, cfg.out.CSV, results); err != nil {
		fatal(err)
	}
	if err := cfg.trace.Write(results); err != nil {
		fatal(err)
	}
	return results
}

// runScaling executes the large-P scaling grid and prints one row per cell.
func runScaling(cfg *config) {
	cells := atomio.ScalingTo(cfg.maxp)
	cfg.model.ApplyCells(cells)
	results := runCells(cells, cfg)
	fmt.Printf("%-44s %10s %12s %12s\n", "cell", "P", "vMB/s", "vmakespan")
	for _, r := range results {
		res := r.Result
		fmt.Printf("%-44s %10d %12.2f %12s\n",
			r.Cell.ID, r.Cell.Experiment.Procs, res.BandwidthMBs, res.Makespan)
	}
}

// runShardSweep executes the lock-shard sweep: one contended locking cell
// per shard count. The virtual column is constant across rows — the
// sharded table's determinism contract — while wall time tracks the host.
func runShardSweep(cfg *config) {
	results := runCells(atomio.ShardSweep(), cfg)
	fmt.Printf("%-44s %8s %12s %12s %12s\n", "cell", "shards", "vMB/s", "vmakespan", "wall")
	for _, r := range results {
		res := r.Result
		fmt.Printf("%-44s %8d %12.2f %12s %12s\n",
			r.Cell.ID, r.Cell.Experiment.LockShards, res.BandwidthMBs, res.Makespan, r.Wall.Round(1e6))
	}
}

// runDegraded executes the degraded-server scenario grid and prints one row
// per cell with a per-server summary: the hottest server's queue occupancy
// (busy time over the cell's makespan) and its share of the bytes moved —
// the columns where a slow or hot server shows up.
func runDegraded(cfg *config) {
	results := runCells(atomio.Degraded(), cfg)
	fmt.Printf("%-44s %8s %12s %12s %10s %10s\n",
		"cell", "servers", "vMB/s", "vmakespan", "hot busy", "hot bytes")
	for _, r := range results {
		res := r.Result
		hot := atomio.SummarizeServerStats(res.ServerStats, res.Makespan)
		fmt.Printf("%-44s %8d %12.2f %12s %9.1f%% %9.1f%%\n",
			r.Cell.ID, len(res.ServerStats), res.BandwidthMBs, res.Makespan,
			hot.MaxOccupancy*100, hot.MaxByteShare*100)
	}
}

// shrinkBudget bounds the probe runs a gate-failure reproducer may spend;
// fleet cells are small, so forty re-runs stay well under a minute.
const shrinkBudget = 40

// runFleet executes the seeded failure-injection fleet, prints one verdict
// row per cell, and applies the fleet gate. The report carries no wall
// times or engine names, so a fixed (seed, cells) pair prints
// byte-identically across runs and engines — diffing two fleet runs is a
// live determinism check. On gate failure the offending cell is shrunk to
// a minimal reproducer and the command exits non-zero.
func runFleet(cfg *config) {
	cells := atomio.Fleet(cfg.seed, cfg.cells)
	// The fleet pins its own server count (the fault surface), so the model
	// group applies piecewise: the output-invariant knobs pass through, and
	// -servers was rejected at flag time.
	for i := range cells {
		cells[i].Experiment.LockShards = cfg.model.LockShards
		cells[i].Experiment.SharedStore = cfg.model.SharedStore
	}
	if err := atomio.ApplyEngine(cells, cfg.model.Engine); err != nil {
		fatal(err)
	}
	cfg.trace.ApplyCells(cells)
	results := atomio.RunGrid(cells, cfg.out.RunOptions("figure8"))
	if err := atomio.EmitFiles(cfg.out.JSON, cfg.out.CSV, results); err != nil {
		fatal(err)
	}
	if err := cfg.trace.Write(results); err != nil {
		fatal(err)
	}

	fmt.Printf("fleet: seed %d, %d cells\n\n", cfg.seed, len(results))
	fmt.Printf("%-64s %s\n", "cell", "verdict")
	counts := make(map[atomio.Verdict]int)
	failed := 0
	for _, r := range results {
		verdict := "ERROR"
		if r.Err != nil {
			failed++
		} else {
			verdict = string(r.Result.Verdict)
			counts[r.Result.Verdict]++
		}
		fmt.Printf("%-64s %s\n", r.Cell.ID, verdict)
	}
	fmt.Printf("\nverdicts: %d %s, %d %s, %d %s",
		counts[atomio.Serializable], atomio.Serializable,
		counts[atomio.RecoveredSerializable], atomio.RecoveredSerializable,
		counts[atomio.Torn], atomio.Torn)
	if failed > 0 {
		fmt.Printf(", %d failed", failed)
	}
	fmt.Println()

	if err := atomio.FleetGate(results); err != nil {
		fmt.Printf("fleet gate: FAIL: %v\n", err)
		reportRepro(results)
		os.Exit(1)
	}
	fmt.Println("fleet gate: PASS")
}

// reportRepro shrinks the first gate-offending cell — an errored cell or a
// torn cell that had recovery enabled — to a minimal reproducer and prints
// its parameters and fault script. A fleet-wide offense (no torn cell at
// all) has no single cell to shrink.
func reportRepro(results []atomio.CellResult) {
	for _, r := range results {
		var bad func(atomio.CellResult) bool
		switch {
		case r.Err != nil:
			bad = func(p atomio.CellResult) bool { return p.Err != nil }
		case r.Cell.Experiment.Recovery && r.Result.Verdict == atomio.Torn:
			bad = func(p atomio.CellResult) bool {
				return p.Err == nil && p.Result.Verdict == atomio.Torn
			}
		default:
			continue
		}
		shrunk := atomio.ShrinkCell(r.Cell, bad, shrinkBudget)
		e := shrunk.Experiment
		fmt.Printf("minimal repro: %s\n", shrunk.ID)
		fmt.Printf("  array %dx%d, P=%d, overlap %d, %s, strategy %s, recovery %v\n",
			e.M, e.N, e.Procs, e.Overlap, e.Pattern, e.Strategy.Name(), e.Recovery)
		fmt.Printf("  fault script %q (lease %v):\n", e.Faults.Name, e.Faults.Lease)
		for _, ev := range e.Faults.Events {
			fmt.Printf("    %s\n", ev)
		}
		return
	}
}

// panelSeries assembles a panel's curves from the grid results.
func panelSeries(panel harness.Panel, results []atomio.CellResult) []harness.Series {
	byID := make(map[string]*atomio.Result, len(results))
	for _, r := range results {
		byID[r.Cell.ID] = r.Result
	}
	methods, err := atomio.Methods(panel.Platform.Name)
	if err != nil {
		fatal(err)
	}
	var out []harness.Series
	for _, method := range methods {
		s := harness.Series{
			Method:     method,
			ByProcs:    make(map[int]float64),
			Written:    make(map[int]int64),
			MakespanMS: make(map[int]float64),
		}
		for _, procs := range harness.Figure8Procs {
			id := atomio.CellID(panel.Platform.Name, panel.Label, procs, method)
			res, ok := byID[id]
			if !ok {
				continue
			}
			s.ByProcs[procs] = res.BandwidthMBs
			s.Written[procs] = res.WrittenBytes
			s.MakespanMS[procs] = res.Makespan.Seconds() * 1e3
		}
		out = append(out, s)
	}
	return out
}

func fatal(err error) { cli.Fatal("figure8", err) }
