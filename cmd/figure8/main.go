// Command figure8 regenerates the paper's Figure 8: aggregate write
// bandwidth of the column-wise concurrent overlapping write for 4, 8 and 16
// processes, per atomicity strategy, on the three simulated platforms at
// the three array sizes (32 MB, 128 MB, 1 GB).
//
// Usage:
//
//	figure8 [-platform name] [-size label] [-store] [-v]
//	        [-workers N] [-progress] [-json file] [-csv file]
//	        [-scale] [-lockshards S] [-shardsweep]
//	        [-servers N] [-sharedstore] [-degraded]
//
// Without flags all nine panels run data-less (time accounting only), which
// keeps the 1 GB panels memory-flat. Cells run concurrently on a worker
// pool; every cell is an independent virtual-time simulation, so -workers
// changes wall-clock time only, never the reported bandwidths.
//
// With -scale the command runs the large-P scaling grid instead (process
// counts up to 1024 with non-contiguous interleaved views, see
// runner.ScalingGrid) and prints one row per cell; -json emits the same
// atomio.bench/v1 records as the Figure 8 grid.
//
// -lockshards S partitions every cell's lock-manager table across S offset
// stripes (see internal/lock). Reported numbers are byte-identical for any
// S — sharding changes host-side lock-service concurrency only — which
// makes the flag a live determinism check. -shardsweep runs the dedicated
// shard sweep (runner.ShardSweepGrid): one contended locking cell per shard
// count, printing virtual bandwidth (constant) next to wall time.
//
// -servers N overrides every cell's simulated I/O-server count (a real
// model parameter: reported numbers change with it). -sharedstore runs
// every cell on the pre-striping shared file store instead of per-server
// stores; output is byte-identical either way, so diffing a -sharedstore
// run against a default run is a live oracle check of the striped storage
// subsystem. -degraded runs the degraded-server scenario grid instead
// (runner.DegradedGrid): healthy baseline, one slow server, a hot server
// absorbing skewed affinity, and a server-count rebalance, printing each
// cell's bandwidth next to its hottest server's queue occupancy and byte
// share; the emitted records carry per-server stats columns.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomio/internal/harness"
	"atomio/internal/runner"
)

func main() {
	platformFlag := flag.String("platform", "", "run only this platform (Cplant, Origin2000, IBM SP)")
	sizeFlag := flag.String("size", "", "run only this array size (32 MB, 128 MB, 1 GB)")
	store := flag.Bool("store", false, "materialize file bytes (needs memory for large sizes)")
	verbose := flag.Bool("v", false, "also print virtual makespans and written volumes")
	workers := flag.Int("workers", 0, "concurrent cells (0 = all CPUs, or 1 when -store is set)")
	progress := flag.Bool("progress", false, "report cell completions on stderr")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	scale := flag.Bool("scale", false, "run the large-P scaling grid instead of Figure 8")
	lockShards := flag.Int("lockshards", 0, "lock-table shards per manager (0 = platform default; output is identical for any value)")
	shardSweep := flag.Bool("shardsweep", false, "run the lock-shard sweep instead of Figure 8")
	servers := flag.Int("servers", 0, "simulated I/O servers per cell (0 = platform default; a real model parameter)")
	sharedStore := flag.Bool("sharedstore", false, "store bytes in the pre-striping shared store (oracle layout; output is identical either way)")
	degraded := flag.Bool("degraded", false, "run the degraded-server scenario grid instead of Figure 8")
	flag.Parse()

	if *lockShards < 0 {
		fmt.Fprintf(os.Stderr, "figure8: -lockshards must be non-negative, got %d\n", *lockShards)
		os.Exit(1)
	}
	if *servers < 0 {
		fmt.Fprintf(os.Stderr, "figure8: -servers must be non-negative, got %d\n", *servers)
		os.Exit(1)
	}
	exclusive := 0
	for _, f := range []bool{*scale, *shardSweep, *degraded} {
		if f {
			exclusive++
		}
	}
	if exclusive > 1 {
		fmt.Fprintln(os.Stderr, "figure8: -scale, -shardsweep and -degraded are mutually exclusive")
		os.Exit(1)
	}
	if *shardSweep && *lockShards != 0 {
		fmt.Fprintln(os.Stderr, "figure8: -shardsweep sweeps its own shard counts; -lockshards would be ignored")
		os.Exit(1)
	}
	if *shardSweep && (*servers != 0 || *sharedStore) {
		fmt.Fprintln(os.Stderr, "figure8: -shardsweep fixes its own cell; -servers and -sharedstore would be ignored")
		os.Exit(1)
	}
	if *degraded && (*servers != 0 || *sharedStore || *lockShards != 0) {
		fmt.Fprintln(os.Stderr, "figure8: -degraded fixes its own scenarios; -servers, -sharedstore and -lockshards would be ignored")
		os.Exit(1)
	}
	if *scale || *shardSweep || *degraded {
		// These grids fix their own platform, shapes and data-less mode;
		// reject flags that would otherwise be silently ignored.
		if *platformFlag != "" || *sizeFlag != "" || *store || *verbose {
			fmt.Fprintln(os.Stderr, "figure8: -scale/-shardsweep/-degraded are incompatible with -platform, -size, -store and -v")
			os.Exit(1)
		}
	}
	if *shardSweep {
		runShardSweep(*workers, *progress, *jsonPath, *csvPath)
		return
	}
	if *degraded {
		runDegraded(*workers, *progress, *jsonPath, *csvPath)
		return
	}
	if *scale {
		runScaling(*workers, *progress, *jsonPath, *csvPath, *lockShards, *servers, *sharedStore)
		return
	}

	grid := runner.Figure8Grid()
	grid.StoreData = *store
	grid.LockShards = *lockShards
	grid.Servers = *servers
	grid.SharedStore = *sharedStore
	var err error
	if *platformFlag != "" {
		if grid, err = grid.WithPlatform(*platformFlag); err != nil {
			fmt.Fprintln(os.Stderr, "figure8:", err)
			os.Exit(1)
		}
	}
	if *sizeFlag != "" {
		if grid, err = grid.WithSize(*sizeFlag); err != nil {
			fmt.Fprintln(os.Stderr, "figure8:", err)
			os.Exit(1)
		}
	}

	// Materialized runs hold each in-flight array's bytes in memory; the
	// 1 GB cells would multiply that by the worker count, so -store runs
	// one cell at a time unless the user explicitly asks for more.
	if *store && *workers == 0 {
		*workers = 1
	}
	opts := runner.Options{Workers: *workers}
	if *progress {
		opts.Progress = func(done, total int, r runner.CellResult) {
			fmt.Fprintf(os.Stderr, "figure8: [%d/%d] %s (%v)\n", done, total, r.Cell.ID, r.Wall.Round(1e6))
		}
	}
	results := runner.Run(grid.Cells(), opts)
	if err := runner.FirstErr(results); err != nil {
		fmt.Fprintf(os.Stderr, "figure8: %v\n", err)
		os.Exit(1)
	}
	if err := runner.EmitFiles(*jsonPath, *csvPath, results); err != nil {
		fmt.Fprintln(os.Stderr, "figure8:", err)
		os.Exit(1)
	}

	for _, size := range grid.Sizes {
		for _, prof := range grid.Platforms {
			panel := harness.Panel{Platform: prof, N: size.N, Label: size.Label}
			series := panelSeries(panel, results)
			fmt.Print(harness.RenderPanel(panel, series))
			if *verbose {
				for _, s := range series {
					fmt.Printf("  # %-10s", s.Method)
					for _, p := range harness.Figure8Procs {
						fmt.Printf("  P%-2d %8.1fms %5dMB", p, s.MakespanMS[p], s.Written[p]>>20)
					}
					fmt.Println()
				}
			}
			fmt.Println()
		}
	}
}

// runCells executes cells with the shared progress/emit/error handling the
// alternate grids use, exiting non-zero on any cell failure.
func runCells(cells []runner.Cell, workers int, progress bool, jsonPath, csvPath string) []runner.CellResult {
	opts := runner.Options{Workers: workers}
	if progress {
		opts.Progress = func(done, total int, r runner.CellResult) {
			fmt.Fprintf(os.Stderr, "figure8: [%d/%d] %s (%v)\n", done, total, r.Cell.ID, r.Wall.Round(1e6))
		}
	}
	results := runner.Run(cells, opts)
	if err := runner.FirstErr(results); err != nil {
		fmt.Fprintf(os.Stderr, "figure8: %v\n", err)
		os.Exit(1)
	}
	if err := runner.EmitFiles(jsonPath, csvPath, results); err != nil {
		fmt.Fprintln(os.Stderr, "figure8:", err)
		os.Exit(1)
	}
	return results
}

// runScaling executes the large-P scaling grid and prints one row per cell.
func runScaling(workers int, progress bool, jsonPath, csvPath string, lockShards, servers int, sharedStore bool) {
	cells := runner.ScalingGrid()
	for i := range cells {
		cells[i].Experiment.LockShards = lockShards
		cells[i].Experiment.Servers = servers
		cells[i].Experiment.SharedStore = sharedStore
	}
	results := runCells(cells, workers, progress, jsonPath, csvPath)
	fmt.Printf("%-44s %10s %12s %12s\n", "cell", "P", "vMB/s", "vmakespan")
	for _, r := range results {
		res := r.Result
		fmt.Printf("%-44s %10d %12.2f %12s\n",
			r.Cell.ID, r.Cell.Experiment.Procs, res.BandwidthMBs, res.Makespan)
	}
}

// runShardSweep executes the lock-shard sweep: one contended locking cell
// per shard count. The virtual column is constant across rows — the
// sharded table's determinism contract — while wall time tracks the host.
func runShardSweep(workers int, progress bool, jsonPath, csvPath string) {
	results := runCells(runner.ShardSweepGrid(), workers, progress, jsonPath, csvPath)
	fmt.Printf("%-44s %8s %12s %12s %12s\n", "cell", "shards", "vMB/s", "vmakespan", "wall")
	for _, r := range results {
		res := r.Result
		fmt.Printf("%-44s %8d %12.2f %12s %12s\n",
			r.Cell.ID, r.Cell.Experiment.LockShards, res.BandwidthMBs, res.Makespan, r.Wall.Round(1e6))
	}
}

// runDegraded executes the degraded-server scenario grid and prints one row
// per cell with a per-server summary: the hottest server's queue occupancy
// (busy time over the cell's makespan) and its share of the bytes moved —
// the columns where a slow or hot server shows up.
func runDegraded(workers int, progress bool, jsonPath, csvPath string) {
	results := runCells(runner.DegradedGrid(), workers, progress, jsonPath, csvPath)
	fmt.Printf("%-44s %8s %12s %12s %10s %10s\n",
		"cell", "servers", "vMB/s", "vmakespan", "hot busy", "hot bytes")
	for _, r := range results {
		res := r.Result
		hot := harness.SummarizeServerStats(res.ServerStats, res.Makespan)
		fmt.Printf("%-44s %8d %12.2f %12s %9.1f%% %9.1f%%\n",
			r.Cell.ID, len(res.ServerStats), res.BandwidthMBs, res.Makespan,
			hot.MaxOccupancy*100, hot.MaxByteShare*100)
	}
}

// panelSeries assembles a panel's curves from the grid results.
func panelSeries(panel harness.Panel, results []runner.CellResult) []harness.Series {
	byID := make(map[string]*harness.Result, len(results))
	for _, r := range results {
		byID[r.Cell.ID] = r.Result
	}
	var out []harness.Series
	for _, strat := range harness.Methods(panel.Platform) {
		s := harness.Series{
			Method:     strat.Name(),
			ByProcs:    make(map[int]float64),
			Written:    make(map[int]int64),
			MakespanMS: make(map[int]float64),
		}
		for _, procs := range harness.Figure8Procs {
			id := runner.CellID(panel.Platform.Name, panel.Label, procs, strat.Name())
			res, ok := byID[id]
			if !ok {
				continue
			}
			s.ByProcs[procs] = res.BandwidthMBs
			s.Written[procs] = res.WrittenBytes
			s.MakespanMS[procs] = res.Makespan.Seconds() * 1e3
		}
		out = append(out, s)
	}
	return out
}
