// Command atomiovet is the repo's static-analysis gate: one multichecker
// binary running the custom contract analyzers (detwalk, simclock,
// vtflow, shardorder, waitcycle, coordcontract, hotalloc, layering,
// registry) alongside the vet-hardening passes (shadow, copylocks,
// nilness) over every package. It machine-enforces the invariants the
// determinism and deadlock-freedom arguments rest on; CI runs
// `go run ./cmd/atomiovet ./...` as the lint job and fails on any
// diagnostic. Exceptions are written in the code as
// `//atomiovet:allow <analyzer> <reason>` comments — the suppression
// parser rejects allows with no reason, unknown analyzer names, and
// stale allows that no longer fire.
//
// Exit codes: 0 means clean, 1 means findings, 2 means the flags or the
// package load failed. -json renders findings as JSON-lines records for
// editors and CI annotators.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"atomio/internal/analysis"
	"atomio/internal/analysis/coordcontract"
	"atomio/internal/analysis/detwalk"
	"atomio/internal/analysis/hotalloc"
	"atomio/internal/analysis/layering"
	"atomio/internal/analysis/load"
	"atomio/internal/analysis/registrycheck"
	"atomio/internal/analysis/shardorder"
	"atomio/internal/analysis/simclock"
	"atomio/internal/analysis/stdvet"
	"atomio/internal/analysis/vtflow"
	"atomio/internal/analysis/waitcycle"
)

// analyzers is the full suite, custom contracts first.
var analyzers = []*analysis.Analyzer{
	detwalk.Analyzer,
	simclock.Analyzer,
	vtflow.Analyzer,
	shardorder.Analyzer,
	waitcycle.Analyzer,
	coordcontract.Analyzer,
	hotalloc.Analyzer,
	layering.Analyzer,
	registrycheck.Analyzer,
	stdvet.Shadow,
	stdvet.Copylocks,
	stdvet.Nilness,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected so tests can pin the
// rendering and exit-code contract: 0 clean, 1 findings, 2 flag or
// load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomiovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "render findings as JSON-lines records on stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"usage: atomiovet [-list] [-json] [packages]\n\natomio's static-analysis suite; packages default to ./...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-13s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	diags, err := Vet(".", fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "atomiovet:", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "atomiovet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "atomiovet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiag is one -json record: a flat object per finding, one object
// per line, in the diagnostics' sorted order.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON renders diags as JSON lines.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		rec := jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Vet loads the packages matching patterns (relative to dir) and runs
// the whole suite plus the suppression filter, returning the surviving
// diagnostics in position order.
func Vet(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	var out []analysis.Diagnostic
	for _, p := range pkgs {
		target := &analysis.Target{Path: p.Path, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
		diags, err := analysis.Run(target, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, analysis.Suppress(p.Fset, p.Files, diags, names, names)...)
	}
	analysis.Sort(out)
	return out, nil
}
