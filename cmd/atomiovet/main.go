// Command atomiovet is the repo's static-analysis gate: one multichecker
// binary running the custom contract analyzers (detwalk, simclock,
// shardorder, layering, registry) alongside the vet-hardening passes
// (shadow, copylocks, nilness) over every package. It machine-enforces
// the invariants the determinism and deadlock-freedom arguments rest on;
// CI runs `go run ./cmd/atomiovet ./...` as the lint job and fails on
// any diagnostic. Exceptions are written in the code as
// `//atomiovet:allow <analyzer> <reason>` comments — the suppression
// parser rejects allows with no reason, unknown analyzer names, and
// stale allows that no longer fire.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomio/internal/analysis"
	"atomio/internal/analysis/detwalk"
	"atomio/internal/analysis/layering"
	"atomio/internal/analysis/load"
	"atomio/internal/analysis/registrycheck"
	"atomio/internal/analysis/shardorder"
	"atomio/internal/analysis/simclock"
	"atomio/internal/analysis/stdvet"
)

// analyzers is the full suite, custom contracts first.
var analyzers = []*analysis.Analyzer{
	detwalk.Analyzer,
	simclock.Analyzer,
	shardorder.Analyzer,
	layering.Analyzer,
	registrycheck.Analyzer,
	stdvet.Shadow,
	stdvet.Copylocks,
	stdvet.Nilness,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: atomiovet [-list] [packages]\n\natomio's static-analysis suite; packages default to ./...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	diags, err := Vet(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atomiovet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "atomiovet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// Vet loads the packages matching patterns (relative to dir) and runs
// the whole suite plus the suppression filter, returning the surviving
// diagnostics in position order.
func Vet(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	var out []analysis.Diagnostic
	for _, p := range pkgs {
		target := &analysis.Target{Path: p.Path, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
		diags, err := analysis.Run(target, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, analysis.Suppress(p.Fset, p.Files, diags, names, names)...)
	}
	analysis.Sort(out)
	return out, nil
}
