package main

import "testing"

// TestRepoIsClean runs the full suite over the whole module, pinning the
// repo-wide gate CI enforces: zero findings, every suppression reasoned.
func TestRepoIsClean(t *testing.T) {
	diags, err := Vet("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
