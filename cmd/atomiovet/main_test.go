package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"atomio/internal/analysis"
)

// TestRepoIsClean runs the full suite over the whole module, pinning the
// repo-wide gate CI enforces: zero findings, every suppression reasoned.
func TestRepoIsClean(t *testing.T) {
	diags, err := Vet("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// BenchmarkVet is the suite's self-benchmark: one full load-and-analyze
// pass over the module. CI runs it with -benchtime 1x under a generous
// wall budget so an accidentally quadratic analyzer shows up as a gate
// failure, not as a slow review comment.
func BenchmarkVet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := Vet("../..", "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) > 0 {
			b.Fatalf("repo not clean: %d finding(s)", len(diags))
		}
	}
}

// TestWriteJSON table-tests the -json encoder: one flat object per
// line, fields in declaration order, no output for no findings.
func TestWriteJSON(t *testing.T) {
	cases := []struct {
		name  string
		diags []analysis.Diagnostic
		want  string
	}{
		{name: "empty", diags: nil, want: ""},
		{
			name: "single",
			diags: []analysis.Diagnostic{{
				Pos:      token.Position{Filename: "internal/lock/lock.go", Line: 7, Column: 3},
				Analyzer: "coordcontract",
				Message:  "Wake without lock",
			}},
			want: `{"file":"internal/lock/lock.go","line":7,"col":3,"analyzer":"coordcontract","message":"Wake without lock"}` + "\n",
		},
		{
			name: "order and escaping",
			diags: []analysis.Diagnostic{
				{Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Analyzer: "vtflow", Message: `taint "wall" reaches sink`},
				{Pos: token.Position{Filename: "b.go", Line: 2, Column: 2}, Analyzer: "hotalloc", Message: "append may grow"},
			},
			want: `{"file":"a.go","line":1,"col":1,"analyzer":"vtflow","message":"taint \"wall\" reaches sink"}` + "\n" +
				`{"file":"b.go","line":2,"col":2,"analyzer":"hotalloc","message":"append may grow"}` + "\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := writeJSON(&buf, tc.diags); err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != tc.want {
				t.Errorf("writeJSON:\n got %q\nwant %q", got, tc.want)
			}
		})
	}
}

// TestRunExitCodes pins the process contract: 0 clean, 1 findings, 2
// flag or load failure — with findings on stdout and errors on stderr.
func TestRunExitCodes(t *testing.T) {
	const fixture = "../../internal/analysis/testdata/src/coordcontract/internal/lock/coordfix"
	cases := []struct {
		name string
		args []string
		want int
	}{
		{name: "list is clean", args: []string{"-list"}, want: 0},
		{name: "clean package", args: []string{"../../internal/interval"}, want: 0},
		{name: "findings", args: []string{fixture}, want: 1},
		{name: "findings as json", args: []string{"-json", fixture}, want: 1},
		{name: "bad flag", args: []string{"-definitely-not-a-flag"}, want: 2},
		{name: "bad pattern", args: []string{"./no/such/package/anywhere"}, want: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.want, stderr.String())
			}
			switch tc.want {
			case 1:
				if stdout.Len() == 0 {
					t.Errorf("findings must land on stdout")
				}
				if !strings.Contains(stderr.String(), "finding(s)") {
					t.Errorf("finding count must land on stderr, got %q", stderr.String())
				}
			case 2:
				if stderr.Len() == 0 {
					t.Errorf("failures must land on stderr")
				}
			}
		})
	}
}

// TestRunJSONOutput checks that -json output is parseable JSON lines
// carrying the same findings as the text rendering.
func TestRunJSONOutput(t *testing.T) {
	const fixture = "../../internal/analysis/testdata/src/coordcontract/internal/lock/coordfix"
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", fixture}, &stdout, &stderr); got != 1 {
		t.Fatalf("run -json over fixture = %d, want 1 (stderr: %s)", got, stderr.String())
	}
	lines := strings.Split(strings.TrimSuffix(stdout.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON records")
	}
	for _, line := range lines {
		var rec jsonDiag
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable record %q: %v", line, err)
		}
		if rec.File == "" || rec.Line == 0 || rec.Analyzer == "" || rec.Message == "" {
			t.Errorf("incomplete record: %+v", rec)
		}
	}
}
