package main

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

// TestParseFlags tables the sweep command line, covering the malformed
// inputs for every list-valued flag.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		want string // diagnostic substring for the failing cases
	}{
		{"defaults", nil, true, ""},
		{"full", []string{"-platform", "IBM SP", "-m", "512", "-n", "4096", "-p", "2,4",
			"-r", "8", "-pattern", "row", "-strategies", "coloring,ordering",
			"-store", "-trace", "-workers", "2", "-json", "a.json",
			"-lockshards", "2", "-servers", "3", "-sharedstore"}, true, ""},
		{"bad shape", []string{"-m", "0"}, false, "must be positive"},
		{"bad overlap", []string{"-r", "-1"}, false, "non-negative"},
		{"empty procs", []string{"-p", ""}, false, "empty process list"},
		{"bad procs entry", []string{"-p", "4,x"}, false, "bad process count"},
		{"zero procs", []string{"-p", "0"}, false, "must be positive"},
		{"bad pattern", []string{"-pattern", "diagonal"}, false, "unknown pattern"},
		{"empty pattern", []string{"-pattern", ""}, false, "empty pattern"},
		{"unknown strategy", []string{"-strategies", "osmosis"}, false, "registered:"},
		{"empty strategy entry", []string{"-strategies", "locking,,ordering"}, false, "empty entry"},
		{"negative lockshards", []string{"-lockshards", "-1"}, false, "non-negative"},
		{"negative servers", []string{"-servers", "-9"}, false, "non-negative"},
		{"unknown flag", []string{"-nosuch"}, false, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			cfg, err := parseFlags(tc.args, &buf)
			if tc.ok {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v; stderr %q", tc.args, err, buf.String())
				}
				if cfg == nil {
					t.Fatal("no config")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v): want error", tc.args)
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Errorf("diagnostic %q missing %q", buf.String(), tc.want)
			}
		})
	}
}

// TestParseFlagsBinds checks defaults and parsed values reach the config.
func TestParseFlagsBinds(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.platform != "Origin2000" || cfg.shape.M != 1024 || cfg.shape.N != 8192 ||
		cfg.shape.Overlap != 16 || cfg.pattern != "column-wise" {
		t.Errorf("defaults: %+v shape=%+v", cfg, cfg.shape)
	}
	if !reflect.DeepEqual(cfg.procs, []int{4, 8, 16}) {
		t.Errorf("default procs = %v", cfg.procs)
	}
	if !reflect.DeepEqual(cfg.strategies, []string{"locking", "coloring", "ordering"}) {
		t.Errorf("default strategies = %v", cfg.strategies)
	}
	cfg, err = parseFlags([]string{"-pattern", "block-block", "-p", " 2 , 4 "}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.pattern != "block-block" || !reflect.DeepEqual(cfg.procs, []int{2, 4}) {
		t.Errorf("parsed: pattern=%q procs=%v", cfg.pattern, cfg.procs)
	}
}
