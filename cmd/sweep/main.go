// Command sweep runs custom parameter sweeps of the concurrent overlapping
// write experiment beyond the paper's Figure 8 grid: any array shape,
// process counts, overlap widths, partitioning patterns and strategies.
//
// Example: bandwidth versus overlap width for the handshaking strategies on
// the IBM SP profile:
//
//	sweep -platform "IBM SP" -m 1024 -n 16384 -p 4,8,16 -r 128 -strategies coloring,ordering
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/platform"
)

func main() {
	platformFlag := flag.String("platform", "Origin2000", "platform profile")
	m := flag.Int("m", 1024, "array rows")
	n := flag.Int("n", 8192, "array columns")
	procsFlag := flag.String("p", "4,8,16", "comma-separated process counts")
	overlap := flag.Int("r", 16, "overlapped rows/columns (even)")
	patternFlag := flag.String("pattern", "column", "partitioning: column, row, block")
	strategiesFlag := flag.String("strategies", "locking,coloring,ordering",
		"comma-separated strategies (locking, coloring, ordering, twophase, listio)")
	store := flag.Bool("store", false, "materialize file bytes")
	traceFlag := flag.Bool("trace", false, "print per-phase virtual-time breakdowns")
	flag.Parse()

	prof, err := platform.ByName(*platformFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	var pattern harness.Pattern
	switch *patternFlag {
	case "column":
		pattern = harness.ColumnWise
	case "row":
		pattern = harness.RowWise
	case "block":
		pattern = harness.BlockBlock
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown pattern %q\n", *patternFlag)
		os.Exit(1)
	}
	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "sweep: bad process count %q\n", f)
			os.Exit(1)
		}
		procs = append(procs, v)
	}
	var strategies []core.Strategy
	for _, f := range strings.Split(*strategiesFlag, ",") {
		s, err := core.ByName(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if s.Name() == "locking" && !prof.SupportsLocking() {
			fmt.Fprintf(os.Stderr, "sweep: skipping locking (%s has no byte-range locking)\n", prof.Name)
			continue
		}
		strategies = append(strategies, s)
	}

	fmt.Printf("%s  %s %dx%d  R=%d\n", prof.Name, pattern, *m, *n, *overlap)
	fmt.Printf("%-6s", "P")
	for _, s := range strategies {
		fmt.Printf("%16s", s.Name())
	}
	fmt.Println()
	type traced struct {
		p   int
		s   string
		res *harness.Result
	}
	var traces []traced
	for _, p := range procs {
		fmt.Printf("%-6d", p)
		for _, s := range strategies {
			res, err := harness.Experiment{
				Platform:     prof,
				M:            *m,
				N:            *n,
				Procs:        p,
				Overlap:      *overlap,
				Pattern:      pattern,
				Strategy:     s,
				StoreData:    *store,
				Trace:        *traceFlag,
				AtomicListIO: s.Name() == "listio",
			}.Run()
			if err != nil {
				fmt.Printf("%16s", "error")
				fmt.Fprintf(os.Stderr, "sweep: P=%d %s: %v\n", p, s.Name(), err)
				continue
			}
			fmt.Printf("%11.2f MB/s", res.BandwidthMBs)
			if *traceFlag {
				traces = append(traces, traced{p, s.Name(), res})
			}
		}
		fmt.Println()
	}
	for _, tr := range traces {
		if tr.res.Phases == nil {
			continue
		}
		fmt.Printf("\nP=%d %s phase breakdown:\n%s", tr.p, tr.s, tr.res.Phases.Render())
	}
}
