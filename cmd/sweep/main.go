// Command sweep runs custom parameter sweeps of the concurrent overlapping
// write experiment beyond the paper's Figure 8 grid: any array shape,
// process counts, overlap widths, partitioning patterns and strategies.
//
// Example: bandwidth versus overlap width for the handshaking strategies on
// the IBM SP profile:
//
//	sweep -platform "IBM SP" -m 1024 -n 16384 -p 4,8,16 -r 128 -strategies coloring,ordering
//
// Cells run concurrently on a worker pool (-workers); results can also be
// emitted as JSON or CSV (-json, -csv). Malformed flag values exit non-zero
// with a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomio/internal/core"
	"atomio/internal/platform"
	"atomio/internal/runner"
)

func main() {
	platformFlag := flag.String("platform", "Origin2000", "platform profile")
	m := flag.Int("m", 1024, "array rows")
	n := flag.Int("n", 8192, "array columns")
	procsFlag := flag.String("p", "4,8,16", "comma-separated process counts")
	overlap := flag.Int("r", 16, "overlapped rows/columns (even)")
	patternFlag := flag.String("pattern", "column", "partitioning: column, row, block")
	strategiesFlag := flag.String("strategies", "locking,coloring,ordering",
		"comma-separated strategies (locking, coloring, ordering, twophase, listio)")
	store := flag.Bool("store", false, "materialize file bytes")
	traceFlag := flag.Bool("trace", false, "print per-phase virtual-time breakdowns")
	workers := flag.Int("workers", 0, "concurrent cells (0 = all CPUs)")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	csvPath := flag.String("csv", "", "also write results as CSV to this file")
	lockShards := flag.Int("lockshards", 0, "lock-table shards per manager (0 = platform default; output is identical for any value)")
	servers := flag.Int("servers", 0, "simulated I/O servers (0 = platform default; a real model parameter)")
	sharedStore := flag.Bool("sharedstore", false, "store bytes in the pre-striping shared store (oracle layout; output is identical either way)")
	flag.Parse()

	if *lockShards < 0 {
		fatal(fmt.Errorf("-lockshards must be non-negative, got %d", *lockShards))
	}
	if *servers < 0 {
		fatal(fmt.Errorf("-servers must be non-negative, got %d", *servers))
	}

	prof, err := platform.ByName(*platformFlag)
	if err != nil {
		fatal(err)
	}
	if *m < 1 || *n < 1 {
		fatal(fmt.Errorf("array shape %dx%d must be positive", *m, *n))
	}
	pattern, err := runner.ParsePattern(*patternFlag)
	if err != nil {
		fatal(err)
	}
	procs, err := runner.ParseProcs(*procsFlag)
	if err != nil {
		fatal(err)
	}
	parsed, err := runner.ParseStrategies(*strategiesFlag)
	if err != nil {
		fatal(err)
	}
	var strategies []core.Strategy
	for _, s := range parsed {
		if s.Name() == "locking" && !prof.SupportsLocking() {
			fmt.Fprintf(os.Stderr, "sweep: skipping locking (%s has no byte-range locking)\n", prof.Name)
			continue
		}
		strategies = append(strategies, s)
	}
	if len(strategies) == 0 {
		fatal(fmt.Errorf("no runnable strategies on %s", prof.Name))
	}

	grid := runner.Grid{
		Platforms:   []platform.Profile{prof},
		Sizes:       []runner.Size{{M: *m, N: *n}},
		Procs:       procs,
		Overlap:     *overlap,
		Pattern:     pattern,
		Strategies:  strategies,
		StoreData:   *store,
		Trace:       *traceFlag,
		LockShards:  *lockShards,
		Servers:     *servers,
		SharedStore: *sharedStore,
	}
	cells := grid.Cells()
	results := runner.Run(cells, runner.Options{Workers: *workers})
	if err := runner.EmitFiles(*jsonPath, *csvPath, results); err != nil {
		fatal(err)
	}

	fmt.Printf("%s  %s %dx%d  R=%d\n", prof.Name, pattern, *m, *n, *overlap)
	fmt.Printf("%-6s", "P")
	for _, s := range strategies {
		fmt.Printf("%16s", s.Name())
	}
	fmt.Println()
	// Cells enumerate process counts outermost, strategies innermost — the
	// table's row-major order.
	i := 0
	failed := false
	for range procs {
		fmt.Printf("%-6d", cells[i].Experiment.Procs)
		for range strategies {
			r := results[i]
			if r.Err != nil {
				failed = true
				fmt.Printf("%16s", "error")
				fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", r.Cell.ID, r.Err)
			} else {
				fmt.Printf("%11.2f MB/s", r.Result.BandwidthMBs)
			}
			i++
		}
		fmt.Println()
	}
	if *traceFlag {
		for _, r := range results {
			if r.Err != nil || r.Result.Phases == nil {
				continue
			}
			fmt.Printf("\nP=%d %s phase breakdown:\n%s",
				r.Cell.Experiment.Procs, r.Cell.Experiment.Strategy.Name(), r.Result.Phases.Render())
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
