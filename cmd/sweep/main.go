// Command sweep runs custom parameter sweeps of the concurrent overlapping
// write experiment beyond the paper's Figure 8 grid: any array shape,
// process counts, overlap widths, partitioning patterns and strategies.
//
// Example: bandwidth versus overlap width for the handshaking strategies on
// the IBM SP profile:
//
//	sweep -platform "IBM SP" -m 1024 -n 16384 -p 4,8,16 -r 128 -strategies coloring,ordering
//
// Cells run concurrently on a worker pool (-workers); results can also be
// emitted as JSON or CSV (-json, -csv), per-cell event traces as JSONL or
// Chrome trace-event JSON (-trace-out), and the metrics registry into the
// emitted records (-metrics). Malformed flag values exit non-zero with a
// diagnostic. Flags are declared through the shared internal/cli layer and
// the grid is resolved and executed by the public atomio facade.
package main

import (
	"fmt"
	"io"
	"os"

	"atomio"
	"atomio/internal/cli"
)

// config is the parsed command line.
type config struct {
	platform   string
	shape      *cli.Shape
	procs      []int
	pattern    string
	strategies []string
	store      bool
	trace      bool
	out        *cli.Output
	model      *cli.Model
	events     *cli.Trace
}

// parseFlags parses and validates the command line, printing diagnostics
// to stderr.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	app := cli.New("sweep")
	app.SetOutput(stderr)
	cfg := &config{}
	platformFlag := app.Platform("Origin2000", "platform profile")
	cfg.shape = app.Shape(1024, 8192, 16)
	procsFlag := app.Flags.String("p", "4,8,16", "comma-separated process counts")
	patternFlag := app.Flags.String("pattern", "column", "partitioning: column, row, block")
	strategiesFlag := app.Flags.String("strategies", "locking,coloring,ordering",
		"comma-separated strategies (locking, coloring, ordering, twophase, listio)")
	app.Flags.BoolVar(&cfg.store, "store", false, "materialize file bytes")
	app.Flags.BoolVar(&cfg.trace, "trace", false, "print per-phase virtual-time breakdowns")
	cfg.out = app.Output(false)
	cfg.model = app.Model()
	cfg.events = app.Trace()
	app.Check(func() (err error) { cfg.procs, err = cli.ParseProcs(*procsFlag); return })
	app.Check(func() (err error) { cfg.pattern, err = cli.ParsePattern(*patternFlag); return })
	app.Check(func() (err error) { cfg.strategies, err = cli.ParseStrategies(*strategiesFlag); return })
	if err := app.Parse(args); err != nil {
		return nil, err
	}
	cfg.platform = *platformFlag
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.ExitCode(err))
	}

	prof, err := atomio.PlatformByName(cfg.platform)
	if err != nil {
		fatal(err)
	}
	var strategies []string
	for _, name := range cfg.strategies {
		if name == "locking" && !prof.SupportsLocking() {
			fmt.Fprintf(os.Stderr, "sweep: skipping locking (%s has no byte-range locking)\n", prof.Name)
			continue
		}
		strategies = append(strategies, name)
	}
	if len(strategies) == 0 {
		fatal(fmt.Errorf("no runnable strategies on %s", prof.Name))
	}

	grid := atomio.Grid{
		Platforms:  []string{prof.Name},
		Sizes:      []atomio.Size{{M: cfg.shape.M, N: cfg.shape.N}},
		Procs:      cfg.procs,
		Overlap:    cfg.shape.Overlap,
		Pattern:    cfg.pattern,
		Strategies: strategies,
		StoreData:  cfg.store,
		Trace:      cfg.trace,
	}
	cfg.model.Apply(&grid)
	cfg.events.Apply(&grid)
	cells, err := grid.Cells()
	if err != nil {
		fatal(err)
	}
	results := atomio.RunGrid(cells, cfg.out.RunOptions("sweep"))
	if err := atomio.EmitFiles(cfg.out.JSON, cfg.out.CSV, results); err != nil {
		fatal(err)
	}
	if err := cfg.events.Write(results); err != nil {
		fatal(err)
	}

	fmt.Printf("%s  %s %dx%d  R=%d\n", prof.Name, cfg.pattern, cfg.shape.M, cfg.shape.N, cfg.shape.Overlap)
	fmt.Printf("%-6s", "P")
	for _, name := range strategies {
		fmt.Printf("%16s", name)
	}
	fmt.Println()
	// Cells enumerate process counts outermost, strategies innermost — the
	// table's row-major order.
	i := 0
	failed := false
	for range cfg.procs {
		fmt.Printf("%-6d", cells[i].Experiment.Procs)
		for range strategies {
			r := results[i]
			if r.Err != nil {
				failed = true
				fmt.Printf("%16s", "error")
				fmt.Fprintf(os.Stderr, "sweep: %s: %v\n", r.Cell.ID, r.Err)
			} else {
				fmt.Printf("%11.2f MB/s", r.Result.BandwidthMBs)
			}
			i++
		}
		fmt.Println()
	}
	if cfg.trace {
		for _, r := range results {
			if r.Err != nil || r.Result.Phases == nil {
				continue
			}
			fmt.Printf("\nP=%d %s phase breakdown:\n%s",
				r.Cell.Experiment.Procs, r.Cell.Experiment.Strategy.Name(), r.Result.Phases.Render())
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) { cli.Fatal("sweep", err) }
