// Command atomtrace analyzes atomio.trace/v1 event traces — the JSONL
// files figure8 and sweep write with -trace-out.
//
// Usage:
//
//	atomtrace trace.jsonl
//	atomtrace -scaling trace-P64.jsonl trace-P256.jsonl trace-P1024.jsonl
//
// The default mode prints one trace's attribution report: virtual time and
// bytes per (layer, kind, tag) bucket, per-phase totals, delivered message
// counts per collective, the critical path (the longest blocking chain
// through program order, message edges and lock-grant edges), and the
// metrics registry.
//
// -scaling reads several traces of the same workload at different process
// counts and fits the message-count growth exponent: the handshaking
// strategies open with a ring allgather of all P file views, so their
// message count grows ~P² — the scalability wall the paper's §4 discusses
// and the tree-collectives roadmap item targets. An exponent near 2
// confirms the quadratic regime; locking traces sit near 1.
//
// Exit status is 0 on success, 1 on unreadable or malformed traces, 2 on
// flag errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"atomio/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with injected streams, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atomtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaling := fs.Bool("scaling", false,
		"fit message-count growth across several traces of different process counts")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "atomtrace: no trace files (want atomio.trace/v1 JSONL, see figure8 -trace-out)")
		return 2
	}
	if !*scaling && len(paths) > 1 {
		fmt.Fprintln(stderr, "atomtrace: the attribution report reads one trace; use -scaling for several")
		return 2
	}
	traces := make([]*obs.TraceData, len(paths))
	for i, path := range paths {
		t, err := readTrace(path)
		if err != nil {
			fmt.Fprintf(stderr, "atomtrace: %v\n", err)
			return 1
		}
		traces[i] = t
	}
	if *scaling {
		reportScaling(stdout, paths, traces)
		return 0
	}
	fmt.Fprint(stdout, obs.Report(traces[0]))
	return 0
}

// readTrace decodes one JSONL trace file.
func readTrace(path string) (*obs.TraceData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// reportScaling prints per-trace message counts in ascending process count
// and the fitted growth exponents for total and allgather traffic.
func reportScaling(w io.Writer, paths []string, traces []*obs.TraceData) {
	order := make([]int, len(traces))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return traces[order[a]].Procs < traces[order[b]].Procs
	})
	var total, allgather []obs.ScalingPoint
	fmt.Fprintf(w, "%-40s %8s %12s %12s\n", "trace", "P", "msgs", "allgather")
	for _, i := range order {
		t := traces[i]
		msgs := obs.MessageCounts(t.Events)
		var sum int64
		for _, n := range msgs {
			sum += n
		}
		// The metrics registry survives ring-buffer truncation; prefer its
		// exact counter when the trace carries one.
		if m := t.Metrics; m != nil && m.Counter(obs.MetricMsgs) > 0 {
			sum = m.Counter(obs.MetricMsgs)
			msgs[obs.TagAllgather] = m.Counter(obs.MetricMsgsPrefix + obs.TagAllgather)
		}
		fmt.Fprintf(w, "%-40s %8d %12d %12d\n", paths[i], t.Procs, sum, msgs[obs.TagAllgather])
		total = append(total, obs.ScalingPoint{Procs: t.Procs, Msgs: sum})
		allgather = append(allgather, obs.ScalingPoint{Procs: t.Procs, Msgs: msgs[obs.TagAllgather]})
	}
	fmt.Fprintf(w, "\nmessage growth: msgs ~ P^%.2f", obs.FitExponent(total))
	if b := obs.FitExponent(allgather); b != 0 {
		fmt.Fprintf(w, ", allgather ~ P^%.2f", b)
	}
	fmt.Fprintln(w)
}
