package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomio/internal/obs"
)

// writeTrace serializes a synthetic ring-allgather trace of procs actors:
// every ordered pair exchanges one tagged message, so the message count is
// exactly P·(P-1) — the quadratic handshake regime.
func writeTrace(t *testing.T, dir string, procs int) string {
	t.Helper()
	rec := obs.NewRecorder(procs, 0)
	// at is sim.VTime; deriving it from the zero Event keeps the binary's
	// import set to internal/obs alone, matching its layering contract.
	at := obs.Event{}.T
	for i := 0; i < procs; i++ {
		for j := 0; j < procs; j++ {
			if i == j {
				continue
			}
			rec.Emit(obs.Event{T: at, Actor: i, Layer: obs.LayerMPI, Kind: obs.KindSend,
				Tag: obs.TagAllgather, Peer: j, Size: 8})
			rec.Emit(obs.Event{T: at + 1, Actor: j, Layer: obs.LayerMPI, Kind: obs.KindRecv,
				Tag: obs.TagAllgather, Peer: i, Size: 8, Dur: 1})
			rec.Count(j, obs.MetricMsgs, 1)
			rec.Count(j, obs.MetricMsgsPrefix+obs.TagAllgather, 1)
			at += 2
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-P%d.jsonl", procs))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSONL(f, rec); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReportsOneTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, 4)
	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"attribution", "allgather", "metrics:", obs.MetricMsgs} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunScalingFitsQuadraticGrowth(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for _, p := range []int{4, 8, 16, 32} {
		paths = append(paths, writeTrace(t, dir, p))
	}
	var out, errOut bytes.Buffer
	if code := run(append([]string{"-scaling"}, paths...), &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	report := out.String()
	if !strings.Contains(report, "message growth") {
		t.Fatalf("no growth line:\n%s", report)
	}
	// P·(P-1) over 4..32 fits a little above 2 (the -1 term steepens the
	// small-P end); anything clearly quadratic and clearly not linear passes.
	var b float64
	if _, err := fmt.Sscanf(report[strings.Index(report, "msgs ~ P^"):], "msgs ~ P^%f", &b); err != nil {
		t.Fatalf("cannot parse exponent: %v\n%s", err, report)
	}
	if b < 1.7 || b > 2.3 {
		t.Errorf("fitted exponent %.2f, want ~2 for the ring allgather", b)
	}
}

func TestRunExitCodes(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"a.jsonl", "b.jsonl"}, &out, &errOut); code != 2 {
		t.Errorf("two traces without -scaling: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/trace.jsonl"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("malformed trace: exit %d, want 1", code)
	}
}
