package main

import (
	"strings"
	"testing"
)

// TestParseFlags tables the table1 command line: the command takes only
// boolean flags, so the malformed cases are unknown flags and non-boolean
// values.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		want string
	}{
		{"empty", nil, true, ""},
		{"params", []string{"-params"}, true, ""},
		{"json", []string{"-json"}, true, ""},
		{"both", []string{"-params", "-json"}, true, ""},
		{"unknown flag", []string{"-nosuch"}, false, "not defined"},
		{"non-boolean value", []string{"-json=x"}, false, "invalid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			cfg, err := parseFlags(tc.args, &buf)
			if tc.ok {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v; stderr %q", tc.args, err, buf.String())
				}
				wantParams := false
				wantJSON := false
				for _, a := range tc.args {
					if a == "-params" {
						wantParams = true
					}
					if a == "-json" {
						wantJSON = true
					}
				}
				if cfg.params != wantParams || cfg.json != wantJSON {
					t.Errorf("config = %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v): want error", tc.args)
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Errorf("diagnostic %q missing %q", buf.String(), tc.want)
			}
		})
	}
}
