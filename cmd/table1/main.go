// Command table1 prints the paper's Table 1 (system configurations of the
// three experimental platforms) from the encoded profiles, plus the derived
// simulator parameters each profile feeds the file-system model.
package main

import (
	"flag"
	"fmt"

	"atomio/internal/platform"
)

func main() {
	params := flag.Bool("params", false, "also print derived simulator parameters")
	flag.Parse()

	fmt.Print(platform.Table1())
	if !*params {
		return
	}
	fmt.Println("\nDerived simulator parameters:")
	for _, p := range platform.All() {
		fmt.Printf("%-12s servers=%d mode=%s stripe=%dKiB server=%v+%dMB/s client=%v+%dMB/s seg=%v\n",
			p.Name, p.SimServers, p.StripeMode, p.StripeSize>>10,
			p.ServerModel.Latency, p.ServerModel.BytesPerSec>>20,
			p.ClientModel.Latency, p.ClientModel.BytesPerSec>>20,
			p.SegOverhead)
	}
}
