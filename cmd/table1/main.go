// Command table1 prints the paper's Table 1 (system configurations of the
// three experimental platforms) from the encoded profiles, plus the derived
// simulator parameters each profile feeds the file-system model. With
// -json the profiles are emitted machine-readably instead. The command is a
// pure consumer of the public atomio facade.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"atomio"
	"atomio/internal/cli"
)

// config is the parsed command line.
type config struct {
	params bool
	json   bool
	engine string
}

// parseFlags parses the command line, printing diagnostics to stderr.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	app := cli.New("table1")
	app.SetOutput(stderr)
	cfg := &config{}
	app.Flags.BoolVar(&cfg.params, "params", false, "also print derived simulator parameters")
	app.Flags.BoolVar(&cfg.json, "json", false, "emit the profiles as JSON instead of text")
	app.Flags.StringVar(&cfg.engine, "engine", "eventloop",
		"simulation engine the -params report annotates (table1 itself runs no simulation)")
	app.Check(func() error {
		if _, err := atomio.EngineByName(cfg.engine); err != nil {
			return fmt.Errorf("-engine: %v", err)
		}
		return nil
	})
	if err := app.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.ExitCode(err))
	}

	if cfg.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(atomio.Profiles()); err != nil {
			cli.Fatal("table1", err)
		}
		return
	}
	os.Stdout.WriteString(atomio.Table1())
	if cfg.params {
		os.Stdout.WriteString("\nDerived simulator parameters:\n")
		os.Stdout.WriteString(atomio.PlatformParams())
		fmt.Fprintf(os.Stdout, "\nSimulation engine: %s (registered: %s)\n",
			cfg.engine, strings.Join(atomio.Engines(), ", "))
	}
}
