// Command table1 prints the paper's Table 1 (system configurations of the
// three experimental platforms) from the encoded profiles, plus the derived
// simulator parameters each profile feeds the file-system model. With
// -json the profiles are emitted machine-readably instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atomio/internal/platform"
)

func main() {
	params := flag.Bool("params", false, "also print derived simulator parameters")
	jsonFlag := flag.Bool("json", false, "emit the profiles as JSON instead of text")
	flag.Parse()

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(platform.All()); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(platform.Table1())
	if *params {
		fmt.Println("\nDerived simulator parameters:")
		fmt.Print(platform.Params())
	}
}
