// Command atomcheck validates MPI atomicity on actual simulated file
// content: it runs the column-wise concurrent overlapping write with every
// strategy on every platform, stamps each rank's data, and checks that each
// overlapped region holds exactly one writer's bytes under a consistent
// serialization order. It also demonstrates the non-atomic baseline the
// paper's Figure 2 warns about. The per-platform strategy matrix is driven
// through the public atomio facade; only the per-segment negative control
// reaches into the internal layers, because deliberately broken locking is
// not part of the public API.
package main

import (
	"fmt"
	"io"
	"os"

	"atomio"
	"atomio/internal/cli"
	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/platform"
)

// config is the parsed command line.
type config struct {
	shape  *cli.Shape
	procs  int
	engine string
}

// parseFlags parses and validates the command line, printing diagnostics
// to stderr.
func parseFlags(args []string, stderr io.Writer) (*config, error) {
	app := cli.New("atomcheck")
	app.SetOutput(stderr)
	cfg := &config{}
	cfg.shape = app.Shape(256, 2048, 16)
	app.Flags.IntVar(&cfg.procs, "p", 8, "processes")
	app.Flags.StringVar(&cfg.engine, "engine", "eventloop",
		"simulation engine (output is identical either way)")
	app.Check(func() error {
		if cfg.procs < 1 {
			return fmt.Errorf("-p must be positive, got %d", cfg.procs)
		}
		if _, err := atomio.EngineByName(cfg.engine); err != nil {
			return fmt.Errorf("-engine: %v", err)
		}
		return nil
	})
	if err := app.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(cli.ExitCode(err))
	}
	m, n, procs, overlap := cfg.shape.M, cfg.shape.N, cfg.procs, cfg.shape.Overlap

	failed := false
	fmt.Printf("atomcheck: column-wise %dx%d, P=%d, R=%d\n\n", m, n, procs, overlap)
	for _, platformName := range atomio.Platforms() {
		methods, err := atomio.Methods(platformName)
		if err != nil {
			fatal(err)
		}
		for _, strategy := range methods {
			res, err := atomio.Run(
				atomio.Platform(platformName),
				atomio.Array(m, n),
				atomio.Procs(procs),
				atomio.Overlap(overlap),
				atomio.Strategy(strategy),
				atomio.Verify(true),
				atomio.Engine(cfg.engine),
			)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomcheck: %s/%s: %v\n", platformName, strategy, err)
				failed = true
				continue
			}
			status := "ATOMIC"
			if !res.Report.Atomic() {
				status = "VIOLATED"
				failed = true
			}
			fmt.Printf("%-12s %-10s %-9s atoms=%-5d overlapped=%-8d bw=%6.2f MB/s\n",
				platformName, strategy, status, res.Report.Atoms,
				res.Report.OverlappedBytes, res.BandwidthMBs)
		}
	}

	fmt.Println("\nnegative control (locking each segment separately, paper §3.2):")
	eng, engErr := atomio.EngineByName(cfg.engine)
	if engErr != nil {
		fatal(engErr)
	}
	res, runErr := harness.Experiment{
		Platform:  platform.Origin2000(),
		M:         m,
		N:         n,
		Procs:     procs,
		Overlap:   overlap,
		Pattern:   harness.ColumnWise,
		Strategy:  core.Locking{PerSegment: true},
		StoreData: true,
		Verify:    true,
		Engine:    eng,
	}.Run()
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "atomcheck: negative control: %v\n", runErr)
		os.Exit(1)
	}
	// Under concurrent execution per-segment locking *may* happen to land
	// atomically; the deterministic violation is exercised by the test
	// suite. Report what this run produced.
	fmt.Printf("%-12s %-10s atomic=%v (single POSIX-atomic writes do not compose into MPI atomicity)\n",
		"Origin2000", "per-seg", res.Report.Atomic())

	if failed {
		os.Exit(1)
	}
}

func fatal(err error) { cli.Fatal("atomcheck", err) }
