// Command atomcheck validates MPI atomicity on actual simulated file
// content: it runs the column-wise concurrent overlapping write with every
// strategy on every platform, stamps each rank's data, and checks that each
// overlapped region holds exactly one writer's bytes under a consistent
// serialization order. It also demonstrates the non-atomic baseline the
// paper's Figure 2 warns about.
package main

import (
	"flag"
	"fmt"
	"os"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/platform"
)

func main() {
	m := flag.Int("m", 256, "array rows")
	n := flag.Int("n", 2048, "array columns")
	procs := flag.Int("p", 8, "processes")
	overlap := flag.Int("r", 16, "overlapped columns (even)")
	flag.Parse()

	failed := false
	fmt.Printf("atomcheck: column-wise %dx%d, P=%d, R=%d\n\n", *m, *n, *procs, *overlap)
	for _, prof := range platform.All() {
		for _, strat := range harness.Methods(prof) {
			res, err := harness.Experiment{
				Platform:  prof,
				M:         *m,
				N:         *n,
				Procs:     *procs,
				Overlap:   *overlap,
				Pattern:   harness.ColumnWise,
				Strategy:  strat,
				StoreData: true,
				Verify:    true,
			}.Run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "atomcheck: %s/%s: %v\n", prof.Name, strat.Name(), err)
				failed = true
				continue
			}
			status := "ATOMIC"
			if !res.Report.Atomic() {
				status = "VIOLATED"
				failed = true
			}
			fmt.Printf("%-12s %-10s %-9s atoms=%-5d overlapped=%-8d bw=%6.2f MB/s\n",
				prof.Name, strat.Name(), status, res.Report.Atoms,
				res.Report.OverlappedBytes, res.BandwidthMBs)
		}
	}

	fmt.Println("\nnegative control (locking each segment separately, paper §3.2):")
	res, err := harness.Experiment{
		Platform:  platform.Origin2000(),
		M:         *m,
		N:         *n,
		Procs:     *procs,
		Overlap:   *overlap,
		Pattern:   harness.ColumnWise,
		Strategy:  core.Locking{PerSegment: true},
		StoreData: true,
		Verify:    true,
	}.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "atomcheck: negative control: %v\n", err)
		os.Exit(1)
	}
	// Under concurrent execution per-segment locking *may* happen to land
	// atomically; the deterministic violation is exercised by the test
	// suite. Report what this run produced.
	fmt.Printf("%-12s %-10s atomic=%v (single POSIX-atomic writes do not compose into MPI atomicity)\n",
		"Origin2000", "per-seg", res.Report.Atomic())

	if failed {
		os.Exit(1)
	}
}
