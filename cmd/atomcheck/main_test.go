package main

import (
	"io"
	"strings"
	"testing"
)

// TestParseFlags tables the atomcheck command line: shared -m/-n/-r
// geometry validation plus the command's own -p.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
		want string
	}{
		{"defaults", nil, true, ""},
		{"full", []string{"-m", "128", "-n", "1024", "-p", "4", "-r", "8"}, true, ""},
		{"zero rows", []string{"-m", "0"}, false, "must be positive"},
		{"negative columns", []string{"-n", "-1"}, false, "must be positive"},
		{"negative overlap", []string{"-r", "-2"}, false, "non-negative"},
		{"zero procs", []string{"-p", "0"}, false, "-p must be positive"},
		{"non-numeric procs", []string{"-p", "x"}, false, "invalid value"},
		{"unknown flag", []string{"-nosuch"}, false, "not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			cfg, err := parseFlags(tc.args, &buf)
			if tc.ok {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v; stderr %q", tc.args, err, buf.String())
				}
				if cfg == nil {
					t.Fatal("no config")
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v): want error", tc.args)
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Errorf("diagnostic %q missing %q", buf.String(), tc.want)
			}
		})
	}
}

// TestParseFlagsBinds checks defaults reach the config.
func TestParseFlagsBinds(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shape.M != 256 || cfg.shape.N != 2048 || cfg.shape.Overlap != 16 || cfg.procs != 8 {
		t.Errorf("defaults: shape=%+v procs=%d", cfg.shape, cfg.procs)
	}
}
