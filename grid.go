package atomio

import (
	"fmt"

	"atomio/internal/harness"
	"atomio/internal/platform"
	"atomio/internal/runner"
)

// Re-exported grid-execution types: RunGrid and the named grids speak the
// runner's own vocabulary, so results flow to the emitters unchanged.
type (
	// Size is one array shape of a grid.
	Size = runner.Size
	// Cell is one experiment of a grid, tagged with a stable identifier.
	Cell = runner.Cell
	// CellResult is the outcome of one cell.
	CellResult = runner.CellResult
	// Record is one cell's outcome flattened for machine consumption
	// (the atomio.bench/v1 schema).
	Record = runner.Record
	// RunOptions configures a grid run (worker count, progress callback).
	RunOptions = runner.Options
	// ProgressFunc observes cell completions during a grid run.
	ProgressFunc = runner.ProgressFunc
)

// Grid is a cross-product of experiment parameters with every dimension
// named: platforms, strategies and the pattern are registry names resolved
// when Cells is called. Cells enumerate in the paper's layout order:
// sizes, then platforms, then process counts, then strategies.
type Grid struct {
	// Platforms are registered platform names; empty means every
	// registered platform in registration order.
	Platforms []string
	Sizes     []Size
	Procs     []int
	Overlap   int
	// Pattern is the partitioning-pattern name; empty means the paper's
	// column-wise pattern.
	Pattern string
	// Strategies are registered strategy names; empty means the paper's
	// per-platform set, which omits locking on platforms without it.
	Strategies []string
	// SkipUnsupported drops locking cells on platforms without byte-range
	// locking instead of producing cells that fail.
	SkipUnsupported bool
	StoreData       bool
	Verify          bool
	Trace           bool
	// AtomicListIO grants the simulated file system atomic vectored
	// writes; cells using the listio strategy get it regardless.
	AtomicListIO bool
	// LockShards overrides the lock-table shard count on every cell
	// (0 keeps platform defaults; output is invariant in it).
	LockShards int
	// Servers overrides the simulated I/O-server count on every cell
	// (0 keeps platform defaults; a real model parameter).
	Servers int
	// SharedStore runs every cell on the pre-striping shared store (the
	// oracle layout; output is byte-identical either way).
	SharedStore bool
	// Engine is the registered simulation-engine name applied to every
	// cell; empty keeps the event-loop default. Output is byte-identical
	// for any engine.
	Engine string
	// TraceEvents records every cell's structured event stream and metrics
	// registry; the metrics feed the messages / max_queue_depth /
	// lock-wait columns of emitted records.
	TraceEvents bool
	// TraceLimit bounds per-actor event memory on traced cells (> 0 ring
	// of newest events, 0 unbounded, < 0 metrics only).
	TraceLimit int
}

// Cells resolves the grid's names through the registries and expands it
// into runnable cells with canonical IDs.
func (g Grid) Cells() ([]Cell, error) {
	names := g.Platforms
	if len(names) == 0 {
		names = Platforms()
	}
	profiles := make([]Profile, len(names))
	for i, name := range names {
		prof, err := PlatformByName(name)
		if err != nil {
			return nil, err
		}
		profiles[i] = prof
	}
	pattern, err := patternOf(g.Pattern)
	if err != nil {
		return nil, err
	}
	rg := runner.Grid{
		Platforms:       profiles,
		Sizes:           g.Sizes,
		Procs:           g.Procs,
		Overlap:         g.Overlap,
		Pattern:         pattern,
		SkipUnsupported: g.SkipUnsupported,
		StoreData:       g.StoreData,
		Verify:          g.Verify,
		Trace:           g.Trace,
		AtomicListIO:    g.AtomicListIO,
		LockShards:      g.LockShards,
		Servers:         g.Servers,
		SharedStore:     g.SharedStore,
		TraceEvents:     g.TraceEvents,
		TraceLimit:      g.TraceLimit,
	}
	for _, name := range g.Strategies {
		strat, err := StrategyByName(name)
		if err != nil {
			return nil, err
		}
		rg.Strategies = append(rg.Strategies, strat)
	}
	cells := rg.Cells()
	if g.Engine != "" {
		// Engines resolve here, not in the runner: the runner stays free
		// of registry knowledge, and every cell of one grid runs under the
		// same engine instance family.
		eng, err := EngineByName(g.Engine)
		if err != nil {
			return nil, err
		}
		for i := range cells {
			cells[i].Experiment.Engine = eng
		}
	}
	return cells, nil
}

// ApplyEngine stamps the registered engine name onto every cell, leaving
// cells untouched when name is empty. Grids built outside Grid.Cells (the
// scaling, shard-sweep and degraded grids) route their -engine flag here.
func ApplyEngine(cells []Cell, name string) error {
	if name == "" {
		return nil
	}
	eng, err := EngineByName(name)
	if err != nil {
		return err
	}
	for i := range cells {
		cells[i].Experiment.Engine = eng
	}
	return nil
}

// WithPlatform narrows the grid to one platform by Table 1 name.
func (g Grid) WithPlatform(name string) (Grid, error) {
	names := g.Platforms
	if len(names) == 0 {
		names = Platforms()
	}
	for _, have := range names {
		if have == name {
			g.Platforms = []string{name}
			return g, nil
		}
	}
	return g, fmt.Errorf("atomio: no platform %q in grid", name)
}

// WithSize narrows the grid to one array size by label.
func (g Grid) WithSize(label string) (Grid, error) {
	for _, size := range g.Sizes {
		if runner.SizeLabel(size) == label {
			g.Sizes = []Size{size}
			return g, nil
		}
	}
	return g, fmt.Errorf("atomio: no array size %q in grid", label)
}

// Figure8 is the paper's full Figure 8 evaluation: three array sizes on
// three platforms, written by 4, 8 and 16 processes with every applicable
// strategy, column-wise. The platform list is pinned to the paper's Table 1
// platforms regardless of later registrations.
func Figure8() Grid {
	sizes := make([]Size, len(harness.Figure8Sizes))
	for i, s := range harness.Figure8Sizes {
		sizes[i] = Size{M: harness.Figure8M, N: s.N, Label: s.Label}
	}
	return Grid{
		Platforms:       []string{"Cplant", "Origin2000", "IBM SP"},
		Sizes:           sizes,
		Procs:           append([]int(nil), harness.Figure8Procs...),
		Overlap:         harness.Figure8Overlap,
		Pattern:         "column-wise",
		SkipUnsupported: true,
	}
}

// Scaling returns the large-P scaling cells: process counts up to 1024
// with non-contiguous interleaved views (see the figure8 -scale mode).
func Scaling() []Cell { return runner.ScalingGrid() }

// ScalingTo returns the scaling cells with process counts up to maxP, which
// may extend past the classic grid into the event-loop-scale points (2048,
// 4096, 8192 and 16384 processes, locking strategy only — see
// runner.ScalingGridTo).
func ScalingTo(maxP int) []Cell { return runner.ScalingGridTo(maxP) }

// ShardSweep returns the lock-shard sweep cells: one contended locking
// cell per shard count, byte-identical simulated output across the sweep.
func ShardSweep() []Cell { return runner.ShardSweepGrid() }

// Degraded returns the degraded-server scenario cells: healthy baseline,
// one slow server, a hot server absorbing skewed affinity, and a
// server-count rebalance. Perturbed cells are explicitly non-comparable to
// healthy Figure 8 output.
func Degraded() []Cell { return runner.DegradedGrid() }

// Fleet returns the seeded failure-injection fleet: cell 0 is a pinned
// negative control (torn by construction), and the remaining cells are
// randomized (platform × strategy × pattern × fault-script × recovery)
// draws from the seed alone, so a fleet is reproduced exactly by
// (seed, cells).
func Fleet(seed uint64, cells int) []Cell { return runner.FleetGrid(seed, cells) }

// FleetGate enforces the fleet's acceptance property over its results:
// every cell completes with a verdict, no recovery-enabled cell is torn,
// and at least one cell (the negative control) is torn — proving the
// verifier can reject.
func FleetGate(results []CellResult) error { return runner.FleetGate(results) }

// ShrinkCell reduces a failing fleet cell to a smaller cell that still
// satisfies bad — dropping fault events, then halving processes, shape and
// overlap — probing at most budget runs.
func ShrinkCell(cell Cell, bad func(CellResult) bool, budget int) Cell {
	return runner.Shrink(cell, bad, budget)
}

// RunGrid executes every cell concurrently on a bounded worker pool and
// returns results in cell order; a failing cell never aborts its siblings.
func RunGrid(cells []Cell, opts RunOptions) []CellResult {
	return runner.Run(cells, opts)
}

// FirstErr returns the first failing result in grid order, or nil.
func FirstErr(results []CellResult) error { return runner.FirstErr(results) }

// Records flattens results into atomio.bench/v1 records, in grid order.
func Records(results []CellResult) []Record { return runner.Records(results) }

// EmitFiles writes results to the requested paths — JSON, CSV, or both.
// Empty paths are skipped.
func EmitFiles(jsonPath, csvPath string, results []CellResult) error {
	return runner.EmitFiles(jsonPath, csvPath, results)
}

// CellID builds the canonical cell identifier used in sub-benchmark names
// and result records: "platform/size/P<procs>/strategy".
func CellID(platformName, sizeLabel string, procs int, strategy string) string {
	return runner.CellID(platformName, sizeLabel, procs, strategy)
}

// Table1 renders the paper's Table 1: the system configurations of the
// three experimental platforms.
func Table1() string { return platform.Table1() }

// PlatformParams renders the derived simulator parameters each platform
// feeds the file-system model.
func PlatformParams() string { return platform.Params() }
