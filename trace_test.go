package atomio

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"atomio/internal/obs"
)

// traceSpec builds the mid-size traced cell the determinism tests run:
// contended enough to exercise the lock, PFS and scheduler layers.
func traceSpec(t *testing.T, strategy string, extra ...Option) *Spec {
	t.Helper()
	opts := append([]Option{
		Platform("Origin2000"), Array(256, 2048), Procs(4), Overlap(8),
		Strategy(strategy), TraceEvents(true),
	}, extra...)
	s, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// traceBytes runs a spec and serializes its trace as JSONL.
func traceBytes(t *testing.T, s *Spec) []byte {
	t.Helper()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil || res.Metrics == nil {
		t.Fatal("traced run returned no recorder or metrics")
	}
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteIdenticalAcrossEnginesAndShards asserts the tentpole
// determinism contract: the serialized event stream of a traced cell is
// byte-identical under every engine and lock-shard count.
func TestTraceByteIdenticalAcrossEnginesAndShards(t *testing.T) {
	for _, strategy := range []string{"locking", "coloring"} {
		t.Run(strategy, func(t *testing.T) {
			base := traceBytes(t, traceSpec(t, strategy))
			if len(bytes.Split(base, []byte("\n"))) < 10 {
				t.Fatal("baseline trace suspiciously small; test vacuous")
			}
			for _, engine := range []string{"eventloop", "goroutine"} {
				for _, shards := range []int{1, 8} {
					got := traceBytes(t, traceSpec(t, strategy, Engine(engine), LockShards(shards)))
					if !bytes.Equal(got, base) {
						t.Errorf("trace diverges under engine=%s shards=%d", engine, shards)
					}
				}
			}
		})
	}
}

// TestTraceByteIdenticalAcrossWorkers runs a traced grid on one worker and
// on four: per-cell traces must not depend on host-side parallelism.
func TestTraceByteIdenticalAcrossWorkers(t *testing.T) {
	grid := Grid{
		Platforms:   []string{"Origin2000"},
		Sizes:       []Size{{M: 128, N: 1024, Label: "128 KB"}},
		Procs:       []int{4},
		Overlap:     8,
		Strategies:  []string{"locking", "coloring", "ordering"},
		TraceEvents: true,
	}
	runWith := func(workers int) [][]byte {
		cells, err := grid.Cells()
		if err != nil {
			t.Fatal(err)
		}
		results := RunGrid(cells, RunOptions{Workers: workers})
		if err := FirstErr(results); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(results))
		for i, r := range results {
			var buf bytes.Buffer
			if err := WriteTraceJSONL(&buf, r.Result.Events); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}
	one, four := runWith(1), runWith(4)
	for i := range one {
		if !bytes.Equal(one[i], four[i]) {
			t.Errorf("cell %d trace diverges between 1 and 4 workers", i)
		}
	}
}

// TestPhaseTotalsPinnedToEvents is the property pinning the two
// observability layers together: the trace.Recorder per-(rank, phase)
// totals and the sums of phase.span event durations are computed from the
// same spans and must agree exactly.
func TestPhaseTotalsPinnedToEvents(t *testing.T) {
	for _, strategy := range []string{"locking", "coloring", "ordering", "twophase"} {
		t.Run(strategy, func(t *testing.T) {
			s := traceSpec(t, strategy, Trace(true))
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Phases == nil || res.Events == nil {
				t.Fatal("run carries no phase recorder or event recorder")
			}
			fromEvents := make(map[string]map[int]VTime)
			for _, e := range res.Events.Events() {
				if e.Layer != obs.LayerPhase || e.Kind != obs.KindPhaseSpan {
					continue
				}
				if fromEvents[e.Tag] == nil {
					fromEvents[e.Tag] = make(map[int]VTime)
				}
				fromEvents[e.Tag][e.Actor] += e.Dur
			}
			checked := 0
			for _, p := range res.Phases.Phases() {
				for rank := 0; rank < s.Procs; rank++ {
					want := res.Phases.Rank(rank, p)
					if got := fromEvents[string(p)][rank]; got != want {
						t.Errorf("rank %d phase %s: events sum to %v, recorder says %v", rank, p, got, want)
					}
					if want > 0 {
						checked++
					}
				}
			}
			if checked == 0 {
				t.Fatal("no non-zero phase totals; property test vacuous")
			}
		})
	}
}

// TestChromeTraceGolden pins the Chrome trace-event export of a small
// deterministic cell against a checked-in fixture (regenerate with
// `go test -run TestChromeTraceGolden -update .`), and spot-checks the
// format contract Perfetto relies on.
func TestChromeTraceGolden(t *testing.T) {
	res, err := Run(
		Platform("Origin2000"), Array(64, 256), Procs(2), Overlap(4),
		Strategy("coloring"), TraceEvents(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res.Events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.json")
	if *updateAPI {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestChromeTraceGolden -update .`): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("Chrome trace changed; if intentional, regenerate with `go test -run TestChromeTraceGolden -update .`")
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("malformed document: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" && e.Ph != "i" {
			t.Fatalf("event %q has phase %q, want X or i", e.Name, e.Ph)
		}
		if e.PID != 0 || e.TID < 0 || e.TID >= 2 {
			t.Fatalf("event %q mapped to pid %d tid %d", e.Name, e.PID, e.TID)
		}
	}
}

// TestTraceRingBoundsMemory checks the large-P story: a positive TraceLimit
// keeps only the newest events per actor while the metrics registry still
// counts everything.
func TestTraceRingBoundsMemory(t *testing.T) {
	full, err := traceSpec(t, "locking").Run()
	if err != nil {
		t.Fatal(err)
	}
	ring, err := traceSpec(t, "locking", TraceLimit(16)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ring.Events.Events()); n > 16*4 {
		t.Errorf("ring retained %d events, want at most limit*procs = 64", n)
	}
	if ring.Events.Dropped() == 0 {
		t.Error("ring dropped nothing; cell too small for the test to bite")
	}
	if full.Metrics.Counter(obs.MetricMsgs) != ring.Metrics.Counter(obs.MetricMsgs) ||
		full.Metrics.Counter(obs.MetricLockReqs) != ring.Metrics.Counter(obs.MetricLockReqs) {
		t.Error("metrics must be identical regardless of the event ring")
	}
}
