module atomio

go 1.24
