package atomio

import (
	"reflect"
	"strings"
	"testing"

	"atomio/internal/runner"
	"atomio/internal/verify"
)

// TestFaultRegistry pins the built-in fault-script names, their order, and
// the fresh-copy contract of lookups.
func TestFaultRegistry(t *testing.T) {
	want := []string{
		"server-outage", "server-blip", "unlock-drop",
		"unlock-dup", "lock-reorder", "writer-crash",
	}
	if got := Faults(); !reflect.DeepEqual(got, want) {
		t.Errorf("Faults() = %v, want %v", got, want)
	}
	a, err := FaultByName("server-blip")
	if err != nil {
		t.Fatal(err)
	}
	a.Events[0].Server = 99
	b, err := FaultByName("server-blip")
	if err != nil {
		t.Fatal(err)
	}
	if b.Events[0].Server == 99 {
		t.Error("FaultByName shares event storage between lookups")
	}
	if _, err := FaultByName("gamma-ray"); err == nil ||
		!strings.Contains(err.Error(), strings.Join(want, ", ")) {
		t.Errorf("FaultByName error = %v, want registered list", err)
	}
	if err := RegisterFault(nil); err == nil {
		t.Error("nil fault constructor: want error")
	}
	if err := RegisterFault(ServerOutageScript); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate fault: err = %v", err)
	}
}

// ServerOutageScript re-derives the registered server-outage script for
// the duplicate-registration probe above.
func ServerOutageScript() FaultScript {
	s, err := FaultByName("server-outage")
	if err != nil {
		panic(err)
	}
	return s
}

// TestFaultSpecRun drives a fault script through the options API: the
// outage tears the file without recovery and heals with it.
func TestFaultSpecRun(t *testing.T) {
	base := []Option{
		Platform("Origin2000"), Array(32, 512), Procs(4), Overlap(4),
		Strategy("locking"), Servers(2), Verify(true), Fault("server-outage"),
	}
	torn, err := Run(base...)
	if err != nil {
		t.Fatal(err)
	}
	if torn.Verdict != verify.Torn {
		t.Errorf("outage without recovery: verdict %q, want torn", torn.Verdict)
	}
	healed, err := Run(append(base, Recovery(true))...)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Verdict != verify.RecoveredSerializable {
		t.Errorf("outage with recovery: verdict %q, want recovered-serializable", healed.Verdict)
	}
	if len(healed.Replayed) == 0 {
		t.Error("recovery replayed no intents")
	}
	if _, err := New(Fault("gamma-ray")); err == nil {
		t.Error("New(Fault(gamma-ray)): want error")
	}
}

// TestFleetFacadeMatchesRunner pins the facade fleet wrappers to the
// runner definitions, cell for cell.
func TestFleetFacadeMatchesRunner(t *testing.T) {
	if !reflect.DeepEqual(Fleet(5, 8), runner.FleetGrid(5, 8)) {
		t.Error("Fleet(5, 8) differs from runner.FleetGrid(5, 8)")
	}
	cells := Fleet(5, 4)
	results := RunGrid(cells, RunOptions{Workers: 4})
	if err := FleetGate(results); err != nil {
		t.Fatal(err)
	}
	bad := func(r CellResult) bool {
		return r.Err == nil && r.Result.Verdict == verify.Torn
	}
	shrunk := ShrinkCell(cells[0], bad, 10)
	if len(shrunk.Experiment.Faults.Events) != 1 {
		t.Errorf("shrunk negative control keeps %d events, want 1",
			len(shrunk.Experiment.Faults.Events))
	}
}
