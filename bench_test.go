// Benchmarks regenerating the paper's evaluation: one benchmark per cell of
// Figure 8 (platform × array size × process count × strategy; Table 1 is
// configuration and is exercised by cmd/table1), plus ablation benches for
// the design choices discussed in §3 but not plotted. The reported vMB/s
// metric is the Figure 8 quantity: useful array bytes divided by virtual
// makespan. Wall-clock ns/op measures only the simulator itself.
//
// Run: go test -bench=. -benchmem
package atomio

import (
	"testing"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/platform"
	"atomio/internal/runner"
	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// runExperiment executes e b.N times, reporting virtual bandwidth.
func runExperiment(b *testing.B, e harness.Experiment) {
	b.Helper()
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BandwidthMBs, "vMB/s")
	b.ReportMetric(last.Makespan.Seconds()*1e3, "vms")
}

// BenchmarkFigure8 is the full Figure 8 grid, enumerated by the same
// runner.Figure8Grid the figure8 command executes, so the paper's
// evaluation is defined in exactly one place. Sub-benchmark names follow
// the paper's panel layout: platform / array size / process count /
// strategy. Locking is absent on Cplant, as in the paper. Cells run
// data-less (time accounting only), so the 1 GB panels stay memory-flat.
func BenchmarkFigure8(b *testing.B) {
	for _, cell := range runner.Figure8Grid().Cells() {
		b.Run(cell.ID, func(b *testing.B) { runExperiment(b, cell.Experiment) })
	}
}

// BenchmarkAblationLockManager (A1) isolates the lock-manager flavour: the
// same GPFS-like platform once with its distributed token manager and once
// with an NFS/XFS-style central manager, under the locking strategy. The
// distributed manager's fast path does not help overlapping writers (the
// spans all conflict), so the two serialize similarly — the paper's point
// that GPFS's distributed locking still sequentializes overlapping writes.
func BenchmarkAblationLockManager(b *testing.B) {
	base := platform.IBMSP()
	variants := map[string]platform.LockStyle{
		"distributed": platform.DistributedLocking,
		"central":     platform.CentralLocking,
	}
	for name, style := range variants {
		prof := base
		prof.LockStyle = style
		if style == platform.CentralLocking {
			prof.LockMsgCost = base.LockMsgCost
			prof.LockService = base.LockService
		}
		e := harness.Experiment{
			Platform: prof,
			M:        1024, N: 16384, Procs: 8, Overlap: 32,
			Pattern:  harness.ColumnWise,
			Strategy: core.Locking{},
		}
		b.Run(name, func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkAblationBlockBlockColors (A2) measures what extra colors cost.
// The two patterns have different segment counts and overlap volumes, so
// the meaningful comparison is the coloring-vs-ordering *gap* per pattern:
// ordering always runs one phase, coloring runs 2 phases on column-wise
// and 4 on the block-block ghost-cell grid of Figure 1 — the gap widens
// with the color count.
func BenchmarkAblationBlockBlockColors(b *testing.B) {
	patterns := map[string]harness.Pattern{
		"column-wise-2colors": harness.ColumnWise,
		"block-block-4colors": harness.BlockBlock,
	}
	strategies := map[string]core.Strategy{
		"coloring": core.Coloring{},
		"ordering": core.RankOrder{},
	}
	for pname, pattern := range patterns {
		for sname, strat := range strategies {
			e := harness.Experiment{
				Platform: platform.Origin2000(),
				M:        4096, N: 4096, Procs: 16, Overlap: 16,
				Pattern:  pattern,
				Strategy: strat,
			}
			b.Run(pname+"/"+sname, func(b *testing.B) { runExperiment(b, e) })
		}
	}
}

// BenchmarkAblationCacheSync (A3) measures what the paper's §3 requirement
// — "a file synchronization call immediately following every write" on a
// caching file system — costs the handshaking strategies: the same
// experiment with the client cache enabled (write-behind absorbed, then
// flushed at sync) and disabled (every write goes straight to servers).
func BenchmarkAblationCacheSync(b *testing.B) {
	base := platform.Cplant()
	for name, enabled := range map[string]bool{"write-behind": true, "no-cache": false} {
		prof := base
		prof.Cache.Enabled = enabled
		e := harness.Experiment{
			Platform: prof,
			M:        1024, N: 16384, Procs: 8, Overlap: 32,
			Pattern:  harness.ColumnWise,
			Strategy: core.Coloring{},
		}
		b.Run(name, func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkAblationRowWise (A4) reruns the strategy comparison on the
// row-wise pattern of §3.2, where every file view is one contiguous
// segment: locks only conflict between neighbouring ranks, so locking is no
// longer catastrophic — the paper's explanation of why the column-wise
// pattern is the interesting one.
func BenchmarkAblationRowWise(b *testing.B) {
	prof := platform.Origin2000()
	for _, strat := range harness.Methods(prof) {
		e := harness.Experiment{
			Platform: prof,
			M:        16384, N: 1024, Procs: 8, Overlap: 32,
			Pattern:  harness.RowWise,
			Strategy: strat,
		}
		b.Run(strat.Name(), func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkAblationHandshake (A5) compares the coloring handshake payloads:
// exact flattened extent lists versus bounding spans. Spans are cheaper to
// exchange but conservative — for column-wise views every pair of spans
// intersects, the conflict graph becomes complete, and coloring degrades to
// P serial phases. Exactness is what keeps the handshake useful.
func BenchmarkAblationHandshake(b *testing.B) {
	for name, strat := range map[string]core.Strategy{
		"exact-extents": core.Coloring{},
		"spans-only":    core.Coloring{UseSpans: true},
	} {
		e := harness.Experiment{
			Platform: platform.IBMSP(),
			M:        1024, N: 16384, Procs: 8, Overlap: 32,
			Pattern:  harness.ColumnWise,
			Strategy: strat,
		}
		b.Run(name, func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkAblationListIO (A6) evaluates the paper's §3.2 thought
// experiment: a file system whose lio_listio obeys POSIX atomicity lets
// each rank commit its whole non-contiguous request as one atomic vectored
// call. The capability removes lock-manager traffic and handshakes, but the
// file system still serializes the atomic calls internally — for the
// column-wise pattern, where every pair of requests conflicts, it performs
// like whole-span locking, and the handshaking strategies keep their edge.
// The paper's observation buys correctness, not scalability.
func BenchmarkAblationListIO(b *testing.B) {
	prof := platform.Origin2000()
	strategies := map[string]core.Strategy{
		"listio":   core.ListIO{},
		"locking":  core.Locking{},
		"ordering": core.RankOrder{},
	}
	for name, strat := range strategies {
		e := harness.Experiment{
			Platform: prof,
			M:        1024, N: 16384, Procs: 8, Overlap: 32,
			Pattern:      harness.ColumnWise,
			Strategy:     strat,
			AtomicListIO: true,
		}
		b.Run(name, func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkAblationTwoPhase (A7) pits the two-phase collective-buffering
// extension against the paper's handshaking strategies. Two-phase trades a
// full data exchange over the network for aggregators writing large
// contiguous file domains (few non-contiguous segments); its advantage
// grows with per-segment cost and shrinks with network cost.
func BenchmarkAblationTwoPhase(b *testing.B) {
	prof := platform.IBMSP()
	for _, strat := range []core.Strategy{core.TwoPhase{}, core.Coloring{}, core.RankOrder{}} {
		e := harness.Experiment{
			Platform: prof,
			M:        1024, N: 16384, Procs: 8, Overlap: 32,
			Pattern:  harness.ColumnWise,
			Strategy: strat,
		}
		b.Run(strat.Name(), func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkScaling runs the large-P scaling grid (process counts up to
// 1024, non-contiguous interleaved views) — the workload the sweep-line
// overlap matrix and the indexed lock table exist for. The cells are full
// virtual-time simulations; -short keeps only the smallest point so smoke
// runs stay quick, and the micro-level speedups are measured separately in
// internal/interval/index and internal/lock.
func BenchmarkScaling(b *testing.B) {
	for _, cell := range runner.ScalingGrid() {
		if testing.Short() && cell.Experiment.Procs > runner.ScalingPoints[0].Procs {
			continue
		}
		b.Run(cell.ID, func(b *testing.B) { runExperiment(b, cell.Experiment) })
	}
}

// BenchmarkDegraded runs the degraded-server scenario grid (healthy
// baseline, one slow server, a hot server absorbing skewed affinity, a
// server-count rebalance — see runner.DegradedGrid). The vMB/s metric here
// answers "what does this failure cost", not the paper's Figure 8:
// perturbed cells are explicitly non-comparable to healthy output. -short
// keeps only the smallest perturbing cell, which is what CI's bench-smoke
// job exercises.
func BenchmarkDegraded(b *testing.B) {
	if testing.Short() {
		cell := runner.DegradedSmokeCell()
		b.Run(cell.ID, func(b *testing.B) { runExperiment(b, cell.Experiment) })
		return
	}
	for _, cell := range runner.DegradedGrid() {
		b.Run(cell.ID, func(b *testing.B) { runExperiment(b, cell.Experiment) })
	}
}

// BenchmarkEngines compares the two simulation engines on one mid-size
// scaling cell (256 ranks, locking): identical virtual output by
// construction — the cross-engine tests pin that — so ns/op is purely the
// cost of the coordination substrate, goroutine parks versus the event
// loop's heap pops. -short drops to the smallest scaling point so CI's
// bench-smoke job stays quick.
func BenchmarkEngines(b *testing.B) {
	pt := runner.ScalingPoints[1]
	if testing.Short() {
		pt = runner.ScalingPoints[0]
	}
	e := harness.Experiment{
		Platform: platform.IBMSP(),
		M:        pt.M, N: pt.N, Procs: pt.Procs, Overlap: runner.ScalingOverlap,
		Pattern:  harness.ColumnWise,
		Strategy: core.Locking{},
	}
	for name, eng := range map[string]sim.Engine{
		"goroutine": sim.Goroutines{},
		"eventloop": des.New(),
	} {
		e := e
		e.Engine = eng
		b.Run(name, func(b *testing.B) { runExperiment(b, e) })
	}
}

// BenchmarkSimulatorOverhead measures the wall-clock cost of the simulator
// itself on the heaviest Figure 8 cell, so regressions in the substrate
// (message matching, extent algebra, server queues) show up here.
func BenchmarkSimulatorOverhead(b *testing.B) {
	e := harness.Experiment{
		Platform: platform.IBMSP(),
		M:        harness.Figure8M, N: 262144, Procs: 16, Overlap: harness.Figure8Overlap,
		Pattern:  harness.ColumnWise,
		Strategy: core.RankOrder{},
	}
	runExperiment(b, e)
}
