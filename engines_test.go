package atomio

import (
	"reflect"
	"testing"
)

// runFigure8Under runs the full Figure 8 grid under the named engine and
// returns its records with the engine-dependent columns cleared: wall_ns is
// host noise and engine names the engine itself; everything else is virtual
// output and must not depend on the engine.
func runFigure8Under(t *testing.T, engine string) []Record {
	t.Helper()
	g := Figure8()
	g.Engine = engine
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results := RunGrid(cells, RunOptions{Workers: 4})
	if err := FirstErr(results); err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	recs := Records(results)
	for i := range recs {
		recs[i].WallNS = 0
		recs[i].Engine = ""
	}
	return recs
}

// TestFigure8GridByteIdenticalAcrossEngines asserts the tentpole contract on
// the paper's full evaluation: every record of the Figure 8 grid — makespan,
// bandwidth, written volume, per-server stats — is identical under the
// event-loop engine and the goroutine oracle.
func TestFigure8GridByteIdenticalAcrossEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 8 grid under both engines; cross-engine smoke lives in internal/harness")
	}
	oracle := runFigure8Under(t, "goroutine")
	loop := runFigure8Under(t, "eventloop")
	if len(oracle) != len(loop) {
		t.Fatalf("record counts diverge: goroutine %d, eventloop %d", len(oracle), len(loop))
	}
	for i := range oracle {
		if !reflect.DeepEqual(oracle[i], loop[i]) {
			t.Errorf("cell %s diverges\n goroutine %+v\n eventloop %+v", oracle[i].ID, oracle[i], loop[i])
		}
	}
}
