package atomio_test

import (
	"fmt"
	"log"

	"atomio"
)

// ExampleRun executes a single verified experiment: the column-wise
// concurrent overlapping write of a small array, with MPI atomicity
// checked on the resulting file bytes. Every reported number is virtual
// (simulated) time, so the output is deterministic.
func ExampleRun() {
	res, err := atomio.Run(
		atomio.Platform("Origin2000"),
		atomio.Array(64, 256),
		atomio.Procs(4),
		atomio.Overlap(8),
		atomio.Strategy("ordering"),
		atomio.Verify(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("atomic: %v\n", res.Report.Atomic())
	fmt.Printf("bandwidth: %.2f MB/s\n", res.BandwidthMBs)
	// Output:
	// atomic: true
	// bandwidth: 0.83 MB/s
}

// ExampleRunGrid sweeps a small grid — one platform, two process counts,
// two strategies — on the worker pool and prints each cell's bandwidth.
func ExampleRunGrid() {
	grid := atomio.Grid{
		Platforms:  []string{"IBM SP"},
		Sizes:      []atomio.Size{{M: 64, N: 512}},
		Procs:      []int{2, 4},
		Overlap:    8,
		Strategies: []string{"coloring", "ordering"},
	}
	cells, err := grid.Cells()
	if err != nil {
		log.Fatal(err)
	}
	results := atomio.RunGrid(cells, atomio.RunOptions{Workers: 2})
	if err := atomio.FirstErr(results); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s %.2f MB/s\n", r.Cell.ID, r.Result.BandwidthMBs)
	}
	// Output:
	// IBM SP/64x512/P2/coloring 1.02 MB/s
	// IBM SP/64x512/P2/ordering 1.16 MB/s
	// IBM SP/64x512/P4/coloring 0.71 MB/s
	// IBM SP/64x512/P4/ordering 0.76 MB/s
}

// ExampleNew_degradedScenario runs the same workload healthy and with one
// 4x-degraded I/O server, reading the damage off the per-server stats.
// Degraded output is explicitly non-comparable to healthy Figure 8
// numbers — it answers "what does this failure cost".
func ExampleNew_degradedScenario() {
	opts := []atomio.Option{
		atomio.Platform("Cplant"),
		atomio.Array(128, 1024),
		atomio.Procs(4),
		atomio.Overlap(8),
		atomio.Strategy("ordering"),
	}
	healthy, err := atomio.Run(opts...)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := atomio.New(append(opts, atomio.Scenario("slow0x4"))...)
	if err != nil {
		log.Fatal(err)
	}
	degraded, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	hot := atomio.SummarizeServerStats(degraded.ServerStats, degraded.Makespan)
	fmt.Printf("servers: %d\n", len(degraded.ServerStats))
	fmt.Printf("slowdown: %.1fx\n", degraded.Makespan.Seconds()/healthy.Makespan.Seconds())
	fmt.Printf("hottest-server occupancy: %.0f%%\n", hot.MaxOccupancy*100)
	// Output:
	// servers: 12
	// slowdown: 3.3x
	// hottest-server occupancy: 93%
}
