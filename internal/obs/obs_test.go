package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"atomio/internal/sim"
)

func TestRecorderAssignsDenseSequences(t *testing.T) {
	r := NewRecorder(2, 0)
	for i := 0; i < 3; i++ {
		r.Emit(Event{T: sim.VTime(10 * i), Actor: 0, Layer: LayerMPI, Kind: KindSend, Peer: 1})
	}
	r.Emit(Event{T: 5, Actor: 1, Layer: LayerMPI, Kind: KindRecv, Peer: 0})
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	// Total order is (T, Actor, Seq): actor 1's T=5 event interleaves
	// between actor 0's T=0 and T=10 events.
	var got [][2]int64
	for _, e := range events {
		got = append(got, [2]int64{int64(e.Actor), e.Seq})
	}
	want := [][2]int64{{0, 0}, {1, 0}, {0, 1}, {0, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("(actor, seq) order = %v, want %v", got, want)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", r.Dropped())
	}
}

func TestRecorderRingKeepsNewest(t *testing.T) {
	const limit, emitted = 4, 10
	r := NewRecorder(1, limit)
	for i := 0; i < emitted; i++ {
		r.Emit(Event{T: sim.VTime(i), Actor: 0, Layer: LayerPFS, Kind: KindQueue, Peer: -1})
	}
	events := r.Events()
	if len(events) != limit {
		t.Fatalf("got %d events, want the %d newest", len(events), limit)
	}
	for i, e := range events {
		wantSeq := int64(emitted - limit + i)
		if e.Seq != wantSeq {
			t.Errorf("events[%d].Seq = %d, want %d (ring must keep the newest)", i, e.Seq, wantSeq)
		}
	}
	if r.Dropped() != emitted-limit {
		t.Errorf("Dropped() = %d, want %d", r.Dropped(), emitted-limit)
	}
}

func TestRecorderMetricsOnly(t *testing.T) {
	r := NewRecorder(2, -1)
	r.Emit(Event{T: 1, Actor: 0, Layer: LayerMPI, Kind: KindSend, Peer: 1})
	r.Count(0, MetricMsgs, 3)
	r.Count(1, MetricMsgs, 4)
	if got := r.Events(); len(got) != 0 {
		t.Errorf("metrics-only recorder retained %d events", len(got))
	}
	if r.Dropped() != 1 {
		t.Errorf("Dropped() = %d, want 1", r.Dropped())
	}
	if got := r.Metrics().Counter(MetricMsgs); got != 7 {
		t.Errorf("counter sum = %d, want 7", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Actor: 0})
	r.Count(0, "x", 1)
	r.MaxGauge(0, "x", 1)
	r.Observe(0, "x", 1)
	if r.Events() != nil || r.Dropped() != 0 || r.Actors() != 0 || r.Metrics() != nil {
		t.Error("nil recorder must be a zero-valued no-op")
	}
	var m *Metrics
	if m.Counter("x") != 0 || m.Gauge("x") != 0 || m.Quantile("x", 0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestMetricsMerge(t *testing.T) {
	r := NewRecorder(3, 0)
	r.Count(0, MetricLockReqs, 2)
	r.Count(2, MetricLockReqs, 5)
	r.MaxGauge(0, MetricQueueDepth, 3)
	r.MaxGauge(1, MetricQueueDepth, 9)
	r.MaxGauge(2, MetricQueueDepth, 4)
	r.Observe(0, MetricLockWait, 100)
	r.Observe(1, MetricLockWait, 1000)
	m := r.Metrics()
	if got := m.Counter(MetricLockReqs); got != 7 {
		t.Errorf("counters must sum: got %d, want 7", got)
	}
	if got := m.Gauge(MetricQueueDepth); got != 9 {
		t.Errorf("gauges must take the max: got %d, want 9", got)
	}
	if h := m.Hists[MetricLockWait]; h == nil || h.Count != 2 || h.Sum != 1100 {
		t.Errorf("histograms must merge bucket-wise: %+v", m.Hists[MetricLockWait])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	// Quantile reports the holding bucket's upper bound: p0 lands in the
	// zero bucket, p99 in 1000's bucket [512, 1024).
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3 (bucket [2,4))", got)
	}
	h.Observe(-5) // clamped to zero, not a panic
	if h.Buckets[0] != 2 {
		t.Errorf("negative observations must clamp to the zero bucket: %v", h.Buckets[0])
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	big := &Histogram{}
	big.Observe(math.MaxInt64)
	if got := big.Quantile(1); got != math.MaxInt64 {
		t.Errorf("top-bucket quantile = %d, want MaxInt64", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(2, 0)
	r.Emit(Event{T: 10, Actor: 0, Layer: LayerMPI, Kind: KindSend, Tag: TagAllgather, Peer: 1, Size: 64})
	r.Emit(Event{T: 20, Actor: 1, Layer: LayerMPI, Kind: KindRecv, Tag: TagAllgather, Peer: 0, Size: 64, Dur: 5})
	r.Emit(Event{T: 30, Actor: 0, Layer: LayerLock, Kind: KindLockGrant, Peer: -1, Off: 128, Len: 256, Aux: 7})
	r.Count(0, MetricMsgs, 2)
	r.MaxGauge(1, MetricQueueDepth, 3)
	r.Observe(0, MetricLockWait, 400)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 2 || got.Dropped != 0 {
		t.Errorf("header: procs %d dropped %d, want 2 and 0", got.Procs, got.Dropped)
	}
	if !reflect.DeepEqual(got.Events, r.Events()) {
		t.Errorf("events do not round-trip:\n in=%+v\nout=%+v", r.Events(), got.Events)
	}
	if !reflect.DeepEqual(got.Metrics, r.Metrics()) {
		t.Errorf("metrics do not round-trip:\n in=%+v\nout=%+v", r.Metrics(), got.Metrics)
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":    `{"t":1,"l":"mpi","k":"send"}` + "\n",
		"wrong schema": `{"schema":"other/v9"}` + "\n",
		"broken json":  `{"schema":"atomio.trace/v1"}` + "\n" + `{bad` + "\n",
		"unknown line": `{"schema":"atomio.trace/v1"}` + "\n" + `{"t":5}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestWriteChromeIsValidTraceJSON(t *testing.T) {
	r := NewRecorder(2, 0)
	r.Emit(Event{T: 1000, Actor: 0, Layer: LayerMPI, Kind: KindSend, Tag: TagAllgather, Peer: 1, Size: 8})
	r.Emit(Event{T: 2000, Actor: 1, Layer: LayerLock, Kind: KindLockGrant, Peer: -1, Dur: 500})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome trace output is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 || doc.DisplayTimeUnit != "ns" {
		t.Fatalf("unexpected document: %+v", doc)
	}
	send, grant := doc.TraceEvents[0], doc.TraceEvents[1]
	if send.Name != "mpi.send:allgather" || send.Ph != "i" || send.TS != 1.0 || send.TID != 0 {
		t.Errorf("instant event malformed: %+v", send)
	}
	if grant.Name != "lock.grant" || grant.Ph != "X" || grant.Dur != 0.5 || grant.TID != 1 {
		t.Errorf("span event malformed: %+v", grant)
	}
}

// fakeCoord counts protocol calls so the tracer's pass-through is checkable.
type fakeCoord struct {
	actors                              int
	awaits, blocks, parks, wakes, dones int
}

func (f *fakeCoord) Await(id int, at sim.VTime) { f.awaits++ }
func (f *fakeCoord) Block(id int)               { f.blocks++ }
func (f *fakeCoord) Park(id int, l sync.Locker) { f.parks++ }
func (f *fakeCoord) Wake(id int, at sim.VTime)  { f.wakes++ }
func (f *fakeCoord) Done(id int)                { f.dones++ }
func (f *fakeCoord) Actors() int                { return f.actors }

func TestCoordTracer(t *testing.T) {
	if c := (&fakeCoord{actors: 2}); Trace(c, nil) != sim.Coord(c) {
		t.Error("nil recorder must return the coordinator unwrapped")
	}
	inner := &fakeCoord{actors: 2}
	rec := NewRecorder(2, 0)
	c := Trace(inner, rec)
	tracer, ok := c.(*CoordTracer)
	if !ok || tracer.Unwrap() != sim.Coord(inner) {
		t.Fatalf("Trace returned %T; want a CoordTracer wrapping inner", c)
	}
	// The protocol order every call site follows: announce time, Block
	// under the shared lock, Wake from the peer, Park until the token.
	c.Await(0, 100)
	c.Block(0)
	c.Wake(0, 250) // publishes the wake bound onto actor 0's stream
	c.Park(0, nil)
	c.Done(0)
	if inner.awaits != 1 || inner.wakes != 1 || inner.parks != 1 || inner.blocks != 1 || inner.dones != 1 {
		t.Errorf("calls not passed through: %+v", inner)
	}
	events := rec.Events()
	var kinds []string
	for _, e := range events {
		if e.Layer != LayerSched {
			t.Errorf("unexpected layer in %+v", e)
		}
		kinds = append(kinds, e.Kind)
	}
	if !reflect.DeepEqual(kinds, []string{KindPark, KindWake, KindResume}) {
		t.Fatalf("kinds = %v, want park,wake,resume", kinds)
	}
	// The park carries the announced time; wake and resume carry the bound.
	wantT := []int64{100, 250, 250}
	for i, e := range events {
		if int64(e.T) != wantT[i] {
			t.Errorf("%s at T=%d, want %d", e.Kind, e.T, wantT[i])
		}
	}
	if got := rec.Metrics().Counter(MetricParks); got != 1 {
		t.Errorf("park counter = %d, want 1", got)
	}
}
