package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"atomio/internal/sim"
)

// This file is the analysis half of the package: pure functions over a
// decoded event stream, shared by cmd/atomtrace and the tests. Everything
// here iterates in sorted order so reports are byte-stable.

// LayerStat aggregates one (layer, kind, tag) bucket of a trace.
type LayerStat struct {
	Layer string
	Kind  string
	Tag   string
	Count int64
	Dur   sim.VTime // summed span durations
	Bytes int64     // summed Size payloads
}

// Attribution buckets a trace by (layer, kind, tag), sorted by descending
// summed duration, then count, then name — the "where does time go" table.
func Attribution(events []Event) []LayerStat {
	byKey := make(map[string]*LayerStat)
	for _, e := range events {
		key := e.Layer + "\x00" + e.Kind + "\x00" + e.Tag
		s := byKey[key]
		if s == nil {
			s = &LayerStat{Layer: e.Layer, Kind: e.Kind, Tag: e.Tag}
			byKey[key] = s
		}
		s.Count++
		s.Dur += e.Dur
		s.Bytes += e.Size
	}
	out := make([]LayerStat, 0, len(byKey))
	for _, k := range sortedStatKeys(byKey) {
		out = append(out, *byKey[k])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return statName(out[i]) < statName(out[j])
	})
	return out
}

// sortedStatKeys returns the bucket keys in ascending order.
func sortedStatKeys(m map[string]*LayerStat) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// statName renders one bucket's display name: layer.kind[:tag].
func statName(s LayerStat) string {
	name := s.Layer + "." + s.Kind
	if s.Tag != "" {
		name += ":" + s.Tag
	}
	return name
}

// MessageCounts tallies delivered MPI messages per collective tag;
// point-to-point traffic counts under "p2p". Counting recv (not send)
// events makes the tally robust to ring-buffer truncation biasing one side.
func MessageCounts(events []Event) map[string]int64 {
	out := make(map[string]int64)
	for _, e := range events {
		if e.Layer != LayerMPI || e.Kind != KindRecv {
			continue
		}
		tag := e.Tag
		if tag == "" {
			tag = "p2p"
		}
		out[tag]++
	}
	return out
}

// PhaseTotals sums phase-span durations per (actor-agnostic) phase name.
func PhaseTotals(events []Event) map[string]sim.VTime {
	out := make(map[string]sim.VTime)
	for _, e := range events {
		if e.Layer == LayerPhase && e.Kind == KindPhaseSpan {
			out[e.Tag] += e.Dur
		}
	}
	return out
}

// CriticalPath walks the event dependency DAG backwards from the latest-
// finishing event and returns the longest blocking chain, earliest event
// first. Edges considered: program order within an actor, message edges
// (each mpi.recv matched FIFO to its mpi.send by the (sender, receiver)
// pair), and grant edges (each waited lock.grant matched to the latest
// earlier lock.release overlapping its byte range). At every step the
// predecessor with the latest finish time wins — the chain an actor was
// actually waiting on.
func CriticalPath(events []Event) []Event {
	if len(events) == 0 {
		return nil
	}
	// Per-actor program order: group by (actor, seq). The global order
	// sorts by (T, actor, seq) and wake bounds make T locally
	// non-monotonic, so re-sorting by seq is required, not a precaution.
	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := events[order[a]], events[order[b]]
		if ea.Actor != eb.Actor {
			return ea.Actor < eb.Actor
		}
		return ea.Seq < eb.Seq
	})
	prevInActor := make([]int, len(events))
	for i := range prevInActor {
		prevInActor[i] = -1
	}
	for k := 1; k < len(order); k++ {
		if events[order[k]].Actor == events[order[k-1]].Actor {
			prevInActor[order[k]] = order[k-1]
		}
	}
	// FIFO message matching per (sender, receiver) pair.
	crossEdge := make([]int, len(events))
	pending := make(map[[2]int][]int)
	for i := range crossEdge {
		crossEdge[i] = -1
	}
	for i, e := range events {
		if e.Layer != LayerMPI {
			continue
		}
		switch e.Kind {
		case KindSend:
			key := [2]int{e.Actor, e.Peer}
			pending[key] = append(pending[key], i)
		case KindRecv:
			key := [2]int{e.Peer, e.Actor}
			if q := pending[key]; len(q) > 0 {
				crossEdge[i] = q[0]
				pending[key] = q[1:]
			}
		}
	}
	// Grant edges: a grant that waited (Dur > 0) depends on the latest
	// earlier release overlapping its range on another actor.
	var releases []int
	for i, e := range events {
		if e.Layer == LayerLock && e.Kind == KindLockRelease {
			releases = append(releases, i)
		}
	}
	for i, e := range events {
		if e.Layer != LayerLock || e.Kind != KindLockGrant || e.Dur <= 0 {
			continue
		}
		best := -1
		for _, ri := range releases {
			r := events[ri]
			if r.Actor == e.Actor || r.T > e.T {
				continue
			}
			if r.Off+r.Len <= e.Off || e.Off+e.Len <= r.Off {
				continue
			}
			if best < 0 || finish(events[ri]) > finish(events[best]) {
				best = ri
			}
		}
		crossEdge[i] = best
	}
	// Start from the latest finish (ties: last in total order) and walk
	// back along the latest-finishing predecessor.
	start := 0
	for i := range events {
		if finish(events[i]) >= finish(events[start]) {
			start = i
		}
	}
	var path []Event
	seen := make(map[int]bool)
	for at := start; at >= 0 && !seen[at]; {
		seen[at] = true
		path = append(path, events[at])
		next := prevInActor[at]
		if ce := crossEdge[at]; ce >= 0 {
			if next < 0 || finish(events[ce]) > finish(events[next]) {
				next = ce
			}
		}
		at = next
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// finish is an event's completion instant.
func finish(e Event) sim.VTime { return e.T + e.Dur }

// PathSummary buckets a critical path by (layer, kind, tag) — the "what
// is the bottleneck made of" view.
func PathSummary(path []Event) []LayerStat { return Attribution(path) }

// ScalingPoint is one trace's contribution to a message-scaling fit.
type ScalingPoint struct {
	Procs int
	Msgs  int64
}

// FitExponent least-squares fits log(msgs) = a + b·log(procs) and returns
// the exponent b — ~2 for the ring allgather's P² message growth. Points
// with zero messages or procs < 2 are skipped; fewer than two usable
// points report 0.
func FitExponent(points []ScalingPoint) float64 {
	var xs, ys []float64
	for _, p := range points {
		if p.Procs < 2 || p.Msgs <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(p.Procs)))
		ys = append(ys, math.Log(float64(p.Msgs)))
	}
	if len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Report renders the standard atomtrace attribution report for one trace.
func Report(t *TraceData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d procs, %d events", t.Procs, len(t.Events))
	if t.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped)", t.Dropped)
	}
	b.WriteString("\n\nattribution (by summed virtual duration):\n")
	fmt.Fprintf(&b, "  %-28s %10s %14s %12s\n", "event", "count", "dur(ns)", "bytes")
	for _, s := range Attribution(t.Events) {
		fmt.Fprintf(&b, "  %-28s %10d %14d %12d\n", statName(s), s.Count, int64(s.Dur), s.Bytes)
	}
	phases := PhaseTotals(t.Events)
	if len(phases) > 0 {
		b.WriteString("\nphase totals (summed across ranks):\n")
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-12s %14d ns\n", name, int64(phases[name]))
		}
	}
	msgs := MessageCounts(t.Events)
	if len(msgs) > 0 {
		b.WriteString("\nmessages per collective:\n")
		names := make([]string, 0, len(msgs))
		for name := range msgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-12s %10d\n", name, msgs[name])
		}
	}
	if path := CriticalPath(t.Events); len(path) > 0 {
		makespan := finish(path[len(path)-1]) - path[0].T
		fmt.Fprintf(&b, "\ncritical path: %d events spanning %d ns\n", len(path), int64(makespan))
		for _, s := range PathSummary(path) {
			fmt.Fprintf(&b, "  %-28s %10d %14d\n", statName(s), s.Count, int64(s.Dur))
		}
	}
	if t.Metrics != nil {
		b.WriteString("\nmetrics:\n")
		for _, k := range sortedKeys(t.Metrics.Counters) {
			fmt.Fprintf(&b, "  %-24s %12d\n", k, t.Metrics.Counters[k])
		}
		for _, k := range sortedKeys(t.Metrics.Gauges) {
			fmt.Fprintf(&b, "  %-24s %12d (max)\n", k, t.Metrics.Gauges[k])
		}
		for _, k := range sortedHistKeys(t.Metrics.Hists) {
			h := t.Metrics.Hists[k]
			fmt.Fprintf(&b, "  %-24s n=%d p50=%dns p99=%dns\n", k, h.Count, h.Quantile(0.5), h.Quantile(0.99))
		}
	}
	return b.String()
}
