// Package obs is the structured observability layer of the simulator: a
// deterministic event tracer plus a metrics registry, spanning every layer
// of the stack (scheduler park/wake, MPI messages, lock grants, PFS server
// bookings, WAL activity, fault instants).
//
// Determinism contract: every event is keyed purely by
// (virtual time, actor id, per-actor sequence number). Events are appended
// to per-actor streams — an actor appends to its own stream, and the only
// cross-actor append (a waker stamping a sched.wake onto a blocked actor's
// stream) is ordered by the sim.Coord protocol: the sleeper's park append
// happens in Block under the shared structure's lock the waker must hold
// to Wake, and the sleeper's resume append happens only after the inner
// Park returns, which the matching Wake precedes. Because both simulation
// engines admit actions in identical (virtual time, actor id) order, the
// merged stream is byte-identical across engines, worker counts and
// lock-shard counts.
//
// Memory: NewRecorder's limit selects unbounded capture (0), a per-actor
// ring buffer keeping the newest events (limit > 0, for P=16384 runs), or
// metrics-only mode retaining no events at all (limit < 0).
package obs

import (
	"math"
	"math/bits"
	"sort"

	"atomio/internal/sim"
)

// Layer names, one per instrumented subsystem.
const (
	LayerSched = "sched" // coordinator park/wake/resume
	LayerMPI   = "mpi"   // message passing
	LayerLock  = "lock"  // byte-range lock service
	LayerPFS   = "pfs"   // I/O servers and WAL
	LayerFault = "fault" // injected failure instants
	LayerPhase = "phase" // trace.Recorder phase spans
)

// Event kinds, grouped by layer.
const (
	KindPark   = "park"   // sched: actor goes to sleep on a peer
	KindWake   = "wake"   // sched: a peer publishes this actor's wake bound
	KindResume = "resume" // sched: the parked actor runs again

	KindSend = "send" // mpi: message handed to the network
	KindRecv = "recv" // mpi: message delivered (timing applied)

	KindLockRequest = "request" // lock: client asks for a byte range
	KindLockGrant   = "grant"   // lock: range granted (Aux = ticket)
	KindLockRelease = "release" // lock: client gives the range back
	KindLockRevoke  = "revoke"  // lock: lease/timeout revocation fired

	KindQueue        = "queue"  // pfs: request enters a server queue (Aux = depth)
	KindServiceStart = "sstart" // pfs: server starts the request
	KindServiceDone  = "sdone"  // pfs: server finishes the request
	KindWALAppend    = "wal"    // pfs: intent-log append
	KindWALReplay    = "replay" // pfs: recovery replays an intent
	KindDrop         = "drop"   // fault: server crash window swallowed pieces
	KindCrash        = "crash"  // fault: writer crash truncated a write
	KindUnlockDrop   = "udrop"  // fault: unlock message dropped
	KindUnlockDup    = "udup"   // fault: unlock message duplicated
	KindPhaseSpan    = "span"   // phase: one trace.Recorder span (Tag = phase)
)

// TagAllgather is the collective tag of the view-exchange allgather — the
// O(P²)-message handshake opener the scaling analysis keys on. Collective
// tags are the mpi package's collective names; only this one is needed by
// name outside the trace itself.
const TagAllgather = "allgather"

// Event is one instant or span of simulated activity. The identity triple
// (T, Actor, Seq) totally orders a trace; Seq is unique and dense per
// actor, while T may be locally non-monotonic (a wake bound can precede
// the park that consumed it). Peer is -1 when the event has no partner
// actor; the remaining fields carry layer-specific payload and are zero
// when unused.
type Event struct {
	T     sim.VTime // virtual timestamp, ns
	Actor int       // emitting actor (rank)
	Seq   int64     // per-actor sequence number
	Layer string    // one of the Layer* constants
	Kind  string    // one of the Kind* constants
	Tag   string    // collective/phase label ("" for point-to-point)
	Peer  int       // partner actor, or -1
	Size  int64     // payload bytes (mpi, pfs)
	Off   int64     // byte offset (lock, pfs)
	Len   int64     // byte length (lock, pfs)
	Dur   sim.VTime // span duration, ns (0 for instants)
	Aux   int64     // layer extra: lock ticket, queue depth
}

// stream is one actor's private event and metrics shard. Only the owning
// actor appends, except for the coordinator wake path documented on the
// package; no per-stream lock is needed because those appends are ordered
// by the Coord protocol's shared-structure lock.
type stream struct {
	seq     int64
	events  []Event
	start   int   // ring read position once the buffer wrapped
	wrapped bool  // ring has overwritten at least one event
	dropped int64 // events overwritten (ring) or discarded (metrics-only)

	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
}

// Recorder captures events and metrics for one simulation run. All methods
// are nil-receiver safe no-ops so call sites stay branch-light; hot paths
// should still guard with a nil check to avoid building Event values that
// would be thrown away.
type Recorder struct {
	limit   int
	streams []stream
}

// NewRecorder returns a recorder for actors 0..actors-1. limit == 0
// captures every event; limit > 0 keeps only the newest limit events per
// actor (ring buffer); limit < 0 retains no events (metrics only).
func NewRecorder(actors, limit int) *Recorder {
	return &Recorder{limit: limit, streams: make([]stream, actors)}
}

// Actors returns the number of per-actor streams.
func (r *Recorder) Actors() int {
	if r == nil {
		return 0
	}
	return len(r.streams)
}

// Emit appends e to its actor's stream, assigning the per-actor sequence
// number. The caller supplies every field except Seq.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	s := &r.streams[e.Actor]
	e.Seq = s.seq
	s.seq++
	switch {
	case r.limit < 0:
		s.dropped++
	case r.limit == 0 || len(s.events) < r.limit:
		s.events = append(s.events, e)
	default:
		s.events[s.start] = e
		s.start++
		if s.start == r.limit {
			s.start = 0
		}
		s.wrapped = true
		s.dropped++
	}
}

// Count adds d to the named counter on actor's metrics shard.
func (r *Recorder) Count(actor int, name string, d int64) {
	if r == nil {
		return
	}
	s := &r.streams[actor]
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += d
}

// MaxGauge raises the named gauge on actor's shard to v if v is larger.
func (r *Recorder) MaxGauge(actor int, name string, v int64) {
	if r == nil {
		return
	}
	s := &r.streams[actor]
	if s.gauges == nil {
		s.gauges = make(map[string]int64)
	}
	if v > s.gauges[name] {
		s.gauges[name] = v
	}
}

// Observe records v into the named histogram on actor's shard.
func (r *Recorder) Observe(actor int, name string, v int64) {
	if r == nil {
		return
	}
	s := &r.streams[actor]
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h := s.hists[name]
	if h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	h.Observe(v)
}

// Dropped reports how many events were discarded across all streams
// (ring-buffer overwrites plus metrics-only discards).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.streams {
		n += r.streams[i].dropped
	}
	return n
}

// ordered returns one stream's retained events in sequence order (the ring
// is unrolled from its oldest retained event).
func (s *stream) ordered() []Event {
	if !s.wrapped {
		return s.events
	}
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.start:]...)
	out = append(out, s.events[:s.start]...)
	return out
}

// Events merges every stream into the trace's total order: ascending
// (T, Actor, Seq). The result is freshly allocated.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var total int
	for i := range r.streams {
		total += len(r.streams[i].events)
	}
	out := make([]Event, 0, total)
	for i := range r.streams {
		out = append(out, r.streams[i].ordered()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		return a.Seq < b.Seq
	})
	return out
}

// Metrics is a merged snapshot of every per-actor shard: counters sum,
// gauges take the maximum, histograms add bucket-wise.
type Metrics struct {
	Counters map[string]int64      `json:"counters,omitempty"`
	Gauges   map[string]int64      `json:"gauges,omitempty"`
	Hists    map[string]*Histogram `json:"hists,omitempty"`
}

// Metrics merges the per-actor shards into one snapshot. Merge order does
// not matter (sum/max/bucket-add are commutative), but iteration is sorted
// anyway so the snapshot's construction is order-free by construction.
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{}
	for i := range r.streams {
		s := &r.streams[i]
		for _, k := range sortedKeys(s.counters) {
			if m.Counters == nil {
				m.Counters = make(map[string]int64)
			}
			m.Counters[k] += s.counters[k]
		}
		for _, k := range sortedKeys(s.gauges) {
			if m.Gauges == nil {
				m.Gauges = make(map[string]int64)
			}
			if v := s.gauges[k]; v > m.Gauges[k] {
				m.Gauges[k] = v
			}
		}
		for _, k := range sortedHistKeys(s.hists) {
			if m.Hists == nil {
				m.Hists = make(map[string]*Histogram)
			}
			h := m.Hists[k]
			if h == nil {
				h = &Histogram{}
				m.Hists[k] = h
			}
			h.Merge(s.hists[k])
		}
	}
	return m
}

// Counter reads a merged counter from the snapshot (0 when absent or nil).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	return m.Counters[name]
}

// Gauge reads a merged gauge from the snapshot (0 when absent or nil).
func (m *Metrics) Gauge(name string) int64 {
	if m == nil {
		return 0
	}
	return m.Gauges[name]
}

// Quantile reads a quantile from the named histogram (0 when absent).
func (m *Metrics) Quantile(name string, q float64) int64 {
	if m == nil {
		return 0
	}
	return m.Hists[name].Quantile(q)
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedHistKeys returns the histogram map's keys in ascending order.
func sortedHistKeys(m map[string]*Histogram) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Histogram is a fixed-bucket virtual-time histogram: bucket i counts the
// values whose bit length is i (so bucket 0 holds exactly the zeros and
// bucket i spans [2^(i-1), 2^i)). Power-of-two buckets make every quantile
// a pure function of the recorded values — no configuration to disagree on.
type Histogram struct {
	Count   int64     `json:"count"`
	Sum     int64     `json:"sum"`
	Buckets [64]int64 `json:"buckets"`
}

// Observe records one non-negative value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Merge adds other's buckets into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// (q in [0,1]): 0 for the zero bucket, else 2^i - 1. A nil or empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum int64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if h.Buckets[i] > 0 && float64(cum) >= target {
			if i == 0 {
				return 0
			}
			return int64(uint64(1)<<uint(i)) - 1
		}
	}
	return math.MaxInt64
}

// Metric names shared by the instrumented layers, the bench columns and
// the atomtrace reports.
const (
	MetricMsgs        = "mpi.msgs"        // counter: messages delivered
	MetricMsgBytes    = "mpi.bytes"       // counter: message payload bytes
	MetricMsgsPrefix  = "mpi.msgs."       // counter family: messages per collective
	MetricLockReqs    = "lock.requests"   // counter: lock acquisitions requested
	MetricLockRevokes = "lock.revokes"    // counter: lease/timeout revocations
	MetricLockWait    = "lock.wait"       // histogram: request→grant virtual ns
	MetricPFSReqs     = "pfs.requests"    // counter: server bookings
	MetricPFSService  = "pfs.service"     // histogram: per-booking service ns
	MetricQueueDepth  = "pfs.qdepth.max"  // gauge: deepest server queue seen
	MetricWALAppends  = "pfs.wal.appends" // counter: intent-log appends
	MetricWALReplays  = "pfs.wal.replays" // counter: recovery replays
	MetricParks       = "sched.parks"     // counter: coordinator parks
	MetricFaultPrefix = "fault."          // counter family: fault instants by kind
	MetricPhasePrefix = "phase."          // counter family: per-phase virtual ns
)
