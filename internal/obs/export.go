package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"atomio/internal/sim"
)

// SchemaJSONL names the JSONL trace schema: a header line, one event per
// line in (T, Actor, Seq) order, and a closing metrics line.
const SchemaJSONL = "atomio.trace/v1"

// jsonLine is the JSONL wire form — a tagged union covering the header
// (Schema set), events (Layer set) and the trailer (Metrics set). Field
// order and omitempty choices are part of the byte-identical contract.
type jsonLine struct {
	Schema  string `json:"schema,omitempty"`
	Procs   int    `json:"procs,omitempty"`
	Dropped int64  `json:"dropped,omitempty"`

	T     int64  `json:"t,omitempty"`
	Actor int    `json:"a,omitempty"`
	Seq   int64  `json:"s,omitempty"`
	Layer string `json:"l,omitempty"`
	Kind  string `json:"k,omitempty"`
	Tag   string `json:"tag,omitempty"`
	Peer  *int   `json:"peer,omitempty"`
	Size  int64  `json:"size,omitempty"`
	Off   int64  `json:"off,omitempty"`
	Len   int64  `json:"len,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
	Aux   int64  `json:"aux,omitempty"`

	Metrics *Metrics `json:"metrics,omitempty"`
}

// WriteJSONL writes the recorder's merged trace as compact JSONL: a
// schema header, every retained event, then the merged metrics snapshot.
// Output is byte-identical for byte-identical traces (json.Marshal sorts
// map keys; events are already totally ordered).
func WriteJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonLine{Schema: SchemaJSONL, Procs: r.Actors(), Dropped: r.Dropped()}); err != nil {
		return err
	}
	for _, e := range r.Events() {
		line := jsonLine{
			T: int64(e.T), Actor: e.Actor, Seq: e.Seq,
			Layer: e.Layer, Kind: e.Kind, Tag: e.Tag,
			Size: e.Size, Off: e.Off, Len: e.Len, Dur: int64(e.Dur), Aux: e.Aux,
		}
		if e.Peer >= 0 {
			peer := e.Peer
			line.Peer = &peer
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	if err := enc.Encode(jsonLine{Metrics: r.Metrics()}); err != nil {
		return err
	}
	return bw.Flush()
}

// TraceData is a decoded JSONL trace: what atomtrace analyzes.
type TraceData struct {
	Procs   int
	Dropped int64
	Events  []Event
	Metrics *Metrics
}

// ReadJSONL decodes a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*TraceData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	t := &TraceData{}
	first := true
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line jsonLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("obs: bad trace line: %w", err)
		}
		if first && line.Schema == "" {
			return nil, fmt.Errorf("obs: trace missing %s header", SchemaJSONL)
		}
		first = false
		switch {
		case line.Schema != "":
			if line.Schema != SchemaJSONL {
				return nil, fmt.Errorf("obs: unknown trace schema %q", line.Schema)
			}
			t.Procs = line.Procs
			t.Dropped = line.Dropped
		case line.Metrics != nil:
			t.Metrics = line.Metrics
		case line.Layer != "":
			e := Event{
				T: sim.VTime(line.T), Actor: line.Actor, Seq: line.Seq,
				Layer: line.Layer, Kind: line.Kind, Tag: line.Tag, Peer: -1,
				Size: line.Size, Off: line.Off, Len: line.Len,
				Dur: sim.VTime(line.Dur), Aux: line.Aux,
			}
			if line.Peer != nil {
				e.Peer = *line.Peer
			}
			t.Events = append(t.Events, e)
		default:
			return nil, fmt.Errorf("obs: unrecognized trace line %q", raw)
		}
	}
	return t, sc.Err()
}

// chromeEvent is one Chrome trace-event object. Timestamps and durations
// are microseconds per the trace-event format; virtual nanoseconds divide
// exactly into thousandths, formatted deterministically by encoding/json.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   float64    `json:"ts"`
	Dur  float64    `json:"dur,omitempty"`
	PID  int        `json:"pid"`
	TID  int        `json:"tid"`
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args"`
}

// chromeArgs carries the event payload into the trace viewer.
type chromeArgs struct {
	Seq  int64  `json:"seq"`
	Tag  string `json:"tag,omitempty"`
	Peer *int   `json:"peer,omitempty"`
	Size int64  `json:"size,omitempty"`
	Off  int64  `json:"off,omitempty"`
	Len  int64  `json:"len,omitempty"`
	Aux  int64  `json:"aux,omitempty"`
}

// chromeDoc is the JSON-object flavour of the trace-event format, which
// Perfetto and chrome://tracing both load.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace in Chrome trace-event JSON (Perfetto-
// loadable): spans (Dur > 0) become complete "X" events, instants become
// thread-scoped "i" events; pid 0 holds the run, tid is the actor.
func WriteChrome(w io.Writer, r *Recorder) error {
	events := r.Events()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ns"}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Layer + "." + e.Kind,
			Cat:  e.Layer,
			TS:   float64(e.T) / 1e3,
			PID:  0,
			TID:  e.Actor,
			Args: chromeArgs{Seq: e.Seq, Tag: e.Tag, Size: e.Size, Off: e.Off, Len: e.Len, Aux: e.Aux},
		}
		if e.Tag != "" {
			ce.Name = ce.Name + ":" + e.Tag
		}
		if e.Peer >= 0 {
			peer := e.Peer
			ce.Args.Peer = &peer
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
