package obs

import (
	"sync"

	"atomio/internal/sim"
)

// CoordTracer wraps a sim.Coord and emits scheduler events: a sched.park
// when an actor goes to sleep, a sched.wake (stamped by the waker, on the
// sleeper's stream) publishing the wake bound, and a sched.resume when the
// sleeper runs again.
//
// Thread safety leans entirely on the Coord contract: Wake is called under
// the same shared-structure lock as the sleeper's Block, so the sleeper's
// park append (made in Block, under that lock) is mutex-ordered before the
// waker's wake append, and the wake append happens-before the sleeper's
// resume append because the inner Park returns only after the matching
// Wake. Outside that window only the owning actor touches its slot.
type CoordTracer struct {
	inner sim.Coord
	rec   *Recorder
	// lastT tracks each actor's latest announced virtual time so park and
	// resume events carry the actor's current clock without reaching into
	// layer internals.
	lastT []sim.VTime
}

// Trace wraps c so that park/wake/resume flow into rec. A nil rec returns
// c unwrapped — tracing off costs nothing.
func Trace(c sim.Coord, rec *Recorder) sim.Coord {
	if rec == nil || c == nil {
		return c
	}
	return &CoordTracer{inner: c, rec: rec, lastT: make([]sim.VTime, c.Actors())}
}

// Unwrap exposes the wrapped coordinator so engines that require their own
// Coord flavour (the event-loop scheduler) can recover it.
func (t *CoordTracer) Unwrap() sim.Coord { return t.inner }

// Await implements sim.Coord, recording the actor's announced time.
func (t *CoordTracer) Await(id int, at sim.VTime) {
	if at > t.lastT[id] {
		t.lastT[id] = at
	}
	t.inner.Await(id, at)
}

// Block implements sim.Coord and emits the park event. Emission happens
// here rather than in Park because Block always runs under the shared
// structure's lock while Park may run after it is dropped (the sharded
// lock table's reserve/park window): the waker needs that same lock
// before it can Wake, so the park append is mutex-ordered before the
// wake append and the park timestamp cannot race with the wake bound.
func (t *CoordTracer) Block(id int) {
	t.rec.Emit(Event{T: t.lastT[id], Actor: id, Layer: LayerSched, Kind: KindPark, Peer: -1})
	t.rec.Count(id, MetricParks, 1)
	t.inner.Block(id)
}

// Park implements sim.Coord, emitting the resume event when the sleeper
// runs again. The resume timestamp reflects the wake bound published
// while parked: the inner Park returns only after the matching Wake, and
// that handoff orders Wake's lastT write before this read.
func (t *CoordTracer) Park(id int, l sync.Locker) {
	t.inner.Park(id, l)
	t.rec.Emit(Event{T: t.lastT[id], Actor: id, Layer: LayerSched, Kind: KindResume, Peer: -1})
}

// Wake implements sim.Coord, stamping the wake bound onto the sleeper's
// stream before resuming it.
func (t *CoordTracer) Wake(id int, at sim.VTime) {
	if at > t.lastT[id] {
		t.lastT[id] = at
	}
	t.rec.Emit(Event{T: at, Actor: id, Layer: LayerSched, Kind: KindWake, Peer: -1})
	t.inner.Wake(id, at)
}

// Done implements sim.Coord.
func (t *CoordTracer) Done(id int) { t.inner.Done(id) }

// Actors implements sim.Coord.
func (t *CoordTracer) Actors() int { return t.inner.Actors() }

var _ sim.Coord = (*CoordTracer)(nil)
