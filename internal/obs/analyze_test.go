package obs

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"atomio/internal/sim"
)

func TestAttributionOrdersByDuration(t *testing.T) {
	events := []Event{
		{Layer: LayerMPI, Kind: KindSend, Peer: 1, Size: 10},
		{Layer: LayerMPI, Kind: KindSend, Peer: 1, Size: 10},
		{Layer: LayerLock, Kind: KindLockGrant, Peer: -1, Dur: 500},
		{Layer: LayerPFS, Kind: KindServiceDone, Peer: -1, Dur: 200, Size: 64},
	}
	stats := Attribution(events)
	if len(stats) != 3 {
		t.Fatalf("got %d buckets, want 3", len(stats))
	}
	if stats[0].Kind != KindLockGrant || stats[1].Kind != KindServiceDone {
		t.Errorf("not sorted by descending duration: %+v", stats)
	}
	if stats[2].Count != 2 || stats[2].Bytes != 20 {
		t.Errorf("send bucket mis-aggregated: %+v", stats[2])
	}
	if got := statName(stats[0]); got != "lock.grant" {
		t.Errorf("statName = %q", got)
	}
}

func TestMessageCountsAndPhaseTotals(t *testing.T) {
	events := []Event{
		{Layer: LayerMPI, Kind: KindSend, Tag: TagAllgather, Peer: 1},
		{Layer: LayerMPI, Kind: KindRecv, Tag: TagAllgather, Peer: 0},
		{Layer: LayerMPI, Kind: KindRecv, Tag: TagAllgather, Peer: 0},
		{Layer: LayerMPI, Kind: KindRecv, Peer: 0},
		{Layer: LayerPhase, Kind: KindPhaseSpan, Tag: "lockwait", Peer: -1, Dur: 100},
		{Layer: LayerPhase, Kind: KindPhaseSpan, Tag: "lockwait", Peer: -1, Dur: 150},
	}
	msgs := MessageCounts(events)
	if !reflect.DeepEqual(msgs, map[string]int64{TagAllgather: 2, "p2p": 1}) {
		t.Errorf("MessageCounts = %v", msgs)
	}
	phases := PhaseTotals(events)
	if !reflect.DeepEqual(phases, map[string]sim.VTime{"lockwait": 250}) {
		t.Errorf("PhaseTotals = %v", phases)
	}
}

// TestCriticalPathFollowsMessageEdge builds a two-actor chain where actor 1
// finishes last but only because it waited for actor 0's message: the path
// must cross the send→recv edge back into actor 0's early work.
func TestCriticalPathFollowsMessageEdge(t *testing.T) {
	events := []Event{
		{T: 0, Actor: 0, Seq: 0, Layer: LayerPFS, Kind: KindServiceDone, Peer: -1, Dur: 90},
		{T: 90, Actor: 0, Seq: 1, Layer: LayerMPI, Kind: KindSend, Peer: 1},
		{T: 5, Actor: 1, Seq: 0, Layer: LayerPFS, Kind: KindServiceDone, Peer: -1, Dur: 10},
		{T: 100, Actor: 1, Seq: 1, Layer: LayerMPI, Kind: KindRecv, Peer: 0, Dur: 10},
	}
	path := CriticalPath(events)
	var got [][2]int
	for _, e := range path {
		got = append(got, [2]int{e.Actor, int(e.Seq)})
	}
	want := [][2]int{{0, 0}, {0, 1}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("path = %v, want %v (recv must chain to its send, not actor 1's idle start)", got, want)
	}
}

// TestCriticalPathFollowsGrantEdge checks a waited lock grant chains to the
// overlapping release on the other actor. Grant events are stamped at the
// grant instant with Dur carrying the wait since the request.
func TestCriticalPathFollowsGrantEdge(t *testing.T) {
	events := []Event{
		{T: 0, Actor: 0, Seq: 0, Layer: LayerLock, Kind: KindLockGrant, Peer: -1, Off: 0, Len: 100},
		{T: 70, Actor: 0, Seq: 1, Layer: LayerLock, Kind: KindLockRelease, Peer: -1, Off: 0, Len: 100, Dur: 10},
		{T: 10, Actor: 1, Seq: 0, Layer: LayerLock, Kind: KindLockRequest, Peer: -1, Off: 50, Len: 100},
		{T: 80, Actor: 1, Seq: 1, Layer: LayerLock, Kind: KindLockGrant, Peer: -1, Off: 50, Len: 100, Dur: 70},
	}
	path := CriticalPath(events)
	if len(path) < 2 {
		t.Fatalf("path too short: %+v", path)
	}
	if first := path[0]; first.Actor != 0 || first.Kind != KindLockGrant {
		t.Errorf("path starts at %+v, want actor 0's grant via the release edge", first)
	}
	if last := path[len(path)-1]; last.Actor != 1 || last.Kind != KindLockGrant {
		t.Errorf("path ends at %+v, want actor 1's waited grant", last)
	}
	if CriticalPath(nil) != nil {
		t.Error("empty trace must yield an empty path")
	}
}

func TestFitExponent(t *testing.T) {
	quadratic := []ScalingPoint{
		{Procs: 4, Msgs: 4 * 3},
		{Procs: 16, Msgs: 16 * 15},
		{Procs: 64, Msgs: 64 * 63},
	}
	if b := FitExponent(quadratic); math.Abs(b-2) > 0.1 {
		t.Errorf("ring-allgather fit = %.3f, want ~2", b)
	}
	linear := []ScalingPoint{{Procs: 4, Msgs: 40}, {Procs: 16, Msgs: 160}, {Procs: 64, Msgs: 640}}
	if b := FitExponent(linear); math.Abs(b-1) > 1e-9 {
		t.Errorf("linear fit = %.3f, want 1", b)
	}
	if b := FitExponent([]ScalingPoint{{Procs: 4, Msgs: 10}}); b != 0 {
		t.Errorf("single point fit = %.3f, want 0", b)
	}
	if b := FitExponent([]ScalingPoint{{Procs: 1, Msgs: 10}, {Procs: 0, Msgs: 5}}); b != 0 {
		t.Errorf("degenerate points fit = %.3f, want 0", b)
	}
}

func TestReportRendersAllSections(t *testing.T) {
	rec := NewRecorder(2, 0)
	rec.Emit(Event{T: 0, Actor: 0, Layer: LayerMPI, Kind: KindSend, Tag: TagAllgather, Peer: 1, Size: 8})
	rec.Emit(Event{T: 10, Actor: 1, Layer: LayerMPI, Kind: KindRecv, Tag: TagAllgather, Peer: 0, Size: 8, Dur: 5})
	rec.Emit(Event{T: 20, Actor: 1, Layer: LayerPhase, Kind: KindPhaseSpan, Tag: "transfer", Peer: -1, Dur: 40})
	rec.Count(0, MetricMsgs, 1)
	out := Report(&TraceData{Procs: 2, Events: rec.Events(), Metrics: rec.Metrics()})
	for _, want := range []string{
		"trace: 2 procs, 3 events",
		"attribution",
		"phase totals",
		"transfer",
		"messages per collective",
		"allgather",
		"critical path",
		"metrics:",
		MetricMsgs,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
