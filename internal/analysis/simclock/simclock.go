// Package simclock forbids host wall-clock and unseeded randomness
// inside the simulation packages, so virtual time (the only time the
// paper's figures report) can never be contaminated by the machine the
// simulation happens to run on. PR 1's determinism contract — figure8
// output byte-identical at any worker count — survives only while
// time.Now, time.Since, and math/rand's process-seeded global source
// stay out of every package that feeds simulated output; the runner's
// wall_ns measurement sites are the sanctioned exceptions, carried as
// //atomiovet:allow comments with their rationale.
package simclock

import (
	"go/ast"
	"go/types"

	"atomio/internal/analysis"
)

// Analyzer is the simclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock reads and unseeded randomness in simulation packages",
	Run:  run,
}

// outside lists the module subtrees that are not simulation code: the
// binaries and flag layer may report host wall time, and the analysis
// suite never touches virtual time at all. Everything else is in scope.
var outside = []string{"cmd", "examples", "internal/cli", "internal/analysis"}

// WallClock is the banned surface of package time: functions that read
// or schedule against the host clock. Pure conversions and constants
// (time.Duration, time.Unix arithmetic) stay legal. Exported because
// vtflow uses the same set as its taint sources.
var WallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seeded lists the math/rand and math/rand/v2 names that construct
// explicitly-seeded generators and therefore stay legal; every other
// function in those packages draws from the process-seeded global
// source.
var seeded = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	rel := analysis.ModuleRel(pass.Pkg.Path())
	if analysis.InAnyScope(rel, outside) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if WallClock[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the host clock: simulation packages report virtual time only (use sim.VTime)",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !seeded[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-seeded global source: use rand.New with an explicit experiment seed",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
