package simclock_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/simclock"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, simclock.Analyzer,
		"./internal/analysis/testdata/src/simclock/internal/sim/clockfix",
		"./internal/analysis/testdata/src/simclock/internal/cli/clockok")
}
