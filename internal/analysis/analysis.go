// Package analysis is atomiovet's framework: a dependency-free analogue
// of golang.org/x/tools/go/analysis (unavailable here — the module is
// dependency-free by policy) carrying exactly what the atomio invariant
// checkers need. An Analyzer inspects one type-checked package through a
// Pass and reports Diagnostics; the suppression layer (suppress.go)
// filters them through `//atomiovet:allow <analyzer> <reason>` comments;
// the layer table (layers.go) declares the package DAG the layering
// analyzer enforces. The driver is cmd/atomiovet; the fixture harness is
// internal/analysis/analyzertest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects the package in
// pass and reports findings via pass.Report; a non-nil error aborts the
// whole vet run (reserved for internal failures, not findings).
type Analyzer struct {
	Name string // short lowercase name, used in diagnostics and allow comments
	Doc  string // one-paragraph description of the checked contract
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col form editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Target is the minimal package shape the driver runs analyzers over.
// internal/analysis/load.Package satisfies it structurally; the indirection
// keeps the framework free of the loader (and its os/exec dependency).
type Target struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies each analyzer to the package and returns the raw (not yet
// suppression-filtered) diagnostics in position order.
func Run(t *Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     t.Fset,
			Files:    t.Files,
			Pkg:      t.Pkg,
			Info:     t.Info,
			diags:    &diags,
		}
		if err := pass.Analyzer.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, t.Path, err)
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, analyzer, message.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ModuleRel maps a package import path to its module-relative form used
// throughout the layer table and the analyzers' scope checks: "" is the
// facade root, "internal/lock" an internal package. Fixture packages
// under internal/analysis/testdata/src/<group>/ are virtualized to the
// path after the group, so a fixture at
// testdata/src/layering/examples/bad is checked exactly as
// "examples/bad" would be.
func ModuleRel(pkgpath string) string {
	const fixtures = "/testdata/src/"
	if i := strings.Index(pkgpath, fixtures); i >= 0 {
		rest := pkgpath[i+len(fixtures):]
		if _, after, ok := strings.Cut(rest, "/"); ok {
			return after
		}
		return "" // a bare fixture group plays the facade root
	}
	rel := strings.TrimPrefix(pkgpath, ModulePath)
	return strings.TrimPrefix(rel, "/")
}

// ModulePath is the module this suite vets. Analyzers use it to
// recognize intra-module imports.
const ModulePath = "atomio"

// HasPathPrefix reports whether module-relative path p is prefix itself
// or lies under it, segment-aware ("internal/mpi" does not cover
// "internal/mpiio"). An empty prefix matches only the module root.
func HasPathPrefix(p, prefix string) bool {
	if prefix == "" {
		return p == ""
	}
	return p == prefix || strings.HasPrefix(p, prefix+"/")
}

// InAnyScope reports whether module-relative path p falls under one of
// the given scopes.
func InAnyScope(p string, scopes []string) bool {
	for _, s := range scopes {
		if HasPathPrefix(p, s) {
			return true
		}
	}
	return false
}
