// Package layering enforces the package DAG of docs/ARCHITECTURE.md
// from the declarative table in internal/analysis/layers.go: every
// intra-module import must be sanctioned by the importing package's
// layer rule, and every package must be covered by a rule. It replaces
// — and strictly generalizes — the old CI grep that only kept
// examples/ off atomio/internal: the same table now also pins the core
// invariants (core never imports harness or runner, sim imports
// nothing, binaries speak facade + internal/cli).
package layering

import (
	"sort"
	"strconv"
	"strings"

	"atomio/internal/analysis"
)

// Analyzer is the layering pass.
var Analyzer = &analysis.Analyzer{
	Name: "layering",
	Doc:  "enforce the docs/ARCHITECTURE.md package DAG from the layers.go table",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	rel := analysis.ModuleRel(pass.Pkg.Path())
	rule := analysis.LayerFor(rel)
	if rule == nil {
		pass.Reportf(pass.Files[0].Name.Pos(),
			"package %q is not covered by the layer table: add it to internal/analysis/layers.go with its permitted imports",
			rel)
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != analysis.ModulePath && !strings.HasPrefix(path, analysis.ModulePath+"/") {
				continue // stdlib (or another module): not the layer table's business
			}
			target := analysis.ModuleRel(path)
			if target == rel || analysis.InAnyScope(target, rule.Allow) {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s breaks layering: %s may import only {%s} (%s)",
				describe(target), describe(rel), allowed(rule), rule.Why)
		}
	}
	return nil
}

// describe names a module-relative path in diagnostics.
func describe(rel string) string {
	if rel == "" {
		return "the atomio facade"
	}
	return rel
}

// allowed renders a rule's allow set compactly and deterministically.
func allowed(rule *analysis.Layer) string {
	if len(rule.Allow) == 0 {
		return "the stdlib"
	}
	names := make([]string, len(rule.Allow))
	for i, a := range rule.Allow {
		if a == "" {
			a = "atomio"
		}
		names[i] = a
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
