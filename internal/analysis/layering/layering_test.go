package layering_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/layering"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, layering.Analyzer,
		"./internal/analysis/testdata/src/layering/examples/badimport",
		"./internal/analysis/testdata/src/layering/examples/goodimport",
		"./internal/analysis/testdata/src/layering/internal/core/badcore",
		"./internal/analysis/testdata/src/layering/cmd/badcmd",
		"./internal/analysis/testdata/src/layering/cmd/goodcmd",
		"./internal/analysis/testdata/src/layering/zzz/orphan")
}
