package detwalk_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/detwalk"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, detwalk.Analyzer,
		"./internal/analysis/testdata/src/detwalk/internal/core/detfix")
}
