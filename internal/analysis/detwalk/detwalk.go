// Package detwalk flags `for range` over maps in the output-bearing
// packages — the ones whose computation reaches figure8/sweep output —
// unless the iteration provably cannot leak Go's randomized map order:
// either the loop only collects keys that are subsequently sorted in
// the same function, or every statement in the body is commutative
// accumulation (counters, +=/|=-style folds, keyed writes into another
// map, min/max tracking). Anything else is exactly the bug class PR 1's
// sim.Gate was built to evict: host-dependent order leaking into
// simulated output. Deliberate exceptions carry //atomiovet:allow with
// a written reason.
package detwalk

import (
	"go/ast"
	"go/token"
	"go/types"

	"atomio/internal/analysis"
)

// Analyzer is the detwalk pass.
var Analyzer = &analysis.Analyzer{
	Name: "detwalk",
	Doc:  "map iteration in output-bearing packages must sort keys or be order-insensitive",
	Run:  run,
}

// scope lists the output-bearing subtrees: the facade ("") plus every
// internal package whose state feeds simulated results.
var scope = []string{"", "internal/core", "internal/harness", "internal/lock",
	"internal/mpi", "internal/mpiio", "internal/obs", "internal/pfs", "internal/runner", "internal/sim"}

func run(pass *analysis.Pass) error {
	if !analysis.InAnyScope(analysis.ModuleRel(pass.Pkg.Path()), scope) {
		return nil
	}
	for _, f := range pass.Files {
		// Walk functions so each range statement can see its enclosing
		// body (the collect-then-sort idiom needs the statements after
		// the loop).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				rs, ok := m.(*ast.RangeStmt)
				if !ok {
					return true
				}
				checkRange(pass, rs, body)
				return true
			})
			// The inner walk already visited any nested function
			// literals' range statements.
			return false
		})
	}
	return nil
}

// checkRange vets one range statement found inside fnBody.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	key := rangeVar(pass, rs.Key)
	val := rangeVar(pass, rs.Value)
	if collectsSortedKeys(pass, rs, key, fnBody) {
		return
	}
	if orderInsensitive(pass, rs.Body, key, val) {
		return
	}
	pass.Reportf(rs.Pos(),
		"iteration over map %s has randomized order, which can leak into simulated output: sort the keys first, or keep the body commutative",
		types.ExprString(rs.X))
}

// rangeVar resolves a range key/value identifier to its object.
func rangeVar(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// collectsSortedKeys recognizes the sanctioned extraction idiom: the
// body is exactly `s = append(s, k)` and s is passed to a sort.* or
// slices.Sort* call later in the same function body.
func collectsSortedKeys(pass *analysis.Pass, rs *ast.RangeStmt, key types.Object, fnBody *ast.BlockStmt) bool {
	if key == nil || len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if src, ok := call.Args[0].(*ast.Ident); !ok || pass.Info.Uses[src] != objOf(pass, dst) {
		return false
	}
	if arg, ok := call.Args[1].(*ast.Ident); !ok || pass.Info.Uses[arg] != key {
		return false
	}
	// The collected slice must hit a sort after the loop.
	slice := objOf(pass, dst)
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.Info.Uses[pkg].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == slice {
					sorted = true
				}
				return true
			})
		}
		return true
	})
	return sorted
}

// objOf resolves an identifier whether it is a use or a definition.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// orderInsensitive reports whether every statement in the body is
// commutative accumulation, so any iteration order computes the same
// state: counters (x++/x--), op-assign folds (+= -= *= |= &= ^=),
// keyed writes into another map (dst[k] = ... — each key written at
// most once), idempotent boolean sets, min/max tracking ifs, and
// continue. A keyed write may not read variables the loop itself
// mutates, which would smuggle order back in.
func orderInsensitive(pass *analysis.Pass, body *ast.BlockStmt, key, val types.Object) bool {
	mutated := mutatedVars(pass, body)
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			return assignOK(pass, st, key, mutated)
		case *ast.IfStmt:
			return minMaxIf(pass, st)
		case *ast.BranchStmt:
			return st.Tok == token.CONTINUE
		case *ast.EmptyStmt:
			return true
		case *ast.BlockStmt:
			for _, inner := range st.List {
				if !stmtOK(inner) {
					return false
				}
			}
			return true
		}
		return false
	}
	for _, s := range body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// assignOK accepts commutative-fold assignments and keyed map writes.
func assignOK(pass *analysis.Pass, st *ast.AssignStmt, key types.Object, mutated map[types.Object]bool) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.ASSIGN:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return false
		}
		idx, ok := st.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		// The write must be keyed by the iteration key, so each key is
		// written exactly once regardless of order…
		id, ok := idx.Index.(*ast.Ident)
		if !ok || key == nil || pass.Info.Uses[id] != key {
			return false
		}
		// …and the value must not read loop-mutated state.
		clean := true
		ast.Inspect(st.Rhs[0], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && mutated[pass.Info.Uses[id]] {
				clean = false
			}
			return true
		})
		return clean
	}
	return false
}

// minMaxIf accepts `if a < b { x = y }` shapes where the condition
// compares exactly the two sides of the assignment — order-insensitive
// min/max tracking.
func minMaxIf(pass *analysis.Pass, st *ast.IfStmt) bool {
	if st.Init != nil || st.Else != nil || len(st.Body.List) != 1 {
		return false
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	assign, ok := st.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, rhs := types.ExprString(assign.Lhs[0]), types.ExprString(assign.Rhs[0])
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// mutatedVars collects every object assigned or inc/dec'd anywhere in
// the body (keyed map writes aside — those are the sanctioned sinks).
func mutatedVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		}
		return true
	})
	return out
}
