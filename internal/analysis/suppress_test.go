package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// suppressOn parses src, applies Suppress to the given raw diagnostics
// (known = ran, the repo-wide driver's configuration), and returns the
// surviving messages.
func suppressOn(t *testing.T, src string, diags []Diagnostic, ran map[string]bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	out := Suppress(fset, []*ast.File{f}, diags, ran, ran)
	msgs := make([]string, 0, len(out))
	for _, d := range out {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	return msgs
}

// suppressOnFiles is suppressOn for a multi-file package: sources maps
// filename to content, and the filenames are what diagAt positions must
// use.
func suppressOnFiles(t *testing.T, sources map[string]string, diags []Diagnostic, ran map[string]bool) []string {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range []string{"a.go", "b.go"} {
		src, ok := sources[name]
		if !ok {
			continue
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	out := Suppress(fset, files, diags, ran, ran)
	msgs := make([]string, 0, len(out))
	for _, d := range out {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	return msgs
}

func diagAt(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer, Message: msg}
}

func TestSuppressSameAndNextLine(t *testing.T) {
	src := `package p

//atomiovet:allow detwalk iteration feeds a commutative histogram
var a = 1

var b = 2 //atomiovet:allow simclock wall clock is reported, not simulated
`
	ran := map[string]bool{"detwalk": true, "simclock": true}
	got := suppressOn(t, src, []Diagnostic{
		diagAt("detwalk", "x.go", 4, "map iteration"),
		diagAt("simclock", "x.go", 6, "time.Now"),
	}, ran)
	if len(got) != 0 {
		t.Fatalf("want all suppressed, got %v", got)
	}
}

func TestSuppressMissingReason(t *testing.T) {
	src := `package p

//atomiovet:allow detwalk
var a = 1
`
	got := suppressOn(t, src, []Diagnostic{
		diagAt("detwalk", "x.go", 4, "map iteration"),
	}, map[string]bool{"detwalk": true})
	want := []string{
		"atomiovet: allow comment for detwalk has no reason: every suppression must say why",
		"detwalk: map iteration",
	}
	assertMsgs(t, got, want)
}

func TestSuppressUnknownAnalyzer(t *testing.T) {
	src := `package p

//atomiovet:allow nosuchcheck because reasons
var a = 1
`
	got := suppressOn(t, src, nil, map[string]bool{"detwalk": true})
	assertMsgs(t, got, []string{
		`atomiovet: allow comment names unknown analyzer "nosuchcheck"`,
	})
}

func TestSuppressStaleAllow(t *testing.T) {
	src := `package p

//atomiovet:allow detwalk this used to fire before the sort landed
var a = 1
`
	got := suppressOn(t, src, nil, map[string]bool{"detwalk": true})
	assertMsgs(t, got, []string{
		"atomiovet: stale allow comment: detwalk reports nothing here; delete it",
	})
}

// TestSuppressStaleOnlyForRanAnalyzers pins that a partial run (an
// analyzer's own fixture tests) never miscalls another analyzer's allows
// stale: simclock is known but did not run, so its unused allow stands.
func TestSuppressStaleOnlyForRanAnalyzers(t *testing.T) {
	src := `package p

//atomiovet:allow simclock wall clock is reported, not simulated
var a = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"detwalk": true, "simclock": true}
	ran := map[string]bool{"detwalk": true}
	out := Suppress(fset, []*ast.File{f}, nil, known, ran)
	if len(out) != 0 {
		t.Errorf("want no diagnostics for an unused allow of a non-run analyzer, got %v", out)
	}
}

func TestSuppressMetaUnsuppressible(t *testing.T) {
	src := `package p

//atomiovet:allow atomiovet trying to silence the suppression checker
var a = 1
`
	got := suppressOn(t, src, nil, map[string]bool{"detwalk": true})
	assertMsgs(t, got, []string{
		"atomiovet: the suppression facility's own diagnostics cannot be suppressed",
	})
}

// TestSuppressAllowDoesNotCrossFiles pins the per-file accounting both
// ways at once: an allow in a.go neither suppresses a same-analyzer
// finding at the same line of b.go, nor is excused from staleness by
// that finding's existence elsewhere in the package.
func TestSuppressAllowDoesNotCrossFiles(t *testing.T) {
	sources := map[string]string{
		"a.go": `package p

//atomiovet:allow detwalk iteration feeds a commutative histogram
var a = 1
`,
		"b.go": `package p

var b = 2

var c = 3
`,
	}
	ran := map[string]bool{"detwalk": true}
	got := suppressOnFiles(t, sources, []Diagnostic{
		diagAt("detwalk", "b.go", 4, "map iteration"),
	}, ran)
	assertMsgs(t, got, []string{
		"atomiovet: stale allow comment: detwalk reports nothing here; delete it",
		"detwalk: map iteration",
	})
}

// TestSuppressStalePerFileAccounting pins that hit accounting is per
// (analyzer, file): detwalk findings suppressed by b.go's own allow do
// not vouch for a.go's unused allow, which stays flatly stale, while an
// unused allow in b.go — where detwalk did fire — gets the softer
// move-or-delete diagnostic.
func TestSuppressStalePerFileAccounting(t *testing.T) {
	sources := map[string]string{
		"a.go": `package p

//atomiovet:allow detwalk leftover from before the sort landed
var a = 1
`,
		"b.go": `package p

//atomiovet:allow detwalk iteration feeds a commutative histogram
var b = 2

//atomiovet:allow detwalk leftover on a line detwalk no longer flags
var c = 3
`,
	}
	ran := map[string]bool{"detwalk": true}
	got := suppressOnFiles(t, sources, []Diagnostic{
		diagAt("detwalk", "b.go", 4, "map iteration"),
	}, ran)
	assertMsgs(t, got, []string{
		"atomiovet: stale allow comment: detwalk reports nothing here; delete it",
		"atomiovet: stale allow comment: detwalk fires elsewhere in this file but not on these lines; move or delete it",
	})
}

func assertMsgs(t *testing.T, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("diagnostics mismatch\n got: %v\nwant: %v", got, want)
	}
}
