// Package cfg builds per-function control-flow graphs from go/ast, the
// flow substrate under atomiovet's flow-sensitive analyzers. A Graph is
// a list of basic blocks; each block carries the statements and control
// expressions executed in order and the edges to its possible
// successors. Branches (if/for/range/switch/select), labeled jumps
// (break/continue/goto), fallthrough, and early exits (return, panic)
// all become explicit edges, so a dataflow client (internal/analysis/
// dataflow) can reason about "on every path" and "on some path"
// properties instead of pattern-matching statement syntax.
//
// Two deliberate modelling choices matter to the analyzers built on top:
//
//   - Deferred calls never appear inside the flow. A *ast.DeferStmt node
//     is recorded in Graph.Defers (and left in its block so positions
//     stay visible), but the deferred call itself runs at function exit
//     — a `defer mu.Unlock()` therefore does not release the mutex
//     anywhere in the body, which is exactly the semantics the
//     coordcontract analyzer needs.
//   - A call to the builtin panic terminates its block with no
//     successors, like return: facts never flow past a path that cannot
//     fall through.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every basic block in creation order; Blocks[0] is the
	// entry block. Blocks unreachable from the entry may exist (dead
	// code after return); dataflow clients simply never visit them.
	Blocks []*Block
	// Entry is the block control enters at.
	Entry *Block
	// Exit is the single synthetic exit block: every return and every
	// fall-off-the-end path jumps to it. It carries no nodes.
	Exit *Block
	// Defers lists every defer statement in the body, in source order.
	// Deferred calls execute at function exit (LIFO), not where they
	// appear in the flow.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal run of nodes with one entry point,
// executed in order, ending in zero or more successor edges.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes holds the statements and control expressions of the block in
	// execution order. Control expressions appear as bare ast.Expr: an
	// if or for condition is the last node of the block that branches on
	// it, a range/switch/select subject likewise precedes its dispatch.
	Nodes []ast.Node
	// Succs are the possible successors. For a block whose last node is
	// a branch condition (Cond != nil), Succs[0] is the true edge and
	// Succs[1] the false edge.
	Succs []*Block
	// Cond, when non-nil, is the boolean condition the block ends on;
	// Succs[0] is taken when it holds, Succs[1] when it does not.
	Cond ast.Expr
	// kind labels the block's role for debug dumps ("entry", "if.then",
	// "for.body", ...).
	kind string
}

// New builds the control-flow graph of one function body. A nil body
// (declaration without body) yields a graph with only entry and exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmt(body)
	}
	b.jump(b.g.Exit) // fall off the end
	return b.g
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block // current block; nil after a terminator (unreachable)

	// breaks / continues map enclosing loop/switch/select statements to
	// their break and continue targets, innermost last.
	breaks    []jumpTarget
	continues []jumpTarget

	// labels maps label names to their blocks for goto and labeled
	// break/continue; gotos to labels not yet seen are patched at the
	// end of the enclosing function build.
	labels map[string]*Block
	// labelOf remembers the statement a label names, so labeled
	// break/continue can find the matching loop target.
	labelStmt map[ast.Stmt]string
}

// jumpTarget associates a breakable/continuable statement with its exit
// (break) or back-edge (continue) block and optional label.
type jumpTarget struct {
	stmt  ast.Stmt
	label string
	block *Block
}

// newBlock appends a fresh block to the graph.
func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the current block; a nil current block means the
// node is unreachable, and it is dropped (dead code carries no facts).
func (b *builder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump wires an edge from the current block to dst and leaves the
// current block terminated.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock makes dst current, to be filled next.
func (b *builder) startBlock(dst *Block) { b.cur = dst }

// labelTarget returns (creating on demand) the block a label names.
func (b *builder) labelTarget(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock("label." + name)
		b.labels[name] = blk
	}
	return blk
}

// stmt lowers one statement into the graph.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		alt := done
		if s.Else != nil {
			alt = b.newBlock("if.else")
		}
		if condBlock != nil {
			condBlock.Cond = s.Cond
			condBlock.Succs = append(condBlock.Succs, then, alt)
		}
		b.cur = nil
		b.startBlock(then)
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.startBlock(alt)
			b.stmt(s.Else)
			b.jump(done)
		}
		b.startBlock(done)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			head.Cond = s.Cond
			head.Succs = append(head.Succs, body, done)
			b.cur = nil
		} else {
			b.jump(body)
		}
		b.pushTargets(s, done, post)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popTargets()
		b.jump(post)
		if s.Post != nil {
			b.startBlock(post)
			b.stmt(s.Post)
			b.jump(head)
		}
		b.startBlock(done)

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.add(s.X)
		b.jump(head)
		b.startBlock(head)
		// The range dispatch itself: assigns the iteration variables.
		b.add(s)
		head.Succs = append(head.Succs, body, done)
		b.cur = nil
		b.pushTargets(s, done, head)
		b.startBlock(body)
		b.stmt(s.Body)
		b.popTargets()
		b.jump(head)
		b.startBlock(done)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body, nil)

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		dispatch := b.cur
		b.pushTargets(s, done, nil)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			blk := b.newBlock("select.case")
			if dispatch != nil {
				dispatch.Succs = append(dispatch.Succs, blk)
			}
			b.startBlock(blk)
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, inner := range cc.Body {
				b.stmt(inner)
			}
			b.jump(done)
		}
		// A select with no default blocks until a case is ready: there
		// is no fall-through edge from the dispatch.
		b.popTargets()
		b.cur = nil
		b.startBlock(done)

	case *ast.LabeledStmt:
		target := b.labelTarget(s.Label.Name)
		if b.labelStmt == nil {
			b.labelStmt = make(map[ast.Stmt]string)
		}
		b.labelStmt[s.Stmt] = s.Label.Name
		b.jump(target)
		b.startBlock(target)
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			// panic never falls through; like return, but the exit is
			// abnormal, so no edge at all.
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// switchBody lowers the case clauses of a value or type switch: every
// clause is a successor of the dispatch block, fallthrough chains clause
// bodies, and a missing default adds a direct dispatch→done edge.
func (b *builder) switchBody(sw ast.Stmt, body *ast.BlockStmt, _ []*Block) {
	dispatch := b.cur
	done := b.newBlock("switch.done")
	b.pushTargets(sw, done, nil)
	var clauseBlocks []*Block
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		blk := b.newBlock("switch.case")
		if cc.List == nil {
			hasDefault = true
		}
		if dispatch != nil {
			dispatch.Succs = append(dispatch.Succs, blk)
		}
		clauseBlocks = append(clauseBlocks, blk)
	}
	if !hasDefault && dispatch != nil {
		dispatch.Succs = append(dispatch.Succs, done)
	}
	b.cur = nil
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		b.startBlock(clauseBlocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				if i+1 < len(clauseBlocks) {
					b.add(br)
					b.jump(clauseBlocks[i+1])
				}
				continue
			}
			b.stmt(inner)
		}
		if !fallsThrough {
			b.jump(done)
		}
	}
	b.popTargets()
	b.startBlock(done)
}

// branch wires break/continue/goto edges.
func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.breaks) - 1; i >= 0; i-- {
			t := b.breaks[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.jump(t.block)
				return
			}
		}
		b.cur = nil
	case "continue":
		for i := len(b.continues) - 1; i >= 0; i-- {
			t := b.continues[i]
			if t.block == nil {
				continue // switch/select: not continuable
			}
			if s.Label == nil || t.label == s.Label.Name {
				b.jump(t.block)
				return
			}
		}
		b.cur = nil
	case "goto":
		if s.Label != nil {
			b.jump(b.labelTarget(s.Label.Name))
			return
		}
		b.cur = nil
	default: // fallthrough outside switchBody: already handled there
		b.cur = nil
	}
}

// pushTargets registers the break and continue targets of one enclosing
// breakable statement; continueTo may be nil (switch, select).
func (b *builder) pushTargets(s ast.Stmt, breakTo, continueTo *Block) {
	label := b.labelStmt[s]
	b.breaks = append(b.breaks, jumpTarget{stmt: s, label: label, block: breakTo})
	b.continues = append(b.continues, jumpTarget{stmt: s, label: label, block: continueTo})
}

// popTargets unwinds one pushTargets.
func (b *builder) popTargets() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// isPanic reports whether e is a call to the builtin panic. It is a
// syntactic check: a local function named panic would defeat it, and the
// repo's own style never shadows builtins (the shadow analyzer guards
// adjacent mistakes).
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Reachable returns the set of blocks reachable from the entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// Preds computes the predecessor lists of every block, for backward
// analyses.
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Dump renders the graph in a compact textual form for tests and
// debugging: one line per block, "i(kind): n nodes -> succ indexes".
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s): %d", b.Index, b.kind, len(b.Nodes))
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " %d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
