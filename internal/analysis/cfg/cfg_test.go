package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and
// builds its CFG.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body)
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	x := 1
	x++
	_ = x
}`, "f")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3\n%s", len(g.Entry.Nodes), g.Dump())
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should fall through to exit\n%s", g.Dump())
	}
}

func TestIfElseJoin(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) int {
	if a > 0 {
		a = 1
	} else {
		a = 2
	}
	return a
}`, "f")
	if g.Entry.Cond == nil {
		t.Fatalf("entry should end on the if condition\n%s", g.Dump())
	}
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block needs then and else successors\n%s", g.Dump())
	}
	then, alt := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(then.Succs) != 1 || len(alt.Succs) != 1 || then.Succs[0] != alt.Succs[0] {
		t.Errorf("then and else must join\n%s", g.Dump())
	}
	join := then.Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Errorf("join block should return to exit\n%s", g.Dump())
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}`, "f")
	var head *Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no condition block\n%s", g.Dump())
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop head needs body and done successors\n%s", g.Dump())
	}
	body := head.Succs[0]
	// body -> post -> head: a path from the body must reach head again.
	reached := false
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		if b == head {
			reached = true
			return
		}
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(body)
	if !reached {
		t.Errorf("no back edge from body to head\n%s", g.Dump())
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}`, "f")
	// The range head has two successors (body, done) and the body loops
	// back to the head.
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = b
			}
		}
	}
	if head == nil || len(head.Succs) != 2 {
		t.Fatalf("range head missing or malformed\n%s", g.Dump())
	}
	body := head.Succs[0]
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Errorf("range body should loop back to head\n%s", g.Dump())
	}
}

func TestReturnTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) int {
	if a > 0 {
		return 1
	}
	return 2
}`, "f")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("return block %d must edge only to exit\n%s", b.Index, g.Dump())
				}
			}
		}
	}
}

func TestPanicHasNoSuccessors(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) {
	if a < 0 {
		panic("negative")
	}
	_ = a
}`, "f")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(b.Succs) != 0 {
						t.Errorf("panic block %d must have no successors\n%s", b.Index, g.Dump())
					}
				}
			}
		}
	}
}

func TestDeferRecordedNotFlowed(t *testing.T) {
	g := buildFunc(t, `package p
import "sync"
func f(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	_ = mu
}`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 recorded defer, got %d", len(g.Defers))
	}
	// The defer statement stays visible in its block (positions), but is
	// the DeferStmt node, never a bare call: flow clients skip it.
	found := false
	for _, n := range g.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("defer statement should appear in its source block\n%s", g.Dump())
	}
}

func TestSwitchEdges(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) int {
	switch a {
	case 1:
		return 10
	case 2:
		a = 20
	default:
		a = 30
	}
	return a
}`, "f")
	// Dispatch block: the entry, with 3 clause successors (default
	// present, so no direct edge to done).
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("dispatch should have one successor per clause\n%s", g.Dump())
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) {
	switch a {
	case 1:
		a = 10
	}
	_ = a
}`, "f")
	// One clause + the no-default edge to done.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("dispatch of a default-less switch needs the skip edge\n%s", g.Dump())
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i == 1 {
			continue
		}
		_ = i
	}
}`, "f")
	// Sanity: the graph is connected and the exit is reachable.
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable\n%s", g.Dump())
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 2 {
				break outer
			}
		}
	}
}`, "f")
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable through labeled break\n%s", g.Dump())
	}
}

func TestGotoForwards(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) {
	if a > 0 {
		goto done
	}
	a = 2
done:
	_ = a
}`, "f")
	if !g.Reachable()[g.Exit] {
		t.Errorf("exit unreachable through goto\n%s", g.Dump())
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	g := buildFunc(t, `package p
func f(c chan int) int {
	select {
	case v := <-c:
		return v
	}
}`, "f")
	// The dispatch has exactly one successor (the single case); no
	// fall-through edge exists.
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("select dispatch should only reach its cases\n%s", g.Dump())
	}
}

func TestDeadCodeDropped(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	return 1
	return 2
}`, "f")
	// The second return is unreachable; no block reachable from entry
	// contains it.
	reach := g.Reachable()
	count := 0
	for b := range reach {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				count++
			}
		}
	}
	if count != 1 {
		t.Errorf("want exactly 1 reachable return, got %d\n%s", count, g.Dump())
	}
}

func TestDumpStable(t *testing.T) {
	g := buildFunc(t, `package p
func f(a int) {
	if a > 0 {
		a = 1
	}
}`, "f")
	d := g.Dump()
	if !strings.Contains(d, "entry") || !strings.Contains(d, "exit") {
		t.Errorf("dump should name entry and exit blocks:\n%s", d)
	}
}
