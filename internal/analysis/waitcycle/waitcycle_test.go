package waitcycle_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/waitcycle"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, waitcycle.Analyzer,
		"./internal/analysis/testdata/src/waitcycle/internal/lock/cyclefix")
}
