// Package waitcycle enforces path-sensitive ascending order on
// cross-shard mutex acquisitions inside internal/lock. The shardorder
// pass proves the loop idiom (range ascending, release descending);
// waitcycle covers everything shardorder cannot see: straight-line and
// branchy code that acquires two indexed shard mutexes must do so in
// ascending index order on every path, or the two-phase reserve/commit
// protocol's deadlock-freedom argument breaks.
//
// The check runs a dataflow pass (internal/analysis/cfg + dataflow)
// whose fact has two halves with opposite join flavours:
//
//   - held: the indexed mutexes that MAY be held (union join — a lock
//     taken on any path into the point is a hazard),
//   - conds: the index comparisons that MUST hold (intersection join —
//     an ordering proof is only a proof if every path establishes it).
//
// Branch edges teach the conds half: the true edge of `if a < b` adds
// a < b, the false edge its negation b <= a; && and || distribute in
// the obvious one-sided way. The swap idiom `a, b = b, a` renames the
// two variables inside every known fact, so guard-and-swap
// normalization proves its own ordering. Reassigning a variable kills
// every fact that mentions it — which is also what keeps the ascending
// range loop clean: each iteration redefines the index variable, so the
// previously-acquired descriptor no longer names a comparable mutex
// (the loop's direction is shardorder's job).
//
// An acquisition of base[i] while base[j] may be held is legal only if
// the conds half proves j < i (or j <= i: the sorted, deduplicated id
// contract makes equality impossible), or both indices are integer
// literals in ascending order.
package waitcycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"atomio/internal/analysis"
	"atomio/internal/analysis/cfg"
	"atomio/internal/analysis/dataflow"
)

// Analyzer is the waitcycle pass.
var Analyzer = &analysis.Analyzer{
	Name: "waitcycle",
	Doc:  "cross-shard mutex acquisitions must be provably ascending on every path",
	Run:  run,
}

// scope is where the sharded two-phase protocol lives.
var scope = []string{"internal/lock"}

// mutexDesc is one indexed mutex: base has the index position blanked
// ("st.shards[].mu"), idx is the index expression's text.
type mutexDesc struct {
	base string
	idx  string
}

// cond is one comparison known to hold: x op y with op "<" or "<=".
// Strict facts are stored closed under weakening (x<y implies x<=y), so
// intersecting a strict path with a non-strict one keeps the shared
// truth.
type cond struct {
	x, op, y string
}

// fact is the per-point analysis state.
type fact struct {
	held  dataflow.Set[mutexDesc]
	conds dataflow.Set[cond]
}

func copyFact(f fact) fact {
	return fact{held: dataflow.CopySet(f.held), conds: dataflow.CopySet(f.conds)}
}

func run(pass *analysis.Pass) error {
	if !analysis.InAnyScope(analysis.ModuleRel(pass.Pkg.Path()), scope) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	spec := dataflow.Spec[fact]{
		Dir:      dataflow.Forward,
		Boundary: fact{held: dataflow.Set[mutexDesc]{}, conds: dataflow.Set[cond]{}},
		Join: func(acc, src fact) fact {
			acc.held = dataflow.Union(acc.held, src.held)
			acc.conds = dataflow.Intersect(acc.conds, src.conds)
			return acc
		},
		Equal: func(a, b fact) bool {
			return dataflow.EqualSets(a.held, b.held) && dataflow.EqualSets(a.conds, b.conds)
		},
		Copy: copyFact,
		Transfer: func(b *cfg.Block, in fact) fact {
			for _, n := range b.Nodes {
				applyOps(pass, n, in, nil)
			}
			return in
		},
		EdgeTransfer: func(from, to *cfg.Block, f fact) fact {
			if from.Cond == nil || len(from.Succs) != 2 || from.Succs[0] == from.Succs[1] {
				return f
			}
			ef := copyFact(f)
			learn(ef.conds, from.Cond, to == from.Succs[0])
			return ef
		},
	}
	res := dataflow.Solve(g, spec)

	// Replay reachable blocks, checking acquisitions at their exact
	// point (the fact changes mid-block).
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		f := copyFact(in)
		for _, n := range b.Nodes {
			applyOps(pass, n, f, pass)
		}
	}
}

// applyOps folds one CFG node into the fact; when report is non-nil,
// out-of-order acquisitions are diagnosed as they happen. Deferred
// calls run at exit and function literals own their flow: both are
// skipped.
func applyOps(pass *analysis.Pass, n ast.Node, f fact, report *analysis.Pass) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			applyCall(pass, s, f, report)
		case *ast.AssignStmt:
			if isSwap(s) {
				a := types.ExprString(s.Lhs[0])
				b := types.ExprString(s.Lhs[1])
				renameAll(f, a, b)
				return true
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					killMentions(f, id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				killMentions(f, id.Name)
			}
		case *ast.RangeStmt:
			// The head block holds the whole RangeStmt as its dispatch
			// node; the body belongs to other blocks. Kill the iteration
			// variables and do not descend.
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					killMentions(f, id.Name)
				}
			}
			return false
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							killMentions(f, name.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// applyCall handles one indexed-mutex Lock/Unlock, checking order on
// acquisition when report is non-nil.
func applyCall(pass *analysis.Pass, call *ast.CallExpr, f fact, report *analysis.Pass) {
	d, acquire, ok := indexedMutexOp(call)
	if !ok {
		return
	}
	if !acquire {
		delete(f.held, d)
		return
	}
	if report != nil {
		for h := range f.held {
			if h.base != d.base {
				continue
			}
			if proves(f.conds, h.idx, d.idx) {
				continue
			}
			report.Reportf(call.Pos(),
				"cross-shard acquisition out of order: %s may already be held when %s is acquired and no path condition proves %s < %s — acquire shard mutexes in ascending index order",
				display(h), display(d), h.idx, d.idx)
		}
	}
	f.held[d] = true
}

// indexedMutexOp matches base[idx](.field...).Lock/RLock/Unlock/RUnlock
// with no arguments. Non-indexed mutexes have no shard order and are
// coordcontract's concern.
func indexedMutexOp(call *ast.CallExpr) (mutexDesc, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return mutexDesc{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return mutexDesc{}, false, false
	}
	// Find the innermost IndexExpr on the receiver chain.
	var idx *ast.IndexExpr
	for e := sel.X; ; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			idx = x
			e = nil
		default:
			e = nil
		}
		if e == nil {
			break
		}
	}
	if idx == nil {
		return mutexDesc{}, false, false
	}
	idxStr := types.ExprString(idx.Index)
	full := types.ExprString(sel.X)
	base := strings.Replace(full, "["+idxStr+"]", "[]", 1)
	return mutexDesc{base: base, idx: idxStr}, acquire, true
}

// display reconstructs the source form of a descriptor.
func display(d mutexDesc) string {
	return strings.Replace(d.base, "[]", "["+d.idx+"]", 1)
}

// learn folds the branch condition e (taken with the given truth) into
// the cond set, closing strict facts under weakening.
func learn(conds dataflow.Set[cond], e ast.Expr, truth bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		learn(conds, e.X, truth)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			learn(conds, e.X, !truth)
		}
	case *ast.BinaryExpr:
		x, y := types.ExprString(e.X), types.ExprString(e.Y)
		add := func(a, op, b string) {
			conds[cond{a, op, b}] = true
			if op == "<" {
				conds[cond{a, "<=", b}] = true
			}
		}
		switch {
		case e.Op == token.LAND && truth:
			learn(conds, e.X, true)
			learn(conds, e.Y, true)
		case e.Op == token.LOR && !truth:
			learn(conds, e.X, false)
			learn(conds, e.Y, false)
		case e.Op == token.LSS: // x < y
			if truth {
				add(x, "<", y)
			} else {
				add(y, "<=", x)
			}
		case e.Op == token.LEQ: // x <= y
			if truth {
				add(x, "<=", y)
			} else {
				add(y, "<", x)
			}
		case e.Op == token.GTR: // x > y
			if truth {
				add(y, "<", x)
			} else {
				add(x, "<=", y)
			}
		case e.Op == token.GEQ: // x >= y
			if truth {
				add(y, "<=", x)
			} else {
				add(x, "<", y)
			}
		}
	}
}

// proves reports whether the cond set (or literal arithmetic) shows
// j <= i, i.e. that acquiring index i after j respects ascending order.
func proves(conds dataflow.Set[cond], j, i string) bool {
	if conds[cond{j, "<", i}] || conds[cond{j, "<=", i}] {
		return true
	}
	jn, jerr := strconv.Atoi(j)
	in, ierr := strconv.Atoi(i)
	return jerr == nil && ierr == nil && jn < in
}

var identRE = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)

// mentions reports whether the expression text uses name as an
// identifier token.
func mentions(s, name string) bool {
	for _, tok := range identRE.FindAllString(s, -1) {
		if tok == name {
			return true
		}
	}
	return false
}

// killMentions drops every fact that depends on the reassigned name.
func killMentions(f fact, name string) {
	for c := range f.conds {
		if mentions(c.x, name) || mentions(c.y, name) {
			delete(f.conds, c)
		}
	}
	for d := range f.held {
		if mentions(d.idx, name) || mentions(d.base, name) {
			delete(f.held, d)
		}
	}
}

// isSwap matches a, b = b, a over plain identifiers.
func isSwap(s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 2 || len(s.Rhs) != 2 {
		return false
	}
	l0, ok0 := s.Lhs[0].(*ast.Ident)
	l1, ok1 := s.Lhs[1].(*ast.Ident)
	r0, ok2 := s.Rhs[0].(*ast.Ident)
	r1, ok3 := s.Rhs[1].(*ast.Ident)
	return ok0 && ok1 && ok2 && ok3 && l0.Name == r1.Name && l1.Name == r0.Name && l0.Name != l1.Name
}

// renameAll applies the a<->b swap to every fact.
func renameAll(f fact, a, b string) {
	swapTok := func(s string) string {
		return identRE.ReplaceAllStringFunc(s, func(tok string) string {
			switch tok {
			case a:
				return b
			case b:
				return a
			}
			return tok
		})
	}
	// fact is passed by value sharing its maps: rebuild each map's
	// contents in place so the caller sees the rename.
	conds := make([]cond, 0, len(f.conds))
	for c := range f.conds {
		conds = append(conds, c)
		delete(f.conds, c)
	}
	for _, c := range conds {
		f.conds[cond{swapTok(c.x), c.op, swapTok(c.y)}] = true
	}
	held := make([]mutexDesc, 0, len(f.held))
	for d := range f.held {
		held = append(held, d)
		delete(f.held, d)
	}
	for _, d := range held {
		f.held[mutexDesc{base: swapTok(d.base), idx: swapTok(d.idx)}] = true
	}
}
