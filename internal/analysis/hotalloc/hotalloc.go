// Package hotalloc keeps marked hot-path functions allocation-free. A
// function annotated with the directive comment
//
//	//atomiovet:hotpath
//
// must not allocate per call: the lockd grant path runs once per
// lock hand-off and its cost model (the paper's Table 4 latencies)
// assumes index lookups, not garbage. The pass reports four allocation
// shapes:
//
//   - composite literals and new(T) whose value escapes the frame
//     (internal/analysis/dataflow.Escapes decides; a purely local &T{}
//     stays on the stack and is legal),
//   - append, which may grow its backing array,
//   - make, which always allocates its backing store,
//   - fmt calls and interface boxing of non-pointer-shaped arguments,
//     the two ways values silently move to the heap through calls.
//
// The directive marks the function, not the file: unmarked functions
// allocate freely. Closures inside a marked function are part of its
// hot path and are checked too. What the pass cannot see — allocations
// inside non-inlined callees, string concatenation growth — stays the
// reviewer's job; the annotation documents the intent either way.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"atomio/internal/analysis"
	"atomio/internal/analysis/dataflow"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions marked //atomiovet:hotpath must not allocate",
	Run:  run,
}

// Marker is the directive comment text (after //) that opts a function
// into the check.
const Marker = "atomiovet:hotpath"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// marked reports whether fd's doc block carries the hotpath directive.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimPrefix(c.Text, "//") == Marker {
			return true
		}
	}
	return false
}

// checkFunc reports every allocation shape in one marked function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	for e := range dataflow.Escapes(pass.Info, fd.Body) {
		pass.Reportf(e.Pos(),
			"allocation escapes to the heap in hotpath function %s: hoist it out of the hot path or reuse a caller-owned buffer", name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, call, name)
		return true
	})
}

// checkCall classifies one call in a marked function.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, name string) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				pass.Reportf(call.Pos(),
					"append may grow its backing array in hotpath function %s: preallocate capacity outside the hot path", name)
			case "make":
				pass.Reportf(call.Pos(),
					"make allocates in hotpath function %s: hoist the allocation out of the hot path", name)
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(),
					"fmt.%s allocates in hotpath function %s: format outside the hot path", sel.Sel.Name, name)
				return // the boxed varargs are the same finding
			}
		}
	}
	checkBoxing(pass, call, name)
}

// checkBoxing reports non-pointer-shaped arguments passed to interface
// parameters (and explicit conversions to interface types): the values
// are copied to the heap to fill the interface's data word.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, name string) {
	funTV, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if funTV.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if types.IsInterface(funTV.Type) && len(call.Args) == 1 {
			reportIfBoxed(pass, call.Args[0], funTV.Type, name)
		}
		return
	}
	sig, ok := funTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, nothing is boxed
			}
			param = sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(param) {
			reportIfBoxed(pass, arg, param, name)
		}
	}
}

// reportIfBoxed fires unless arg's value is already pointer-shaped (or
// an interface, or nil), in which case filling the interface allocates
// nothing.
func reportIfBoxed(pass *analysis.Pass, arg ast.Expr, iface types.Type, name string) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return
	}
	pass.Reportf(arg.Pos(),
		"%s value boxed into %s in hotpath function %s: boxing copies the value to the heap — keep hot-path signatures concrete",
		types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)),
		types.TypeString(iface, types.RelativeTo(pass.Pkg)), name)
}
