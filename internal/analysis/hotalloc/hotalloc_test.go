package hotalloc_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/hotalloc"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer,
		"./internal/analysis/testdata/src/hotalloc/internal/lock/hotfix")
}
