package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"atomio/internal/analysis/cfg"
)

// checkFunc parses and type-checks src, returning the named function's
// declaration, its CFG, and the type info.
func checkFunc(t *testing.T, src, name string) (*ast.FuncDecl, *cfg.Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, cfg.New(fd.Body), info
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

// TestSolveMustIntersection pins the solver on a hand-built must-problem:
// "which string constants were certainly produced on every path". The
// fact is the set of assignment statements seen; the join is
// intersection, so only the pre-branch assignment survives the merge.
func TestSolveMustIntersection(t *testing.T) {
	_, g, _ := checkFunc(t, `package p
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	spec := Spec[Set[string]]{
		Dir:      Forward,
		Boundary: Set[string]{},
		Join:     Intersect[string],
		Equal:    EqualSets[string],
		Copy:     CopySet[string],
		Transfer: func(b *cfg.Block, in Set[string]) Set[string] {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					in[types.ExprString(as.Rhs[0])] = true
				}
			}
			return in
		},
	}
	res := Solve(g, spec)
	exit := res.In[g.Exit]
	if !exit["1"] {
		t.Errorf("assignment before the branch must reach exit on every path: %v", exit)
	}
	if exit["2"] || exit["3"] {
		t.Errorf("branch-arm assignments must not survive the intersection join: %v", exit)
	}
}

// TestSolveMayUnion runs the same program with a union join: both arms'
// assignments reach the exit on some path.
func TestSolveMayUnion(t *testing.T) {
	_, g, _ := checkFunc(t, `package p
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	} else {
		x = 3
	}
	return x
}`, "f")
	spec := Spec[Set[string]]{
		Dir:      Forward,
		Boundary: Set[string]{},
		Join:     Union[string],
		Equal:    EqualSets[string],
		Copy:     CopySet[string],
		Transfer: func(b *cfg.Block, in Set[string]) Set[string] {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					in[types.ExprString(as.Rhs[0])] = true
				}
			}
			return in
		},
	}
	res := Solve(g, spec)
	exit := res.In[g.Exit]
	for _, want := range []string{"1", "2", "3"} {
		if !exit[want] {
			t.Errorf("union join should carry assignment %s to exit: %v", want, exit)
		}
	}
}

// TestSolveLoopFixpoint pins convergence on a loop: a fact generated in
// the body flows around the back edge and stabilizes.
func TestSolveLoopFixpoint(t *testing.T) {
	_, g, _ := checkFunc(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		x = 7
	}
	return x
}`, "f")
	spec := Spec[Set[string]]{
		Dir:      Forward,
		Boundary: Set[string]{},
		Join:     Union[string],
		Equal:    EqualSets[string],
		Copy:     CopySet[string],
		Transfer: func(b *cfg.Block, in Set[string]) Set[string] {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					in[types.ExprString(as.Rhs[0])] = true
				}
			}
			return in
		},
	}
	res := Solve(g, spec)
	exit := res.In[g.Exit]
	if !exit["0"] || !exit["7"] {
		t.Errorf("loop-carried facts must reach exit: %v", exit)
	}
}

func TestReachingDefsKill(t *testing.T) {
	fd, g, info := checkFunc(t, `package p
func f(a int) int {
	x := 1
	x = 2
	return x
}`, "f")
	_ = fd
	r := ReachingDefs(g, info)
	// At the return, only the second assignment reaches.
	var xVar *types.Var
	for id, obj := range info.Defs {
		if id.Name == "x" {
			xVar = obj.(*types.Var)
		}
	}
	if xVar == nil {
		t.Fatal("no x variable")
	}
	defs := DefsOf(r.At(g.Exit, nil), xVar)
	if len(defs) != 1 {
		t.Fatalf("want exactly 1 reaching def of x at exit, got %d", len(defs))
	}
	as, ok := defs[0].(*ast.AssignStmt)
	if !ok || types.ExprString(as.Rhs[0]) != "2" {
		t.Errorf("the x = 2 assignment should be the surviving def, got %v", defs[0])
	}
}

func TestReachingDefsBranchesMerge(t *testing.T) {
	_, g, info := checkFunc(t, `package p
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	}
	return x
}`, "f")
	r := ReachingDefs(g, info)
	var xVar *types.Var
	for id, obj := range info.Defs {
		if id.Name == "x" {
			xVar = obj.(*types.Var)
		}
	}
	defs := DefsOf(r.At(g.Exit, nil), xVar)
	if len(defs) != 2 {
		t.Fatalf("want both defs of x reaching exit (branch may or may not run), got %d", len(defs))
	}
}

// taintOn runs the taint walk with `now()` as the only source and
// returns the names of tainted identifiers reported by the visit.
func taintOn(t *testing.T, src string) map[string]bool {
	t.Helper()
	_, g, info := checkFunc(t, src, "f")
	isSource := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "now"
	}
	res := Taint(g, info, isSource)
	got := map[string]bool{}
	res.Visit(func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			got[id.Name] = true
		}
	})
	return got
}

func TestTaintPropagatesThroughAssignments(t *testing.T) {
	got := taintOn(t, `package p
func now() int64 { return 0 }
func f() int64 {
	w := now()
	d := w + 5
	clean := int64(3)
	_ = clean
	return d
}`)
	if !got["w"] || !got["d"] {
		t.Errorf("taint should flow now() -> w -> d: %v", got)
	}
	if got["clean"] {
		t.Errorf("clean must stay untainted: %v", got)
	}
}

func TestTaintStrongUpdateKills(t *testing.T) {
	got := taintOn(t, `package p
func now() int64 { return 0 }
func f() int64 {
	w := now()
	w = 4
	return w
}`)
	// After the strong update, the returned w is clean — but the visit
	// also sees w's tainted period... the only report sites are uses,
	// and w is used only in the return, after the kill.
	if got["w"] {
		t.Errorf("reassigned w must be clean at its only use: %v", got)
	}
}

func TestTaintBranchJoin(t *testing.T) {
	got := taintOn(t, `package p
func now() int64 { return 0 }
func f(a int) int64 {
	var w int64
	if a > 0 {
		w = now()
	}
	return w
}`)
	if !got["w"] {
		t.Errorf("taint on one branch must survive the union join: %v", got)
	}
}

func TestEscapesReturnedAndStored(t *testing.T) {
	fd, _, info := checkFunc(t, `package p
type T struct{ n int }
var sink *T
func f() *T {
	local := &T{n: 1}   // stays local until returned
	kept := &T{n: 2}    // never leaves
	_ = kept
	sink = &T{n: 3}     // stored to a global
	return local
}`, "f")
	esc := Escapes(info, fd.Body)
	byN := map[string]bool{}
	for e := range esc {
		u := e.(*ast.UnaryExpr)
		cl := u.X.(*ast.CompositeLit)
		kv := cl.Elts[0].(*ast.KeyValueExpr)
		byN[types.ExprString(kv.Value)] = true
	}
	if !byN["1"] {
		t.Errorf("returned allocation must escape: %v", byN)
	}
	if byN["2"] {
		t.Errorf("purely local allocation must not escape: %v", byN)
	}
	if !byN["3"] {
		t.Errorf("global-stored allocation must escape: %v", byN)
	}
}

func TestEscapesThroughCopyAndCall(t *testing.T) {
	fd, _, info := checkFunc(t, `package p
type T struct{ n int }
func g(*T) {}
func f() {
	a := &T{n: 1}
	b := a
	g(b) // a escapes via the copy into the call
	c := &T{n: 2}
	_ = c
}`, "f")
	esc := Escapes(info, fd.Body)
	byN := map[string]bool{}
	for e := range esc {
		u := e.(*ast.UnaryExpr)
		cl := u.X.(*ast.CompositeLit)
		kv := cl.Elts[0].(*ast.KeyValueExpr)
		byN[types.ExprString(kv.Value)] = true
	}
	if !byN["1"] {
		t.Errorf("allocation passed to a call through a copy must escape: %v", byN)
	}
	if byN["2"] {
		t.Errorf("unused local allocation must not escape: %v", byN)
	}
}

func TestEscapesClosureCapture(t *testing.T) {
	fd, _, info := checkFunc(t, `package p
type T struct{ n int }
var fns []func() int
func f() {
	a := &T{n: 1}
	fns = append(fns, func() int { return a.n })
}`, "f")
	esc := Escapes(info, fd.Body)
	if len(esc) != 1 {
		t.Errorf("closure-captured allocation must escape, got %d escapes", len(esc))
	}
}
