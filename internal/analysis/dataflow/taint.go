package dataflow

import (
	"go/ast"
	"go/types"

	"atomio/internal/analysis/cfg"
)

// TaintResult answers "is this expression tainted at its program
// point?" for one function, given a client-defined source predicate.
// Taint is flow-sensitive over the CFG: assignments propagate it,
// reassignment from a clean value kills it (strong update), joins are
// unions (tainted on any path is tainted).
type TaintResult struct {
	g        *cfg.Graph
	info     *types.Info
	isSource func(*ast.CallExpr) bool
	res      *Result[Set[*types.Var]]
}

// Taint runs the taint walk over g. isSource marks the calls whose
// results introduce taint (for vtflow: the host-clock reads).
// Propagation is conservative: any expression containing a tainted
// subexpression is tainted, and a non-source call with a tainted
// argument taints its results (max(wall, x) stays tainted).
func Taint(g *cfg.Graph, info *types.Info, isSource func(*ast.CallExpr) bool) *TaintResult {
	t := &TaintResult{g: g, info: info, isSource: isSource}
	spec := Spec[Set[*types.Var]]{
		Dir:      Forward,
		Boundary: Set[*types.Var]{},
		Join:     Union[*types.Var],
		Equal:    EqualSets[*types.Var],
		Copy:     CopySet[*types.Var],
		Transfer: func(b *cfg.Block, in Set[*types.Var]) Set[*types.Var] {
			for _, n := range b.Nodes {
				t.applyNode(n, in, nil)
			}
			return in
		},
	}
	t.res = Solve(g, spec)
	return t
}

// Visit replays the solved facts and calls report for every expression
// that is tainted at its own program point, visiting reachable blocks
// in index order. Sub-expressions are visited too: in sink(f(wall)),
// both the call and wall itself are reported; clients filter by type or
// context.
func (t *TaintResult) Visit(report func(e ast.Expr)) {
	for _, b := range t.g.Blocks {
		in, ok := t.res.In[b]
		if !ok {
			continue
		}
		fact := CopySet(in)
		for _, n := range b.Nodes {
			t.applyNode(n, fact, report)
		}
	}
}

// applyNode evaluates one CFG node against the fact: expressions are
// checked (reporting tainted ones when report is non-nil) with the
// pre-assignment fact, then assignments update it. Deferred calls are
// skipped — they run at exit, and vtflow's sinks are value flows, not
// calls. Function literals own their flow and are skipped.
func (t *TaintResult) applyNode(n ast.Node, fact Set[*types.Var], report func(ast.Expr)) {
	switch s := n.(type) {
	case *ast.DeferStmt:
		return
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			t.visitExpr(rhs, fact, report)
		}
		// Tuple assignment from one call: the call's taint covers every
		// LHS. Positional assignment pairs each RHS with its LHS.
		if len(s.Lhs) != len(s.Rhs) {
			tainted := len(s.Rhs) == 1 && t.exprTainted(s.Rhs[0], fact)
			for _, lhs := range s.Lhs {
				t.update(lhs, tainted, fact)
			}
			return
		}
		for i, lhs := range s.Lhs {
			t.update(lhs, t.exprTainted(s.Rhs[i], fact), fact)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				t.visitExpr(v, fact, report)
			}
			switch {
			case len(vs.Values) == len(vs.Names):
				for i, name := range vs.Names {
					t.update(name, t.exprTainted(vs.Values[i], fact), fact)
				}
			case len(vs.Values) == 1:
				tainted := t.exprTainted(vs.Values[0], fact)
				for _, name := range vs.Names {
					t.update(name, tainted, fact)
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a tainted collection taints the iteration vars.
		tainted := t.exprTainted(s.X, fact)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e != nil {
				t.update(e, tainted, fact)
			}
		}
	case *ast.IncDecStmt:
		t.visitExpr(s.X, fact, report)
	case ast.Expr:
		t.visitExpr(s, fact, report)
	case *ast.ExprStmt:
		t.visitExpr(s.X, fact, report)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			t.visitExpr(e, fact, report)
		}
	case *ast.SendStmt:
		t.visitExpr(s.Chan, fact, report)
		t.visitExpr(s.Value, fact, report)
	case *ast.GoStmt:
		t.visitExpr(s.Call, fact, report)
	}
}

// update sets or clears the taint of an assignment target. Identifier
// targets get strong updates; stores through memory (x.f, x[i], *p)
// redefine no tracked local and are left to the visit pass, which
// reports the tainted stored value itself.
func (t *TaintResult) update(lhs ast.Expr, tainted bool, fact Set[*types.Var]) {
	if v := lhsVar(t.info, lhs); v != nil {
		if tainted {
			fact[v] = true
		} else {
			delete(fact, v)
		}
	}
}

// visitExpr reports every tainted subexpression of e (when report is
// non-nil). Function literals are not descended into.
func (t *TaintResult) visitExpr(e ast.Expr, fact Set[*types.Var], report func(ast.Expr)) {
	if report == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sub, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t.exprTainted(sub, fact) {
			report(sub)
		}
		return true
	})
}

// exprTainted evaluates the taint of one expression under fact.
func (t *TaintResult) exprTainted(e ast.Expr, fact Set[*types.Var]) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.info.Uses[e].(*types.Var); ok {
			return fact[v]
		}
		return false
	case *ast.CallExpr:
		if t.isSource(e) {
			return true
		}
		// Conversions and ordinary calls both propagate operand taint
		// to their result.
		for _, arg := range e.Args {
			if t.exprTainted(arg, fact) {
				return true
			}
		}
		// A method call on a tainted receiver stays tainted
		// (wall.Nanoseconds()).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return t.exprTainted(sel.X, fact)
		}
		return false
	case *ast.BinaryExpr:
		return t.exprTainted(e.X, fact) || t.exprTainted(e.Y, fact)
	case *ast.UnaryExpr:
		return t.exprTainted(e.X, fact)
	case *ast.ParenExpr:
		return t.exprTainted(e.X, fact)
	case *ast.StarExpr:
		return t.exprTainted(e.X, fact)
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted; a package-qualified
		// name is not.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := t.info.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return t.exprTainted(e.X, fact)
	case *ast.IndexExpr:
		return t.exprTainted(e.X, fact) || t.exprTainted(e.Index, fact)
	case *ast.SliceExpr:
		return t.exprTainted(e.X, fact)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if t.exprTainted(kv.Value, fact) {
					return true
				}
				continue
			}
			if t.exprTainted(el, fact) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return t.exprTainted(e.Value, fact)
	case *ast.TypeAssertExpr:
		return t.exprTainted(e.X, fact)
	}
	return false
}
