// Package dataflow solves iterative dataflow problems over the
// control-flow graphs of internal/analysis/cfg: a generic worklist
// solver parameterized by the client's lattice (join, equality,
// transfer), plus two reusable facts the contract analyzers share —
// reaching definitions (reaching.go) and a taint/escape walk
// (taint.go). The solver is direction-agnostic (forward or backward)
// and deliberately simple: analyzer inputs are single function bodies,
// where a round-robin worklist converges in a handful of passes.
//
// Must-properties ("the mutex is held on every path") and
// may-properties ("some path acquires shard i first") differ only in
// the client's Join: intersection joins yield must facts, unions yield
// may facts. Blocks never reached by propagation keep no facts at all —
// the solver only seeds the boundary block — so clients skip
// unreachable code by construction instead of modelling a TOP element.
package dataflow

import "atomio/internal/analysis/cfg"

// Dir selects the propagation direction.
type Dir int

const (
	// Forward propagates facts along control flow (entry to exit).
	Forward Dir = iota
	// Backward propagates facts against control flow (exit to entry).
	Backward
)

// Spec describes one dataflow problem over fact type F.
type Spec[F any] struct {
	// Dir is the propagation direction.
	Dir Dir
	// Boundary is the fact entering the entry block (Forward) or
	// leaving the exit block (Backward).
	Boundary F
	// Join combines the fact arriving over one more edge into acc. It
	// must not mutate src; it may mutate and return acc.
	Join func(acc, src F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
	// Transfer computes the fact leaving block b given the fact
	// entering it. The solver passes a private copy: Transfer may
	// mutate in and return it.
	Transfer func(b *cfg.Block, in F) F
	// EdgeTransfer, if non-nil, refines the fact flowing along the
	// from→to edge (Forward direction: from's out fact). Branch-aware
	// clients use it to learn the condition on the taken edge: for a
	// block with Cond != nil, Succs[0] is the true edge and Succs[1]
	// the false edge. It must not mutate the input fact.
	EdgeTransfer func(from, to *cfg.Block, f F) F
	// Copy clones a fact so Join/Transfer may mutate their accumulator
	// safely. Required.
	Copy func(F) F
}

// Result carries the solved facts in propagation order: In[b] is the
// fact flowing into block b along the chosen direction (for Forward the
// block's entry, for Backward the block's end), Out[b] the fact after
// b's transfer. Blocks never reached by propagation are absent from
// both maps.
type Result[F any] struct {
	In  map[*cfg.Block]F
	Out map[*cfg.Block]F
}

// Solve runs the worklist to fixpoint and returns the per-block facts.
func Solve[F any](g *cfg.Graph, s Spec[F]) *Result[F] {
	res := &Result[F]{
		In:  make(map[*cfg.Block]F),
		Out: make(map[*cfg.Block]F),
	}
	// next returns the blocks a fact flows to, and flip swaps In/Out
	// orientation, so one loop serves both directions.
	var start *cfg.Block
	succs := func(b *cfg.Block) []*cfg.Block { return b.Succs }
	if s.Dir == Forward {
		start = g.Entry
	} else {
		start = g.Exit
		preds := g.Preds()
		succs = func(b *cfg.Block) []*cfg.Block { return preds[b] }
	}

	res.In[start] = s.Copy(s.Boundary)
	work := []*cfg.Block{start}
	inWork := map[*cfg.Block]bool{start: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		out := s.Transfer(b, s.Copy(res.In[b]))
		res.Out[b] = out
		for _, nb := range succs(b) {
			flow := out
			if s.EdgeTransfer != nil {
				if s.Dir == Forward {
					flow = s.EdgeTransfer(b, nb, out)
				} else {
					flow = s.EdgeTransfer(nb, b, out)
				}
			}
			old, seen := res.In[nb]
			var merged F
			if !seen {
				merged = s.Copy(flow)
			} else {
				merged = s.Join(s.Copy(old), flow)
			}
			if seen && s.Equal(old, merged) {
				continue
			}
			res.In[nb] = merged
			if !inWork[nb] {
				work = append(work, nb)
				inWork[nb] = true
			}
		}
	}
	return res
}

// --- common fact shapes ---

// Set is a fact shaped as a set of comparable elements, with the join
// flavours the analyzers use.
type Set[E comparable] map[E]bool

// CopySet clones a set fact.
func CopySet[E comparable](s Set[E]) Set[E] {
	out := make(Set[E], len(s))
	for e := range s {
		out[e] = true
	}
	return out
}

// EqualSets reports set equality.
func EqualSets[E comparable](a, b Set[E]) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// Union joins two set facts as a may-property (any path).
func Union[E comparable](acc, src Set[E]) Set[E] {
	for e := range src {
		acc[e] = true
	}
	return acc
}

// Intersect joins two set facts as a must-property (every path).
func Intersect[E comparable](acc, src Set[E]) Set[E] {
	for e := range acc {
		if !src[e] {
			delete(acc, e)
		}
	}
	return acc
}
