package dataflow

import (
	"go/ast"
	"go/types"

	"atomio/internal/analysis/cfg"
)

// Def is one definition site: variable v is (re)assigned by Node. The
// pair is the element of the reaching-definitions fact set.
type Def struct {
	Var  *types.Var
	Node ast.Node
}

// ReachResult answers reaching-definitions queries over one function.
type ReachResult struct {
	res  *Result[Set[Def]]
	info *types.Info
}

// ReachingDefs solves the classic forward may-problem over g: a
// definition (v, n) reaches a point if some path from n to the point
// does not reassign v. Function parameters and free variables have no
// Def inside the body; a variable with no reaching defs at a use is
// therefore "defined outside the function".
func ReachingDefs(g *cfg.Graph, info *types.Info) *ReachResult {
	spec := Spec[Set[Def]]{
		Dir:      Forward,
		Boundary: Set[Def]{},
		Join:     Union[Def],
		Equal:    EqualSets[Def],
		Copy:     CopySet[Def],
		Transfer: func(b *cfg.Block, in Set[Def]) Set[Def] {
			for _, n := range b.Nodes {
				applyDefs(info, n, in)
			}
			return in
		},
	}
	return &ReachResult{res: Solve(g, spec), info: info}
}

// At returns the definitions reaching the start of node `before` inside
// block b (the block-entry fact advanced over b's earlier nodes).
// Passing a nil node returns the block-entry fact. Unreachable blocks
// return an empty set.
func (r *ReachResult) At(b *cfg.Block, before ast.Node) Set[Def] {
	in, ok := r.res.In[b]
	if !ok {
		return Set[Def]{}
	}
	fact := CopySet(in)
	if before == nil {
		return fact
	}
	for _, n := range b.Nodes {
		if n == before {
			break
		}
		applyDefs(r.info, n, fact)
	}
	return fact
}

// DefsOf extracts the defining nodes of v from a fact set.
func DefsOf(fact Set[Def], v *types.Var) []ast.Node {
	var out []ast.Node
	for d := range fact {
		if d.Var == v {
			out = append(out, d.Node)
		}
	}
	return out
}

// applyDefs folds the definitions made by one CFG node into the fact:
// kill every older def of each assigned variable, gen the new one.
// Function literals own their flow and are skipped.
func applyDefs(info *types.Info, n ast.Node, fact Set[Def]) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if v := lhsVar(info, lhs); v != nil {
				gen(fact, v, s)
			}
		}
	case *ast.IncDecStmt:
		if v := lhsVar(info, s.X); v != nil {
			gen(fact, v, s)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					gen(fact, v, s)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if v := lhsVar(info, e); v != nil {
				gen(fact, v, s)
			}
		}
	}
}

// gen replaces all of v's defs in fact with the single def (v, n).
func gen(fact Set[Def], v *types.Var, n ast.Node) {
	for d := range fact {
		if d.Var == v {
			delete(fact, d)
		}
	}
	fact[Def{Var: v, Node: n}] = true
}

// lhsVar resolves an assignment target to the local variable it names,
// or nil for non-identifier targets (x.f, x[i], *p — stores through
// memory, not redefinitions of a local).
func lhsVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}
