package dataflow

import (
	"go/ast"
	"go/types"
)

// Escapes computes, for one function body, the set of allocation
// expressions whose value may outlive the function frame — the
// escape-analysis half of the hotalloc contract. Seeds are address-taken
// composite literals (&T{...}) and new(T) calls; the walk is
// flow-insensitive within the function (an allocation that escapes on
// any path escapes) and conservative in the compiler's direction: when
// in doubt, it escapes.
//
// A seed escapes when it — or a local variable it flowed into — is
// returned, passed as a call argument, stored through memory (a field,
// index, dereference, map entry, another composite literal), sent on a
// channel, captured by a function literal, or assigned to a non-local
// variable.
func Escapes(info *types.Info, body *ast.BlockStmt) map[ast.Expr]bool {
	if body == nil {
		return nil
	}
	w := &escapeWalk{info: info}
	w.collect(body)
	// Iterate to fixpoint: var-to-var copies extend each allocation's
	// holder set, escape events then condemn every holder's contents.
	for changed := true; changed; {
		changed = false
		for _, a := range w.allocs {
			for v := range a.holders {
				for _, dst := range w.copies[v] {
					if !a.holders[dst] {
						a.holders[dst] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[ast.Expr]bool)
	for _, a := range w.allocs {
		if a.escaped {
			out[a.expr] = true
			continue
		}
		for v := range a.holders {
			if w.escapedVars[v] {
				out[a.expr] = true
				break
			}
		}
	}
	return out
}

// alloc tracks one allocation seed and the local variables that may
// hold (a pointer to) it.
type alloc struct {
	expr    ast.Expr
	holders map[*types.Var]bool
	escaped bool // escaped directly, without passing through a variable
}

type escapeWalk struct {
	info        *types.Info
	allocs      []*alloc
	copies      map[*types.Var][]*types.Var // v flows into copies[v]
	escapedVars map[*types.Var]bool
}

// collect walks the body once, seeding allocations, recording var→var
// copies, and marking escape events.
func (w *escapeWalk) collect(body *ast.BlockStmt) {
	w.copies = make(map[*types.Var][]*types.Var)
	w.escapedVars = make(map[*types.Var]bool)
	seeds := make(map[ast.Expr]*alloc)
	seed := func(e ast.Expr) *alloc {
		if a, ok := seeds[e]; ok {
			return a
		}
		a := &alloc{expr: e, holders: make(map[*types.Var]bool)}
		seeds[e] = a
		w.allocs = append(w.allocs, a)
		return a
	}

	// Pass 1: find the seeds.
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					seed(e)
				}
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					seed(e)
				}
			}
		}
		return true
	})

	// Pass 2: classify every use context.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			rhs := s.Rhs
			for i, lhs := range s.Lhs {
				if i >= len(rhs) {
					break
				}
				w.flow(lhs, rhs[i], seeds)
			}
			return true
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) {
								w.flow(name, vs.Values[i], seeds)
							}
						}
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				w.escapeValue(e, seeds)
			}
			return true
		case *ast.SendStmt:
			w.escapeValue(s.Value, seeds)
			return true
		case *ast.CallExpr:
			// Arguments escape into the callee. The call's own Fun is
			// visited by the surrounding inspection.
			if id, ok := s.Fun.(*ast.Ident); ok {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					// len/cap/append... do not retain their operands
					// beyond the call; append's allocation is reported
					// separately by hotalloc.
					return true
				}
			}
			for _, arg := range s.Args {
				w.escapeValue(arg, seeds)
			}
			return true
		case *ast.CompositeLit:
			// Storing an allocation inside another literal publishes it
			// with that literal.
			for _, el := range s.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				w.escapeValue(v, seeds)
			}
			return true
		case *ast.FuncLit:
			// Anything a closure references may outlive the frame.
			ast.Inspect(s.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := w.info.Uses[id].(*types.Var); ok {
						w.escapedVars[v] = true
					}
				}
				return true
			})
			return true
		}
		return true
	})
}

// flow records what an assignment does with a value: seed → var makes
// the var a holder, var → var records a copy edge, and any store
// through memory escapes the value.
func (w *escapeWalk) flow(lhs, rhs ast.Expr, seeds map[ast.Expr]*alloc) {
	if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return // discarded, not stored
	}
	dst := lhsVar(w.info, lhs)
	if dst == nil {
		// x.f = v, x[i] = v, *p = v, or a global: the value escapes the
		// frame (or at least our tracking of it).
		w.escapeValue(rhs, seeds)
		return
	}
	if !isLocal(dst) {
		w.escapeValue(rhs, seeds)
		return
	}
	if a := seeds[unparen(rhs)]; a != nil {
		a.holders[dst] = true
		return
	}
	if src := useVar(w.info, rhs); src != nil {
		w.copies[src] = append(w.copies[src], dst)
	}
}

// escapeValue marks the value of e as escaping: a seed directly, or the
// variable holding one.
func (w *escapeWalk) escapeValue(e ast.Expr, seeds map[ast.Expr]*alloc) {
	e = unparen(e)
	if a := seeds[e]; a != nil {
		a.escaped = true
		return
	}
	if v := useVar(w.info, e); v != nil {
		w.escapedVars[v] = true
	}
}

// useVar resolves e to the variable it reads, through unary & and
// parens.
func useVar(info *types.Info, e ast.Expr) *types.Var {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		e = unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isLocal reports whether v is function-local (package-level vars are
// already escaped storage).
func isLocal(v *types.Var) bool {
	return v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
