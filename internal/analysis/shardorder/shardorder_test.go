package shardorder_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/shardorder"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, shardorder.Analyzer,
		"./internal/analysis/testdata/src/shardorder/internal/lock/shardfix")
}
