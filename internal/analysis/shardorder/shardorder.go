// Package shardorder turns PR 3's deadlock-freedom argument into a
// checked property: in internal/lock, every loop that acquires several
// shard mutexes (mutexes reached through an index expression involving
// the loop variable) must iterate in ascending order, and every loop
// that releases them must iterate in descending order — the two-phase
// reserve/commit idiom of the sharded table. Ascending acquisition is
// what makes cross-shard lock sets a total order (no cycles, no
// deadlock); the analyzer checks the iteration shape and leaves the
// "shard id lists are built ascending" half to shardIDs' contract.
package shardorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"atomio/internal/analysis"
)

// Analyzer is the shardorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardorder",
	Doc:  "shard mutex loops acquire in ascending order and release in reverse",
	Run:  run,
}

// scope: only the lock service holds more than one shard mutex at a time.
var scope = []string{"internal/lock"}

// direction classifies how a loop walks its index space.
type direction int

const (
	unknown direction = iota
	ascending
	descending
	mapOrder // range over a map: no order at all
)

func run(pass *analysis.Pass) error {
	if !analysis.InAnyScope(analysis.ModuleRel(pass.Pkg.Path()), scope) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var dir direction
			var vars []types.Object
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
				dir, vars = forDirection(pass, loop)
			case *ast.RangeStmt:
				body = loop.Body
				dir, vars = rangeDirection(pass, loop)
			default:
				return true
			}
			checkLoop(pass, body, dir, vars)
			return true
		})
	}
	return nil
}

// forDirection classifies a 3-clause for loop by its post statement and
// returns the loop index variables.
func forDirection(pass *analysis.Pass, loop *ast.ForStmt) (direction, []types.Object) {
	var vars []types.Object
	if init, ok := loop.Init.(*ast.AssignStmt); ok {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					vars = append(vars, obj)
				} else if obj := pass.Info.Uses[id]; obj != nil {
					vars = append(vars, obj)
				}
			}
		}
	}
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if post.Tok == token.INC {
			return ascending, vars
		}
		return descending, vars
	case *ast.AssignStmt:
		switch post.Tok {
		case token.ADD_ASSIGN:
			return ascending, vars
		case token.SUB_ASSIGN:
			return descending, vars
		}
	}
	return unknown, vars
}

// rangeDirection classifies a range loop: slices, arrays, strings, and
// integer ranges iterate ascending by the language spec; maps have no
// order. The key and value variables both count as loop variables.
func rangeDirection(pass *analysis.Pass, loop *ast.RangeStmt) (direction, []types.Object) {
	var vars []types.Object
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	tv, ok := pass.Info.Types[loop.X]
	if !ok {
		return unknown, vars
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return mapOrder, vars
	case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
		return ascending, vars
	}
	return unknown, vars
}

// mutexCall matches sel as a (Try)Lock/Unlock/RLock/RUnlock call on a
// sync.Mutex or sync.RWMutex and reports whether it acquires or
// releases.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	var acq bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acq = true
	case "Unlock", "RUnlock":
		acq = false
	default:
		return nil, false, false
	}
	selection, isSelection := pass.Info.Selections[sel]
	if !isSelection {
		return nil, false, false
	}
	t := selection.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, false, false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return nil, false, false
	}
	return sel.X, acq, true
}

// usesLoopVar reports whether an index expression inside e references
// one of the loop variables — the signature of "the mutex picked this
// iteration", as opposed to one fixed mutex locked repeatedly.
func usesLoopVar(pass *analysis.Pass, e ast.Expr, vars []types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		ast.Inspect(idx.Index, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			for _, v := range vars {
				if obj == v {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}

// checkLoop vets every per-iteration shard mutex operation in one loop
// body against the loop's direction. A mutex both acquired and released
// in the same body is held one-at-a-time, not accumulated, and is
// exempt. Nested loops are vetted by their own visit.
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt, dir direction, vars []types.Object) {
	type op struct {
		call    *ast.CallExpr
		recv    string
		acquire bool
	}
	var ops []op
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // inner loops and closures own their iteration order
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, acquire, ok := mutexCall(pass, call)
		if !ok || !usesLoopVar(pass, recv, vars) {
			return true
		}
		ops = append(ops, op{call: call, recv: types.ExprString(recv), acquire: acquire})
		return true
	})
	paired := make(map[string]bool)
	for _, a := range ops {
		for _, b := range ops {
			if a.acquire && !b.acquire && a.recv == b.recv {
				paired[a.recv] = true
			}
		}
	}
	for _, o := range ops {
		if paired[o.recv] {
			continue
		}
		if o.acquire {
			switch dir {
			case ascending:
			case mapOrder:
				pass.Reportf(o.call.Pos(),
					"shard mutex %s acquired while ranging over a map: acquisition order must be ascending to stay deadlock-free",
					o.recv)
			default:
				pass.Reportf(o.call.Pos(),
					"shard mutex %s acquired in a loop that does not provably iterate ascending: cross-shard reserve must take mutexes in ascending shard order",
					o.recv)
			}
		} else {
			if dir != descending {
				pass.Reportf(o.call.Pos(),
					"shard mutex %s released in a non-descending loop: the reserve/commit idiom unwinds in reverse acquisition order",
					o.recv)
			}
		}
	}
}
