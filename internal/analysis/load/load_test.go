package load

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadRealPackage type-checks a real module package end to end and
// spot-checks that syntax, type info, and imported package data line up.
func TestLoadRealPackage(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/lock")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "atomio/internal/lock" || p.Name != "lock" {
		t.Fatalf("got %s (%s)", p.Path, p.Name)
	}
	if len(p.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// The type of a selector on an imported type must resolve through
	// export data: find any sync.Mutex-typed field use.
	sawMutex := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[sel]
			if !ok {
				return true
			}
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Mutex" {
					sawMutex = true
				}
			}
			return true
		})
	}
	if !sawMutex {
		t.Error("no sync.Mutex selector resolved; export-data importing is broken")
	}
}

// TestLoadManyPackages loads several packages in one call and checks the
// shared FileSet invariant.
func TestLoadManyPackages(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/sim", "./internal/interval/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("got %d packages, want 3", len(pkgs))
	}
	for _, p := range pkgs[1:] {
		if p.Fset != pkgs[0].Fset {
			t.Fatal("packages from one Load call must share a FileSet")
		}
	}
}
