package load

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadRealPackage type-checks a real module package end to end and
// spot-checks that syntax, type info, and imported package data line up.
func TestLoadRealPackage(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/lock")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "atomio/internal/lock" || p.Name != "lock" {
		t.Fatalf("got %s (%s)", p.Path, p.Name)
	}
	if len(p.Files) == 0 {
		t.Fatal("no files parsed")
	}
	// The type of a selector on an imported type must resolve through
	// export data: find any sync.Mutex-typed field use.
	sawMutex := false
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[sel]
			if !ok {
				return true
			}
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Mutex" {
					sawMutex = true
				}
			}
			return true
		})
	}
	if !sawMutex {
		t.Error("no sync.Mutex selector resolved; export-data importing is broken")
	}
}

// TestLoadBuildTaggedPackage loads the edge-case module's tagged package
// in the default (cgo-free) build context: `go list` selects only the
// pure-Go file, so the loader must parse exactly that one and never see
// the tag-gated `import "C"` twin — a directory glob would choke on it.
func TestLoadBuildTaggedPackage(t *testing.T) {
	pkgs, err := Load("testdata/edgemod", "./tagged")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.Files) != 1 {
		t.Fatalf("got %d files, want 1 (only the active build-tag variant)", len(p.Files))
	}
	backend := p.Types.Scope().Lookup("Backend")
	if backend == nil {
		t.Fatal("const Backend not type-checked")
	}
	c, ok := backend.(*types.Const)
	if !ok || c.Val().String() != `"pure-go"` {
		t.Fatalf("Backend = %v, want the pure-go variant", backend)
	}
}

// TestLoadSkipsTestOnlyPackage pins that a directory with only _test.go
// files — listed by `go list` with an empty GoFiles — is skipped instead
// of producing a degenerate zero-file package.
func TestLoadSkipsTestOnlyPackage(t *testing.T) {
	pkgs, err := Load("testdata/edgemod", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (testonly must be skipped)", len(pkgs))
	}
	if pkgs[0].Path != "edgemod/tagged" {
		t.Fatalf("got %s, want edgemod/tagged", pkgs[0].Path)
	}
}

// TestLoadManyPackages loads several packages in one call and checks the
// shared FileSet invariant.
func TestLoadManyPackages(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/sim", "./internal/interval/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("got %d packages, want 3", len(pkgs))
	}
	for _, p := range pkgs[1:] {
		if p.Fset != pkgs[0].Fset {
			t.Fatal("packages from one Load call must share a FileSet")
		}
	}
}
