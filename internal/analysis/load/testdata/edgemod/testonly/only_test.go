// Package testonly has no non-test Go files at all: `go list` reports it
// with an empty GoFiles list, and the loader must skip it rather than
// hand the type checker an empty file set.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
