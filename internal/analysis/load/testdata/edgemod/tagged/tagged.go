//go:build !edgecgo

// Package tagged exercises build-constraint handling in the loader: the
// cgo-backed implementation is gated behind the edgecgo tag, so a plain
// build context must load this pure-Go file and never parse the cgo one.
package tagged

// Backend names the implementation the build context selected.
const Backend = "pure-go"
