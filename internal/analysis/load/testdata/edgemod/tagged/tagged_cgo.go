//go:build edgecgo

// The cgo implementation: excluded from cgo-free build contexts by the
// edgecgo tag. If the loader globbed the directory instead of honoring
// `go list`'s file selection, parsing `import "C"` here would fail the
// type check and the loader test would catch it.
package tagged

import "C"

// Backend names the implementation the build context selected.
const Backend = "cgo"
