module edgemod

go 1.22
