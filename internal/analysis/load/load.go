// Package load turns Go package patterns into parsed, type-checked
// syntax trees using only the standard library: `go list -deps -export`
// supplies the dependency graph and compiler export data, and the gc
// importer consumes that export data while each target package's own
// files are parsed and type-checked from source. It is the driver layer
// under internal/analysis, playing the role golang.org/x/tools/go/packages
// plays for upstream analyzers (unavailable here: the module is
// dependency-free by policy).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package: parsed non-test files plus
// the type information analyzers query. Fset is shared across every
// package of one Load call so positions stay comparable.
type Package struct {
	Path  string // import path as `go list` reports it
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns, resolved relative to
// dir (normally the module root). Test files are excluded, matching the
// analyzers' contract of checking shipped code only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One pass over the full dependency graph builds export data for
	// every import; a second, dep-free pass names the target set.
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	targets, err := goList(dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", t.ImportPath, t.Error.Err)
		}
		// A directory holding only _test.go files still lists as a
		// package, with an empty GoFiles. There is no shipped code to
		// analyze, so skip it rather than hand the type checker an
		// empty file set.
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Name:  t.Name,
		Dir:   t.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModuleRoot walks up from dir to the nearest directory containing
// go.mod, so tests running inside package directories can find the
// module to load patterns against.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		abs = parent
	}
}
