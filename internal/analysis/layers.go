package analysis

// This file is the machine-readable form of the layer map in
// docs/ARCHITECTURE.md. The layering analyzer rejects any intra-module
// import not sanctioned here, and any package the table does not cover —
// so adding a package or an edge to the system means adding it here, in
// review, next to the rationale.
//
// Paths are module-relative: "" is the public facade (the module root
// package), "internal/lock" an internal package. Both Match and Allow
// entries are segment-aware subtree prefixes ("internal/pfs" covers
// "internal/pfs/scenario"; "internal/mpi" does not cover
// "internal/mpiio"), except that the empty string matches exactly the
// facade root. The most specific (longest) Match wins.

// Layer grants one package subtree its permitted intra-module imports.
type Layer struct {
	Match string   // subtree this rule governs
	Allow []string // intra-module import subtrees it may use
	Why   string   // the contract, in one line
}

// Layers is the package DAG. Order is documentation (top of the diagram
// first); matching uses longest-Match, not order.
var Layers = []Layer{
	{
		Match: "examples",
		Allow: []string{""},
		Why:   "examples demonstrate the public facade and nothing else",
	},
	{
		Match: "cmd",
		Allow: []string{"", "internal/cli"},
		Why:   "binaries speak facade + the shared flag layer; no private wiring",
	},
	{
		Match: "cmd/figure8",
		Allow: []string{"", "internal/cli", "internal/harness"},
		Why:   "figure8 renders harness.Result cells directly (rendering helpers aside, per ARCHITECTURE.md)",
	},
	{
		Match: "cmd/atomcheck",
		Allow: []string{"", "internal/cli", "internal/core", "internal/harness", "internal/platform"},
		Why:   "atomcheck drives single experiments and Figure 5 conflict rendering below the facade grids",
	},
	{
		Match: "cmd/atomiovet",
		Allow: []string{"internal/analysis"},
		Why:   "the vet driver sees only the analysis framework, never the simulator",
	},
	{
		Match: "cmd/atomtrace",
		Allow: []string{"internal/obs"},
		Why:   "the trace analyzer reads atomio.trace/v1 files; it never runs the simulator",
	},
	{
		Match: "",
		Allow: []string{"internal/core", "internal/harness", "internal/obs", "internal/pfs", "internal/platform", "internal/runner", "internal/sim", "internal/verify"},
		Why:   "the facade re-exports internals; it is the one package allowed to see across layers",
	},
	{
		Match: "internal/cli",
		Allow: []string{""},
		Why:   "shared flags bind to facade options only",
	},
	{
		Match: "internal/analysis",
		Allow: []string{"internal/analysis"},
		Why:   "the checker must not depend on the code it checks",
	},
	{
		Match: "internal/runner",
		Allow: []string{"internal/core", "internal/harness", "internal/obs", "internal/pfs", "internal/platform", "internal/sim", "internal/verify"},
		Why:   "grids orchestrate harness cells; the fleet generates fault scripts and gates on verdicts",
	},
	{
		Match: "internal/harness",
		Allow: []string{"internal/core", "internal/datatype", "internal/interval", "internal/lock", "internal/mpi", "internal/mpiio", "internal/obs", "internal/pfs", "internal/platform", "internal/sim", "internal/trace", "internal/verify", "internal/workload"},
		Why:   "one experiment cell assembles the whole stack",
	},
	{
		Match: "internal/verify",
		Allow: []string{"internal/interval", "internal/pfs"},
		Why:   "atomicity checking reads file bytes and extents",
	},
	{
		Match: "internal/mpiio",
		Allow: []string{"internal/core", "internal/datatype", "internal/fileview", "internal/interval", "internal/lock", "internal/mpi", "internal/obs", "internal/pfs", "internal/trace"},
		Why:   "MPI_File handles tie communicator, file system, locks, views, and strategy together",
	},
	{
		Match: "internal/core",
		Allow: []string{"internal/fileview", "internal/interval", "internal/lock", "internal/mpi", "internal/pfs", "internal/trace"},
		Why:   "the paper's strategies; never the harness or runner above them",
	},
	{
		Match: "internal/platform",
		Allow: []string{"internal/lock", "internal/mpi", "internal/pfs", "internal/sim"},
		Why:   "Table 1 profiles parameterize the machine model",
	},
	{
		Match: "internal/fileview",
		Allow: []string{"internal/datatype", "internal/interval"},
		Why:   "views flatten datatypes onto extents",
	},
	{
		Match: "internal/workload",
		Allow: []string{"internal/datatype"},
		Why:   "partitioning patterns build datatypes",
	},
	{
		Match: "internal/datatype",
		Allow: []string{"internal/interval"},
		Why:   "derived datatypes reduce to extents",
	},
	{
		Match: "internal/mpi",
		Allow: []string{"internal/obs", "internal/sim"},
		Why:   "message passing advances virtual clocks; it never sees storage (mpiio composes the two)",
	},
	{
		Match: "internal/lock",
		Allow: []string{"internal/interval", "internal/obs", "internal/sim"},
		Why:   "byte-range locks are extent algebra under virtual time",
	},
	{
		Match: "internal/pfs",
		Allow: []string{"internal/interval", "internal/obs", "internal/pfs", "internal/sim"},
		Why:   "striped storage is extent algebra under virtual time; scenario profiles wrap pfs configs",
	},
	{
		Match: "internal/trace",
		Allow: []string{"internal/obs", "internal/sim"},
		Why:   "phase traces are labelled virtual durations",
	},
	{
		Match: "internal/obs",
		Allow: []string{"internal/sim"},
		Why:   "event tracing is virtual-time instants and metrics; every layer may emit into it, it sees none of them",
	},
	{
		Match: "internal/interval",
		Allow: []string{"internal/interval"},
		Why:   "extent algebra stands alone",
	},
	{
		Match: "internal/sim/des",
		Allow: []string{"internal/sim"},
		Why:   "the event-loop scheduler implements the sim engine contract and sees nothing but sim types",
	},
	{
		Match: "internal/sim/fault",
		Allow: []string{"internal/sim"},
		Why:   "fault scripts are pure data over virtual time; consumers above interpret them",
	},
	{
		Match: "internal/sim",
		Allow: []string{},
		Why:   "virtual time is the bottom of the stack and imports nothing above the stdlib",
	},
}

// LayerFor returns the most specific rule covering module-relative
// package path p, or nil if the table does not cover it.
func LayerFor(p string) *Layer {
	var best *Layer
	for i := range Layers {
		l := &Layers[i]
		if !HasPathPrefix(p, l.Match) {
			continue
		}
		if best == nil || len(l.Match) > len(best.Match) {
			best = l
		}
	}
	return best
}
