// Package detfix is a detwalk fixture: its virtualized path lies under
// internal/core, inside the output-bearing scope, so every map iteration
// here must sort its keys or stay commutative.
package detfix

import "sort"

// leakOrder appends in iteration order: the classic leak.
func leakOrder(m map[int]int) []int {
	var out []int
	for k, v := range m { // want "iteration over map m has randomized order"
		out = append(out, k*v)
	}
	return out
}

// emit calls out of the loop body: order observable by the callee.
func emit(m map[int]int, f func(int)) {
	for k := range m { // want "iteration over map m has randomized order"
		f(k)
	}
}

// sortedWalk uses the sanctioned collect-then-sort idiom.
func sortedWalk(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []int
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// total is commutative accumulation: any order computes the same sum.
func total(m map[int]int64) int64 {
	var sum int64
	count := 0
	for _, v := range m {
		sum += v
		count++
	}
	return sum * int64(count)
}

// scale writes each key at most once into another map.
func scale(m map[int]int) map[int]int {
	dst := make(map[int]int, len(m))
	for k, v := range m {
		dst[k] = v * 2
	}
	return dst
}

// maxVal tracks a maximum: order-insensitive.
func maxVal(m map[int]int) int {
	best := 0
	for _, v := range m {
		if best < v {
			best = v
		}
	}
	return best
}

// emitAllowed carries a reasoned suppression, so it reports nothing.
func emitAllowed(m map[int]int, f func(int)) {
	//atomiovet:allow detwalk fixture demonstrates a reasoned suppression
	for k := range m {
		f(k)
	}
}
