// Package hotfix is a hotalloc fixture: functions carrying the
// //atomiovet:hotpath directive must not allocate; unmarked functions
// allocate freely.
package hotfix

import "fmt"

type item struct{ n int }

// cleanHot allocates nothing: the canonical hot-path shape.
//
//atomiovet:hotpath
func cleanHot(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// localOnly's composite literal never leaves the frame: the escape walk
// keeps it on the stack, so it is legal on the hot path.
//
//atomiovet:hotpath
func localOnly() int {
	tmp := &item{n: 3}
	return tmp.n
}

// escapes returns its allocation.
//
//atomiovet:hotpath
func escapes() *item {
	return &item{n: 1} // want "allocation escapes to the heap in hotpath function escapes"
}

// appends may grow the backing array per call.
//
//atomiovet:hotpath
func appends(xs []int, x int) []int {
	return append(xs, x) // want "append may grow its backing array in hotpath function appends"
}

// makes allocates its backing store.
//
//atomiovet:hotpath
func makes() []int {
	return make([]int, 8) // want "make allocates in hotpath function makes"
}

// formats goes through fmt, which formats into a fresh heap buffer.
//
//atomiovet:hotpath
func formats(n int) string {
	return fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates in hotpath function formats"
}

func sink(v interface{}) { _ = v }

// boxes passes an int where an interface is expected: the value is
// copied to the heap to fill the interface.
//
//atomiovet:hotpath
func boxes(n int) {
	sink(n) // want "int value boxed into interface"
}

// pointerShaped passes a pointer: filling the interface data word
// allocates nothing.
//
//atomiovet:hotpath
func pointerShaped(it *item) {
	sink(it)
}

// unmarked is not on the hot path and allocates freely.
func unmarked() *item {
	out := make([]*item, 0, 1)
	out = append(out, &item{n: 2})
	return out[0]
}
