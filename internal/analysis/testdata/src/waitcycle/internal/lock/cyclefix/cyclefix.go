// Package cyclefix is a waitcycle fixture: its virtualized path lies
// under internal/lock, where cross-shard mutex acquisitions must be
// provably ascending on every path into the acquisition.
package cyclefix

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type table struct {
	shards []shard
}

// lockAllAscending is the production loop idiom: each iteration
// redefines the index variable, so no stale descriptor survives the
// back edge (the loop's direction is shardorder's contract).
func (t *table) lockAllAscending(ids []int) {
	for _, id := range ids {
		t.shards[id].mu.Lock()
	}
	for i := len(ids) - 1; i >= 0; i-- {
		t.shards[ids[i]].mu.Unlock()
	}
}

// guardedAscending proves the order on the taken branch.
func (t *table) guardedAscending(a, b int) {
	if a < b {
		t.shards[a].mu.Lock()
		t.shards[b].mu.Lock()
		t.shards[b].mu.Unlock()
		t.shards[a].mu.Unlock()
	}
}

// negatedGuard orders both arms: the false edge knows b <= a.
func (t *table) negatedGuard(a, b int) {
	if a < b {
		t.shards[a].mu.Lock()
		t.shards[b].mu.Lock()
	} else {
		t.shards[b].mu.Lock()
		t.shards[a].mu.Lock()
	}
	t.shards[a].mu.Unlock()
	t.shards[b].mu.Unlock()
}

// swapThenLock normalizes with the swap idiom: renaming a and b inside
// the branch facts keeps the proof alive at the merge.
func (t *table) swapThenLock(a, b int) {
	if b < a {
		a, b = b, a
	}
	t.shards[a].mu.Lock()
	t.shards[b].mu.Lock()
	t.shards[b].mu.Unlock()
	t.shards[a].mu.Unlock()
}

// literalsAscending needs no path condition: 0 < 1.
func (t *table) literalsAscending() {
	t.shards[0].mu.Lock()
	t.shards[1].mu.Lock()
	t.shards[1].mu.Unlock()
	t.shards[0].mu.Unlock()
}

// unordered acquires two shards with no relation between the indices.
func (t *table) unordered(a, b int) {
	t.shards[a].mu.Lock()
	t.shards[b].mu.Lock() // want "no path condition proves a < b"
	t.shards[b].mu.Unlock()
	t.shards[a].mu.Unlock()
}

// descendingGuard locks against the proven order.
func (t *table) descendingGuard(a, b int) {
	if a < b {
		t.shards[b].mu.Lock()
		t.shards[a].mu.Lock() // want "no path condition proves b < a"
		t.shards[a].mu.Unlock()
		t.shards[b].mu.Unlock()
	}
}

// literalsDescending is wrong with no variables at all.
func (t *table) literalsDescending() {
	t.shards[1].mu.Lock()
	t.shards[0].mu.Lock() // want "no path condition proves 1 < 0"
	t.shards[0].mu.Unlock()
	t.shards[1].mu.Unlock()
}

// staleGuard reassigns b after the guard: the proof dies with it.
func (t *table) staleGuard(a, b int) {
	if a < b {
		b = a - 1
		t.shards[a].mu.Lock()
		t.shards[b].mu.Lock() // want "no path condition proves a < b"
		t.shards[b].mu.Unlock()
		t.shards[a].mu.Unlock()
	}
}

// oneArmUnproved orders the indices on one path only: the must-join
// drops the proof at the merge.
func (t *table) oneArmUnproved(a, b int, fast bool) {
	if fast {
		if a >= b {
			return
		}
	}
	t.shards[a].mu.Lock()
	t.shards[b].mu.Lock() // want "no path condition proves a < b"
	t.shards[b].mu.Unlock()
	t.shards[a].mu.Unlock()
}
