// Package clockok is a simclock fixture: its virtualized path lies under
// internal/cli, outside the simulation scope, so wall-clock reads are not
// simclock's business here.
package clockok

import "time"

func wall() time.Time {
	return time.Now()
}
