// Package clockfix is a simclock fixture: its virtualized path lies under
// internal/sim, so host-clock reads and global-source randomness are
// forbidden here.
package clockfix

import (
	"math/rand"
	"time"
)

func wall() int64 {
	return time.Now().UnixNano() // want "time.Now reads the host clock"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

func stale(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the host clock"
}

func roll() int {
	return rand.Intn(6) // want "rand.Intn draws from the process-seeded global source"
}

// seededRoll constructs an explicitly-seeded generator: legal.
func seededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// pureTime uses time only for arithmetic, never the host clock: legal.
func pureTime(d time.Duration) int64 {
	return d.Nanoseconds() + int64(5*time.Millisecond)
}
