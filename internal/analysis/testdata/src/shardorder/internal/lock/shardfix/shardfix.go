// Package shardfix is a shardorder fixture: its virtualized path lies
// under internal/lock, where loops over shard mutexes must acquire
// ascending and release descending.
package shardfix

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type table struct {
	shards []shard
}

// lockAscending ranges a slice: ascending by the spec. Legal acquire.
func (t *table) lockAscending(ids []int) {
	for _, id := range ids {
		t.shards[id].mu.Lock()
	}
}

// unlockReverse walks the held set backwards. Legal release.
func (t *table) unlockReverse(ids []int) {
	for i := len(ids) - 1; i >= 0; i-- {
		t.shards[ids[i]].mu.Unlock()
	}
}

// lockFromMap acquires in map order: no order at all.
func (t *table) lockFromMap(ids map[int]bool) {
	for id := range ids {
		t.shards[id].mu.Lock() // want "acquired while ranging over a map"
	}
}

// lockDescending acquires backwards: inverts the total order.
func (t *table) lockDescending(ids []int) {
	for i := len(ids) - 1; i >= 0; i-- {
		t.shards[ids[i]].mu.Lock() // want "does not provably iterate ascending"
	}
}

// unlockAscending releases forwards: breaks the reserve/commit unwind.
func (t *table) unlockAscending(ids []int) {
	for _, id := range ids {
		t.shards[id].mu.Unlock() // want "released in a non-descending loop"
	}
}

// perShard holds one mutex at a time: paired in the same body, exempt.
func (t *table) perShard(ids []int) int {
	total := 0
	for _, id := range ids {
		t.shards[id].mu.Lock()
		total += t.shards[id].n
		t.shards[id].mu.Unlock()
	}
	return total
}

// fixedMutex locks the same mutex each iteration: not a shard sweep.
func (t *table) fixedMutex(n int) {
	for i := 0; i < n; i++ {
		t.shards[0].mu.Lock()
		t.shards[0].n++
		t.shards[0].mu.Unlock()
	}
}
