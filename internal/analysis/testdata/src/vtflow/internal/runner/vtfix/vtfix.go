// Package vtfix is a vtflow fixture: its virtualized path lies under
// internal/runner, where host-clock reads are legal (simclock allows
// them) but their values must never flow into sim.VTime values or obs
// records.
package vtfix

import (
	"time"

	"atomio/internal/obs"
	"atomio/internal/sim"
)

func work() {}

// wallBesideResults is the sanctioned shape: measure wall time, report
// it as a plain number beside the simulated output.
func wallBesideResults() int64 {
	start := time.Now()
	work()
	return time.Since(start).Nanoseconds()
}

// directConversion forges a virtual timestamp from the host clock.
func directConversion() sim.VTime {
	return sim.VTime(time.Now().UnixNano()) // want "host-clock value flows into a sim.VTime"
}

// throughLocals launders the reading through copies and arithmetic; the
// taint walk follows it to the conversion.
func throughLocals() sim.VTime {
	w := time.Now().UnixNano()
	adj := w + 5
	return sim.VTime(adj) // want "host-clock value flows into a sim.VTime"
}

// eventTimestamp stamps an observability event off the wall clock: both
// the forged timestamp and the event carrying it are flagged.
func eventTimestamp() obs.Event {
	w := time.Now().UnixNano()
	return obs.Event{T: sim.VTime(w)} // want "host-clock value flows into a obs.Event" "host-clock value flows into a sim.VTime"
}

// killedBeforeUse overwrites the reading before it reaches the sink:
// the strong update clears the taint.
func killedBeforeUse() sim.VTime {
	w := time.Now().UnixNano()
	w = 0
	return sim.VTime(w)
}

// taintedOnOneBranch reads the clock on one path only: the union join
// keeps the taint at the merge.
func taintedOnOneBranch(cond bool) sim.VTime {
	var w int64
	if cond {
		w = time.Now().UnixNano()
	}
	return sim.VTime(w) // want "host-clock value flows into a sim.VTime"
}
