// Package badcore is a layering fixture: a core strategy package
// importing the harness would invert the DAG (harness drives core, never
// the reverse).
package badcore

import (
	_ "atomio/internal/harness" // want "import of internal/harness breaks layering"
)
