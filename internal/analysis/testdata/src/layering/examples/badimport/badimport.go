// Package badimport is a layering fixture: an example reaching past the
// facade into atomio/internal, exactly what the old CI grep guarded
// against.
package badimport

import (
	_ "atomio/internal/core" // want "import of internal/core breaks layering"
)
