// Package goodimport is a layering fixture: an example speaking only the
// public facade, the sanctioned shape.
package goodimport

import "atomio"

func platforms() []string {
	return atomio.Platforms()
}
