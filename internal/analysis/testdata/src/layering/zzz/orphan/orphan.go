// Package orphan is a layering fixture: a package the layer table does
// not cover must itself be a finding, so the DAG can never silently grow.
package orphan // want "not covered by the layer table"
