// Package badcmd is a layering fixture: a generic binary bypassing the
// facade and internal/cli to reach the harness directly.
package badcmd

import (
	_ "atomio/internal/harness" // want "import of internal/harness breaks layering"
)
