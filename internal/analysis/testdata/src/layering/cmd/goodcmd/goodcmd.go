// Package goodcmd is a layering fixture: a binary speaking the facade
// plus the shared flag layer, the sanctioned shape for cmd packages.
package goodcmd

import (
	"atomio"
	"atomio/internal/cli"
)

func run(args []string) error {
	app := cli.New("goodcmd")
	if err := app.Parse(args); err != nil {
		return err
	}
	_ = atomio.Strategies()
	return nil
}
