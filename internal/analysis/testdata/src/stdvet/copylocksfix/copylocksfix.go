// Package copylocksfix is a copylocks fixture: values that transitively
// contain sync state must move by pointer, never by copy.
package copylocksfix

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) value() int { // want "receiver copies lock value"
	return g.n
}

func (g *guarded) bump() { // ok: pointer receiver
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func deref(g *guarded) int {
	h := *g // want "assignment copies lock value"
	return h.n
}

func pass(g *guarded) {
	consume(*g) // want "call argument copies lock value"
}

func consume(guarded) {}

func each(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies lock value"
		total += g.n
	}
	return total
}

func pointers(gs []*guarded) int { // ok: pointer elements copy freely
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}

func fresh() *guarded { // ok: a composite literal initializes, not copies
	g := &guarded{n: 1}
	return g
}
