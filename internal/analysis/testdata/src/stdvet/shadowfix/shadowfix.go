// Package shadowfix is a shadow fixture: an inner := may not rebind a
// name whose outer binding is used again after the inner scope ends —
// the swallowed-err shape — while parameter names and dead-after
// shadows stay legal.
package shadowfix

import (
	"sort"
	"strconv"
)

func parse(s string) (int, error) {
	return strconv.Atoi(s)
}

// swallowed loses the inner error: the final return reads the outer one.
func swallowed(a, b string) error {
	x, err := parse(a)
	if err != nil {
		return err
	}
	if x > 0 {
		y, err := parse(b) // want "shadows the declaration"
		if y > 1 {
			_ = err
		}
	}
	return err
}

// independent rebinds err but never reads the outer binding again: legal.
func independent(a, b string) int {
	v, err := parse(a)
	if err != nil {
		return 0
	}
	if v > 0 {
		w, err := parse(b)
		if err != nil {
			return 0
		}
		return w
	}
	return v
}

var limit = 10

// below uses the canonical sort.Search closure-parameter idiom: a
// parameter name is declaration-site syntax, not a rebinding hazard.
func below(xs []int) int {
	n := sort.Search(len(xs), func(n int) bool { return xs[n] >= limit })
	return n
}
