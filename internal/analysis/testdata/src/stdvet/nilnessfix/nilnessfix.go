// Package nilnessfix is a nilness fixture: nil checks of provably
// non-nil values and uses of provably nil values are both trivially
// wrong.
package nilnessfix

type node struct {
	next *node
	val  int
}

func freshAddr() int {
	n := &node{val: 1}
	if n == nil { // want "cannot be nil here"
		return 0
	}
	return n.val
}

func freshNew() int {
	n := new(node)
	if n != nil { // want "cannot be nil here"
		return 1
	}
	return 0
}

func derefField(n *node) int {
	if n == nil {
		return n.val // want "nil dereference"
	}
	return n.val
}

func derefStar(n *node) int {
	if n == nil {
		m := *n // want "nil dereference"
		return m.val
	}
	return 0
}

// reassigned replaces n before touching it: legal.
func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

// guard is the ordinary nil guard: legal.
func guard(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}
