// Package namefix is a registry fixture for the name half of the check:
// its virtualized path lies under internal/platform, so Name literals
// here become registry keys and must stay lowercase-stable.
package namefix

import "fmt"

type profile struct {
	Name string
}

func bad() profile {
	return profile{
		Name: "Bad Name", // want "not lowercase-stable"
	}
}

func good() profile {
	return profile{Name: "cplant-2.0"}
}

type method struct{}

func (method) Name() string {
	return "TwoPhase" // want "not lowercase-stable"
}

type shardMethod struct{ n int }

func (s shardMethod) Name() string {
	return fmt.Sprintf("Shard-%d", s.n) // want "not lowercase-stable"
}

type okMethod struct{}

func (okMethod) Name() string { return "two-phase" }

type okShardMethod struct{ n int }

func (s okShardMethod) Name() string {
	return fmt.Sprintf("shard-%d", s.n)
}

// allowed carries a reasoned suppression, so it reports nothing.
func allowed() profile {
	//atomiovet:allow registry fixture demonstrates a reasoned suppression
	return profile{Name: "IBM SP"}
}
