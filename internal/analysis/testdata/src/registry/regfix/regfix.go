// Package regfix is a registry fixture for the call-site half of the
// check: atomio.Register* returns an error by contract, so a call must
// either run in init (where the facade's own boot registration panics via
// must) or handle what comes back.
package regfix

import (
	"atomio"
	"atomio/internal/core"
)

func newStrategy() core.Strategy {
	return core.ListIO{}
}

// init registration may drop the error: boot-time failures surface as
// soon as anything lists the registry.
func init() {
	atomio.RegisterStrategy(newStrategy)
}

// registerLate drops the error outside init: a duplicate name would
// vanish silently.
func registerLate() {
	atomio.RegisterStrategy(newStrategy) // want "error is dropped"
}

// registerChecked propagates the error: legal anywhere.
func registerChecked() error {
	return atomio.RegisterStrategy(newStrategy)
}

// registerHandled inspects the error before dropping it: legal.
func registerHandled() {
	if err := atomio.RegisterStrategy(newStrategy); err != nil {
		panic(err)
	}
}
