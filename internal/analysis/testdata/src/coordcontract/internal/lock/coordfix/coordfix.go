// Package coordfix is a coordcontract fixture: its virtualized path
// lies under internal/lock, where sim.Coord Block/Wake/Park(locker)
// sites must hold the owning structure's mutex on every path into the
// call.
package coordfix

import (
	"sync"

	"atomio/internal/sim"
)

type table struct {
	mu    sync.Mutex
	coord sim.Coord
	ready bool
}

// wakeUnderLock is the canonical legal shape: Wake under the same
// mutex the sleeper Blocked under.
func (t *table) wakeUnderLock(id int, at sim.VTime) {
	t.mu.Lock()
	t.ready = true
	t.coord.Wake(id, at)
	t.mu.Unlock()
}

// parkUnderDeferredUnlock mirrors internal/lock's acquire path: the
// deferred unlock runs at exit, so the mutex stays held at the Park
// loop.
func (t *table) parkUnderDeferredUnlock(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.coord.Block(id)
	for !t.ready {
		t.coord.Park(id, &t.mu)
	}
}

// parkNilAfterUnlock mirrors the sharded table's reserve/park window:
// a nil locker parks on the buffered wake token, legal after unlock.
func (t *table) parkNilAfterUnlock(id int) {
	t.mu.Lock()
	t.coord.Block(id)
	t.mu.Unlock()
	t.coord.Park(id, nil)
}

// wakeBothArmsLocked holds the mutex on every path to the Wake even
// though the arms differ.
func (t *table) wakeBothArmsLocked(id int, at sim.VTime, fast bool) {
	if fast {
		t.mu.Lock()
	} else {
		t.mu.Lock()
		t.ready = true
	}
	t.coord.Wake(id, at)
	t.mu.Unlock()
}

// wakeNoLock omits the mutex entirely.
func (t *table) wakeNoLock(id int, at sim.VTime) {
	t.coord.Wake(id, at) // want "Wake called without the owning structure.s mutex held"
}

// wakeAfterUnlock releases before waking: the PR 9 shape.
func (t *table) wakeAfterUnlock(id int, at sim.VTime) {
	t.mu.Lock()
	t.ready = true
	t.mu.Unlock()
	t.coord.Wake(id, at) // want "Wake called without the owning structure.s mutex held"
}

// wakeOneArmUnlocked unlocks on one branch only: the must-analysis
// intersection join empties the held set at the merge.
func (t *table) wakeOneArmUnlocked(id int, at sim.VTime, bail bool) {
	t.mu.Lock()
	if bail {
		t.mu.Unlock()
	}
	t.coord.Wake(id, at) // want "Wake called without the owning structure.s mutex held"
}

// blockNoLock sleeps without admission protection.
func (t *table) blockNoLock(id int) {
	t.coord.Block(id) // want "Block called without the owning structure.s mutex held"
	t.coord.Park(id, nil)
}

type pair struct {
	a, b  sync.Mutex
	coord sim.Coord
	ready bool
}

// parkWrongMutex hands Park a mutex other than the one it holds: the
// coordinator would unlock b while the caller holds only a.
func (p *pair) parkWrongMutex(id int) {
	p.a.Lock()
	defer p.a.Unlock()
	p.coord.Block(id)
	for !p.ready {
		p.coord.Park(id, &p.b) // want "Park sleeps on p.b without holding it"
	}
}

type sharded struct {
	coord sim.Coord
}

func (s *sharded) lockShards(ids []int)   {}
func (s *sharded) unlockShards(ids []int) {}

// wakeUnderHelper acquires through a lock-prefixed helper method, the
// sharded table's idiom: the helper pair is tracked as a pseudo-mutex.
func (s *sharded) wakeUnderHelper(id int, at sim.VTime, ids []int) {
	s.lockShards(ids)
	defer s.unlockShards(ids)
	s.coord.Wake(id, at)
}

// wakeAfterHelperUnlock releases the helper pseudo-mutex first.
func (s *sharded) wakeAfterHelperUnlock(id int, at sim.VTime, ids []int) {
	s.lockShards(ids)
	s.unlockShards(ids)
	s.coord.Wake(id, at) // want "Wake called without the owning structure.s mutex held"
}

// tracer is a forwarding Coord wrapper like obs.CoordTracer: each
// method delegates to the same method on the inner Coord and inherits
// its caller's lock instead of owning one.
type tracer struct {
	inner sim.Coord
}

func (t *tracer) Block(id int)               { t.inner.Block(id) }
func (t *tracer) Park(id int, l sync.Locker) { t.inner.Park(id, l) }
func (t *tracer) Wake(id int, at sim.VTime)  { t.inner.Wake(id, at) }
