package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// MetaName attributes diagnostics about the suppression comments
// themselves (malformed, unknown analyzer, stale) — these cannot be
// suppressed.
const MetaName = "atomiovet"

// AllowPrefix starts a suppression comment:
//
//	//atomiovet:allow <analyzer> <reason>
//
// The comment silences <analyzer>'s diagnostics on its own line and on
// the line directly below, so it works both as an end-of-line comment
// and as a standalone comment above the flagged statement. The reason is
// mandatory prose; an allow that names an unknown analyzer, omits the
// reason, or suppresses nothing (stale) is itself a diagnostic, so the
// suppression inventory can only shrink unless someone writes down why.
const AllowPrefix = "atomiovet:allow"

// allow is one parsed suppression comment.
type allow struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// hitKey buckets suppressed findings by analyzer and file. Staleness is
// decided per file: a suppression hit in one file never vouches for an
// allow comment sitting in another file of the same package.
type hitKey struct {
	analyzer string
	file     string
}

// parseAllows extracts every allow comment from the files.
func parseAllows(fset *token.FileSet, files []*ast.File) []*allow {
	var out []*allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, &allow{
					pos:      fset.Position(c.Pos()),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// Suppress filters diags through the files' allow comments and appends
// the suppression facility's own diagnostics. known is the full analyzer
// name set (nil skips unknown-name validation, for single-analyzer test
// runs); ran holds the analyzers that actually executed — staleness of
// an allow is only decidable for those, so a partial run never miscalls
// another analyzer's allows stale. Diagnostics from MetaName are never
// suppressed.
func Suppress(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known, ran map[string]bool) []Diagnostic {
	allows := parseAllows(fset, files)
	valid := make([]*allow, 0, len(allows))
	var meta []Diagnostic
	for _, al := range allows {
		switch {
		case al.analyzer == "":
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "allow comment names no analyzer: want //atomiovet:allow <analyzer> <reason>"})
		case al.analyzer == MetaName:
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "the suppression facility's own diagnostics cannot be suppressed"})
		case known != nil && !known[al.analyzer]:
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "allow comment names unknown analyzer " + strconv.Quote(al.analyzer)})
		case al.reason == "":
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "allow comment for " + al.analyzer + " has no reason: every suppression must say why"})
		default:
			valid = append(valid, al)
		}
	}

	// hits counts suppressed findings per (analyzer, file). An allow can
	// only be satisfied by findings in its own file: the per-file
	// accounting is what keeps an allow in one file from masking — or
	// excusing — a same-analyzer finding in another file of the package.
	hits := make(map[hitKey]int)
	kept := diags[:0:0]
	for _, d := range diags {
		suppressed := false
		for _, al := range valid {
			if al.analyzer == d.Analyzer &&
				al.pos.Filename == d.Pos.Filename &&
				(al.pos.Line == d.Pos.Line || al.pos.Line+1 == d.Pos.Line) {
				al.used = true
				hits[hitKey{analyzer: d.Analyzer, file: d.Pos.Filename}]++
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, al := range valid {
		if !ran[al.analyzer] {
			continue
		}
		// Stale on two levels: the allow's own lines suppressed nothing,
		// and — the file-level cross-check — its (analyzer, file) bucket
		// recorded no hits either, so a same-analyzer finding suppressed
		// elsewhere in the package can never vouch for it.
		if !al.used && hits[hitKey{analyzer: al.analyzer, file: al.pos.Filename}] == 0 {
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "stale allow comment: " + al.analyzer + " reports nothing here; delete it"})
		} else if !al.used {
			meta = append(meta, Diagnostic{Pos: al.pos, Analyzer: MetaName,
				Message: "stale allow comment: " + al.analyzer + " fires elsewhere in this file but not on these lines; move or delete it"})
		}
	}
	kept = append(kept, meta...)
	Sort(kept)
	return kept
}
