// Package analyzertest runs analyzers over golden fixture packages and
// checks their diagnostics against `// want "regexp"` comments, the same
// contract as golang.org/x/tools/go/analysis/analysistest (which this
// dependency-free module cannot import). Fixtures live under
// internal/analysis/testdata/src/<group>/...; their import paths are
// virtualized by analysis.ModuleRel, so a fixture directory mirrors the
// module-relative path of the package it impersonates (for example
// testdata/src/layering/examples/bad is checked as "examples/bad").
package analyzertest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"atomio/internal/analysis"
	"atomio/internal/analysis/load"
)

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`^want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads each pattern (resolved against the module root), applies the
// analyzer followed by the suppression filter, and reports any mismatch
// between produced diagnostics and `// want` expectations as test
// failures.
func Run(t *testing.T, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(root, patterns...)
	if err != nil {
		t.Fatal(err)
	}
	ran := map[string]bool{a.Name: true}
	for _, p := range pkgs {
		target := &analysis.Target{Path: p.Path, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
		diags, err := analysis.Run(target, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		diags = analysis.Suppress(p.Fset, p.Files, diags, nil, ran)
		check(t, p, diags)
	}
}

// check matches diagnostics against the package's want comments, both
// ways: every diagnostic needs a matching want on its line, every want
// needs a diagnostic.
func check(t *testing.T, p *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, p)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts want expectations from every comment in the
// package.
func parseWants(t *testing.T, p *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
