package registrycheck_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/registrycheck"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, registrycheck.Analyzer,
		"./internal/analysis/testdata/src/registry/regfix",
		"./internal/analysis/testdata/src/registry/internal/platform/namefix")
}
