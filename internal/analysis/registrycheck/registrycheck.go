// Package registrycheck guards the facade's name registries (PR 5):
// atomio.Register* returns an error by contract (duplicate or empty
// names are errors, never panics), so a call site must either live in an
// init function — where the facade's own boot registration panics via
// must() — or handle the returned error. It also keeps registered names
// machine-stable: the string literals that become registry keys (Name()
// methods of core strategies, Name fields of platform and scenario
// profiles, including Sprintf formats) must be lowercase and free of
// spaces, so CLI flags, cell IDs, and bench-record columns never grow
// case- or whitespace-sensitive variants. The paper's published Table 1
// spellings are the sanctioned exceptions, suppressed with rationale.
package registrycheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"

	"atomio/internal/analysis"
)

// Analyzer is the registry pass.
var Analyzer = &analysis.Analyzer{
	Name: "registry",
	Doc:  "Register* calls handle their error or run in init; registered names are lowercase-stable literals",
	Run:  run,
}

// nameScopes are the packages whose Name literals become registry keys.
var nameScopes = []string{"internal/core", "internal/platform", "internal/pfs/scenario"}

// stableName is the shape of a registry key: lowercase, digit, and
// separator characters only, plus %-verbs for Sprintf-built names.
var stableName = regexp.MustCompile(`^[a-z0-9][a-z0-9.+_%-]*$`)

func run(pass *analysis.Pass) error {
	checkCalls(pass)
	rel := analysis.ModuleRel(pass.Pkg.Path())
	if analysis.InAnyScope(rel, nameScopes) {
		checkNames(pass)
	}
	return nil
}

// checkCalls flags atomio.Register* results that are dropped outside an
// init function.
func checkCalls(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inInit := fn.Recv == nil && fn.Name.Name == "init"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := registerCallee(pass, call)
				if !ok || inInit {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s's error is dropped: registration can fail (duplicate or empty name); handle the error or register from init",
					name)
				return true
			})
		}
	}
}

// registerCallee reports whether call invokes one of the facade's
// Register* functions, returning its name.
func registerCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if fn.Pkg().Path() != analysis.ModulePath {
		return "", false
	}
	name := fn.Name()
	if len(name) < len("Register") || name[:len("Register")] != "Register" {
		return "", false
	}
	return "atomio." + name, true
}

// checkNames vets the string literals that become registry keys.
func checkNames(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if fn.Recv != nil && fn.Name.Name == "Name" && fn.Body != nil && returnsString(pass, fn) {
					ast.Inspect(fn.Body, func(n ast.Node) bool {
						ret, ok := n.(*ast.ReturnStmt)
						if !ok || len(ret.Results) != 1 {
							return true
						}
						checkNameExpr(pass, ret.Results[0])
						return true
					})
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
					checkNameExpr(pass, kv.Value)
				}
			}
			return true
		})
	}
}

// returnsString reports whether fn's single result is string.
func returnsString(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	sig, ok := pass.Info.Defs[fn.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

// checkNameExpr vets one expression that produces a registry key: a
// string literal directly, or the format literal of a Sprintf-style
// call. Other shapes (computed names) are left to the runtime contract.
func checkNameExpr(pass *analysis.Pass, e ast.Expr) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(v.Value); err == nil && !stableName.MatchString(s) {
			pass.Reportf(v.Pos(),
				"registered name %q is not lowercase-stable: registry keys reach CLI flags and bench records verbatim",
				s)
		}
	case *ast.CallExpr:
		if len(v.Args) > 0 {
			if lit, ok := v.Args[0].(*ast.BasicLit); ok {
				checkNameExpr(pass, lit)
			}
		}
	}
}
