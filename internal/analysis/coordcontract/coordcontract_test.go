package coordcontract_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/coordcontract"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, coordcontract.Analyzer,
		"./internal/analysis/testdata/src/coordcontract/internal/lock/coordfix")
}
