// Package coordcontract machine-enforces the sim.Coord calling
// convention that PR 9's race was a violation of: Block and Wake — and
// Park when it is handed a locker — must run with the owning shared
// structure's mutex held, acquired on every path into the call with no
// unlock in between. The contract is what keeps admission state and
// sleeper resumption agreeing on both engines: the waker needs the same
// lock the sleeper Blocked under, so the two sides are mutex-ordered.
//
// The check is flow-sensitive (internal/analysis/cfg + dataflow): a
// must-held analysis tracks the set of mutexes certainly held at every
// program point. Lock/RLock acquire, Unlock/RUnlock release; calls to
// lock-prefixed helper methods (lockShards) acquire a pseudo-mutex that
// the matching unlock-prefixed helper releases; `defer mu.Unlock()`
// releases nothing anywhere in the body (it runs at exit), which is
// exactly why the defer-unlock idiom passes.
//
// Two deliberate exemptions, both grounded in the Coord contract
// (internal/sim/engine.go):
//
//   - Park(id, nil) may run after the structure unlocks. The wake token
//     is buffered per actor, so a Wake landing between the unlock and
//     the park is not lost; determinism rests on Block and Wake, which
//     this analyzer still checks. (The sharded lock table's
//     reserve/park window is this shape.)
//   - A Coord method calling the same method on an inner Coord — a
//     forwarding wrapper like obs.CoordTracer — inherits its caller's
//     obligation instead of owning one.
package coordcontract

import (
	"go/ast"
	"go/types"
	"strings"

	"atomio/internal/analysis"
	"atomio/internal/analysis/cfg"
	"atomio/internal/analysis/dataflow"
)

// Analyzer is the coordcontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "coordcontract",
	Doc:  "sim.Coord Block/Wake/Park(locker) sites must hold the owning structure's mutex on every path",
	Run:  run,
}

// scope lists the Coord client packages. The engines themselves
// (internal/sim, internal/sim/des) own the protocol and are exempt.
var scope = []string{"internal/lock", "internal/mpi", "internal/pfs", "internal/obs"}

// checked is the set of Coord methods carrying the under-lock
// obligation.
var checked = map[string]bool{"Block": true, "Wake": true, "Park": true}

func run(pass *analysis.Pass) error {
	if !analysis.InAnyScope(analysis.ModuleRel(pass.Pkg.Path()), scope) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc runs the must-held analysis over one function and vets its
// Coord call sites.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	spec := dataflow.Spec[dataflow.Set[string]]{
		Dir:      dataflow.Forward,
		Boundary: dataflow.Set[string]{},
		Join:     dataflow.Intersect[string],
		Equal:    dataflow.EqualSets[string],
		Copy:     dataflow.CopySet[string],
		Transfer: func(b *cfg.Block, in dataflow.Set[string]) dataflow.Set[string] {
			for _, n := range b.Nodes {
				applyMutexOps(pass, n, in)
			}
			return in
		},
	}
	res := dataflow.Solve(g, spec)

	// Replay each reachable block, checking Coord calls at their exact
	// point inside the block (the held set changes mid-block).
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := dataflow.CopySet(in)
		for _, n := range b.Nodes {
			checkNode(pass, fd, n, held)
			applyMutexOps(pass, n, held)
		}
	}
}

// checkNode reports every checked Coord call in n that runs without the
// required mutex held.
func checkNode(pass *analysis.Pass, fd *ast.FuncDecl, n ast.Node, held dataflow.Set[string]) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.RangeStmt:
			// Closures own their flow; a RangeStmt node is the loop's
			// dispatch — its body lives in other CFG blocks.
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := coordCall(pass, call)
		if !ok {
			return true
		}
		// Forwarding wrapper: a Coord method delegating to its inner
		// Coord inherits the caller's lock, it does not own one.
		if fd.Name.Name == name && fd.Recv != nil {
			return true
		}
		switch name {
		case "Park":
			if len(call.Args) != 2 {
				return true
			}
			l := lockerArg(call.Args[1])
			if l == "" {
				// Park(id, nil): token-buffered, legal after unlock.
				return true
			}
			if !held[l] {
				pass.Reportf(call.Pos(),
					"sim.Coord.Park sleeps on %s without holding it on every path into the call: acquire it first, with no unlock in between (the coordinator relocks it around the sleep)", l)
			}
		case "Block", "Wake":
			if len(held) == 0 {
				pass.Reportf(call.Pos(),
					"sim.Coord.%s called without the owning structure's mutex held on every path into the call: admission state and sleeper resumption can disagree (the PR 9 race class) — acquire the mutex first, with no unlock in between", name)
			}
		}
		return true
	})
}

// coordCall matches call as <expr>.Block/Wake/Park(...) where the
// receiver's static type is sim.Coord (the interface itself — every
// production call site and wrapper goes through the interface).
func coordCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checked[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return "", false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Coord" || obj.Pkg() == nil {
		return "", false
	}
	if analysis.ModuleRel(obj.Pkg().Path()) != "internal/sim" {
		return "", false
	}
	return sel.Sel.Name, true
}

// lockerArg canonicalizes Park's locker argument: &t.mu yields "t.mu",
// a plain locker expression yields its own form, nil (or any non-
// addressed nil-able) yields "".
func lockerArg(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return ""
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		return types.ExprString(u.X)
	}
	return types.ExprString(e)
}

// applyMutexOps folds the mutex operations of one CFG node into the
// held set. Deferred unlocks run at exit, not here; function literals
// own their flow.
func applyMutexOps(pass *analysis.Pass, n ast.Node, held dataflow.Set[string]) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.RangeStmt:
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, acquire, ok := mutexOp(pass, call)
		if !ok {
			return true
		}
		if acquire {
			held[desc] = true
		} else {
			delete(held, desc)
		}
		return true
	})
}

// mutexOp classifies a call as a mutex acquisition or release and
// returns the canonical descriptor of what it holds. Three shapes
// count:
//
//   - x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() on sync.Mutex/RWMutex
//     (or any named Locker-shaped type): descriptor is x's expression.
//   - lock-prefixed helper methods (st.lockShards(ids)) acquire the
//     pseudo-mutex "st.lockShards"; the unlock-prefixed twin
//     (st.unlockShards) releases it.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (desc string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name := sel.Sel.Name
	// Bare mutex methods take no arguments; the lock Manager interface's
	// Lock/Unlock (owner, extent, time) never match.
	if len(call.Args) == 0 {
		switch name {
		case "Lock", "RLock":
			return types.ExprString(sel.X), true, true
		case "Unlock", "RUnlock":
			return types.ExprString(sel.X), false, true
		}
	}
	recv := types.ExprString(sel.X)
	if strings.HasPrefix(name, "lock") && len(name) > len("lock") {
		return recv + "." + name, true, true
	}
	if strings.HasPrefix(name, "unlock") && len(name) > len("unlock") {
		return recv + "." + strings.TrimPrefix(name, "un"), false, true
	}
	return "", false, false
}
