package stdvet_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/stdvet"
)

func TestShadowFixtures(t *testing.T) {
	analyzertest.Run(t, stdvet.Shadow,
		"./internal/analysis/testdata/src/stdvet/shadowfix")
}

func TestCopylocksFixtures(t *testing.T) {
	analyzertest.Run(t, stdvet.Copylocks,
		"./internal/analysis/testdata/src/stdvet/copylocksfix")
}

func TestNilnessFixtures(t *testing.T) {
	analyzertest.Run(t, stdvet.Nilness,
		"./internal/analysis/testdata/src/stdvet/nilnessfix")
}
