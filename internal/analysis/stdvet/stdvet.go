// Package stdvet hardens the standard `go vet` surface inside the same
// atomiovet multichecker, so one binary runs the custom contract
// analyzers and the general-correctness passes together: Shadow (an
// inner := rebinds a name whose outer binding is still used afterwards
// — the classic swallowed-err shape), Copylocks (a value containing a
// sync/sync.atomic type is copied by assignment, argument, or range),
// and Nilness (a pointer compared to nil immediately after it was
// provably non-nil, or dereferenced on the branch where it is nil).
// They are adjacent to, not clones of, upstream vet's passes: narrower
// where upstream needs SSA, deliberately zero-config.
package stdvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"atomio/internal/analysis"
)

// Shadow reports inner short declarations that rebind a function-local
// name whose outer binding is used again after the inner scope ends.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "inner declaration shadows an outer variable that is used after the inner scope ends",
	Run:  runShadow,
}

// Copylocks reports by-value copies of types that transitively contain
// sync or sync/atomic state.
var Copylocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "lock-bearing values must not be copied",
	Run:  runCopylocks,
}

// Nilness reports trivially decidable nil mistakes.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "nil checks of provably non-nil values; uses of provably nil values",
	Run:  runNilness,
}

// --- shadow ---

func runShadow(pass *analysis.Pass) error {
	params := paramIdents(pass)
	for id, obj := range pass.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.Name() == "_" || v.IsField() || params[id] {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			continue
		}
		// Walk enclosing function-local scopes for an earlier binding
		// of the same name.
		for s := inner.Parent(); s != nil && s != pass.Pkg.Scope() && s != types.Universe; s = s.Parent() {
			outer := s.Lookup(v.Name())
			if outer == nil {
				continue
			}
			ov, ok := outer.(*types.Var)
			if !ok || ov == v || ov.Pos() >= v.Pos() {
				break
			}
			if usedAfter(pass, ov, inner.End()) {
				pass.Reportf(id.Pos(),
					"declaration of %q shadows the declaration at %s, which is used again after this scope ends",
					v.Name(), pass.Fset.Position(ov.Pos()))
			}
			break
		}
	}
	return nil
}

// paramIdents collects every identifier naming a function parameter,
// result, or receiver — including inside func literals and bare func
// type expressions. Parameter names are declaration-site syntax (the
// canonical `sort.Search(n, func(i int) bool` idiom shadows on purpose),
// not the `:=` rebinding hazard shadow exists to catch.
func paramIdents(pass *analysis.Pass) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	markList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				out[name] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncType:
				markList(v.Params)
				markList(v.Results)
			case *ast.FuncDecl:
				markList(v.Recv)
			}
			return true
		})
	}
	return out
}

// usedAfter reports whether obj has a use positioned after end.
func usedAfter(pass *analysis.Pass, obj types.Object, end token.Pos) bool {
	for id, o := range pass.Info.Uses {
		if o == obj && id.Pos() > end {
			return true
		}
	}
	return false
}

// --- copylocks ---

func runCopylocks(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					checkCopy(pass, rhs, "assignment")
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if tv, ok := pass.Info.Types[st.X]; ok {
						switch seq := tv.Type.Underlying().(type) {
						case *types.Slice:
							reportLock(pass, st.Value.Pos(), seq.Elem(), "range value")
						case *types.Array:
							reportLock(pass, st.Value.Pos(), seq.Elem(), "range value")
						}
					}
				}
			case *ast.CallExpr:
				for _, arg := range st.Args {
					checkCopy(pass, arg, "call argument")
				}
			case *ast.FuncDecl:
				if st.Recv != nil {
					for _, field := range st.Recv.List {
						if tv, ok := pass.Info.Types[field.Type]; ok {
							reportLock(pass, field.Pos(), tv.Type, "receiver")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkCopy reports when expr copies an existing lock-bearing value: an
// identifier, field, index, or dereference (fresh composite literals
// and function results are initializations, not copies).
func checkCopy(pass *analysis.Pass, expr ast.Expr, what string) {
	switch expr.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if tv, ok := pass.Info.Types[expr]; ok && tv.IsValue() {
		reportLock(pass, expr.Pos(), tv.Type, what)
	}
}

// reportLock reports if t (by value) transitively contains sync state.
func reportLock(pass *analysis.Pass, pos token.Pos, t types.Type, what string) {
	if path := lockPath(t, make(map[types.Type]bool)); path != "" {
		pass.Reportf(pos, "%s copies lock value: %s contains %s", what, t.String(), path)
	}
}

// lockPath returns the name of the sync/sync.atomic type t transitively
// contains by value, or "".
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return pkg.Path() + "." + obj.Name()
			}
		}
		return lockPath(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPath(u.Field(i).Type(), seen); p != "" {
				return p
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

// --- nilness ---

func runNilness(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if ok {
				checkFreshNonNil(pass, block)
			}
			ifst, ok := n.(*ast.IfStmt)
			if ok {
				checkNilBranch(pass, ifst)
			}
			return true
		})
	}
	return nil
}

// checkFreshNonNil flags `x := &T{…}` / `x := new(T)` directly followed
// by a nil check of x: the comparison is decided at compile time.
func checkFreshNonNil(pass *analysis.Pass, block *ast.BlockStmt) {
	for i := 0; i+1 < len(block.List); i++ {
		assign, ok := block.List[i].(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			continue
		}
		target, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || !freshPointer(assign.Rhs[0]) {
			continue
		}
		ifst, ok := block.List[i+1].(*ast.IfStmt)
		if !ok || ifst.Init != nil {
			continue
		}
		if cmp, varName := nilComparison(pass, ifst.Cond); cmp != nil && varName == target.Name {
			pass.Reportf(cmp.Pos(),
				"%s cannot be nil here: it was assigned a fresh allocation on the previous line", target.Name)
		}
	}
}

// freshPointer reports whether e is &composite or new(T).
func freshPointer(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op != token.AND {
			return false
		}
		_, isComposite := v.X.(*ast.CompositeLit)
		return isComposite
	case *ast.CallExpr:
		id, ok := v.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// nilComparison matches `x == nil` or `x != nil` and returns x's name.
func nilComparison(pass *analysis.Pass, e ast.Expr) (*ast.BinaryExpr, string) {
	cmp, ok := e.(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
		return nil, ""
	}
	x, y := cmp.X, cmp.Y
	if isNil(pass, x) {
		x, y = y, x
	}
	if !isNil(pass, y) {
		return nil, ""
	}
	if id, ok := x.(*ast.Ident); ok {
		return cmp, id.Name
	}
	return nil, ""
}

// isNil reports whether e is the predeclared nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.Info.Uses[id].(*types.Nil)
	return isNilObj
}

// checkNilBranch flags field accesses and dereferences of x inside the
// `x == nil` branch, before any reassignment of x.
func checkNilBranch(pass *analysis.Pass, ifst *ast.IfStmt) {
	cmp, name := nilComparison(pass, ifst.Cond)
	if cmp == nil || cmp.Op != token.EQL {
		return
	}
	id, _ := cmp.X.(*ast.Ident)
	if id == nil {
		id, _ = cmp.Y.(*ast.Ident)
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return
	}
	reassigned := false
	ast.Inspect(ifst.Body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if l, ok := lhs.(*ast.Ident); ok && pass.Info.Uses[l] == obj {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			base, ok := v.X.(*ast.Ident)
			if !ok || pass.Info.Uses[base] != obj {
				return true
			}
			if sel, ok := pass.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(v.Pos(), "nil dereference: %s is nil on this branch", name)
			}
		case *ast.StarExpr:
			if base, ok := v.X.(*ast.Ident); ok && pass.Info.Uses[base] == obj {
				pass.Reportf(v.Pos(), "nil dereference: %s is nil on this branch", name)
			}
		}
		return true
	})
}
