// Package vtflow is the flow-sensitive generalization of simclock. The
// simclock pass bans host-clock reads outright inside the simulation
// packages; vtflow covers the packages where those reads are legal —
// the runner measures wall time per cell, the binaries print it — and
// enforces what "legal" means there: a wall-clock value may be
// reported beside simulated results but must never flow into them. The
// sinks are values of types declared in internal/sim (VTime, the
// simulation clock itself) and internal/obs (events, traces, metrics —
// everything the figures are computed from).
//
// The check runs the internal/analysis/dataflow taint walk per
// function: sources are the simclock.WallClock calls (time.Now,
// time.Since, ...), propagation follows assignments, arithmetic,
// conversions, and calls with tainted operands, and a diagnostic fires
// wherever a tainted expression's static type lands in a sink package.
// Go's nominal typing makes the conversion the natural choke point:
// int64 wall readings cannot become sim.VTime without an explicit
// sim.VTime(...) conversion, which is exactly where the taint surfaces.
//
// Function literals are analyzed as separate functions: taint does not
// follow values captured from the enclosing scope (a deliberate
// precision trade documented in dataflow.Taint).
package vtflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"atomio/internal/analysis"
	"atomio/internal/analysis/cfg"
	"atomio/internal/analysis/dataflow"
	"atomio/internal/analysis/simclock"
)

// Analyzer is the vtflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "vtflow",
	Doc:  "host-clock values must never flow into sim.VTime values, event timestamps, or obs records",
	Run:  run,
}

// outside lists the subtrees vtflow skips: the analysis suite itself,
// whose fixtures violate contracts on purpose.
var outside = []string{"internal/analysis"}

// sinkPkgs are the module subtrees whose types carry simulated results:
// a host-clock-tainted value of such a type is the contamination the
// determinism argument forbids.
var sinkPkgs = []string{"internal/sim", "internal/obs"}

func run(pass *analysis.Pass) error {
	if analysis.InAnyScope(analysis.ModuleRel(pass.Pkg.Path()), outside) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkBody(pass, fn.Body)
			case *ast.FuncLit:
				checkBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkBody taints one function body from its wall-clock reads and
// reports every tainted expression of a sink type.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	g := cfg.New(body)
	tr := dataflow.Taint(g, pass.Info, func(call *ast.CallExpr) bool {
		return wallClockCall(pass, call)
	})
	seen := make(map[token.Pos]bool)
	tr.Visit(func(e ast.Expr) {
		name := sinkType(pass, e)
		if name == "" || seen[e.Pos()] {
			return
		}
		seen[e.Pos()] = true
		pass.Reportf(e.Pos(),
			"host-clock value flows into a %s: simulated time and observability records derive from sim.VTime only (report wall time beside results, never inside them)", name)
	})
}

// wallClockCall reports whether call reads the host clock: the
// simclock.WallClock surface of package time.
func wallClockCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !simclock.WallClock[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "time"
}

// sinkType resolves e's static type (through pointers) to a named type
// declared in a sink package, returning its pkg.Name form, or "".
func sinkType(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	for {
		p, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if !analysis.InAnyScope(analysis.ModuleRel(obj.Pkg().Path()), sinkPkgs) {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
