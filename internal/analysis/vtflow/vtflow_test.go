package vtflow_test

import (
	"testing"

	"atomio/internal/analysis/analyzertest"
	"atomio/internal/analysis/vtflow"
)

func TestFixtures(t *testing.T) {
	analyzertest.Run(t, vtflow.Analyzer,
		"./internal/analysis/testdata/src/vtflow/internal/runner/vtfix")
}
