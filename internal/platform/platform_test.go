package platform

import (
	"strings"
	"testing"

	"atomio/internal/lock"
	"atomio/internal/pfs"
)

func TestAllHasThreePlatformsInTableOrder(t *testing.T) {
	ps := All()
	if len(ps) != 3 {
		t.Fatalf("platforms = %d", len(ps))
	}
	wantNames := []string{"Cplant", "Origin2000", "IBM SP"}
	wantFS := []string{"ENFS", "XFS", "GPFS"}
	for i, p := range ps {
		if p.Name != wantNames[i] || p.FSName != wantFS[i] {
			t.Errorf("platform %d = %s/%s, want %s/%s", i, p.Name, p.FSName, wantNames[i], wantFS[i])
		}
	}
}

func TestTable1Facts(t *testing.T) {
	// Pin the Table 1 facts from the paper.
	c, o, s := Cplant(), Origin2000(), IBMSP()
	if c.CPUType != "Alpha" || c.CPUSpeedMHz != 500 || c.IOServers != 12 || c.PeakIOBW != 50<<20 {
		t.Errorf("Cplant row wrong: %+v", c)
	}
	if o.CPUType != "R10000" || o.CPUSpeedMHz != 195 || o.IOServers != 0 || o.PeakIOBW != 4096<<20 {
		t.Errorf("Origin2000 row wrong: %+v", o)
	}
	if s.CPUType != "Power3" || s.CPUSpeedMHz != 375 || s.IOServers != 12 || s.PeakIOBW != 1536<<20 {
		t.Errorf("IBM SP row wrong: %+v", s)
	}
}

func TestLockStyles(t *testing.T) {
	if Cplant().SupportsLocking() {
		t.Error("Cplant/ENFS must not support locking (paper §4)")
	}
	if Cplant().NewLockManager() != nil {
		t.Error("Cplant lock manager should be nil")
	}
	if m := Origin2000().NewLockManager(); m == nil || m.Name() != "central" {
		t.Error("Origin2000 should use a central lock manager")
	}
	if m := IBMSP().NewLockManager(); m == nil || m.Name() != "distributed" {
		t.Error("IBM SP should use a distributed (GPFS token) lock manager")
	}
	if _, ok := IBMSP().NewLockManager().(*lock.Distributed); !ok {
		t.Error("IBM SP manager has wrong concrete type")
	}
}

func TestCplantUsesClientAffinity(t *testing.T) {
	// ENFS binds each compute node to one server.
	if Cplant().StripeMode != pfs.ClientAffinity {
		t.Error("Cplant must use client-affinity server mapping")
	}
	if Origin2000().StripeMode != pfs.RoundRobin || IBMSP().StripeMode != pfs.RoundRobin {
		t.Error("XFS/GPFS should stripe round-robin")
	}
}

func TestPFSConfigWiring(t *testing.T) {
	p := IBMSP()
	cfg := p.PFSConfig(true)
	if cfg.Servers != p.SimServers || !cfg.StoreData || cfg.SegOverhead != p.SegOverhead {
		t.Errorf("PFSConfig wiring wrong: %+v", cfg)
	}
	if !cfg.Cache.Enabled || !cfg.Cache.WriteBehind {
		t.Error("platform caches should model write-behind")
	}
	fs, err := pfs.New(cfg) // every platform config must construct
	if err != nil {
		t.Fatal(err)
	}
	if fs.Config().Servers != p.SimServers {
		t.Error("fs construction lost config")
	}
}

func TestMPIConfigWiring(t *testing.T) {
	cfg := Cplant().MPIConfig(8)
	if cfg.Procs != 8 || cfg.Net == nil {
		t.Errorf("MPIConfig wiring wrong: %+v", cfg)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("IBM SP")
	if err != nil || p.FSName != "GPFS" {
		t.Fatalf("ByName = %+v, %v", p, err)
	}
	if _, err := ByName("Cray T3E"); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"Cplant", "Origin2000", "IBM SP",
		"ENFS", "XFS", "GPFS",
		"Alpha", "R10000", "Power3",
		"500 MHz", "195 MHz", "375 MHz",
		"Myrinet", "Colony",
		"50 MB/s", "4 GB/s", "1.5 GB/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 render missing %q:\n%s", want, out)
		}
	}
	// Origin2000 has no discrete I/O server count.
	if !strings.Contains(out, "-") {
		t.Errorf("Table 1 should render '-' for Origin2000 servers:\n%s", out)
	}
}

func TestLockStyleString(t *testing.T) {
	if NoLocking.String() != "none" || CentralLocking.String() != "central" ||
		DistributedLocking.String() != "distributed" || LockStyle(7).String() == "" {
		t.Fatal("LockStyle strings")
	}
}
