package platform

import (
	"fmt"
	"strings"
)

// Table1 renders the paper's Table 1 ("System configurations for the three
// parallel machines on which the experimental results were obtained") from
// the encoded profiles.
func Table1() string {
	ps := All()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: System configurations\n")
	w := func(label string, f func(Profile) string) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, p := range ps {
			fmt.Fprintf(&b, "%-16s", f(p))
		}
		b.WriteByte('\n')
	}
	w("", func(p Profile) string { return p.Name })
	w("File system", func(p Profile) string { return p.FSName })
	w("CPU type", func(p Profile) string { return p.CPUType })
	w("CPU speed", func(p Profile) string { return fmt.Sprintf("%d MHz", p.CPUSpeedMHz) })
	w("Network", func(p Profile) string { return p.Network })
	w("I/O servers", func(p Profile) string {
		if p.IOServers == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", p.IOServers)
	})
	w("Peak I/O bw", func(p Profile) string { return formatBW(p.PeakIOBW) })
	w("File locking", func(p Profile) string { return p.LockStyle.String() })
	return b.String()
}

// Params renders the derived simulator parameters each profile feeds the
// file-system model, one line per platform.
func Params() string {
	var b strings.Builder
	for _, p := range All() {
		fmt.Fprintf(&b, "%-12s servers=%d mode=%s stripe=%dKiB server=%v+%dMB/s client=%v+%dMB/s seg=%v\n",
			p.Name, p.SimServers, p.StripeMode, p.StripeSize>>10,
			p.ServerModel.Latency, p.ServerModel.BytesPerSec>>20,
			p.ClientModel.Latency, p.ClientModel.BytesPerSec>>20,
			p.SegOverhead)
	}
	return b.String()
}

// formatBW prints a bandwidth in the units the paper's table uses.
func formatBW(bytesPerSec int64) string {
	const gb = 1 << 30
	if bytesPerSec >= gb {
		return fmt.Sprintf("%g GB/s", float64(bytesPerSec)/gb)
	}
	return fmt.Sprintf("%g MB/s", float64(bytesPerSec)/mb)
}
