// Package platform encodes the three experimental platforms of the paper's
// Table 1 — ASCI Cplant (Linux cluster, ENFS), SGI Origin2000 (XFS), and
// IBM SP Blue Horizon (GPFS) — both as the published configuration facts
// (for rendering Table 1) and as simulator parameter sets that place each
// platform's simulated bandwidth in the regime the paper measured.
//
// Absolute bandwidths are not reproducible without the 2003 hardware; the
// parameters are calibrated so the *shape* of Figure 8 holds: per-platform
// magnitudes, file locking worst and flat, process-rank ordering best,
// graph-coloring in between. EXPERIMENTS.md records the calibration.
package platform

import (
	"fmt"

	"atomio/internal/lock"
	"atomio/internal/mpi"
	"atomio/internal/pfs"
	"atomio/internal/sim"
)

// LockStyle selects the lock-manager flavour a platform provides.
type LockStyle int

const (
	// NoLocking marks platforms without byte-range locking (Cplant ENFS:
	// "the most notable is the absence of file locking on Cplant").
	NoLocking LockStyle = iota
	// CentralLocking is the NFS/XFS-style central lock manager.
	CentralLocking
	// DistributedLocking is the GPFS-style token manager.
	DistributedLocking
)

// String names the style.
func (s LockStyle) String() string {
	switch s {
	case NoLocking:
		return "none"
	case CentralLocking:
		return "central"
	case DistributedLocking:
		return "distributed"
	default:
		return fmt.Sprintf("LockStyle(%d)", int(s))
	}
}

// Profile is one platform: the Table 1 facts plus simulator parameters.
type Profile struct {
	// Table 1 facts.
	Name        string
	FSName      string
	CPUType     string
	CPUSpeedMHz int
	Network     string
	IOServers   int   // 0 renders as "-" (Origin2000 is a single NUMA system)
	PeakIOBW    int64 // bytes/s, the table's "Peak I/O bandwidth"

	// Simulator parameters.
	LockStyle    LockStyle
	SimServers   int // server count used by the simulator
	StripeMode   pfs.StripeMode
	StripeSize   int64
	ServerModel  sim.LinearCost // per-server service
	ClientModel  sim.LinearCost // per-client link
	SegOverhead  sim.VTime      // per extra non-contiguous segment
	Cache        pfs.CacheConfig
	NetModel     sim.LinearCost // MPI message cost
	SendOverhead sim.VTime
	RecvOverhead sim.VTime
	LockMsgCost  sim.VTime
	LockService  sim.VTime
	LockLocal    sim.VTime
	LockRevoke   sim.VTime
	// LockShards partitions the lock manager's byte-range table across
	// this many offset-stripe shards (0 or 1 keeps the single table); the
	// shard stripe follows the platform's file-stripe size. Virtual
	// timings are invariant in the shard count — sharding multiplies
	// host-side lock-service throughput only (see internal/lock).
	LockShards int
	// Engine, when non-nil, selects the simulation engine experiments on
	// this profile run under (see sim.Engine). Nil defers to the harness
	// default (the event-loop scheduler); virtual results are
	// byte-identical across engines, so this is a host-performance knob,
	// not a model parameter.
	Engine sim.Engine
}

// SupportsLocking reports whether the platform has byte-range locking.
func (p Profile) SupportsLocking() bool { return p.LockStyle != NoLocking }

// PFSConfig returns the file-system configuration for this platform.
// storeData selects whether file bytes are materialized.
func (p Profile) PFSConfig(storeData bool) pfs.Config {
	return pfs.Config{
		Servers:     p.SimServers,
		StripeSize:  p.StripeSize,
		Mode:        p.StripeMode,
		ServerModel: p.ServerModel,
		ClientModel: p.ClientModel,
		SegOverhead: p.SegOverhead,
		StoreData:   storeData,
		Cache:       p.Cache,
	}
}

// MPIConfig returns the message-passing configuration for procs ranks.
func (p Profile) MPIConfig(procs int) mpi.Config {
	return mpi.Config{
		Procs:        procs,
		Net:          p.NetModel,
		SendOverhead: p.SendOverhead,
		RecvOverhead: p.RecvOverhead,
	}
}

// NewLockManager returns a fresh lock manager of the platform's flavour, or
// nil for platforms without locking.
func (p Profile) NewLockManager() lock.Manager {
	switch p.LockStyle {
	case CentralLocking:
		return lock.NewCentral(lock.CentralConfig{
			MsgCost:     p.LockMsgCost,
			ServiceTime: p.LockService,
			Shards:      p.LockShards,
			ShardStripe: p.StripeSize,
		})
	case DistributedLocking:
		return lock.NewDistributed(lock.DistributedConfig{
			LocalCost:   p.LockLocal,
			MsgCost:     p.LockMsgCost,
			ServiceTime: p.LockService,
			RevokeCost:  p.LockRevoke,
			Shards:      p.LockShards,
			ShardStripe: p.StripeSize,
		})
	default:
		return nil
	}
}

const mb = 1 << 20

// Cplant is the ASCI Cplant profile: an Alpha Linux cluster running ENFS,
// an NFS derivative without file locking, where each compute node is bound
// to one of 12 I/O servers at boot.
func Cplant() Profile {
	return Profile{
		//atomiovet:allow registry the paper's published Table 1 spelling, kept verbatim in figure and bench output
		Name:        "Cplant",
		FSName:      "ENFS",
		CPUType:     "Alpha",
		CPUSpeedMHz: 500,
		Network:     "Myrinet",
		IOServers:   12,
		PeakIOBW:    50 * mb,

		LockStyle:   NoLocking,
		SimServers:  12,
		StripeMode:  pfs.ClientAffinity,
		StripeSize:  64 << 10,
		ServerModel: sim.LinearCost{Latency: 400 * sim.Microsecond, BytesPerSec: 5 * mb / 2},
		ClientModel: sim.LinearCost{Latency: 100 * sim.Microsecond, BytesPerSec: 11 * mb / 5},
		SegOverhead: 30 * sim.Microsecond,
		Cache: pfs.CacheConfig{
			Enabled:         true,
			BlockSize:       32 << 10,
			ReadAheadBlocks: 2,
			WriteBehind:     true,
			MemModel:        sim.LinearCost{Latency: 2 * sim.Microsecond, BytesPerSec: 300 * mb},
		},
		NetModel:     sim.LinearCost{Latency: 25 * sim.Microsecond, BytesPerSec: 120 * mb},
		SendOverhead: 3 * sim.Microsecond,
		RecvOverhead: 3 * sim.Microsecond,
	}
}

// Origin2000 is the NCSA SGI Origin2000 profile: a ccNUMA system running
// XFS with a central lock manager. The I/O-server count renders as "-" in
// Table 1; the simulator models its RAID back end as 8 parallel service
// queues.
func Origin2000() Profile {
	return Profile{
		//atomiovet:allow registry the paper's published Table 1 spelling, kept verbatim in figure and bench output
		Name:        "Origin2000",
		FSName:      "XFS",
		CPUType:     "R10000",
		CPUSpeedMHz: 195,
		Network:     "Gigabit Ethernet",
		IOServers:   0,
		PeakIOBW:    4096 * mb,

		LockStyle:   CentralLocking,
		SimServers:  8,
		StripeMode:  pfs.RoundRobin,
		StripeSize:  128 << 10,
		ServerModel: sim.LinearCost{Latency: 60 * sim.Microsecond, BytesPerSec: 7 * mb},
		ClientModel: sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 11 * mb},
		SegOverhead: 10 * sim.Microsecond,
		Cache: pfs.CacheConfig{
			Enabled:         true,
			BlockSize:       64 << 10,
			ReadAheadBlocks: 2,
			WriteBehind:     true,
			MemModel:        sim.LinearCost{Latency: 1 * sim.Microsecond, BytesPerSec: 600 * mb},
		},
		NetModel:     sim.LinearCost{Latency: 8 * sim.Microsecond, BytesPerSec: 250 * mb},
		SendOverhead: 2 * sim.Microsecond,
		RecvOverhead: 2 * sim.Microsecond,
		LockMsgCost:  15 * sim.Microsecond,
		LockService:  30 * sim.Microsecond,
	}
}

// IBMSP is the SDSC Blue Horizon IBM SP profile: Power3 nodes on a Colony
// switch running GPFS with its distributed token-based lock manager.
func IBMSP() Profile {
	return Profile{
		//atomiovet:allow registry the paper's published Table 1 spelling, kept verbatim in figure and bench output
		Name:        "IBM SP",
		FSName:      "GPFS",
		CPUType:     "Power3",
		CPUSpeedMHz: 375,
		Network:     "Colony switch",
		IOServers:   12,
		PeakIOBW:    1536 * mb,

		LockStyle:   DistributedLocking,
		SimServers:  12,
		StripeMode:  pfs.RoundRobin,
		StripeSize:  256 << 10,
		ServerModel: sim.LinearCost{Latency: 120 * sim.Microsecond, BytesPerSec: 4 * mb},
		ClientModel: sim.LinearCost{Latency: 30 * sim.Microsecond, BytesPerSec: 7 * mb},
		SegOverhead: 20 * sim.Microsecond,
		Cache: pfs.CacheConfig{
			Enabled:         true,
			BlockSize:       256 << 10,
			ReadAheadBlocks: 1,
			WriteBehind:     true,
			MemModel:        sim.LinearCost{Latency: 1 * sim.Microsecond, BytesPerSec: 500 * mb},
		},
		NetModel:     sim.LinearCost{Latency: 20 * sim.Microsecond, BytesPerSec: 140 * mb},
		SendOverhead: 3 * sim.Microsecond,
		RecvOverhead: 3 * sim.Microsecond,
		LockMsgCost:  20 * sim.Microsecond,
		LockService:  25 * sim.Microsecond,
		LockLocal:    2 * sim.Microsecond,
		LockRevoke:   200 * sim.Microsecond,
	}
}

// All returns the three platforms in the paper's Table 1 order.
func All() []Profile {
	return []Profile{Cplant(), Origin2000(), IBMSP()}
}

// ByName looks a profile up by its Table 1 name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("platform: unknown platform %q", name)
}
