package datatype

import (
	"testing"

	"atomio/internal/interval"
)

// ext abbreviates extent construction in expected values.
func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

// checkFlat asserts the basic well-formedness invariants of a flattened type
// map: logical order = increasing file order (true for every type used in
// this repository), no overlaps, no empty or touching segments (coalesced),
// and total length equal to Size().
func checkFlat(t *testing.T, dt Datatype) []interval.Extent {
	t.Helper()
	flat := dt.Flatten()
	var total int64
	for i, s := range flat {
		if s.Empty() {
			t.Fatalf("%s: empty segment %d", dt, i)
		}
		if i > 0 && flat[i-1].End() >= s.Off {
			t.Fatalf("%s: segments %d,%d overlap/touch/out-of-order: %v %v",
				dt, i-1, i, flat[i-1], s)
		}
		total += s.Len
	}
	if total != dt.Size() {
		t.Fatalf("%s: flattened %d bytes, Size() = %d", dt, total, dt.Size())
	}
	return flat
}

func TestByte(t *testing.T) {
	if Byte.Size() != 1 || Byte.Extent() != 1 {
		t.Fatal("Byte size/extent != 1")
	}
	flat := checkFlat(t, Byte)
	if len(flat) != 1 || flat[0] != (ext(0, 1)) {
		t.Fatalf("Byte flatten = %v", flat)
	}
	if Byte.String() != "byte" {
		t.Fatalf("Byte String = %q", Byte.String())
	}
}

func TestElem(t *testing.T) {
	d := Elem{8, "double"}
	if d.Size() != 8 || !Dense(d) {
		t.Fatal("double elem wrong")
	}
	if (Elem{0, ""}).Flatten() != nil {
		t.Fatal("zero-width elem should flatten to nothing")
	}
	if (Elem{4, ""}).String() != "elem(4)" {
		t.Fatal("unnamed elem String wrong")
	}
}

func TestContiguous(t *testing.T) {
	c := NewContiguous(10, Byte)
	if c.Size() != 10 || c.Extent() != 10 {
		t.Fatalf("size/extent = %d/%d", c.Size(), c.Extent())
	}
	flat := checkFlat(t, c)
	if len(flat) != 1 || flat[0] != (ext(0, 10)) {
		t.Fatalf("contiguous of dense base should be one segment: %v", flat)
	}
	if got := NewContiguous(0, Byte).Flatten(); got != nil {
		t.Fatalf("empty contiguous flatten = %v", got)
	}
}

func TestContiguousOfSparseBase(t *testing.T) {
	// Base: 2 bytes at offset 0 within extent 5 (via resize).
	base := NewResized(NewContiguous(2, Byte), 5)
	c := NewContiguous(3, base)
	if c.Size() != 6 || c.Extent() != 15 {
		t.Fatalf("size/extent = %d/%d", c.Size(), c.Extent())
	}
	flat := checkFlat(t, c)
	want := []interval.Extent{ext(0, 2), ext(5, 2), ext(10, 2)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestNegativeContiguousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewContiguous(-1, Byte)
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 bytes, stride 5: segments at 0,5,10.
	v := NewVector(3, 2, 5, Byte)
	if v.Size() != 6 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Extent() != 12 { // 2*5 + 2
		t.Fatalf("extent = %d", v.Extent())
	}
	flat := checkFlat(t, v)
	want := []interval.Extent{ext(0, 2), ext(5, 2), ext(10, 2)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestVectorCoalescesWhenStrideEqualsBlock(t *testing.T) {
	v := NewVector(4, 3, 3, Byte)
	flat := checkFlat(t, v)
	if len(flat) != 1 || flat[0] != (ext(0, 12)) {
		t.Fatalf("dense vector should coalesce: %v", flat)
	}
}

func TestVectorOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping vector blocks")
		}
	}()
	NewVector(2, 5, 3, Byte)
}

func TestHvector(t *testing.T) {
	h := Hvector{Count: 2, BlockLen: 3, StrideBytes: 10, Base: Byte}
	if h.Extent() != 13 {
		t.Fatalf("extent = %d", h.Extent())
	}
	flat := checkFlat(t, h)
	want := []interval.Extent{ext(0, 3), ext(10, 3)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v", flat)
		}
	}
}

func TestIndexed(t *testing.T) {
	ix := NewIndexed([]int{2, 1, 3}, []int{0, 4, 10}, Byte)
	if ix.Size() != 6 || ix.Extent() != 13 {
		t.Fatalf("size/extent = %d/%d", ix.Size(), ix.Extent())
	}
	flat := checkFlat(t, ix)
	want := []interval.Extent{ext(0, 2), ext(4, 1), ext(10, 3)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v", flat)
		}
	}
}

func TestIndexedWithWideBase(t *testing.T) {
	// Base of width 4: displacements are in base extents.
	ix := NewIndexed([]int{1, 2}, []int{0, 2}, Elem{4, "int"})
	flat := checkFlat(t, ix)
	want := []interval.Extent{ext(0, 4), ext(8, 8)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestIndexedValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"length mismatch": func() { NewIndexed([]int{1}, []int{0, 1}, Byte) },
		"negative block":  func() { NewIndexed([]int{-1}, []int{0}, Byte) },
		"out of order":    func() { NewIndexed([]int{2, 2}, []int{0, 1}, Byte) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHindexedAndFromExtents(t *testing.T) {
	exts := []interval.Extent{ext(3, 2), ext(10, 5), ext(100, 1)}
	h := FromExtents(exts)
	if h.Size() != 8 || h.Extent() != 98 {
		t.Fatalf("size/extent = %d/%d", h.Size(), h.Extent())
	}
	flat := checkFlat(t, h)
	for i := range exts {
		if flat[i] != exts[i] {
			t.Fatalf("FromExtents round trip failed: %v vs %v", flat, exts)
		}
	}
}

func TestSubarrayColumnWise(t *testing.T) {
	// The paper's Figure 4 view: an M x N array partitioned column-wise.
	// M=4 rows, N=12 columns, sub-block 4x3 starting at column 3:
	// rows at offsets 3, 15, 27, 39, each 3 bytes.
	sa := NewSubarray([]int{4, 12}, []int{4, 3}, []int{0, 3}, Byte)
	if sa.Size() != 12 {
		t.Fatalf("size = %d", sa.Size())
	}
	if sa.Extent() != 48 { // whole array
		t.Fatalf("extent = %d", sa.Extent())
	}
	flat := checkFlat(t, sa)
	want := []interval.Extent{ext(3, 3), ext(15, 3), ext(27, 3), ext(39, 3)}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestSubarrayRowWiseIsContiguous(t *testing.T) {
	// Row-wise partition: full-width rows coalesce into one segment
	// (paper §3.2: the row-wise file view covers a contiguous file space).
	sa := NewSubarray([]int{8, 16}, []int{3, 16}, []int{2, 0}, Byte)
	flat := checkFlat(t, sa)
	if len(flat) != 1 || flat[0] != (ext(32, 48)) {
		t.Fatalf("row-wise view should be one contiguous segment: %v", flat)
	}
}

func TestSubarray3D(t *testing.T) {
	// 3-D 4x4x4 array, 2x2x2 block at (1,1,1).
	sa := NewSubarray([]int{4, 4, 4}, []int{2, 2, 2}, []int{1, 1, 1}, Byte)
	flat := checkFlat(t, sa)
	want := []interval.Extent{ext(21, 2), ext(25, 2), ext(37, 2), ext(41, 2)}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestSubarrayWithWideElem(t *testing.T) {
	// 8-byte elements: offsets scale by the element width.
	sa := NewSubarray([]int{2, 4}, []int{2, 2}, []int{0, 1}, Elem{8, "double"})
	flat := checkFlat(t, sa)
	want := []interval.Extent{ext(8, 16), ext(40, 16)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestSubarrayEmpty(t *testing.T) {
	sa := NewSubarray([]int{4, 4}, []int{0, 2}, []int{0, 0}, Byte)
	if got := sa.Flatten(); got != nil {
		t.Fatalf("empty subarray flatten = %v", got)
	}
	sa = NewSubarray([]int{4, 4}, []int{2, 0}, []int{0, 0}, Byte)
	if got := sa.Flatten(); got != nil {
		t.Fatalf("empty subarray flatten = %v", got)
	}
}

func TestSubarrayValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"dim mismatch": func() { NewSubarray([]int{4}, []int{1, 1}, []int{0}, Byte) },
		"overhang":     func() { NewSubarray([]int{4, 4}, []int{2, 3}, []int{0, 2}, Byte) },
		"neg start":    func() { NewSubarray([]int{4}, []int{1}, []int{-1}, Byte) },
		"zero size":    func() { NewSubarray([]int{0}, []int{0}, []int{0}, Byte) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStruct(t *testing.T) {
	s := NewStruct(
		[]int{2, 1},
		[]int64{0, 10},
		[]Datatype{Elem{4, "int"}, NewVector(2, 1, 3, Byte)},
	)
	if s.Size() != 10 { // 2*4 + 2*1
		t.Fatalf("size = %d", s.Size())
	}
	flat := checkFlat(t, s)
	want := []interval.Extent{ext(0, 8), ext(10, 1), ext(13, 1)}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
}

func TestStructValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping struct fields")
		}
	}()
	NewStruct([]int{4, 1}, []int64{0, 2}, []Datatype{Byte, Byte})
}

func TestResizedControlsTiling(t *testing.T) {
	r := NewResized(NewContiguous(3, Byte), 8)
	if r.Size() != 3 || r.Extent() != 8 {
		t.Fatalf("size/extent = %d/%d", r.Size(), r.Extent())
	}
	checkFlat(t, r)
	if !Dense(NewContiguous(3, Byte)) || Dense(r) {
		t.Fatal("Dense misclassifies")
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test every String implementation.
	for _, dt := range []Datatype{
		NewContiguous(2, Byte),
		NewVector(1, 1, 1, Byte),
		Hvector{1, 1, 1, Byte},
		NewIndexed([]int{1}, []int{0}, Byte),
		NewHindexed([]int{1}, []int64{0}, Byte),
		NewSubarray([]int{2}, []int{1}, []int{0}, Byte),
		NewStruct(nil, nil, nil),
		NewResized(Byte, 4),
	} {
		if dt.String() == "" {
			t.Errorf("%T has empty String()", dt)
		}
	}
}
