package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Contiguous is count copies of a base type laid end to end
// (MPI_Type_contiguous).
type Contiguous struct {
	Count int
	Base  Datatype
}

// NewContiguous constructs a contiguous type; count must be non-negative.
func NewContiguous(count int, base Datatype) Contiguous {
	if count < 0 {
		panic(fmt.Sprintf("datatype: negative count %d", count))
	}
	return Contiguous{Count: count, Base: base}
}

// Size implements Datatype.
func (t Contiguous) Size() int64 { return int64(t.Count) * t.Base.Size() }

// Extent implements Datatype.
func (t Contiguous) Extent() int64 { return int64(t.Count) * t.Base.Extent() }

// Flatten implements Datatype.
func (t Contiguous) Flatten() []interval.Extent {
	if t.Count == 0 || t.Size() == 0 {
		return nil
	}
	if Dense(t.Base) {
		return []interval.Extent{{Off: 0, Len: t.Size()}}
	}
	base := t.Base.Flatten()
	var out []interval.Extent
	for i := 0; i < t.Count; i++ {
		out = appendShifted(out, base, int64(i)*t.Base.Extent())
	}
	return out
}

// String implements Datatype.
func (t Contiguous) String() string {
	return fmt.Sprintf("contiguous(%d, %s)", t.Count, t.Base)
}

// Vector is count blocks of blockLen base elements, with the start of
// consecutive blocks stride base-extents apart (MPI_Type_vector).
type Vector struct {
	Count    int
	BlockLen int
	Stride   int // in units of Base extents
	Base     Datatype
}

// NewVector constructs a vector type.
func NewVector(count, blockLen, stride int, base Datatype) Vector {
	if count < 0 || blockLen < 0 {
		panic(fmt.Sprintf("datatype: negative vector shape %d/%d", count, blockLen))
	}
	if count > 0 && blockLen > stride {
		// Overlapping blocks make the logical order non-monotone; the
		// paper's views never need them.
		panic("datatype: vector blocks overlap (blockLen > stride)")
	}
	return Vector{Count: count, BlockLen: blockLen, Stride: stride, Base: base}
}

// Size implements Datatype.
func (t Vector) Size() int64 { return int64(t.Count) * int64(t.BlockLen) * t.Base.Size() }

// Extent implements Datatype.
//
// Following MPI, the extent runs from the first byte to the last byte of the
// last block (holes after the last block are not part of the extent).
func (t Vector) Extent() int64 {
	if t.Count == 0 {
		return 0
	}
	be := t.Base.Extent()
	return int64(t.Count-1)*int64(t.Stride)*be + int64(t.BlockLen)*be
}

// Flatten implements Datatype.
func (t Vector) Flatten() []interval.Extent {
	be := t.Base.Extent()
	var out []interval.Extent
	for i := 0; i < t.Count; i++ {
		blockOff := int64(i) * int64(t.Stride) * be
		if Dense(t.Base) {
			out = coalesce(out, interval.Extent{Off: blockOff, Len: int64(t.BlockLen) * t.Base.Size()})
			continue
		}
		base := t.Base.Flatten()
		for j := 0; j < t.BlockLen; j++ {
			out = appendShifted(out, base, blockOff+int64(j)*be)
		}
	}
	return out
}

// String implements Datatype.
func (t Vector) String() string {
	return fmt.Sprintf("vector(%d, %d, %d, %s)", t.Count, t.BlockLen, t.Stride, t.Base)
}

// Hvector is a Vector whose stride is given in bytes (MPI_Type_create_hvector).
type Hvector struct {
	Count       int
	BlockLen    int
	StrideBytes int64
	Base        Datatype
}

// Size implements Datatype.
func (t Hvector) Size() int64 { return int64(t.Count) * int64(t.BlockLen) * t.Base.Size() }

// Extent implements Datatype.
func (t Hvector) Extent() int64 {
	if t.Count == 0 {
		return 0
	}
	return int64(t.Count-1)*t.StrideBytes + int64(t.BlockLen)*t.Base.Extent()
}

// Flatten implements Datatype.
func (t Hvector) Flatten() []interval.Extent {
	be := t.Base.Extent()
	var out []interval.Extent
	for i := 0; i < t.Count; i++ {
		blockOff := int64(i) * t.StrideBytes
		if Dense(t.Base) {
			out = coalesce(out, interval.Extent{Off: blockOff, Len: int64(t.BlockLen) * t.Base.Size()})
			continue
		}
		base := t.Base.Flatten()
		for j := 0; j < t.BlockLen; j++ {
			out = appendShifted(out, base, blockOff+int64(j)*be)
		}
	}
	return out
}

// String implements Datatype.
func (t Hvector) String() string {
	return fmt.Sprintf("hvector(%d, %d, %dB, %s)", t.Count, t.BlockLen, t.StrideBytes, t.Base)
}
