package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Distribution selects how one dimension of a Darray is distributed over
// the process grid (MPI_Type_create_darray distributions).
type Distribution int

const (
	// DistNone keeps the whole dimension on every process
	// (MPI_DISTRIBUTE_NONE).
	DistNone Distribution = iota
	// DistBlock gives each process one contiguous block
	// (MPI_DISTRIBUTE_BLOCK with the default distribution argument).
	DistBlock
	// DistCyclic deals blocks of CyclicArg (default 1) elements round
	// robin (MPI_DISTRIBUTE_CYCLIC).
	DistCyclic
)

// String names the distribution.
func (d Distribution) String() string {
	switch d {
	case DistNone:
		return "none"
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Darray is the distributed-array datatype (MPI_Type_create_darray,
// MPI_ORDER_C): the portion of an N-dimensional global array owned by one
// process of an N-dimensional process grid. It generalizes the paper's
// partitionings: row-wise is Block×None, column-wise None×Block, block-block
// Block×Block, and cyclic layouts model scalapack-style distributions.
type Darray struct {
	GSizes    []int          // global array dimensions
	Distribs  []Distribution // per-dimension distribution
	Dargs     []int          // per-dimension block size; 0 = default
	PSizes    []int          // process grid dimensions
	Coords    []int          // this process's grid coordinates
	Base      Datatype
	ownedMemo [][]idxRun // lazily computed owned index runs per dim
}

// idxRun is a run of consecutive owned indices [start, start+count).
type idxRun struct{ start, count int }

// NewDarray constructs a Darray for the process at the given grid
// coordinates after validating the shape.
func NewDarray(gsizes []int, distribs []Distribution, dargs []int, psizes, coords []int, base Datatype) *Darray {
	nd := len(gsizes)
	if nd == 0 || len(distribs) != nd || len(dargs) != nd || len(psizes) != nd || len(coords) != nd {
		panic("datatype: darray argument lengths differ")
	}
	for d := 0; d < nd; d++ {
		if gsizes[d] <= 0 || psizes[d] <= 0 {
			panic(fmt.Sprintf("datatype: darray dim %d: gsize %d psize %d", d, gsizes[d], psizes[d]))
		}
		if coords[d] < 0 || coords[d] >= psizes[d] {
			panic(fmt.Sprintf("datatype: darray coord %d out of grid", d))
		}
		if distribs[d] == DistNone && psizes[d] != 1 {
			panic(fmt.Sprintf("datatype: darray dim %d: DistNone requires psize 1", d))
		}
		if dargs[d] < 0 {
			panic("datatype: negative distribution argument")
		}
	}
	return &Darray{
		GSizes:   append([]int(nil), gsizes...),
		Distribs: append([]Distribution(nil), distribs...),
		Dargs:    append([]int(nil), dargs...),
		PSizes:   append([]int(nil), psizes...),
		Coords:   append([]int(nil), coords...),
		Base:     base,
	}
}

// owned returns the runs of indices this process owns in dimension d.
func (t *Darray) owned(d int) []idxRun {
	if t.ownedMemo == nil {
		t.ownedMemo = make([][]idxRun, len(t.GSizes))
	}
	if t.ownedMemo[d] != nil {
		return t.ownedMemo[d]
	}
	g, p, c := t.GSizes[d], t.PSizes[d], t.Coords[d]
	var runs []idxRun
	switch t.Distribs[d] {
	case DistNone:
		runs = []idxRun{{0, g}}
	case DistBlock:
		// MPI default block size: ceil(g/p); a darg may override it.
		b := t.Dargs[d]
		if b == 0 {
			b = (g + p - 1) / p
		}
		if b*p < g {
			panic(fmt.Sprintf("datatype: darray dim %d: block %d too small for %d/%d", d, b, g, p))
		}
		start := c * b
		count := b
		if start >= g {
			count = 0
		} else if start+count > g {
			count = g - start
		}
		if count > 0 {
			runs = []idxRun{{start, count}}
		}
	case DistCyclic:
		b := t.Dargs[d]
		if b == 0 {
			b = 1
		}
		for start := c * b; start < g; start += p * b {
			count := b
			if start+count > g {
				count = g - start
			}
			runs = append(runs, idxRun{start, count})
		}
	default:
		panic("datatype: unknown distribution")
	}
	t.ownedMemo[d] = runs
	return runs
}

// ownedCount returns how many indices this process owns in dimension d.
func (t *Darray) ownedCount(d int) int64 {
	var n int64
	for _, r := range t.owned(d) {
		n += int64(r.count)
	}
	return n
}

// Size implements Datatype.
func (t *Darray) Size() int64 {
	n := int64(1)
	for d := range t.GSizes {
		n *= t.ownedCount(d)
	}
	return n * t.Base.Size()
}

// Extent implements Datatype: like Subarray, the extent spans the whole
// global array, so tiling appends whole-array slabs.
func (t *Darray) Extent() int64 {
	n := int64(1)
	for _, g := range t.GSizes {
		n *= int64(g)
	}
	return n * t.Base.Extent()
}

// Flatten implements Datatype.
func (t *Darray) Flatten() []interval.Extent {
	nd := len(t.GSizes)
	be := t.Base.Extent()
	strides := make([]int64, nd)
	strides[nd-1] = 1
	for d := nd - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(t.GSizes[d+1])
	}
	var out []interval.Extent
	baseFlat := t.Base.Flatten()
	dense := Dense(t.Base)

	// Recurse over the leading dimensions' owned runs; the last
	// dimension's runs become segments.
	var walk func(d int, elemOff int64)
	walk = func(d int, elemOff int64) {
		if d == nd-1 {
			for _, r := range t.owned(d) {
				off := elemOff + int64(r.start)
				if dense {
					out = coalesce(out, interval.Extent{
						Off: off * be,
						Len: int64(r.count) * t.Base.Size(),
					})
					continue
				}
				for j := 0; j < r.count; j++ {
					out = appendShifted(out, baseFlat, (off+int64(j))*be)
				}
			}
			return
		}
		for _, r := range t.owned(d) {
			for i := 0; i < r.count; i++ {
				walk(d+1, elemOff+int64(r.start+i)*strides[d])
			}
		}
	}
	walk(0, 0)
	return out
}

// String implements Datatype.
func (t *Darray) String() string {
	return fmt.Sprintf("darray(%v, %v, grid %v at %v, %s)",
		t.GSizes, t.Distribs, t.PSizes, t.Coords, t.Base)
}

var _ Datatype = (*Darray)(nil)
