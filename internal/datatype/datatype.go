// Package datatype implements the MPI derived-datatype constructors the
// paper's file views are built from: contiguous, vector/hvector,
// indexed/hindexed, N-dimensional subarray, struct, and resized types over
// elementary types.
//
// A datatype describes a *type map*: an ordered sequence of byte segments
// relative to a start address (or file displacement). Flatten returns that
// sequence with adjacent segments coalesced — the same "flattening" a real
// MPI-IO implementation such as ROMIO performs before issuing file-system
// requests. The order of flattened segments is the logical order in which a
// buffer's bytes stream into the segments, which for file types defines the
// mapping from a write buffer to file offsets (see package fileview).
package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Datatype is an MPI-style derived datatype.
type Datatype interface {
	// Size returns the number of data bytes in one instance of the type
	// (the sum of segment lengths, excluding holes).
	Size() int64
	// Extent returns the span of one instance including holes: the
	// distance from the first byte to one past the last, possibly
	// overridden by Resized. Tiling a type places copy i at offset
	// i*Extent().
	Extent() int64
	// Flatten returns the type map as segments relative to offset 0, in
	// logical order, with adjacent segments coalesced.
	Flatten() []interval.Extent
	// String returns a short constructor-style description.
	String() string
}

// Byte is the elementary one-byte type (MPI_BYTE / MPI_CHAR).
var Byte Datatype = Elem{1, "byte"}

// Elem is a dense elementary type of fixed width, e.g. Elem{8,"double"}.
type Elem struct {
	Width int64
	Name  string
}

// Size implements Datatype.
func (e Elem) Size() int64 { return e.Width }

// Extent implements Datatype.
func (e Elem) Extent() int64 { return e.Width }

// Flatten implements Datatype.
func (e Elem) Flatten() []interval.Extent {
	if e.Width <= 0 {
		return nil
	}
	return []interval.Extent{{Off: 0, Len: e.Width}}
}

// String implements Datatype.
func (e Elem) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("elem(%d)", e.Width)
}

// Dense reports whether one instance of t is a single contiguous run
// starting at offset 0 and filling its whole extent (no holes, no leading
// lower-bound gap). Dense types allow fast-path flattening of containers
// that repeat them: a container can emit one segment per block instead of
// shifting the base's type map per element. Size()==Extent() alone is not
// sufficient — an Indexed type whose first displacement is positive has
// equal size and extent but a nonzero lower bound.
func Dense(t Datatype) bool {
	if t.Size() != t.Extent() {
		return false
	}
	flat := t.Flatten()
	if len(flat) == 0 {
		return t.Size() == 0
	}
	return len(flat) == 1 && flat[0].Off == 0 && flat[0].Len == t.Size()
}

// coalesce appends seg to list, merging it with the last entry when they are
// adjacent in both file order and logical order.
func coalesce(list []interval.Extent, seg interval.Extent) []interval.Extent {
	if seg.Empty() {
		return list
	}
	if n := len(list); n > 0 && list[n-1].End() == seg.Off {
		list[n-1].Len += seg.Len
		return list
	}
	return append(list, seg)
}

// appendShifted appends base's segments shifted by off, coalescing.
func appendShifted(list []interval.Extent, base []interval.Extent, off int64) []interval.Extent {
	for _, s := range base {
		list = coalesce(list, s.Shift(off))
	}
	return list
}
