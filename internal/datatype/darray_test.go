package datatype

import (
	"testing"

	"atomio/internal/interval"
)

func TestDarrayBlockBlockMatchesSubarray(t *testing.T) {
	// A Block×Block darray on a 2x2 grid equals the corresponding
	// subarray for every grid position.
	const m, n = 8, 12
	for _, coords := range [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		da := NewDarray([]int{m, n}, []Distribution{DistBlock, DistBlock},
			[]int{0, 0}, []int{2, 2}, coords, Byte)
		sa := NewSubarray([]int{m, n}, []int{m / 2, n / 2},
			[]int{coords[0] * m / 2, coords[1] * n / 2}, Byte)
		if !interval.List(da.Flatten()).Equal(interval.List(sa.Flatten())) {
			t.Fatalf("coords %v: darray %v != subarray %v", coords, da.Flatten(), sa.Flatten())
		}
		if da.Size() != sa.Size() || da.Extent() != sa.Extent() {
			t.Fatalf("coords %v: size/extent mismatch", coords)
		}
	}
}

func TestDarrayRowAndColumnWise(t *testing.T) {
	// Row-wise = Block×None; the view is contiguous.
	rw := NewDarray([]int{8, 16}, []Distribution{DistBlock, DistNone},
		[]int{0, 0}, []int{4, 1}, []int{2, 0}, Byte)
	flat := checkFlat(t, rw)
	if len(flat) != 1 || flat[0] != ext(2*2*16, 2*16) {
		t.Fatalf("row-wise darray = %v", flat)
	}
	// Column-wise = None×Block; one segment per row.
	cw := NewDarray([]int{8, 16}, []Distribution{DistNone, DistBlock},
		[]int{0, 0}, []int{1, 4}, []int{0, 1}, Byte)
	flat = checkFlat(t, cw)
	if len(flat) != 8 || flat[0] != ext(4, 4) || flat[1] != ext(20, 4) {
		t.Fatalf("column-wise darray = %v", flat)
	}
}

func TestDarrayCyclic(t *testing.T) {
	// 1-D cyclic(1) over 3 processes, 8 elements: proc 1 owns 1,4,7.
	da := NewDarray([]int{8}, []Distribution{DistCyclic}, []int{0},
		[]int{3}, []int{1}, Byte)
	flat := checkFlat(t, da)
	want := []interval.Extent{ext(1, 1), ext(4, 1), ext(7, 1)}
	if len(flat) != len(want) {
		t.Fatalf("flat = %v, want %v", flat, want)
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
	if da.Size() != 3 {
		t.Fatalf("size = %d", da.Size())
	}
}

func TestDarrayBlockCyclic(t *testing.T) {
	// cyclic(2) over 2 processes, 10 elements: proc 0 owns 0-1, 4-5, 8-9.
	da := NewDarray([]int{10}, []Distribution{DistCyclic}, []int{2},
		[]int{2}, []int{0}, Byte)
	flat := checkFlat(t, da)
	want := []interval.Extent{ext(0, 2), ext(4, 2), ext(8, 2)}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("flat = %v, want %v", flat, want)
		}
	}
	// Last block may be short: proc 1 of cyclic(3) over 2 procs, 8 elems
	// owns 3-5 and nothing at 9+ (8 elements: indices 3,4,5 then 9.. out).
	da = NewDarray([]int{8}, []Distribution{DistCyclic}, []int{3},
		[]int{2}, []int{1}, Byte)
	flat = checkFlat(t, da)
	if len(flat) != 1 || flat[0] != ext(3, 3) {
		t.Fatalf("short-tail cyclic = %v", flat)
	}
}

func TestDarrayUnevenBlock(t *testing.T) {
	// 10 elements over 4 procs, default block = ceil(10/4) = 3:
	// proc 3 owns only index 9; beyond-the-end procs own nothing.
	counts := []int64{3, 3, 3, 1}
	for c, want := range counts {
		da := NewDarray([]int{10}, []Distribution{DistBlock}, []int{0},
			[]int{4}, []int{c}, Byte)
		if got := da.Size(); got != want {
			t.Fatalf("proc %d owns %d, want %d", c, got, want)
		}
		checkFlat(t, da)
	}
}

func TestDarrayCyclicPartitionIsExact(t *testing.T) {
	// Over all grid positions, a cyclic×block 2-D darray partitions the
	// array exactly: disjoint union = whole array.
	const m, n = 12, 8
	var union interval.List
	var total int64
	for px := 0; px < 3; px++ {
		for py := 0; py < 2; py++ {
			da := NewDarray([]int{m, n}, []Distribution{DistCyclic, DistBlock},
				[]int{2, 0}, []int{3, 2}, []int{px, py}, Byte)
			l := interval.List(da.Flatten())
			if union.Overlaps(l) {
				t.Fatalf("grid (%d,%d) overlaps previous owners", px, py)
			}
			union = union.Union(l)
			total += da.Size()
		}
	}
	if total != m*n || !union.Equal(interval.List{ext(0, m*n)}) {
		t.Fatalf("partition not exact: %d bytes, union %v", total, union)
	}
}

func TestDarrayWithWideElem(t *testing.T) {
	da := NewDarray([]int{4, 4}, []Distribution{DistNone, DistBlock},
		[]int{0, 0}, []int{1, 2}, []int{0, 0}, Elem{Width: 8, Name: "double"})
	flat := checkFlat(t, da)
	if flat[0] != ext(0, 16) || flat[1] != ext(32, 16) {
		t.Fatalf("flat = %v", flat)
	}
}

func TestDarrayValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"len mismatch": func() {
			NewDarray([]int{4}, []Distribution{DistBlock, DistBlock}, []int{0}, []int{1}, []int{0}, Byte)
		},
		"none with grid": func() {
			NewDarray([]int{4}, []Distribution{DistNone}, []int{0}, []int{2}, []int{0}, Byte)
		},
		"coord out of grid": func() {
			NewDarray([]int{4}, []Distribution{DistBlock}, []int{0}, []int{2}, []int{2}, Byte)
		},
		"neg darg": func() {
			NewDarray([]int{4}, []Distribution{DistBlock}, []int{-1}, []int{2}, []int{0}, Byte)
		},
		"block too small": func() {
			d := NewDarray([]int{10}, []Distribution{DistBlock}, []int{2}, []int{2}, []int{0}, Byte)
			d.Flatten()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDistributionString(t *testing.T) {
	if DistNone.String() != "none" || DistBlock.String() != "block" ||
		DistCyclic.String() != "cyclic" || Distribution(9).String() == "" {
		t.Fatal("distribution strings")
	}
}

func TestDarrayString(t *testing.T) {
	da := NewDarray([]int{4}, []Distribution{DistBlock}, []int{0}, []int{2}, []int{1}, Byte)
	if da.String() == "" {
		t.Fatal("empty string")
	}
}
