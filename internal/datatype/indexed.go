package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Indexed is a sequence of blocks of base elements at element-granular
// displacements (MPI_Type_indexed). BlockLens[i] base elements are placed at
// displacement Disps[i] (in units of base extents). Displacements must be
// strictly increasing in file order with non-overlapping blocks, which is
// the case for every file view in this repository.
type Indexed struct {
	BlockLens []int
	Disps     []int
	Base      Datatype
}

// NewIndexed constructs an indexed type after validating the shape.
func NewIndexed(blockLens, disps []int, base Datatype) Indexed {
	if len(blockLens) != len(disps) {
		panic(fmt.Sprintf("datatype: indexed blockLens/disps length mismatch %d/%d",
			len(blockLens), len(disps)))
	}
	for i := range blockLens {
		if blockLens[i] < 0 {
			panic("datatype: negative indexed block length")
		}
		if i > 0 && disps[i] < disps[i-1]+blockLens[i-1] {
			panic("datatype: indexed blocks out of order or overlapping")
		}
	}
	return Indexed{BlockLens: blockLens, Disps: disps, Base: base}
}

// Size implements Datatype.
func (t Indexed) Size() int64 {
	var n int64
	for _, b := range t.BlockLens {
		n += int64(b)
	}
	return n * t.Base.Size()
}

// Extent implements Datatype.
func (t Indexed) Extent() int64 {
	if len(t.BlockLens) == 0 {
		return 0
	}
	be := t.Base.Extent()
	first := int64(t.Disps[0]) * be
	last := (int64(t.Disps[len(t.Disps)-1]) + int64(t.BlockLens[len(t.BlockLens)-1])) * be
	return last - first
}

// Flatten implements Datatype.
func (t Indexed) Flatten() []interval.Extent {
	be := t.Base.Extent()
	var out []interval.Extent
	for i, bl := range t.BlockLens {
		blockOff := int64(t.Disps[i]) * be
		if Dense(t.Base) {
			out = coalesce(out, interval.Extent{Off: blockOff, Len: int64(bl) * t.Base.Size()})
			continue
		}
		base := t.Base.Flatten()
		for j := 0; j < bl; j++ {
			out = appendShifted(out, base, blockOff+int64(j)*be)
		}
	}
	return out
}

// String implements Datatype.
func (t Indexed) String() string {
	return fmt.Sprintf("indexed(%d blocks, %s)", len(t.BlockLens), t.Base)
}

// Hindexed is Indexed with byte-granular displacements
// (MPI_Type_create_hindexed).
type Hindexed struct {
	BlockLens []int
	DispBytes []int64
	Base      Datatype
}

// NewHindexed constructs an hindexed type after validating the shape.
func NewHindexed(blockLens []int, dispBytes []int64, base Datatype) Hindexed {
	if len(blockLens) != len(dispBytes) {
		panic("datatype: hindexed blockLens/dispBytes length mismatch")
	}
	be := base.Extent()
	for i := range blockLens {
		if blockLens[i] < 0 {
			panic("datatype: negative hindexed block length")
		}
		if i > 0 && dispBytes[i] < dispBytes[i-1]+int64(blockLens[i-1])*be {
			panic("datatype: hindexed blocks out of order or overlapping")
		}
	}
	return Hindexed{BlockLens: blockLens, DispBytes: dispBytes, Base: base}
}

// Size implements Datatype.
func (t Hindexed) Size() int64 {
	var n int64
	for _, b := range t.BlockLens {
		n += int64(b)
	}
	return n * t.Base.Size()
}

// Extent implements Datatype.
func (t Hindexed) Extent() int64 {
	if len(t.BlockLens) == 0 {
		return 0
	}
	first := t.DispBytes[0]
	last := t.DispBytes[len(t.DispBytes)-1] + int64(t.BlockLens[len(t.BlockLens)-1])*t.Base.Extent()
	return last - first
}

// Flatten implements Datatype.
func (t Hindexed) Flatten() []interval.Extent {
	be := t.Base.Extent()
	var out []interval.Extent
	for i, bl := range t.BlockLens {
		if Dense(t.Base) {
			out = coalesce(out, interval.Extent{Off: t.DispBytes[i], Len: int64(bl) * t.Base.Size()})
			continue
		}
		base := t.Base.Flatten()
		for j := 0; j < bl; j++ {
			out = appendShifted(out, base, t.DispBytes[i]+int64(j)*be)
		}
	}
	return out
}

// String implements Datatype.
func (t Hindexed) String() string {
	return fmt.Sprintf("hindexed(%d blocks, %s)", len(t.BlockLens), t.Base)
}

// FromExtents builds an hindexed byte type covering exactly the given
// extents, which must be in increasing, non-overlapping order. It is the
// inverse of Flatten for byte-based types and is how the rank-ordering
// strategy materializes a clipped file view as a datatype again.
func FromExtents(extents []interval.Extent) Hindexed {
	blockLens := make([]int, len(extents))
	disps := make([]int64, len(extents))
	for i, e := range extents {
		blockLens[i] = int(e.Len)
		disps[i] = e.Off
	}
	return NewHindexed(blockLens, disps, Byte)
}
