package datatype

// Property tests: Flatten of randomly generated derived-type trees is
// checked against a naive byte-coverage reference model, and the
// Size/Extent invariants are pinned for every constructor.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCover returns the covered byte offsets of one instance of dt, computed
// by definitional recursion without any of Flatten's coalescing logic.
func refCover(dt Datatype) map[int64]bool {
	out := make(map[int64]bool)
	addShifted := func(m map[int64]bool, d int64) {
		for o := range m {
			out[o+d] = true
		}
	}
	switch t := dt.(type) {
	case Elem:
		for i := int64(0); i < t.Width; i++ {
			out[i] = true
		}
	case Contiguous:
		base := refCover(t.Base)
		for i := 0; i < t.Count; i++ {
			addShifted(base, int64(i)*t.Base.Extent())
		}
	case Vector:
		base := refCover(t.Base)
		be := t.Base.Extent()
		for i := 0; i < t.Count; i++ {
			for j := 0; j < t.BlockLen; j++ {
				addShifted(base, int64(i)*int64(t.Stride)*be+int64(j)*be)
			}
		}
	case Hvector:
		base := refCover(t.Base)
		be := t.Base.Extent()
		for i := 0; i < t.Count; i++ {
			for j := 0; j < t.BlockLen; j++ {
				addShifted(base, int64(i)*t.StrideBytes+int64(j)*be)
			}
		}
	case Indexed:
		base := refCover(t.Base)
		be := t.Base.Extent()
		for i, bl := range t.BlockLens {
			for j := 0; j < bl; j++ {
				addShifted(base, (int64(t.Disps[i])+int64(j))*be)
			}
		}
	case Hindexed:
		base := refCover(t.Base)
		be := t.Base.Extent()
		for i, bl := range t.BlockLens {
			for j := 0; j < bl; j++ {
				addShifted(base, t.DispBytes[i]+int64(j)*be)
			}
		}
	case Subarray:
		base := refCover(t.Base)
		be := t.Base.Extent()
		nd := len(t.Sizes)
		var walk func(dim int, elemOff int64)
		walk = func(dim int, elemOff int64) {
			stride := int64(1)
			for d := dim + 1; d < nd; d++ {
				stride *= int64(t.Sizes[d])
			}
			for i := 0; i < t.Subsizes[dim]; i++ {
				off := elemOff + int64(t.Starts[dim]+i)*stride
				if dim == nd-1 {
					addShifted(base, off*be)
				} else {
					walk(dim+1, off)
				}
			}
		}
		walk(0, 0)
	case Struct:
		for i, bl := range t.BlockLens {
			base := refCover(t.Types[i])
			te := t.Types[i].Extent()
			for j := 0; j < bl; j++ {
				addShifted(base, t.DispBytes[i]+int64(j)*te)
			}
		}
	case Resized:
		return refCover(t.Base)
	default:
		panic("refCover: unknown type")
	}
	return out
}

// randType draws a random derived-type tree of bounded depth and size.
func randType(r *rand.Rand, depth int) Datatype {
	if depth == 0 {
		if r.Intn(2) == 0 {
			return Byte
		}
		return Elem{Width: int64(1 + r.Intn(4)), Name: ""}
	}
	base := randType(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return NewContiguous(r.Intn(4), base)
	case 1:
		bl := r.Intn(3)
		stride := bl + r.Intn(3)
		return NewVector(r.Intn(3), bl, stride, base)
	case 2:
		n := r.Intn(3)
		bls := make([]int, n)
		disps := make([]int, n)
		next := 0
		for i := 0; i < n; i++ {
			disps[i] = next + r.Intn(3)
			bls[i] = r.Intn(3)
			next = disps[i] + bls[i]
		}
		return NewIndexed(bls, disps, base)
	case 3:
		nd := 1 + r.Intn(3)
		sizes := make([]int, nd)
		subs := make([]int, nd)
		starts := make([]int, nd)
		for d := 0; d < nd; d++ {
			sizes[d] = 1 + r.Intn(4)
			subs[d] = r.Intn(sizes[d] + 1)
			if subs[d] < sizes[d] {
				starts[d] = r.Intn(sizes[d] - subs[d] + 1)
			}
		}
		return NewSubarray(sizes, subs, starts, base)
	case 4:
		// Resized to at least the natural extent.
		return NewResized(base, base.Extent()+int64(r.Intn(5)))
	default:
		bl := r.Intn(3)
		return Hvector{Count: r.Intn(3), BlockLen: bl,
			StrideBytes: int64(bl)*base.Extent() + int64(r.Intn(4)), Base: base}
	}
}

func TestQuickFlattenMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 1+r.Intn(2))
		flat := dt.Flatten()
		// Well-formed: ordered, non-overlapping, coalesced, non-empty.
		var total int64
		for i, s := range flat {
			if s.Empty() {
				return false
			}
			if i > 0 && flat[i-1].End() >= s.Off {
				return false
			}
			total += s.Len
		}
		if total != dt.Size() {
			return false
		}
		// Coverage matches the definitional model.
		ref := refCover(dt)
		if int64(len(ref)) != total {
			return false
		}
		for _, s := range flat {
			for o := s.Off; o < s.End(); o++ {
				if !ref[o] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtentCoversFlatten(t *testing.T) {
	// Every flattened segment lies within [first, first+Extent) for the
	// types whose extent is not overridden by Resized.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 1+r.Intn(2))
		flat := dt.Flatten()
		if len(flat) == 0 {
			return dt.Size() == 0
		}
		last := flat[len(flat)-1].End()
		// Extent may exceed the last byte (trailing holes via Resized or
		// Subarray whole-array extents) but must never undershoot the
		// span of the data relative to the first byte for tiling safety.
		if _, resized := dt.(Resized); resized {
			return true
		}
		return dt.Extent() >= last-flat[0].Off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContiguousTilingEquivalence(t *testing.T) {
	// Contiguous(n, base) covers the same bytes as n shifted copies of
	// base at stride Extent(base) — the tiling rule file views rely on.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := randType(r, 1)
		n := 1 + r.Intn(3)
		cont := refCover(NewContiguous(n, base))
		want := make(map[int64]bool)
		single := refCover(base)
		for i := 0; i < n; i++ {
			for o := range single {
				want[o+int64(i)*base.Extent()] = true
			}
		}
		if len(cont) != len(want) {
			return false
		}
		for o := range want {
			if !cont[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
