package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Subarray selects an N-dimensional sub-block of an N-dimensional array of
// base elements, in C (row-major) order: dimension 0 is the most significant
// axis, the last dimension is contiguous in memory/file
// (MPI_Type_create_subarray with MPI_ORDER_C).
//
// This is the constructor the paper's Figure 4 code uses to build the
// column-wise file views.
type Subarray struct {
	Sizes    []int // full array dimensions
	Subsizes []int // sub-block dimensions
	Starts   []int // sub-block origin
	Base     Datatype
}

// NewSubarray constructs a subarray type after validating that the sub-block
// fits inside the array.
func NewSubarray(sizes, subsizes, starts []int, base Datatype) Subarray {
	n := len(sizes)
	if n == 0 || len(subsizes) != n || len(starts) != n {
		panic(fmt.Sprintf("datatype: subarray dimension mismatch %d/%d/%d",
			len(sizes), len(subsizes), len(starts)))
	}
	for d := 0; d < n; d++ {
		if sizes[d] <= 0 {
			panic(fmt.Sprintf("datatype: subarray size[%d] = %d", d, sizes[d]))
		}
		if subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("datatype: subarray dim %d: sub %d at %d exceeds size %d",
				d, subsizes[d], starts[d], sizes[d]))
		}
	}
	return Subarray{
		Sizes:    append([]int(nil), sizes...),
		Subsizes: append([]int(nil), subsizes...),
		Starts:   append([]int(nil), starts...),
		Base:     base,
	}
}

// Size implements Datatype.
func (t Subarray) Size() int64 {
	n := int64(1)
	for _, s := range t.Subsizes {
		n *= int64(s)
	}
	return n * t.Base.Size()
}

// Extent implements Datatype.
//
// Per MPI, the extent of a subarray type is the extent of the *whole* array,
// so that tiling the filetype repeats whole-array slabs.
func (t Subarray) Extent() int64 {
	n := int64(1)
	for _, s := range t.Sizes {
		n *= int64(s)
	}
	return n * t.Base.Extent()
}

// Flatten implements Datatype.
//
// For a dense base the last dimension yields one segment per "row" of the
// sub-block: prod(Subsizes[:N-1]) segments of Subsizes[N-1]*base bytes.
// Adjacent rows coalesce automatically when the sub-block spans the full
// width of the trailing dimensions.
func (t Subarray) Flatten() []interval.Extent {
	nd := len(t.Sizes)
	be := t.Base.Extent()

	// strides[d]: distance in elements between successive indices in dim d.
	strides := make([]int64, nd)
	strides[nd-1] = 1
	for d := nd - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(t.Sizes[d+1])
	}

	rowElems := int64(t.Subsizes[nd-1])
	if rowElems == 0 {
		return nil
	}
	// Count the rows (all dims but the last).
	rows := int64(1)
	for d := 0; d < nd-1; d++ {
		if t.Subsizes[d] == 0 {
			return nil
		}
		rows *= int64(t.Subsizes[d])
	}

	idx := make([]int, nd-1) // current row index per leading dimension
	var out []interval.Extent
	baseFlat := t.Base.Flatten()
	for r := int64(0); r < rows; r++ {
		// Element offset of this row's first element.
		elemOff := int64(t.Starts[nd-1])
		for d := 0; d < nd-1; d++ {
			elemOff += int64(t.Starts[d]+idx[d]) * strides[d]
		}
		if Dense(t.Base) {
			out = coalesce(out, interval.Extent{Off: elemOff * be, Len: rowElems * t.Base.Size()})
		} else {
			for j := int64(0); j < rowElems; j++ {
				out = appendShifted(out, baseFlat, (elemOff+j)*be)
			}
		}
		// Advance the row index odometer (row-major).
		for d := nd - 2; d >= 0; d-- {
			idx[d]++
			if idx[d] < t.Subsizes[d] {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// String implements Datatype.
func (t Subarray) String() string {
	return fmt.Sprintf("subarray(%v, %v, %v, %s)", t.Sizes, t.Subsizes, t.Starts, t.Base)
}
