package datatype

import (
	"fmt"

	"atomio/internal/interval"
)

// Struct places blocks of heterogeneous types at byte displacements
// (MPI_Type_create_struct). Displacements must be increasing with
// non-overlapping blocks.
type Struct struct {
	BlockLens []int
	DispBytes []int64
	Types     []Datatype
}

// NewStruct constructs a struct type after validating the shape.
func NewStruct(blockLens []int, dispBytes []int64, types []Datatype) Struct {
	if len(blockLens) != len(dispBytes) || len(blockLens) != len(types) {
		panic("datatype: struct field slices must have equal length")
	}
	var prevEnd int64
	for i := range blockLens {
		if blockLens[i] < 0 {
			panic("datatype: negative struct block length")
		}
		if dispBytes[i] < prevEnd {
			panic("datatype: struct blocks out of order or overlapping")
		}
		prevEnd = dispBytes[i] + int64(blockLens[i])*types[i].Extent()
	}
	return Struct{BlockLens: blockLens, DispBytes: dispBytes, Types: types}
}

// Size implements Datatype.
func (t Struct) Size() int64 {
	var n int64
	for i, bl := range t.BlockLens {
		n += int64(bl) * t.Types[i].Size()
	}
	return n
}

// Extent implements Datatype.
func (t Struct) Extent() int64 {
	if len(t.BlockLens) == 0 {
		return 0
	}
	last := len(t.BlockLens) - 1
	return t.DispBytes[last] + int64(t.BlockLens[last])*t.Types[last].Extent() - t.DispBytes[0]
}

// Flatten implements Datatype.
func (t Struct) Flatten() []interval.Extent {
	var out []interval.Extent
	for i, bl := range t.BlockLens {
		ty := t.Types[i]
		te := ty.Extent()
		for j := 0; j < bl; j++ {
			off := t.DispBytes[i] + int64(j)*te
			if Dense(ty) {
				out = coalesce(out, interval.Extent{Off: off, Len: ty.Size()})
			} else {
				out = appendShifted(out, ty.Flatten(), off)
			}
		}
	}
	return out
}

// String implements Datatype.
func (t Struct) String() string {
	return fmt.Sprintf("struct(%d fields)", len(t.Types))
}

// Resized overrides a base type's extent (MPI_Type_create_resized), which
// controls the tiling stride when the type is used as a filetype.
type Resized struct {
	Base      Datatype
	NewExtent int64
}

// NewResized constructs a resized type; the new extent must cover the base's
// flattened segments.
func NewResized(base Datatype, newExtent int64) Resized {
	if newExtent < 0 {
		panic("datatype: negative resized extent")
	}
	return Resized{Base: base, NewExtent: newExtent}
}

// Size implements Datatype.
func (t Resized) Size() int64 { return t.Base.Size() }

// Extent implements Datatype.
func (t Resized) Extent() int64 { return t.NewExtent }

// Flatten implements Datatype.
func (t Resized) Flatten() []interval.Extent { return t.Base.Flatten() }

// String implements Datatype.
func (t Resized) String() string {
	return fmt.Sprintf("resized(%s, %d)", t.Base, t.NewExtent)
}
