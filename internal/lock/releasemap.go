package lock

import (
	"sort"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

// releaseMap remembers, per byte range, the latest virtual time at which a
// lock on that range was released. Entries are kept sorted by offset and
// disjoint; recording a release over an existing entry splits it so every
// byte keeps the maximum release time seen. The zero value is ready to use.
type releaseMap struct {
	entries []relEntry
}

type relEntry struct {
	ext interval.Extent
	at  sim.VTime
}

// latest returns the maximum recorded release time over any byte of e,
// or 0. Runs once per grant decision: it must not allocate.
//
//atomiovet:hotpath
func (m *releaseMap) latest(e interval.Extent) sim.VTime {
	if e.Empty() {
		return 0
	}
	i := sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].ext.End() > e.Off
	})
	var max sim.VTime
	for ; i < len(m.entries) && m.entries[i].ext.Off < e.End(); i++ {
		if m.entries[i].at > max {
			max = m.entries[i].at
		}
	}
	return max
}

// record notes that a lock on e was released at virtual time `at`. The
// affected window is rebuilt from elementary cut intervals, taking the
// maximum time where ranges overlap — simple and obviously correct; release
// maps stay small because equal-valued neighbours are coalesced.
func (m *releaseMap) record(e interval.Extent, at sim.VTime) {
	if e.Empty() {
		return
	}
	var out []relEntry
	var affected []relEntry
	for _, en := range m.entries {
		if en.ext.Overlaps(e) {
			affected = append(affected, en)
		} else {
			out = append(out, en)
		}
	}
	cutSet := map[int64]bool{e.Off: true, e.End(): true}
	for _, en := range affected {
		cutSet[en.ext.Off] = true
		cutSet[en.ext.End()] = true
	}
	cuts := make([]int64, 0, len(cutSet))
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	for k := 0; k+1 < len(cuts); k++ {
		piece := interval.Extent{Off: cuts[k], Len: cuts[k+1] - cuts[k]}
		var v sim.VTime
		covered := false
		if e.ContainsExtent(piece) {
			v, covered = at, true
		}
		for _, en := range affected {
			if en.ext.ContainsExtent(piece) {
				covered = true
				if en.at > v {
					v = en.at
				}
			}
		}
		if covered {
			out = append(out, relEntry{ext: piece, at: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ext.Off < out[j].ext.Off })
	// Coalesce equal-valued neighbours to keep the map small.
	merged := out[:0]
	for _, en := range out {
		if n := len(merged); n > 0 && merged[n-1].at == en.at && merged[n-1].ext.End() == en.ext.Off {
			merged[n-1].ext.Len += en.ext.Len
			continue
		}
		merged = append(merged, en)
	}
	m.entries = merged
}
