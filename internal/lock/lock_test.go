package lock

import (
	"sync"
	"testing"
	"time"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

const (
	msg = 10 * sim.Microsecond
	svc = 5 * sim.Microsecond
)

func newCentralForTest() *Central {
	return NewCentral(CentralConfig{MsgCost: msg, ServiceTime: svc})
}

func newDistributedForTest() *Distributed {
	return NewDistributed(DistributedConfig{
		LocalCost:   sim.Microsecond,
		MsgCost:     msg,
		ServiceTime: svc,
		RevokeCost:  50 * sim.Microsecond,
	})
}

// managers returns every manager flavour under test, including sharded
// variants with a deliberately tiny stripe so the test extents (offsets up
// to ~1000) straddle shard boundaries and exercise the cross-shard paths.
func managers() map[string]Manager {
	return map[string]Manager{
		"central":     newCentralForTest(),
		"distributed": newDistributedForTest(),
		"central/S4": NewCentral(CentralConfig{
			MsgCost: msg, ServiceTime: svc, Shards: 4, ShardStripe: 64,
		}),
		"distributed/S4": NewDistributed(DistributedConfig{
			LocalCost: sim.Microsecond, MsgCost: msg, ServiceTime: svc,
			RevokeCost: 50 * sim.Microsecond, Shards: 4, ShardStripe: 64,
		}),
	}
}

func TestLockUnlockSingleOwner(t *testing.T) {
	for name, m := range managers() {
		g := m.Lock(0, ext(0, 100), Exclusive, 0)
		if g < msg {
			t.Errorf("%s: grant %v before request could arrive", name, g)
		}
		after := m.Unlock(0, ext(0, 100), g+100)
		if after < g+100 {
			t.Errorf("%s: unlock returned %v, before the call time", name, after)
		}
	}
}

func TestNonOverlappingLocksDontWait(t *testing.T) {
	for name, m := range managers() {
		var wg sync.WaitGroup
		grants := make([]sim.VTime, 8)
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				grants[i] = m.Lock(i, ext(int64(i*100), 100), Exclusive, 0)
			}(i)
		}
		wg.Wait()
		// Nobody waits on a conflict; grants are bounded by message cost
		// plus the service queue (central) or even less (distributed).
		for i, g := range grants {
			if g > 2*msg+8*svc+8*50*sim.Microsecond {
				t.Errorf("%s: owner %d granted at %v, too late for no-conflict", name, i, g)
			}
		}
		for i := 0; i < 8; i++ {
			m.Unlock(i, ext(int64(i*100), 100), grants[i])
		}
	}
}

func TestOverlappingExclusiveSerializes(t *testing.T) {
	for name, m := range managers() {
		// Owner 0 grabs [0,100) and holds it until virtual time 1ms.
		g0 := m.Lock(0, ext(0, 100), Exclusive, 0)
		release := g0 + sim.Millisecond

		done := make(chan sim.VTime)
		go func() {
			// Owner 1 requests an overlapping range; must wait for the
			// release and inherit its virtual time.
			done <- m.Lock(1, ext(50, 100), Exclusive, 0)
		}()
		// Give the waiter a moment to really block.
		time.Sleep(20 * time.Millisecond)
		select {
		case g := <-done:
			t.Fatalf("%s: conflicting lock granted at %v while held", name, g)
		default:
		}
		m.Unlock(0, ext(0, 100), release)
		g1 := <-done
		if g1 < release {
			t.Errorf("%s: second grant %v precedes release %v", name, g1, release)
		}
		m.Unlock(1, ext(50, 100), g1)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	for name, m := range managers() {
		g0 := m.Lock(0, ext(0, 100), Shared, 0)
		done := make(chan sim.VTime)
		go func() { done <- m.Lock(1, ext(0, 100), Shared, 0) }()
		select {
		case g1 := <-done:
			if g1 > sim.Second {
				t.Errorf("%s: shared lock delayed to %v", name, g1)
			}
			m.Unlock(1, ext(0, 100), g1)
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: shared lock blocked on shared holder", name)
		}
		m.Unlock(0, ext(0, 100), g0)
	}
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := newCentralForTest()
	g0 := m.Lock(0, ext(0, 100), Shared, 0)
	done := make(chan sim.VTime)
	go func() { done <- m.Lock(1, ext(0, 100), Exclusive, 0) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("exclusive granted alongside shared")
	default:
	}
	m.Unlock(0, ext(0, 100), g0+100)
	<-done
}

func TestUnlockNotHeldPanics(t *testing.T) {
	for name, m := range managers() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			m.Unlock(3, ext(0, 10), 0)
		}()
	}
}

func TestCentralServiceQueueSerializesRequests(t *testing.T) {
	// N simultaneous non-conflicting requests still queue at the central
	// manager: the latest grant is at least N*ServiceTime after arrival.
	m := newCentralForTest()
	const n = 16
	var wg sync.WaitGroup
	grants := make([]sim.VTime, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			grants[i] = m.Lock(i, ext(int64(i*10), 10), Exclusive, 0)
		}(i)
	}
	wg.Wait()
	var latest sim.VTime
	for _, g := range grants {
		if g > latest {
			latest = g
		}
	}
	if want := msg + n*svc + msg; latest < want {
		t.Fatalf("latest grant %v, want >= %v (central queueing)", latest, want)
	}
}

func TestDistributedFastPathAfterFirstAcquisition(t *testing.T) {
	d := newDistributedForTest()
	g1 := d.Lock(0, ext(0, 1000), Exclusive, 0)
	d.Unlock(0, ext(0, 1000), g1)
	// Re-acquiring inside the cached token is nearly free.
	at := g1 + sim.Millisecond
	g2 := d.Lock(0, ext(100, 50), Exclusive, at)
	if g2 > at+10*sim.Microsecond {
		t.Fatalf("fast-path grant at %v, want ~%v", g2, at)
	}
	d.Unlock(0, ext(100, 50), g2)
	local, server, _ := d.Stats()
	if local != 1 || server != 1 {
		t.Fatalf("stats local=%d server=%d, want 1/1", local, server)
	}
}

func TestDistributedRevocationOnConflict(t *testing.T) {
	d := newDistributedForTest()
	g0 := d.Lock(0, ext(0, 1000), Exclusive, 0)
	d.Unlock(0, ext(0, 1000), g0)

	// Owner 1 wants an overlapping range: owner 0's token must be revoked.
	g1 := d.Lock(1, ext(500, 1000), Exclusive, g0)
	_, _, rev := d.Stats()
	if rev != 1 {
		t.Fatalf("revocations = %d, want 1", rev)
	}
	if g1 < g0+msg+svc {
		t.Fatalf("revoking grant at %v, too early", g1)
	}
	d.Unlock(1, ext(500, 1000), g1)

	// Owner 0's token for the overlapped part is gone: next lock there is
	// a server grant again.
	_, serverBefore, _ := d.Stats()
	g2 := d.Lock(0, ext(600, 10), Exclusive, g1)
	_, serverAfter, _ := d.Stats()
	if serverAfter != serverBefore+1 {
		t.Fatal("expected server grant after token revocation")
	}
	d.Unlock(0, ext(600, 10), g2)
}

func TestDistributedKeepsDisjointTokens(t *testing.T) {
	d := newDistributedForTest()
	// Owner 0 holds [0,100); owner 1 takes [200,300): no revocation.
	g0 := d.Lock(0, ext(0, 100), Exclusive, 0)
	d.Unlock(0, ext(0, 100), g0)
	g1 := d.Lock(1, ext(200, 100), Exclusive, 0)
	d.Unlock(1, ext(200, 100), g1)
	_, _, rev := d.Stats()
	if rev != 0 {
		t.Fatalf("revocations = %d, want 0", rev)
	}
	// Both fast-path on re-acquisition.
	d.Unlock(0, ext(0, 100), d.Lock(0, ext(0, 100), Exclusive, g0+sim.Second))
	d.Unlock(1, ext(200, 100), d.Lock(1, ext(200, 100), Exclusive, g1+sim.Second))
	local, _, _ := d.Stats()
	if local != 2 {
		t.Fatalf("local grants = %d, want 2", local)
	}
}

func TestGrantCarriesConflictReleaseTime(t *testing.T) {
	// The virtual grant time of a waiter must be at least the *virtual*
	// release time of the conflicting holder, even though the real wait
	// is instantaneous.
	m := newCentralForTest()
	g0 := m.Lock(0, ext(0, 10), Exclusive, 0)
	farFuture := g0 + 42*sim.Second
	done := make(chan sim.VTime)
	go func() { done <- m.Lock(1, ext(5, 10), Exclusive, 0) }()
	time.Sleep(10 * time.Millisecond)
	m.Unlock(0, ext(0, 10), farFuture)
	if g1 := <-done; g1 < farFuture {
		t.Fatalf("grant %v does not carry release time %v", g1, farFuture)
	}
	m.Unlock(1, ext(5, 10), farFuture+1)
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("mode strings")
	}
}

func TestManagerNames(t *testing.T) {
	if newCentralForTest().Name() != "central" || newDistributedForTest().Name() != "distributed" {
		t.Fatal("names")
	}
}

func TestHoldersCount(t *testing.T) {
	c := newCentralForTest()
	g := c.Lock(0, ext(0, 10), Exclusive, 0)
	if c.Holders() != 1 {
		t.Fatal("holders != 1")
	}
	c.Unlock(0, ext(0, 10), g)
	if c.Holders() != 0 {
		t.Fatal("holders != 0 after unlock")
	}
}
