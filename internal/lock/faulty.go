package lock

import (
	"sync"

	"atomio/internal/interval"
	"atomio/internal/obs"
	"atomio/internal/sim"
)

// FaultPlan answers lock-message fault queries. Decisions are keyed by the
// owner's per-class operation index in program order — the op-th Lock call
// and the op-th Unlock call a rank issues are deterministic regardless of
// engine or host scheduling — so a faulted run stays byte-identical across
// engines. fault.Injector implements the interface; the indirection keeps
// this package free of a fault dependency and lets tests script faults
// directly.
type FaultPlan interface {
	// LockDelay returns extra virtual latency for the owner's op-th lock
	// request (the message-reorder fault).
	LockDelay(owner, op int) sim.VTime
	// UnlockDropped reports whether the owner's op-th unlock message is
	// lost in transit.
	UnlockDropped(owner, op int) bool
	// UnlockDuplicated reports whether the owner's op-th unlock message
	// is delivered twice.
	UnlockDuplicated(owner, op int) bool
}

// Revoker is the lease-expiry hook both managers provide: RevokeAt force-
// releases (owner, e) with the release stamped at virtual time releaseAt,
// issued by the owner's actor at its current virtual time at. A revocation
// of a lock that is no longer (or never was) held is a no-op — leases and
// duplicated unlock messages make revocation inherently idempotent.
type Revoker interface {
	RevokeAt(owner int, e interval.Extent, at, releaseAt sim.VTime)
}

// RevokeAt implements Revoker for the central manager. It follows Unlock's
// coordination protocol exactly — take the owner's turn at the caller's
// current time, then stamp the release — so its cross-engine determinism
// is inherited from the pinned Unlock path.
func (c *Central) RevokeAt(owner int, e interval.Extent, at, releaseAt sim.VTime) {
	if c.coord != nil {
		c.coord.Await(owner, at)
	}
	// The grant may already be gone (duplicate release): ignore.
	_ = c.tbl.release(owner, e, releaseAt)
}

// RevokeAt implements Revoker for the distributed manager (see
// Central.RevokeAt). The owner keeps its cached token — only the active
// grant is revoked, matching a lease expiry that invalidates the lock but
// not the client's token state.
func (d *Distributed) RevokeAt(owner int, e interval.Extent, at, releaseAt sim.VTime) {
	if d.coord != nil {
		d.coord.Await(owner, at)
	}
	_ = d.tbl.release(owner, e, releaseAt)
}

// Faulty wraps a manager with a fault plan and a lease: lock requests can
// be delayed (reordered against other ranks' requests), unlock messages
// can be lost or duplicated. A lost unlock with a positive lease expires
// the grant at grant-time+lease via the manager's Revoker — waiters
// eventually proceed, at the price of serializing after the lease. A lost
// unlock with no lease wedges the range forever (the run stalls; only the
// teardown tests want that). Build with NewFaulty.
type Faulty struct {
	inner Manager
	rev   Revoker
	plan  FaultPlan
	lease sim.VTime
	obs   *obs.Recorder

	mu        sync.Mutex
	lockOps   map[int]int
	unlockOps map[int]int
	grants    map[grantKey]sim.VTime
}

type grantKey struct {
	owner int
	ext   interval.Extent
}

// NewFaulty wraps inner with the fault plan. A positive lease requires
// inner to implement Revoker (both concrete managers do); lease 0 disables
// revocation.
func NewFaulty(inner Manager, plan FaultPlan, lease sim.VTime) *Faulty {
	rev, _ := inner.(Revoker)
	if lease > 0 && rev == nil {
		panic("lock: NewFaulty with a lease needs a Revoker manager")
	}
	return &Faulty{
		inner: inner, rev: rev, plan: plan, lease: lease,
		lockOps:   make(map[int]int),
		unlockOps: make(map[int]int),
		grants:    make(map[grantKey]sim.VTime),
	}
}

// Name implements Manager.
func (f *Faulty) Name() string { return f.inner.Name() + "+faults" }

// SetCoord forwards the determinism coordinator to the wrapped manager.
func (f *Faulty) SetCoord(co sim.Coord) {
	if m, ok := f.inner.(interface{ SetCoord(sim.Coord) }); ok {
		m.SetCoord(co)
	}
}

// SetObs keeps a recorder for the fault instants this wrapper injects and
// forwards it to the wrapped manager for the regular lock events.
func (f *Faulty) SetObs(o *obs.Recorder) {
	f.obs = o
	if m, ok := f.inner.(interface{ SetObs(*obs.Recorder) }); ok {
		m.SetObs(o)
	}
}

// Unwrap returns the wrapped manager.
func (f *Faulty) Unwrap() Manager { return f.inner }

// nextOp returns and advances owner's per-class operation index.
func nextOp(mu *sync.Mutex, ops map[int]int, owner int) int {
	mu.Lock()
	defer mu.Unlock()
	op := ops[owner]
	ops[owner] = op + 1
	return op
}

// Lock implements Manager: the request is issued at at plus any scripted
// delay, and the grant time is remembered for lease accounting.
func (f *Faulty) Lock(owner int, e interval.Extent, mode Mode, at sim.VTime) sim.VTime {
	op := nextOp(&f.mu, f.lockOps, owner)
	grant := f.inner.Lock(owner, e, mode, at+f.plan.LockDelay(owner, op))
	f.mu.Lock()
	f.grants[grantKey{owner, e}] = grant
	f.mu.Unlock()
	return grant
}

// Unlock implements Manager. A dropped unlock never reaches the manager:
// with a lease the grant is force-released at grant-time+lease, without
// one the range stays locked. A duplicated unlock delivers the release
// twice; the second copy is an idempotent no-op.
func (f *Faulty) Unlock(owner int, e interval.Extent, at sim.VTime) sim.VTime {
	op := nextOp(&f.mu, f.unlockOps, owner)
	f.mu.Lock()
	key := grantKey{owner, e}
	grant, ok := f.grants[key]
	delete(f.grants, key)
	f.mu.Unlock()
	if !ok {
		grant = at
	}
	if f.plan.UnlockDropped(owner, op) {
		if f.obs != nil {
			f.obs.Emit(obs.Event{
				T: at, Actor: owner, Layer: obs.LayerFault, Kind: obs.KindUnlockDrop,
				Peer: -1, Off: e.Off, Len: e.Len,
			})
			f.obs.Count(owner, obs.MetricFaultPrefix+obs.KindUnlockDrop, 1)
		}
		if f.lease > 0 {
			// The lease timer started at the grant; the expiry event is
			// issued by the owner's actor at its current time, mirroring
			// the Unlock coordination protocol.
			releaseAt := grant + f.lease
			if releaseAt < at {
				releaseAt = at
			}
			if f.obs != nil {
				f.obs.Emit(obs.Event{
					T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRevoke,
					Peer: -1, Off: e.Off, Len: e.Len, Dur: releaseAt - at,
				})
				f.obs.Count(owner, obs.MetricLockRevokes, 1)
			}
			f.rev.RevokeAt(owner, e, at, releaseAt)
		}
		// The unlock message is lost; the caller pays nothing and moves on.
		return at
	}
	ret := f.inner.Unlock(owner, e, at)
	if f.plan.UnlockDuplicated(owner, op) && f.rev != nil {
		if f.obs != nil {
			f.obs.Emit(obs.Event{
				T: ret, Actor: owner, Layer: obs.LayerFault, Kind: obs.KindUnlockDup,
				Peer: -1, Off: e.Off, Len: e.Len,
			})
			f.obs.Count(owner, obs.MetricFaultPrefix+obs.KindUnlockDup, 1)
		}
		f.rev.RevokeAt(owner, e, ret, ret)
	}
	return ret
}

var (
	_ Manager = (*Faulty)(nil)
	_ Revoker = (*Central)(nil)
	_ Revoker = (*Distributed)(nil)
)
