package lock

import "atomio/internal/sim"

// wakeHeap is a (ticket, seq)-ordered min-heap of release-time grant
// candidates. A release used to rescan its whole candidate list once per
// grant — O(m²) for m overlapping waiters, the cost that dominates mass
// wakeups at P≫1k — and the heap makes each hand-off O(log m) instead.
//
// Replacing the rescan with pop-in-order is exact, not approximate, because
// conflicts are monotone within one release call: the grant loop only adds
// granted locks and never removes any, so a candidate that conflicts when
// popped can never become grantable later in the same release. Popping in
// (ticket, seq) order and discarding conflicting candidates therefore
// grants exactly the same waiters, in exactly the same order, as the
// repeated min-scan over the eligible subset did.
//
// The zero value is an empty heap. W is the table's waiter representation.
type wakeHeap[W any] struct {
	items []wakeItem[W]
}

// wakeItem is one heap entry: the ordering key plus the waiter it wakes.
type wakeItem[W any] struct {
	ticket sim.VTime
	seq    int64
	w      W
}

// before is the strict (ticket, seq) order.
func (a wakeItem[W]) before(b wakeItem[W]) bool {
	return a.ticket < b.ticket || (a.ticket == b.ticket && a.seq < b.seq)
}

// push adds a candidate.
func (h *wakeHeap[W]) push(ticket sim.VTime, seq int64, w W) {
	h.items = append(h.items, wakeItem[W]{ticket: ticket, seq: seq, w: w})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].before(h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// pop removes and returns the lowest-(ticket, seq) candidate; ok is false
// when the heap is empty. Runs once per grant hand-off: it must not
// allocate.
//
//atomiovet:hotpath
func (h *wakeHeap[W]) pop() (w W, ok bool) {
	if len(h.items) == 0 {
		return w, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = wakeItem[W]{} // release the waiter reference
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.items) && h.items[l].before(h.items[min]) {
			min = l
		}
		if r < len(h.items) && h.items[r].before(h.items[min]) {
			min = r
		}
		if min == i {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top.w, true
}

// len returns the number of queued candidates.
func (h *wakeHeap[W]) len() int { return len(h.items) }
