package lock

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// coordManager is a manager that can run under a determinism coordinator
// and expose its grant table for release-history probes.
type coordManager interface {
	Manager
	SetCoord(sim.Coord)
}

// grantTableOf reaches the manager's table for relLatest probes.
func grantTableOf(m Manager) grantTable {
	switch m := m.(type) {
	case *Central:
		return m.tbl
	case *Distributed:
		return m.tbl
	case *Faulty:
		return grantTableOf(m.inner)
	default:
		panic(fmt.Sprintf("no grant table on %T", m))
	}
}

// engineTrace is everything a workload observes from the lock service: each
// owner's sequence of grant and release times, and the final release
// history over probe extents.
type engineTrace struct {
	Grants    [][]sim.VTime
	Releases  [][]sim.VTime
	ExclRel   []sim.VTime
	SharedRel []sim.VTime
}

// runLockWorkload drives a seeded random lock/unlock workload through the
// manager under the given engine and returns the observed trace. The
// workload is a function of (seed, owner) only, so two engines given the
// same seed contend over identical request streams.
func runLockWorkload(t *testing.T, mk func() coordManager, eng sim.Engine, seed int64, actors int) engineTrace {
	t.Helper()
	mgr := mk()
	coord := eng.NewCoord(actors)
	mgr.SetCoord(coord)

	tr := engineTrace{
		Grants:   make([][]sim.VTime, actors),
		Releases: make([][]sim.VTime, actors),
	}
	err := eng.Run(coord, actors, func(owner int) {
		defer coord.Done(owner)
		rng := rand.New(rand.NewSource(seed + int64(owner)*7919))
		now := sim.VTime(rng.Intn(100))
		for i := 0; i < 20; i++ {
			e := ext(int64(rng.Intn(8)*64), int64(64+rng.Intn(128)))
			mode := Exclusive
			if rng.Intn(3) == 0 {
				mode = Shared
			}
			grant := mgr.Lock(owner, e, mode, now)
			tr.Grants[owner] = append(tr.Grants[owner], grant)
			now = grant + sim.VTime(1+rng.Intn(50))*sim.Microsecond
			rel := mgr.Unlock(owner, e, now)
			tr.Releases[owner] = append(tr.Releases[owner], rel)
			now = rel + sim.VTime(rng.Intn(20))*sim.Microsecond
		}
	})
	if err != nil {
		t.Fatalf("engine %s: %v", eng.Name(), err)
	}
	tbl := grantTableOf(mgr)
	if n := tbl.holders(); n != 0 {
		t.Fatalf("engine %s: %d locks still held after the workload", eng.Name(), n)
	}
	for off := int64(0); off < 8*64; off += 64 {
		excl, shared := tbl.relLatest(ext(off, 64))
		tr.ExclRel = append(tr.ExclRel, excl)
		tr.SharedRel = append(tr.SharedRel, shared)
	}
	return tr
}

// TestManagersByteIdenticalAcrossEngines pins the event-loop engine's grant
// times, release times and release history to the goroutine oracle on
// seeded random contended workloads, for every manager flavour and shard
// count.
func TestManagersByteIdenticalAcrossEngines(t *testing.T) {
	flavours := []struct {
		name string
		mk   func() coordManager
	}{
		{"central", func() coordManager { return newCentralForTest() }},
		{"central-sharded", func() coordManager {
			return NewCentral(CentralConfig{MsgCost: msg, ServiceTime: svc, Shards: 4, ShardStripe: 128})
		}},
		{"distributed", func() coordManager {
			return NewDistributed(DistributedConfig{
				LocalCost: sim.Microsecond, MsgCost: msg, ServiceTime: svc,
				RevokeCost: 3 * sim.Microsecond,
			})
		}},
	}
	for _, fl := range flavours {
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", fl.name, seed), func(t *testing.T) {
				oracle := runLockWorkload(t, fl.mk, sim.Goroutines{}, seed, 8)
				loop := runLockWorkload(t, fl.mk, des.New(), seed, 8)
				if !reflect.DeepEqual(loop.Grants, oracle.Grants) {
					t.Errorf("grant times diverge\n eventloop %v\n goroutine %v", loop.Grants, oracle.Grants)
				}
				if !reflect.DeepEqual(loop.Releases, oracle.Releases) {
					t.Errorf("release times diverge\n eventloop %v\n goroutine %v", loop.Releases, oracle.Releases)
				}
				if !reflect.DeepEqual(loop.ExclRel, oracle.ExclRel) || !reflect.DeepEqual(loop.SharedRel, oracle.SharedRel) {
					t.Errorf("release history diverges\n eventloop %v/%v\n goroutine %v/%v",
						loop.ExclRel, loop.SharedRel, oracle.ExclRel, oracle.SharedRel)
				}
			})
		}
	}
}
