package lock

import (
	"fmt"
	"reflect"
	"testing"

	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// plan is a scripted FaultPlan for direct tests.
type plan struct {
	delays map[[2]int]sim.VTime
	drops  map[[2]int]bool
	dups   map[[2]int]bool
}

func (p plan) LockDelay(owner, op int) sim.VTime   { return p.delays[[2]int{owner, op}] }
func (p plan) UnlockDropped(owner, op int) bool    { return p.drops[[2]int{owner, op}] }
func (p plan) UnlockDuplicated(owner, op int) bool { return p.dups[[2]int{owner, op}] }

// TestFaultyDroppedUnlockLeaseRevokes pins the lease path: owner 0's
// unlock is lost, so owner 1 waits until the lease expires rather than
// forever, and serializes after grant+lease.
func TestFaultyDroppedUnlockLeaseRevokes(t *testing.T) {
	const lease = 500 * sim.Microsecond
	for _, flavour := range []struct {
		name string
		mk   func() Manager
	}{
		{"central", func() Manager { return newCentralForTest() }},
		{"distributed", func() Manager { return newDistributedForTest() }},
	} {
		t.Run(flavour.name, func(t *testing.T) {
			f := NewFaulty(flavour.mk(), plan{drops: map[[2]int]bool{{0, 0}: true}}, lease)
			e := ext(0, 128)
			grant0 := f.Lock(0, e, Exclusive, 0)
			rel0 := f.Unlock(0, e, grant0+sim.Microsecond) // lost; lease armed
			if rel0 != grant0+sim.Microsecond {
				t.Errorf("dropped unlock returned %v, want the caller's own time %v", rel0, grant0+sim.Microsecond)
			}
			// Owner 1 must be granted, and not before the lease expiry.
			grant1 := f.Lock(1, e, Exclusive, rel0)
			if grant1 < grant0+lease {
				t.Errorf("grant1 = %v, before lease expiry %v", grant1, grant0+lease)
			}
			if rel := f.Unlock(1, e, grant1); rel < grant1 {
				t.Errorf("unlock went backwards: %v < %v", rel, grant1)
			}
		})
	}
}

// TestFaultyDroppedUnlockNoLeaseWedges pins the no-lease drop: the grant
// stays in the table forever.
func TestFaultyDroppedUnlockNoLeaseWedges(t *testing.T) {
	inner := newCentralForTest()
	f := NewFaulty(inner, plan{drops: map[[2]int]bool{{0, 0}: true}}, 0)
	e := ext(0, 64)
	grant := f.Lock(0, e, Exclusive, 0)
	f.Unlock(0, e, grant+sim.Microsecond)
	if n := inner.Holders(); n != 1 {
		t.Fatalf("holders = %d after a dropped unlock with no lease, want 1", n)
	}
}

// TestFaultyDuplicateUnlockIdempotent pins that a duplicated unlock
// releases once and the second delivery is a no-op — subsequent locking
// still works and holder counts stay sane.
func TestFaultyDuplicateUnlockIdempotent(t *testing.T) {
	inner := newCentralForTest()
	f := NewFaulty(inner, plan{dups: map[[2]int]bool{{0, 0}: true}}, 0)
	e := ext(0, 64)
	grant := f.Lock(0, e, Exclusive, 0)
	rel := f.Unlock(0, e, grant+sim.Microsecond)
	if n := inner.Holders(); n != 0 {
		t.Fatalf("holders = %d after duplicated unlock, want 0", n)
	}
	// The range must still be lockable with a sane grant time.
	if g := f.Lock(1, e, Exclusive, rel); g < rel {
		t.Errorf("grant after duplicate = %v, want >= %v", g, rel)
	}
}

// TestFaultyLockDelayReorders pins the reorder fault: owner 0's delayed
// request loses to owner 1's later-issued one.
func TestFaultyLockDelayReorders(t *testing.T) {
	const delay = 10 * sim.Millisecond
	f := NewFaulty(newCentralForTest(), plan{delays: map[[2]int]sim.VTime{{0, 0}: delay}}, 0)
	e := ext(0, 64)
	// Owner 1 issues later (t=1ms) but undelayed; owner 0 issued at t=0
	// with a 10ms delay. Owner 1 must be served first.
	grant1 := f.Lock(1, e, Exclusive, sim.Millisecond)
	f.Unlock(1, e, grant1)
	grant0 := f.Lock(0, e, Exclusive, 0)
	if grant0 < delay {
		t.Errorf("delayed grant %v arrived before its delay %v", grant0, delay)
	}
	if grant1 >= grant0 {
		t.Errorf("reorder failed: delayed owner 0 granted at %v, undelayed owner 1 at %v", grant0, grant1)
	}
	f.Unlock(0, e, grant0)
}

// TestRevokeAtIdempotent pins the Revoker contract directly: revoking a
// never-held or already-released range must not panic or corrupt state.
func TestRevokeAtIdempotent(t *testing.T) {
	for _, flavour := range []struct {
		name string
		mk   func() interface {
			Manager
			Revoker
		}
	}{
		{"central", func() interface {
			Manager
			Revoker
		} {
			return newCentralForTest()
		}},
		{"distributed", func() interface {
			Manager
			Revoker
		} {
			return newDistributedForTest()
		}},
	} {
		t.Run(flavour.name, func(t *testing.T) {
			m := flavour.mk()
			e := ext(0, 64)
			m.RevokeAt(0, e, 0, 0) // never held
			grant := m.Lock(0, e, Exclusive, 0)
			rel := m.Unlock(0, e, grant)
			m.RevokeAt(0, e, rel, rel) // already released
			if g := m.Lock(1, e, Exclusive, rel); g < rel {
				t.Errorf("grant = %v, want >= %v", g, rel)
			}
		})
	}
}

// TestFaultyName pins the wrapper's name and unwrap.
func TestFaultyName(t *testing.T) {
	f := NewFaulty(newCentralForTest(), plan{}, 0)
	if f.Name() != "central+faults" {
		t.Errorf("Name = %q", f.Name())
	}
	if f.Unwrap().Name() != "central" {
		t.Errorf("Unwrap().Name = %q", f.Unwrap().Name())
	}
}

// TestFaultyByteIdenticalAcrossEngines extends the cross-engine pinning to
// faulted workloads: a contended multi-actor workload with a dropped
// unlock (lease-revoked), a duplicated unlock and a delayed lock must
// produce identical grant and release times under both engines.
func TestFaultyByteIdenticalAcrossEngines(t *testing.T) {
	p := plan{
		delays: map[[2]int]sim.VTime{{2, 0}: 2 * sim.Millisecond},
		drops:  map[[2]int]bool{{0, 0}: true},
		dups:   map[[2]int]bool{{1, 1}: true},
	}
	const lease = 5 * sim.Millisecond
	for _, flavour := range []struct {
		name string
		mk   func() coordManager
	}{
		{"central", func() coordManager { return NewFaulty(newCentralForTest(), p, lease) }},
		{"central-sharded", func() coordManager {
			return NewFaulty(NewCentral(CentralConfig{MsgCost: msg, ServiceTime: svc, Shards: 4, ShardStripe: 128}), p, lease)
		}},
		{"distributed", func() coordManager { return NewFaulty(newDistributedForTest(), p, lease) }},
	} {
		for seed := int64(0); seed < 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", flavour.name, seed), func(t *testing.T) {
				oracle := runLockWorkload(t, flavour.mk, sim.Goroutines{}, seed, 8)
				loop := runLockWorkload(t, flavour.mk, des.New(), seed, 8)
				if !reflect.DeepEqual(loop, oracle) {
					t.Errorf("faulted traces diverge\n eventloop %+v\n goroutine %+v", loop, oracle)
				}
			})
		}
	}
}

var _ FaultPlan = plan{}
