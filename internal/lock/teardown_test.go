package lock

import (
	"strings"
	"testing"

	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// TestDESTeardownUnwindsLockWaiter is the regression test for the
// crash-path the fault layer leans on: an actor parked inside the lock
// table's waiter heap at event-loop teardown must be force-unwound with
// sim.StoppedError — relocking the table mutex first, so acquire's
// deferred unlock finds it held — and reported as a stall, leaving the
// table usable (its mutex released, the wedged grant still registered).
//
// The wedge is produced by the fault layer itself: a dropped unlock with
// no lease leaves the range locked forever, so the second rank parks in
// the waiter heap and nobody ever wakes it.
func TestDESTeardownUnwindsLockWaiter(t *testing.T) {
	flavours := []struct {
		name string
		mk   func() coordManager
	}{
		{"central", func() coordManager { return newCentralForTest() }},
		{"central-sharded", func() coordManager {
			return NewCentral(CentralConfig{MsgCost: msg, ServiceTime: svc, Shards: 4, ShardStripe: 64})
		}},
		{"distributed", func() coordManager { return newDistributedForTest() }},
	}
	for _, flavour := range flavours {
		t.Run(flavour.name, func(t *testing.T) {
			inner := flavour.mk()
			// No lease: the dropped unlock wedges the range forever.
			mgr := NewFaulty(inner, plan{drops: map[[2]int]bool{{0, 0}: true}}, 0)
			eng := des.New()
			coord := eng.NewCoord(2)
			mgr.SetCoord(coord)

			// Span two shard stripes so the sharded flavour parks on the
			// cross-shard acquire path.
			e := ext(0, 128)
			var unwound bool
			err := eng.Run(coord, 2, func(owner int) {
				defer coord.Done(owner)
				if owner == 0 {
					grant := mgr.Lock(0, e, Exclusive, 0)
					mgr.Unlock(0, e, grant+sim.Microsecond) // lost in transit
					return
				}
				defer func() {
					p := recover()
					if p == nil {
						return
					}
					se, ok := p.(sim.StoppedError)
					if !ok || se.Actor != 1 {
						t.Errorf("actor 1 unwound with %v, want sim.StoppedError{Actor: 1}", p)
					}
					unwound = true
				}()
				mgr.Lock(1, e, Exclusive, sim.Microsecond) // parks forever
				t.Error("lock on a wedged range was granted")
			})
			if err == nil || !strings.Contains(err.Error(), "stalled: [1]") {
				t.Fatalf("run error = %v, want a stall report naming actor 1", err)
			}
			if !unwound {
				t.Fatal("parked waiter was not unwound with sim.StoppedError")
			}
			// The unwind relocked and released the table mutex on its way
			// out; these probes would deadlock if it had not. The wedged
			// grant itself is still registered.
			tbl := grantTableOf(inner)
			if n := tbl.holders(); n != 1 {
				t.Errorf("holders = %d after teardown, want the wedged grant", n)
			}
			if n := tbl.waiters(); n != 1 {
				t.Errorf("waiters = %d after teardown, want the abandoned waiter entry", n)
			}
		})
	}
}
