package lock

// Property tests pinning the index-backed lock table to the pre-index
// linear-scan implementation on randomized grant/release workloads.

import (
	"fmt"
	"math/rand"
	"testing"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

// linearConflicts is the pre-index conflict check: scan every granted lock.
// It is the oracle the indexed table is compared against.
func linearConflicts(granted []*held, owner int, e interval.Extent, mode Mode) bool {
	for _, h := range granted {
		if h.owner == owner {
			continue
		}
		if !h.ext.Overlaps(e) {
			continue
		}
		if mode == Exclusive || h.mode == Exclusive {
			return true
		}
	}
	return false
}

// TestQuickConflictsMatchesLinearScan drives the table's granted index and
// a mirror slice through random register/release sequences, checking every
// conflict query against the linear oracle.
func TestQuickConflictsMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	randMode := func() Mode {
		if r.Intn(2) == 0 {
			return Shared
		}
		return Exclusive
	}
	for round := 0; round < 30; round++ {
		tbl := newTable()
		type live struct {
			owner int
			ext   interval.Extent
			mode  Mode
		}
		var mirror []*held
		for op := 0; op < 300; op++ {
			switch {
			case len(mirror) > 0 && r.Intn(3) == 0:
				// Release a random live lock through the real path.
				k := r.Intn(len(mirror))
				h := mirror[k]
				if err := tbl.release(h.owner, h.ext, sim.VTime(op)); err != nil {
					t.Fatalf("release %v: %v", h, err)
				}
				mirror = append(mirror[:k], mirror[k+1:]...)
			default:
				// Register a lock directly (grantLocked does not check
				// conflicts; the table may hold mutually overlapping locks
				// from shared holders or the same owner).
				h := &held{
					owner: r.Intn(6),
					ext:   interval.Extent{Off: int64(r.Intn(400)), Len: int64(r.Intn(40))},
					mode:  randMode(),
				}
				tbl.mu.Lock()
				tbl.grantLocked(h.owner, h.ext, h.mode, 0)
				tbl.mu.Unlock()
				mirror = append(mirror, h)
			}
			if got := tbl.holders(); got != len(mirror) {
				t.Fatalf("holders = %d, mirror %d", got, len(mirror))
			}
			// Compare a batch of random queries against the oracle.
			for q := 0; q < 5; q++ {
				owner := r.Intn(6)
				e := interval.Extent{Off: int64(r.Intn(400)), Len: int64(r.Intn(40))}
				mode := randMode()
				tbl.mu.Lock()
				got := tbl.conflicts(owner, e, mode)
				tbl.mu.Unlock()
				if want := linearConflicts(mirror, owner, e, mode); got != want {
					t.Fatalf("conflicts(owner=%d, %v, %v) = %v, want %v (granted %v)",
						owner, e, mode, got, want, mirror)
				}
			}
		}
	}
}

// TestReleaseUnknownLockErrs keeps the error path intact, including the
// empty-extent lookup that overlap queries cannot see.
func TestReleaseUnknownLockErrs(t *testing.T) {
	tbl := newTable()
	if err := tbl.release(0, interval.Extent{Off: 10, Len: 5}, 1); err == nil {
		t.Fatal("release of unheld lock should fail")
	}
	empty := interval.Extent{Off: 7, Len: 0}
	tbl.mu.Lock()
	tbl.grantLocked(3, empty, Exclusive, 0)
	tbl.mu.Unlock()
	if err := tbl.release(3, empty, 1); err != nil {
		t.Fatalf("release of empty-extent lock: %v", err)
	}
	if tbl.holders() != 0 {
		t.Fatal("empty-extent lock not removed")
	}
}

// BenchmarkConflicts measures the table's conflict check with many granted
// locks, indexed versus the linear oracle — the lock-service hot path the
// interval index exists for.
func BenchmarkConflicts(b *testing.B) {
	for _, n := range []int{512, 4096, 65536} {
		tbl := newTable()
		var mirror []*held
		for i := 0; i < n; i++ {
			h := &held{owner: i, ext: interval.Extent{Off: int64(i) * 128, Len: 96}, mode: Exclusive}
			tbl.grantLocked(h.owner, h.ext, h.mode, 0)
			mirror = append(mirror, h)
		}
		q := interval.Extent{Off: int64(n/2)*128 + 100, Len: 8} // gap: no conflict
		b.Run(fmt.Sprintf("indexed/G%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tbl.conflicts(-1, q, Exclusive) {
					b.Fatal("unexpected conflict")
				}
			}
		})
		b.Run(fmt.Sprintf("linear/G%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if linearConflicts(mirror, -1, q, Exclusive) {
					b.Fatal("unexpected conflict")
				}
			}
		})
	}
}
