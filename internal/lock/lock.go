// Package lock implements the byte-range lock managers the paper's locking
// strategy runs on: a Central manager (the NFS/XFS flavour, one server
// processing every lock and unlock request) and a Distributed GPFS-style
// token manager (Schmuck & Haskin, FAST'02 — the paper's reference [8])
// where clients cache byte-range tokens and conflicting requests pay a
// revocation cost.
//
// Managers are shared by all rank goroutines of a run. Lock blocks the
// caller (a real goroutine block) until the range can be granted, and
// returns the virtual grant time, computed as the maximum of the request's
// virtual arrival, the manager's service queue, and the virtual release
// times of every conflicting lock that had to be waited out. Because the
// caller really blocks until the conflicting holders really release, those
// release timestamps are always available when needed (see package sim).
//
// Both managers run on a conflict-tracking grant table that can be
// partitioned across S offset-stripe shards (CentralConfig.Shards,
// DistributedConfig.Shards): each shard owns its own interval index of
// granted locks, its own waiter index, and its own slice of the release
// history, with cross-shard span locks taken in ascending shard order and
// grants handed out in table-wide deterministic (ticket, seq) order.
// Sharding multiplies host-side lock-service throughput without touching
// the simulation model: virtual timings are byte-identical for any shard
// count (see shardedTable).
package lock

import (
	"fmt"
	"sync"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
	"atomio/internal/sim"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared allows concurrent holders (read locks).
	Shared Mode = iota
	// Exclusive admits a single holder (write locks).
	Exclusive
)

// String names the mode.
func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// Manager grants byte-range locks in virtual time.
type Manager interface {
	// Lock blocks until owner can hold extent e in the given mode, with
	// the request issued at virtual time `at`, and returns the virtual
	// grant time (>= at).
	Lock(owner int, e interval.Extent, mode Mode, at sim.VTime) sim.VTime
	// Unlock releases a previously granted lock at virtual time `at` and
	// returns the caller's virtual time after issuing the release.
	Unlock(owner int, e interval.Extent, at sim.VTime) sim.VTime
	// Name identifies the manager flavour.
	Name() string
}

// grantTable is the conflict-tracking core behind a manager: it registers
// granted locks, blocks conflicting requests, and hands freed ranges to
// waiters in deterministic (ticket, seq) order. Two implementations exist:
// the single-mutex table (the original, kept as the oracle and the
// single-shard fast path) and the stripe-sharded shardedTable. Both produce
// identical grant times, grant order, and release history for any request
// sequence — the property the sharded quick-tests pin.
type grantTable interface {
	// acquire blocks until (owner, e, mode) is grantable and returns the
	// virtual grant time (>= earliest, and after every conflicting lock's
	// virtual release).
	acquire(owner int, e interval.Extent, mode Mode, earliest sim.VTime) sim.VTime
	// release drops owner's lock on exactly e, records the virtual release
	// time in the range history, and grants newly eligible waiters.
	release(owner int, e interval.Extent, releaseAt sim.VTime) error
	// holders returns the number of currently granted locks.
	holders() int
	// waiters returns the number of blocked requests.
	waiters() int
	// relLatest reports the latest recorded virtual release times of
	// exclusive and shared locks over any byte of e (the observable state
	// of the release history).
	relLatest(e interval.Extent) (excl, shared sim.VTime)
	// setCoord routes blocking and waking through a determinism
	// coordinator (see sim.Coord).
	setCoord(sim.Coord)
}

// newGrantTable picks the table implementation for a shard count: one shard
// keeps the single-mutex table, more partitions the byte range by offset
// stripe (stripe <= 0 selects DefaultShardStripe). The choice never changes
// virtual timing — only host-side data-structure and mutex granularity.
func newGrantTable(shards int, stripe int64) grantTable {
	if shards <= 1 {
		return newTable()
	}
	if stripe <= 0 {
		stripe = DefaultShardStripe
	}
	return newShardedTable(shards, stripe)
}

// held is one granted lock.
type held struct {
	owner int
	ext   interval.Extent
	mode  Mode
}

// waiter tracks one blocked Lock call; minStart accumulates the virtual
// release times of conflicting locks observed while waiting. ticket (the
// request's original earliest-grant time) and seq (registration order)
// define the deterministic order in which freed ranges are handed out.
type waiter struct {
	owner    int
	ext      interval.Extent
	mode     Mode
	minStart sim.VTime
	ticket   sim.VTime
	seq      int64
	granted  bool
	grantAt  sim.VTime
}

// table is the shared conflict-tracking core of both managers. Besides the
// currently granted locks it remembers, per byte range, the latest *virtual*
// release time of past exclusive and shared locks (the per-range analogue of
// sim.Resource's free time): a lock request serializes in virtual time after
// every conflicting lock ever released on its range, even when the releases
// happened long ago in real time.
//
// Granted locks and pending waiters are both kept in interval indexes
// (internal/interval/index), so a conflict check touches only the locks
// that actually overlap the request — O(log G + k) instead of a scan of all
// G granted locks — and a release wakes only the waiters overlapping the
// freed range instead of rescanning the whole waiter list.
//
// Grant decisions are made by the releaser: release hands freed ranges to
// eligible waiters in (ticket, seq) order and stamps their grant times
// before any of them wakes, so the winner among competing waiters never
// depends on goroutine wake-up order.
type table struct {
	mu        sync.Mutex
	cond      *sync.Cond
	granted   index.Index[*held]   // granted locks by byte range
	waiting   index.Index[*waiter] // blocked requests by byte range
	nextSeq   int64
	coord     sim.Coord
	exclRel   releaseMap // release times of past exclusive locks
	sharedRel releaseMap // release times of past shared locks
}

func newTable() *table {
	t := &table{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// conflicts reports whether any granted lock conflicts with (owner, e, mode).
// A lock never conflicts with the same owner's other locks. Only granted
// locks overlapping e are visited. Runs once per grant decision: it must
// not allocate.
//
//atomiovet:hotpath
func (t *table) conflicts(owner int, e interval.Extent, mode Mode) bool {
	conflict := false
	t.granted.Overlapping(e, func(_ interval.Extent, _ index.Handle, h *held) bool {
		if h.owner == owner {
			return true
		}
		if mode == Exclusive || h.mode == Exclusive {
			conflict = true
			return false
		}
		return true
	})
	return conflict
}

// grantLocked registers (owner, e, mode) as granted and returns the grant
// time: the request's accumulated floor plus the virtual release times of
// past conflicting locks on the range. Callers hold t.mu.
func (t *table) grantLocked(owner int, e interval.Extent, mode Mode, floor sim.VTime) sim.VTime {
	t.granted.Insert(e, &held{owner: owner, ext: e, mode: mode})
	start := floor
	// Serialize in virtual time after past conflicting releases: always
	// after exclusive releases; after shared releases too when acquiring
	// exclusively.
	if at := t.exclRel.latest(e); at > start {
		start = at
	}
	if mode == Exclusive {
		if at := t.sharedRel.latest(e); at > start {
			start = at
		}
	}
	return start
}

// acquire blocks until (owner, e, mode) is grantable, then registers the
// lock. earliest is the virtual time before which the grant cannot happen
// (request arrival + service); the returned time additionally covers the
// virtual release times of all conflicting locks on the range, past and
// waited-out alike.
func (t *table) acquire(owner int, e interval.Extent, mode Mode, earliest sim.VTime) sim.VTime {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.conflicts(owner, e, mode) {
		return t.grantLocked(owner, e, mode, earliest)
	}
	w := &waiter{
		owner: owner, ext: e, mode: mode,
		minStart: earliest, ticket: earliest, seq: t.nextSeq,
	}
	t.nextSeq++
	t.waiting.Insert(e, w)
	if t.coord != nil {
		t.coord.Block(owner)
		for !w.granted {
			t.coord.Park(owner, &t.mu)
		}
	} else {
		for !w.granted {
			t.cond.Wait()
		}
	}
	return w.grantAt
}

// release drops owner's lock on e, records the virtual release time in the
// range history, stamps overlapping waiters, and grants every waiter that
// became eligible — in (ticket, seq) order, so the hand-off is
// deterministic — before waking them.
func (t *table) release(owner int, e interval.Extent, releaseAt sim.VTime) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Find owner's earliest-registered lock on exactly e. The index visits
	// overlapping locks in (offset, insertion) order, so the match is the
	// same one the old linear scan found. Empty extents overlap nothing and
	// need the full walk.
	var target index.Handle
	found := false
	locate := func(ext interval.Extent, h index.Handle, hd *held) bool {
		if hd.owner == owner && hd.ext == e {
			target, found = h, true
			return false
		}
		return true
	}
	if e.Empty() {
		t.granted.All(locate)
	} else {
		t.granted.Overlapping(e, locate)
	}
	if !found {
		return fmt.Errorf("lock: owner %d does not hold %v", owner, e)
	}
	hd, _ := t.granted.Delete(e, target)
	if hd.mode == Exclusive {
		t.exclRel.record(e, releaseAt)
	} else {
		t.sharedRel.record(e, releaseAt)
	}
	// Only waiters overlapping the freed range can have been unblocked by
	// this release (every waiter conflicts with some granted lock, and
	// granting adds locks, never removes them), so they are the only grant
	// candidates — no full waiter-list rescan.
	type cand struct {
		h index.Handle
		w *waiter
	}
	var wake wakeHeap[cand]
	t.waiting.Overlapping(e, func(_ interval.Extent, h index.Handle, w *waiter) bool {
		if w.minStart < releaseAt {
			w.minStart = releaseAt
		}
		wake.push(w.ticket, w.seq, cand{h: h, w: w})
		return true
	})
	// Grant candidates in (ticket, seq) order, discarding any that conflict
	// when popped: conflicts only grow during the loop (grants add locks,
	// nothing is removed), so a popped conflicting candidate could never be
	// granted by this release anyway — see wakeHeap. Each grant is stamped
	// on the waiter and, in gated runs, published to the gate before the
	// waiter can run.
	for {
		c, ok := wake.pop()
		if !ok {
			break
		}
		if t.conflicts(c.w.owner, c.w.ext, c.w.mode) {
			continue
		}
		t.waiting.Delete(c.w.ext, c.h)
		c.w.grantAt = t.grantLocked(c.w.owner, c.w.ext, c.w.mode, c.w.minStart)
		c.w.granted = true
		if t.coord != nil {
			t.coord.Wake(c.w.owner, c.w.grantAt)
		}
	}
	t.cond.Broadcast()
	return nil
}

// holders returns the number of currently granted locks (for tests).
func (t *table) holders() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.granted.Len()
}

// waiters returns the number of blocked requests.
func (t *table) waiters() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waiting.Len()
}

// relLatest reports the release history over e.
func (t *table) relLatest(e interval.Extent) (excl, shared sim.VTime) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exclRel.latest(e), t.sharedRel.latest(e)
}

// setCoord routes the table's blocking and waking through a determinism
// coordinator.
func (t *table) setCoord(c sim.Coord) { t.coord = c }

var _ grantTable = (*table)(nil)
