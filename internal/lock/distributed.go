package lock

import (
	"sort"
	"sync"

	"atomio/internal/interval"
	"atomio/internal/obs"
	"atomio/internal/sim"
)

// DistributedConfig parameterizes the GPFS-style token manager.
type DistributedConfig struct {
	// LocalCost is the cost of granting a lock from a token the client
	// already caches — the fast path that makes distributed locking
	// scale for non-overlapping access.
	LocalCost sim.VTime
	// MsgCost is the one-way client<->token-server message cost.
	MsgCost sim.VTime
	// ServiceTime is the token server's per-request processing time.
	ServiceTime sim.VTime
	// RevokeCost is charged per conflicting holder whose token must be
	// revoked (a round trip to that client plus its flush work).
	RevokeCost sim.VTime
	// Shards partitions the manager's lock table across this many
	// offset-stripe shards (0 or 1 keeps the single table); virtual
	// timing is invariant in the shard count (see CentralConfig.Shards).
	Shards int
	// ShardStripe is the offset-stripe width used to route requests to
	// shards; 0 selects DefaultShardStripe.
	ShardStripe int64
}

// Distributed is a GPFS-style distributed byte-range token manager: after a
// client acquires a token for a range, subsequent locks inside that range
// are granted locally; conflicting requests from other clients revoke the
// token first. Overlapping writers therefore still serialize — with extra
// revocation traffic — exactly the behaviour the paper notes: "When it
// comes to the overlapping requests, however, concurrent writes to
// overlapped data must still be sequential" (§3.2).
type Distributed struct {
	cfg     DistributedConfig
	service *sim.Resource
	tbl     grantTable
	coord   sim.Coord
	obs     *obs.Recorder

	mu     sync.Mutex
	tokens map[int]interval.List // owner -> cached token ranges

	localGrants  int64
	serverGrants int64
	revocations  int64
}

// NewDistributed constructs a distributed token manager.
func NewDistributed(cfg DistributedConfig) *Distributed {
	return &Distributed{
		cfg:     cfg,
		service: sim.NewResource("tokenmgr"),
		tbl:     newGrantTable(cfg.Shards, cfg.ShardStripe),
		tokens:  make(map[int]interval.List),
	}
}

// Name implements Manager.
func (d *Distributed) Name() string { return "distributed" }

// Shards returns the number of lock-table shards (at least 1).
func (d *Distributed) Shards() int {
	if d.cfg.Shards > 1 {
		return d.cfg.Shards
	}
	return 1
}

// SetCoord routes the manager's shared-state transitions through a
// determinism coordinator (see sim.Coord); lock owners double as actor ids.
func (d *Distributed) SetCoord(co sim.Coord) {
	d.coord = co
	d.tbl.setCoord(co)
}

// SetObs routes lock events and metrics into a recorder (see
// Central.SetObs for the shard-invariance argument).
func (d *Distributed) SetObs(o *obs.Recorder) { d.obs = o }

// Lock implements Manager.
func (d *Distributed) Lock(owner int, e interval.Extent, mode Mode, at sim.VTime) sim.VTime {
	if d.coord != nil {
		d.coord.Await(owner, at)
	}
	if d.obs != nil {
		d.obs.Emit(obs.Event{
			T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRequest,
			Tag: mode.String(), Peer: -1, Off: e.Off, Len: e.Len,
		})
	}
	need := interval.List{e}

	d.mu.Lock()
	haveToken := d.tokens[owner].Contains(need)
	if haveToken {
		d.localGrants++
		d.mu.Unlock()
		// Fast path: token cached locally. Still must not conflict with
		// this client's *active* locks from others — but by token
		// exclusivity no other client can hold a conflicting token, so
		// only table registration is needed.
		ticket := at + d.cfg.LocalCost
		grant := d.tbl.acquire(owner, e, mode, ticket)
		if d.obs != nil {
			d.obs.Emit(obs.Event{
				T: grant, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockGrant,
				Tag: mode.String(), Peer: -1, Off: e.Off, Len: e.Len,
				Dur: grant - at, Aux: int64(ticket),
			})
			d.obs.Count(owner, obs.MetricLockReqs, 1)
			d.obs.Observe(owner, obs.MetricLockWait, int64(grant-at))
		}
		return grant
	}

	// Slow path: ask the token server, revoking conflicting tokens.
	// Revocation walks holders in owner order: the count feeds service
	// time below, and a fixed order keeps any future per-holder cost
	// model deterministic too.
	holders := make([]int, 0, len(d.tokens))
	for other := range d.tokens {
		holders = append(holders, other)
	}
	sort.Ints(holders)
	var revoked int
	for _, other := range holders {
		if other == owner {
			continue
		}
		if toks := d.tokens[other]; toks.Overlaps(need) {
			revoked++
			d.tokens[other] = toks.Subtract(need)
		}
	}
	d.tokens[owner] = d.tokens[owner].Union(need)
	d.serverGrants++
	d.revocations += int64(revoked)
	d.mu.Unlock()

	arrive := at + d.cfg.MsgCost
	_, served := d.service.Acquire(arrive, d.cfg.ServiceTime+sim.VTime(revoked)*d.cfg.RevokeCost)
	// Revoked holders may still be actively using their locks; acquire
	// waits them out and folds their release times into the grant.
	grant := d.tbl.acquire(owner, e, mode, served)
	ret := grant + d.cfg.MsgCost
	if d.obs != nil {
		if revoked > 0 {
			// Token revocation: Aux counts the holders whose cached tokens
			// this request invalidated.
			d.obs.Emit(obs.Event{
				T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRevoke,
				Peer: -1, Off: e.Off, Len: e.Len, Aux: int64(revoked),
			})
			d.obs.Count(owner, obs.MetricLockRevokes, int64(revoked))
		}
		d.obs.Emit(obs.Event{
			T: ret, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockGrant,
			Tag: mode.String(), Peer: -1, Off: e.Off, Len: e.Len,
			Dur: ret - at, Aux: int64(served),
		})
		d.obs.Count(owner, obs.MetricLockReqs, 1)
		d.obs.Observe(owner, obs.MetricLockWait, int64(ret-at))
	}
	return ret
}

// Unlock implements Manager: purely local — the token stays cached.
func (d *Distributed) Unlock(owner int, e interval.Extent, at sim.VTime) sim.VTime {
	if d.coord != nil {
		d.coord.Await(owner, at)
	}
	released := at + d.cfg.LocalCost
	if d.obs != nil {
		d.obs.Emit(obs.Event{
			T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRelease,
			Peer: -1, Off: e.Off, Len: e.Len, Dur: released - at,
		})
	}
	if err := d.tbl.release(owner, e, released); err != nil {
		panic(err)
	}
	return released
}

// Stats reports fast-path grants, server grants, and token revocations.
func (d *Distributed) Stats() (localGrants, serverGrants, revocations int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.localGrants, d.serverGrants, d.revocations
}

var _ Manager = (*Distributed)(nil)
