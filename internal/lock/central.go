package lock

import (
	"atomio/internal/interval"
	"atomio/internal/obs"
	"atomio/internal/sim"
)

// CentralConfig parameterizes a central lock manager.
type CentralConfig struct {
	// MsgCost is the one-way client<->manager message cost.
	MsgCost sim.VTime
	// ServiceTime is the manager's per-request processing time; all
	// requests funnel through one queue, which is the central manager's
	// scalability limit the paper points at ("Most of the existing
	// locking protocols is central managed and its scalability is,
	// hence, limited").
	ServiceTime sim.VTime
	// Shards partitions the manager's lock table across this many
	// offset-stripe shards (0 or 1 keeps the single table). Sharding
	// changes host-side concurrency and data-structure size only — the
	// simulated service model and every virtual timestamp are invariant
	// in the shard count.
	Shards int
	// ShardStripe is the offset-stripe width used to route requests to
	// shards; 0 selects DefaultShardStripe.
	ShardStripe int64
}

// Central is a centrally managed byte-range lock service.
type Central struct {
	cfg     CentralConfig
	service *sim.Resource
	tbl     grantTable
	coord   sim.Coord
	obs     *obs.Recorder
}

// NewCentral constructs a central lock manager.
func NewCentral(cfg CentralConfig) *Central {
	return &Central{
		cfg:     cfg,
		service: sim.NewResource("lockmgr"),
		tbl:     newGrantTable(cfg.Shards, cfg.ShardStripe),
	}
}

// Name implements Manager.
func (c *Central) Name() string { return "central" }

// Shards returns the number of lock-table shards (at least 1).
func (c *Central) Shards() int {
	if c.cfg.Shards > 1 {
		return c.cfg.Shards
	}
	return 1
}

// SetCoord routes the manager's shared-state transitions through a
// determinism coordinator (see sim.Coord); lock owners double as actor ids.
func (c *Central) SetCoord(co sim.Coord) {
	c.coord = co
	c.tbl.setCoord(co)
}

// SetObs routes lock events and metrics into a recorder. Events are
// emitted at the manager level, on the owner's own goroutine, never inside
// the grant table — so the trace is invariant in the shard count by
// construction.
func (c *Central) SetObs(o *obs.Recorder) { c.obs = o }

// Lock implements Manager: request travels to the manager, queues for
// service, then waits out conflicting holders; the reply travels back.
func (c *Central) Lock(owner int, e interval.Extent, mode Mode, at sim.VTime) sim.VTime {
	if c.coord != nil {
		c.coord.Await(owner, at)
	}
	if c.obs != nil {
		c.obs.Emit(obs.Event{
			T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRequest,
			Tag: mode.String(), Peer: -1, Off: e.Off, Len: e.Len,
		})
	}
	arrive := at + c.cfg.MsgCost
	_, served := c.service.Acquire(arrive, c.cfg.ServiceTime)
	grant := c.tbl.acquire(owner, e, mode, served)
	ret := grant + c.cfg.MsgCost
	if c.obs != nil {
		// Aux carries the ticket: the earliest-grant time that orders the
		// request in the table-wide (ticket, seq) grant order.
		c.obs.Emit(obs.Event{
			T: ret, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockGrant,
			Tag: mode.String(), Peer: -1, Off: e.Off, Len: e.Len,
			Dur: ret - at, Aux: int64(served),
		})
		c.obs.Count(owner, obs.MetricLockReqs, 1)
		c.obs.Observe(owner, obs.MetricLockWait, int64(ret-at))
	}
	return ret
}

// Unlock implements Manager: the release message travels to the manager
// and is processed after a fixed service delay; the caller does not wait.
// Releases deliberately do not book the shared request queue: the queue is
// FCFS in *real* call order, and letting a high-virtual-time release ratchet
// it would delay unrelated later requests that carry earlier virtual
// timestamps (see the conservative-timing notes in package sim).
func (c *Central) Unlock(owner int, e interval.Extent, at sim.VTime) sim.VTime {
	if c.coord != nil {
		c.coord.Await(owner, at)
	}
	served := at + c.cfg.MsgCost + c.cfg.ServiceTime
	if c.obs != nil {
		// Dur spans until the manager actually frees the range, so the
		// event's finish time is the instant waiters can be granted.
		c.obs.Emit(obs.Event{
			T: at, Actor: owner, Layer: obs.LayerLock, Kind: obs.KindLockRelease,
			Peer: -1, Off: e.Off, Len: e.Len, Dur: served - at,
		})
	}
	if err := c.tbl.release(owner, e, served); err != nil {
		panic(err)
	}
	return at + c.cfg.MsgCost
}

// Holders returns the number of currently granted locks.
func (c *Central) Holders() int { return c.tbl.holders() }

var _ Manager = (*Central)(nil)
