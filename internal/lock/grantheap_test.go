package lock

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

// TestWakeHeapPopsInTicketSeqOrder pins the heap to a sort oracle on random
// (ticket, seq) mixes, including heavy ticket ties where seq decides.
func TestWakeHeapPopsInTicketSeqOrder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		n := r.Intn(200)
		type key struct {
			ticket sim.VTime
			seq    int64
		}
		var want []key
		var h wakeHeap[key]
		for i := 0; i < n; i++ {
			k := key{ticket: sim.VTime(r.Intn(8)), seq: int64(r.Intn(1000))}
			want = append(want, k)
			h.push(k.ticket, k.seq, k)
			// Interleave pops to exercise mixed push/pop orders.
			if r.Intn(4) == 0 && h.len() > 0 {
				got, _ := h.pop()
				// Re-push so the final drain still sees every key.
				h.push(got.ticket, got.seq, got)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].ticket != want[j].ticket {
				return want[i].ticket < want[j].ticket
			}
			return want[i].seq < want[j].seq
		})
		for i, w := range want {
			got, ok := h.pop()
			if !ok {
				t.Fatalf("round %d: heap empty at %d/%d", round, i, n)
			}
			if got != w {
				t.Fatalf("round %d: pop %d = %+v, want %+v", round, i, got, w)
			}
		}
		if _, ok := h.pop(); ok {
			t.Fatalf("round %d: heap not drained", round)
		}
	}
}

// massWakeupOrder blocks n exclusive waiters with shuffled tickets behind
// one held lock, releases it, and returns the order in which the waiters
// were granted as each one releases in turn — the cascading mass wakeup the
// heap exists for.
func massWakeupOrder(t *testing.T, tbl grantTable, n int) []int {
	t.Helper()
	e := interval.Extent{Off: 0, Len: 100}
	tbl.acquire(999, e, Exclusive, 0)

	tickets := rand.New(rand.NewSource(int64(n))).Perm(n)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(owner int) {
			defer wg.Done()
			tbl.acquire(owner, e, Exclusive, sim.VTime(1000+tickets[owner]))
			mu.Lock()
			order = append(order, tickets[owner])
			mu.Unlock()
			if err := tbl.release(owner, e, sim.VTime(2000+len(order))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for tbl.waiters() < n {
	}
	if err := tbl.release(999, e, 500); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return order
}

// TestMassWakeupGrantsInTicketOrder pins the heap-based release hand-off to
// the table's deterministic contract: overlapping exclusive waiters are
// granted strictly in ticket order, on both the single-mutex table and the
// sharded one (the extent spans several stripes of the 4-shard table).
func TestMassWakeupGrantsInTicketOrder(t *testing.T) {
	const n = 60
	for name, tbl := range map[string]grantTable{
		"table":   newTable(),
		"sharded": newShardedTable(4, 16),
	} {
		order := massWakeupOrder(t, tbl, n)
		if len(order) != n {
			t.Fatalf("%s: %d grants, want %d", name, len(order), n)
		}
		for i := 1; i < len(order); i++ {
			if order[i-1] >= order[i] {
				t.Fatalf("%s: grant order %v not in ticket order at %d", name, order, i)
			}
		}
	}
}

// BenchmarkMassWakeup measures a release fanning out to m shared waiters
// blocked behind one exclusive lock — the mass-wakeup path the (ticket,
// seq) heap makes O(m log m) instead of the old O(m²) candidate rescan.
func BenchmarkMassWakeup(b *testing.B) {
	for _, m := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("waiters=%d", m), func(b *testing.B) {
			e := interval.Extent{Off: 0, Len: 1 << 20}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tbl := newTable()
				tbl.acquire(0, e, Exclusive, 0)
				var wg sync.WaitGroup
				for w := 0; w < m; w++ {
					wg.Add(1)
					go func(owner int) {
						defer wg.Done()
						tbl.acquire(owner, e, Shared, sim.VTime(owner))
					}(1 + w)
				}
				for tbl.waiters() < m {
				}
				b.StartTimer()
				if err := tbl.release(0, e, 1); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
			}
		})
	}
}
