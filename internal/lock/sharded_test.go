package lock

// Tests pinning the sharded lock table to the single-mutex table on
// randomized workloads whose spans straddle shard boundaries: grant
// outcomes, grant order, grant times, holder/waiter counts, and the
// observable release history must match the unsharded oracle exactly.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

func TestShardIDs(t *testing.T) {
	st := newShardedTable(4, 100)
	cases := []struct {
		e    interval.Extent
		want []int
	}{
		{ext(0, 50), []int{0}},                        // inside one stripe
		{ext(99, 1), []int{0}},                        // last byte of a stripe
		{ext(99, 2), []int{0, 1}},                     // straddles one boundary
		{ext(150, 200), []int{1, 2, 3}},               // three stripes
		{ext(50, 400), []int{0, 1, 2, 3}},             // exactly wraps into all
		{ext(350, 200), []int{0, 1, 3}},               // wraps mod S, ascending ids
		{ext(450, 60), []int{0, 1}},                   // wrap across stripe 4->5
		{ext(0, 10000), []int{0, 1, 2, 3}},            // covers everything
		{ext(400, 100), []int{0}},                     // stripe 4 maps back to shard 0
		{interval.Extent{Off: 250, Len: 0}, []int{2}}, // empty: home shard only
	}
	for _, c := range cases {
		got := st.shardIDs(c.e)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("shardIDs(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestFloorDivShardMod(t *testing.T) {
	if floorDiv(-1, 100) != -1 || floorDiv(-100, 100) != -1 || floorDiv(-101, 100) != -2 {
		t.Error("floorDiv must round toward negative infinity")
	}
	if shardMod(-1, 4) != 3 || shardMod(-4, 4) != 0 || shardMod(7, 4) != 3 {
		t.Error("shardMod must be non-negative")
	}
}

// scriptOp is one step of a recorded lock workload.
type scriptOp struct {
	acquire   bool
	id        int // acquire op id
	owner     int
	e         interval.Extent
	mode      Mode
	earliest  sim.VTime
	releaseOf int // release: the acquire op id whose lock is dropped
	releaseAt sim.VTime
}

// wokenGrant is one waiter granted by a release, identified by acquire op id.
type wokenGrant struct {
	id      int
	grantAt sim.VTime
}

// opOutcome is everything observable after one op.
type opOutcome struct {
	granted bool      // acquire: granted immediately
	grantAt sim.VTime // acquire: immediate grant time
	woken   []wokenGrant
	holders int
	waiters int
	excl    []sim.VTime // relLatest probes after the op
	shared  []sim.VTime
}

// scriptRunner applies ops to one grantTable, one at a time, waiting after
// each acquire until it either granted or registered as a waiter, and after
// each release until every waiter the release granted has reported back.
type scriptRunner struct {
	t       *testing.T
	tbl     grantTable
	pending map[int]chan sim.VTime // blocked acquire op id -> grant channel
	probes  []interval.Extent
}

func newScriptRunner(t *testing.T, tbl grantTable, probes []interval.Extent) *scriptRunner {
	return &scriptRunner{t: t, tbl: tbl, pending: make(map[int]chan sim.VTime), probes: probes}
}

func (r *scriptRunner) outcome(base opOutcome) opOutcome {
	base.holders = r.tbl.holders()
	base.waiters = r.tbl.waiters()
	for _, p := range r.probes {
		e, s := r.tbl.relLatest(p)
		base.excl = append(base.excl, e)
		base.shared = append(base.shared, s)
	}
	return base
}

func (r *scriptRunner) apply(op scriptOp) opOutcome {
	if op.acquire {
		before := r.tbl.waiters()
		ch := make(chan sim.VTime, 1)
		go func() { ch <- r.tbl.acquire(op.owner, op.e, op.mode, op.earliest) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			select {
			case g := <-ch:
				return r.outcome(opOutcome{granted: true, grantAt: g})
			default:
			}
			if r.tbl.waiters() == before+1 {
				r.pending[op.id] = ch
				return r.outcome(opOutcome{})
			}
			if time.Now().After(deadline) {
				r.t.Fatalf("acquire op %d neither granted nor blocked", op.id)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	before := r.tbl.waiters()
	if err := r.tbl.release(op.owner, op.e, op.releaseAt); err != nil {
		r.t.Fatalf("release of op %d: %v", op.releaseOf, err)
	}
	// The release stamped every grant before returning; wait for the
	// woken goroutines to report so the outcome is complete.
	wake := before - r.tbl.waiters()
	var woken []wokenGrant
	deadline := time.Now().Add(10 * time.Second)
	for len(woken) < wake {
		advanced := false
		for id, ch := range r.pending {
			select {
			case g := <-ch:
				woken = append(woken, wokenGrant{id: id, grantAt: g})
				delete(r.pending, id)
				advanced = true
			default:
			}
		}
		if !advanced {
			if time.Now().After(deadline) {
				r.t.Fatalf("release woke %d of %d waiters", len(woken), wake)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// Report in op-id order; the (id, grantAt) set is what must match.
	for i := range woken {
		for j := i + 1; j < len(woken); j++ {
			if woken[j].id < woken[i].id {
				woken[i], woken[j] = woken[j], woken[i]
			}
		}
	}
	return r.outcome(opOutcome{woken: woken})
}

// genScript builds a randomized workload by running it against the oracle
// table, so releases always target currently granted locks. It returns the
// ops, the oracle's outcome per op, and the probe extents used.
func genScript(t *testing.T, r *rand.Rand, oracle grantTable, nOps int) ([]scriptOp, []opOutcome, []interval.Extent) {
	probes := make([]interval.Extent, 6)
	for i := range probes {
		probes[i] = ext(int64(r.Intn(1600)), int64(r.Intn(500)))
	}
	run := newScriptRunner(t, oracle, probes)

	randExt := func() interval.Extent {
		// Lengths up to ~4 stripes of 100; one op in 12 is empty.
		if r.Intn(12) == 0 {
			return interval.Extent{Off: int64(r.Intn(1600)), Len: 0}
		}
		return ext(int64(r.Intn(1600)), 1+int64(r.Intn(400)))
	}
	randMode := func() Mode {
		if r.Intn(3) == 0 {
			return Shared
		}
		return Exclusive
	}

	type liveLock struct {
		id    int
		owner int
		e     interval.Extent
	}
	var (
		ops      []scriptOp
		outcomes []opOutcome
		live     []liveLock
		blocked  = map[int]scriptOp{}
		now      sim.VTime
	)
	apply := func(op scriptOp) {
		ops = append(ops, op)
		out := run.apply(op)
		outcomes = append(outcomes, out)
		if op.acquire {
			if out.granted {
				live = append(live, liveLock{id: op.id, owner: op.owner, e: op.e})
			} else {
				blocked[op.id] = op
			}
		} else {
			for _, w := range out.woken {
				bop := blocked[w.id]
				delete(blocked, w.id)
				live = append(live, liveLock{id: bop.id, owner: bop.owner, e: bop.e})
			}
		}
	}
	release := func(k int) {
		l := live[k]
		live = append(live[:k], live[k+1:]...)
		now += sim.VTime(1 + r.Intn(50))
		apply(scriptOp{owner: l.owner, e: l.e, releaseOf: l.id, releaseAt: now})
	}

	for i := 0; i < nOps; i++ {
		if len(live) > 0 && (r.Intn(3) == 0 || len(blocked) > 8) {
			release(r.Intn(len(live)))
			continue
		}
		now += sim.VTime(r.Intn(20))
		apply(scriptOp{
			acquire: true, id: i, owner: r.Intn(6),
			e: randExt(), mode: randMode(),
			// Duplicated tickets exercise the seq tie-break.
			earliest: now - sim.VTime(r.Intn(30)),
		})
	}
	// Drain: release everything so no goroutine stays blocked.
	for len(live) > 0 {
		release(r.Intn(len(live)))
	}
	if len(blocked) != 0 || oracle.waiters() != 0 || oracle.holders() != 0 {
		t.Fatalf("drain left %d blocked, %d waiting, %d held",
			len(blocked), oracle.waiters(), oracle.holders())
	}
	return ops, outcomes, probes
}

// TestShardedMatchesUnshardedOracle replays randomized workloads — spans
// straddling 2-4 shards, wrap-around spans, empty extents, shared and
// exclusive modes, duplicate tickets — against the single-mutex oracle and
// sharded tables of several widths, requiring identical grant outcomes,
// grant times, wake sets, counts, and release history at every step.
func TestShardedMatchesUnshardedOracle(t *testing.T) {
	const stripe = 100
	for round := 0; round < 4; round++ {
		r := rand.New(rand.NewSource(int64(1000 + round)))
		ops, want, probes := genScript(t, r, newTable(), 150)
		for _, shards := range []int{2, 3, 4, 8} {
			run := newScriptRunner(t, newShardedTable(shards, stripe), probes)
			for i, op := range ops {
				got := run.apply(op)
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want[i]) {
					t.Fatalf("round %d S=%d op %d (%+v):\n got %+v\nwant %+v",
						round, shards, i, op, got, want[i])
				}
			}
		}
	}
}

// TestCrossShardSpanBlocksAndGrants is the deterministic cross-shard
// scenario: a span over shards 2..3 conflicts with a span over shards 0..2
// only through their one shared shard, must block, and must inherit the
// holder's virtual release time on grant.
func TestCrossShardSpanBlocksAndGrants(t *testing.T) {
	st := newShardedTable(4, 100)
	g0 := st.acquire(0, ext(0, 280), Exclusive, 5) // shards 0,1,2
	if g0 != 5 {
		t.Fatalf("uncontended grant at %v, want 5", g0)
	}
	done := make(chan sim.VTime)
	go func() { done <- st.acquire(1, ext(250, 150), Exclusive, 7) }() // shards 2,3
	deadline := time.Now().Add(5 * time.Second)
	for st.waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("conflicting cross-shard span did not block")
		}
		time.Sleep(20 * time.Microsecond)
	}
	select {
	case g := <-done:
		t.Fatalf("granted at %v while conflicting span held", g)
	default:
	}
	// A span touching only shard 3 sails past the blocked waiter.
	if g := st.acquire(2, ext(300, 50), Exclusive, 3); g != 3 {
		t.Fatalf("disjoint shard-3 span granted at %v, want 3", g)
	}
	const releaseAt = 1000
	if err := st.release(0, ext(0, 280), releaseAt); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		t.Fatalf("granted at %v while shard-3 conflict still held", g)
	case <-time.After(20 * time.Millisecond):
	}
	// waiter [250,400) also overlaps [300,350): it needs both releases.
	if err := st.release(2, ext(300, 50), releaseAt+500); err != nil {
		t.Fatal(err)
	}
	if g := <-done; g != releaseAt+500 {
		t.Fatalf("cross-shard grant at %v, want %d (latest conflicting release)", g, releaseAt+500)
	}
	if err := st.release(1, ext(250, 150), releaseAt+600); err != nil {
		t.Fatal(err)
	}
	if st.holders() != 0 || st.waiters() != 0 {
		t.Fatalf("table not empty: %d held, %d waiting", st.holders(), st.waiters())
	}
}

// TestShardedReleaseUnknownLockErrs mirrors the unsharded error-path test,
// including the empty-extent home-shard walk.
func TestShardedReleaseUnknownLockErrs(t *testing.T) {
	st := newShardedTable(4, 100)
	if err := st.release(0, ext(10, 5), 1); err == nil {
		t.Fatal("release of unheld lock should fail")
	}
	empty := interval.Extent{Off: 250, Len: 0}
	if g := st.acquire(3, empty, Exclusive, 2); g != 2 {
		t.Fatalf("empty-extent grant at %v, want 2", g)
	}
	if err := st.release(3, empty, 3); err != nil {
		t.Fatalf("release of empty-extent lock: %v", err)
	}
	if st.holders() != 0 {
		t.Fatal("empty-extent lock not removed")
	}
}

// BenchmarkShardedAcquireRelease measures lock-service throughput versus
// shard count on a contended multi-stripe workload: goroutines
// acquire/release exclusive spans crossing two 4 KiB stripes in disjoint
// regions, so every operation takes the cross-shard path and all traffic
// lands on the same table. With one shard every operation serializes on one
// mutex and one release-history map; sharding splits both.
func BenchmarkShardedAcquireRelease(b *testing.B) {
	const stripe int64 = 4 << 10
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("S%d", shards), func(b *testing.B) {
			tbl := newGrantTable(shards, stripe)
			var owners atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				owner := int(owners.Add(1))
				base := int64(owner) << 20 // private 1 MiB region: 256 stripes
				var k int64
				for pb.Next() {
					e := interval.Extent{Off: base + (k%64)*stripe, Len: stripe + stripe/2}
					g := tbl.acquire(owner, e, Exclusive, sim.VTime(k))
					if err := tbl.release(owner, e, g+1); err != nil {
						b.Fatal(err)
					}
					k++
				}
			})
		})
	}
}

func TestManagerShardsAccessor(t *testing.T) {
	if got := newCentralForTest().Shards(); got != 1 {
		t.Errorf("unsharded central Shards() = %d, want 1", got)
	}
	c := NewCentral(CentralConfig{MsgCost: msg, ServiceTime: svc, Shards: 4, ShardStripe: 64})
	if got := c.Shards(); got != 4 {
		t.Errorf("central Shards() = %d, want 4", got)
	}
	if _, ok := c.tbl.(*shardedTable); !ok {
		t.Errorf("central with Shards:4 runs on %T, want *shardedTable", c.tbl)
	}
	d := NewDistributed(DistributedConfig{MsgCost: msg, ServiceTime: svc, Shards: 8, ShardStripe: 64})
	if got := d.Shards(); got != 8 {
		t.Errorf("distributed Shards() = %d, want 8", got)
	}
	if _, ok := d.tbl.(*shardedTable); !ok {
		t.Errorf("distributed with Shards:8 runs on %T, want *shardedTable", d.tbl)
	}
}
