package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

func TestReleaseMapBasic(t *testing.T) {
	var m releaseMap
	if m.latest(ext(0, 100)) != 0 {
		t.Fatal("empty map should report 0")
	}
	m.record(ext(10, 10), 100)
	if got := m.latest(ext(0, 100)); got != 100 {
		t.Fatalf("latest = %v", got)
	}
	if got := m.latest(ext(0, 10)); got != 0 {
		t.Fatalf("disjoint latest = %v", got)
	}
	if got := m.latest(ext(19, 1)); got != 100 {
		t.Fatalf("last byte latest = %v", got)
	}
}

func TestReleaseMapOverlapTakesMax(t *testing.T) {
	var m releaseMap
	m.record(ext(0, 100), 50)
	m.record(ext(40, 20), 30) // older release inside: must not lower
	if got := m.latest(ext(45, 1)); got != 50 {
		t.Fatalf("latest = %v, want 50", got)
	}
	m.record(ext(90, 20), 200)
	if got := m.latest(ext(95, 1)); got != 200 {
		t.Fatalf("latest = %v, want 200", got)
	}
	if got := m.latest(ext(0, 10)); got != 50 {
		t.Fatalf("latest = %v, want 50", got)
	}
}

func TestReleaseMapCoalesces(t *testing.T) {
	var m releaseMap
	m.record(ext(0, 10), 7)
	m.record(ext(10, 10), 7)
	m.record(ext(20, 10), 7)
	if len(m.entries) != 1 {
		t.Fatalf("entries = %d, want 1 after coalescing: %v", len(m.entries), m.entries)
	}
}

func TestReleaseMapQuickAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m releaseMap
		model := map[int64]sim.VTime{}
		for op := 0; op < 40; op++ {
			e := interval.Extent{Off: int64(r.Intn(80)), Len: int64(r.Intn(20))}
			at := sim.VTime(r.Intn(1000))
			m.record(e, at)
			for o := e.Off; o < e.End(); o++ {
				if at > model[o] {
					model[o] = at
				}
			}
			// Check random queries.
			q := interval.Extent{Off: int64(r.Intn(90)), Len: int64(r.Intn(20))}
			var want sim.VTime
			for o := q.Off; o < q.End(); o++ {
				if model[o] > want {
					want = model[o]
				}
			}
			if m.latest(q) != want {
				return false
			}
			// Entries stay sorted, disjoint, coalesced.
			for i := 1; i < len(m.entries); i++ {
				prev, cur := m.entries[i-1], m.entries[i]
				if prev.ext.End() > cur.ext.Off {
					return false
				}
				if prev.ext.End() == cur.ext.Off && prev.at == cur.at {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableSerializesAcrossRealTimeGaps(t *testing.T) {
	// The regression behind releaseMap: a lock acquired long after a
	// conflicting lock was released in *real* time must still start after
	// it in *virtual* time.
	c := newCentralForTest()
	g0 := c.Lock(0, ext(0, 100), Exclusive, 0)
	c.Unlock(0, ext(0, 100), g0+sim.Second) // released at virtual ~1s
	// Much later in real time, rank 1 asks for an overlapping range with
	// an early virtual timestamp.
	g1 := c.Lock(1, ext(50, 10), Exclusive, 0)
	if g1 < g0+sim.Second {
		t.Fatalf("grant %v ignores past virtual release %v", g1, g0+sim.Second)
	}
	c.Unlock(1, ext(50, 10), g1)
}

func TestTableRangeHistoryIsPerRange(t *testing.T) {
	// At the conflict-table level (below the manager's FCFS service
	// queue), only overlapping history delays a grant.
	tbl := newTable()
	tbl.acquire(0, ext(0, 100), Exclusive, 0)
	if err := tbl.release(0, ext(0, 100), sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := tbl.acquire(1, ext(50, 10), Exclusive, 0); got < sim.Second {
		t.Fatalf("overlapping grant %v ignores history", got)
	}
	if got := tbl.acquire(2, ext(200, 10), Exclusive, 0); got >= sim.Second {
		t.Fatalf("disjoint grant %v delayed by unrelated history", got)
	}
	if err := tbl.release(1, ext(50, 10), 2*sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := tbl.release(2, ext(200, 10), 2*sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSharedAfterSharedNotSerialized(t *testing.T) {
	c := newCentralForTest()
	g0 := c.Lock(0, ext(0, 100), Shared, 0)
	rel := g0 + sim.Second
	c.Unlock(0, ext(0, 100), rel)
	// A later shared lock need not serialize after the shared release: it
	// is granted promptly after its own request overheads...
	g1 := c.Lock(1, ext(0, 100), Shared, rel)
	if g1 >= rel+sim.Millisecond {
		t.Fatalf("shared-after-shared serialized: %v", g1)
	}
	c.Unlock(1, ext(0, 100), g1)
	// ...but an exclusive lock issued before the shared release time must
	// still land after it.
	g2 := c.Lock(2, ext(0, 100), Exclusive, 0)
	if g2 < rel {
		t.Fatalf("exclusive-after-shared not serialized: %v", g2)
	}
	c.Unlock(2, ext(0, 100), g2)
}
