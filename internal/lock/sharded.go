package lock

import (
	"fmt"
	"sync"
	"sync/atomic"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
	"atomio/internal/sim"
)

// DefaultShardStripe is the offset-stripe width used to route lock requests
// to shards when a config does not set one.
const DefaultShardStripe int64 = 64 << 10

// shardedTable partitions the byte-range lock table across S independently
// locked shards by offset stripe: byte b belongs to shard (b/stripe) mod S,
// and each shard owns its own interval index of granted locks, its own
// waiter index, and its own slice of the release history. Requests touch
// only the shards their extent covers, so non-overlapping traffic to
// different stripes never contends on a shared mutex and every per-shard
// structure stays a factor of S smaller than the single table's.
//
// A span covering several stripes is a cross-shard lock. Its extent is
// replicated into every covered shard's index (two overlapping extents
// always share a covered shard — the shard of any common byte — so
// per-shard overlap queries answer exactly the global conflict question,
// with the index's extent test filtering same-shard non-overlaps). Shard
// mutexes are always acquired in ascending shard order and released in
// reverse — the two-phase reserve/commit protocol that makes cross-shard
// operations deadlock-free: reserve = take every covered shard's mutex in
// order, commit = install the grant (or waiter) on all of them, then
// unwind.
//
// Grant decisions stay global: waiters carry a table-wide (ticket, seq)
// pair and a release grants eligible waiters in that order, exactly like
// the single-mutex table. A release must therefore hold not only the freed
// range's shards but every shard covered by a candidate waiter; the
// candidate set is only discoverable under lock, so the release grows its
// lock set to a fixpoint, dropping all mutexes before re-acquiring the
// larger ascending set (still deadlock-free, and at most S rounds since
// the set only grows). Virtual timing is invariant in the shard count:
// grant times are computed from the same conflict sets and the same
// release history as the single table, so a gated simulation produces
// byte-identical output for any S.
type shardedTable struct {
	stripe int64
	shards []*lockShard
	coord  sim.Coord

	seqMu   sync.Mutex
	nextSeq int64

	nHeld    atomic.Int64 // logical granted locks (replicas counted once)
	nWaiting atomic.Int64 // registered waiters
}

// lockShard is one offset-stripe partition: the granted and waiting extents
// covering the shard's stripes, and the shard's slice of the release
// history. All fields are guarded by mu.
type lockShard struct {
	mu        sync.Mutex
	granted   index.Index[*sheld]
	waiting   index.Index[*swaiter]
	exclRel   releaseMap
	sharedRel releaseMap
}

// sheld is one granted lock as the sharded table stores it: the logical
// lock plus the per-shard handles of its replicas.
type sheld struct {
	owner   int
	ext     interval.Extent
	mode    Mode
	shards  []int          // covered shard ids, ascending
	handles []index.Handle // replica handle per covered shard
}

// swaiter is one blocked request. grantAt is stamped and granted closed by
// the releaser, under every shard mutex the waiter's extent covers.
type swaiter struct {
	owner    int
	ext      interval.Extent
	mode     Mode
	minStart sim.VTime
	ticket   sim.VTime
	seq      int64
	grantAt  sim.VTime
	granted  chan struct{}
	shards   []int
	handles  []index.Handle
}

func newShardedTable(shards int, stripe int64) *shardedTable {
	if shards < 2 {
		panic(fmt.Sprintf("lock: sharded table needs at least 2 shards, got %d", shards))
	}
	if stripe <= 0 {
		panic(fmt.Sprintf("lock: shard stripe must be positive, got %d", stripe))
	}
	st := &shardedTable{stripe: stripe, shards: make([]*lockShard, shards)}
	for i := range st.shards {
		st.shards[i] = &lockShard{}
	}
	return st
}

// setCoord routes blocking and waking through a determinism coordinator.
func (st *shardedTable) setCoord(c sim.Coord) { st.coord = c }

// shardIDs returns the ascending list of shards e covers. Empty extents
// overlap nothing and conflict with nothing; they live in (and are released
// from) their offset's home shard only.
func (st *shardedTable) shardIDs(e interval.Extent) []int {
	s := len(st.shards)
	if e.Empty() {
		return []int{shardMod(floorDiv(e.Off, st.stripe), s)}
	}
	first := floorDiv(e.Off, st.stripe)
	last := floorDiv(e.End()-1, st.stripe)
	if last-first+1 >= int64(s) {
		ids := make([]int, s)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	covered := make([]bool, s)
	n := 0
	for k := first; k <= last; k++ {
		id := shardMod(k, s)
		if !covered[id] {
			covered[id] = true
			n++
		}
	}
	ids := make([]int, 0, n)
	for id, c := range covered {
		if c {
			ids = append(ids, id)
		}
	}
	return ids
}

// floorDiv is integer division rounding toward negative infinity, so stripe
// routing stays consistent for any offset.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// shardMod maps a stripe index to its shard, non-negative for any input.
func shardMod(k int64, s int) int {
	m := int(k % int64(s))
	if m < 0 {
		m += s
	}
	return m
}

// lockShards takes the mutexes of ids in ascending order (reserve phase).
// Every caller orders ids ascending, which is what makes cross-shard
// operations deadlock-free. On the hot path of every acquire/release: it
// must not allocate.
//
//atomiovet:hotpath
func (st *shardedTable) lockShards(ids []int) {
	for _, id := range ids {
		st.shards[id].mu.Lock()
	}
}

// unlockShards releases the mutexes of ids in descending order. On the
// hot path of every acquire/release: it must not allocate.
//
//atomiovet:hotpath
func (st *shardedTable) unlockShards(ids []int) {
	for i := len(ids) - 1; i >= 0; i-- {
		st.shards[ids[i]].mu.Unlock()
	}
}

// conflictsLocked reports whether any granted lock conflicts with
// (owner, e, mode). Callers hold the mutexes of ids = shardIDs(e). A
// cross-shard lock may be visited once per shared shard; the answer is a
// disjunction, so replicas cannot change it. Runs once per grant
// decision: it must not allocate.
//
//atomiovet:hotpath
func (st *shardedTable) conflictsLocked(owner int, e interval.Extent, mode Mode, ids []int) bool {
	for _, id := range ids {
		conflict := false
		st.shards[id].granted.Overlapping(e, func(_ interval.Extent, _ index.Handle, h *sheld) bool {
			if h.owner == owner {
				return true
			}
			if mode == Exclusive || h.mode == Exclusive {
				conflict = true
				return false
			}
			return true
		})
		if conflict {
			return true
		}
	}
	return false
}

// grantLocked installs (owner, e, mode) on every covered shard (commit
// phase) and returns the grant time: the accumulated floor plus the virtual
// release times of past conflicting locks on the range. Any past release
// overlapping e is recorded in some shard both cover, so the per-shard maxes
// combine to exactly the single table's answer. Callers hold the mutexes of
// ids.
func (st *shardedTable) grantLocked(owner int, e interval.Extent, mode Mode, floor sim.VTime, ids []int) sim.VTime {
	hd := &sheld{owner: owner, ext: e, mode: mode, shards: ids,
		handles: make([]index.Handle, 0, len(ids))}
	for _, id := range ids {
		hd.handles = append(hd.handles, st.shards[id].granted.Insert(e, hd))
	}
	st.nHeld.Add(1)
	start := floor
	for _, id := range ids {
		if at := st.shards[id].exclRel.latest(e); at > start {
			start = at
		}
		if mode == Exclusive {
			if at := st.shards[id].sharedRel.latest(e); at > start {
				start = at
			}
		}
	}
	return start
}

// acquire implements grantTable.acquire: reserve the covered shards in
// ascending order, grant immediately when conflict-free, otherwise register
// a waiter on every covered shard and block until a releaser stamps the
// grant.
func (st *shardedTable) acquire(owner int, e interval.Extent, mode Mode, earliest sim.VTime) sim.VTime {
	ids := st.shardIDs(e)
	st.lockShards(ids)
	if !st.conflictsLocked(owner, e, mode, ids) {
		g := st.grantLocked(owner, e, mode, earliest, ids)
		st.unlockShards(ids)
		return g
	}
	w := &swaiter{
		owner: owner, ext: e, mode: mode,
		minStart: earliest, ticket: earliest,
		granted: make(chan struct{}),
		shards:  ids, handles: make([]index.Handle, 0, len(ids)),
	}
	// seq is table-wide: the (ticket, seq) grant order spans shards. The
	// counter is taken while the waiter's shards are reserved, so under a
	// gate the assignment order matches the single table's.
	st.seqMu.Lock()
	w.seq = st.nextSeq
	st.nextSeq++
	st.seqMu.Unlock()
	for _, id := range ids {
		w.handles = append(w.handles, st.shards[id].waiting.Insert(e, w))
	}
	st.nWaiting.Add(1)
	if st.coord != nil {
		// Announced under the shard mutexes, like the matching Wake, so
		// the coordinator cannot admit anyone on a stale view of this
		// actor. The park itself happens after the shards unlock; the
		// wake token is buffered, so a Wake landing in that window (the
		// releaser only needs the shard mutexes) is not lost.
		st.coord.Block(owner)
		st.unlockShards(ids)
		st.coord.Park(owner, nil)
		return w.grantAt
	}
	st.unlockShards(ids)
	<-w.granted
	return w.grantAt
}

// release implements grantTable.release: drop owner's lock on exactly e,
// record the virtual release time in every covered shard's history, and
// grant newly eligible waiters in table-wide (ticket, seq) order.
func (st *shardedTable) release(owner int, e interval.Extent, releaseAt sim.VTime) error {
	base := st.shardIDs(e)
	// Candidate waiters (those overlapping the freed range) may span shards
	// beyond base, and granting one needs its shards locked too. The
	// candidate set is only visible under lock, so grow the held set to a
	// fixpoint: lock, collect, and if candidates need more shards, drop
	// everything and re-lock the larger ascending set. The set only grows,
	// so this terminates within S rounds; candidates are re-collected each
	// round, so grants that happened while unlocked are never acted on.
	locked := base
	var cands []*swaiter
	for {
		st.lockShards(locked)
		cands = cands[:0]
		seen := make(map[*swaiter]bool)
		for _, id := range base {
			st.shards[id].waiting.Overlapping(e, func(_ interval.Extent, _ index.Handle, w *swaiter) bool {
				if !seen[w] {
					seen[w] = true
					cands = append(cands, w)
				}
				return true
			})
		}
		need := unionShards(len(st.shards), locked, cands)
		if len(need) == len(locked) {
			break
		}
		st.unlockShards(locked)
		locked = need
	}
	defer st.unlockShards(locked)

	// Locate owner's earliest-registered lock on exactly e in the freed
	// range's first shard — replicas exist on every covered shard, and
	// per-shard insertion order preserves the global one, so this is the
	// same lock the single table's scan finds. Empty extents overlap
	// nothing and need the full walk of their home shard.
	var target *sheld
	locate := func(_ interval.Extent, _ index.Handle, h *sheld) bool {
		if h.owner == owner && h.ext == e {
			target = h
			return false
		}
		return true
	}
	firstShard := st.shards[base[0]]
	if e.Empty() {
		firstShard.granted.All(locate)
	} else {
		firstShard.granted.Overlapping(e, locate)
	}
	if target == nil {
		return fmt.Errorf("lock: owner %d does not hold %v", owner, e)
	}
	for i, id := range target.shards {
		st.shards[id].granted.Delete(target.ext, target.handles[i])
	}
	st.nHeld.Add(-1)
	st.recordRelease(e, target.mode, releaseAt)

	// Stamp the release time on every candidate, then grant candidates in
	// (ticket, seq) order via the wake heap, discarding any that conflict
	// when popped — the same hand-off as the single table, over the same
	// candidate set (conflicts are monotone within the loop; see wakeHeap).
	var wake wakeHeap[*swaiter]
	for _, w := range cands {
		if w.minStart < releaseAt {
			w.minStart = releaseAt
		}
		wake.push(w.ticket, w.seq, w)
	}
	for {
		w, ok := wake.pop()
		if !ok {
			return nil
		}
		if st.conflictsLocked(w.owner, w.ext, w.mode, w.shards) {
			continue
		}
		for i, id := range w.shards {
			st.shards[id].waiting.Delete(w.ext, w.handles[i])
		}
		st.nWaiting.Add(-1)
		w.grantAt = st.grantLocked(w.owner, w.ext, w.mode, w.minStart, w.shards)
		if st.coord != nil {
			// Published before the waiter can run (we still hold its
			// shards), preserving the admission invariant.
			st.coord.Wake(w.owner, w.grantAt)
		}
		close(w.granted)
	}
}

// clipStripeFactor bounds per-release history-record work: spans covering
// up to clipStripeFactor stripes per shard are clipped stripe by stripe;
// wider ones fall back to whole-extent replication.
const clipStripeFactor = 4

// recordRelease notes e's virtual release time in the sharded range
// history. Narrow spans are clipped to the bytes each covered shard owns —
// each stripe's history goes to its owning shard, so per-shard maps stay a
// factor of S smaller than the single table's. Very wide spans (more than
// clipStripeFactor stripes per shard — a whole-file lock covers thousands)
// record the full extent on every shard instead: one entry per shard, O(S)
// records rather than one per covered stripe. Both forms answer latest()
// exactly: any past release overlapping a later request shares a covered
// shard with it, and recorded pieces never claim bytes their release did
// not cover. Callers hold the mutexes of e's covered shards.
func (st *shardedTable) recordRelease(e interval.Extent, mode Mode, releaseAt sim.VTime) {
	if e.Empty() {
		return
	}
	rm := func(id int) *releaseMap {
		if mode == Exclusive {
			return &st.shards[id].exclRel
		}
		return &st.shards[id].sharedRel
	}
	s := len(st.shards)
	first := floorDiv(e.Off, st.stripe)
	last := floorDiv(e.End()-1, st.stripe)
	if last-first+1 > clipStripeFactor*int64(s) {
		for id := 0; id < s; id++ {
			rm(id).record(e, releaseAt)
		}
		return
	}
	for k := first; k <= last; k++ {
		off, end := k*st.stripe, (k+1)*st.stripe
		if e.Off > off {
			off = e.Off
		}
		if e.End() < end {
			end = e.End()
		}
		rm(shardMod(k, s)).record(interval.Extent{Off: off, Len: end - off}, releaseAt)
	}
}

// unionShards merges an ascending id list with every candidate's covered
// shards, returning the ascending union. s is the shard count.
func unionShards(s int, ids []int, cands []*swaiter) []int {
	covered := make([]bool, s)
	n := 0
	add := func(id int) {
		if !covered[id] {
			covered[id] = true
			n++
		}
	}
	for _, id := range ids {
		add(id)
	}
	for _, w := range cands {
		for _, id := range w.shards {
			add(id)
		}
	}
	out := make([]int, 0, n)
	for id, c := range covered {
		if c {
			out = append(out, id)
		}
	}
	return out
}

// holders returns the number of logical granted locks.
func (st *shardedTable) holders() int { return int(st.nHeld.Load()) }

// waiters returns the number of blocked requests.
func (st *shardedTable) waiters() int { return int(st.nWaiting.Load()) }

// relLatest reports the release history over e: the per-shard maxima
// combine to the single table's answer (see grantLocked).
func (st *shardedTable) relLatest(e interval.Extent) (excl, shared sim.VTime) {
	ids := st.shardIDs(e)
	st.lockShards(ids)
	defer st.unlockShards(ids)
	for _, id := range ids {
		if at := st.shards[id].exclRel.latest(e); at > excl {
			excl = at
		}
		if at := st.shards[id].sharedRel.latest(e); at > shared {
			shared = at
		}
	}
	return excl, shared
}

var _ grantTable = (*shardedTable)(nil)
