package mpi

import (
	"fmt"
	"math/rand"
	"testing"

	"atomio/internal/sim"
)

func TestStressRandomPointToPoint(t *testing.T) {
	// Every rank sends a deterministic pseudo-random set of messages to
	// every other rank, then receives exactly what it expects, in
	// per-sender FIFO order. Exercises the matching queue under load.
	const p, perPair = 6, 25
	run(t, p, func(c *Comm) error {
		// Phase 1: everybody sends.
		for dst := 0; dst < p; dst++ {
			if dst == c.Rank() {
				continue
			}
			r := rand.New(rand.NewSource(int64(c.Rank()*100 + dst)))
			for k := 0; k < perPair; k++ {
				n := r.Intn(200)
				payload := make([]byte, n)
				for i := range payload {
					payload[i] = byte(r.Intn(256))
				}
				c.Send(dst, k%3, payload)
			}
		}
		// Phase 2: everybody receives and checks, per sender, per tag.
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			r := rand.New(rand.NewSource(int64(src*100 + c.Rank())))
			expect := make([][]byte, 0, perPair)
			tags := make([]int, 0, perPair)
			for k := 0; k < perPair; k++ {
				n := r.Intn(200)
				payload := make([]byte, n)
				for i := range payload {
					payload[i] = byte(r.Intn(256))
				}
				expect = append(expect, payload)
				tags = append(tags, k%3)
			}
			// Receive per tag: FIFO within (src, tag).
			for tag := 0; tag < 3; tag++ {
				for k := range expect {
					if tags[k] != tag {
						continue
					}
					data, st := c.Recv(src, tag)
					if st.Source != src || len(data) != len(expect[k]) {
						return fmt.Errorf("rank %d from %d tag %d: got %d bytes, want %d",
							c.Rank(), src, tag, len(data), len(expect[k]))
					}
					for i := range data {
						if data[i] != expect[k][i] {
							return fmt.Errorf("payload corruption from %d", src)
						}
					}
				}
			}
		}
		return nil
	})
}

func TestStressCollectiveStorm(t *testing.T) {
	// Many different collectives back to back on several communicators:
	// the internal tag sequencing must keep everything separate.
	run(t, 6, func(c *Comm) error {
		dup := c.Dup()
		sub := c.Split(c.Rank()%2, 0)
		for iter := 0; iter < 20; iter++ {
			sum := DecodeInt64s(c.Allreduce(EncodeInt64s(int64(iter)), OpSumInt64))[0]
			if sum != int64(iter*c.Size()) {
				return fmt.Errorf("world allreduce iter %d = %d", iter, sum)
			}
			all := dup.Allgather(EncodeInt64s(int64(c.Rank() * iter)))
			for r, b := range all {
				if DecodeInt64s(b)[0] != int64(r*iter) {
					return fmt.Errorf("dup allgather corrupted")
				}
			}
			subSum := DecodeInt64s(sub.Allreduce(EncodeInt64s(1), OpSumInt64))[0]
			if subSum != int64(sub.Size()) {
				return fmt.Errorf("sub allreduce = %d", subSum)
			}
			if iter%5 == 0 {
				c.Barrier()
			}
		}
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank()) // two comms of 4
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size = %d", quarter.Size())
		}
		// Identify my partner's world rank through the nested comm.
		partner := quarter.WorldRank(1 - quarter.Rank())
		want := c.Rank() ^ 1 // pairs (0,1),(2,3),...
		if partner != want {
			return fmt.Errorf("rank %d paired with %d, want %d", c.Rank(), partner, want)
		}
		quarter.Barrier()
		return nil
	})
}

func TestClockMonotonicThroughCollectives(t *testing.T) {
	cfg := Config{
		Procs:        5,
		Net:          sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 26},
		SendOverhead: sim.Microsecond,
		RecvOverhead: sim.Microsecond,
	}
	if _, err := Run(cfg, func(c *Comm) error {
		prev := c.Now()
		ops := []func(){
			func() { c.Barrier() },
			func() { c.Bcast(make([]byte, 100), 2) },
			func() { c.Allgather(make([]byte, 64)) },
			func() { c.Allreduce(EncodeInt64s(1, 2, 3), OpSumInt64) },
			func() { c.Alltoall(make([][]byte, c.Size())) },
			func() { c.Scan(EncodeInt64s(int64(c.Rank())), OpMaxInt64) },
		}
		for i, op := range ops {
			op()
			if c.Now() < prev {
				return fmt.Errorf("clock went backwards after op %d", i)
			}
			prev = c.Now()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherVolumeScalesLinearly(t *testing.T) {
	// The ring allgather moves (P-1) blocks per rank; with a pure
	// bandwidth network, doubling the block size should roughly double
	// the completion time. Pins the cost model the handshake analysis
	// relies on.
	timeFor := func(blockSize int) sim.VTime {
		cfg := Config{Procs: 4, Net: sim.LinearCost{BytesPerSec: 1 << 20}}
		res, err := Run(cfg, func(c *Comm) error {
			c.Allgather(make([]byte, blockSize))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxTime
	}
	t1 := timeFor(1 << 10)
	t2 := timeFor(1 << 11)
	ratio := float64(t2) / float64(t1)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("allgather time ratio = %.2f, want ~2 (t1=%v t2=%v)", ratio, t1, t2)
	}
}

func TestMailboxPendingDrains(t *testing.T) {
	// After a balanced run no messages may remain queued.
	cfg := Config{Procs: 3}
	w := newWorld(cfg.withDefaults())
	_ = w
	run(t, 3, func(c *Comm) error {
		c.Send((c.Rank()+1)%3, 0, []byte("x"))
		c.Recv((c.Rank()+2)%3, 0)
		c.Barrier()
		return nil
	})
}
