package mpi

import (
	"fmt"
	"sort"

	"atomio/internal/sim"
)

// Comm is a communicator: an ordered group of ranks with a private message
// context, so that traffic on one communicator can never be matched by
// receives on another. A Comm value is owned by a single rank goroutine and
// must not be shared between goroutines.
type Comm struct {
	world *World
	ctx   int   // user-visible context id
	rank  int   // this process's rank within the communicator
	group []int // communicator rank -> world rank
	clock *sim.Clock

	internalSeq int // sequence number for internal collective tags

	// curOp labels the collective currently executing on this rank so its
	// internal messages carry the collective's name in trace events. Only
	// the outermost collective sets it (Allreduce's inner Reduce+Bcast
	// traffic stays attributed to "allreduce"). Empty means point-to-point.
	curOp string
}

// beginOp marks the start of a collective for event attribution and returns
// the matching end function. Nested collectives keep the outermost label;
// with tracing off this is a nil test and a static closure.
func (c *Comm) beginOp(name string) func() {
	if c.world.cfg.Obs == nil || c.curOp != "" {
		return func() {}
	}
	c.curOp = name
	return func() { c.curOp = "" }
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Clock returns the calling rank's virtual clock. Higher layers (the file
// system client, the lock managers) advance it as they charge I/O time.
func (c *Comm) Clock() *sim.Clock { return c.clock }

// Now returns the rank's current virtual time.
func (c *Comm) Now() sim.VTime { return c.clock.Now() }

// WorldRank returns the world rank backing communicator rank r.
func (c *Comm) WorldRank(r int) int {
	c.checkRank(r)
	return c.group[r]
}

func (c *Comm) checkRank(r int) {
	if r < 0 || r >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", r, len(c.group)))
	}
}

func (c *Comm) checkTag(tag int) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: application tags must be non-negative, got %d", tag))
	}
}

// internalCtx is the context id used for collective traffic, disjoint from
// user point-to-point traffic on the same communicator.
func (c *Comm) internalCtx() int { return -c.ctx }

// Dup returns a communicator with the same group but a fresh context, so
// that libraries can communicate without colliding with application traffic.
// Dup is collective: every rank of the communicator must call it.
func (c *Comm) Dup() *Comm {
	// Rank 0 allocates the context and broadcasts it.
	var buf []byte
	if c.rank == 0 {
		buf = putInt64s(nil, int64(c.world.allocCtx()))
	}
	buf = c.Bcast(buf, 0)
	newCtx := int(getInt64s(buf, 1)[0])
	return &Comm{world: c.world, ctx: newCtx, rank: c.rank, group: c.group, clock: c.clock}
}

// Split partitions the communicator by color, ordering ranks within each new
// communicator by (key, old rank), exactly as MPI_Comm_split does. Split is
// collective. A negative color means "do not participate"; such ranks
// receive nil.
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) from everybody.
	all := c.Allgather(putInt64s(nil, int64(color), int64(key)))

	type member struct{ color, key, oldRank int }
	members := make([]member, 0, len(all))
	for r, b := range all {
		v := getInt64s(b, 2)
		members = append(members, member{color: int(v[0]), key: int(v[1]), oldRank: r})
	}

	// Distinct non-negative colors in ascending order get contexts in a
	// deterministic order; rank 0 of the parent allocates and broadcasts.
	colorSet := map[int]bool{}
	for _, m := range members {
		if m.color >= 0 {
			colorSet[m.color] = true
		}
	}
	colors := make([]int, 0, len(colorSet))
	for col := range colorSet {
		colors = append(colors, col)
	}
	sort.Ints(colors)

	var ctxBuf []byte
	if c.rank == 0 {
		vals := make([]int64, len(colors))
		for i := range colors {
			vals[i] = int64(c.world.allocCtx())
		}
		ctxBuf = putInt64s(nil, vals...)
	}
	ctxBuf = c.Bcast(ctxBuf, 0)
	ctxs := getInt64s(ctxBuf, len(colors))

	if color < 0 {
		return nil
	}
	ctxIdx := sort.SearchInts(colors, color)
	newCtx := int(ctxs[ctxIdx])

	// Build my group, ordered by (key, old rank).
	var mine []member
	for _, m := range members {
		if m.color == color {
			mine = append(mine, m)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].oldRank < mine[j].oldRank
	})
	group := make([]int, len(mine))
	newRank := -1
	for i, m := range mine {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			newRank = i
		}
	}
	return &Comm{world: c.world, ctx: newCtx, rank: newRank, group: group, clock: c.clock}
}
