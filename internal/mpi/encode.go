package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Typed payload helpers. Messages are byte slices; these helpers encode and
// decode the small fixed-width integer payloads the atomicity handshakes
// exchange (file offsets, counts, colors). Little-endian throughout.

// putInt64s appends vals to buf in little-endian order and returns buf.
func putInt64s(buf []byte, vals ...int64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// getInt64s decodes exactly n little-endian int64s from buf.
func getInt64s(buf []byte, n int) []int64 {
	if len(buf) < 8*n {
		panic(fmt.Sprintf("mpi: payload too short: %d bytes, want %d", len(buf), 8*n))
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// EncodeInt64s encodes vals as a message payload.
func EncodeInt64s(vals ...int64) []byte { return putInt64s(nil, vals...) }

// DecodeInt64s decodes every int64 in the payload.
func DecodeInt64s(buf []byte) []int64 {
	if len(buf)%8 != 0 {
		panic(fmt.Sprintf("mpi: int64 payload length %d not a multiple of 8", len(buf)))
	}
	return getInt64s(buf, len(buf)/8)
}

// encodeBundle serializes a set of (rank, payload) pairs for tree-based
// gather. Layout: count, then per entry rank, length, bytes.
func encodeBundle(m map[int][]byte) []byte {
	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(ranks)))
	for _, r := range ranks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m[r])))
		buf = append(buf, m[r]...)
	}
	return buf
}

// decodeBundle reverses encodeBundle.
func decodeBundle(buf []byte) map[int][]byte {
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	out := make(map[int][]byte, n)
	for i := uint32(0); i < n; i++ {
		r := binary.LittleEndian.Uint32(buf)
		l := binary.LittleEndian.Uint32(buf[4:])
		buf = buf[8:]
		d := make([]byte, l)
		copy(d, buf[:l])
		buf = buf[l:]
		out[int(r)] = d
	}
	return out
}

// Standard reduction operators over little-endian int64 payloads.

// OpSumInt64 adds int64 vectors elementwise.
func OpSumInt64(dst, src []byte) { combineInt64(dst, src, func(a, b int64) int64 { return a + b }) }

// OpMaxInt64 takes the elementwise maximum of int64 vectors.
func OpMaxInt64(dst, src []byte) {
	combineInt64(dst, src, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// OpMinInt64 takes the elementwise minimum of int64 vectors.
func OpMinInt64(dst, src []byte) {
	combineInt64(dst, src, func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	})
}

func combineInt64(dst, src []byte, f func(a, b int64) int64) {
	if len(dst) != len(src) || len(dst)%8 != 0 {
		panic("mpi: int64 reduce payload length mismatch")
	}
	for i := 0; i < len(dst); i += 8 {
		a := int64(binary.LittleEndian.Uint64(dst[i:]))
		b := int64(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], uint64(f(a, b)))
	}
}

// OpBOr is a bytewise bitwise-or, used to reduce boolean bitmaps such as the
// overlap matrix W of the graph-coloring strategy.
func OpBOr(dst, src []byte) {
	if len(dst) != len(src) {
		panic("mpi: bor payload length mismatch")
	}
	for i := range dst {
		dst[i] |= src[i]
	}
}
