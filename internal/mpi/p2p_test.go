package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"atomio/internal/sim"
)

func run(t *testing.T, procs int, body RankFunc) *Result {
	t.Helper()
	res, err := Run(Config{Procs: procs, Timeout: 30 * time.Second}, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestRunSingleRank(t *testing.T) {
	res := run(t, 1, func(c *Comm) error {
		if c.Rank() != 0 || c.Size() != 1 {
			return fmt.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		c.Barrier()
		return nil
	})
	if res.MaxTime != 0 {
		t.Fatalf("free single-rank run advanced time to %v", res.MaxTime)
	}
}

func TestRunRejectsBadProcs(t *testing.T) {
	if _, err := Run(Config{Procs: 0}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("expected error for Procs=0")
	}
}

func TestRunPropagatesError(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	re, ok := err.(*RankError)
	if !ok || re.Rank != 1 {
		t.Fatalf("err = %v, want RankError{1}", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestRunDeadlockTimeout(t *testing.T) {
	_, err := Run(Config{Procs: 2, Timeout: 200 * time.Millisecond}, func(c *Comm) error {
		c.Recv(AnySource, 0) // nobody sends: deadlock
		return nil
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestSendRecvBasic(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			data, st := c.Recv(0, 7)
			if !bytes.Equal(data, []byte("hello")) {
				return fmt.Errorf("data = %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Len != 5 {
				return fmt.Errorf("status = %+v", st)
			}
		}
		return nil
	})
}

func TestSendCopiesPayload(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			c.Send(1, 0, buf)
			copy(buf, "zzzz") // must not affect the in-flight message
		} else {
			data, _ := c.Recv(0, 0)
			if string(data) != "aaaa" {
				return fmt.Errorf("message mutated after send: %q", data)
			}
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive out of send order by tag.
			d2, _ := c.Recv(0, 2)
			d1, _ := c.Recv(0, 1)
			if string(d1) != "one" || string(d2) != "two" {
				return fmt.Errorf("tag matching broken: %q %q", d1, d2)
			}
		}
		return nil
	})
}

func TestPerSenderFIFO(t *testing.T) {
	const n = 50
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, EncodeInt64s(int64(i)))
			}
		} else {
			for i := 0; i < n; i++ {
				d, _ := c.Recv(0, 3)
				if got := DecodeInt64s(d)[0]; got != int64(i) {
					return fmt.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				_, st := c.Recv(AnySource, AnyTag)
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
		} else {
			c.Send(0, c.Rank()+10, nil)
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		right, left := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		data, _ := c.Sendrecv(right, 5, EncodeInt64s(int64(c.Rank())), left, 5)
		if got := DecodeInt64s(data)[0]; got != int64(left) {
			return fmt.Errorf("got %d from left, want %d", got, left)
		}
		return nil
	})
}

func TestIsendIrecvWait(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 9, []byte("async"))
			req.Wait()
		} else {
			req := c.Irecv(0, 9)
			data, st := req.Wait()
			if string(data) != "async" || st.Source != 0 {
				return fmt.Errorf("irecv got %q from %d", data, st.Source)
			}
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Irecv(1, 0)
			c.Send(1, 1, nil) // tell partner to go
			for !req.Test() {
				time.Sleep(time.Millisecond)
			}
			req.Wait()
		} else {
			c.Recv(0, 1)
			c.Send(0, 0, []byte("x"))
		}
		return nil
	})
}

func TestWaitAll(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			a := c.Irecv(1, 0)
			b := c.Irecv(1, 1)
			WaitAll(a, b)
		} else {
			WaitAll(c.Isend(0, 0, nil), c.Isend(0, 1, nil))
		}
		return nil
	})
}

func TestInvalidRankPanics(t *testing.T) {
	_, err := Run(Config{Procs: 1}, func(c *Comm) error {
		c.Send(5, 0, nil)
		return nil
	})
	if err == nil {
		t.Fatal("expected panic-derived error for invalid rank")
	}
}

func TestNegativeTagPanics(t *testing.T) {
	// Rank 1 blocks in Recv; the abort from rank 0's panic must unwind it
	// promptly rather than leaving the run to time out.
	start := time.Now()
	_, err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, -3, nil)
		} else {
			c.Recv(0, AnyTag)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic-derived error for negative tag")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; blocked rank was not unwound", elapsed)
	}
}

func TestAbortUnblocksPeersAndReportsRootCause(t *testing.T) {
	_, err := Run(Config{Procs: 4}, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("root cause")
		}
		c.Recv(AnySource, 0) // would deadlock without abort
		return nil
	})
	re, ok := err.(*RankError)
	if !ok || re.Rank != 2 {
		t.Fatalf("err = %v, want root-cause RankError from rank 2", err)
	}
}

func TestRecvTiming(t *testing.T) {
	// 1 KiB message over a 1 MiB/s link with 10µs latency: the receiver's
	// clock must land at sentAt + latency + 1024/2^20 s ≈ 986.6µs.
	cfg := Config{
		Procs:        2,
		Net:          sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 20},
		SendOverhead: sim.Microsecond,
		RecvOverhead: 2 * sim.Microsecond,
	}
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]byte, 1024))
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// sender: 1µs send overhead. receiver: max(0, 1µs + 10µs + 976.56µs) + 2µs.
	transfer := sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 20}.Cost(1024)
	want := sim.Microsecond + transfer + 2*sim.Microsecond
	if res.Times[1] != want {
		t.Fatalf("receiver clock = %v, want %v", res.Times[1], want)
	}
	if res.Times[0] != sim.Microsecond {
		t.Fatalf("sender clock = %v, want 1µs", res.Times[0])
	}
}
