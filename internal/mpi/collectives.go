package mpi

// Collective operations. All of them are collective in the MPI sense: every
// rank of the communicator must call them in the same order. Each call uses
// a fresh internal tag drawn from a per-communicator sequence, which is
// identical on all ranks precisely because the calls are collective, so
// successive collectives can never match each other's traffic.
//
// The algorithms are the classic ones, chosen so the number and size of
// messages — and therefore the virtual-time cost of a handshake — track what
// production MPI libraries do:
//
//	Barrier    dissemination, ceil(log2 P) rounds
//	Bcast      binomial tree
//	Gather     binomial tree (variable-size payloads carried in bundles)
//	Allgather  ring, P-1 steps (handles variable sizes, i.e. allgatherv)
//	Reduce     binomial tree
//	Allreduce  reduce + broadcast
//	Scatter    root-directed sends
//	Alltoall   pairwise exchange, P-1 steps
//	Scan       linear chain

// nextInternalTag returns the tag for the next collective call.
func (c *Comm) nextInternalTag() int {
	t := c.internalSeq
	c.internalSeq++
	return t
}

// Barrier blocks until every rank of the communicator has entered it.
// It uses the dissemination algorithm: in round k each rank signals
// rank+2^k (mod P) and waits for a signal from rank-2^k (mod P).
func (c *Comm) Barrier() {
	defer c.beginOp("barrier")()
	tag := c.nextInternalTag()
	p := c.Size()
	if p == 1 {
		return
	}
	ctx := c.internalCtx()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		c.send(ctx, to, tag, nil)
		c.recv(ctx, from, tag)
	}
}

// Bcast distributes root's data to every rank along a binomial tree and
// returns it. Non-root ranks pass nil (any value they pass is ignored).
func (c *Comm) Bcast(data []byte, root int) []byte {
	defer c.beginOp("bcast")()
	c.checkRank(root)
	tag := c.nextInternalTag()
	p := c.Size()
	if p == 1 {
		return data
	}
	ctx := c.internalCtx()
	vrank := (c.rank - root + p) % p

	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := c.rank - mask
			if src < 0 {
				src += p
			}
			data, _ = c.recv(ctx, src, tag)
			break
		}
		mask *= 2
	}
	mask /= 2
	for mask > 0 {
		if vrank+mask < p {
			dst := c.rank + mask
			if dst >= p {
				dst -= p
			}
			c.send(ctx, dst, tag, data)
		}
		mask /= 2
	}
	return data
}

// Gather collects every rank's data at root along a binomial tree. At root
// it returns a slice indexed by rank; elsewhere it returns nil. Payload
// sizes may differ between ranks (MPI_Gatherv behaviour).
func (c *Comm) Gather(data []byte, root int) [][]byte {
	defer c.beginOp("gather")()
	c.checkRank(root)
	tag := c.nextInternalTag()
	p := c.Size()
	ctx := c.internalCtx()
	vrank := (c.rank - root + p) % p

	// Accumulate (origin rank, payload) pairs from my binomial subtree.
	acc := map[int][]byte{c.rank: data}
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			// Send my accumulated subtree to my parent and stop.
			dst := c.rank - mask
			if dst < 0 {
				dst += p
			}
			c.send(ctx, dst, tag, encodeBundle(acc))
			return nil
		}
		if vrank+mask < p {
			src := c.rank + mask
			if src >= p {
				src -= p
			}
			b, _ := c.recv(ctx, src, tag)
			for r, d := range decodeBundle(b) {
				acc[r] = d
			}
		}
		mask *= 2
	}
	out := make([][]byte, p)
	for r, d := range acc {
		out[r] = d
	}
	return out
}

// Allgather collects every rank's data on every rank, indexed by rank, using
// the ring algorithm. Payload sizes may differ between ranks, so this also
// serves as MPI_Allgatherv.
func (c *Comm) Allgather(data []byte) [][]byte {
	defer c.beginOp("allgather")()
	tag := c.nextInternalTag()
	p := c.Size()
	out := make([][]byte, p)
	out[c.rank] = append([]byte(nil), data...)
	if p == 1 {
		return out
	}
	ctx := c.internalCtx()
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	// In step s we forward the block that originated at rank-s.
	for s := 0; s < p-1; s++ {
		sendIdx := (c.rank - s + p) % p
		c.send(ctx, right, tag, out[sendIdx])
		b, _ := c.recv(ctx, left, tag)
		recvIdx := (c.rank - s - 1 + p) % p
		out[recvIdx] = b
	}
	return out
}

// ReduceOp combines src into dst elementwise; both slices have equal length.
type ReduceOp func(dst, src []byte)

// Reduce combines every rank's equal-length data with op along a binomial
// tree rooted at root. At root it returns the reduction; elsewhere nil.
func (c *Comm) Reduce(data []byte, op ReduceOp, root int) []byte {
	defer c.beginOp("reduce")()
	c.checkRank(root)
	tag := c.nextInternalTag()
	p := c.Size()
	ctx := c.internalCtx()
	vrank := (c.rank - root + p) % p

	acc := append([]byte(nil), data...)
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			dst := c.rank - mask
			if dst < 0 {
				dst += p
			}
			c.send(ctx, dst, tag, acc)
			return nil
		}
		if vrank+mask < p {
			src := c.rank + mask
			if src >= p {
				src -= p
			}
			b, _ := c.recv(ctx, src, tag)
			if len(b) != len(acc) {
				panic("mpi: Reduce length mismatch between ranks")
			}
			op(acc, b)
		}
		mask *= 2
	}
	return acc
}

// Allreduce combines every rank's equal-length data with op and returns the
// result on every rank (reduce to rank 0 followed by broadcast).
func (c *Comm) Allreduce(data []byte, op ReduceOp) []byte {
	defer c.beginOp("allreduce")()
	red := c.Reduce(data, op, 0)
	return c.Bcast(red, 0)
}

// Scatter distributes parts[i] from root to rank i and returns the caller's
// part. Only root's parts argument is consulted; it must have one entry per
// rank.
func (c *Comm) Scatter(parts [][]byte, root int) []byte {
	defer c.beginOp("scatter")()
	c.checkRank(root)
	tag := c.nextInternalTag()
	p := c.Size()
	ctx := c.internalCtx()
	if c.rank == root {
		if len(parts) != p {
			panic("mpi: Scatter needs one part per rank")
		}
		for r := 0; r < p; r++ {
			if r != root {
				c.send(ctx, r, tag, parts[r])
			}
		}
		return append([]byte(nil), parts[root]...)
	}
	b, _ := c.recv(ctx, root, tag)
	return b
}

// Alltoall sends parts[i] to rank i and returns the slice of payloads
// received, indexed by source rank, using pairwise exchange.
func (c *Comm) Alltoall(parts [][]byte) [][]byte {
	defer c.beginOp("alltoall")()
	tag := c.nextInternalTag()
	p := c.Size()
	if len(parts) != p {
		panic("mpi: Alltoall needs one part per rank")
	}
	ctx := c.internalCtx()
	out := make([][]byte, p)
	out[c.rank] = append([]byte(nil), parts[c.rank]...)
	for s := 1; s < p; s++ {
		to := (c.rank + s) % p
		from := (c.rank - s + p) % p
		c.send(ctx, to, tag, parts[to])
		b, _ := c.recv(ctx, from, tag)
		out[from] = b
	}
	return out
}

// Scan computes the inclusive prefix reduction over ranks 0..r for each rank
// r, using a linear chain.
func (c *Comm) Scan(data []byte, op ReduceOp) []byte {
	defer c.beginOp("scan")()
	tag := c.nextInternalTag()
	ctx := c.internalCtx()
	acc := append([]byte(nil), data...)
	if c.rank > 0 {
		b, _ := c.recv(ctx, c.rank-1, tag)
		if len(b) != len(acc) {
			panic("mpi: Scan length mismatch between ranks")
		}
		prev := append([]byte(nil), b...)
		op(prev, acc)
		acc = prev
	}
	if c.rank < c.Size()-1 {
		c.send(ctx, c.rank+1, tag, acc)
	}
	return acc
}
