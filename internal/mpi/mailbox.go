package mpi

import (
	"sync"

	"atomio/internal/sim"
)

// message is one in-flight point-to-point message. src is the sender's rank
// within the communicator identified by ctx; sentAt is the sender's virtual
// clock at the moment the message left.
type message struct {
	ctx    int
	src    int
	tag    int
	data   []byte
	sentAt sim.VTime
}

// errAborted is the panic value used to unwind ranks blocked in a receive
// when another rank has failed; Run recovers it into a RankError.
type abortError struct{}

func (abortError) Error() string { return "mpi: world aborted after failure on another rank" }

// mailbox is the unexpected-message queue of one world rank. Senders append;
// receivers scan for the first message matching (ctx, src, tag) in arrival
// order, which preserves per-sender FIFO ordering as MPI requires.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*message
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message and wakes any waiting receiver.
func (m *mailbox) put(msg *message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// abort wakes any blocked receiver with a panic so a failure on one rank
// cannot deadlock the rest of the world.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// match blocks until a message matching the given context, source and tag is
// available and removes it from the queue. src may be AnySource and tag may
// be AnyTag. If the world is aborted while waiting, match panics with
// abortError, which Run recovers.
func (m *mailbox) match(ctx, src, tag int) *message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.ctx != ctx {
				continue
			}
			if src != AnySource && msg.src != src {
				continue
			}
			if tag != AnyTag && msg.tag != tag {
				continue
			}
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg
		}
		if m.aborted {
			panic(abortError{})
		}
		m.cond.Wait()
	}
}

// pending returns the number of queued messages, for tests.
func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
