package mpi

import (
	"sync"

	"atomio/internal/sim"
)

// message is one in-flight point-to-point message. src is the sender's rank
// within the communicator identified by ctx; sentAt is the sender's virtual
// clock at the moment the message left.
type message struct {
	ctx    int
	src    int
	tag    int
	data   []byte
	sentAt sim.VTime
}

// errAborted is the panic value used to unwind ranks blocked in a receive
// when another rank has failed; Run recovers it into a RankError.
type abortError struct{}

func (abortError) Error() string { return "mpi: world aborted after failure on another rank" }

// mailbox is the unexpected-message queue of one world rank. Senders append;
// receivers scan for the first message matching (ctx, src, tag) in arrival
// order, which preserves per-sender FIFO ordering as MPI requires.
//
// In a coordinated world (coord non-nil) the mailbox also mediates the
// owner's blocked state: a receive that finds no match registers its
// pattern, Blocks and Parks through the coordinator, and the sender whose
// put satisfies the pattern Wakes the owner — under m.mu, before the owner
// can run again — with a lower bound on the owner's post-receive virtual
// time. That handshake is what keeps admissions deterministic across a
// blocking receive, on both the goroutine and the event-loop engine.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*message
	aborted bool

	// Coordinated-world fields; zero in free-running worlds.
	coord        sim.Coord
	owner        int
	net          sim.CostModel
	recvOverhead sim.VTime
	wait         *waitPattern // owner's registered blocked receive, if any
}

// waitPattern is the match pattern of a blocked gated receive.
type waitPattern struct {
	ctx, src, tag int
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// matches reports whether msg satisfies the (ctx, src, tag) pattern.
func matches(msg *message, ctx, src, tag int) bool {
	if msg.ctx != ctx {
		return false
	}
	if src != AnySource && msg.src != src {
		return false
	}
	if tag != AnyTag && msg.tag != tag {
		return false
	}
	return true
}

// put enqueues a message and wakes any waiting receiver. In a coordinated
// world, a put that satisfies the owner's registered receive wakes the
// owner before the mailbox lock drops, publishing the earliest virtual time
// the owner could act at after completing the receive.
func (m *mailbox) put(msg *message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	if m.wait != nil && matches(msg, m.wait.ctx, m.wait.src, m.wait.tag) {
		bound := msg.sentAt + m.net.Cost(int64(len(msg.data))) + m.recvOverhead
		m.wait = nil
		m.coord.Wake(m.owner, bound)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// abort wakes any blocked receiver with a panic so a failure on one rank
// cannot deadlock the rest of the world. A coordinated owner parked in a
// registered receive is woken through the coordinator so it can observe the
// abort and unwind.
func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	if m.wait != nil {
		m.wait = nil
		m.coord.Wake(m.owner, 0)
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take removes and returns the first queued message matching the pattern,
// or nil. Callers hold m.mu.
func (m *mailbox) take(ctx, src, tag int) *message {
	for i, msg := range m.queue {
		if matches(msg, ctx, src, tag) {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg
		}
	}
	return nil
}

// match blocks until a message matching the given context, source and tag is
// available and removes it from the queue. src may be AnySource and tag may
// be AnyTag. If the world is aborted while waiting, match panics with
// abortError, which Run recovers. In a coordinated world the blocked state
// is registered with the coordinator and the owner parks through it so
// peers can keep making progress; the wake comes from the put that
// satisfies the pattern (or from an abort).
func (m *mailbox) match(ctx, src, tag int) *message {
	m.mu.Lock()
	defer m.mu.Unlock()
	registered := false
	for {
		if msg := m.take(ctx, src, tag); msg != nil {
			return msg
		}
		if m.aborted {
			panic(abortError{})
		}
		if m.coord != nil {
			if !registered {
				m.wait = &waitPattern{ctx: ctx, src: src, tag: tag}
				m.coord.Block(m.owner)
				registered = true
			}
			m.coord.Park(m.owner, &m.mu)
		} else {
			m.cond.Wait()
		}
	}
}

// tryMatch removes and returns the first matching queued message without
// blocking, or nil if none has arrived.
func (m *mailbox) tryMatch(ctx, src, tag int) *message {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.take(ctx, src, tag)
}

// pending returns the number of queued messages, for tests.
func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
