package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"atomio/internal/sim"
)

// procCounts covers 1, powers of two, and awkward non-powers of two.
var procCounts = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestBarrierCompletes(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
			return nil
		})
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	// One rank is 1ms ahead; after a barrier with nonzero overheads every
	// rank must be at or past that rank's pre-barrier time.
	cfg := Config{Procs: 4, SendOverhead: sim.Microsecond, RecvOverhead: sim.Microsecond}
	res, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 2 {
			c.Clock().Advance(sim.Millisecond)
		}
		c.Barrier()
		if c.Now() < sim.Millisecond {
			return fmt.Errorf("rank %d at %v after barrier, want >= 1ms", c.Rank(), c.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range procCounts {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			run(t, p, func(c *Comm) error {
				for root := 0; root < c.Size(); root++ {
					var in []byte
					if c.Rank() == root {
						in = []byte(fmt.Sprintf("payload-from-%d", root))
					}
					out := c.Bcast(in, root)
					want := fmt.Sprintf("payload-from-%d", root)
					if string(out) != want {
						return fmt.Errorf("rank %d root %d: got %q", c.Rank(), root, out)
					}
				}
				return nil
			})
		})
	}
}

func TestGatherAllRoots(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			for root := 0; root < c.Size(); root++ {
				// Variable-length payloads: rank r sends r+1 bytes of value r.
				mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
				got := c.Gather(mine, root)
				if c.Rank() != root {
					if got != nil {
						return fmt.Errorf("non-root got non-nil gather result")
					}
					continue
				}
				if len(got) != c.Size() {
					return fmt.Errorf("gather returned %d entries", len(got))
				}
				for r, d := range got {
					want := bytes.Repeat([]byte{byte(r)}, r+1)
					if !bytes.Equal(d, want) {
						return fmt.Errorf("root %d entry %d = %v, want %v", root, r, d, want)
					}
				}
			}
			return nil
		})
	}
}

func TestAllgatherVariableSizes(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			mine := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 2*c.Rank()+1)
			got := c.Allgather(mine)
			for r, d := range got {
				want := bytes.Repeat([]byte{byte(r + 1)}, 2*r+1)
				if !bytes.Equal(d, want) {
					return fmt.Errorf("rank %d entry %d = %v, want %v", c.Rank(), r, d, want)
				}
			}
			return nil
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			in := EncodeInt64s(int64(c.Rank()+1), int64(10*(c.Rank()+1)))
			got := c.Reduce(in, OpSumInt64, c.Size()-1)
			if c.Rank() != c.Size()-1 {
				if got != nil {
					return fmt.Errorf("non-root reduce returned data")
				}
				return nil
			}
			n := int64(c.Size())
			wantA := n * (n + 1) / 2
			v := DecodeInt64s(got)
			if v[0] != wantA || v[1] != 10*wantA {
				return fmt.Errorf("reduce = %v, want [%d %d]", v, wantA, 10*wantA)
			}
			return nil
		})
	}
}

func TestAllreduceMinMax(t *testing.T) {
	run(t, 7, func(c *Comm) error {
		in := EncodeInt64s(int64(c.Rank()))
		mx := DecodeInt64s(c.Allreduce(in, OpMaxInt64))[0]
		mn := DecodeInt64s(c.Allreduce(in, OpMinInt64))[0]
		if mx != 6 || mn != 0 {
			return fmt.Errorf("allreduce max/min = %d/%d", mx, mn)
		}
		return nil
	})
}

func TestAllreduceBOr(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		in := make([]byte, 8)
		in[c.Rank()] = 1
		out := c.Allreduce(in, OpBOr)
		for i, b := range out {
			if b != 1 {
				return fmt.Errorf("bit %d = %d", i, b)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			var parts [][]byte
			root := 0
			if c.Rank() == root {
				parts = make([][]byte, c.Size())
				for i := range parts {
					parts[i] = EncodeInt64s(int64(i * 100))
				}
			}
			got := c.Scatter(parts, root)
			if v := DecodeInt64s(got)[0]; v != int64(c.Rank()*100) {
				return fmt.Errorf("rank %d scattered %d", c.Rank(), v)
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			parts := make([][]byte, c.Size())
			for i := range parts {
				parts[i] = EncodeInt64s(int64(c.Rank()*1000 + i))
			}
			got := c.Alltoall(parts)
			for src, d := range got {
				if v := DecodeInt64s(d)[0]; v != int64(src*1000+c.Rank()) {
					return fmt.Errorf("from %d got %d", src, v)
				}
			}
			return nil
		})
	}
}

func TestScan(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		in := EncodeInt64s(int64(c.Rank() + 1))
		got := DecodeInt64s(c.Scan(in, OpSumInt64))[0]
		n := int64(c.Rank() + 1)
		if want := n * (n + 1) / 2; got != want {
			return fmt.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestCollectivesBackToBackDontCollide(t *testing.T) {
	// Interleave different collectives repeatedly; tag sequencing must keep
	// them separate.
	run(t, 5, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			v := c.Bcast(EncodeInt64s(int64(i)), i%c.Size())
			if c.Rank() == i%c.Size() {
				_ = v
			}
			all := c.Allgather(EncodeInt64s(int64(c.Rank() * i)))
			for r, d := range all {
				if got := DecodeInt64s(d)[0]; got != int64(r*i) {
					return fmt.Errorf("iter %d rank %d: got %d", i, r, got)
				}
			}
			c.Barrier()
		}
		return nil
	})
}

func TestDup(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		d := c.Dup()
		if d.Rank() != c.Rank() || d.Size() != c.Size() {
			return fmt.Errorf("dup rank/size mismatch")
		}
		// Traffic on the dup must not be matchable on the parent.
		if c.Rank() == 0 {
			d.Send(1, 0, []byte("on-dup"))
			c.Send(1, 0, []byte("on-parent"))
		}
		if c.Rank() == 1 {
			fromParent, _ := c.Recv(0, 0)
			fromDup, _ := d.Recv(0, 0)
			if string(fromParent) != "on-parent" || string(fromDup) != "on-dup" {
				return fmt.Errorf("dup contexts collided: %q %q", fromParent, fromDup)
			}
		}
		return nil
	})
}

func TestSplitEvenOdd(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != 4 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		if want := c.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		// Collective on the sub-communicator.
		sum := DecodeInt64s(sub.Allreduce(EncodeInt64s(int64(c.Rank())), OpSumInt64))[0]
		want := int64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sum != want {
			return fmt.Errorf("sub allreduce = %d, want %d", sum, want)
		}
		return nil
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		// Reverse order via key.
		sub := c.Split(0, -c.Rank())
		if want := c.Size() - 1 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("rank %d got sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitNonParticipant(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("non-participant got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size = %d, want 3", sub.Size())
		}
		sub.Barrier()
		return nil
	})
}

func TestBarrierMessageComplexity(t *testing.T) {
	// The dissemination barrier sends ceil(log2 P) messages per rank; with
	// per-message overhead o, a lone barrier costs each rank >= log2(P)*2o
	// (send+recv overhead) but no more than a few times that. This pins the
	// logarithmic shape used in the handshake cost analysis.
	const o = sim.Microsecond
	for _, p := range []int{4, 16} {
		res, err := Run(Config{Procs: p, SendOverhead: o, RecvOverhead: o}, func(c *Comm) error {
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds := 0
		for d := 1; d < p; d *= 2 {
			rounds++
		}
		min := sim.VTime(rounds) * 2 * o
		max := sim.VTime(rounds) * 6 * o
		if res.MaxTime < min || res.MaxTime > max {
			t.Fatalf("P=%d barrier time %v outside [%v,%v]", p, res.MaxTime, min, max)
		}
	}
}
