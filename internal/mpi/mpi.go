// Package mpi is an in-process message-passing runtime modelled on the MPI
// subset the paper's atomicity strategies require: ranks with identities,
// blocking matched point-to-point communication, non-blocking requests, and
// the standard collective operations (barrier, broadcast, gather(v),
// allgather(v), reduce, allreduce, scatter, alltoall, scan) implemented with
// the textbook algorithms (dissemination barrier, binomial trees, ring
// allgather, pairwise alltoall) so that message counts and volumes — and
// therefore the virtual-time cost of the handshaking strategies — match what
// a real MPI implementation would incur.
//
// Ranks execute inside a World created by Run — as one real goroutine per
// rank (the default sim.Goroutines engine) or as resumable coroutines of
// the single-threaded event-loop scheduler (internal/sim/des), selected by
// Config.Engine; virtual results are byte-identical either way. Every rank
// owns a virtual clock (see package sim); sends stamp messages with the
// sender's clock and receives advance the receiver's clock to
// max(local, sent+transfer), which yields causally consistent virtual
// timings without any global coordination.
//
// Like package sync in the standard library, mpi treats misuse (invalid
// ranks, mismatched collective calls) as programmer error and panics rather
// than returning errors; I/O-level failures are reported as errors by the
// higher layers.
package mpi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"atomio/internal/obs"
	"atomio/internal/sim"
)

// Wildcards for Recv matching. Valid application tags are non-negative.
const (
	AnySource = -1
	AnyTag    = -1
)

// Config describes a World to be run.
type Config struct {
	// Procs is the number of ranks. Must be at least 1.
	Procs int
	// Net is the message-transfer cost model. Nil means free transfers.
	Net sim.CostModel
	// SendOverhead and RecvOverhead are the per-message CPU overheads
	// charged to the sender and receiver respectively.
	SendOverhead sim.VTime
	RecvOverhead sim.VTime
	// Timeout is the real-time limit for the whole run; it guards tests
	// against communication deadlocks. Zero means 120 seconds.
	Timeout time.Duration
	// Coord, when non-nil, serializes every cross-rank interaction into
	// deterministic virtual-time order (see sim.Coord; a *sim.Gate is the
	// goroutine-engine implementation). It must be sized for exactly Procs
	// actors. Nil runs the world free, as before.
	Coord sim.Coord
	// Engine executes the rank bodies. Nil uses sim.Goroutines (one real
	// goroutine per rank). The event-loop engine (internal/sim/des)
	// requires Coord to be its own coordinator.
	Engine sim.Engine
	// Obs, when non-nil, receives an mpi.send/mpi.recv event (tagged with
	// the enclosing collective, sized, with world-rank peers) for every
	// message, plus message counters. Nil costs one pointer test per
	// message.
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.Net == nil {
		c.Net = sim.Free{}
	}
	if c.Timeout == 0 {
		c.Timeout = 120 * time.Second
	}
	return c
}

// World is one running message-passing program: a set of rank goroutines,
// their mailboxes and clocks, and the communicator context-id allocator.
type World struct {
	cfg       Config
	size      int
	mailboxes []*mailbox
	clocks    []*sim.Clock

	ctxMu   sync.Mutex
	nextCtx int
}

func newWorld(cfg Config) *World {
	w := &World{cfg: cfg, size: cfg.Procs}
	w.mailboxes = make([]*mailbox, cfg.Procs)
	w.clocks = make([]*sim.Clock, cfg.Procs)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
		if cfg.Coord != nil {
			// The mailbox wakes its blocked owner through the coordinator;
			// it needs the owner's id and the receive cost model to publish
			// a sound lower bound on the owner's post-receive time.
			w.mailboxes[i].coord = cfg.Coord
			w.mailboxes[i].owner = i
			w.mailboxes[i].net = cfg.Net
			w.mailboxes[i].recvOverhead = cfg.RecvOverhead
		}
		w.clocks[i] = sim.NewClock(0)
	}
	w.nextCtx = 1
	return w
}

// abortAll wakes every rank blocked in a receive; used when a rank fails so
// the failure surfaces immediately instead of as a run timeout (this mirrors
// MPI's job-abort-on-error behaviour).
func (w *World) abortAll() {
	for _, m := range w.mailboxes {
		m.abort()
	}
}

func (w *World) allocCtx() int {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	c := w.nextCtx
	w.nextCtx++
	return c
}

// Result reports the outcome of a Run: the final virtual time of every rank
// and their maximum, which is the virtual makespan of the program.
type Result struct {
	Times   []sim.VTime
	MaxTime sim.VTime
}

// RankFunc is the body executed by every rank.
type RankFunc func(c *Comm) error

// RankError wraps an error (or recovered panic) from one rank.
type RankError struct {
	Rank int
	Err  error
}

// Error implements the error interface.
func (e *RankError) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Err) }

// Unwrap returns the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes body on cfg.Procs ranks and waits for all of them. It returns
// the per-rank virtual completion times and the first rank error, if any.
// A rank that panics is reported as a RankError carrying the panic value.
// When any rank fails, the world is aborted: ranks blocked in receives are
// unwound immediately (MPI's job-abort-on-error behaviour), and the
// root-cause error is the one reported. If the ranks do not finish within
// cfg.Timeout (a communication deadlock), Run returns an error instead of
// hanging forever.
//
// cfg.Engine selects how ranks execute: real goroutines (the default) or
// the single-threaded event-loop scheduler; cfg.Coord is the matching
// coordinator. Virtual results are byte-identical across engines.
func Run(cfg Config, body RankFunc) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpi: Procs must be >= 1, got %d", cfg.Procs)
	}
	if cfg.Coord != nil && cfg.Coord.Actors() != cfg.Procs {
		return nil, fmt.Errorf("mpi: coordinator sized for %d actors, world has %d ranks",
			cfg.Coord.Actors(), cfg.Procs)
	}
	w := newWorld(cfg)
	ctx := w.allocCtx()
	group := make([]int, cfg.Procs)
	for i := range group {
		group[i] = i
	}

	errs := make([]error, cfg.Procs)
	rankBody := func(rank int) {
		if cfg.Coord != nil {
			// Retire the actor however the rank exits — normally, by
			// error, or unwinding from an abort — so coordinated peers
			// never wait on a dead rank.
			defer cfg.Coord.Done(rank)
		}
		defer func() {
			if p := recover(); p != nil {
				switch p := p.(type) {
				case abortError:
					errs[rank] = &RankError{Rank: rank, Err: abortError{}}
				case sim.StoppedError:
					// Engine teardown unwound a stalled rank; like an
					// abort, this is a consequence, not a root cause.
					errs[rank] = &RankError{Rank: rank, Err: p}
				default:
					errs[rank] = &RankError{
						Rank: rank,
						Err:  fmt.Errorf("panic: %v\n%s", p, debug.Stack()),
					}
				}
				w.abortAll()
			}
		}()
		c := &Comm{world: w, ctx: ctx, rank: rank, group: group, clock: w.clocks[rank]}
		if err := body(c); err != nil {
			errs[rank] = &RankError{Rank: rank, Err: err}
			w.abortAll()
		}
	}

	eng := cfg.Engine
	if eng == nil {
		eng = sim.Goroutines{}
	}
	var engErr error
	done := make(chan struct{})
	go func() {
		engErr = eng.Run(cfg.Coord, cfg.Procs, rankBody)
		close(done)
	}()
	select {
	case <-done:
	//atomiovet:allow simclock host-time watchdog against real rank-goroutine deadlock; wall time never reaches simulated results
	case <-time.After(cfg.Timeout):
		return nil, fmt.Errorf("mpi: run timed out after %v (likely communication deadlock)", cfg.Timeout)
	}

	res := &Result{Times: make([]sim.VTime, cfg.Procs)}
	for i, c := range w.clocks {
		res.Times[i] = c.Now()
		if c.Now() > res.MaxTime {
			res.MaxTime = c.Now()
		}
	}
	// Report the root-cause error: a rank that failed on its own, in
	// preference to an engine-level stall, in preference to ranks that were
	// merely unwound by the resulting abort or teardown.
	var aborted error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var re *RankError
		if errors.As(e, &re) {
			_, isAbort := re.Err.(abortError)
			_, isStopped := re.Err.(sim.StoppedError)
			if isAbort || isStopped {
				if aborted == nil {
					aborted = e
				}
				continue
			}
		}
		return res, e
	}
	if engErr != nil {
		return res, engErr
	}
	return res, aborted
}

// MustRun is Run but panics on error; convenient in examples and benchmarks.
func MustRun(cfg Config, body RankFunc) *Result {
	res, err := Run(cfg, body)
	if err != nil {
		panic(err)
	}
	return res
}
