package mpi

import "atomio/internal/obs"

// Status describes a received message.
type Status struct {
	// Source is the sender's rank within the communicator.
	Source int
	// Tag is the message tag.
	Tag int
	// Len is the payload length in bytes.
	Len int
}

// Send delivers data to rank `to` with the given non-negative tag. Send is
// buffered (eager): it never blocks waiting for the matching receive, which
// mirrors MPI's behaviour for the small handshake messages this repository
// exchanges. The payload is copied, so the caller may reuse data.
func (c *Comm) Send(to, tag int, data []byte) {
	c.checkTag(tag)
	c.send(c.ctx, to, tag, data)
}

// send is the context-explicit core used by both user sends and internal
// collective traffic. In a coordinated world the send is an admitted action
// at the sender's post-overhead clock, so deliveries into every mailbox
// happen in deterministic virtual-time order.
func (c *Comm) send(ctx, to, tag int, data []byte) {
	c.checkRank(to)
	c.clock.Advance(c.world.cfg.SendOverhead)
	if co := c.world.cfg.Coord; co != nil {
		co.Await(c.group[c.rank], c.clock.Now())
	}
	if o := c.world.cfg.Obs; o != nil {
		o.Emit(obs.Event{
			T: c.clock.Now(), Actor: c.group[c.rank],
			Layer: obs.LayerMPI, Kind: obs.KindSend, Tag: c.curOp,
			Peer: c.group[to], Size: int64(len(data)),
		})
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.world.mailboxes[c.group[to]].put(&message{
		ctx:    ctx,
		src:    c.rank,
		tag:    tag,
		data:   buf,
		sentAt: c.clock.Now(),
	})
}

// Recv blocks until a message with the given source and non-negative tag
// (or the AnySource / AnyTag wildcards) arrives, and returns its payload.
// The receiver's virtual clock advances to
// max(local, sentAt + transfer cost) + receive overhead.
func (c *Comm) Recv(from, tag int) ([]byte, Status) {
	if from != AnySource {
		c.checkRank(from)
	}
	if tag != AnyTag {
		c.checkTag(tag)
	}
	return c.recv(c.ctx, from, tag)
}

func (c *Comm) recv(ctx, from, tag int) ([]byte, Status) {
	msg := c.world.mailboxes[c.group[c.rank]].match(ctx, from, tag)
	c.applyRecvTiming(msg)
	return msg.data, Status{Source: msg.src, Tag: msg.tag, Len: len(msg.data)}
}

// applyRecvTiming advances the receiver's clock for a matched message and
// emits the delivery event (the one side message counters hang off).
func (c *Comm) applyRecvTiming(msg *message) {
	arrive := msg.sentAt + c.world.cfg.Net.Cost(int64(len(msg.data)))
	c.clock.AdvanceTo(arrive)
	c.clock.Advance(c.world.cfg.RecvOverhead)
	if o := c.world.cfg.Obs; o != nil {
		me := c.group[c.rank]
		o.Emit(obs.Event{
			T: c.clock.Now(), Actor: me,
			Layer: obs.LayerMPI, Kind: obs.KindRecv, Tag: c.curOp,
			Peer: c.group[msg.src], Size: int64(len(msg.data)),
		})
		o.Count(me, obs.MetricMsgs, 1)
		o.Count(me, obs.MetricMsgBytes, int64(len(msg.data)))
		op := c.curOp
		if op == "" {
			op = "p2p"
		}
		o.Count(me, obs.MetricMsgsPrefix+op, 1)
	}
}

// Sendrecv sends sendData to rank `to` and then receives a message from
// rank `from`, in that order. Because Send is eager this cannot deadlock
// even when all ranks Sendrecv simultaneously, matching the use of
// MPI_Sendrecv in exchange patterns.
func (c *Comm) Sendrecv(to, sendTag int, sendData []byte, from, recvTag int) ([]byte, Status) {
	c.Send(to, sendTag, sendData)
	return c.Recv(from, recvTag)
}

// Request is a handle to a non-blocking operation. Wait must be called
// exactly once, from the goroutine owning the communicator.
type Request struct {
	c      *Comm
	done   chan struct{}
	msg    *message // set for receives
	isRecv bool
	data   []byte
	status Status

	// Coordinated worlds match lazily on the owning rank (a helper
	// goroutine would bypass the coordinator's blocked-state handshake),
	// so the pattern is kept on the request.
	lazy          bool
	ctx, src, tag int
}

// Isend starts a non-blocking send. Because sends are eager the operation
// completes immediately; the returned Request exists so code written against
// the request API reads naturally.
func (c *Comm) Isend(to, tag int, data []byte) *Request {
	c.Send(to, tag, data)
	r := &Request{c: c, done: make(chan struct{})}
	close(r.done)
	return r
}

// Irecv starts a non-blocking receive. A helper goroutine performs the
// matching; the receiver's clock is advanced when Wait is called, so clock
// accesses stay confined to the owning goroutine.
func (c *Comm) Irecv(from, tag int) *Request {
	if from != AnySource {
		c.checkRank(from)
	}
	if tag != AnyTag {
		c.checkTag(tag)
	}
	r := &Request{c: c, done: make(chan struct{}), isRecv: true}
	if c.world.cfg.Coord != nil {
		r.lazy, r.ctx, r.src, r.tag = true, c.ctx, from, tag
		return r
	}
	ctx := c.ctx
	go func() {
		r.msg = c.world.mailboxes[c.group[c.rank]].match(ctx, from, tag)
		close(r.done)
	}()
	return r
}

// Wait blocks until the operation completes and, for receives, returns the
// payload and status.
func (r *Request) Wait() ([]byte, Status) {
	if r.lazy {
		if r.msg == nil {
			c := r.c
			r.msg = c.world.mailboxes[c.group[c.rank]].match(r.ctx, r.src, r.tag)
		}
		r.lazy = false
	} else {
		<-r.done
	}
	if r.isRecv && r.msg != nil {
		r.c.applyRecvTiming(r.msg)
		r.data = r.msg.data
		r.status = Status{Source: r.msg.src, Tag: r.msg.tag, Len: len(r.msg.data)}
		r.msg = nil
	}
	return r.data, r.status
}

// Test reports whether the operation has completed without blocking. In a
// coordinated world (Config.Coord set) a busy-wait on Test cannot make
// progress: polling does not advance the rank's virtual clock, so a sender
// whose message would complete this request is never admitted. Use Wait,
// which blocks through the coordinator, instead of spinning on Test.
func (r *Request) Test() bool {
	if r.lazy {
		if r.msg == nil {
			c := r.c
			r.msg = c.world.mailboxes[c.group[c.rank]].tryMatch(r.ctx, r.src, r.tag)
		}
		return r.msg != nil
	}
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// WaitAll waits on every request in order.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
