package verify

import (
	"testing"

	"atomio/internal/interval"
)

// FuzzCheckBytes differentially tests the atom-based checker against the
// semantic definition of MPI atomicity: the outcome is serializable iff
// some permutation of the writers, applied last-wins, reproduces the file
// on every multi-covered byte. The atom checker factors that property into
// per-atom uniformity plus an acyclic winner order; the naive model checks
// it directly by enumerating permutations, so any factoring bug shows up
// as a disagreement.
//
// Input encoding: the first six bytes are three (offset, length) pairs
// defining one single-extent view per rank (length 0 = the rank writes
// nothing); the rest is the file image, with offsets past its end reading
// as zero (never written).
func FuzzCheckBytes(f *testing.F) {
	// Clean serial overlap.
	f.Add([]byte{0, 15, 5, 15, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	// One stale byte inside the overlap.
	f.Add([]byte{0, 15, 5, 15, 0, 0, 1, 1, 1, 1, 1, 2, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})
	// Three-way overlap, file entirely rank 2.
	f.Add([]byte{0, 12, 4, 12, 8, 12, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3})
	// Overlap past the end of the image (implicit zeros).
	f.Add([]byte{0, 30, 10, 30, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, in []byte) {
		get := func(i int) int64 {
			if i < len(in) {
				return int64(in[i])
			}
			return 0
		}
		views := make([]interval.List, 3)
		for r := 0; r < 3; r++ {
			if l := get(2*r + 1); l > 0 {
				views[r] = interval.List{{Off: get(2 * r), Len: l}}
			}
		}
		var data []byte
		if len(in) > 6 {
			data = in[6:]
		}

		rep := CheckBytes(data, views)
		want := naiveSerializable(data, views)
		if rep.Atomic() != want {
			t.Fatalf("checker disagrees with permutation model: Atomic=%v want %v\nviews=%v\nreport=%+v",
				rep.Atomic(), want, views, rep)
		}
		if got := multiCoveredBytes(views); rep.OverlappedBytes != got {
			t.Fatalf("OverlappedBytes=%d, per-byte count=%d (views %v)", rep.OverlappedBytes, got, views)
		}
	})
}

// naiveSerializable is the brute-force oracle: try every permutation of the
// ranks as the serialization order and test whether last-wins application
// explains every byte that two or more writers cover.
func naiveSerializable(data []byte, views []interval.List) bool {
	at := func(pos int64) byte {
		if pos < int64(len(data)) {
			return data[pos]
		}
		return 0
	}
	var positions []int64
	for _, pos := range coveredPositions(views) {
		if coveringRanks(views, pos) >= 2 {
			positions = append(positions, pos)
		}
	}
	if len(positions) == 0 {
		return true
	}
	for _, perm := range permutations(len(views)) {
		ok := true
		for _, pos := range positions {
			last := -1
			for _, r := range perm {
				if listContains(views[r], pos) {
					last = r
				}
			}
			if at(pos) != Marker(last) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// coveredPositions returns every byte offset covered by at least one view.
func coveredPositions(views []interval.List) []int64 {
	var end int64
	for _, v := range views {
		for _, e := range v {
			if e.End() > end {
				end = e.End()
			}
		}
	}
	var out []int64
	for pos := int64(0); pos < end; pos++ {
		if coveringRanks(views, pos) > 0 {
			out = append(out, pos)
		}
	}
	return out
}

func coveringRanks(views []interval.List, pos int64) int {
	n := 0
	for _, v := range views {
		if listContains(v, pos) {
			n++
		}
	}
	return n
}

func listContains(l interval.List, pos int64) bool {
	for _, e := range l {
		if e.Contains(pos) {
			return true
		}
	}
	return false
}

func multiCoveredBytes(views []interval.List) int64 {
	var n int64
	for _, pos := range coveredPositions(views) {
		if coveringRanks(views, pos) >= 2 {
			n++
		}
	}
	return n
}

// permutations returns all orderings of 0..n-1.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, rest := range permutations(n - 1) {
		for i := 0; i <= len(rest); i++ {
			p := make([]int, 0, n)
			p = append(p, rest[:i]...)
			p = append(p, n-1)
			p = append(p, rest[i:]...)
			out = append(out, p)
		}
	}
	return out
}
