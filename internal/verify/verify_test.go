package verify

import (
	"testing"

	"atomio/internal/interval"
	"atomio/internal/pfs"
	"atomio/internal/sim"
)

func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

func newFS() *pfs.FileSystem {
	return pfs.MustNew(pfs.Config{Servers: 1, StoreData: true})
}

func write(t *testing.T, fs *pfs.FileSystem, rank int, segs ...interval.Extent) {
	t.Helper()
	c, err := fs.Open("f", rank, sim.NewClock(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range segs {
		buf := make([]byte, e.Len)
		Fill(rank, buf)
		c.WriteAt(e.Off, buf)
	}
}

func TestMarkerAndFill(t *testing.T) {
	if Marker(0) != 1 || Marker(15) != 16 {
		t.Fatal("marker values")
	}
	if Marker(0) == 0 {
		t.Fatal("marker 0 must not collide with unwritten bytes")
	}
	buf := make([]byte, 4)
	Fill(3, buf)
	for _, b := range buf {
		if b != 4 {
			t.Fatal("fill wrong")
		}
	}
}

func TestCleanOverlapPasses(t *testing.T) {
	fs := newFS()
	// Rank 0 writes [0,100); rank 1 writes [50,150) after: region [50,100)
	// is uniformly rank 1. Atomic.
	write(t, fs, 0, ext(0, 100))
	write(t, fs, 1, ext(50, 100))
	rep, err := Check(fs, "f", []interval.List{{ext(0, 100)}, {ext(50, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Atoms != 1 || rep.OverlappedBytes != 50 {
		t.Fatalf("atoms=%d bytes=%d", rep.Atoms, rep.OverlappedBytes)
	}
	if rep.WinnerByRegion[ext(50, 50)] != 1 {
		t.Fatalf("winner = %d, want 1", rep.WinnerByRegion[ext(50, 50)])
	}
}

func TestInterleavingDetected(t *testing.T) {
	fs := newFS()
	write(t, fs, 0, ext(0, 100))
	write(t, fs, 1, ext(50, 100))
	// Corrupt the overlap with interleaved data: rank 0 again, partially.
	write(t, fs, 0, ext(60, 10))
	rep, err := Check(fs, "f", []interval.List{{ext(0, 100)}, {ext(50, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atomic() {
		t.Fatal("interleaving not detected")
	}
	v := rep.Violations[0]
	if v.Region != ext(50, 50) || len(v.Markers) != 2 {
		t.Fatalf("violation = %+v", v)
	}
	if v.Error() == "" {
		t.Fatal("violation should render")
	}
}

func TestForeignDataInOverlapDetected(t *testing.T) {
	fs := newFS()
	// The overlap holds a marker belonging to neither writer.
	write(t, fs, 7, ext(50, 50)) // stray rank 7 data
	rep, err := Check(fs, "f", []interval.List{{ext(0, 100)}, {ext(50, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atomic() {
		t.Fatal("foreign uniform data should still violate")
	}
}

func TestTripleOverlapAtoms(t *testing.T) {
	fs := newFS()
	// Three nested writers; serialization order 0 then 1 then 2.
	write(t, fs, 0, ext(0, 90))
	write(t, fs, 1, ext(30, 60))
	write(t, fs, 2, ext(60, 30))
	views := []interval.List{{ext(0, 90)}, {ext(30, 60)}, {ext(60, 30)}}
	rep, err := Check(fs, "f", views)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// Atoms: [30,60) covered by {0,1}; [60,90) covered by {0,1,2}.
	if rep.Atoms != 2 {
		t.Fatalf("atoms = %d, want 2", rep.Atoms)
	}
	if rep.WinnerByRegion[ext(30, 30)] != 1 || rep.WinnerByRegion[ext(60, 30)] != 2 {
		t.Fatalf("winners = %v", rep.WinnerByRegion)
	}
}

func TestMixedAcrossAtomsButUniformWithinPasses(t *testing.T) {
	// The scenario that breaks naive pairwise-uniformity checking: within
	// the overlap of ranks 0 and 1, a sub-region belongs to rank 2 (who
	// also covers it) — still atomic because each *atom* is uniform.
	fs := newFS()
	write(t, fs, 0, ext(0, 100))
	write(t, fs, 1, ext(0, 100))
	write(t, fs, 2, ext(40, 20))
	views := []interval.List{{ext(0, 100)}, {ext(0, 100)}, {ext(40, 20)}}
	rep, err := Check(fs, "f", views)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("atom-based check should pass: %v", rep.Violations)
	}
}

func TestNonContiguousViewsAtoms(t *testing.T) {
	fs := newFS()
	// Column-wise style: interleaved rows, overlap in two pieces.
	v0 := interval.List{ext(0, 6), ext(10, 6)}
	v1 := interval.List{ext(4, 6), ext(14, 6)}
	write(t, fs, 0, v0...)
	write(t, fs, 1, v1...)
	rep, err := Check(fs, "f", []interval.List{v0, v1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Atoms != 2 || rep.OverlappedBytes != 4 {
		t.Fatalf("atoms=%d bytes=%d, want 2/4", rep.Atoms, rep.OverlappedBytes)
	}
}

func TestNoOverlapNoAtoms(t *testing.T) {
	fs := newFS()
	write(t, fs, 0, ext(0, 10))
	write(t, fs, 1, ext(20, 10))
	rep, err := Check(fs, "f", []interval.List{{ext(0, 10)}, {ext(20, 10)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atoms != 0 || !rep.Atomic() {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestCheckMissingFile(t *testing.T) {
	fs := newFS()
	if _, err := Check(fs, "nope", []interval.List{{ext(0, 10)}, {ext(5, 10)}}); err == nil {
		t.Fatal("expected error for missing file")
	}
}
