package verify

import (
	"strings"
	"testing"

	"atomio/internal/pfs"
	"atomio/internal/sim"
)

// TestStoresMatchAcceptsTwins drives the same workload into a striped and a
// shared-store file system and expects equivalence.
func TestStoresMatchAcceptsTwins(t *testing.T) {
	cfg := pfs.Config{Servers: 3, StripeSize: 8, StoreData: true}
	ocfg := cfg
	ocfg.SharedStore = true
	a, b := pfs.MustNew(cfg), pfs.MustNew(ocfg)
	for _, fs := range []*pfs.FileSystem{a, b} {
		c, _ := fs.Open("f", 0, sim.NewClock(0))
		c.WriteAt(5, []byte("hello striped world"))
		c.WriteAt(100, []byte("far away"))
	}
	if err := StoresMatch(a, b, "f"); err != nil {
		t.Fatal(err)
	}
}

// TestStoresMatchReportsDivergence checks each comparison dimension fires.
func TestStoresMatchReportsDivergence(t *testing.T) {
	mk := func() *pfs.FileSystem {
		return pfs.MustNew(pfs.Config{Servers: 2, StripeSize: 8, StoreData: true})
	}
	write := func(fs *pfs.FileSystem, off int64, data string) {
		c, _ := fs.Open("f", 0, sim.NewClock(0))
		c.WriteAt(off, []byte(data))
	}

	a, b := mk(), mk()
	write(a, 0, "xxxx")
	write(b, 0, "xxxxx")
	if err := StoresMatch(a, b, "f"); err == nil || !strings.Contains(err.Error(), "sizes") {
		t.Fatalf("size divergence not reported: %v", err)
	}

	a, b = mk(), mk()
	write(a, 0, "xxxx")
	write(b, 4, "xxxx")
	write(a, 8, "xxxx") // same size, different extents
	write(b, 8, "xxxx")
	if err := StoresMatch(a, b, "f"); err == nil || !strings.Contains(err.Error(), "extents") {
		t.Fatalf("extent divergence not reported: %v", err)
	}

	a, b = mk(), mk()
	write(a, 0, "aaaa")
	write(b, 0, "aaab")
	if err := StoresMatch(a, b, "f"); err == nil || !strings.Contains(err.Error(), "content") {
		t.Fatalf("content divergence not reported: %v", err)
	}
}
