package verify

import (
	"testing"

	"atomio/internal/interval"
	"atomio/internal/pfs"
	"atomio/internal/sim"
)

func TestFindCycleDirect(t *testing.T) {
	after := func(edges map[int][]int) map[int]map[int]bool {
		m := make(map[int]map[int]bool)
		for u, vs := range edges {
			m[u] = make(map[int]bool)
			for _, v := range vs {
				m[u][v] = true
			}
		}
		return m
	}
	if c := findCycle(after(map[int][]int{0: {1}, 1: {2}})); c != nil {
		t.Fatalf("acyclic graph reported cycle %v", c)
	}
	c := findCycle(after(map[int][]int{0: {1}, 1: {0}}))
	if c == nil {
		t.Fatal("2-cycle missed")
	}
	if c[0] != c[len(c)-1] {
		t.Fatalf("cycle %v does not close", c)
	}
	if findCycle(after(map[int][]int{0: {1}, 1: {2}, 2: {0}, 3: {0}})) == nil {
		t.Fatal("3-cycle missed")
	}
	if findCycle(nil) != nil {
		t.Fatal("empty graph reported cycle")
	}
}

func TestOrderViolationDetectedAcrossAtoms(t *testing.T) {
	// Two atoms, winners imply 0-after-1 AND 1-after-0: individually
	// clean, jointly unserializable. This is the "interleaved at request
	// granularity" failure of the paper's Figure 2 expressed at atom
	// level.
	fs := pfs.MustNew(pfs.Config{Servers: 1, StoreData: true})
	clk := sim.NewClock(0)
	c0, _ := fs.Open("f", 0, clk)
	c1, _ := fs.Open("f", 1, clk)
	// Views: both ranks cover [0,10) and [20,30).
	views := []interval.List{
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
	}
	// Atom 1 won by rank 0, atom 2 won by rank 1.
	buf0 := make([]byte, 10)
	Fill(0, buf0)
	buf1 := make([]byte, 10)
	Fill(1, buf1)
	c1.WriteAt(0, buf1)
	c0.WriteAt(0, buf0) // rank 0 last on atom 1
	c0.WriteAt(20, buf0)
	c1.WriteAt(20, buf1) // rank 1 last on atom 2

	rep, err := Check(fs, "f", views)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("atoms should be individually clean: %v", rep.Violations)
	}
	if rep.OrderViolation == nil {
		t.Fatal("unserializable winners not detected")
	}
	if rep.Atomic() {
		t.Fatal("Atomic() must be false on order violation")
	}
	if rep.OrderViolation.Error() == "" {
		t.Fatal("order violation should render")
	}
}

func TestConsistentWinnersAcrossAtomsPass(t *testing.T) {
	// Same two atoms, but rank 1 wins both: serializable as 0 then 1.
	fs := pfs.MustNew(pfs.Config{Servers: 1, StoreData: true})
	clk := sim.NewClock(0)
	c0, _ := fs.Open("f", 0, clk)
	c1, _ := fs.Open("f", 1, clk)
	views := []interval.List{
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
	}
	buf0 := make([]byte, 10)
	Fill(0, buf0)
	buf1 := make([]byte, 10)
	Fill(1, buf1)
	c0.WriteAt(0, buf0)
	c0.WriteAt(20, buf0)
	c1.WriteAt(0, buf1)
	c1.WriteAt(20, buf1)
	rep, err := Check(fs, "f", views)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("consistent winners flagged: %+v %v", rep.OrderViolation, rep.Violations)
	}
}
