package verify

import (
	"testing"

	"atomio/internal/interval"
)

// These tests prove the checker can say no: hand-constructed torn files,
// duplicate-grant histories and partial two-phase commits — the outcomes
// the fault layer produces — must all be rejected. The checker only ever
// saw healthy runs before; the fleet gate leans on its rejections.

// view builds a single-extent view.
func view(off, length int64) interval.List {
	return interval.List{{Off: off, Len: length}}
}

// fillRange stamps data[off:off+n] with rank's marker.
func fillRange(data []byte, off, n int64, rank int) {
	for i := off; i < off+n; i++ {
		data[i] = Marker(rank)
	}
}

// TestCheckBytesCleanSerial pins the baseline: a file equal to a serial
// application of the writes passes.
func TestCheckBytesCleanSerial(t *testing.T) {
	data := make([]byte, 20)
	views := []interval.List{view(0, 15), view(5, 15)}
	fillRange(data, 0, 15, 0)
	fillRange(data, 5, 15, 1) // rank 1 wrote last
	rep := CheckBytes(data, views)
	if !rep.Atomic() {
		t.Fatalf("clean serial file rejected: %+v", rep)
	}
	if got := rep.WinnerByRegion[interval.Extent{Off: 5, Len: 10}]; got != 1 {
		t.Errorf("winner = %d, want 1", got)
	}
	if Classify(rep, false) != Serializable {
		t.Errorf("verdict = %v, want %v", Classify(rep, false), Serializable)
	}
	if Classify(rep, true) != RecoveredSerializable {
		t.Errorf("recovered verdict = %v, want %v", Classify(rep, true), RecoveredSerializable)
	}
}

// TestCheckBytesTornInterleaving rejects a torn overlap: the atom holds a
// byte-interleaved mix of both writers.
func TestCheckBytesTornInterleaving(t *testing.T) {
	data := make([]byte, 20)
	views := []interval.List{view(0, 15), view(5, 15)}
	fillRange(data, 0, 15, 0)
	fillRange(data, 5, 15, 1)
	data[7] = Marker(0) // one stale byte inside the overlap
	rep := CheckBytes(data, views)
	if rep.Atomic() {
		t.Fatal("interleaved overlap accepted")
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v, want one", rep.Violations)
	}
	if Classify(rep, true) != Torn {
		t.Errorf("verdict = %v, want %v even with recovery claimed", Classify(rep, true), Torn)
	}
}

// TestCheckBytesLostData rejects zeros in an overlapped atom — the
// signature of a crashed server that dropped both writers' stripes.
func TestCheckBytesLostData(t *testing.T) {
	data := make([]byte, 20)
	views := []interval.List{view(0, 15), view(5, 15)}
	fillRange(data, 0, 15, 0)
	fillRange(data, 5, 15, 1)
	for i := 8; i < 12; i++ { // four bytes of the overlap revert to zero
		data[i] = 0
	}
	rep := CheckBytes(data, views)
	if rep.Atomic() {
		t.Fatal("lost (zeroed) overlap accepted")
	}
}

// TestCheckBytesForeignMarker rejects an atom holding a marker that
// belongs to none of its covering writers.
func TestCheckBytesForeignMarker(t *testing.T) {
	data := make([]byte, 20)
	views := []interval.List{view(0, 15), view(5, 15)}
	fillRange(data, 0, 15, 0)
	fillRange(data, 5, 15, 7) // rank 7 never covers this region
	rep := CheckBytes(data, views)
	if rep.Atomic() {
		t.Fatal("foreign marker accepted")
	}
}

// TestCheckBytesDuplicateGrantHistory rejects the duplicate-grant outcome:
// two writers each "win" one of two shared atoms — each uniform, but
// jointly admitting no serialization order (a cycle). This is what the
// file looks like when a lock manager hands the same range to two holders.
func TestCheckBytesDuplicateGrantHistory(t *testing.T) {
	views := []interval.List{
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},
	}
	data := make([]byte, 30)
	fillRange(data, 0, 10, 0)  // atom 1: rank 0 won → 0 after 1
	fillRange(data, 20, 10, 1) // atom 2: rank 1 won → 1 after 0
	rep := CheckBytes(data, views)
	if len(rep.Violations) != 0 {
		t.Fatalf("unexpected per-atom violations: %+v", rep.Violations)
	}
	if rep.OrderViolation == nil {
		t.Fatal("crossed winners accepted: no order violation reported")
	}
	if rep.Atomic() {
		t.Fatal("duplicate-grant history accepted")
	}
	if Classify(rep, false) != Torn {
		t.Errorf("verdict = %v, want %v", Classify(rep, false), Torn)
	}
}

// TestCheckBytesPartialTwoPhaseCommit rejects a partial two-phase commit:
// the crashed aggregator wrote only a prefix of its file domain, leaving
// the rest of the overlapped region as zeros.
func TestCheckBytesPartialTwoPhaseCommit(t *testing.T) {
	// Ranks 0 and 1 overlap on [8, 24); the two-phase merge gave the whole
	// overlap to rank 1, whose aggregator died after committing [8, 16).
	views := []interval.List{view(0, 24), view(8, 24)}
	data := make([]byte, 32)
	fillRange(data, 0, 8, 0)
	fillRange(data, 8, 8, 1)
	// [16, 24) never committed: zeros.
	fillRange(data, 24, 8, 1)
	rep := CheckBytes(data, views)
	if rep.Atomic() {
		t.Fatal("partial two-phase commit accepted")
	}
}

// TestCheckBytesThreeWriterCycle rejects a three-way winner cycle
// (0 after 1, 1 after 2, 2 after 0) — no pairwise atom is dirty, the
// inconsistency only exists globally.
func TestCheckBytesThreeWriterCycle(t *testing.T) {
	views := []interval.List{
		{{Off: 0, Len: 10}, {Off: 40, Len: 10}},  // shares [0,10) with 1, [40,50) with 2
		{{Off: 0, Len: 10}, {Off: 20, Len: 10}},  // shares [20,30) with 2
		{{Off: 20, Len: 10}, {Off: 40, Len: 10}}, //
	}
	data := make([]byte, 50)
	fillRange(data, 0, 10, 0)  // 0 after 1
	fillRange(data, 20, 10, 1) // 1 after 2
	fillRange(data, 40, 10, 2) // 2 after 0
	rep := CheckBytes(data, views)
	if rep.OrderViolation == nil {
		t.Fatal("three-way winner cycle accepted")
	}
}

// TestCheckBytesShortFile pins the implicit-zero tail: an overlap past the
// end of the image reads as lost data and is rejected.
func TestCheckBytesShortFile(t *testing.T) {
	views := []interval.List{view(0, 64), view(32, 64)}
	data := make([]byte, 16) // file image far shorter than the views
	fillRange(data, 0, 16, 0)
	rep := CheckBytes(data, views)
	if rep.Atomic() {
		t.Fatal("overlap past end of image accepted")
	}
}
