// Package verify checks MPI atomicity on the simulated file system's actual
// bytes. Writers stamp their buffers with a per-rank marker; after a
// concurrent overlapping write, the file is partitioned into atoms (maximal
// regions covered by the same set of writers) and MPI atomicity requires
// every multi-writer atom to contain the marker of exactly one of its
// covering writers ("the results of the overlapped regions shall contain
// data from only one of the MPI processes", §2.2). Interleaved atoms are
// reported as violations — the non-atomic outcome of Figure 2.
package verify

import (
	"fmt"
	"sort"

	"atomio/internal/interval"
	"atomio/internal/pfs"
)

// Marker returns the stamp byte of a rank. Zero is reserved for
// never-written bytes, so markers start at 1. With more than 255 ranks
// markers wrap and the checker loses precision; the paper's experiments use
// at most 16.
func Marker(rank int) byte { return byte(1 + rank%255) }

// Fill stamps buf with rank's marker.
func Fill(rank int, buf []byte) {
	m := Marker(rank)
	for i := range buf {
		buf[i] = m
	}
}

// Violation is one overlapped atom whose content breaks MPI atomicity.
type Violation struct {
	// Region is the offending atom.
	Region interval.Extent
	// Writers are the ranks whose views cover the atom.
	Writers []int
	// Markers are the distinct byte values found in the atom.
	Markers []byte
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("verify: region %v covered by ranks %v contains mixed markers %v",
		v.Region, v.Writers, v.Markers)
}

// OrderViolation reports that, although every atom was uniform, no single
// serialization order of the writers explains all the atoms' winners — the
// outcome of per-segment "atomicity" (paper §3.2: enforcing the atomicity
// of individual write() calls is not sufficient for MPI atomicity).
type OrderViolation struct {
	// Cycle is a sequence of ranks r0 -> r1 -> ... -> r0 where each rank
	// must serialize after the previous one according to some atom.
	Cycle []int
}

// Error renders the order violation.
func (v *OrderViolation) Error() string {
	return fmt.Sprintf("verify: atom winners admit no serialization order (cycle %v)", v.Cycle)
}

// Report summarizes an atomicity check.
type Report struct {
	// Atoms is the number of multi-writer atoms examined.
	Atoms int
	// OverlappedBytes is the total size of those atoms.
	OverlappedBytes int64
	// Violations are the atoms with interleaved content.
	Violations []Violation
	// OrderViolation is non-nil when the per-atom winners are
	// individually clean but mutually inconsistent (no serialization
	// order exists).
	OrderViolation *OrderViolation
	// WinnerByRegion records which covering rank's marker each clean atom
	// held, for policy checks such as highest-rank-wins.
	WinnerByRegion map[interval.Extent]int
}

// Atomic reports whether the outcome satisfies MPI atomicity: every
// multi-writer atom holds one writer's data AND the winners are consistent
// with some total serialization order of the write requests.
func (r *Report) Atomic() bool { return len(r.Violations) == 0 && r.OrderViolation == nil }

// atoms partitions the union of all views into maximal regions with a
// constant covering set, returning only regions covered by 2+ writers.
func atoms(views []interval.List) []struct {
	region  interval.Extent
	writers []int
} {
	norm := make([]interval.List, len(views))
	cutsSet := make(map[int64]bool)
	for i, v := range views {
		norm[i] = v.Normalize()
		for _, e := range norm[i] {
			cutsSet[e.Off] = true
			cutsSet[e.End()] = true
		}
	}
	cuts := make([]int64, 0, len(cutsSet))
	for c := range cutsSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	var out []struct {
		region  interval.Extent
		writers []int
	}
	for k := 0; k+1 < len(cuts); k++ {
		region := interval.Extent{Off: cuts[k], Len: cuts[k+1] - cuts[k]}
		var writers []int
		for i := range norm {
			if containsOff(norm[i], region.Off) {
				writers = append(writers, i)
			}
		}
		if len(writers) >= 2 {
			out = append(out, struct {
				region  interval.Extent
				writers []int
			}{region, writers})
		}
	}
	return out
}

// containsOff is interval.List.ContainsOffset for an already-canonical list
// (no re-normalization; atoms runs over many cut points).
func containsOff(l interval.List, off int64) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].End() > off })
	return i < len(l) && l[i].Contains(off)
}

// Check reads the overlapped atoms of the named file and verifies MPI
// atomicity, assuming rank i wrote Marker(i) everywhere in views[i]:
// every atom must hold exactly one covering writer's marker, and across
// atoms the winners must admit a total serialization order of the writers
// (each atom forces its winner to serialize after the atom's other
// writers; those constraints must be acyclic).
func Check(fs *pfs.FileSystem, name string, views []interval.List) (*Report, error) {
	return checkAtoms(func(e interval.Extent) ([]byte, error) {
		return fs.Snapshot(name, e)
	}, views)
}

// CheckBytes runs the atomicity check against an in-memory file image:
// offset o of the file is data[o], and offsets past the end read as zero
// (never written). It is the file-system-free checker adversarial tests
// and fuzzing drive with hand-constructed torn files.
func CheckBytes(data []byte, views []interval.List) *Report {
	rep, err := checkAtoms(func(e interval.Extent) ([]byte, error) {
		buf := make([]byte, e.Len)
		if e.Off < int64(len(data)) {
			copy(buf, data[e.Off:])
		}
		return buf, nil
	}, views)
	if err != nil {
		// The in-memory reader never fails.
		panic(err)
	}
	return rep
}

// checkAtoms is the shared core of Check and CheckBytes: partition the
// views into atoms, read each through the snapshot function, and apply the
// single-marker and serialization-order rules.
func checkAtoms(snapshot func(interval.Extent) ([]byte, error), views []interval.List) (*Report, error) {
	rep := &Report{WinnerByRegion: make(map[interval.Extent]int)}
	after := make(map[int]map[int]bool) // winner -> set of ranks it must follow
	for _, a := range atoms(views) {
		rep.Atoms++
		rep.OverlappedBytes += a.region.Len
		data, err := snapshot(a.region)
		if err != nil {
			return nil, err
		}
		distinct := distinctBytes(data)
		ok := len(distinct) == 1
		winner := -1
		if ok {
			for _, w := range a.writers {
				if Marker(w) == distinct[0] {
					winner = w
					break
				}
			}
			ok = winner >= 0
		}
		if !ok {
			rep.Violations = append(rep.Violations, Violation{
				Region:  a.region,
				Writers: a.writers,
				Markers: distinct,
			})
			continue
		}
		rep.WinnerByRegion[a.region] = winner
		if after[winner] == nil {
			after[winner] = make(map[int]bool)
		}
		for _, w := range a.writers {
			if w != winner {
				after[winner][w] = true
			}
		}
	}
	if cycle := findCycle(after); cycle != nil {
		rep.OrderViolation = &OrderViolation{Cycle: cycle}
	}
	return rep, nil
}

// findCycle looks for a cycle in the "must serialize after" digraph and
// returns it (ending where it starts), or nil.
func findCycle(after map[int]map[int]bool) []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		stack = append(stack, u)
		for v := range after[u] {
			switch color[v] {
			case grey:
				// Found: slice the stack from v's position.
				for i, w := range stack {
					if w == v {
						cycle = append(append([]int(nil), stack[i:]...), v)
						return true
					}
				}
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	nodes := make([]int, 0, len(after))
	for u := range after {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// StoresMatch compares the observable state of the named file between two
// file systems: file size, written extents, and the bytes of every written
// extent. It is the equivalence check behind the per-server storage
// subsystem's oracle discipline — a striped file system and its
// shared-store twin must match after any healthy workload (stripes
// partition the byte space; affinity merges resolve by global write
// order). Content is compared in bounded pieces so large sparse files
// never materialize at once.
func StoresMatch(a, b *pfs.FileSystem, name string) error {
	sizeA, err := a.FileSize(name)
	if err != nil {
		return err
	}
	sizeB, err := b.FileSize(name)
	if err != nil {
		return err
	}
	if sizeA != sizeB {
		return fmt.Errorf("verify: %s sizes differ: %d vs %d", name, sizeA, sizeB)
	}
	extA, err := a.WrittenExtents(name)
	if err != nil {
		return err
	}
	extB, err := b.WrittenExtents(name)
	if err != nil {
		return err
	}
	if !extA.Equal(extB) {
		return fmt.Errorf("verify: %s written extents differ:\n  %v\n  %v", name, extA, extB)
	}
	const piece = 1 << 20
	for _, e := range extA {
		for off := e.Off; off < e.End(); off += piece {
			n := e.End() - off
			if n > piece {
				n = piece
			}
			part := interval.Extent{Off: off, Len: n}
			bufA, err := a.Snapshot(name, part)
			if err != nil {
				return err
			}
			bufB, err := b.Snapshot(name, part)
			if err != nil {
				return err
			}
			for i := range bufA {
				if bufA[i] != bufB[i] {
					return fmt.Errorf("verify: %s content differs at offset %d: %#x vs %#x",
						name, off+int64(i), bufA[i], bufB[i])
				}
			}
		}
	}
	return nil
}

// distinctBytes returns the sorted distinct values in data (capped at 8,
// enough for a diagnostic).
func distinctBytes(data []byte) []byte {
	var seen [256]bool
	var out []byte
	for _, b := range data {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
			if len(out) == 8 {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
