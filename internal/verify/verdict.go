package verify

// Verdict classifies one run's atomicity outcome for the failure-injection
// fleet: did the file end up equal to some serial order of the write
// requests, and was recovery needed to get there?
type Verdict string

const (
	// Serializable: the file passed the atomicity check with no replay —
	// the healthy outcome, and the required outcome of the locking and
	// two-phase strategies under every injected fault once recovery ran.
	Serializable Verdict = "serializable"
	// Torn: the file failed the check — an overlapped atom holds mixed or
	// lost data, or the atom winners admit no serialization order. The
	// expected outcome of faulted runs without recovery (the fleet's
	// negative control).
	Torn Verdict = "torn"
	// RecoveredSerializable: the file passed the check, but only after
	// the write-ahead log was replayed over fault damage.
	RecoveredSerializable Verdict = "recovered-serializable"
)

// Classify maps a check report to a verdict. recovered says whether a
// write-ahead replay repaired the file before the check ran.
func Classify(rep *Report, recovered bool) Verdict {
	if !rep.Atomic() {
		return Torn
	}
	if recovered {
		return RecoveredSerializable
	}
	return Serializable
}
