package core

import (
	"fmt"

	"atomio/internal/interval"
	"atomio/internal/mpi"
)

// EncodeExtents serializes an extent list as (off, len) int64 pairs for the
// view-exchange handshake.
func EncodeExtents(l interval.List) []byte {
	vals := make([]int64, 0, 2*len(l))
	for _, e := range l {
		vals = append(vals, e.Off, e.Len)
	}
	return mpi.EncodeInt64s(vals...)
}

// DecodeExtents reverses EncodeExtents.
func DecodeExtents(b []byte) (interval.List, error) {
	vals := mpi.DecodeInt64s(b)
	if len(vals)%2 != 0 {
		return nil, fmt.Errorf("core: odd extent payload length %d", len(vals))
	}
	out := make(interval.List, len(vals)/2)
	for i := range out {
		out[i] = interval.Extent{Off: vals[2*i], Len: vals[2*i+1]}
	}
	return out, nil
}

// ExchangeViews allgathers every rank's file extents — the process
// handshake both the coloring and ordering strategies start with. The
// result is indexed by rank. Extents are sent in canonical form.
func ExchangeViews(comm *mpi.Comm, mine interval.List) ([]interval.List, error) {
	all := comm.Allgather(EncodeExtents(mine.Normalize()))
	out := make([]interval.List, len(all))
	for r, b := range all {
		l, err := DecodeExtents(b)
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
		out[r] = l
	}
	return out, nil
}

// ExchangeSpans allgathers only each rank's bounding span — the cheaper,
// conservative handshake sufficient to build an overlap matrix when views
// are known to be interval-like. Used by the handshake-cost ablation (A5).
func ExchangeSpans(comm *mpi.Comm, mine interval.List) ([]interval.Extent, error) {
	span := mine.Span()
	all := comm.Allgather(mpi.EncodeInt64s(span.Off, span.Len))
	out := make([]interval.Extent, len(all))
	for r, b := range all {
		vals := mpi.DecodeInt64s(b)
		if len(vals) != 2 {
			return nil, fmt.Errorf("core: bad span payload from rank %d", r)
		}
		out[r] = interval.Extent{Off: vals[0], Len: vals[1]}
	}
	return out, nil
}
