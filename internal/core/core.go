// Package core implements the paper's contribution: the three strategies
// that make concurrent overlapping MPI-IO writes obey MPI atomicity
// semantics.
//
//   - Locking — wrap each process's whole (possibly non-contiguous) request
//     in one exclusive byte-range lock spanning first to last byte (§3.2,
//     the ROMIO approach).
//   - Coloring — exchange file views, build the P×P overlap matrix W,
//     greedily color the conflict graph (Figure 5), and write in one phase
//     per color with barriers in between (§3.3.1).
//   - RankOrder — exchange file views and let the highest overlapping rank
//     own every contested byte; lower ranks clip their views and all ranks
//     write concurrently with zero overlap (§3.3.2).
//
// Strategies operate on a Context assembled by package mpiio. All three are
// collective: every rank of the communicator must call WriteAll together.
package core

import (
	"fmt"

	"atomio/internal/fileview"
	"atomio/internal/interval"
	"atomio/internal/lock"
	"atomio/internal/mpi"
	"atomio/internal/pfs"
	"atomio/internal/trace"
)

// Context carries the per-rank machinery a strategy needs.
type Context struct {
	// Comm is a library-private communicator (a Dup of the application's).
	Comm *mpi.Comm
	// Client is this rank's file-system client.
	Client *pfs.Client
	// LockMgr is the platform's lock manager; nil when the file system
	// has no byte-range locking (Cplant ENFS).
	LockMgr lock.Manager
	// Trace, when non-nil, receives per-phase virtual-time breakdowns
	// (handshake / lock wait / transfer / sync wait / exchange).
	Trace *trace.Recorder
	// Fault, when non-nil, is the failure-injection plan consulted for
	// writer crashes.
	Fault Faults
}

// span opens a trace span for this rank; no-op when tracing is off.
func (ctx *Context) span(p trace.Phase) *trace.Span {
	return trace.Start(ctx.Trace, ctx.Comm.Rank(), p, ctx.Comm.Clock())
}

// Faults is the slice of the failure-injection surface a strategy consults:
// whether this rank's writer dies mid-request, and after how many committed
// segments. Implemented by sim/fault.Injector; nil on healthy runs. A
// strategy that hits a crash must still complete its collective protocol
// (barriers, exchanges) so the surviving ranks do not hang — the crash
// surrenders data, not control flow — and must report the never-written
// extents through Client.Damage so recovery and the verifier see them.
type Faults interface {
	WriterCrash(rank int) (segments int, crashed bool)
}

// crashPoint consults the fault plan for this rank: it returns how many of
// n segments the writer commits before dying and whether it dies at all
// (k == n, false on healthy runs).
func (ctx *Context) crashPoint(n int) (int, bool) {
	if ctx.Fault == nil {
		return n, false
	}
	k, crashed := ctx.Fault.WriterCrash(ctx.Comm.Rank())
	if !crashed {
		return n, false
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k, true
}

// segExtents lists the file extents of materialized segments.
func segExtents(segs []pfs.Segment) interval.List {
	out := make(interval.List, 0, len(segs))
	for _, s := range segs {
		out = append(out, interval.Extent{Off: s.Off, Len: int64(len(s.Data))})
	}
	return out.Normalize()
}

// Strategy is one atomicity implementation.
type Strategy interface {
	// Name returns the strategy's short name as used in the paper's plots.
	Name() string
	// WriteAll collectively writes buf according to the precomputed
	// request mapping (one entry per contiguous file segment, in logical
	// buffer order), guaranteeing MPI atomic semantics for the overlaps.
	WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error
}

// segments materializes the pfs segments of a mapped request.
func segments(buf []byte, maps []fileview.Mapping) []pfs.Segment {
	segs := make([]pfs.Segment, len(maps))
	for i, m := range maps {
		segs[i] = pfs.Segment{Off: m.File.Off, Data: buf[m.Buf : m.Buf+m.File.Len]}
	}
	return segs
}

// extentsOf lists the file extents of a mapped request in canonical order
// (fileview guarantees increasing, non-overlapping extents).
func extentsOf(maps []fileview.Mapping) interval.List {
	out := make(interval.List, len(maps))
	for i, m := range maps {
		out[i] = m.File
	}
	return out
}

// clipSegments restricts a mapped request to the bytes in keep, preserving
// buffer correspondence. It is the "re-calculation of each process's file
// view" step of the rank-ordering strategy (§3.3.2).
func clipSegments(buf []byte, maps []fileview.Mapping, keep interval.List) []pfs.Segment {
	keep = keep.Normalize()
	var segs []pfs.Segment
	j := 0
	for _, m := range maps {
		for j < len(keep) && keep[j].End() <= m.File.Off {
			j++
		}
		for k := j; k < len(keep) && keep[k].Off < m.File.End(); k++ {
			ov := m.File.Intersect(keep[k])
			if ov.Empty() {
				continue
			}
			bufOff := m.Buf + (ov.Off - m.File.Off)
			segs = append(segs, pfs.Segment{Off: ov.Off, Data: buf[bufOff : bufOff+ov.Len]})
		}
	}
	return segs
}

// ByName returns the strategy with the given name ("locking", "coloring",
// "ordering", or the §3.2 extension "listio").
func ByName(name string) (Strategy, error) {
	switch name {
	case "locking":
		return Locking{}, nil
	case "coloring":
		return Coloring{}, nil
	case "ordering":
		return RankOrder{}, nil
	case "listio":
		return ListIO{}, nil
	case "twophase":
		return TwoPhase{}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", name)
	}
}

// All returns the three strategies in the paper's presentation order.
func All() []Strategy {
	return []Strategy{Locking{}, Coloring{}, RankOrder{}}
}
