package core

import (
	"atomio/internal/fileview"
	"atomio/internal/trace"
)

// RankOrder is the process-rank ordering strategy of §3.3.2: after the view
// exchange, every rank clips from its own view the bytes any higher rank
// will write. The clipped views are pairwise disjoint, so all ranks write
// concurrently with no locks and no phases, and the total I/O volume
// shrinks by the surrendered overlap bytes. This is the strategy that wins
// almost everywhere in Figure 8.
type RankOrder struct{}

// Name implements Strategy.
func (RankOrder) Name() string { return "ordering" }

// WriteAll implements Strategy.
func (RankOrder) WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error {
	mine := extentsOf(maps)
	hs := ctx.span(trace.PhaseHandshake)
	views, err := ExchangeViews(ctx.Comm, mine)
	if err != nil {
		return err
	}
	keep := ClipForRank(views, ctx.Comm.Rank())
	hs.Stop()
	xfer := ctx.span(trace.PhaseTransfer)
	ctx.Client.WriteV(clipSegments(buf, maps, keep))
	// Flush so the collective completes with data visible to all; no
	// barrier is needed because no two ranks touch the same byte.
	ctx.Client.Sync()
	ctx.Client.Invalidate()
	xfer.Stop()
	return nil
}

var _ Strategy = RankOrder{}
