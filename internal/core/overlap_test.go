package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atomio/internal/interval"
	"atomio/internal/workload"
)

func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

// columnWiseViews builds the file extent lists of a column-wise partition.
func columnWiseViews(t *testing.T, m, n, p, r int) []interval.List {
	t.Helper()
	views := make([]interval.List, p)
	for rank := 0; rank < p; rank++ {
		piece, err := workload.ColumnWise(m, n, p, r, rank)
		if err != nil {
			t.Fatal(err)
		}
		views[rank] = interval.List(piece.Filetype.Flatten())
	}
	return views
}

func TestBuildOverlapMatrixColumnWise(t *testing.T) {
	// Figure 6's W matrix for P=4 column-wise: tridiagonal.
	views := columnWiseViews(t, 8, 16, 4, 2)
	w := BuildOverlapMatrix(views)
	want := OverlapMatrix{
		{false, true, false, false},
		{true, false, true, false},
		{false, true, false, true},
		{false, false, true, false},
	}
	for i := range want {
		for j := range want[i] {
			if w[i][j] != want[i][j] {
				t.Fatalf("W =\n%v\nwant tridiagonal (mismatch at %d,%d)", w, i, j)
			}
		}
	}
	if got := w.String(); got != "0 1 0 0\n1 0 1 0\n0 1 0 1\n0 0 1 0" {
		t.Fatalf("W render = %q", got)
	}
	if w.Degree(0) != 1 || w.Degree(1) != 2 {
		t.Fatal("degrees wrong")
	}
	if !w.HasAnyOverlap() {
		t.Fatal("overlap not detected")
	}
}

func TestFigure6TwoColoring(t *testing.T) {
	// The paper's Figure 6: for column-wise partitioning two colors
	// suffice — even ranks write first, then odd ranks.
	views := columnWiseViews(t, 8, 32, 4, 2)
	w := BuildOverlapMatrix(views)
	colors, num := GreedyColor(w)
	if num != 2 {
		t.Fatalf("colors = %d, want 2", num)
	}
	for rank, c := range colors {
		if c != rank%2 {
			t.Fatalf("rank %d color %d, want parity %d", rank, c, rank%2)
		}
	}
	if !ValidColoring(w, colors) {
		t.Fatal("coloring invalid")
	}
}

func TestGreedyColoringAlgorithm(t *testing.T) {
	// Hand-checked instance: a triangle plus a pendant vertex.
	w := OverlapMatrix{
		{false, true, true, false},
		{true, false, true, false},
		{true, true, false, true},
		{false, false, true, false},
	}
	colors, num := GreedyColor(w)
	want := []int{0, 1, 2, 0}
	for i := range want {
		if colors[i] != want[i] {
			t.Fatalf("colors = %v, want %v", colors, want)
		}
	}
	if num != 3 {
		t.Fatalf("num = %d, want 3", num)
	}
}

func TestGreedyColoringNoOverlapsOneColor(t *testing.T) {
	w := BuildOverlapMatrix([]interval.List{{ext(0, 10)}, {ext(20, 10)}, {ext(40, 10)}})
	if w.HasAnyOverlap() {
		t.Fatal("disjoint views reported overlapping")
	}
	colors, num := GreedyColor(w)
	if num != 1 {
		t.Fatalf("num = %d, want 1", num)
	}
	for _, c := range colors {
		if c != 0 {
			t.Fatalf("colors = %v", colors)
		}
	}
}

func TestGreedyColoringAllPairwiseOverlap(t *testing.T) {
	// All ranks share one byte: P colors needed (fully serialized).
	views := make([]interval.List, 5)
	for i := range views {
		views[i] = interval.List{ext(0, 1)}
	}
	_, num := GreedyColor(BuildOverlapMatrix(views))
	if num != 5 {
		t.Fatalf("num = %d, want 5", num)
	}
}

func TestQuickGreedyColoringAlwaysValid(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := int(pRaw%16) + 1
		w := make(OverlapMatrix, p)
		for i := range w {
			w[i] = make([]bool, p)
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if r.Intn(3) == 0 {
					w[i][j], w[j][i] = true, true
				}
			}
		}
		colors, num := GreedyColor(w)
		if !ValidColoring(w, colors) {
			return false
		}
		for _, c := range colors {
			if c < 0 || c >= num {
				return false
			}
		}
		// Greedy bound: at most max-degree+1 colors.
		maxDeg := 0
		for i := range w {
			if d := w.Degree(i); d > maxDeg {
				maxDeg = d
			}
		}
		return num <= maxDeg+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure7ClippedViews(t *testing.T) {
	// §3.3.2/Figure 7: under rank ordering with column-wise partitioning,
	// each rank surrenders its rightmost R overlap columns to the next
	// rank; rank P-1 keeps everything.
	const m, n, p, r = 4, 16, 4, 2
	views := columnWiseViews(t, m, n, p, r)

	// Rank P-1 keeps its full view.
	lastClip := ClipForRank(views, p-1)
	if !lastClip.Equal(views[p-1]) {
		t.Fatalf("highest rank lost bytes: %v vs %v", lastClip, views[p-1])
	}

	for rank := 0; rank < p-1; rank++ {
		clip := ClipForRank(views, rank)
		// The clipped view must not intersect any higher rank's view...
		for j := rank + 1; j < p; j++ {
			if clip.Overlaps(views[j]) {
				t.Fatalf("rank %d clip still overlaps rank %d", rank, j)
			}
		}
		// ...and must retain everything not claimed by higher ranks.
		var higher interval.List
		for j := rank + 1; j < p; j++ {
			higher = append(higher, views[j]...)
		}
		if !clip.Equal(views[rank].Subtract(higher)) {
			t.Fatalf("rank %d clip wrong", rank)
		}
		// Column-wise: what is lost is exactly R columns x M rows.
		lost := views[rank].Normalize().TotalLen() - clip.TotalLen()
		if lost != int64(m*r) {
			t.Fatalf("rank %d surrendered %d bytes, want %d", rank, lost, m*r)
		}
	}

	// Clipped views tile the whole file exactly once.
	var union interval.List
	for rank := 0; rank < p; rank++ {
		union = union.Union(ClipForRank(views, rank))
	}
	if !union.Equal(interval.List{ext(0, m*n)}) {
		t.Fatalf("clipped union = %v, want whole file", union)
	}
	var total int64
	for rank := 0; rank < p; rank++ {
		total += ClipForRank(views, rank).TotalLen()
	}
	if total != m*n {
		t.Fatalf("clipped total = %d, want %d (no double writes)", total, m*n)
	}

	// Total surrendered bytes = (P-1) * R * M (§3.3.2 overhead analysis).
	if got := SurrenderedBytes(views); got != int64((p-1)*r*m) {
		t.Fatalf("surrendered = %d, want %d", got, (p-1)*r*m)
	}
}

// randViews draws bounded random view sets for the property tests.
func randViews(r *rand.Rand, p int) []interval.List {
	views := make([]interval.List, p)
	for i := range views {
		n := r.Intn(8)
		for k := 0; k < n; k++ {
			views[i] = append(views[i], ext(int64(r.Intn(300)), int64(r.Intn(50))))
		}
	}
	return views
}

func TestQuickClipDisjointAndComplete(t *testing.T) {
	// For random view sets: clipped views are pairwise disjoint and their
	// union equals the union of the original views.
	f := func(seed int64) bool {
		views := randViews(rand.New(rand.NewSource(seed)), 4)
		clips := make([]interval.List, len(views))
		var union, clipUnion interval.List
		for i := range views {
			clips[i] = ClipForRank(views, i)
			union = union.Union(views[i])
			clipUnion = clipUnion.Union(clips[i])
		}
		for i := range clips {
			for j := i + 1; j < len(clips); j++ {
				if clips[i].Overlaps(clips[j]) {
					return false
				}
			}
		}
		return clipUnion.Equal(union)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHighestRankOwnsEveryContestedByte(t *testing.T) {
	f := func(seed int64) bool {
		views := randViews(rand.New(rand.NewSource(seed)), 3)
		// Every byte of views[2] stays with rank 2.
		if !ClipForRank(views, 2).Equal(views[2]) {
			return false
		}
		// A byte in both views[0] and views[2] never survives in clip 0.
		shared := views[0].Intersect(views[2])
		return !ClipForRank(views, 0).Overlaps(shared)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOverlapMatrixFromSpansIsConservative(t *testing.T) {
	// Interleaved but disjoint views: exact matrix says no overlap, span
	// matrix says overlap.
	views := []interval.List{
		{ext(0, 2), ext(10, 2)},
		{ext(5, 2), ext(15, 2)},
	}
	exact := BuildOverlapMatrix(views)
	if exact[0][1] {
		t.Fatal("exact matrix wrong")
	}
	spans := []interval.Extent{views[0].Span(), views[1].Span()}
	cons := BuildOverlapMatrixFromSpans(spans)
	if !cons[0][1] || !cons[1][0] {
		t.Fatal("span matrix should be conservative")
	}
}

func TestExtentCodecRoundTrip(t *testing.T) {
	l := interval.List{ext(3, 4), ext(100, 1), ext(1<<40, 1<<20)}
	got, err := DecodeExtents(EncodeExtents(l))
	if err != nil || !got.Equal(l) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := DecodeExtents(make([]byte, 8)); err == nil {
		t.Fatal("odd payload should fail")
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, name := range []string{"locking", "coloring", "ordering"} {
		s, err := ByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("two-phase"); err == nil {
		t.Fatal("unknown strategy should fail")
	}
	if len(All()) != 3 {
		t.Fatal("All() should list 3 strategies")
	}
}

// TestSweepMatrixMatchesLinearOracle pins the sweep-line overlap matrix to
// the pre-index pairwise implementation on randomized view sets.
func TestSweepMatrixMatchesLinearOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for round := 0; round < 300; round++ {
		views := randViews(r, 1+r.Intn(9))
		got := BuildOverlapMatrix(views)
		want := BuildOverlapMatrixLinear(views)
		if got.String() != want.String() {
			t.Fatalf("sweep matrix differs from linear oracle:\n%v\nwant\n%v\nviews=%v",
				got, want, views)
		}
	}
}

// TestSpanMatrixMatchesPairwiseOracle pins span mode to pairwise
// Extent.Overlaps, including empty spans.
func TestSpanMatrixMatchesPairwiseOracle(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for round := 0; round < 300; round++ {
		p := 1 + r.Intn(9)
		spans := make([]interval.Extent, p)
		for i := range spans {
			spans[i] = ext(int64(r.Intn(250)), int64(r.Intn(40)))
		}
		got := BuildOverlapMatrixFromSpans(spans)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				want := i != j && spans[i].Overlaps(spans[j])
				if got[i][j] != want {
					t.Fatalf("W[%d][%d] = %v, want %v for %v", i, j, got[i][j], want, spans)
				}
			}
		}
	}
}

// TestClipAllMatchesClipForRank pins the one-sweep clip to the per-rank
// subtract implementation the rank-ordering strategy uses.
func TestClipAllMatchesClipForRank(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for round := 0; round < 200; round++ {
		views := randViews(r, 1+r.Intn(8))
		clips := ClipAll(views)
		for rank := range views {
			want := ClipForRank(views, rank)
			if !clips[rank].Equal(want) {
				t.Fatalf("ClipAll[%d] = %v, want %v\nviews=%v", rank, clips[rank], want, views)
			}
		}
	}
}
