package core

import (
	"atomio/internal/fileview"
	"atomio/internal/trace"
)

// Coloring is the graph-coloring process-handshaking strategy of §3.3.1:
// ranks exchange file views, build the overlap matrix W locally, color the
// conflict graph with the greedy algorithm of Figure 5, and perform the
// I/O in one phase per color. A barrier separates phases ("process
// synchronization between any two steps is necessary"), and each phase's
// writers flush before the barrier so the next phase sees their data.
type Coloring struct {
	// UseSpans builds W from bounding spans instead of exact extent
	// lists (ablation A5): a cheaper handshake that can only
	// over-approximate overlap.
	UseSpans bool
}

// Name implements Strategy.
func (s Coloring) Name() string {
	if s.UseSpans {
		return "coloring-spans"
	}
	return "coloring"
}

// WriteAll implements Strategy.
func (s Coloring) WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error {
	mine := extentsOf(maps)

	// Handshake: exchange views, build W locally, color.
	hs := ctx.span(trace.PhaseHandshake)
	var w OverlapMatrix
	if s.UseSpans {
		spans, err := ExchangeSpans(ctx.Comm, mine)
		if err != nil {
			return err
		}
		w = BuildOverlapMatrixFromSpans(spans)
	} else {
		views, err := ExchangeViews(ctx.Comm, mine)
		if err != nil {
			return err
		}
		w = BuildOverlapMatrix(views)
	}
	colors, numColors := GreedyColor(w)
	myColor := colors[ctx.Comm.Rank()]
	hs.Stop()

	// One I/O phase per color, barrier-separated.
	for step := 0; step < numColors; step++ {
		if step == myColor {
			xfer := ctx.span(trace.PhaseTransfer)
			ctx.Client.WriteV(segments(buf, maps))
			// Flush write-behind data so the write is visible before
			// the next phase starts (the per-write file sync of §3).
			ctx.Client.Sync()
			xfer.Stop()
		}
		sw := ctx.span(trace.PhaseSyncWait)
		ctx.Comm.Barrier()
		sw.Stop()
	}
	// Reads after an overlapping write must not be served from a stale
	// cache (§3: "A cache invalidation shall also perform in each process
	// before reading from the overlapped regions").
	ctx.Client.Invalidate()
	return nil
}

var _ Strategy = Coloring{}
