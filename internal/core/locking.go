package core

import (
	"errors"

	"atomio/internal/fileview"
	"atomio/internal/lock"
	"atomio/internal/trace"
)

// ErrNoLockManager is returned when the locking strategy runs on a file
// system without byte-range locking (the paper could not run the locking
// experiments on Cplant's ENFS for this reason).
var ErrNoLockManager = errors.New("core: file system provides no byte-range locking")

// Locking is the byte-range file-locking strategy of §3.2: acquire one
// exclusive lock covering the whole request span — "the file lock must
// start at the process's first file offset and end at the very last file
// offset the process will write, virtually the entire file" — write, flush,
// and release. For the column-wise pattern the spans of all ranks
// interleave, so the lock conflicts serialize all writers; that is the
// measured collapse of the locking curves in Figure 8.
type Locking struct {
	// PerSegment switches to locking each contiguous segment separately.
	// That mode is intentionally WRONG for MPI atomicity (the paper:
	// "Enforcing the atomicity of individual read()/write() calls is not
	// sufficient to enforce MPI atomicity") and exists so tests can
	// demonstrate the violation.
	PerSegment bool
}

// Name implements Strategy.
func (s Locking) Name() string {
	if s.PerSegment {
		return "locking-per-segment"
	}
	return "locking"
}

// WriteAll implements Strategy.
func (s Locking) WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error {
	if ctx.LockMgr == nil {
		return ErrNoLockManager
	}
	clock := ctx.Comm.Clock()
	rank := ctx.Comm.Rank()
	if s.PerSegment {
		for _, m := range maps {
			grant := ctx.LockMgr.Lock(rank, m.File, lock.Exclusive, clock.Now())
			clock.AdvanceTo(grant)
			ctx.Client.WriteAt(m.File.Off, buf[m.Buf:m.Buf+m.File.Len])
			ctx.Client.Sync()
			clock.AdvanceTo(ctx.LockMgr.Unlock(rank, m.File, clock.Now()))
		}
		return nil
	}
	span := extentsOf(maps).Span()
	if span.Empty() {
		return nil
	}
	lockSpan := ctx.span(trace.PhaseLockWait)
	grant := ctx.LockMgr.Lock(rank, span, lock.Exclusive, clock.Now())
	clock.AdvanceTo(grant)
	lockSpan.Stop()
	// While locked, all traffic goes to the servers: write and flush
	// before releasing so the data is visible to the next lock holder.
	segs := segments(buf, maps)
	k, crashed := ctx.crashPoint(len(segs))
	xfer := ctx.span(trace.PhaseTransfer)
	ctx.Client.WriteV(segs[:k])
	if crashed {
		// The writer dies mid-request: the remaining segments are never
		// issued and their extents become damage. The lock still comes
		// back (lease revocation on the real system); charging it as a
		// normal release keeps the run deterministic.
		ctx.Client.Damage(segExtents(segs[k:]))
	}
	ctx.Client.Sync()
	xfer.Stop()
	clock.AdvanceTo(ctx.LockMgr.Unlock(rank, span, clock.Now()))
	return nil
}

var _ Strategy = Locking{}
