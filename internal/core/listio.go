package core

import (
	"atomio/internal/fileview"
)

// ListIO is the hypothetical fourth implementation the paper sketches in
// §3.2: "If POSIX atomicity is extended to lio_listio(), the MPI atomicity
// can be guaranteed by implementing the non-contiguous access on top of
// lio_listio()." Each rank submits its whole non-contiguous request as one
// atomic vectored call; the file system serializes conflicting calls
// internally, so no application-level locking or handshaking is needed.
//
// No file system of the paper's era provided this; it runs only on
// simulated file systems configured with pfs.Config.AtomicListIO and exists
// to quantify what the capability would buy (benchmark ablation A6).
type ListIO struct{}

// Name implements Strategy.
func (ListIO) Name() string { return "listio" }

// WriteAll implements Strategy.
func (ListIO) WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error {
	return ctx.Client.WriteVAtomic(segments(buf, maps))
}

var _ Strategy = ListIO{}
