package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"atomio/internal/fileview"
	"atomio/internal/interval"
	"atomio/internal/interval/index"
	"atomio/internal/pfs"
	"atomio/internal/trace"
)

// TwoPhase is two-phase collective I/O (ROMIO's collective buffering)
// extended into an atomicity strategy — the natural follow-on to the
// paper's handshaking methods. Ranks exchange file views, the aggregate
// span is split into P contiguous, disjoint *file domains*, and an exchange
// phase routes every rank's data to the domain owners (alltoall). Each
// owner merges the pieces it received — resolving overlaps with the same
// highest-rank-wins rule as RankOrder — and issues one mostly-contiguous
// write for its domain.
//
// MPI atomicity holds by construction: file domains are disjoint, so after
// the exchange no two processes write the same byte, and every contested
// byte carries the highest writer's data (a serialization in rank order).
// The performance trade is network exchange volume against far fewer
// non-contiguous file segments per writer.
type TwoPhase struct{}

// Name implements Strategy.
func (TwoPhase) Name() string { return "twophase" }

// WriteAll implements Strategy.
func (TwoPhase) WriteAll(ctx *Context, buf []byte, maps []fileview.Mapping) error {
	comm := ctx.Comm
	p := comm.Size()
	mine := extentsOf(maps)

	hs := ctx.span(trace.PhaseHandshake)
	views, err := ExchangeViews(comm, mine)
	if err != nil {
		return err
	}
	var all interval.List
	for _, v := range views {
		all = all.Union(v)
	}
	if all.TotalLen() == 0 {
		comm.Barrier()
		return nil
	}
	domains := fileDomains(all.Span(), p)
	hs.Stop()

	// Phase 1: route each of my segments to the domain owners. Domains are
	// sorted and disjoint, so each segment binary-searches its first owner
	// and walks forward only while domains still intersect it — O(log P +
	// owners touched) per segment instead of intersecting all P domains.
	parts := make([][]byte, p)
	for _, m := range maps {
		lo := sort.Search(len(domains), func(i int) bool { return domains[i].End() > m.File.Off })
		for owner := lo; owner < len(domains) && domains[owner].Off < m.File.End(); owner++ {
			ov := m.File.Intersect(domains[owner])
			if ov.Empty() {
				continue
			}
			data := buf[m.Buf+(ov.Off-m.File.Off) : m.Buf+(ov.Off-m.File.Off)+ov.Len]
			parts[owner] = appendPiece(parts[owner], ov.Off, data)
		}
	}
	ex := ctx.span(trace.PhaseExchange)
	recv := comm.Alltoall(parts)
	ex.Stop()

	// Phase 2: merge received pieces highest-rank-wins and write my domain.
	segs, err := mergePieces(recv, domains[comm.Rank()])
	if err != nil {
		return err
	}
	k, crashed := ctx.crashPoint(len(segs))
	xfer := ctx.span(trace.PhaseTransfer)
	ctx.Client.WriteV(segs[:k])
	if crashed {
		// The domain owner dies between the exchange and its domain
		// write — the partial two-phase commit. The unissued segments
		// become damage; the collective still completes (barrier below)
		// so the surviving ranks return.
		ctx.Client.Damage(segExtents(segs[k:]))
	}
	ctx.Client.Sync()
	ctx.Client.Invalidate()
	xfer.Stop()
	sw := ctx.span(trace.PhaseSyncWait)
	comm.Barrier()
	sw.Stop()
	return nil
}

// fileDomains splits span into n contiguous disjoint domains of near-equal
// size (the last absorbs the remainder). Domains may be empty when the span
// is smaller than n bytes.
func fileDomains(span interval.Extent, n int) []interval.Extent {
	out := make([]interval.Extent, n)
	chunk := span.Len / int64(n)
	off := span.Off
	for i := 0; i < n; i++ {
		l := chunk
		if i == n-1 {
			l = span.End() - off
		}
		out[i] = interval.Extent{Off: off, Len: l}
		off += l
	}
	return out
}

// appendPiece encodes one (offset, data) piece onto a routing payload.
func appendPiece(payload []byte, off int64, data []byte) []byte {
	payload = binary.LittleEndian.AppendUint64(payload, uint64(off))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(data)))
	return append(payload, data...)
}

// decodePieces reverses appendPiece.
func decodePieces(payload []byte) ([]pfs.Segment, error) {
	var out []pfs.Segment
	for len(payload) > 0 {
		if len(payload) < 16 {
			return nil, fmt.Errorf("core: truncated two-phase piece header")
		}
		off := int64(binary.LittleEndian.Uint64(payload))
		n := int64(binary.LittleEndian.Uint64(payload[8:]))
		payload = payload[16:]
		if n < 0 || n > int64(len(payload)) {
			return nil, fmt.Errorf("core: truncated two-phase piece body")
		}
		out = append(out, pfs.Segment{Off: off, Data: payload[:n]})
		payload = payload[n:]
	}
	return out, nil
}

// mergePieces combines the pieces received from every rank (indexed by
// source rank) into disjoint segments covering at most the owner's domain,
// with bytes from the highest sending rank winning every overlap. Pieces
// are processed from the highest rank down; each claims only the bytes not
// yet covered, tracked in an index.Set whose Add returns exactly the newly
// covered parts — O(log n) per piece instead of a full-list subtract and
// re-union.
func mergePieces(recv [][]byte, domain interval.Extent) ([]pfs.Segment, error) {
	var covered index.Set
	var segs []pfs.Segment
	for src := len(recv) - 1; src >= 0; src-- {
		pieces, err := decodePieces(recv[src])
		if err != nil {
			return nil, fmt.Errorf("from rank %d: %w", src, err)
		}
		for _, piece := range pieces {
			ext := interval.Extent{Off: piece.Off, Len: int64(len(piece.Data))}.Intersect(domain)
			for _, keep := range covered.Add(ext) {
				segs = append(segs, pfs.Segment{
					Off:  keep.Off,
					Data: piece.Data[keep.Off-piece.Off : keep.End()-piece.Off],
				})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	return segs, nil
}

var _ Strategy = TwoPhase{}
