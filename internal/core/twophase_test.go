package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"atomio/internal/interval"
)

func TestFileDomains(t *testing.T) {
	d := fileDomains(ext(100, 10), 3)
	want := []interval.Extent{ext(100, 3), ext(103, 3), ext(106, 4)}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("domains = %v, want %v", d, want)
		}
	}
	// Disjoint, covering, ordered — for any split.
	d = fileDomains(ext(0, 1), 4)
	var total int64
	for i, e := range d {
		total += e.Len
		if i > 0 && d[i-1].End() != e.Off {
			t.Fatalf("domains not contiguous: %v", d)
		}
	}
	if total != 1 {
		t.Fatalf("domains don't cover span: %v", d)
	}
}

func TestPieceCodecRoundTrip(t *testing.T) {
	payload := appendPiece(nil, 42, []byte("hello"))
	payload = appendPiece(payload, 1000, []byte{})
	payload = appendPiece(payload, 7, []byte{1, 2, 3})
	segs, err := decodePieces(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segs = %v", segs)
	}
	if segs[0].Off != 42 || string(segs[0].Data) != "hello" {
		t.Fatalf("seg0 = %+v", segs[0])
	}
	if segs[1].Off != 1000 || len(segs[1].Data) != 0 {
		t.Fatalf("seg1 = %+v", segs[1])
	}
	if _, err := decodePieces([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header accepted")
	}
	long := appendPiece(nil, 0, []byte("abc"))
	if _, err := decodePieces(long[:len(long)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestMergePiecesHighestRankWins(t *testing.T) {
	domain := ext(0, 100)
	recv := make([][]byte, 3)
	recv[0] = appendPiece(nil, 0, bytes.Repeat([]byte{1}, 50))
	recv[1] = appendPiece(nil, 25, bytes.Repeat([]byte{2}, 50))
	recv[2] = appendPiece(nil, 40, bytes.Repeat([]byte{3}, 20))
	segs, err := mergePieces(recv, domain)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct and check byte ownership.
	img := make([]byte, 100)
	var total int64
	for i, s := range segs {
		copy(img[s.Off:], s.Data)
		total += int64(len(s.Data))
		if i > 0 && segs[i-1].Off+int64(len(segs[i-1].Data)) > s.Off {
			t.Fatalf("merged segments overlap: %v then %v", segs[i-1].Off, s.Off)
		}
	}
	if total != 75 { // union [0,75)
		t.Fatalf("merged %d bytes, want 75", total)
	}
	for o := 0; o < 75; o++ {
		want := byte(1)
		if o >= 25 {
			want = 2
		}
		if o >= 40 && o < 60 {
			want = 3
		}
		if img[o] != want {
			t.Fatalf("byte %d = %d, want %d", o, img[o], want)
		}
	}
}

func TestMergePiecesClampsToDomain(t *testing.T) {
	recv := [][]byte{appendPiece(nil, 0, bytes.Repeat([]byte{9}, 100))}
	segs, err := mergePieces(recv, ext(40, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Off != 40 || len(segs[0].Data) != 20 {
		t.Fatalf("segs = %v", segs)
	}
}

func TestQuickMergeMatchesHighestRankModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const dom = 120
		p := 1 + r.Intn(4)
		recv := make([][]byte, p)
		model := make([]int, dom) // winning rank+1 per byte, 0 = unwritten
		for src := 0; src < p; src++ {
			for k := 0; k < r.Intn(4); k++ {
				off := int64(r.Intn(dom))
				n := int64(r.Intn(30))
				if off+n > dom {
					n = dom - off
				}
				data := bytes.Repeat([]byte{byte(src + 1)}, int(n))
				recv[src] = appendPiece(recv[src], off, data)
				// src ascends, so the later (higher) rank always wins.
				for o := off; o < off+n; o++ {
					model[o] = src + 1
				}
			}
		}
		segs, err := mergePieces(recv, ext(0, dom))
		if err != nil {
			return false
		}
		img := make([]byte, dom)
		seen := make(interval.List, 0)
		for _, s := range segs {
			e := interval.Extent{Off: s.Off, Len: int64(len(s.Data))}
			if seen.Overlaps(interval.List{e}) {
				return false // merged output must be disjoint
			}
			seen = seen.Union(interval.List{e})
			copy(img[s.Off:], s.Data)
		}
		for o := 0; o < dom; o++ {
			if int(img[o]) != model[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
