package core

import (
	"fmt"
	"testing"
	"time"

	"atomio/internal/interval"
	"atomio/internal/mpi"
)

func runRanks(t *testing.T, procs int, body mpi.RankFunc) {
	t.Helper()
	if _, err := mpi.Run(mpi.Config{Procs: procs, Timeout: 30 * time.Second}, body); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeViews(t *testing.T) {
	runRanks(t, 5, func(c *mpi.Comm) error {
		mine := interval.List{
			{Off: int64(c.Rank() * 100), Len: 10},
			{Off: int64(c.Rank()*100 + 50), Len: 5},
		}
		views, err := ExchangeViews(c, mine)
		if err != nil {
			return err
		}
		if len(views) != c.Size() {
			return fmt.Errorf("got %d views", len(views))
		}
		for r, v := range views {
			want := interval.List{
				{Off: int64(r * 100), Len: 10},
				{Off: int64(r*100 + 50), Len: 5},
			}
			if !v.Equal(want) {
				return fmt.Errorf("view of rank %d = %v, want %v", r, v, want)
			}
		}
		return nil
	})
}

func TestExchangeViewsNormalizes(t *testing.T) {
	runRanks(t, 2, func(c *mpi.Comm) error {
		// Messy input: unsorted, touching extents.
		mine := interval.List{{Off: 10, Len: 5}, {Off: 0, Len: 10}}
		views, err := ExchangeViews(c, mine)
		if err != nil {
			return err
		}
		if !views[c.Rank()].IsCanonical() {
			return fmt.Errorf("exchanged view not canonical: %v", views[c.Rank()])
		}
		if !views[c.Rank()].Equal(interval.List{{Off: 0, Len: 15}}) {
			return fmt.Errorf("view = %v", views[c.Rank()])
		}
		return nil
	})
}

func TestExchangeSpans(t *testing.T) {
	runRanks(t, 4, func(c *mpi.Comm) error {
		mine := interval.List{
			{Off: int64(c.Rank() * 10), Len: 2},
			{Off: int64(c.Rank()*10 + 6), Len: 2},
		}
		spans, err := ExchangeSpans(c, mine)
		if err != nil {
			return err
		}
		for r, s := range spans {
			want := interval.Extent{Off: int64(r * 10), Len: 8}
			if s != want {
				return fmt.Errorf("span of %d = %v, want %v", r, s, want)
			}
		}
		return nil
	})
}

func TestEmptyViewExchange(t *testing.T) {
	runRanks(t, 3, func(c *mpi.Comm) error {
		var mine interval.List
		if c.Rank() == 1 {
			mine = interval.List{{Off: 5, Len: 5}}
		}
		views, err := ExchangeViews(c, mine)
		if err != nil {
			return err
		}
		if len(views[0]) != 0 || len(views[2]) != 0 {
			return fmt.Errorf("empty views decoded non-empty")
		}
		if views[1].TotalLen() != 5 {
			return fmt.Errorf("rank 1 view lost")
		}
		return nil
	})
}
