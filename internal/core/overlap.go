package core

import (
	"strings"

	"atomio/internal/interval"
	"atomio/internal/interval/index"
)

// OverlapMatrix is the P×P boolean matrix W of the paper's Figure 5:
// W[i][j] is true when process i's file view overlaps process j's. The
// diagonal is false by construction.
type OverlapMatrix [][]bool

// BuildOverlapMatrix computes W from every rank's file extents. Each rank
// computes the identical matrix locally after the view exchange, exactly as
// the paper prescribes ("The file views are used to construct the
// overlapping matrix locally"). It runs the sorted-endpoint sweep of
// internal/interval/index — one O(E log E) pass over all P views — instead
// of P²/2 pairwise list merges.
func BuildOverlapMatrix(views []interval.List) OverlapMatrix {
	return OverlapMatrix(index.SweepOverlaps(views))
}

// BuildOverlapMatrixLinear is the reference O(P²·E) pairwise implementation
// BuildOverlapMatrix replaced. It is kept as the oracle the property tests
// and the index benchmarks measure the sweep against.
func BuildOverlapMatrixLinear(views []interval.List) OverlapMatrix {
	p := len(views)
	w := make(OverlapMatrix, p)
	for i := range w {
		w[i] = make([]bool, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if views[i].Overlaps(views[j]) {
				w[i][j] = true
				w[j][i] = true
			}
		}
	}
	return w
}

// BuildOverlapMatrixFromSpans computes a conservative W from bounding spans
// only (two spans that intersect are treated as overlapping even if the
// underlying non-contiguous views interleave without sharing bytes). It
// shares the sweep-line core with BuildOverlapMatrix — spans are
// one-extent views — so span mode and exact mode cannot drift apart.
func BuildOverlapMatrixFromSpans(spans []interval.Extent) OverlapMatrix {
	return OverlapMatrix(index.SweepSpans(spans))
}

// Degree returns the number of processes rank i overlaps.
func (w OverlapMatrix) Degree(i int) int {
	n := 0
	for _, b := range w[i] {
		if b {
			n++
		}
	}
	return n
}

// HasAnyOverlap reports whether any pair of processes overlaps; if not,
// every strategy degenerates to a plain concurrent write.
func (w OverlapMatrix) HasAnyOverlap() bool {
	for i := range w {
		for _, b := range w[i] {
			if b {
				return true
			}
		}
	}
	return false
}

// String renders W as 0/1 rows, matching the paper's Figure 6 notation.
func (w OverlapMatrix) String() string {
	var b strings.Builder
	for i, row := range w {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			if v {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// GreedyColor implements the paper's Figure 5 greedy graph-coloring: visit
// processes in rank order and give each the lowest color used by none of
// its already-colored neighbours. It returns each rank's color and the
// number of colors (= I/O phases). Every rank computes the identical result
// locally.
//
// For the paper's column-wise partitioning, where W is tridiagonal, this
// yields 2 colors: even ranks then odd ranks (Figure 6).
func GreedyColor(w OverlapMatrix) (colors []int, numColors int) {
	p := len(w)
	colors = make([]int, p)
	for i := range colors {
		colors[i] = -1
	}
	for i := 0; i < p; i++ {
		used := make([]bool, p)
		for j := 0; j < i; j++ {
			if w[i][j] && colors[j] >= 0 {
				used[colors[j]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[i] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	if p > 0 && numColors == 0 {
		numColors = 1
	}
	return colors, numColors
}

// ValidColoring reports whether colors assigns different colors to every
// overlapping pair — the invariant the property tests pin down.
func ValidColoring(w OverlapMatrix, colors []int) bool {
	for i := range w {
		for j := range w[i] {
			if w[i][j] && colors[i] == colors[j] {
				return false
			}
		}
	}
	return true
}

// ClipForRank returns the part of views[rank] that rank actually writes
// under the process-rank ordering policy: its view minus the union of all
// higher ranks' views ("the higher ranked process wins the right to access
// the overlapped regions while others surrender their writes", §3.3.2).
func ClipForRank(views []interval.List, rank int) interval.List {
	var higher interval.List
	for j := rank + 1; j < len(views); j++ {
		higher = append(higher, views[j]...)
	}
	return views[rank].Subtract(higher)
}

// ClipAll computes every rank's clip in one sweep — each byte goes to the
// highest rank writing it — in O(E log E) total instead of running
// ClipForRank's subtract per rank. result[r] equals ClipForRank(views, r).
func ClipAll(views []interval.List) []interval.List {
	return index.ClipAll(views)
}

// SurrenderedBytes returns the total bytes the ordering strategy avoids
// writing, summed over ranks — the I/O-volume reduction of §3.3.2.
func SurrenderedBytes(views []interval.List) int64 {
	clips := ClipAll(views)
	var saved int64
	for r := range views {
		saved += views[r].Normalize().TotalLen() - clips[r].TotalLen()
	}
	return saved
}
