package trace

import (
	"strings"
	"testing"

	"atomio/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4).Ensure(PhaseTransfer, PhaseLockWait)
	r.Add(0, PhaseTransfer, 10)
	r.Add(1, PhaseTransfer, 30)
	r.Add(0, PhaseTransfer, 5)
	if got := r.Total(PhaseTransfer); got != 45 {
		t.Fatalf("Total = %v", got)
	}
	if got := r.Max(PhaseTransfer); got != 30 {
		t.Fatalf("Max = %v", got)
	}
	if got := r.Rank(0, PhaseTransfer); got != 15 {
		t.Fatalf("Rank = %v", got)
	}
	if got := r.Rank(2, PhaseLockWait); got != 0 {
		t.Fatalf("untouched rank = %v", got)
	}
	if got := r.Rank(0, Phase("unknown")); got != 0 {
		t.Fatalf("unknown phase = %v", got)
	}
	if r.Procs() != 4 {
		t.Fatal("procs")
	}
}

func TestRecorderPhasesSortedAndRendered(t *testing.T) {
	r := NewRecorder(2).Ensure(PhaseTransfer, PhaseHandshake, PhaseSyncWait)
	phases := r.Phases()
	for i := 1; i < len(phases); i++ {
		if phases[i-1] >= phases[i] {
			t.Fatalf("phases not sorted: %v", phases)
		}
	}
	r.Add(0, PhaseHandshake, sim.Millisecond)
	out := r.Render()
	for _, want := range []string{"phase", "max/rank", "handshake", "1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAddUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(1).Add(0, PhaseTransfer, 1)
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(1).Ensure(PhaseTransfer).Add(0, PhaseTransfer, -1)
}

func TestZeroProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecorder(0)
}

func TestSpan(t *testing.T) {
	r := NewRecorder(1).Ensure(PhaseLockWait)
	clk := sim.NewClock(100)
	s := Start(r, 0, PhaseLockWait, clk)
	clk.Advance(40)
	s.Stop()
	s.Stop() // idempotent
	if got := r.Rank(0, PhaseLockWait); got != 40 {
		t.Fatalf("span recorded %v", got)
	}
}

func TestNilRecorderSpanIsNoOp(t *testing.T) {
	clk := sim.NewClock(0)
	s := Start(nil, 0, PhaseTransfer, clk)
	clk.Advance(10)
	s.Stop() // must not panic
}
