// Package trace records per-rank virtual-time phase breakdowns — how long
// each rank spent in the handshake, waiting for locks, moving data, and
// synchronizing — the observability a production MPI-IO stack exposes
// through tools like Darshan. The harness attaches a Recorder per
// experiment; strategies and layers report spans voluntarily.
//
// Recorders are safe for concurrent use by rank goroutines: each rank
// writes only its own slot.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"atomio/internal/obs"
	"atomio/internal/sim"
)

// Phase labels the standard phases of an atomic collective write.
type Phase string

// Standard phases.
const (
	PhaseHandshake Phase = "handshake" // view exchange, matrix, coloring
	PhaseLockWait  Phase = "lockwait"  // waiting for byte-range locks
	PhaseTransfer  Phase = "transfer"  // data movement to/from servers
	PhaseSyncWait  Phase = "syncwait"  // barriers between phases/colors
	PhaseExchange  Phase = "exchange"  // two-phase data redistribution
)

// Recorder accumulates per-rank, per-phase virtual durations.
type Recorder struct {
	phases map[Phase][]sim.VTime // phase -> per-rank total
	procs  int
	events *obs.Recorder // mirrors closed spans as phase.span events
}

// NewRecorder returns a recorder for the given number of ranks.
func NewRecorder(procs int) *Recorder {
	if procs < 1 {
		panic(fmt.Sprintf("trace: procs = %d", procs))
	}
	return &Recorder{phases: make(map[Phase][]sim.VTime), procs: procs}
}

// Procs returns the rank count.
func (r *Recorder) Procs() int { return r.procs }

// SetEvents mirrors every closed span into the event recorder as a
// phase.span event, pinning the two observability layers together: the
// per-phase totals and the event-derived totals are sums over the same
// spans (a property test holds them equal). Call before the ranks start.
func (r *Recorder) SetEvents(o *obs.Recorder) { r.events = o }

// Add charges d of virtual time to (rank, phase). It must be called only
// from the rank's own goroutine (ranks never share slots); registering a
// new phase is synchronized by the caller's collective structure, so the
// common map is pre-grown on first use per phase via Ensure.
func (r *Recorder) Add(rank int, p Phase, d sim.VTime) {
	if d < 0 {
		panic(fmt.Sprintf("trace: negative duration %v", d))
	}
	slots, ok := r.phases[p]
	if !ok {
		panic(fmt.Sprintf("trace: phase %q not registered; call Ensure first", p))
	}
	slots[rank] += d
}

// Ensure registers phases up front (not concurrency-safe; call before the
// ranks start).
func (r *Recorder) Ensure(phases ...Phase) *Recorder {
	for _, p := range phases {
		if _, ok := r.phases[p]; !ok {
			r.phases[p] = make([]sim.VTime, r.procs)
		}
	}
	return r
}

// Total returns the sum over ranks for a phase.
func (r *Recorder) Total(p Phase) sim.VTime {
	var t sim.VTime
	for _, d := range r.phases[p] {
		t += d
	}
	return t
}

// Rank returns one rank's duration in a phase.
func (r *Recorder) Rank(rank int, p Phase) sim.VTime {
	if slots, ok := r.phases[p]; ok {
		return slots[rank]
	}
	return 0
}

// Max returns the maximum per-rank duration for a phase — the critical-path
// contribution.
func (r *Recorder) Max(p Phase) sim.VTime {
	var m sim.VTime
	for _, d := range r.phases[p] {
		if d > m {
			m = d
		}
	}
	return m
}

// Phases lists the registered phases in deterministic order.
func (r *Recorder) Phases() []Phase {
	out := make([]Phase, 0, len(r.phases))
	for p := range r.phases {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Render prints a per-phase summary table (max and mean across ranks).
func (r *Recorder) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "phase", "max/rank", "mean/rank")
	for _, p := range r.Phases() {
		total := r.Total(p)
		mean := total / sim.VTime(r.procs)
		fmt.Fprintf(&b, "%-12s %12v %12v\n", p, r.Max(p), mean)
	}
	return b.String()
}

// Span measures one contiguous phase occurrence: create it at the start,
// Stop it at the end.
type Span struct {
	rec   *Recorder
	rank  int
	phase Phase
	start sim.VTime
	clock *sim.Clock
	done  bool
}

// Start opens a span on the rank's clock. A nil recorder yields a no-op
// span, so instrumented code paths need no conditionals.
func Start(rec *Recorder, rank int, p Phase, clock *sim.Clock) *Span {
	if rec == nil {
		return nil
	}
	return &Span{rec: rec, rank: rank, phase: p, start: clock.Now(), clock: clock}
}

// Stop closes the span, charging the elapsed virtual time. Safe on nil and
// idempotent.
func (s *Span) Stop() {
	if s == nil || s.done {
		return
	}
	s.done = true
	d := s.clock.Now() - s.start
	s.rec.Add(s.rank, s.phase, d)
	if o := s.rec.events; o != nil {
		o.Emit(obs.Event{
			T: s.start, Actor: s.rank, Layer: obs.LayerPhase, Kind: obs.KindPhaseSpan,
			Tag: string(s.phase), Peer: -1, Dur: d,
		})
		o.Count(s.rank, obs.MetricPhasePrefix+string(s.phase)+".ns", int64(d))
	}
}
