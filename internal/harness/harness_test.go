package harness

import (
	"strings"
	"testing"

	"atomio/internal/core"
	"atomio/internal/platform"
	"atomio/internal/trace"
)

func TestExperimentVerifiedSmall(t *testing.T) {
	// Every strategy on every platform produces MPI-atomic file content.
	for _, prof := range platform.All() {
		for _, strat := range Methods(prof) {
			t.Run(prof.Name+"/"+strat.Name(), func(t *testing.T) {
				res, err := Experiment{
					Platform:  prof,
					M:         64,
					N:         512,
					Procs:     4,
					Overlap:   8,
					Pattern:   ColumnWise,
					Strategy:  strat,
					StoreData: true,
					Verify:    true,
				}.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Report == nil || !res.Report.Atomic() {
					t.Fatalf("atomicity violated: %+v", res.Report)
				}
				if res.Report.Atoms == 0 {
					t.Fatal("no overlap atoms; test vacuous")
				}
				if res.BandwidthMBs <= 0 || res.Makespan <= 0 {
					t.Fatalf("degenerate result: %+v", res)
				}
			})
		}
	}
}

func TestExperimentRejectsLockingWithoutManager(t *testing.T) {
	_, err := Experiment{
		Platform: platform.Cplant(),
		M:        64, N: 512, Procs: 4, Overlap: 8,
		Strategy: core.Locking{},
	}.Run()
	if err != core.ErrNoLockManager {
		t.Fatalf("err = %v, want ErrNoLockManager", err)
	}
}

func TestExperimentPatterns(t *testing.T) {
	for _, pat := range []Pattern{ColumnWise, RowWise, BlockBlock} {
		res, err := Experiment{
			Platform: platform.Origin2000(),
			M:        64, N: 256, Procs: 4, Overlap: 4,
			Pattern:   pat,
			Strategy:  core.RankOrder{},
			StoreData: true,
			Verify:    true,
		}.Run()
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if !res.Report.Atomic() {
			t.Fatalf("%s: violations %v", pat, res.Report.Violations)
		}
	}
	if _, err := (Experiment{
		Platform: platform.Origin2000(),
		M:        64, N: 256, Procs: 6, Overlap: 4,
		Pattern:  BlockBlock,
		Strategy: core.RankOrder{},
	}).Run(); err == nil {
		t.Fatal("block-block with non-square P should fail")
	}
}

func TestOrderingWritesFewerBytes(t *testing.T) {
	base := Experiment{
		Platform: platform.Origin2000(),
		M:        256, N: 4096, Procs: 8, Overlap: 32,
		StoreData: false,
	}
	withStrategy := func(s core.Strategy) int64 {
		e := base
		e.Strategy = s
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.WrittenBytes
	}
	coloringBytes := withStrategy(core.Coloring{})
	orderingBytes := withStrategy(core.RankOrder{})
	saved := int64((base.Procs - 1) * base.Overlap * base.M)
	if coloringBytes-orderingBytes != saved {
		t.Fatalf("ordering saved %d bytes, want %d", coloringBytes-orderingBytes, saved)
	}
}

func TestPhaseBreakdownMatchesStrategyStructure(t *testing.T) {
	// The trace must attribute time where each strategy actually spends
	// it: locking waits on locks, the handshaking strategies exchange
	// views, coloring barriers between phases, two-phase exchanges data.
	base := Experiment{
		Platform: platform.Origin2000(),
		M:        256, N: 2048, Procs: 8, Overlap: 16,
		Pattern: ColumnWise,
		Trace:   true,
	}
	runWith := func(s core.Strategy) *Result {
		e := base
		e.Strategy = s
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases == nil {
			t.Fatal("trace missing")
		}
		return res
	}

	lockRes := runWith(core.Locking{})
	if lockRes.Phases.Total(trace.PhaseLockWait) == 0 {
		t.Error("locking recorded no lock wait")
	}
	if lockRes.Phases.Total(trace.PhaseHandshake) != 0 {
		t.Error("locking should not handshake")
	}
	// Serialized writers: aggregate lock wait exceeds aggregate transfer.
	if lockRes.Phases.Total(trace.PhaseLockWait) <= lockRes.Phases.Total(trace.PhaseTransfer) {
		t.Errorf("locking lockwait %v <= transfer %v",
			lockRes.Phases.Total(trace.PhaseLockWait), lockRes.Phases.Total(trace.PhaseTransfer))
	}

	colorRes := runWith(core.Coloring{})
	if colorRes.Phases.Total(trace.PhaseHandshake) == 0 {
		t.Error("coloring recorded no handshake")
	}
	if colorRes.Phases.Total(trace.PhaseSyncWait) == 0 {
		t.Error("coloring recorded no barrier wait")
	}
	if colorRes.Phases.Total(trace.PhaseLockWait) != 0 {
		t.Error("coloring should not lock")
	}

	orderRes := runWith(core.RankOrder{})
	if orderRes.Phases.Total(trace.PhaseHandshake) == 0 {
		t.Error("ordering recorded no handshake")
	}
	if orderRes.Phases.Total(trace.PhaseSyncWait) != 0 {
		t.Error("ordering needs no barriers")
	}
	// Ordering's whole point: its non-transfer overhead is small, so
	// transfer dominates its critical path.
	if orderRes.Phases.Max(trace.PhaseTransfer) <= orderRes.Phases.Max(trace.PhaseHandshake) {
		t.Errorf("ordering transfer %v <= handshake %v",
			orderRes.Phases.Max(trace.PhaseTransfer), orderRes.Phases.Max(trace.PhaseHandshake))
	}

	twoRes := runWith(core.TwoPhase{})
	if twoRes.Phases.Total(trace.PhaseExchange) == 0 {
		t.Error("two-phase recorded no exchange")
	}
	if s := twoRes.Phases.Render(); !strings.Contains(s, "exchange") {
		t.Errorf("render missing exchange:\n%s", s)
	}
}

// TestFigure8Shape pins the qualitative claims of the paper's Figure 8 on
// the smallest array (the other sizes share the cost structure; the full
// grid is exercised by cmd/figure8 and the benchmarks):
//
//  1. file locking yields the worst bandwidth of all strategies,
//  2. process-rank ordering beats graph-coloring,
//  3. the handshaking strategies scale up with P while locking stays flat
//     or declines.
func TestFigure8Shape(t *testing.T) {
	for _, prof := range platform.All() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			panel := Panel{Platform: prof, N: Figure8Sizes[0].N, Label: Figure8Sizes[0].Label}
			series, err := RunPanel(panel, false)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string]Series{}
			for _, s := range series {
				byName[s.Method] = s
			}
			coloring, ordering := byName["coloring"], byName["ordering"]
			locking, hasLocking := byName["locking"]

			if hasLocking != prof.SupportsLocking() {
				t.Fatalf("locking presence = %v, want %v", hasLocking, prof.SupportsLocking())
			}
			for _, p := range Figure8Procs {
				if ordering.ByProcs[p] < coloring.ByProcs[p] {
					t.Errorf("P=%d: ordering %.2f < coloring %.2f",
						p, ordering.ByProcs[p], coloring.ByProcs[p])
				}
				if hasLocking {
					if locking.ByProcs[p] >= coloring.ByProcs[p] {
						t.Errorf("P=%d: locking %.2f >= coloring %.2f",
							p, locking.ByProcs[p], coloring.ByProcs[p])
					}
					if locking.ByProcs[p] >= ordering.ByProcs[p] {
						t.Errorf("P=%d: locking %.2f >= ordering %.2f",
							p, locking.ByProcs[p], ordering.ByProcs[p])
					}
				}
			}
			// Handshaking strategies gain from more processes...
			if ordering.ByProcs[8] <= ordering.ByProcs[4] {
				t.Errorf("ordering does not scale: P4=%.2f P8=%.2f",
					ordering.ByProcs[4], ordering.ByProcs[8])
			}
			if coloring.ByProcs[8] <= coloring.ByProcs[4] {
				t.Errorf("coloring does not scale: P4=%.2f P8=%.2f",
					coloring.ByProcs[4], coloring.ByProcs[8])
			}
			// ...while locking is flat or declining (serialized writers).
			if hasLocking && locking.ByProcs[16] > locking.ByProcs[4]*1.1 {
				t.Errorf("locking should not scale: P4=%.2f P16=%.2f",
					locking.ByProcs[4], locking.ByProcs[16])
			}
		})
	}
}

func TestBandwidthRepeatable(t *testing.T) {
	// Virtual-time bandwidth must be stable across runs: goroutine
	// scheduling may permute queue orders, but totals are conserved, so
	// repeated experiments agree within a small tolerance.
	e := Experiment{
		Platform: platform.IBMSP(),
		M:        512, N: 8192, Procs: 8, Overlap: 32,
		Pattern:  ColumnWise,
		Strategy: core.RankOrder{},
	}
	var prev float64
	for i := 0; i < 3; i++ {
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			ratio := res.BandwidthMBs / prev
			if ratio < 0.98 || ratio > 1.02 {
				t.Fatalf("run %d bandwidth %.3f vs %.3f (ratio %.3f): not repeatable",
					i, res.BandwidthMBs, prev, ratio)
			}
		}
		prev = res.BandwidthMBs
	}
}

func TestRenderPanel(t *testing.T) {
	prof := platform.Origin2000()
	panel := Panel{Platform: prof, N: Figure8Sizes[0].N, Label: "32 MB"}
	series := []Series{{
		Method:  "ordering",
		ByProcs: map[int]float64{4: 1, 8: 2, 16: 3},
	}}
	out := RenderPanel(panel, series)
	for _, want := range []string{"Origin2000", "4096 x 8192", "32 MB", "ordering", "MB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8PanelEnumeration(t *testing.T) {
	panels := Figure8Panels()
	if len(panels) != 9 {
		t.Fatalf("panels = %d, want 9", len(panels))
	}
	// Paper layout: sizes down, platforms across.
	if panels[0].Platform.Name != "Cplant" || panels[0].Label != "32 MB" {
		t.Fatalf("first panel = %+v", panels[0])
	}
	if panels[8].Platform.Name != "IBM SP" || panels[8].Label != "1 GB" {
		t.Fatalf("last panel = %+v", panels[8])
	}
}

func TestPatternString(t *testing.T) {
	if ColumnWise.String() != "column-wise" || RowWise.String() != "row-wise" ||
		BlockBlock.String() != "block-block" || Pattern(9).String() == "" {
		t.Fatal("pattern strings")
	}
}

// TestLockShardsInvariant pins the sharded lock service's determinism
// contract at the harness level: the full simulated result of a locking
// experiment — makespan, bandwidth, bytes written — is byte-identical for
// any lock-table shard count, on both manager flavours.
func TestLockShardsInvariant(t *testing.T) {
	for _, prof := range []platform.Profile{platform.Origin2000(), platform.IBMSP()} {
		t.Run(prof.Name, func(t *testing.T) {
			base := Experiment{
				Platform: prof,
				M:        64, N: 512, Procs: 8, Overlap: 8,
				Pattern:  ColumnWise,
				Strategy: core.Locking{},
			}
			want, err := base.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4, 8} {
				e := base
				e.LockShards = shards
				got, err := e.Run()
				if err != nil {
					t.Fatalf("S=%d: %v", shards, err)
				}
				if got.Makespan != want.Makespan ||
					got.BandwidthMBs != want.BandwidthMBs ||
					got.WrittenBytes != want.WrittenBytes {
					t.Fatalf("S=%d diverged: got (%v, %v, %d), want (%v, %v, %d)",
						shards, got.Makespan, got.BandwidthMBs, got.WrittenBytes,
						want.Makespan, want.BandwidthMBs, want.WrittenBytes)
				}
			}
		})
	}
}
