package harness

import (
	"testing"

	"atomio/internal/pfs/scenario"
	"atomio/internal/platform"
)

// TestSharedStoreInvariant pins the per-server storage subsystem to the
// shared-store oracle at experiment level: for every platform, server count
// override ∈ {0 (platform default), 1, 4} and store layout, the virtual
// results are byte-identical and the verified file content stays atomic.
func TestSharedStoreInvariant(t *testing.T) {
	for _, prof := range platform.All() {
		for _, servers := range []int{0, 1, 4} {
			base := Experiment{
				Platform:  prof,
				M:         64,
				N:         512,
				Procs:     4,
				Overlap:   8,
				Pattern:   ColumnWise,
				Strategy:  Methods(prof)[0],
				StoreData: true,
				Verify:    true,
				Servers:   servers,
			}
			striped := base
			oracle := base
			oracle.SharedStore = true
			resS, err := striped.Run()
			if err != nil {
				t.Fatalf("%s S=%d striped: %v", prof.Name, servers, err)
			}
			resO, err := oracle.Run()
			if err != nil {
				t.Fatalf("%s S=%d shared: %v", prof.Name, servers, err)
			}
			if resS.Makespan != resO.Makespan || resS.WrittenBytes != resO.WrittenBytes ||
				resS.BandwidthMBs != resO.BandwidthMBs {
				t.Fatalf("%s S=%d: layouts diverge: striped %v/%d, shared %v/%d",
					prof.Name, servers, resS.Makespan, resS.WrittenBytes,
					resO.Makespan, resO.WrittenBytes)
			}
			if !resS.Report.Atomic() || !resO.Report.Atomic() {
				t.Fatalf("%s S=%d: atomicity lost", prof.Name, servers)
			}
			if len(resS.ServerStats) != len(resO.ServerStats) {
				t.Fatalf("%s S=%d: stats lengths differ", prof.Name, servers)
			}
			for i := range resS.ServerStats {
				if resS.ServerStats[i] != resO.ServerStats[i] {
					t.Fatalf("%s S=%d: server %d stats diverge: %+v vs %+v",
						prof.Name, servers, i, resS.ServerStats[i], resO.ServerStats[i])
				}
			}
		}
	}
}

// TestServersOverrideChangesModel pins that the server count is a real
// model parameter: with client affinity, one server serializes every rank
// and must be slower than eight.
func TestServersOverrideChangesModel(t *testing.T) {
	base := Experiment{
		Platform: platform.Cplant(),
		M:        64, N: 2048, Procs: 8, Overlap: 8,
		Pattern:  ColumnWise,
		Strategy: Methods(platform.Cplant())[0],
	}
	one := base
	one.Servers = 1
	many := base
	many.Servers = 8
	resOne, err := one.Run()
	if err != nil {
		t.Fatal(err)
	}
	resMany, err := many.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resOne.Makespan <= resMany.Makespan {
		t.Fatalf("1 server (%v) should be slower than 8 (%v)", resOne.Makespan, resMany.Makespan)
	}
	if len(resOne.ServerStats) != 1 || len(resMany.ServerStats) != 8 {
		t.Fatalf("stats lengths %d/%d, want 1/8", len(resOne.ServerStats), len(resMany.ServerStats))
	}
}

// TestScenarioExperiments runs one experiment per degraded scenario and
// checks the per-server statistics carry the perturbation's signature: a
// slow server's queue dominates, a hot server absorbs a skewed byte share,
// and a rebalance changes the server count.
func TestScenarioExperiments(t *testing.T) {
	prof := platform.Cplant()
	run := func(scen scenario.Profile) *Result {
		t.Helper()
		s := scen
		res, err := Experiment{
			Platform: prof,
			M:        64, N: 2048, Procs: 8, Overlap: 8,
			Pattern:  ColumnWise,
			Strategy: Methods(prof)[0],
			Scenario: &s,
		}.Run()
		if err != nil {
			t.Fatalf("%s: %v", scen.Name, err)
		}
		return res
	}

	healthy := run(scenario.Healthy())
	slow := run(scenario.SlowServer(0, 4))
	hot := run(scenario.HotSpot(0, prof.SimServers))
	rebal := run(scenario.Rebalance(3))

	if slow.Makespan <= healthy.Makespan {
		t.Fatalf("slow server should stretch the makespan: %v vs healthy %v",
			slow.Makespan, healthy.Makespan)
	}
	hs := SummarizeServerStats(healthy.ServerStats, healthy.Makespan)
	ss := SummarizeServerStats(slow.ServerStats, slow.Makespan)
	if ss.MaxOccupancy <= hs.MaxOccupancy {
		t.Fatalf("slow server occupancy %v should exceed healthy %v", ss.MaxOccupancy, hs.MaxOccupancy)
	}
	if got := SummarizeServerStats(hot.ServerStats, hot.Makespan).MaxByteShare; got <= hs.MaxByteShare {
		t.Fatalf("hot server byte share %v should exceed healthy %v", got, hs.MaxByteShare)
	}
	if len(rebal.ServerStats) != 3 {
		t.Fatalf("rebalance to 3 servers reported %d stats", len(rebal.ServerStats))
	}
}
