// Package harness runs the paper's experiments end to end: it assembles a
// platform's simulated file system, lock manager and message-passing world,
// executes the column-wise (or row-wise / block-block) concurrent
// overlapping write with a chosen atomicity strategy, and reports aggregate
// write bandwidth from virtual time — the quantity plotted in Figure 8.
package harness

import (
	"fmt"
	"sort"
	"time"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/interval"
	"atomio/internal/lock"
	"atomio/internal/mpi"
	"atomio/internal/mpiio"
	"atomio/internal/obs"
	"atomio/internal/pfs"
	"atomio/internal/pfs/scenario"
	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/sim/des"
	"atomio/internal/sim/fault"
	"atomio/internal/trace"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

// Pattern selects the partitioning pattern.
type Pattern int

const (
	// ColumnWise is the paper's measured pattern (Figure 3(b)).
	ColumnWise Pattern = iota
	// RowWise is the contiguous pattern of §3.2 (ablation A4).
	RowWise
	// BlockBlock is the ghost-cell pattern of Figure 1 (ablation A2);
	// Procs must be a perfect square.
	BlockBlock
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case ColumnWise:
		return "column-wise"
	case RowWise:
		return "row-wise"
	case BlockBlock:
		return "block-block"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Experiment is one cell of the evaluation: platform × array × P × strategy.
type Experiment struct {
	Platform platform.Profile
	// M and N are the global array dimensions in bytes (elements are
	// 1-byte chars, as in the paper's Figure 4 code).
	M, N int
	// Procs is the number of MPI processes.
	Procs int
	// Overlap is the number of overlapped rows/columns R (even).
	Overlap int
	// Pattern selects the partitioning; the paper measures ColumnWise.
	Pattern Pattern
	// Strategy is the atomicity implementation under test.
	Strategy core.Strategy
	// StoreData materializes file bytes (needed for Verify; off for the
	// 1 GB benchmark runs).
	StoreData bool
	// Verify checks MPI atomicity on the resulting file content.
	Verify bool
	// AtomicListIO grants the simulated file system the §3.2 atomic
	// vectored-write capability, enabling the core.ListIO strategy
	// (ablation A6).
	AtomicListIO bool
	// Trace records a per-phase virtual-time breakdown of the write.
	Trace bool
	// TraceEvents records the structured virtual-time event stream and the
	// metrics registry (see internal/obs): scheduler park/wake, MPI
	// messages, lock grants, server queueing, fault instants. The stream is
	// byte-identical across engines, worker counts and lock-shard counts.
	TraceEvents bool
	// EventLimit bounds per-actor event memory when TraceEvents is on:
	// > 0 keeps only the newest EventLimit events per actor (ring buffer),
	// 0 is unbounded, < 0 records metrics only. Large-P cells use a ring.
	EventLimit int
	// RunTimeout overrides the MPI run's real-time deadlock guard (0 uses
	// the mpi package default). Large-P scaling cells push millions of
	// simulated messages through one host and need more than the default.
	RunTimeout time.Duration
	// LockShards overrides the platform's lock-table shard count (0 keeps
	// the platform default). Virtual timings — and therefore every
	// reported number — are byte-identical for any value; sharding
	// changes host-side lock-service concurrency only (see internal/lock).
	LockShards int
	// Servers overrides the platform's simulated I/O-server count (0
	// keeps the platform default). Server count is a real model parameter:
	// changing it changes virtual timings.
	Servers int
	// SharedStore stores file bytes in the pre-striping single shared
	// store instead of per-server stores (see pfs.Config.SharedStore).
	// The two layouts produce byte-identical output on every healthy
	// configuration; the flag exists as a live oracle check.
	SharedStore bool
	// Scenario applies a per-server perturbation profile (nil = healthy).
	// Profiles that slow servers or skew affinity produce output that is
	// explicitly non-comparable to the healthy simulator's.
	Scenario *scenario.Profile
	// Steps repeats the collective write this many times, each step
	// writing a fresh file within the same simulation — the periodic
	// checkpoint workload of the paper's introduction. 0 and 1 both mean
	// a single write to "experiment.dat".
	Steps int
	// Compute advances every rank's clock by this much virtual compute
	// time before each step (perfectly parallel computation between
	// checkpoint dumps). Ignored unless positive.
	Compute sim.VTime
	// Faults applies a failure-injection script to the run (nil = healthy):
	// server crash windows, lock-message faults and writer crashes, all
	// deterministic functions of virtual time and per-owner operation
	// counters (see internal/sim/fault). Lock faults require a platform
	// with locking; they are ignored on lockless file systems.
	Faults *fault.Script
	// Recovery turns on the file system's write-ahead intent log during
	// the run and replays it over fault damage before verification. Off,
	// a faulted run keeps whatever the crash left behind — the fleet's
	// negative control.
	Recovery bool
	// Engine selects the simulation engine: how rank bodies execute and
	// how cross-rank interactions are ordered (see sim.Engine). Nil falls
	// back to Platform.Engine, then to the event-loop scheduler
	// (internal/sim/des). Virtual results are byte-identical across
	// engines — the goroutine engine is kept as the oracle.
	Engine sim.Engine
}

// engine resolves the experiment's simulation engine: the experiment's own,
// else the platform's, else the event-loop default.
func (e Experiment) engine() sim.Engine {
	if e.Engine != nil {
		return e.Engine
	}
	if e.Platform.Engine != nil {
		return e.Platform.Engine
	}
	return des.New()
}

// EngineName reports the name of the engine the experiment would run under.
func (e Experiment) EngineName() string { return e.engine().Name() }

// Result is the outcome of one experiment.
type Result struct {
	Experiment Experiment
	// Makespan is the virtual time from start to the last rank's finish.
	Makespan sim.VTime
	// ArrayBytes is the useful data volume: M*N per collective write,
	// times the number of steps for checkpoint runs (Steps > 1).
	ArrayBytes int64
	// WrittenBytes is the number of bytes clients physically wrote
	// (includes overlap duplicates; excludes bytes the ordering strategy
	// surrendered).
	WrittenBytes int64
	// BandwidthMBs is ArrayBytes / Makespan in MB/s — the Figure 8 metric.
	BandwidthMBs float64
	// IOTime is the largest cumulative virtual time any rank spent inside
	// the collective writes (WriteAll through Close). Single-step runs
	// track the makespan; checkpoint runs (Steps > 1) exclude the compute
	// time between dumps.
	IOTime sim.VTime
	// Report is the atomicity check (nil unless Verify).
	Report *verify.Report
	// Verdict classifies the atomicity outcome — serializable, torn, or
	// recovered-serializable (empty unless Verify).
	Verdict verify.Verdict
	// Replayed lists the ranks whose logged intents recovery replayed
	// over fault damage, ascending (nil when Recovery is off or nothing
	// was damaged).
	Replayed []int
	// Phases is the per-phase breakdown (nil unless Trace).
	Phases *trace.Recorder
	// Events is the structured event recorder (nil unless TraceEvents).
	Events *obs.Recorder
	// Metrics is the merged metrics snapshot (nil unless TraceEvents).
	Metrics *obs.Metrics
	// ServerStats is every I/O server's traffic and queue state, in
	// server order — the observability layer behind the degraded-server
	// scenarios.
	ServerStats []pfs.ServerStats
	// RankTimes is every rank's final virtual clock, in rank order. The
	// cross-engine property tests pin these per-rank values (not just the
	// makespan) to the goroutine oracle.
	RankTimes []sim.VTime
}

// ServerStatsSummary condenses a run's per-server statistics into the two
// hot-server indicators degraded scenarios are read by: how occupied the
// busiest queue was, and how skewed the byte distribution is.
type ServerStatsSummary struct {
	// MaxOccupancy is the hottest server's busy time over the makespan.
	MaxOccupancy float64
	// MaxByteShare is the hottest server's share of all bytes moved.
	MaxByteShare float64
}

// SummarizeServerStats computes the summary over a run's server stats.
func SummarizeServerStats(stats []pfs.ServerStats, makespan sim.VTime) ServerStatsSummary {
	var out ServerStatsSummary
	var total int64
	for _, s := range stats {
		total += s.Bytes
	}
	for _, s := range stats {
		if makespan > 0 {
			if occ := s.Busy.Seconds() / makespan.Seconds(); occ > out.MaxOccupancy {
				out.MaxOccupancy = occ
			}
		}
		if total > 0 {
			if share := float64(s.Bytes) / float64(total); share > out.MaxByteShare {
				out.MaxByteShare = share
			}
		}
	}
	return out
}

func (e Experiment) String() string {
	return fmt.Sprintf("%s %dx%d P=%d R=%d %s %s",
		e.Platform.Name, e.M, e.N, e.Procs, e.Overlap, e.Pattern, e.Strategy.Name())
}

// piece returns rank's share under the experiment's pattern.
func (e Experiment) piece(rank int) (workload.Piece, error) {
	switch e.Pattern {
	case RowWise:
		return workload.RowWise(e.M, e.N, e.Procs, e.Overlap, rank)
	case BlockBlock:
		side := 1
		for side*side < e.Procs {
			side++
		}
		if side*side != e.Procs {
			return workload.Piece{}, fmt.Errorf("harness: block-block needs square P, got %d", e.Procs)
		}
		return workload.BlockBlock(e.M, e.N, side, side, e.Overlap, rank)
	default:
		return workload.ColumnWise(e.M, e.N, e.Procs, e.Overlap, rank)
	}
}

// Views returns every rank's flattened file view under the experiment's
// pattern — the extent lists the verify and conflict-analysis layers
// consume.
func (e Experiment) Views() ([]interval.List, error) {
	views := make([]interval.List, e.Procs)
	for rank := 0; rank < e.Procs; rank++ {
		p, err := e.piece(rank)
		if err != nil {
			return nil, err
		}
		views[rank] = interval.List(p.Filetype.Flatten())
	}
	return views, nil
}

// Run executes the experiment and returns its result.
func (e Experiment) Run() (*Result, error) {
	if e.Strategy == nil {
		return nil, fmt.Errorf("harness: nil strategy")
	}
	if e.Strategy.Name() == "locking" && !e.Platform.SupportsLocking() {
		return nil, core.ErrNoLockManager
	}
	cfg := e.Platform.PFSConfig(e.StoreData)
	cfg.AtomicListIO = e.AtomicListIO
	cfg.SharedStore = e.SharedStore
	cfg.WAL = e.Recovery
	if e.Servers > 0 {
		cfg.Servers = e.Servers
	}
	if e.Scenario != nil {
		var err error
		if cfg, err = e.Scenario.Apply(cfg); err != nil {
			return nil, err
		}
	}
	fs, err := pfs.New(cfg)
	if err != nil {
		return nil, err
	}
	prof := e.Platform
	if e.LockShards > 0 {
		prof.LockShards = e.LockShards
	}
	mgr := prof.NewLockManager()

	// Failure injection: the injector filters server traffic inside the
	// file system, and lock-message faults wrap the manager in the faulty
	// decorator (with lease-based revocation so a dropped unlock heals).
	var inj *fault.Injector
	if e.Faults != nil {
		inj = fault.New(*e.Faults)
		fs.SetFault(inj)
		if mgr != nil && inj.HasLockFaults() {
			mgr = lock.NewFaulty(mgr, inj, inj.Lease())
		}
	}

	// One determinism coordinator spans the whole simulation — ranks, file
	// system and lock manager — so every run of an experiment produces
	// identical virtual timings regardless of engine choice, goroutine
	// scheduling, or how many experiments execute concurrently (see
	// sim.Coord and internal/sim/des).
	eng := e.engine()
	coord := eng.NewCoord(e.Procs)

	// Event tracing wraps the coordinator before any layer sees it, so the
	// scheduler events (park/wake/resume) observe the same admission
	// protocol every layer coordinates through. The engines unwrap tracers
	// when they need their own concrete coordinator back.
	var events *obs.Recorder
	if e.TraceEvents {
		events = obs.NewRecorder(e.Procs, e.EventLimit)
		coord = obs.Trace(coord, events)
	}
	fs.SetCoord(coord)
	fs.SetObs(events)
	if m, ok := mgr.(interface{ SetCoord(sim.Coord) }); ok {
		m.SetCoord(coord)
	}
	if m, ok := mgr.(interface{ SetObs(*obs.Recorder) }); ok {
		m.SetObs(events)
	}

	// One shared pattern buffer sized for the largest piece keeps memory
	// flat for the 1 GB runs; Verify mode stamps per-rank buffers.
	var maxPiece int64
	for rank := 0; rank < e.Procs; rank++ {
		p, err := e.piece(rank)
		if err != nil {
			return nil, err
		}
		if p.BufBytes > maxPiece {
			maxPiece = p.BufBytes
		}
	}
	shared := make([]byte, maxPiece)

	var rec *trace.Recorder
	if e.Trace || e.TraceEvents {
		rec = trace.NewRecorder(e.Procs).Ensure(
			trace.PhaseHandshake, trace.PhaseLockWait, trace.PhaseTransfer,
			trace.PhaseSyncWait, trace.PhaseExchange)
		rec.SetEvents(events)
	}

	// A single-step run writes "experiment.dat"; checkpoint runs write one
	// fresh file per step within the same simulation, so server queues and
	// caches carry over between dumps exactly as they would in a long-
	// running application.
	steps := e.Steps
	if steps < 1 {
		steps = 1
	}
	stepName := func(step int) string {
		if steps == 1 {
			return "experiment.dat"
		}
		return fmt.Sprintf("experiment-%03d.dat", step)
	}

	views := make([]interval.List, e.Procs)
	written := make([]int64, e.Procs)
	ioTimes := make([]sim.VTime, e.Procs)
	mpiCfg := e.Platform.MPIConfig(e.Procs)
	mpiCfg.Coord = coord
	mpiCfg.Engine = eng
	mpiCfg.Obs = events
	if e.RunTimeout > 0 {
		mpiCfg.Timeout = e.RunTimeout
	}
	res, runErr := mpi.Run(mpiCfg, func(c *mpi.Comm) error {
		piece, err := e.piece(c.Rank())
		if err != nil {
			return err
		}
		views[c.Rank()] = interval.List(piece.Filetype.Flatten())
		buf := shared[:piece.BufBytes]
		if e.Verify {
			buf = make([]byte, piece.BufBytes)
			verify.Fill(c.Rank(), buf)
		}
		for step := 0; step < steps; step++ {
			if e.Compute > 0 {
				c.Clock().Advance(e.Compute)
			}
			f, err := mpiio.Open(c, fs, mgr, stepName(step))
			if err != nil {
				return err
			}
			if err := f.SetView(0, datatype.Byte, piece.Filetype); err != nil {
				return err
			}
			if err := f.SetAtomicity(true); err != nil {
				return err
			}
			if err := f.SetStrategy(e.Strategy); err != nil {
				return err
			}
			f.SetTrace(rec)
			f.SetEvents(events)
			if inj != nil {
				f.SetFaults(inj)
			}
			start := c.Now()
			if err := f.WriteAll(buf); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			ioTimes[c.Rank()] += c.Now() - start
			written[c.Rank()] += f.Client().BytesWritten()
		}
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	out := &Result{
		Experiment:  e,
		Makespan:    res.MaxTime,
		ArrayBytes:  int64(e.M) * int64(e.N) * int64(steps),
		ServerStats: fs.ServerStats(),
		RankTimes:   res.Times,
	}
	for _, w := range written {
		out.WrittenBytes += w
	}
	for _, t := range ioTimes {
		if t > out.IOTime {
			out.IOTime = t
		}
	}
	if res.MaxTime > 0 {
		out.BandwidthMBs = float64(out.ArrayBytes) / (1 << 20) / res.MaxTime.Seconds()
	}
	// Recovery is the post-crisis phase: servers are back, so the replay
	// bypasses the fault filter and charges no virtual time. It must run
	// before verification — the verdict describes the recovered file.
	if e.Recovery {
		var all []int
		for step := 0; step < steps; step++ {
			replayed, err := fs.Recover(stepName(step))
			if err != nil {
				return nil, err
			}
			all = append(all, replayed...)
		}
		sort.Ints(all)
		for _, r := range all {
			if n := len(out.Replayed); n == 0 || out.Replayed[n-1] != r {
				out.Replayed = append(out.Replayed, r)
			}
		}
		// Replay happens after the simulated run and charges no virtual
		// time, so its events are stamped at the makespan — the earliest
		// instant the whole system is quiescent.
		if events != nil {
			for _, r := range out.Replayed {
				events.Emit(obs.Event{
					T: res.MaxTime, Actor: r, Layer: obs.LayerPFS,
					Kind: obs.KindWALReplay, Peer: -1,
				})
				events.Count(r, obs.MetricWALReplays, 1)
			}
		}
	}
	if e.Verify {
		// Every dump must be atomic: each step's file is checked under the
		// server-queue and cache state it was actually written in, and the
		// first violating report is surfaced. When all are clean the last
		// report stands — views are identical across steps, so its atom
		// count and overlapped volume describe any single dump.
		for step := 0; step < steps; step++ {
			rep, err := verify.Check(fs, stepName(step), views)
			if err != nil {
				return nil, err
			}
			out.Report = rep
			if !rep.Atomic() {
				break
			}
		}
		out.Verdict = verify.Classify(out.Report, len(out.Replayed) > 0)
	}
	if e.Trace {
		out.Phases = rec
	}
	if events != nil {
		out.Events = events
		out.Metrics = events.Metrics()
	}
	return out, nil
}
