package harness

import (
	"reflect"
	"testing"

	"atomio/internal/core"
	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/sim/des"
	"atomio/internal/sim/fault"
	"atomio/internal/verify"
)

// faultExperiment is the base cell the end-to-end fault tests perturb: a
// small column-wise overlapping write on Origin2000 with content checking.
// The strategy pool is the platform's methods plus two-phase (which
// Methods omits); an unknown name is a test bug, not a silent fallback.
func faultExperiment(strategy string) Experiment {
	pool := append(Methods(platform.Origin2000()), core.TwoPhase{})
	var strat core.Strategy
	for _, s := range pool {
		if s.Name() == strategy {
			strat = s
		}
	}
	if strat == nil {
		panic("faultExperiment: unknown strategy " + strategy)
	}
	return Experiment{
		Platform:  platform.Origin2000(),
		M:         32,
		N:         512,
		Procs:     4,
		Overlap:   4,
		Pattern:   ColumnWise,
		Strategy:  strat,
		Servers:   2,
		StoreData: true,
		Verify:    true,
	}
}

// TestFaultServerOutageTornWithoutRecovery is the fleet's negative control
// run directly: a server down from t=0 with no write-ahead log must leave a
// torn file — the stripes it owned read as lost data.
func TestFaultServerOutageTornWithoutRecovery(t *testing.T) {
	e := faultExperiment("locking")
	script := fault.ServerOutage()
	e.Faults = &script
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != verify.Torn {
		t.Fatalf("verdict = %q, want %q (report %+v)", res.Verdict, verify.Torn, res.Report)
	}
	if res.Replayed != nil {
		t.Fatalf("replayed = %v without recovery", res.Replayed)
	}
}

// TestFaultServerOutageRecovers turns the write-ahead log on for the same
// outage: replay must heal the file to a serializable state and report
// which ranks it replayed.
func TestFaultServerOutageRecovers(t *testing.T) {
	for _, strategy := range []string{"locking", "twophase"} {
		t.Run(strategy, func(t *testing.T) {
			e := faultExperiment(strategy)
			script := fault.ServerOutage()
			e.Faults = &script
			e.Recovery = true
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != verify.RecoveredSerializable {
				t.Fatalf("verdict = %q, want %q (report %+v)", res.Verdict, verify.RecoveredSerializable, res.Report)
			}
			if len(res.Replayed) == 0 {
				t.Fatal("recovery reported no replayed ranks")
			}
		})
	}
}

// TestFaultLockFaultsStaySerializable injects every lock-message fault
// class against the locking strategy: the lease-revocation path must keep
// the outcome serializable with no replay needed.
func TestFaultLockFaultsStaySerializable(t *testing.T) {
	scripts := []fault.Script{fault.UnlockDropLease(), fault.UnlockDupScript(), fault.LockReorder()}
	for _, script := range scripts {
		script := script
		t.Run(script.Name, func(t *testing.T) {
			e := faultExperiment("locking")
			e.Faults = &script
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != verify.Serializable {
				t.Fatalf("verdict = %q, want %q (report %+v)", res.Verdict, verify.Serializable, res.Report)
			}
		})
	}
}

// TestFaultWriterCrashRecovers kills one writer mid-request under both
// strategies that commit data directly: without the log the file is torn,
// with it the intents replay to a serializable state.
func TestFaultWriterCrashRecovers(t *testing.T) {
	for _, strategy := range []string{"locking", "twophase"} {
		t.Run(strategy, func(t *testing.T) {
			e := faultExperiment(strategy)
			script := fault.WriterCrashEarly()
			e.Faults = &script

			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != verify.Torn {
				t.Fatalf("unrecovered verdict = %q, want %q (report %+v)", res.Verdict, verify.Torn, res.Report)
			}

			e.Recovery = true
			res, err = e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != verify.RecoveredSerializable {
				t.Fatalf("recovered verdict = %q, want %q (report %+v)", res.Verdict, verify.RecoveredSerializable, res.Report)
			}
		})
	}
}

// TestFaultHealthyRunUnaffected pins that attaching an empty script and the
// recovery machinery to a healthy run changes nothing observable: same
// timings, same serializable verdict, no replay.
func TestFaultHealthyRunUnaffected(t *testing.T) {
	base := faultExperiment("locking")
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	e := faultExperiment("locking")
	e.Faults = &fault.Script{Name: "empty", Lease: fault.DefaultLease}
	e.Recovery = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != verify.Serializable || res.Replayed != nil {
		t.Fatalf("verdict = %q replayed = %v, want clean serializable", res.Verdict, res.Replayed)
	}
	if res.Makespan != clean.Makespan || res.WrittenBytes != clean.WrittenBytes {
		t.Fatalf("empty fault script perturbed the run: makespan %v vs %v, written %d vs %d",
			res.Makespan, clean.Makespan, res.WrittenBytes, clean.WrittenBytes)
	}
}

// TestFaultVerdictsByteIdenticalAcrossEngines is the cross-engine fault
// determinism property: for every builtin fault script, with and without
// recovery, the event-loop and goroutine engines must produce identical
// verdicts, replay sets, reports, timings and server stats.
func TestFaultVerdictsByteIdenticalAcrossEngines(t *testing.T) {
	for _, script := range fault.Builtins() {
		script := script
		for _, recovery := range []bool{false, true} {
			name := script.Name
			if recovery {
				name += "+recovery"
			}
			t.Run(name, func(t *testing.T) {
				e := faultExperiment("locking")
				e.Faults = &script
				e.Recovery = recovery
				pinEngines(t, e)
			})
		}
	}
}

// TestFaultGeneratedScriptsDeterministic sweeps seeded generated scripts
// through both engines and both store layouts: verdict and replay set are a
// function of the seed alone.
func TestFaultGeneratedScriptsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-engine sweep")
	}
	p := fault.GenParams{Servers: 2, Ranks: 4, LockFaults: true, WriterCrash: true}
	for seed := uint64(1); seed <= 6; seed++ {
		script := fault.Generate(seed, p)
		e := faultExperiment("locking")
		e.Faults = &script
		e.Recovery = true
		t.Run(script.Name, func(t *testing.T) {
			oracle := runUnder(t, e, sim.Goroutines{})
			loop := runUnder(t, e, des.New())
			if loop.Verdict != oracle.Verdict {
				t.Errorf("verdict diverges: eventloop %q, goroutine %q", loop.Verdict, oracle.Verdict)
			}
			if !reflect.DeepEqual(loop.Replayed, oracle.Replayed) {
				t.Errorf("replay set diverges: eventloop %v, goroutine %v", loop.Replayed, oracle.Replayed)
			}
			shared := e
			shared.SharedStore = true
			twin := runUnder(t, shared, des.New())
			if twin.Verdict != loop.Verdict {
				t.Errorf("store layouts disagree: shared %q, striped %q", twin.Verdict, loop.Verdict)
			}
		})
	}
}
