package harness

import (
	"fmt"
	"strings"

	"atomio/internal/core"
	"atomio/internal/platform"
)

// The paper's Figure 8 grid: three array sizes on three platforms, written
// by 4, 8 and 16 processes with each applicable strategy. M is fixed at
// 4096 rows; N varies. The overlap R is "a few columns"; 64 reproduces a
// visible ordering-vs-coloring volume gap without dominating the array.
const (
	Figure8M       = 4096
	Figure8Overlap = 64
)

// Figure8Sizes are the three N values: 32 MB, 128 MB and 1 GB arrays.
var Figure8Sizes = []struct {
	N     int
	Label string
}{
	{8192, "32 MB"},
	{32768, "128 MB"},
	{262144, "1 GB"},
}

// Figure8Procs are the process counts on the x axis.
var Figure8Procs = []int{4, 8, 16}

// Panel is one of the nine subplots of Figure 8.
type Panel struct {
	Platform platform.Profile
	N        int
	Label    string
}

// Figure8Panels enumerates the nine panels in the paper's layout order
// (platforms across, sizes down).
func Figure8Panels() []Panel {
	var panels []Panel
	for _, size := range Figure8Sizes {
		for _, prof := range platform.All() {
			panels = append(panels, Panel{Platform: prof, N: size.N, Label: size.Label})
		}
	}
	return panels
}

// Methods returns the strategies measured on a platform: Cplant has no
// locking ("our performance results on CPlant do not include the
// experiments that use file locking").
func Methods(prof platform.Profile) []core.Strategy {
	if prof.SupportsLocking() {
		return []core.Strategy{core.Locking{}, core.Coloring{}, core.RankOrder{}}
	}
	return []core.Strategy{core.Coloring{}, core.RankOrder{}}
}

// Series is one curve of a panel: bandwidth by process count.
type Series struct {
	Method     string
	ByProcs    map[int]float64 // P -> MB/s
	Written    map[int]int64   // P -> bytes physically written
	MakespanMS map[int]float64 // P -> virtual milliseconds
}

// RunPanel measures every applicable strategy at every process count.
// storeData should be false for the large arrays.
func RunPanel(p Panel, storeData bool) ([]Series, error) {
	var out []Series
	for _, strat := range Methods(p.Platform) {
		s := Series{
			Method:     strat.Name(),
			ByProcs:    make(map[int]float64),
			Written:    make(map[int]int64),
			MakespanMS: make(map[int]float64),
		}
		for _, procs := range Figure8Procs {
			res, err := Experiment{
				Platform:  p.Platform,
				M:         Figure8M,
				N:         p.N,
				Procs:     procs,
				Overlap:   Figure8Overlap,
				Pattern:   ColumnWise,
				Strategy:  strat,
				StoreData: storeData,
			}.Run()
			if err != nil {
				return nil, fmt.Errorf("panel %s/%s %s P=%d: %w",
					p.Platform.Name, p.Label, strat.Name(), procs, err)
			}
			s.ByProcs[procs] = res.BandwidthMBs
			s.Written[procs] = res.WrittenBytes
			s.MakespanMS[procs] = res.Makespan.Seconds() * 1e3
		}
		out = append(out, s)
	}
	return out, nil
}

// RenderPanel prints a panel the way the paper's subplots read: one row per
// process count, one column per strategy.
func RenderPanel(p Panel, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s    Array size: %d x %d (%s)\n", p.Platform.Name, Figure8M, p.N, p.Label)
	fmt.Fprintf(&b, "%-6s", "P")
	for _, s := range series {
		fmt.Fprintf(&b, "%16s", s.Method)
	}
	b.WriteByte('\n')
	for _, procs := range Figure8Procs {
		fmt.Fprintf(&b, "%-6d", procs)
		for _, s := range series {
			fmt.Fprintf(&b, "%11.2f MB/s", s.ByProcs[procs])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
