package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"atomio/internal/platform"
	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// runUnder executes the experiment under the named engine.
func runUnder(t *testing.T, e Experiment, eng sim.Engine) *Result {
	t.Helper()
	e.Engine = eng
	res, err := e.Run()
	if err != nil {
		t.Fatalf("%s under %s: %v", e, eng.Name(), err)
	}
	return res
}

// pinEngines runs the experiment under both engines and fails on any
// difference in virtual output: per-rank clocks, makespan, I/O time,
// written volume, bandwidth, per-server stats, and — when Verify is on —
// the atomicity report derived from the actual file contents.
func pinEngines(t *testing.T, e Experiment) {
	t.Helper()
	oracle := runUnder(t, e, sim.Goroutines{})
	loop := runUnder(t, e, des.New())

	if !reflect.DeepEqual(loop.RankTimes, oracle.RankTimes) {
		t.Errorf("per-rank clocks diverge\n eventloop %v\n goroutine %v", loop.RankTimes, oracle.RankTimes)
	}
	if loop.Makespan != oracle.Makespan {
		t.Errorf("makespan diverges: eventloop %v, goroutine %v", loop.Makespan, oracle.Makespan)
	}
	if loop.IOTime != oracle.IOTime {
		t.Errorf("I/O time diverges: eventloop %v, goroutine %v", loop.IOTime, oracle.IOTime)
	}
	if loop.WrittenBytes != oracle.WrittenBytes {
		t.Errorf("written bytes diverge: eventloop %d, goroutine %d", loop.WrittenBytes, oracle.WrittenBytes)
	}
	if loop.BandwidthMBs != oracle.BandwidthMBs {
		t.Errorf("bandwidth diverges: eventloop %v, goroutine %v", loop.BandwidthMBs, oracle.BandwidthMBs)
	}
	if !reflect.DeepEqual(loop.ServerStats, oracle.ServerStats) {
		t.Errorf("server stats diverge\n eventloop %+v\n goroutine %+v", loop.ServerStats, oracle.ServerStats)
	}
	if (loop.Report == nil) != (oracle.Report == nil) {
		t.Fatalf("report presence diverges: eventloop %v, goroutine %v", loop.Report, oracle.Report)
	}
	if loop.Report != nil && !reflect.DeepEqual(loop.Report, oracle.Report) {
		t.Errorf("atomicity report diverges\n eventloop %+v\n goroutine %+v", loop.Report, oracle.Report)
	}
	if loop.Verdict != oracle.Verdict {
		t.Errorf("verdict diverges: eventloop %q, goroutine %q", loop.Verdict, oracle.Verdict)
	}
	if !reflect.DeepEqual(loop.Replayed, oracle.Replayed) {
		t.Errorf("replay set diverges: eventloop %v, goroutine %v", loop.Replayed, oracle.Replayed)
	}
}

// TestEnginesByteIdenticalRandomized pins the event-loop engine to the
// goroutine oracle on seeded random workloads across platforms, strategies,
// patterns and server counts. Each seed fully determines its workload, so a
// failure reproduces by seed.
func TestEnginesByteIdenticalRandomized(t *testing.T) {
	profiles := platform.All()
	patterns := []Pattern{ColumnWise, RowWise, BlockBlock}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		prof := profiles[rng.Intn(len(profiles))]
		methods := Methods(prof)
		strat := methods[rng.Intn(len(methods))]
		pattern := patterns[rng.Intn(len(patterns))]
		procs := []int{4, 8, 16}[rng.Intn(3)]
		side := 1
		if pattern == BlockBlock {
			procs = []int{4, 9, 16}[rng.Intn(3)]
			for side*side < procs {
				side++
			}
		}
		e := Experiment{
			Platform: prof,
			// Scale rows with the process count so every pattern's
			// partition stays taller than the overlap, and keep both
			// dimensions divisible by a block-block grid side.
			M:         procs * 8 * (1 + rng.Intn(2)),
			N:         side * 256 * (1 + rng.Intn(3)),
			Procs:     procs,
			Overlap:   2 * (1 + rng.Intn(3)),
			Pattern:   pattern,
			Strategy:  strat,
			Servers:   []int{0, 1, 4}[rng.Intn(3)],
			StoreData: true,
			Verify:    true,
		}
		t.Run(e.String(), func(t *testing.T) { pinEngines(t, e) })
	}
}

// TestEnginesByteIdenticalCheckpoint pins a multi-step checkpoint run with
// compute gaps — the workload where server-queue and cache state carries
// across collective writes.
func TestEnginesByteIdenticalCheckpoint(t *testing.T) {
	pinEngines(t, Experiment{
		Platform:  platform.IBMSP(),
		M:         64,
		N:         512,
		Procs:     8,
		Overlap:   8,
		Pattern:   ColumnWise,
		Strategy:  Methods(platform.IBMSP())[0],
		StoreData: true,
		Verify:    true,
		Steps:     3,
		Compute:   5_000_000,
	})
}

// TestEngineResolution checks the engine default chain: experiment override,
// then platform profile, then the event-loop default.
func TestEngineResolution(t *testing.T) {
	e := Experiment{Platform: platform.Origin2000()}
	if got := e.EngineName(); got != "eventloop" {
		t.Fatalf("default engine = %q, want eventloop", got)
	}
	e.Platform.Engine = sim.Goroutines{}
	if got := e.EngineName(); got != "goroutine" {
		t.Fatalf("platform engine = %q, want goroutine", got)
	}
	e.Engine = des.New()
	if got := e.EngineName(); got != "eventloop" {
		t.Fatalf("experiment engine = %q, want eventloop", got)
	}
}
