package sim

import (
	"sync"
	"testing"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v", c.Now())
	}
	c.Advance(5 * Microsecond)
	if c.Now() != 5*Microsecond {
		t.Fatalf("clock at %v, want 5µs", c.Now())
	}
	c.AdvanceTo(3 * Microsecond) // earlier: no-op
	if c.Now() != 5*Microsecond {
		t.Fatalf("clock moved backwards to %v", c.Now())
	}
	c.AdvanceTo(9 * Microsecond)
	if c.Now() != 9*Microsecond {
		t.Fatalf("clock at %v, want 9µs", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestLinearCost(t *testing.T) {
	m := LinearCost{Latency: 10 * Microsecond, BytesPerSec: 1 << 20} // 1 MiB/s
	if got := m.Cost(0); got != 10*Microsecond {
		t.Fatalf("Cost(0) = %v", got)
	}
	// 1 MiB at 1 MiB/s = 1 s (+latency).
	if got := m.Cost(1 << 20); got != Second+10*Microsecond {
		t.Fatalf("Cost(1MiB) = %v", got)
	}
	// Zero bandwidth: latency only.
	if got := (LinearCost{Latency: 3}).Cost(1 << 30); got != 3 {
		t.Fatalf("zero-bandwidth Cost = %v", got)
	}
}

func TestFreeCost(t *testing.T) {
	if got := (Free{}).Cost(1 << 40); got != 0 {
		t.Fatalf("Free cost = %v", got)
	}
}

func TestResourceFCFS(t *testing.T) {
	r := NewResource("disk")
	s, e := r.Acquire(0, 10)
	if s != 0 || e != 10 {
		t.Fatalf("first acquire = (%v,%v)", s, e)
	}
	// Arrives while busy: queued.
	s, e = r.Acquire(5, 10)
	if s != 10 || e != 20 {
		t.Fatalf("queued acquire = (%v,%v), want (10,20)", s, e)
	}
	// Arrives after idle: starts at arrival.
	s, e = r.Acquire(100, 10)
	if s != 100 || e != 110 {
		t.Fatalf("idle acquire = (%v,%v), want (100,110)", s, e)
	}
	ops, busy := r.Stats()
	if ops != 3 || busy != 30 {
		t.Fatalf("stats = (%d,%v), want (3,30)", ops, busy)
	}
}

func TestResourceConcurrentTotalServiceConserved(t *testing.T) {
	// N concurrent acquires all arriving at virtual time 0 with service 7
	// must drain at exactly N*7 regardless of goroutine interleaving.
	const n, svc = 64, 7
	r := NewResource("srv")
	var wg sync.WaitGroup
	ends := make([]VTime, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, ends[i] = r.Acquire(0, svc)
		}(i)
	}
	wg.Wait()
	var last VTime
	seen := make(map[VTime]bool)
	for _, e := range ends {
		if e > last {
			last = e
		}
		if seen[e] {
			t.Fatalf("duplicate completion time %v", e)
		}
		seen[e] = true
	}
	if last != n*svc {
		t.Fatalf("drain time = %v, want %v", last, VTime(n*svc))
	}
	if r.FreeAt() != n*svc {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 10)
	r.Reset()
	if r.FreeAt() != 0 {
		t.Fatal("reset did not clear freeAt")
	}
	ops, busy := r.Stats()
	if ops != 0 || busy != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestPool(t *testing.T) {
	p := NewPool("io", 4)
	if p.Size() != 4 {
		t.Fatalf("size = %d", p.Size())
	}
	p.Member(0).Acquire(0, 100)
	p.Member(3).Acquire(0, 250)
	if got := p.MaxFreeAt(); got != 250 {
		t.Fatalf("MaxFreeAt = %v", got)
	}
	p.Reset()
	if got := p.MaxFreeAt(); got != 0 {
		t.Fatalf("MaxFreeAt after reset = %v", got)
	}
	if name := p.Member(2).Name(); name != "io[2]" {
		t.Fatalf("member name = %q", name)
	}
}

func TestPoolZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool("x", 0)
}

func TestVTimeHelpers(t *testing.T) {
	if MaxVTime(3, 5) != 5 || MaxVTime(5, 3) != 5 {
		t.Fatal("MaxVTime broken")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds broken")
	}
	if Second.String() != "1s" {
		t.Fatalf("String = %q", Second.String())
	}
}
