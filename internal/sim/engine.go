package sim

import "sync"

// Coord is the coordination surface a deterministic simulation runs on. It
// generalizes *Gate so that the same rank programs — the mailbox waits in
// internal/mpi, the grant-table waits in internal/lock, the server bookings
// in internal/pfs — can be driven either by real goroutines synchronizing
// through a Gate, or by a single-threaded event-loop scheduler resuming
// coroutines (internal/sim/des). Both implementations admit actions in the
// same lexicographic (virtual time, actor id) order, so a simulation
// produces byte-identical virtual output on either.
//
// The Gate methods keep their contract (see Gate): Await announces an
// action and blocks until it is globally earliest, Block marks the actor as
// waiting on a peer, Done retires it. Park and Wake replace the ad-hoc
// condition-variable and channel sleeps that used to sit next to
// Block/Unblock: an actor that has Blocked calls Park to actually sleep,
// and the peer that satisfies it calls Wake — Unblock plus the wake-up —
// under the same shared-structure lock as the Block, so the admission state
// and the sleeper's resumption can never disagree.
type Coord interface {
	// Await announces that actor id wants to act at virtual time t and
	// blocks until that action is the earliest one pending, then takes the
	// exclusive turn (released by the actor's next Coord call).
	Await(id int, t VTime)
	// Block marks the actor as waiting on another actor, excluding it from
	// admission decisions. Call under the lock of the shared structure the
	// actor is about to sleep on, then sleep with Park.
	Block(id int)
	// Park puts the Blocked actor to sleep until a peer Wakes it. If l is
	// non-nil it is unlocked while parked and relocked before Park returns
	// (the condition-variable protocol); the caller rechecks its predicate.
	// A nil l parks without touching any lock.
	Park(id int, l sync.Locker)
	// Wake marks a parked actor live again, publishing t as a lower bound
	// on its next action time, and resumes its Park. It is called by the
	// actor doing the waking, under the same shared-structure lock as the
	// corresponding Block, before the sleeper can run again. Wake and Park
	// pair one-to-one.
	Wake(id int, t VTime)
	// Done retires an actor: it no longer constrains admissions.
	Done(id int)
	// Actors returns the number of actors coordinated.
	Actors() int
}

// Engine executes the actor bodies of one simulation. Implementations:
// Goroutines (one real goroutine per actor, coordinated by a Gate — the
// original engine, kept as the byte-identical oracle) and the event-loop
// scheduler in internal/sim/des (every actor a resumable coroutine driven
// by one event queue, no goroutine parking on the hot path).
type Engine interface {
	// Name is the engine's registry name ("goroutine", "eventloop").
	Name() string
	// NewCoord returns a coordinator of this engine's flavour for actors
	// 0..actors-1. Pass it to Run and to every structure the simulation
	// blocks on.
	NewCoord(actors int) Coord
	// Run executes body(id) for every actor 0..actors-1 and returns when
	// all bodies have returned. c must be the coordinator the bodies block
	// through: the Goroutines engine accepts any Coord (or nil for a
	// free-running world); the event-loop engine requires its own. A
	// non-nil error reports an engine-level failure (for example actors
	// still asleep after every runnable one finished).
	Run(c Coord, actors int, body func(id int)) error
}

// StoppedError is the panic value delivered to an actor its engine forcibly
// unwinds during teardown — an actor still asleep when no runnable actor
// remains (the event-loop analogue of a run that would otherwise deadlock).
// Rank runtimes treat it like an abort: it unwinds the actor's stack so
// deferred cleanups run, and is reported as a consequence, never as the
// root cause.
type StoppedError struct {
	// Actor is the stopped actor's id.
	Actor int
}

// Error implements the error interface.
func (e StoppedError) Error() string {
	return "sim: actor " + itoa(e.Actor) + " force-stopped by engine teardown (stalled waiting on a peer)"
}

// itoa is a minimal integer formatter so the hot error type needs no fmt.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Goroutines is the original engine: one real goroutine per actor,
// coordinated by a Gate. It accepts any Coord (including nil for a
// free-running world) because the bodies, not the engine, do the blocking.
type Goroutines struct{}

// Name implements Engine.
func (Goroutines) Name() string { return "goroutine" }

// NewCoord implements Engine: goroutine worlds coordinate through a Gate.
func (Goroutines) NewCoord(actors int) Coord { return NewGate(actors) }

// Run implements Engine: spawn the bodies and wait for all of them.
func (Goroutines) Run(_ Coord, actors int, body func(id int)) error {
	var wg sync.WaitGroup
	for i := 0; i < actors; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(id)
		}(i)
	}
	wg.Wait()
	return nil
}

var _ Engine = Goroutines{}
