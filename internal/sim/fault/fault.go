// Package fault defines deterministic failure injection for the
// simulation: seeded scripts of fault events whose effects are pure
// functions of virtual time and per-actor operation counts, never of host
// scheduling. A server crash is a virtual-time drop window — any write
// routed to that server while the window is open is discarded and its
// extents recorded as damage; a lock fault fires on the owner's n-th lock
// or unlock operation (program order, which is deterministic per rank); a
// writer crash kills a rank after a fixed number of write segments. Because
// every decision depends only on values that are byte-identical across the
// goroutine and event-loop engines, a faulted run is exactly as
// reproducible as a healthy one: same seed, same verdict, either engine.
//
// The package deliberately has no "at wall moment t, mutate state" hook:
// store writes race in real time under the goroutine engine, so any
// trigger-at-moment mutation would be nondeterministic. "Server s loses
// its unsynced chunk store when it crashes" is modeled as a drop window
// opening at virtual time zero (the bytes were never durable), not as a
// retroactive wipe.
package fault

import (
	"fmt"

	"atomio/internal/sim"
)

// Kind enumerates the fault-event classes.
type Kind int

const (
	// ServerCrash opens a drop window on one I/O server: writes routed to
	// it while the window is open are discarded (no bytes stored, no
	// service booked) and their extents recorded as damage. Until==0 means
	// the server never restarts.
	ServerCrash Kind = iota
	// UnlockDrop loses the owner's op-th unlock message. With a lease the
	// grant is revoked when the lease expires; without one the lock is
	// held forever and the run stalls (the event-loop engine detects this
	// at teardown).
	UnlockDrop
	// UnlockDup duplicates the owner's op-th unlock message: the release
	// is delivered twice. Managers must treat the second copy as a no-op.
	UnlockDup
	// LockDelay delays the owner's op-th lock request by Delay of virtual
	// time — the message-reorder fault: a later-issued request from
	// another rank can reach the manager first.
	LockDelay
	// WriterCrash kills rank Owner after Segments completed write
	// segments of a collective write: the remainder of its data is never
	// written and its extents are recorded as damage.
	WriterCrash
)

// String names the kind the way scripts and records spell it.
func (k Kind) String() string {
	switch k {
	case ServerCrash:
		return "server-crash"
	case UnlockDrop:
		return "unlock-drop"
	case UnlockDup:
		return "unlock-dup"
	case LockDelay:
		return "lock-delay"
	case WriterCrash:
		return "writer-crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fault. Which fields matter depends on Kind.
type Event struct {
	Kind Kind
	// Server is the crashed I/O server (ServerCrash).
	Server int
	// From and Until bound the drop window in virtual time (ServerCrash);
	// Until==0 leaves the server down for the rest of the run.
	From, Until sim.VTime
	// Owner is the faulted rank (lock faults, WriterCrash).
	Owner int
	// Op is the owner's operation index the fault fires on: the op-th
	// lock request (LockDelay) or the op-th unlock (UnlockDrop,
	// UnlockDup), counted per owner in program order from zero.
	Op int
	// Delay is the added virtual latency (LockDelay).
	Delay sim.VTime
	// Segments is how many write segments the rank completes before
	// dying (WriterCrash).
	Segments int
}

// String renders the event compactly for cell records and repro output.
func (e Event) String() string {
	switch e.Kind {
	case ServerCrash:
		if e.Until == 0 {
			return fmt.Sprintf("%s(s%d@%d-)", e.Kind, e.Server, int64(e.From))
		}
		return fmt.Sprintf("%s(s%d@%d-%d)", e.Kind, e.Server, int64(e.From), int64(e.Until))
	case UnlockDrop, UnlockDup:
		return fmt.Sprintf("%s(r%d#%d)", e.Kind, e.Owner, e.Op)
	case LockDelay:
		return fmt.Sprintf("%s(r%d#%d+%d)", e.Kind, e.Owner, e.Op, int64(e.Delay))
	case WriterCrash:
		return fmt.Sprintf("%s(r%d@seg%d)", e.Kind, e.Owner, e.Segments)
	default:
		return e.Kind.String()
	}
}

// Script is a named set of fault events plus the lock-lease duration that
// bounds how long a dropped unlock can wedge its byte range. Lease==0
// disables revocation: a dropped unlock then stalls the run (only the
// teardown regression tests want that).
type Script struct {
	Name   string
	Lease  sim.VTime
	Events []Event
}

// String renders the script as "name[ev ev ...]".
func (s Script) String() string {
	out := s.Name + "["
	for i, e := range s.Events {
		if i > 0 {
			out += " "
		}
		out += e.String()
	}
	return out + "]"
}

// Injector answers fault queries during a run. Build one per run with New;
// all methods are pure functions of the precomputed script, so a single
// injector may be shared by every actor without synchronization.
type Injector struct {
	script      Script
	crash       map[int][]Event // server → drop windows
	lockDelay   map[opKey]sim.VTime
	unlockDrop  map[opKey]bool
	unlockDup   map[opKey]bool
	writerCrash map[int]int // rank → completed segments
}

type opKey struct{ owner, op int }

// New precomputes lookup tables for the script's events.
func New(s Script) *Injector {
	in := &Injector{
		script:      s,
		crash:       make(map[int][]Event),
		lockDelay:   make(map[opKey]sim.VTime),
		unlockDrop:  make(map[opKey]bool),
		unlockDup:   make(map[opKey]bool),
		writerCrash: make(map[int]int),
	}
	for _, e := range s.Events {
		switch e.Kind {
		case ServerCrash:
			in.crash[e.Server] = append(in.crash[e.Server], e)
		case LockDelay:
			in.lockDelay[opKey{e.Owner, e.Op}] += e.Delay
		case UnlockDrop:
			in.unlockDrop[opKey{e.Owner, e.Op}] = true
		case UnlockDup:
			in.unlockDup[opKey{e.Owner, e.Op}] = true
		case WriterCrash:
			in.writerCrash[e.Owner] = e.Segments
		}
	}
	return in
}

// Script returns the script the injector was built from.
func (in *Injector) Script() Script { return in.script }

// Lease returns the script's lock-lease duration.
func (in *Injector) Lease() sim.VTime { return in.script.Lease }

// ServerDropped reports whether a write routed to server at virtual time
// at falls inside one of the server's drop windows.
func (in *Injector) ServerDropped(server int, at sim.VTime) bool {
	for _, w := range in.crash[server] {
		if at >= w.From && (w.Until == 0 || at < w.Until) {
			return true
		}
	}
	return false
}

// LockDelay returns the added virtual latency of the owner's op-th lock
// request (zero when unfaulted).
func (in *Injector) LockDelay(owner, op int) sim.VTime {
	return in.lockDelay[opKey{owner, op}]
}

// UnlockDropped reports whether the owner's op-th unlock message is lost.
func (in *Injector) UnlockDropped(owner, op int) bool {
	return in.unlockDrop[opKey{owner, op}]
}

// UnlockDuplicated reports whether the owner's op-th unlock message is
// delivered twice.
func (in *Injector) UnlockDuplicated(owner, op int) bool {
	return in.unlockDup[opKey{owner, op}]
}

// WriterCrash reports whether the rank crashes mid-write and after how
// many completed write segments.
func (in *Injector) WriterCrash(rank int) (segments int, crashed bool) {
	segments, crashed = in.writerCrash[rank]
	return segments, crashed
}

// HasLockFaults reports whether the script carries any lock-message
// faults — the signal for wrapping the lock manager.
func (in *Injector) HasLockFaults() bool {
	return len(in.lockDelay) > 0 || len(in.unlockDrop) > 0 || len(in.unlockDup) > 0
}

// HasServerFaults reports whether the script crashes any server.
func (in *Injector) HasServerFaults() bool { return len(in.crash) > 0 }
