package fault

import (
	"reflect"
	"testing"

	"atomio/internal/sim"
)

func TestServerDroppedWindows(t *testing.T) {
	in := New(Script{Events: []Event{
		{Kind: ServerCrash, Server: 0, From: 10, Until: 20},
		{Kind: ServerCrash, Server: 0, From: 50}, // down for good
		{Kind: ServerCrash, Server: 2, From: 0, Until: 5},
	}})
	cases := []struct {
		server int
		at     sim.VTime
		want   bool
	}{
		{0, 9, false}, {0, 10, true}, {0, 19, true}, {0, 20, false},
		{0, 49, false}, {0, 50, true}, {0, 1 << 40, true},
		{1, 0, false}, {1, 1 << 40, false},
		{2, 0, true}, {2, 4, true}, {2, 5, false},
	}
	for _, c := range cases {
		if got := in.ServerDropped(c.server, c.at); got != c.want {
			t.Errorf("ServerDropped(%d, %d) = %v, want %v", c.server, c.at, got, c.want)
		}
	}
	if !in.HasServerFaults() {
		t.Error("HasServerFaults = false")
	}
	if in.HasLockFaults() {
		t.Error("HasLockFaults = true for a crash-only script")
	}
}

func TestLockFaultLookups(t *testing.T) {
	in := New(Script{Lease: 7, Events: []Event{
		{Kind: UnlockDrop, Owner: 1, Op: 0},
		{Kind: UnlockDup, Owner: 2, Op: 1},
		{Kind: LockDelay, Owner: 0, Op: 0, Delay: 100},
		{Kind: LockDelay, Owner: 0, Op: 0, Delay: 50}, // delays accumulate
	}})
	if !in.UnlockDropped(1, 0) || in.UnlockDropped(1, 1) || in.UnlockDropped(0, 0) {
		t.Error("UnlockDropped lookup wrong")
	}
	if !in.UnlockDuplicated(2, 1) || in.UnlockDuplicated(2, 0) {
		t.Error("UnlockDuplicated lookup wrong")
	}
	if got := in.LockDelay(0, 0); got != 150 {
		t.Errorf("LockDelay(0,0) = %d, want 150", got)
	}
	if got := in.LockDelay(0, 1); got != 0 {
		t.Errorf("LockDelay(0,1) = %d, want 0", got)
	}
	if !in.HasLockFaults() {
		t.Error("HasLockFaults = false")
	}
	if in.Lease() != 7 {
		t.Errorf("Lease = %d, want 7", in.Lease())
	}
}

func TestWriterCrashLookup(t *testing.T) {
	in := New(Script{Events: []Event{{Kind: WriterCrash, Owner: 3, Segments: 2}}})
	if segs, ok := in.WriterCrash(3); !ok || segs != 2 {
		t.Errorf("WriterCrash(3) = %d, %v; want 2, true", segs, ok)
	}
	if _, ok := in.WriterCrash(0); ok {
		t.Error("WriterCrash(0) = true for unfaulted rank")
	}
}

// TestGenerateDeterministic pins that the same seed yields the same script
// and different seeds diverge.
func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Servers: 4, Ranks: 8, LockFaults: true, WriterCrash: true, Horizon: sim.Millisecond}
	a := Generate(42, p)
	b := Generate(42, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n %v\n %v", a, b)
	}
	distinct := false
	for seed := uint64(0); seed < 16; seed++ {
		if !reflect.DeepEqual(Generate(seed, p), a) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("16 seeds all produced the same script")
	}
}

// TestGenerateRespectsParams pins the class gating: without LockFaults and
// WriterCrash only server crashes may appear, and all indices stay in
// range.
func TestGenerateRespectsParams(t *testing.T) {
	p := GenParams{Servers: 3, Ranks: 4, Horizon: sim.Millisecond}
	for seed := uint64(0); seed < 64; seed++ {
		s := Generate(seed, p)
		if len(s.Events) == 0 {
			t.Fatalf("seed %d: empty script", seed)
		}
		if s.Lease <= 0 {
			t.Fatalf("seed %d: generated script must carry a lease", seed)
		}
		for _, e := range s.Events {
			if e.Kind != ServerCrash {
				t.Fatalf("seed %d: kind %v generated without permission", seed, e.Kind)
			}
			if e.Server < 0 || e.Server >= p.Servers {
				t.Fatalf("seed %d: server %d out of range", seed, e.Server)
			}
			if e.Until != 0 && e.Until <= e.From {
				t.Fatalf("seed %d: empty window %v", seed, e)
			}
		}
	}
	p.LockFaults = true
	p.WriterCrash = true
	seen := map[Kind]bool{}
	for seed := uint64(0); seed < 256; seed++ {
		for _, e := range Generate(seed, p).Events {
			seen[e.Kind] = true
			if e.Owner < 0 || e.Owner >= p.Ranks {
				t.Fatalf("seed %d: owner %d out of range", seed, e.Owner)
			}
		}
	}
	for _, k := range []Kind{ServerCrash, UnlockDrop, UnlockDup, LockDelay, WriterCrash} {
		if !seen[k] {
			t.Errorf("256 seeds never generated %v", k)
		}
	}
}

// TestBuiltinsNamed pins that every built-in script carries a unique name
// and a positive lease (fleet scripts must never stall).
func TestBuiltinsNamed(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Builtins() {
		if s.Name == "" {
			t.Fatalf("unnamed builtin %v", s)
		}
		if names[s.Name] {
			t.Fatalf("duplicate builtin name %q", s.Name)
		}
		names[s.Name] = true
		if s.Lease <= 0 {
			t.Errorf("builtin %q has no lease", s.Name)
		}
		if len(s.Events) == 0 {
			t.Errorf("builtin %q has no events", s.Name)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: ServerCrash, Server: 0}, "server-crash(s0@0-)"},
		{Event{Kind: ServerCrash, Server: 1, From: 5, Until: 9}, "server-crash(s1@5-9)"},
		{Event{Kind: UnlockDrop, Owner: 1, Op: 0}, "unlock-drop(r1#0)"},
		{Event{Kind: UnlockDup, Owner: 2, Op: 1}, "unlock-dup(r2#1)"},
		{Event{Kind: LockDelay, Owner: 0, Op: 0, Delay: 3}, "lock-delay(r0#0+3)"},
		{Event{Kind: WriterCrash, Owner: 1, Segments: 2}, "writer-crash(r1@seg2)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}
