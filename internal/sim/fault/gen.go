package fault

import (
	"fmt"

	"atomio/internal/sim"
)

// Rand is a small xorshift64* generator, used instead of math/rand so the
// fault sweep's cell layout is pinned to this repository forever: fleet
// seeds stay reproducible even if the standard library's generator or its
// seeding behaviour changes, and nothing here can accidentally fall back
// to a time-seeded source.
type Rand struct{ state uint64 }

// NewRand returns a generator for the seed (seed 0 is remapped — xorshift
// has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value of the xorshift64* sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). It panics when n is not positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// DefaultLease is the lock-lease duration generated scripts use: long
// enough that healthy unlocks (microseconds after the grant) never race
// it, short enough that a revoked range frees well inside a cell's
// makespan.
const DefaultLease = 50 * sim.Millisecond

// GenParams bound what Generate may produce for one cell.
type GenParams struct {
	// Servers is the cell's I/O-server count (crash events pick from it).
	Servers int
	// Ranks is the cell's process count.
	Ranks int
	// LockFaults permits lock-message faults (only meaningful when the
	// cell's strategy actually locks).
	LockFaults bool
	// WriterCrash permits mid-write rank crashes (only for strategies
	// with a crash hook: locking and two-phase).
	WriterCrash bool
	// Horizon bounds crash-window virtual times; it should be on the
	// order of the cell's expected makespan.
	Horizon sim.VTime
}

// Generate derives a fault script from the seed: one to three events drawn
// from the permitted classes. The same seed and params always produce the
// same script.
func Generate(seed uint64, p GenParams) Script {
	r := NewRand(seed)
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 100 * sim.Millisecond
	}
	kinds := []Kind{ServerCrash}
	if p.LockFaults {
		kinds = append(kinds, UnlockDrop, UnlockDup, LockDelay)
	}
	if p.WriterCrash {
		kinds = append(kinds, WriterCrash)
	}
	s := Script{
		Name:  fmt.Sprintf("gen-%d", seed),
		Lease: DefaultLease,
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		switch kinds[r.Intn(len(kinds))] {
		case ServerCrash:
			from := sim.VTime(r.Intn(int(horizon)))
			until := sim.VTime(0) // down for good
			if r.Intn(2) == 1 {
				until = from + 1 + sim.VTime(r.Intn(int(horizon)))
			}
			s.Events = append(s.Events, Event{
				Kind:   ServerCrash,
				Server: r.Intn(p.Servers),
				From:   from,
				Until:  until,
			})
		case UnlockDrop:
			s.Events = append(s.Events, Event{
				Kind: UnlockDrop, Owner: r.Intn(p.Ranks), Op: r.Intn(2),
			})
		case UnlockDup:
			s.Events = append(s.Events, Event{
				Kind: UnlockDup, Owner: r.Intn(p.Ranks), Op: r.Intn(2),
			})
		case LockDelay:
			s.Events = append(s.Events, Event{
				Kind:  LockDelay,
				Owner: r.Intn(p.Ranks),
				Op:    r.Intn(2),
				Delay: sim.VTime(1 + r.Intn(int(horizon/4))),
			})
		case WriterCrash:
			s.Events = append(s.Events, Event{
				Kind: WriterCrash, Owner: r.Intn(p.Ranks), Segments: r.Intn(3),
			})
		}
	}
	return s
}

// ServerOutage is a named script: server 0 down from virtual time zero,
// never restarting — the classic torn-file negative control on a striped
// file system (every stripe routed to server 0 reads back as zeros).
func ServerOutage() Script {
	return Script{
		Name:   "server-outage",
		Lease:  DefaultLease,
		Events: []Event{{Kind: ServerCrash, Server: 0}},
	}
}

// ServerBlip is a named script: server 1 down for a 10 ms window early in
// the run, then back — the crash/restart case.
func ServerBlip() Script {
	return Script{
		Name:  "server-blip",
		Lease: DefaultLease,
		Events: []Event{{
			Kind:   ServerCrash,
			Server: 1,
			From:   1 * sim.Millisecond,
			Until:  11 * sim.Millisecond,
		}},
	}
}

// UnlockDropLease is a named script: rank 1's first unlock message is
// lost; the lease revokes the grant so waiters eventually proceed.
func UnlockDropLease() Script {
	return Script{
		Name:   "unlock-drop",
		Lease:  DefaultLease,
		Events: []Event{{Kind: UnlockDrop, Owner: 1, Op: 0}},
	}
}

// UnlockDupScript is a named script: rank 0's first unlock is delivered
// twice; the duplicate must be a no-op.
func UnlockDupScript() Script {
	return Script{
		Name:   "unlock-dup",
		Lease:  DefaultLease,
		Events: []Event{{Kind: UnlockDup, Owner: 0, Op: 0}},
	}
}

// LockReorder is a named script: rank 0's first lock request is delayed
// 5 ms, so requests issued later by other ranks reach the manager first.
func LockReorder() Script {
	return Script{
		Name:   "lock-reorder",
		Lease:  DefaultLease,
		Events: []Event{{Kind: LockDelay, Owner: 0, Op: 0, Delay: 5 * sim.Millisecond}},
	}
}

// WriterCrashEarly is a named script: rank 1 dies after one completed
// write segment of its collective write.
func WriterCrashEarly() Script {
	return Script{
		Name:   "writer-crash",
		Lease:  DefaultLease,
		Events: []Event{{Kind: WriterCrash, Owner: 1, Segments: 1}},
	}
}

// Builtins returns the named scripts in registration order.
func Builtins() []Script {
	return []Script{
		ServerOutage(), ServerBlip(), UnlockDropLease(),
		UnlockDupScript(), LockReorder(), WriterCrashEarly(),
	}
}
