package sim

import (
	"fmt"
	"sync"
)

// Gate makes a multi-goroutine simulation deterministic. The conservative
// engine piggybacks virtual-time causality on real synchronization, but
// shared facilities (a Resource's FCFS queue, a lock table, a mailbox) are
// otherwise touched in *real* arrival order, which varies run to run: two
// actors whose requests overlap in virtual time race for the queue, and the
// loser's virtual completion — and therefore the reported bandwidth —
// depends on the scheduler. A Gate closes that race by admitting the
// globally earliest pending action first.
//
// Every actor announces each externally visible action (a send, a resource
// acquire, a lock request) with Await(id, t), where t is the actor's
// virtual time for the action. Await blocks until (t, id) is the
// lexicographic minimum over all live actors' published times — virtual
// time first, actor id as the deterministic tie-break — then returns with
// the actor holding the turn. The turn is exclusive: no other actor is
// admitted until the holder's next Gate call (its next Await, or Block, or
// Done) releases it, so the action completes atomically with respect to
// every other gated action.
//
// An actor about to block on another actor (an empty mailbox, a held lock)
// must call Block first so the admission rule skips it; whoever wakes it
// calls Unblock with a lower bound on the sleeper's next action time,
// *before* releasing the shared structure they met on — that ordering is
// what keeps the admission decisions race-free. Finished (or dead) actors
// call Done.
//
// A nil *Gate disables every integration point, preserving the free-running
// behaviour for code that does not need determinism.
type Gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pub     []VTime // last announced action time per actor
	blocked []bool  // actor is waiting on another actor; skip it
	done    []bool  // actor finished; skip it forever
	holder  int     // actor currently holding the turn, or -1
}

// NewGate returns a gate for actors 0..actors-1.
func NewGate(actors int) *Gate {
	if actors < 1 {
		panic(fmt.Sprintf("sim: gate needs at least one actor, got %d", actors))
	}
	g := &Gate{
		pub:     make([]VTime, actors),
		blocked: make([]bool, actors),
		done:    make([]bool, actors),
		holder:  -1,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Actors returns the number of actors the gate coordinates.
func (g *Gate) Actors() int { return len(g.pub) }

// Await announces that actor id wants to act at virtual time t and blocks
// until that action is the earliest one pending, then takes the turn.
// Calling Await while holding the turn releases it first, so a sequence of
// gated actions interleaves correctly with other actors.
func (g *Gate) Await(id int, t VTime) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	if t > g.pub[id] {
		g.pub[id] = t
	}
	g.cond.Broadcast()
	for g.holder != -1 || !g.earliest(id, t) {
		g.cond.Wait()
	}
	g.holder = id
}

// earliest reports whether (t, id) is the lexicographic minimum over all
// live actors' published times. Callers hold g.mu.
func (g *Gate) earliest(id int, t VTime) bool {
	for j := range g.pub {
		if j == id || g.done[j] || g.blocked[j] {
			continue
		}
		if g.pub[j] < t || (g.pub[j] == t && j < id) {
			return false
		}
	}
	return true
}

// Block marks the actor as waiting on another actor, excluding it from
// admission decisions (and releasing the turn if held). It must be called
// under the lock of the shared structure the actor is about to sleep on, so
// that the matching Unblock cannot be missed.
func (g *Gate) Block(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	g.blocked[id] = true
	g.cond.Broadcast()
}

// Unblock marks a blocked actor live again, publishing t as a lower bound
// on its next action time. It is called by the actor doing the waking,
// under the same shared-structure lock as the corresponding Block, before
// the sleeper can run again.
func (g *Gate) Unblock(id int, t VTime) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocked[id] = false
	if t > g.pub[id] {
		g.pub[id] = t
	}
	g.cond.Broadcast()
}

// Done retires an actor: it no longer constrains admissions. Safe to call
// for an actor that is blocked or holds the turn (both are released).
func (g *Gate) Done(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	g.done[id] = true
	g.blocked[id] = false
	g.cond.Broadcast()
}
