package sim

import (
	"fmt"
	"sync"
)

// Gate makes a multi-goroutine simulation deterministic. The conservative
// engine piggybacks virtual-time causality on real synchronization, but
// shared facilities (a Resource's FCFS queue, a lock table, a mailbox) are
// otherwise touched in *real* arrival order, which varies run to run: two
// actors whose requests overlap in virtual time race for the queue, and the
// loser's virtual completion — and therefore the reported bandwidth —
// depends on the scheduler. A Gate closes that race by admitting the
// globally earliest pending action first.
//
// Every actor announces each externally visible action (a send, a resource
// acquire, a lock request) with Await(id, t), where t is the actor's
// virtual time for the action. Await blocks until (t, id) is the
// lexicographic minimum over all live actors' published times — virtual
// time first, actor id as the deterministic tie-break — then returns with
// the actor holding the turn. The turn is exclusive: no other actor is
// admitted until the holder's next Gate call (its next Await, or Block, or
// Done) releases it, so the action completes atomically with respect to
// every other gated action.
//
// An actor about to block on another actor (an empty mailbox, a held lock)
// must call Block first so the admission rule skips it; whoever wakes it
// calls Unblock (or Wake, which also resumes a Park) with a lower bound on
// the sleeper's next action time, *before* releasing the shared structure
// they met on — that ordering is what keeps the admission decisions
// race-free. Finished (or dead) actors call Done.
//
// Admission is decided on a lazy-deletion min-heap of (time, id) entries —
// one live entry per actor, superseded entries invalidated by a per-actor
// stamp — so each admission check costs O(log n) amortized instead of the
// O(n) scan over all actors it used to be; at the P=16k scale the event-loop
// engine targets, that keeps goroutine-oracle cross-checks affordable.
//
// A nil *Gate disables every integration point, preserving the free-running
// behaviour for code that does not need determinism. A Gate is the Coord of
// the Goroutines engine; Park/Wake sleep and resume through per-actor
// tokens (see Coord).
type Gate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pub     []VTime // last announced action time per actor
	blocked []bool  // actor is waiting on another actor; skip it
	done    []bool  // actor finished; skip it forever
	holder  int     // actor currently holding the turn, or -1

	// heap holds one valid candidacy entry per live (not blocked, not done)
	// actor, keyed (pub[id], id); stamp[id] invalidates superseded entries
	// lazily.
	heap  gateHeap
	stamp []int64

	// park holds one wake token per actor. Buffered so a Wake issued
	// between the sleeper's Block and its Park (the shared-structure lock
	// is released in between for channel-style waiters) is never lost.
	park []chan struct{}
}

// gateEntry is one heap candidacy: actor id published time t; valid while
// stamp matches the actor's current stamp.
type gateEntry struct {
	t     VTime
	id    int
	stamp int64
}

// gateHeap is a min-heap of gateEntry keyed lexicographically (t, id).
type gateHeap []gateEntry

func (h gateHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].id < h[j].id)
}

func (h *gateHeap) push(e gateEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *gateHeap) pop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		(*h)[i], (*h)[min] = (*h)[min], (*h)[i]
		i = min
	}
}

// NewGate returns a gate for actors 0..actors-1.
func NewGate(actors int) *Gate {
	if actors < 1 {
		panic(fmt.Sprintf("sim: gate needs at least one actor, got %d", actors))
	}
	g := &Gate{
		pub:     make([]VTime, actors),
		blocked: make([]bool, actors),
		done:    make([]bool, actors),
		holder:  -1,
		stamp:   make([]int64, actors),
		park:    make([]chan struct{}, actors),
	}
	g.cond = sync.NewCond(&g.mu)
	g.heap = make(gateHeap, 0, actors)
	for id := 0; id < actors; id++ {
		g.park[id] = make(chan struct{}, 1)
		g.heap.push(gateEntry{t: 0, id: id})
	}
	return g
}

// Actors returns the number of actors the gate coordinates.
func (g *Gate) Actors() int { return len(g.pub) }

// republish invalidates id's current heap entry and, when live, pushes a
// fresh one at its published time. Callers hold g.mu.
func (g *Gate) republish(id int) {
	g.stamp[id]++
	if !g.done[id] && !g.blocked[id] {
		g.heap.push(gateEntry{t: g.pub[id], id: id, stamp: g.stamp[id]})
	}
}

// Await announces that actor id wants to act at virtual time t and blocks
// until that action is the earliest one pending, then takes the turn.
// Calling Await while holding the turn releases it first, so a sequence of
// gated actions interleaves correctly with other actors.
func (g *Gate) Await(id int, t VTime) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	if t > g.pub[id] {
		g.pub[id] = t
	}
	g.republish(id)
	g.cond.Broadcast()
	for g.holder != -1 || !g.earliest(id, t) {
		g.cond.Wait()
	}
	g.holder = id
}

// earliest reports whether (t, id) is the lexicographic minimum over all
// live actors' published times, by inspecting the heap top: after discarding
// stale entries, the top is the minimum over every live actor (the caller
// included, whose entry carries pub[id] >= t), so (t, id) is the minimum
// exactly when the top is the caller's own entry or keys after (t, id).
// Callers hold g.mu.
func (g *Gate) earliest(id int, t VTime) bool {
	for len(g.heap) > 0 {
		e := g.heap[0]
		if e.stamp != g.stamp[e.id] {
			g.heap.pop()
			continue
		}
		if e.id == id {
			return true
		}
		return e.t > t || (e.t == t && e.id > id)
	}
	return true
}

// Block marks the actor as waiting on another actor, excluding it from
// admission decisions (and releasing the turn if held). It must be called
// under the lock of the shared structure the actor is about to sleep on, so
// that the matching Unblock cannot be missed.
func (g *Gate) Block(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	g.blocked[id] = true
	g.republish(id)
	g.cond.Broadcast()
}

// Unblock marks a blocked actor live again, publishing t as a lower bound
// on its next action time. It is called by the actor doing the waking,
// under the same shared-structure lock as the corresponding Block, before
// the sleeper can run again.
func (g *Gate) Unblock(id int, t VTime) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocked[id] = false
	if t > g.pub[id] {
		g.pub[id] = t
	}
	g.republish(id)
	g.cond.Broadcast()
}

// Park implements Coord: sleep until the matching Wake. A non-nil l is
// unlocked while parked and relocked before returning, so callers loop on
// their predicate exactly as with a condition variable.
func (g *Gate) Park(id int, l sync.Locker) {
	if l != nil {
		l.Unlock()
	}
	<-g.park[id]
	if l != nil {
		l.Lock()
	}
}

// Wake implements Coord: Unblock plus delivery of the wake token the
// matching Park is (or will be) sleeping on. Wake and Park pair one-to-one
// per actor; the buffered token absorbs a Wake that lands before the
// sleeper reaches its Park.
func (g *Gate) Wake(id int, t VTime) {
	g.Unblock(id, t)
	g.park[id] <- struct{}{}
}

// Done retires an actor: it no longer constrains admissions. Safe to call
// for an actor that is blocked or holds the turn (both are released).
func (g *Gate) Done(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder == id {
		g.holder = -1
	}
	g.done[id] = true
	g.blocked[id] = false
	g.republish(id)
	g.cond.Broadcast()
}

var _ Coord = (*Gate)(nil)
