package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// event is one admitted action, recorded while its actor holds the turn.
type event struct {
	ID int
	T  VTime
}

// TestGateAdmitsInVirtualOrder starts actors whose action times interleave
// and checks the global admission order is the merge of all timelines
// sorted by (time, id) — regardless of goroutine scheduling.
func TestGateAdmitsInVirtualOrder(t *testing.T) {
	const actors = 4
	plans := [][]VTime{
		{5, 40, 41},
		{10, 20, 30},
		{10, 11, 50},
		{1, 2, 60},
	}
	var want []event
	for id, plan := range plans {
		for _, tt := range plan {
			want = append(want, event{id, tt})
		}
	}
	// Lexicographic (time, id) order is what the gate must produce.
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j].T < want[i].T || (want[j].T == want[i].T && want[j].ID < want[i].ID) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}

	for trial := 0; trial < 20; trial++ {
		g := NewGate(actors)
		var mu sync.Mutex
		var got []event
		var wg sync.WaitGroup
		for id := range plans {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer g.Done(id)
				for _, tt := range plans[id] {
					g.Await(id, tt)
					// Recorded while holding the turn, so append order is
					// admission order.
					mu.Lock()
					got = append(got, event{id, tt})
					mu.Unlock()
				}
			}(id)
		}
		wg.Wait()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: admission order\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestGateBlockedActorSkipped checks that a blocked actor does not hold up
// admissions, and that Unblock re-admits it at the published bound.
func TestGateBlockedActorSkipped(t *testing.T) {
	g := NewGate(2)
	g.Block(0) // actor 0 waits on a peer

	done := make(chan struct{})
	go func() {
		g.Await(1, 100) // must be admitted despite actor 0's pub of 0
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("actor 1 not admitted while actor 0 is blocked")
	}

	// Unblocking actor 0 at 150 lets it in once actor 1 advances past it.
	g.Unblock(0, 150)
	admitted := make(chan struct{})
	go func() {
		g.Await(0, 150)
		close(admitted)
		g.Done(0)
	}()
	select {
	case <-admitted:
		t.Fatal("actor 0 admitted while actor 1 holds the turn at an earlier time")
	case <-time.After(50 * time.Millisecond):
	}
	// Actor 1 moves on to 200; the pending (150, actor 0) is now the
	// minimum, so actor 0 is admitted first and actor 1 follows.
	moved := make(chan struct{})
	go func() {
		g.Await(1, 200)
		close(moved)
		g.Done(1)
	}()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("actor 0 not admitted after actor 1 advanced")
	}
	select {
	case <-moved:
	case <-time.After(5 * time.Second):
		t.Fatal("actor 1 not re-admitted after actor 0 finished")
	}
}

// TestGateDoneReleases checks a finished actor stops constraining peers
// even if it held the turn or was blocked.
func TestGateDoneReleases(t *testing.T) {
	g := NewGate(2)
	// Actor 0 takes the turn (a time-0 tie breaks to the lower id, and
	// idle actor 1 still publishes 0) and then dies holding it.
	g.Await(0, 0)
	g.Done(0)

	done := make(chan struct{})
	go func() {
		g.Await(1, 50)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("actor 1 not admitted after actor 0 finished")
	}
	g.Done(1)
}

// TestGateTieBreaksByID checks equal-time actions admit lower ids first.
func TestGateTieBreaksByID(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		g := NewGate(3)
		var mu sync.Mutex
		var order []int
		var wg sync.WaitGroup
		for id := 0; id < 3; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer g.Done(id)
				g.Await(id, 7)
				mu.Lock()
				order = append(order, id)
				mu.Unlock()
			}(id)
		}
		wg.Wait()
		if !reflect.DeepEqual(order, []int{0, 1, 2}) {
			t.Fatalf("trial %d: tie admitted in order %v", trial, order)
		}
	}
}
