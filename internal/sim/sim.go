// Package sim provides the conservative virtual-time engine underneath the
// parallel file-system and message-passing simulators.
//
// Every simulated actor (an MPI rank, an I/O server, a lock manager) carries
// a Clock holding its local virtual time. Interactions advance clocks with
// causally consistent rules:
//
//   - computing locally for duration d:   t' = t + d
//   - receiving a message sent at time s: t' = max(t, s + cost) (the receive
//     cannot complete before the send plus transfer cost)
//   - using a shared FCFS resource:       start = max(t, resource free time)
//
// Because the simulation executes on real goroutines whose *real* blocking
// relationships (channel receives, lock waits) mirror the virtual-time
// dependencies, timestamps computed this way never violate causality: by the
// time a goroutine needs a remote timestamp, the event producing it has
// already happened for real. This is the classic "conservative simulation
// piggybacked on real synchronization" construction and it is what lets the
// whole repository produce stable bandwidth numbers on any host, including
// single-CPU machines, without measuring wall-clock time.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// VTime is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as VTime.
type VTime int64

// Common virtual durations.
const (
	Nanosecond  VTime = 1
	Microsecond VTime = 1000 * Nanosecond
	Millisecond VTime = 1000 * Microsecond
	Second      VTime = 1000 * Millisecond
)

// String formats the virtual time using time.Duration notation.
func (t VTime) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time as a float64 number of seconds.
func (t VTime) Seconds() float64 { return float64(t) / float64(Second) }

// MaxVTime returns the later of a and b.
func MaxVTime(a, b VTime) VTime {
	if a > b {
		return a
	}
	return b
}

// Clock is the local virtual clock of one simulated actor. A Clock is not
// safe for concurrent use; each actor owns exactly one and other actors see
// its value only through timestamps carried on messages.
type Clock struct {
	now VTime
}

// NewClock returns a clock starting at virtual time start.
func NewClock(start VTime) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() VTime { return c.now }

// Advance moves the clock forward by d (which must not be negative).
func (c *Clock) Advance(d VTime) VTime {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to t if t is later than the current time.
// It returns the (possibly unchanged) current time. Moving to an earlier
// time is a no-op: virtual clocks are monotonic.
func (c *Clock) AdvanceTo(t VTime) VTime {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// CostModel converts an operation size into a virtual duration.
type CostModel interface {
	// Cost returns the virtual time taken to move or process n bytes.
	Cost(n int64) VTime
}

// LinearCost is the standard latency+bandwidth cost model:
// Cost(n) = Latency + n/Bandwidth.
type LinearCost struct {
	// Latency is the fixed per-operation overhead.
	Latency VTime
	// BytesPerSec is the sustained throughput; zero means infinitely fast
	// transfer (only latency is charged).
	BytesPerSec int64
}

// Cost implements CostModel.
func (m LinearCost) Cost(n int64) VTime {
	c := m.Latency
	if m.BytesPerSec > 0 && n > 0 {
		c += VTime(float64(n) / float64(m.BytesPerSec) * float64(Second))
	}
	return c
}

// Free is a CostModel charging nothing, useful in tests.
type Free struct{}

// Cost implements CostModel.
func (Free) Cost(int64) VTime { return 0 }

// Resource is a shared, serially used facility (a disk head, an I/O server's
// service loop, a lock manager's request queue) that processes requests
// first-come-first-served in virtual time. It is safe for concurrent use by
// multiple actor goroutines.
type Resource struct {
	mu     sync.Mutex
	name   string
	freeAt VTime
	busy   VTime // total busy time, for utilization reporting
	ops    int64
}

// NewResource returns a named idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire books the resource for a request arriving at virtual time `at`
// needing `dur` of service. It returns the virtual start and completion
// times. The caller's clock should be advanced to the returned end time.
//
// Ties between concurrent callers are resolved by real arrival order at the
// mutex; for callers with identical virtual arrival times the aggregate
// completion time is order-independent.
func (r *Resource) Acquire(at, dur VTime) (start, end VTime) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative service time %v on %s", dur, r.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = MaxVTime(at, r.freeAt)
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.ops++
	return start, end
}

// FreeAt returns the virtual time at which the resource next becomes idle.
func (r *Resource) FreeAt() VTime {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freeAt
}

// Stats returns the number of operations served and total busy time.
func (r *Resource) Stats() (ops int64, busy VTime) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops, r.busy
}

// Reset returns the resource to the idle state at virtual time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freeAt, r.busy, r.ops = 0, 0, 0
}

// Pool is a set of identical parallel resources with a shared name prefix,
// e.g. the I/O servers of a parallel file system. Requests are directed to a
// specific member (by striping) or to the least-loaded member.
type Pool struct {
	members []*Resource
}

// NewPool creates a pool of n resources named prefix[0..n).
func NewPool(prefix string, n int) *Pool {
	if n <= 0 {
		panic("sim: pool size must be positive")
	}
	p := &Pool{members: make([]*Resource, n)}
	for i := range p.members {
		p.members[i] = NewResource(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return p
}

// Size returns the number of members.
func (p *Pool) Size() int { return len(p.members) }

// Member returns member i.
func (p *Pool) Member(i int) *Resource { return p.members[i] }

// Reset resets every member.
func (p *Pool) Reset() {
	for _, m := range p.members {
		m.Reset()
	}
}

// MaxFreeAt returns the latest FreeAt over all members — the virtual time at
// which the whole pool has drained.
func (p *Pool) MaxFreeAt() VTime {
	var t VTime
	for _, m := range p.members {
		if f := m.FreeAt(); f > t {
			t = f
		}
	}
	return t
}
