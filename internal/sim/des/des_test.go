package des_test

import (
	"reflect"
	"strings"
	"testing"

	"atomio/internal/sim"
	"atomio/internal/sim/des"
)

// event is one admitted action, recorded while its actor runs.
type event struct {
	ID int
	T  sim.VTime
}

// TestSchedulerAdmitsInVirtualOrder mirrors the gate's admission test: the
// global admission order must be the merge of all actor timelines sorted by
// (time, id). Under the event loop this is a pure heap property, so one run
// is already deterministic; a few trials guard the seeding path anyway.
func TestSchedulerAdmitsInVirtualOrder(t *testing.T) {
	plans := [][]sim.VTime{
		{5, 40, 41},
		{10, 20, 30},
		{10, 11, 50},
		{1, 2, 60},
	}
	var want []event
	for id, plan := range plans {
		for _, tt := range plan {
			want = append(want, event{id, tt})
		}
	}
	for i := range want {
		for j := i + 1; j < len(want); j++ {
			if want[j].T < want[i].T || (want[j].T == want[i].T && want[j].ID < want[i].ID) {
				want[i], want[j] = want[j], want[i]
			}
		}
	}

	for trial := 0; trial < 5; trial++ {
		eng := des.New()
		coord := eng.NewCoord(len(plans))
		var got []event
		err := eng.Run(coord, len(plans), func(id int) {
			defer coord.Done(id)
			for _, tt := range plans[id] {
				coord.Await(id, tt)
				// Only one actor ever runs, so append order is admission
				// order and needs no mutex.
				got = append(got, event{id, tt})
			}
		})
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: admission order\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestSchedulerTieBreaksByID checks equal-time actions admit lower ids first.
func TestSchedulerTieBreaksByID(t *testing.T) {
	eng := des.New()
	coord := eng.NewCoord(3)
	var order []int
	err := eng.Run(coord, 3, func(id int) {
		defer coord.Done(id)
		coord.Await(id, 7)
		order = append(order, id)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("tie admitted in order %v", order)
	}
}

// TestSchedulerParkWake checks the park/wake handshake: a parked actor does
// not constrain admissions, and Wake's time bound orders its resumption.
func TestSchedulerParkWake(t *testing.T) {
	eng := des.New()
	coord := eng.NewCoord(3)
	var got []event
	err := eng.Run(coord, 3, func(id int) {
		defer coord.Done(id)
		switch id {
		case 0:
			coord.Await(0, 10)
			got = append(got, event{0, 10})
			// Wake the parked actor 2 with a bound far in the future; it
			// must still admit after actor 1's earlier action.
			coord.Wake(2, 100)
			coord.Await(0, 20)
			got = append(got, event{0, 20})
		case 1:
			coord.Await(1, 50)
			got = append(got, event{1, 50})
		case 2:
			// Park immediately; only actor 0's Wake can resume us.
			coord.Block(2)
			coord.Park(2, nil)
			coord.Await(2, 100)
			got = append(got, event{2, 100})
		}
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []event{{0, 10}, {0, 20}, {1, 50}, {2, 100}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("admission order\n got %v\nwant %v", got, want)
	}
}

// TestSchedulerStall checks that a parked actor nobody wakes is force-stopped
// with sim.StoppedError and reported as an engine-level stall.
func TestSchedulerStall(t *testing.T) {
	eng := des.New()
	coord := eng.NewCoord(2)
	var unwound bool
	err := eng.Run(coord, 2, func(id int) {
		defer coord.Done(id)
		if id == 0 {
			defer func() {
				if p := recover(); p != nil {
					var se sim.StoppedError
					if stopped, ok := p.(sim.StoppedError); !ok || stopped.Actor != 0 {
						t.Errorf("actor 0 unwound with %v, want %v", p, se)
					}
					unwound = true
				}
			}()
			coord.Block(0)
			coord.Park(0, nil) // never woken
		}
	})
	if err == nil || !strings.Contains(err.Error(), "stalled: [0]") {
		t.Fatalf("run error = %v, want a stall report naming actor 0", err)
	}
	if !unwound {
		t.Fatal("stalled actor was not unwound with sim.StoppedError")
	}
}

// TestSchedulerRejectsForeignCoord checks Run validates its coordinator.
func TestSchedulerRejectsForeignCoord(t *testing.T) {
	eng := des.New()
	if err := eng.Run(sim.NewGate(2), 2, func(int) {}); err == nil {
		t.Fatal("run accepted a gate coordinator")
	}
	if err := eng.Run(eng.NewCoord(3), 2, func(int) {}); err == nil {
		t.Fatal("run accepted a mis-sized coordinator")
	}
}

// TestSchedulerNotReusable checks a second Run on the same coordinator is an
// error rather than a silent rerun of retired actors.
func TestSchedulerNotReusable(t *testing.T) {
	eng := des.New()
	coord := eng.NewCoord(1)
	body := func(id int) { defer coord.Done(id); coord.Await(id, 1) }
	if err := eng.Run(coord, 1, body); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := eng.Run(coord, 1, body); err == nil {
		t.Fatal("second run on a used scheduler did not error")
	}
}

// TestEngineName pins the registry name the facade and -engine flag use.
func TestEngineName(t *testing.T) {
	if got := des.New().Name(); got != "eventloop" {
		t.Fatalf("Name() = %q, want %q", got, "eventloop")
	}
}
