// Package des is the event-loop simulation engine: a single-threaded
// discrete-event scheduler that runs every simulated rank as a resumable
// coroutine and replaces the goroutine engine's park/wake per simulated
// event with a heap pop and a coroutine switch.
//
// The scheduler maintains one event queue keyed lexicographically by
// (virtual time, actor id) — the exact admission key of sim.Gate — with a
// per-actor sequence stamp for lazy invalidation. Await pushes the actor's
// announcement and yields; the main loop pops the globally earliest valid
// event and resumes its actor, which then runs exclusively until its next
// Await, Park or return. Because only one actor ever runs at a time, the
// "turn" of the gate protocol is implicit, Block..Park windows are atomic,
// and the admission order — and therefore every virtual timestamp the
// simulation produces — is byte-identical to the goroutine engine's (a
// property pinned by cross-engine tests in internal/harness).
//
// Teardown mirrors the abort semantics of the rank runtimes: when the queue
// drains while actors are still parked (a peer they were waiting on failed),
// the scheduler force-stops them one by one with sim.StoppedError panics,
// re-draining between stops so wake-ups triggered by an unwinding actor
// (for example a world abort) still run, and reports the stall as an
// engine-level error.
package des

import (
	"fmt"
	"iter"
	"sync"

	"atomio/internal/sim"
)

// Engine is the event-loop engine. The zero value is ready to use.
type Engine struct{}

// New returns the event-loop engine.
func New() Engine { return Engine{} }

// Name implements sim.Engine.
func (Engine) Name() string { return "eventloop" }

// NewCoord implements sim.Engine: returns the single-threaded scheduler.
func (Engine) NewCoord(actors int) sim.Coord { return newScheduler(actors) }

// Run implements sim.Engine. c must be a coordinator from this engine's
// NewCoord — possibly wrapped by a delegating tracer exposing Unwrap —
// sized for exactly the given actor count.
func (Engine) Run(c sim.Coord, actors int, body func(id int)) error {
	for {
		u, ok := c.(interface{ Unwrap() sim.Coord })
		if !ok {
			break
		}
		c = u.Unwrap()
	}
	s, ok := c.(*scheduler)
	if !ok {
		return fmt.Errorf("des: event-loop engine needs its own coordinator, got %T", c)
	}
	if s.n != actors {
		return fmt.Errorf("des: coordinator sized for %d actors, run has %d", s.n, actors)
	}
	return s.run(body)
}

var _ sim.Engine = Engine{}

// actorState tracks where an actor is in its lifecycle.
type actorState int8

const (
	// ready: the actor has a pending announcement in the event queue.
	ready actorState = iota
	// running: the actor is the one currently executing.
	running
	// parked: the actor sleeps in Park until a peer Wakes it. No queue
	// entry — parked actors never constrain admissions.
	parked
	// finished: the actor's body returned or was unwound; skip it forever.
	finished
)

// event is one queued announcement: actor id wants to run at virtual time t.
// seq invalidates superseded announcements lazily.
type event struct {
	t   sim.VTime
	id  int
	seq int64
}

// eventHeap is a min-heap of events keyed lexicographically (t, id).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].id < h[j].id)
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return top
		}
		(*h)[i], (*h)[min] = (*h)[min], (*h)[i]
		i = min
	}
}

// actor is one resumable rank body, driven through iter.Pull: resume runs
// the body to its next yield point (an Await or Park) on the scheduler's
// goroutine-free hot path; stop forces yield to return false, which the
// coordination methods convert into a sim.StoppedError panic so the body's
// deferred cleanups unwind.
type actor struct {
	yield  func(struct{}) bool
	resume func() (struct{}, bool)
	stop   func()
}

// scheduler implements sim.Coord for the event-loop engine. All state is
// touched only from the scheduler's own goroutine (the main loop and the
// coroutines it resumes run strictly one at a time), so no field needs a
// mutex. Park's Locker gymnastics exist purely for protocol compatibility
// with the goroutine engine's real blocking.
type scheduler struct {
	n     int
	pub   []sim.VTime // last announced action time per actor
	state []actorState
	seq   []int64 // current announcement stamp per actor
	queue eventHeap
	acts  []actor
	ran   bool
}

func newScheduler(actors int) *scheduler {
	if actors < 1 {
		panic(fmt.Sprintf("des: scheduler needs at least one actor, got %d", actors))
	}
	return &scheduler{
		n:     actors,
		pub:   make([]sim.VTime, actors),
		state: make([]actorState, actors),
		seq:   make([]int64, actors),
		queue: make(eventHeap, 0, actors),
		acts:  make([]actor, actors),
	}
}

// Actors implements sim.Coord.
func (s *scheduler) Actors() int { return s.n }

// announce queues a fresh event for id at its published time, superseding
// any previous announcement.
func (s *scheduler) announce(id int) {
	s.seq[id]++
	s.queue.push(event{t: s.pub[id], id: id, seq: s.seq[id]})
}

// Await implements sim.Coord: announce (pub[id], id) — pub raised to t —
// and yield to the scheduler, which resumes this actor when its
// announcement is the globally earliest. On return the actor runs
// exclusively, which is the event-loop form of holding the gate turn.
func (s *scheduler) Await(id int, t sim.VTime) {
	if t > s.pub[id] {
		s.pub[id] = t
	}
	s.state[id] = ready
	s.announce(id)
	if !s.acts[id].yield(struct{}{}) {
		panic(sim.StoppedError{Actor: id})
	}
	s.state[id] = running
}

// Block implements sim.Coord. Single-threadedness makes the Block..Park
// window atomic — no other actor can run, so no Wake can race past it —
// and a parked actor has no queue entry to exclude; nothing to record.
func (s *scheduler) Block(id int) {}

// Park implements sim.Coord: yield without an announcement, so the actor
// sleeps until a peer's Wake re-announces it. A non-nil l is unlocked
// while parked and relocked before returning — including before the
// StoppedError unwind, so the caller's deferred Unlock finds the lock held.
func (s *scheduler) Park(id int, l sync.Locker) {
	s.state[id] = parked
	if l != nil {
		l.Unlock()
	}
	ok := s.acts[id].yield(struct{}{})
	if l != nil {
		l.Lock()
	}
	if !ok {
		panic(sim.StoppedError{Actor: id})
	}
	s.state[id] = running
}

// Wake implements sim.Coord: publish t as a lower bound on the parked
// actor's next action time and re-announce it. A Wake aimed at an actor
// that is no longer parked (it was force-stopped and is unwinding) only
// raises the bound.
func (s *scheduler) Wake(id int, t sim.VTime) {
	if t > s.pub[id] {
		s.pub[id] = t
	}
	if s.state[id] == parked {
		s.state[id] = ready
		s.announce(id)
	}
}

// Done implements sim.Coord: retire the actor and invalidate any pending
// announcement.
func (s *scheduler) Done(id int) {
	s.state[id] = finished
	s.seq[id]++
}

// run executes the simulation: seed every actor at virtual time zero, then
// pop-and-resume until the queue drains. Leftover non-finished actors are
// stalled on peers that will never wake them; they are force-stopped (their
// bodies unwind via sim.StoppedError) and reported.
func (s *scheduler) run(body func(id int)) error {
	if s.ran {
		return fmt.Errorf("des: scheduler cannot be reused")
	}
	s.ran = true
	for id := 0; id < s.n; id++ {
		id := id
		a := &s.acts[id]
		a.resume, a.stop = iter.Pull(func(yield func(struct{}) bool) {
			a.yield = yield
			body(id)
		})
		// Seed: every actor announced at its initial virtual time. seq is
		// still 0, matching the zero-valued stamps.
		s.queue.push(event{t: s.pub[id], id: id, seq: s.seq[id]})
	}
	s.drain()
	var stalled []int
	for id := 0; id < s.n; id++ {
		if s.state[id] == finished {
			continue
		}
		stalled = append(stalled, id)
		s.acts[id].stop()
		s.state[id] = finished
		s.seq[id]++
		// Unwinding the stalled actor may have woken peers (a world abort
		// re-announces parked receivers); run them before stopping more.
		s.drain()
	}
	if stalled != nil {
		return fmt.Errorf("des: %d actor(s) still waiting on peers after all runnable actors finished (stalled: %v)", len(stalled), stalled)
	}
	return nil
}

// drain pops and resumes until no valid event remains.
func (s *scheduler) drain() {
	for len(s.queue) > 0 {
		e := s.queue.pop()
		if e.seq != s.seq[e.id] || s.state[e.id] != ready {
			continue
		}
		s.state[e.id] = running
		if _, more := s.acts[e.id].resume(); !more {
			// The body returned (normally or unwound past its recover);
			// the rank runtime's deferred Done usually got here first.
			s.state[e.id] = finished
			s.seq[e.id]++
		}
	}
}
