package interval

import "testing"

// canonicalList builds an already-canonical n-extent list.
func canonicalList(n int) List {
	l := make(List, n)
	for i := range l {
		l[i] = Extent{Off: int64(i) * 100, Len: 50}
	}
	return l
}

// BenchmarkNormalizeCanonical pins the fast path: normalizing an
// already-canonical list must not allocate (0 allocs/op) — it is on every
// set-algebra call.
func BenchmarkNormalizeCanonical(b *testing.B) {
	l := canonicalList(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := l.Normalize(); len(got) != len(l) {
			b.Fatal("normalize changed a canonical list")
		}
	}
}

// BenchmarkNormalizeMessy measures the slow path (sort + coalesce) for
// contrast.
func BenchmarkNormalizeMessy(b *testing.B) {
	l := make(List, 1024)
	for i := range l {
		l[i] = Extent{Off: int64((i * 7919) % 100000), Len: 60}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Normalize()
	}
}

// BenchmarkOverlapsDisjointSpans measures the span early-exit: two large
// lists whose spans do not intersect must reject in O(1) after the
// canonicality check.
func BenchmarkOverlapsDisjointSpans(b *testing.B) {
	a := canonicalList(4096)
	m := a.Shift(a.Span().End() + 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Overlaps(m) {
			b.Fatal("disjoint lists overlap")
		}
	}
}

func TestNormalizeCanonicalAllocFreeAndAliased(t *testing.T) {
	l := canonicalList(64)
	if allocs := testing.AllocsPerRun(100, func() { l.Normalize() }); allocs != 0 {
		t.Fatalf("Normalize of canonical list allocates %v times per run", allocs)
	}
	got := l.Normalize()
	if &got[0] != &l[0] {
		t.Fatal("canonical fast path should return the receiver unchanged")
	}
}

func TestOverlapsDisjointSpanEarlyExit(t *testing.T) {
	a := List{{Off: 0, Len: 10}, {Off: 20, Len: 10}}
	b := List{{Off: 100, Len: 10}}
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Fatal("disjoint spans reported overlapping")
	}
	// Touching spans are still disjoint byte sets.
	c := List{{Off: 30, Len: 5}}
	if a.Overlaps(c) {
		t.Fatal("touching lists reported overlapping")
	}
	// Interleaved spans with no common byte must still walk correctly.
	d := List{{Off: 10, Len: 10}, {Off: 30, Len: 5}}
	if a.Overlaps(d) {
		t.Fatal("interleaved disjoint lists reported overlapping")
	}
	e := List{{Off: 25, Len: 10}}
	if !a.Overlaps(e) {
		t.Fatal("overlapping lists reported disjoint")
	}
}
