// Package interval implements half-open byte-extent algebra on 64-bit file
// offsets. It is the foundation for MPI datatype flattening, file-view
// manipulation, overlap detection between processes' file views, and the
// view clipping performed by the process-rank ordering atomicity strategy.
//
// All operations treat an extent as the half-open range [Off, Off+Len).
// Extent lists in canonical form are sorted by offset, contain no empty
// extents, and contain no overlapping or adjacent (touching) extents.
package interval

import "fmt"

// Extent is a half-open byte range [Off, Off+Len) in a file.
type Extent struct {
	Off int64 // starting byte offset
	Len int64 // length in bytes; canonical extents have Len > 0
}

// End returns the first offset past the extent, Off+Len.
func (e Extent) End() int64 { return e.Off + e.Len }

// Empty reports whether the extent covers no bytes.
func (e Extent) Empty() bool { return e.Len <= 0 }

// Contains reports whether offset off lies inside the extent.
func (e Extent) Contains(off int64) bool { return off >= e.Off && off < e.End() }

// ContainsExtent reports whether o lies entirely inside e.
// The empty extent is contained in every extent.
func (e Extent) ContainsExtent(o Extent) bool {
	if o.Empty() {
		return true
	}
	return o.Off >= e.Off && o.End() <= e.End()
}

// Overlaps reports whether e and o share at least one byte.
func (e Extent) Overlaps(o Extent) bool {
	if e.Empty() || o.Empty() {
		return false
	}
	return e.Off < o.End() && o.Off < e.End()
}

// Touches reports whether e and o overlap or are directly adjacent, so that
// their union is a single extent.
func (e Extent) Touches(o Extent) bool {
	if e.Empty() || o.Empty() {
		return false
	}
	return e.Off <= o.End() && o.Off <= e.End()
}

// Intersect returns the overlap of e and o. If they do not overlap the
// result is the empty extent {0, 0}.
func (e Extent) Intersect(o Extent) Extent {
	lo := max64(e.Off, o.Off)
	hi := min64(e.End(), o.End())
	if hi <= lo {
		return Extent{}
	}
	return Extent{Off: lo, Len: hi - lo}
}

// Union returns the smallest single extent covering both e and o, and
// reports whether that extent is exact (the two touch). If either input is
// empty the other is returned exactly.
func (e Extent) Union(o Extent) (Extent, bool) {
	if e.Empty() {
		return o, true
	}
	if o.Empty() {
		return e, true
	}
	lo := min64(e.Off, o.Off)
	hi := max64(e.End(), o.End())
	return Extent{Off: lo, Len: hi - lo}, e.Touches(o)
}

// Subtract returns the up-to-two pieces of e not covered by o.
func (e Extent) Subtract(o Extent) []Extent {
	if e.Empty() {
		return nil
	}
	ov := e.Intersect(o)
	if ov.Empty() {
		return []Extent{e}
	}
	var out []Extent
	if ov.Off > e.Off {
		out = append(out, Extent{Off: e.Off, Len: ov.Off - e.Off})
	}
	if ov.End() < e.End() {
		out = append(out, Extent{Off: ov.End(), Len: e.End() - ov.End()})
	}
	return out
}

// Shift returns the extent displaced by d bytes.
func (e Extent) Shift(d int64) Extent { return Extent{Off: e.Off + d, Len: e.Len} }

// Clamp returns the part of e that lies inside bounds.
func (e Extent) Clamp(bounds Extent) Extent { return e.Intersect(bounds) }

// String formats the extent as [off,end).
func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Off, e.End()) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
