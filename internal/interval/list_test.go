package interval

import "testing"

func TestListTotalLen(t *testing.T) {
	l := List{{0, 5}, {10, 5}, {100, 1}}
	if got := l.TotalLen(); got != 11 {
		t.Fatalf("TotalLen = %d, want 11", got)
	}
	if got := (List{}).TotalLen(); got != 0 {
		t.Fatalf("empty TotalLen = %d", got)
	}
}

func TestListSpan(t *testing.T) {
	l := List{{10, 5}, {100, 20}, {50, 1}}
	if got := l.Span(); got != (Extent{10, 110}) {
		t.Fatalf("Span = %v, want [10,120)", got)
	}
	if got := (List{}).Span(); !got.Empty() {
		t.Fatalf("empty Span = %v", got)
	}
	if got := (List{{0, 0}, {7, 2}}).Span(); got != (Extent{7, 2}) {
		t.Fatalf("Span skipping empties = %v", got)
	}
}

func TestListIsCanonical(t *testing.T) {
	cases := []struct {
		l    List
		want bool
	}{
		{List{}, true},
		{List{{0, 5}, {10, 5}}, true},
		{List{{0, 5}, {5, 5}}, false},  // touching
		{List{{0, 5}, {3, 5}}, false},  // overlapping
		{List{{10, 5}, {0, 5}}, false}, // out of order
		{List{{0, 0}}, false},          // empty extent
	}
	for _, c := range cases {
		if got := c.l.IsCanonical(); got != c.want {
			t.Errorf("%v.IsCanonical() = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestListNormalize(t *testing.T) {
	l := List{{10, 5}, {0, 5}, {12, 10}, {30, 0}, {22, 3}}
	got := l.Normalize()
	want := List{{0, 5}, {10, 15}}
	if !got.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	if !got.IsCanonical() {
		t.Fatal("Normalize result not canonical")
	}
	// Receiver unmodified.
	if l[0] != (Extent{10, 5}) {
		t.Fatal("Normalize modified receiver")
	}
}

func TestListNormalizeFastPath(t *testing.T) {
	l := List{{0, 5}, {10, 5}}
	got := l.Normalize()
	if !got.Equal(l) {
		t.Fatalf("fast path changed list: %v", got)
	}
	// The canonical fast path returns the receiver itself — no copy, no
	// allocation; Normalize results are read-only by contract.
	if &got[0] != &l[0] {
		t.Fatal("fast path should return the receiver unchanged")
	}
}

func TestListUnion(t *testing.T) {
	a := List{{0, 10}, {20, 10}}
	b := List{{5, 20}, {40, 5}}
	got := a.Union(b)
	want := List{{0, 30}, {40, 5}}
	if !got.Equal(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
}

func TestListIntersect(t *testing.T) {
	a := List{{0, 10}, {20, 10}, {40, 10}}
	b := List{{5, 20}, {45, 100}}
	got := a.Intersect(b)
	want := List{{5, 5}, {20, 5}, {45, 5}}
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if got := a.Intersect(List{}); len(got) != 0 {
		t.Fatalf("Intersect with empty = %v", got)
	}
}

func TestListSubtract(t *testing.T) {
	a := List{{0, 100}}
	b := List{{10, 10}, {50, 10}}
	got := a.Subtract(b)
	want := List{{0, 10}, {20, 30}, {60, 40}}
	if !got.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
	if got := a.Subtract(a); len(got) != 0 {
		t.Fatalf("a - a = %v, want empty", got)
	}
	if got := (List{}).Subtract(a); len(got) != 0 {
		t.Fatalf("empty - a = %v", got)
	}
	if got := a.Subtract(List{}); !got.Equal(a) {
		t.Fatalf("a - empty = %v", got)
	}
}

func TestListSubtractInterleaved(t *testing.T) {
	// Non-contiguous minus non-contiguous, the rank-ordering case:
	// a column-wise view minus a neighbouring view.
	a := List{{0, 4}, {10, 4}, {20, 4}} // rows of rank i
	b := List{{2, 4}, {12, 4}, {22, 4}} // rows of rank i+1 shifted
	got := a.Subtract(b)
	want := List{{0, 2}, {10, 2}, {20, 2}}
	if !got.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
}

func TestListOverlaps(t *testing.T) {
	a := List{{0, 10}, {20, 10}}
	if !a.Overlaps(List{{25, 1}}) {
		t.Error("should overlap")
	}
	if a.Overlaps(List{{10, 10}, {30, 5}}) {
		t.Error("should not overlap (fills the gaps)")
	}
	if a.Overlaps(List{}) {
		t.Error("nothing overlaps empty")
	}
}

func TestListContains(t *testing.T) {
	a := List{{0, 100}}
	if !a.Contains(List{{5, 10}, {90, 10}}) {
		t.Error("superset should contain subset")
	}
	if a.Contains(List{{95, 10}}) {
		t.Error("should not contain overhanging list")
	}
}

func TestListContainsOffset(t *testing.T) {
	a := List{{10, 5}, {30, 5}}
	for _, off := range []int64{10, 14, 30, 34} {
		if !a.ContainsOffset(off) {
			t.Errorf("should contain %d", off)
		}
	}
	for _, off := range []int64{9, 15, 29, 35, 0} {
		if a.ContainsOffset(off) {
			t.Errorf("should not contain %d", off)
		}
	}
}

func TestListClampShiftClone(t *testing.T) {
	a := List{{0, 10}, {20, 10}}
	if got := a.Clamp(Extent{5, 18}); !got.Equal(List{{5, 5}, {20, 3}}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := a.Shift(100); !got.Equal(List{{100, 10}, {120, 10}}) {
		t.Errorf("Shift = %v", got)
	}
	c := a.Clone()
	c[0].Off = 999
	if a[0].Off == 999 {
		t.Error("Clone aliased receiver")
	}
}

func TestListEqual(t *testing.T) {
	// Equal is set equality after normalization.
	a := List{{0, 5}, {5, 5}}
	b := List{{0, 10}}
	if !a.Equal(b) {
		t.Error("touching extents should equal their coalesced form")
	}
	if a.Equal(List{{0, 11}}) {
		t.Error("different coverage should not be equal")
	}
}

func TestListString(t *testing.T) {
	if got := (List{{0, 5}, {10, 1}}).String(); got != "[0,5) [10,11)" {
		t.Errorf("String = %q", got)
	}
}
