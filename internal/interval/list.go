package interval

import (
	"sort"
	"strings"
)

// List is a sequence of extents. A List in canonical form (as produced by
// Normalize and all the set operations below) is sorted by offset, has no
// empty extents, and no two extents overlap or touch.
//
// Flattened MPI datatypes and file views are *ordered* extent sequences and
// are not necessarily canonical; convert with Normalize before using the
// set-algebra operations.
type List []Extent

// TotalLen returns the sum of the lengths of all extents.
func (l List) TotalLen() int64 {
	var n int64
	for _, e := range l {
		n += e.Len
	}
	return n
}

// Span returns the smallest single extent covering every extent in the list.
// The span of an empty (or all-empty) list is the empty extent.
//
// Span is what the byte-range locking strategy must lock: the paper (§3.2)
// observes that for a non-contiguous view "the file lock must start at the
// process's first file offset and end at the very last file offset the
// process will write".
func (l List) Span() Extent {
	var span Extent
	first := true
	for _, e := range l {
		if e.Empty() {
			continue
		}
		if first {
			span = e
			first = false
			continue
		}
		lo := min64(span.Off, e.Off)
		hi := max64(span.End(), e.End())
		span = Extent{Off: lo, Len: hi - lo}
	}
	return span
}

// IsCanonical reports whether the list is sorted, free of empty extents, and
// free of overlapping or touching neighbours.
func (l List) IsCanonical() bool {
	for i, e := range l {
		if e.Empty() {
			return false
		}
		if i > 0 && l[i-1].End() >= e.Off {
			return false
		}
	}
	return true
}

// Normalize returns the canonical form of the list: sorted, empty extents
// dropped, overlapping and adjacent extents coalesced. The receiver is not
// modified. A list that is already canonical is returned as-is, with no
// allocation — the hot path of every set-algebra call, since flattened
// datatypes and exchanged views arrive canonical. The result therefore may
// alias the receiver; callers must not write through it.
func (l List) Normalize() List {
	if l.IsCanonical() {
		return l
	}
	tmp := make(List, 0, len(l))
	for _, e := range l {
		if !e.Empty() {
			tmp = append(tmp, e)
		}
	}
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].Off != tmp[j].Off {
			return tmp[i].Off < tmp[j].Off
		}
		return tmp[i].Len < tmp[j].Len
	})
	out := make(List, 0, len(tmp))
	for _, e := range tmp {
		if n := len(out); n > 0 && out[n-1].End() >= e.Off {
			if e.End() > out[n-1].End() {
				out[n-1].Len = e.End() - out[n-1].Off
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Union returns the canonical union of l and m.
func (l List) Union(m List) List {
	all := make(List, 0, len(l)+len(m))
	all = append(all, l...)
	all = append(all, m...)
	return all.Normalize()
}

// Intersect returns the canonical intersection of l and m.
// Both lists are normalized first; the result contains exactly the bytes
// present in both.
func (l List) Intersect(m List) List {
	a, b := l.Normalize(), m.Normalize()
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ov := a[i].Intersect(b[j])
		if !ov.Empty() {
			out = append(out, ov)
		}
		if a[i].End() < b[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the canonical list of bytes in l that are not in m.
// This is the core operation of the process-rank ordering strategy: a rank
// subtracts the union of all higher ranks' views from its own view.
func (l List) Subtract(m List) List {
	a, b := l.Normalize(), m.Normalize()
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	var out List
	j := 0
	for _, e := range a {
		cur := e
		for j < len(b) && b[j].End() <= cur.Off {
			j++
		}
		k := j
		for k < len(b) && b[k].Off < cur.End() {
			ov := cur.Intersect(b[k])
			if ov.Off > cur.Off {
				out = append(out, Extent{Off: cur.Off, Len: ov.Off - cur.Off})
			}
			if ov.End() >= cur.End() {
				cur = Extent{}
				break
			}
			cur = Extent{Off: ov.End(), Len: cur.End() - ov.End()}
			k++
		}
		if !cur.Empty() {
			out = append(out, cur)
		}
	}
	return out
}

// Overlaps reports whether any byte is present in both l and m.
// It is the boolean test used to build the overlap matrix W in the
// graph-coloring strategy (paper Figure 5) and is cheaper than Intersect
// because it stops at the first common byte.
func (l List) Overlaps(m List) bool {
	a, b := l.Normalize(), m.Normalize()
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	// Disjoint bounding spans reject without walking a single extent;
	// canonical lists expose their span as first offset to last end.
	if a[len(a)-1].End() <= b[0].Off || b[len(b)-1].End() <= a[0].Off {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Overlaps(b[j]) {
			return true
		}
		if a[i].End() < b[j].End() {
			i++
		} else {
			j++
		}
	}
	return false
}

// Contains reports whether every byte of m is also in l.
func (l List) Contains(m List) bool {
	return len(m.Subtract(l)) == 0
}

// Equal reports whether l and m cover exactly the same bytes.
func (l List) Equal(m List) bool {
	a, b := l.Normalize(), m.Normalize()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ContainsOffset reports whether the canonical list covers byte off.
func (l List) ContainsOffset(off int64) bool {
	a := l.Normalize()
	i := sort.Search(len(a), func(i int) bool { return a[i].End() > off })
	return i < len(a) && a[i].Contains(off)
}

// Clamp returns the canonical part of l inside bounds.
func (l List) Clamp(bounds Extent) List {
	return l.Intersect(List{bounds})
}

// Shift returns a copy of the list with every extent displaced by d bytes.
func (l List) Shift(d int64) List {
	out := make(List, len(l))
	for i, e := range l {
		out[i] = e.Shift(d)
	}
	return out
}

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	out := make(List, len(l))
	copy(out, l)
	return out
}

// String formats the list as "[a,b) [c,d) ...".
func (l List) String() string {
	parts := make([]string, len(l))
	for i, e := range l {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}
