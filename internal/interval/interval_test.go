package interval

import "testing"

func TestExtentEnd(t *testing.T) {
	e := Extent{Off: 10, Len: 5}
	if got := e.End(); got != 15 {
		t.Fatalf("End() = %d, want 15", got)
	}
}

func TestExtentEmpty(t *testing.T) {
	cases := []struct {
		e    Extent
		want bool
	}{
		{Extent{0, 0}, true},
		{Extent{5, 0}, true},
		{Extent{5, -1}, true},
		{Extent{5, 1}, false},
	}
	for _, c := range cases {
		if got := c.e.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExtentContains(t *testing.T) {
	e := Extent{Off: 10, Len: 5}
	for _, off := range []int64{10, 12, 14} {
		if !e.Contains(off) {
			t.Errorf("%v should contain %d", e, off)
		}
	}
	for _, off := range []int64{9, 15, 100, -1} {
		if e.Contains(off) {
			t.Errorf("%v should not contain %d", e, off)
		}
	}
}

func TestExtentContainsExtent(t *testing.T) {
	e := Extent{10, 10}
	if !e.ContainsExtent(Extent{10, 10}) {
		t.Error("extent should contain itself")
	}
	if !e.ContainsExtent(Extent{12, 3}) {
		t.Error("should contain interior extent")
	}
	if !e.ContainsExtent(Extent{0, 0}) {
		t.Error("should contain empty extent")
	}
	if e.ContainsExtent(Extent{5, 10}) {
		t.Error("should not contain left-overhanging extent")
	}
	if e.ContainsExtent(Extent{15, 10}) {
		t.Error("should not contain right-overhanging extent")
	}
}

func TestExtentOverlaps(t *testing.T) {
	cases := []struct {
		a, b Extent
		want bool
	}{
		{Extent{0, 10}, Extent{5, 10}, true},
		{Extent{0, 10}, Extent{10, 10}, false}, // adjacent, half-open
		{Extent{0, 10}, Extent{20, 10}, false},
		{Extent{0, 10}, Extent{0, 0}, false}, // empty never overlaps
		{Extent{5, 1}, Extent{0, 10}, true},  // containment
		{Extent{0, 10}, Extent{9, 1}, true},  // last byte
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestExtentTouches(t *testing.T) {
	a := Extent{0, 10}
	if !a.Touches(Extent{10, 5}) {
		t.Error("adjacent extents should touch")
	}
	if a.Touches(Extent{11, 5}) {
		t.Error("separated extents should not touch")
	}
	if a.Touches(Extent{0, 0}) {
		t.Error("empty extent touches nothing")
	}
}

func TestExtentIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Extent
	}{
		{Extent{0, 10}, Extent{5, 10}, Extent{5, 5}},
		{Extent{0, 10}, Extent{10, 10}, Extent{}},
		{Extent{0, 10}, Extent{2, 3}, Extent{2, 3}},
		{Extent{0, 10}, Extent{0, 10}, Extent{0, 10}},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b); got != c.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestExtentUnion(t *testing.T) {
	u, exact := Extent{0, 10}.Union(Extent{10, 5})
	if u != (Extent{0, 15}) || !exact {
		t.Errorf("adjacent union = %v exact=%v, want [0,15) exact", u, exact)
	}
	u, exact = Extent{0, 10}.Union(Extent{20, 5})
	if u != (Extent{0, 25}) || exact {
		t.Errorf("gapped union = %v exact=%v, want [0,25) inexact", u, exact)
	}
	u, exact = Extent{}.Union(Extent{3, 4})
	if u != (Extent{3, 4}) || !exact {
		t.Errorf("empty union = %v exact=%v", u, exact)
	}
}

func TestExtentSubtract(t *testing.T) {
	e := Extent{10, 10}
	cases := []struct {
		sub  Extent
		want []Extent
	}{
		{Extent{0, 5}, []Extent{{10, 10}}},          // disjoint
		{Extent{10, 10}, nil},                       // exact
		{Extent{0, 100}, nil},                       // superset
		{Extent{10, 3}, []Extent{{13, 7}}},          // prefix
		{Extent{17, 3}, []Extent{{10, 7}}},          // suffix
		{Extent{13, 3}, []Extent{{10, 3}, {16, 4}}}, // middle split
		{Extent{5, 7}, []Extent{{12, 8}}},           // left overhang
		{Extent{18, 100}, []Extent{{10, 8}}},        // right overhang
	}
	for _, c := range cases {
		got := e.Subtract(c.sub)
		if len(got) != len(c.want) {
			t.Errorf("%v.Subtract(%v) = %v, want %v", e, c.sub, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v.Subtract(%v) = %v, want %v", e, c.sub, got, c.want)
			}
		}
	}
}

func TestExtentShiftClamp(t *testing.T) {
	if got := (Extent{5, 3}).Shift(100); got != (Extent{105, 3}) {
		t.Errorf("Shift = %v", got)
	}
	if got := (Extent{5, 10}).Clamp(Extent{8, 100}); got != (Extent{8, 7}) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestExtentString(t *testing.T) {
	if got := (Extent{3, 4}).String(); got != "[3,7)" {
		t.Errorf("String = %q", got)
	}
}
