package interval

// Property-based tests over randomly generated extent lists, using
// testing/quick. These pin down the set-algebra identities every other
// package in the repository depends on.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genList draws a random, possibly messy (unsorted, overlapping, with
// empties) extent list from r.
func genList(r *rand.Rand) List {
	n := r.Intn(12)
	l := make(List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, Extent{
			Off: int64(r.Intn(200)),
			Len: int64(r.Intn(40)), // may be 0
		})
	}
	return l
}

// Generate implements quick.Generator so quick.Check can produce Lists.
func (List) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genList(r))
}

// coverage returns the set of covered offsets, the reference model every
// property below is checked against.
func coverage(l List) map[int64]bool {
	m := make(map[int64]bool)
	for _, e := range l {
		for o := e.Off; o < e.End(); o++ {
			m[o] = true
		}
	}
	return m
}

func sameCoverage(a map[int64]bool, l List) bool {
	b := coverage(l)
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestQuickNormalizePreservesCoverage(t *testing.T) {
	f := func(l List) bool {
		n := l.Normalize()
		return n.IsCanonical() && sameCoverage(coverage(l), n)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionModel(t *testing.T) {
	f := func(a, b List) bool {
		got := a.Union(b)
		want := coverage(a)
		for o := range coverage(b) {
			want[o] = true
		}
		return got.IsCanonical() && sameCoverage(want, got)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectModel(t *testing.T) {
	f := func(a, b List) bool {
		got := a.Intersect(b)
		ca, cb := coverage(a), coverage(b)
		want := make(map[int64]bool)
		for o := range ca {
			if cb[o] {
				want[o] = true
			}
		}
		return got.IsCanonical() && sameCoverage(want, got)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractModel(t *testing.T) {
	f := func(a, b List) bool {
		got := a.Subtract(b)
		ca, cb := coverage(a), coverage(b)
		want := make(map[int64]bool)
		for o := range ca {
			if !cb[o] {
				want[o] = true
			}
		}
		return got.IsCanonical() && sameCoverage(want, got)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapsAgreesWithIntersect(t *testing.T) {
	f := func(a, b List) bool {
		return a.Overlaps(b) == (len(a.Intersect(b)) > 0)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractUnionPartition(t *testing.T) {
	// (a-b), (b-a), (a∩b) partition (a∪b): pairwise disjoint, union equal.
	f := func(a, b List) bool {
		amb := a.Subtract(b)
		bma := b.Subtract(a)
		ab := a.Intersect(b)
		if amb.Overlaps(bma) || amb.Overlaps(ab) || bma.Overlaps(ab) {
			return false
		}
		return amb.Union(bma).Union(ab).Equal(a.Union(b))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTotalLenAfterNormalizeMatchesCoverage(t *testing.T) {
	f := func(l List) bool {
		return l.Normalize().TotalLen() == int64(len(coverage(l)))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpanContainsAll(t *testing.T) {
	f := func(l List) bool {
		span := l.Span()
		for _, e := range l {
			if !e.Empty() && !span.ContainsExtent(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtentSubtractModel(t *testing.T) {
	f := func(a, b List) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		e, s := a[0], b[0]
		got := List(e.Subtract(s))
		ce := coverage(List{e})
		cs := coverage(List{s})
		want := make(map[int64]bool)
		for o := range ce {
			if !cs[o] {
				want[o] = true
			}
		}
		return sameCoverage(want, got)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
