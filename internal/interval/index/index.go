// Package index provides fast spatial indexes over interval.Extent: a
// dynamic interval index with O(log n) insert/delete and output-sensitive
// stabbing and range-overlap queries (Index), a sorted-endpoint k-way
// sweep-line that computes all pairwise overlaps of many extent lists in a
// single pass (SweepOverlaps, ClipAll), and a coverage set with
// binary-searched queries and splice insertion (Set).
//
// Every conflict-answering layer of the repository queries byte ranges —
// the overlap matrix of the paper's Figure 5, byte-range lock conflicts,
// rank-order view clipping, two-phase domain routing, and the sparse file
// store — and all of them build on this package instead of linear scans.
package index

import "atomio/internal/interval"

// Handle identifies one stored extent within an Index. Handles are assigned
// in insertion order and are never reused, so they double as a deterministic
// tie-break for extents sharing an offset.
type Handle int64

// node is one treap node. The treap is keyed by (Off, Handle) — heap-ordered
// by prio — and augmented with the maximum End over its subtree, which is
// what prunes overlap queries to O(log n + matches).
type node[T any] struct {
	ext         interval.Extent
	h           Handle
	val         T
	prio        uint64
	maxEnd      int64
	left, right *node[T]
}

// Index is a dynamic interval index over interval.Extent implemented as an
// augmented treap. The zero value is an empty index ready for use. An Index
// is not safe for concurrent use; callers guard it with their own locks
// (the lock table holds its mutex around every call).
//
// Treap priorities come from a deterministic xorshift stream, so the tree
// shape — and therefore every iteration order — is a pure function of the
// operation sequence. That keeps simulation runs bit-reproducible.
type Index[T any] struct {
	root *node[T]
	next Handle
	rng  uint64
	size int
}

// Len returns the number of stored extents.
func (ix *Index[T]) Len() int { return ix.size }

// Insert stores (e, v) and returns its handle. Empty extents may be stored;
// they are never reported by Overlapping or Stab (nothing overlaps them)
// but can still be removed via their handle.
func (ix *Index[T]) Insert(e interval.Extent, v T) Handle {
	ix.next++
	n := &node[T]{ext: e, h: ix.next, val: v, prio: ix.rand()}
	ix.root = insert(ix.root, n)
	ix.size++
	return n.h
}

// Delete removes the extent stored under (e, h) and returns its value.
// The extent must match the one passed to Insert.
func (ix *Index[T]) Delete(e interval.Extent, h Handle) (T, bool) {
	var root, removed *node[T]
	root, removed = remove(ix.root, e.Off, h)
	if removed == nil {
		var zero T
		return zero, false
	}
	ix.root = root
	ix.size--
	return removed.val, true
}

// Overlapping visits every stored extent sharing at least one byte with e,
// in (Off, Handle) order — offset order, insertion order among equals. The
// visitor returns false to stop early; Overlapping reports whether the walk
// ran to completion.
func (ix *Index[T]) Overlapping(e interval.Extent, visit func(e interval.Extent, h Handle, v T) bool) bool {
	if e.Empty() {
		return true
	}
	return overlapping(ix.root, e, visit)
}

// Stab visits every stored extent containing offset off, in (Off, Handle)
// order, with the same early-stop contract as Overlapping.
func (ix *Index[T]) Stab(off int64, visit func(e interval.Extent, h Handle, v T) bool) bool {
	return ix.Overlapping(interval.Extent{Off: off, Len: 1}, visit)
}

// All visits every stored extent in (Off, Handle) order.
func (ix *Index[T]) All(visit func(e interval.Extent, h Handle, v T) bool) bool {
	return all(ix.root, visit)
}

// rand steps the index's deterministic xorshift64 priority stream.
func (ix *Index[T]) rand() uint64 {
	x := ix.rng
	if x == 0 {
		x = 0x9E3779B97F4A7C15 // golden-ratio seed; any nonzero constant works
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	ix.rng = x
	return x
}

// keyLess orders nodes by (Off, Handle).
func keyLess[T any](a *node[T], off int64, h Handle) bool {
	return a.ext.Off < off || (a.ext.Off == off && a.h < h)
}

// update recomputes the subtree-max-End augmentation of n.
func (n *node[T]) update() {
	m := n.ext.End()
	if n.left != nil && n.left.maxEnd > m {
		m = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > m {
		m = n.right.maxEnd
	}
	n.maxEnd = m
}

func rotateRight[T any](n *node[T]) *node[T] {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft[T any](n *node[T]) *node[T] {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

func insert[T any](root, n *node[T]) *node[T] {
	if root == nil {
		n.update()
		return n
	}
	if keyLess(n, root.ext.Off, root.h) {
		root.left = insert(root.left, n)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = insert(root.right, n)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	root.update()
	return root
}

// merge joins two treaps where every key of a precedes every key of b.
func merge[T any](a, b *node[T]) *node[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = merge(a.right, b)
		a.update()
		return a
	}
	b.left = merge(a, b.left)
	b.update()
	return b
}

func remove[T any](root *node[T], off int64, h Handle) (*node[T], *node[T]) {
	if root == nil {
		return nil, nil
	}
	var removed *node[T]
	switch {
	case keyLess(root, off, h): // root < key: descend right
		root.right, removed = remove(root.right, off, h)
	case root.ext.Off == off && root.h == h:
		return merge(root.left, root.right), root
	default: // key < root: descend left
		root.left, removed = remove(root.left, off, h)
	}
	if removed != nil {
		root.update()
	}
	return root, removed
}

func overlapping[T any](n *node[T], q interval.Extent, visit func(interval.Extent, Handle, T) bool) bool {
	// Subtrees whose extents all end at or before q.Off cannot overlap.
	if n == nil || n.maxEnd <= q.Off {
		return true
	}
	if !overlapping(n.left, q, visit) {
		return false
	}
	if n.ext.Overlaps(q) {
		if !visit(n.ext, n.h, n.val) {
			return false
		}
	}
	// Right-subtree keys start at or after n.ext.Off; once that is past the
	// query's end no right descendant can overlap.
	if n.ext.Off < q.End() {
		return overlapping(n.right, q, visit)
	}
	return true
}

func all[T any](n *node[T], visit func(interval.Extent, Handle, T) bool) bool {
	if n == nil {
		return true
	}
	return all(n.left, visit) &&
		visit(n.ext, n.h, n.val) &&
		all(n.right, visit)
}
