package index

import (
	"sort"

	"atomio/internal/interval"
)

// Set is a set of covered bytes kept in canonical form: a sorted slice of
// disjoint, non-touching extents with binary-searched queries and
// splice-based insertion — O(log n + k) per operation for k affected
// entries. The zero value is an empty set.
//
// Set is what incremental coverage tracking wants: the two-phase merge
// claims bytes highest-rank-first and needs each piece's newly covered
// parts, and the sparse file store needs to answer "which parts of this
// read were ever written" without walking its chunk map.
type Set struct {
	ext     interval.List
	covered int64
}

// Len returns the number of stored extents.
func (s *Set) Len() int { return len(s.ext) }

// CoveredBytes returns the total number of covered bytes.
func (s *Set) CoveredBytes() int64 { return s.covered }

// Extents returns a copy of the canonical extent list.
func (s *Set) Extents() interval.List {
	return s.ext.Clone()
}

// Add covers e and returns the parts of e that were not previously covered,
// in ascending order — exactly interval.List{e}.Subtract(before). Touching
// neighbours coalesce, so the set stays canonical.
func (s *Set) Add(e interval.Extent) []interval.Extent {
	if e.Empty() {
		return nil
	}
	// [i, j) is the run of entries overlapping or touching e.
	i := sort.Search(len(s.ext), func(k int) bool { return s.ext[k].End() >= e.Off })
	j := i
	newOff, newEnd := e.Off, e.End()
	var added []interval.Extent
	cur := e.Off
	for ; j < len(s.ext) && s.ext[j].Off <= e.End(); j++ {
		if s.ext[j].Off > cur {
			added = append(added, interval.Extent{Off: cur, Len: s.ext[j].Off - cur})
		}
		if end := s.ext[j].End(); end > cur {
			cur = end
		}
		if s.ext[j].Off < newOff {
			newOff = s.ext[j].Off
		}
		if end := s.ext[j].End(); end > newEnd {
			newEnd = end
		}
	}
	if cur < e.End() {
		added = append(added, interval.Extent{Off: cur, Len: e.End() - cur})
	}
	merged := interval.Extent{Off: newOff, Len: newEnd - newOff}
	if j == i {
		s.ext = append(s.ext, interval.Extent{})
		copy(s.ext[i+1:], s.ext[i:])
		s.ext[i] = merged
	} else {
		s.ext[i] = merged
		s.ext = append(s.ext[:i+1], s.ext[j:]...)
	}
	for _, a := range added {
		s.covered += a.Len
	}
	return added
}

// Visit walks e in ascending order, partitioned into maximal runs that are
// entirely covered or entirely uncovered, calling f on each with its
// coverage flag. f returns false to stop early; Visit reports whether the
// walk ran to completion.
func (s *Set) Visit(e interval.Extent, f func(part interval.Extent, covered bool) bool) bool {
	if e.Empty() {
		return true
	}
	cur := e.Off
	i := sort.Search(len(s.ext), func(k int) bool { return s.ext[k].End() > e.Off })
	for ; i < len(s.ext) && s.ext[i].Off < e.End(); i++ {
		if s.ext[i].Off > cur {
			if !f(interval.Extent{Off: cur, Len: s.ext[i].Off - cur}, false) {
				return false
			}
			cur = s.ext[i].Off
		}
		hi := s.ext[i].End()
		if end := e.End(); hi > end {
			hi = end
		}
		if hi > cur {
			if !f(interval.Extent{Off: cur, Len: hi - cur}, true) {
				return false
			}
			cur = hi
		}
	}
	if cur < e.End() {
		return f(interval.Extent{Off: cur, Len: e.End() - cur}, false)
	}
	return true
}

// Covers reports whether every byte of e is covered. The empty extent is
// covered by definition.
func (s *Set) Covers(e interval.Extent) bool {
	if e.Empty() {
		return true
	}
	i := sort.Search(len(s.ext), func(k int) bool { return s.ext[k].End() > e.Off })
	return i < len(s.ext) && s.ext[i].ContainsExtent(e)
}
