package index

import (
	"sort"

	"atomio/internal/interval"
)

// event is one endpoint of the sweep: an extent of list id opening (start)
// or closing at coordinate at. Extents are half-open, so a close at x
// happens before an open at x.
type event struct {
	at    int64
	start bool
	id    int32
}

// events flattens the normalized lists into a sorted endpoint schedule.
// Normalization guarantees each list's extents are disjoint and non-empty,
// so a list is "active" over exactly the bytes it covers and never nests
// with itself.
//
// Two sweep drivers share the half-open endpoint semantics: ClipAll walks
// this explicit schedule because it must emit pieces between consecutive
// coordinates, while SweepOverlaps re-derives the same close-before-open
// ordering from a start-sorted record list plus an end-ordered heap (its
// pop condition `end <= off` is exactly a close event) — sorting E records
// on one int64 key measures ~2x faster than sorting 2E two-field events,
// and the matrix build is the hot path. Change endpoint ordering in both
// places or not at all.
func events(lists []interval.List) []event {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	evs := make([]event, 0, 2*total)
	for i, l := range lists {
		for _, e := range l.Normalize() {
			evs = append(evs, event{at: e.Off, start: true, id: int32(i)},
				event{at: e.End(), start: false, id: int32(i)})
		}
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		if evs[a].start != evs[b].start {
			return !evs[a].start // closes before opens: [a,x) and [x,b) are disjoint
		}
		return evs[a].id < evs[b].id
	})
	return evs
}

// SweepOverlaps computes the P×P boolean overlap matrix of the given extent
// lists — W[i][j] reports whether lists i and j share at least one byte —
// in one sorted-endpoint sweep: O(E log E + marked pairs) for E total
// extents, instead of the O(P²·E) of pairwise list merges. The diagonal is
// false by construction, matching the paper's Figure 5 matrix.
//
// The sweep sorts extents by start once, then walks them with a min-heap on
// end offsets driving deactivation: when an extent opens, every list still
// open overlaps it. Normalized lists keep at most one extent open at a
// time, so the active set is a plain position-indexed slice.
func SweepOverlaps(lists []interval.List) [][]bool {
	p := len(lists)
	w := make([][]bool, p)
	for i := range w {
		w[i] = make([]bool, p)
	}
	type rec struct {
		off, end int64
		id       int32
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	recs := make([]rec, 0, total)
	for i, l := range lists {
		for _, e := range l.Normalize() {
			recs = append(recs, rec{off: e.Off, end: e.End(), id: int32(i)})
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].off < recs[b].off })

	heap := make([]rec, 0, p+1) // open extents, min-heap by end
	active := make([]int32, 0, p)
	posOf := make([]int32, p) // id -> position in active, -1 when absent
	for i := range posOf {
		posOf[i] = -1
	}
	deactivate := func(id int32) {
		pos := posOf[id]
		last := int32(len(active) - 1)
		active[pos] = active[last]
		posOf[active[pos]] = pos
		active = active[:last]
		posOf[id] = -1
	}
	for _, rc := range recs {
		// Close every extent ending at or before this start (half-open
		// ranges: [a,x) and [x,b) share no byte).
		for len(heap) > 0 && heap[0].end <= rc.off {
			deactivate(heap[0].id)
			n := len(heap) - 1
			heap[0] = heap[n]
			heap = heap[:n]
			// Sift down.
			for i := 0; ; {
				small, l, r := i, 2*i+1, 2*i+2
				if l < n && heap[l].end < heap[small].end {
					small = l
				}
				if r < n && heap[r].end < heap[small].end {
					small = r
				}
				if small == i {
					break
				}
				heap[i], heap[small] = heap[small], heap[i]
				i = small
			}
		}
		row := w[rc.id]
		for _, j := range active {
			row[j] = true
			w[j][rc.id] = true
		}
		posOf[rc.id] = int32(len(active))
		active = append(active, rc.id)
		heap = append(heap, rc)
		// Sift up.
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].end <= heap[i].end {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	return w
}

// SweepSpans computes the conservative span-overlap matrix — two spans that
// intersect count as overlapping even if the underlying non-contiguous
// views interleave without sharing bytes. It runs the same sweep core as
// SweepOverlaps over one-extent lists, so span mode and exact mode cannot
// drift apart.
func SweepSpans(spans []interval.Extent) [][]bool {
	lists := make([]interval.List, len(spans))
	for i, s := range spans {
		lists[i] = interval.List{s}
	}
	return SweepOverlaps(lists)
}

// ClipAll computes every rank's clipped view under the highest-rank-wins
// rule of the paper's §3.3.2 in a single sweep: result[r] covers exactly
// the bytes of views[r] covered by no higher-ranked view (each byte goes to
// the highest rank writing it). It is the all-ranks form of subtracting the
// union of higher views from each view, in O(E log E) total instead of
// O(P·E) per rank.
func ClipAll(views []interval.List) []interval.List {
	p := len(views)
	out := make([]interval.List, p)
	if p == 0 {
		return out
	}
	active := make([]bool, p)
	top := -1 // highest active rank, -1 when none
	evs := events(views)
	prev := int64(0)
	for k := 0; k < len(evs); {
		at := evs[k].at
		// Emit the piece since the previous coordinate to the top rank.
		if top >= 0 && at > prev {
			l := out[top]
			if n := len(l); n > 0 && l[n-1].End() == prev {
				l[n-1].Len += at - prev
			} else {
				l = append(l, interval.Extent{Off: prev, Len: at - prev})
			}
			out[top] = l
		}
		// Apply every event at this coordinate, then re-settle the top.
		for ; k < len(evs) && evs[k].at == at; k++ {
			ev := evs[k]
			active[ev.id] = ev.start
			if ev.start && int(ev.id) > top {
				top = int(ev.id)
			}
		}
		for top >= 0 && !active[top] {
			top--
		}
		prev = at
	}
	return out
}
