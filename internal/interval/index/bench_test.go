package index

// Benchmarks measuring the asymptotic win of the index structures over the
// linear scans they replaced. The headline pair is the overlap-matrix build
// at P=512 ranks with 1024 extents each: the sweep must beat the pairwise
// merge baseline by >= 5x (the PR's acceptance bar); in practice the gap is
// orders of magnitude.

import (
	"fmt"
	"testing"

	"atomio/internal/interval"
)

// columnViews builds P interleaved column-wise views with extentsPerRank
// rows each, width w, and ov bytes of overlap between neighbouring ranks —
// the shape of the paper's Figure 3(b) pattern at scale.
func columnViews(p, extentsPerRank int, w, ov int64) []interval.List {
	views := make([]interval.List, p)
	stride := int64(p) * w
	for r := range views {
		l := make(interval.List, extentsPerRank)
		for i := range l {
			l[i] = interval.Extent{Off: int64(i)*stride + int64(r)*w, Len: w + ov}
		}
		views[r] = l
	}
	return views
}

// linearOverlaps is the pre-index implementation of the overlap matrix:
// P²/2 pairwise list merges (interval.List.Overlaps).
func linearOverlaps(views []interval.List) [][]bool {
	p := len(views)
	w := make([][]bool, p)
	for i := range w {
		w[i] = make([]bool, p)
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if views[i].Overlaps(views[j]) {
				w[i][j] = true
				w[j][i] = true
			}
		}
	}
	return w
}

func benchSizes(b *testing.B) []struct{ p, e int } {
	sizes := []struct{ p, e int }{{64, 256}, {512, 1024}}
	if testing.Short() {
		sizes = sizes[:1]
	}
	return sizes
}

func BenchmarkOverlapMatrixSweep(b *testing.B) {
	for _, sz := range benchSizes(b) {
		views := columnViews(sz.p, sz.e, 64, 16)
		b.Run(fmt.Sprintf("P%dxE%d", sz.p, sz.e), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := SweepOverlaps(views)
				if !w[0][1] {
					b.Fatal("neighbours must overlap")
				}
			}
		})
	}
}

func BenchmarkOverlapMatrixLinear(b *testing.B) {
	for _, sz := range benchSizes(b) {
		views := columnViews(sz.p, sz.e, 64, 16)
		b.Run(fmt.Sprintf("P%dxE%d", sz.p, sz.e), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := linearOverlaps(views)
				if !w[0][1] {
					b.Fatal("neighbours must overlap")
				}
			}
		})
	}
}

// BenchmarkIndexConflictQuery measures one byte-range conflict check against
// a populated index — the lock table's hot query — versus the linear scan of
// every granted lock it replaced.
func BenchmarkIndexConflictQuery(b *testing.B) {
	const n = 1 << 16 // granted locks
	var ix Index[int]
	var mirror []interval.Extent
	for i := 0; i < n; i++ {
		e := interval.Extent{Off: int64(i) * 128, Len: 96}
		ix.Insert(e, i)
		mirror = append(mirror, e)
	}
	q := interval.Extent{Off: (n / 2) * 128, Len: 200}

	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			ix.Overlapping(q, func(interval.Extent, Handle, int) bool {
				hits++
				return true
			})
			if hits != 2 {
				b.Fatalf("hits = %d", hits)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, e := range mirror {
				if e.Overlaps(q) {
					hits++
				}
			}
			if hits != 2 {
				b.Fatalf("hits = %d", hits)
			}
		}
	})
}

// BenchmarkSetAdd measures coverage-claiming throughput: n disjoint adds
// followed by n fully-covered re-adds, the two-phase merge's access shape.
func BenchmarkSetAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Set
		for k := 0; k < 1024; k++ {
			s.Add(interval.Extent{Off: int64(k) * 64, Len: 48})
		}
		for k := 0; k < 1024; k++ {
			if s.Add(interval.Extent{Off: int64(k) * 64, Len: 48}) != nil {
				b.Fatal("re-add returned new parts")
			}
		}
	}
}
