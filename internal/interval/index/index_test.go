package index

import (
	"testing"

	"atomio/internal/interval"
)

func ext(off, n int64) interval.Extent { return interval.Extent{Off: off, Len: n} }

// collect gathers an Overlapping query's results in visit order.
func collect(ix *Index[int], q interval.Extent) []int {
	var out []int
	ix.Overlapping(q, func(_ interval.Extent, _ Handle, v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

func TestIndexInsertQueryDelete(t *testing.T) {
	var ix Index[int]
	h10 := ix.Insert(ext(10, 10), 1) // [10,20)
	ix.Insert(ext(15, 10), 2)        // [15,25)
	ix.Insert(ext(30, 5), 3)         // [30,35)
	ix.Insert(ext(0, 100), 4)        // [0,100)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	if got := collect(&ix, ext(18, 1)); len(got) != 3 {
		t.Fatalf("stab 18 = %v, want 3 hits", got)
	}
	if got := collect(&ix, ext(26, 2)); len(got) != 1 || got[0] != 4 {
		t.Fatalf("query [26,28) = %v, want [4]", got)
	}
	var stabbed []int
	ix.Stab(16, func(_ interval.Extent, _ Handle, v int) bool {
		stabbed = append(stabbed, v)
		return true
	})
	if len(stabbed) != 3 || stabbed[0] != 4 || stabbed[1] != 1 || stabbed[2] != 2 {
		t.Fatalf("Stab(16) = %v, want [4 1 2]", stabbed)
	}
	ix.Stab(25, func(_ interval.Extent, _ Handle, v int) bool {
		if v != 4 {
			t.Fatalf("Stab(25) hit %d; offset 25 is inside [0,100) only", v)
		}
		return true
	})
	if v, ok := ix.Delete(ext(10, 10), h10); !ok || v != 1 {
		t.Fatalf("Delete = %v,%v", v, ok)
	}
	if _, ok := ix.Delete(ext(10, 10), h10); ok {
		t.Fatal("second Delete succeeded")
	}
	if got := collect(&ix, ext(12, 1)); len(got) != 1 || got[0] != 4 {
		t.Fatalf("stab 12 after delete = %v, want [4]", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len after delete = %d, want 3", ix.Len())
	}
}

func TestIndexVisitOrderAndEarlyStop(t *testing.T) {
	var ix Index[int]
	ix.Insert(ext(20, 5), 2)
	ix.Insert(ext(0, 100), 0)
	ix.Insert(ext(20, 5), 3) // same key range, later handle
	ix.Insert(ext(5, 30), 1)
	got := collect(&ix, ext(0, 200))
	want := []int{0, 1, 2, 3} // (Off, Handle) order
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("visit order = %v, want %v", got, want)
		}
	}
	n := 0
	done := ix.Overlapping(ext(0, 200), func(interval.Extent, Handle, int) bool {
		n++
		return n < 2
	})
	if done || n != 2 {
		t.Fatalf("early stop: done=%v n=%d", done, n)
	}
}

func TestIndexEmptyExtents(t *testing.T) {
	var ix Index[int]
	h := ix.Insert(ext(10, 0), 1)
	if got := collect(&ix, ext(0, 100)); len(got) != 0 {
		t.Fatalf("empty extent reported: %v", got)
	}
	if got := collect(&ix, interval.Extent{}); len(got) != 0 {
		t.Fatal("empty query reported hits")
	}
	if _, ok := ix.Delete(ext(10, 0), h); !ok {
		t.Fatal("could not delete empty extent by handle")
	}
}

func TestSetAddReturnsNewParts(t *testing.T) {
	var s Set
	if got := s.Add(ext(10, 10)); len(got) != 1 || got[0] != ext(10, 10) {
		t.Fatalf("first Add = %v", got)
	}
	// Overlapping add: only [20,25) is new.
	if got := s.Add(ext(15, 10)); len(got) != 1 || got[0] != ext(20, 5) {
		t.Fatalf("overlap Add = %v, want [[20,25)]", got)
	}
	// Straddling add with a hole: [5,10) and [25,30) are new.
	got := s.Add(ext(5, 25))
	if len(got) != 2 || got[0] != ext(5, 5) || got[1] != ext(25, 5) {
		t.Fatalf("straddle Add = %v", got)
	}
	if s.Len() != 1 || s.CoveredBytes() != 25 {
		t.Fatalf("set = %v (%d bytes), want one extent of 25", s.Extents(), s.CoveredBytes())
	}
	// Touching extents coalesce.
	s.Add(ext(30, 5))
	if s.Len() != 1 {
		t.Fatalf("touching add did not coalesce: %v", s.Extents())
	}
	if s.Add(ext(6, 20)) != nil {
		t.Fatal("fully covered Add returned parts")
	}
}

func TestSetVisitPartitions(t *testing.T) {
	var s Set
	s.Add(ext(10, 10))
	s.Add(ext(30, 10))
	type part struct {
		e   interval.Extent
		cov bool
	}
	var got []part
	s.Visit(ext(5, 40), func(e interval.Extent, covered bool) bool {
		got = append(got, part{e, covered})
		return true
	})
	want := []part{
		{ext(5, 5), false}, {ext(10, 10), true}, {ext(20, 10), false},
		{ext(30, 10), true}, {ext(40, 5), false},
	}
	if len(got) != len(want) {
		t.Fatalf("parts = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("part %d = %v, want %v", i, got[i], want[i])
		}
	}
	if !s.Covers(ext(12, 5)) || s.Covers(ext(12, 10)) || !s.Covers(interval.Extent{}) {
		t.Fatal("Covers wrong")
	}
}

func TestSweepOverlapsColumnWise(t *testing.T) {
	// Three interleaved "column" views: neighbours share a column, rank 0
	// and rank 2 do not.
	views := []interval.List{
		{ext(0, 2), ext(10, 2), ext(20, 2)},
		{ext(1, 2), ext(11, 2), ext(21, 2)},
		{ext(2, 2), ext(12, 2), ext(22, 2)},
	}
	w := SweepOverlaps(views)
	if !w[0][1] || !w[1][0] || !w[1][2] || !w[2][1] {
		t.Fatalf("missing neighbour overlap: %v", w)
	}
	if w[0][2] || w[2][0] || w[0][0] || w[1][1] || w[2][2] {
		t.Fatalf("spurious overlap: %v", w)
	}
}

func TestSweepTouchingIsNotOverlap(t *testing.T) {
	w := SweepOverlaps([]interval.List{{ext(0, 10)}, {ext(10, 10)}})
	if w[0][1] || w[1][0] {
		t.Fatal("touching extents reported as overlapping")
	}
}

func TestClipAllHighestRankWins(t *testing.T) {
	views := []interval.List{
		{ext(0, 10)}, // rank 0: loses [5,10) to rank 1, keeps [0,5)
		{ext(5, 10)}, // rank 1: loses [12,15) to rank 2, keeps [5,12)
		{ext(12, 3)}, // rank 2: keeps everything
	}
	got := ClipAll(views)
	want := []interval.List{{ext(0, 5)}, {ext(5, 7)}, {ext(12, 3)}}
	for r := range want {
		if !got[r].Equal(want[r]) {
			t.Fatalf("rank %d clip = %v, want %v", r, got[r], want[r])
		}
	}
}
