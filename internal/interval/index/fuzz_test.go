package index

import (
	"testing"

	"atomio/internal/interval"
)

// FuzzSetAddVisit differentially tests the splice-based Set against a naive
// per-byte map model. The input is a sequence of (offset, length) byte
// pairs, each an Add; after every Add the returned newly-covered parts, the
// canonical-form invariants, CoveredBytes, Covers, and a full Visit
// partition are checked against the model. The fault layer leans on Set for
// damage tracking (commutative unions), so Add must stay exact under
// arbitrary overlap, adjacency, and containment patterns.
func FuzzSetAddVisit(f *testing.F) {
	f.Add([]byte{0, 10, 5, 10, 20, 4, 14, 6})
	f.Add([]byte{10, 4, 0, 30, 10, 4})
	f.Add([]byte{7, 1, 8, 1, 6, 1, 0, 0})
	f.Fuzz(func(t *testing.T, in []byte) {
		var s Set
		model := make(map[int64]bool)
		var maxEnd int64
		for i := 0; i+1 < len(in) && i < 64; i += 2 {
			e := interval.Extent{Off: int64(in[i]), Len: int64(in[i+1])}
			if e.End() > maxEnd {
				maxEnd = e.End()
			}
			added := s.Add(e)

			// The returned parts must be exactly the model's uncovered
			// bytes of e, in ascending canonical runs.
			var want interval.List
			for pos := e.Off; pos < e.End(); pos++ {
				if !model[pos] {
					want = append(want, interval.Extent{Off: pos, Len: 1})
					model[pos] = true
				}
			}
			want = want.Normalize()
			if len(added) != len(want) {
				t.Fatalf("Add(%v) returned %v, model wants %v", e, added, want)
			}
			for k := range want {
				if added[k] != want[k] {
					t.Fatalf("Add(%v) returned %v, model wants %v", e, added, want)
				}
			}
		}

		// Canonical form: sorted, positive-length, non-touching extents.
		ext := s.Extents()
		var covered int64
		for k, e := range ext {
			if e.Len <= 0 {
				t.Fatalf("extent %d is empty: %v (set %v)", k, e, ext)
			}
			if k > 0 && ext[k-1].End() >= e.Off {
				t.Fatalf("extents %d and %d overlap or touch: %v", k-1, k, ext)
			}
			covered += e.Len
		}
		if s.CoveredBytes() != covered || int64(len(model)) != covered {
			t.Fatalf("CoveredBytes=%d, extent sum=%d, model=%d (set %v)",
				s.CoveredBytes(), covered, len(model), ext)
		}
		if s.Len() != len(ext) {
			t.Fatalf("Len=%d, extents=%d", s.Len(), len(ext))
		}

		// Visit over the whole touched range must partition it into runs
		// matching the model byte-for-byte, alternating coverage.
		probe := interval.Extent{Off: 0, Len: maxEnd + 4}
		cur := probe.Off
		prev := -1
		done := s.Visit(probe, func(part interval.Extent, cov bool) bool {
			if part.Off != cur || part.Empty() {
				t.Fatalf("Visit part %v not contiguous at %d", part, cur)
			}
			if b := boolToInt(cov); b == prev {
				t.Fatalf("Visit produced adjacent runs with equal coverage at %v", part)
			} else {
				prev = b
			}
			for pos := part.Off; pos < part.End(); pos++ {
				if model[pos] != cov {
					t.Fatalf("Visit says covered=%v at %d, model says %v", cov, pos, model[pos])
				}
			}
			cur = part.End()
			return true
		})
		if !done || cur != probe.End() {
			t.Fatalf("Visit stopped early: done=%v cur=%d want %d", done, cur, probe.End())
		}

		// Covers spot checks against the model.
		for _, e := range []interval.Extent{probe, {Off: 0, Len: 1}, {Off: maxEnd / 2, Len: 3}, {}} {
			want := true
			for pos := e.Off; pos < e.End(); pos++ {
				if !model[pos] {
					want = false
					break
				}
			}
			if got := s.Covers(e); got != want {
				t.Fatalf("Covers(%v)=%v, model says %v", e, got, want)
			}
		}
	})
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
