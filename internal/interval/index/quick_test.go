package index

// Property tests pinning the index structures to brute-force oracles over
// randomized workloads, in the style of internal/interval/quick_test.go.

import (
	"math/rand"
	"testing"

	"atomio/internal/interval"
)

func randExtent(r *rand.Rand) interval.Extent {
	return interval.Extent{Off: int64(r.Intn(300)), Len: int64(r.Intn(30))}
}

func randList(r *rand.Rand) interval.List {
	n := r.Intn(12)
	l := make(interval.List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, randExtent(r))
	}
	return l
}

// TestQuickIndexMatchesLinearScan drives an Index and a plain slice through
// the same random insert/delete sequence and checks every Overlapping query
// against the linear scan, including visit order.
func TestQuickIndexMatchesLinearScan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	type entry struct {
		e interval.Extent
		h Handle
		v int
	}
	for round := 0; round < 50; round++ {
		var ix Index[int]
		var mirror []entry
		for op := 0; op < 200; op++ {
			switch {
			case len(mirror) > 0 && r.Intn(3) == 0:
				k := r.Intn(len(mirror))
				en := mirror[k]
				if _, ok := ix.Delete(en.e, en.h); !ok {
					t.Fatalf("delete of live entry %v failed", en)
				}
				mirror = append(mirror[:k], mirror[k+1:]...)
			default:
				e := randExtent(r)
				h := ix.Insert(e, op)
				mirror = append(mirror, entry{e, h, op})
			}
			if ix.Len() != len(mirror) {
				t.Fatalf("Len = %d, mirror %d", ix.Len(), len(mirror))
			}
			q := randExtent(r)
			var got []int
			ix.Overlapping(q, func(_ interval.Extent, _ Handle, v int) bool {
				got = append(got, v)
				return true
			})
			// Oracle: linear scan in (Off, Handle) order.
			var want []entry
			for _, en := range mirror {
				if en.e.Overlaps(q) {
					want = append(want, en)
				}
			}
			for i := 0; i < len(want); i++ {
				for j := i + 1; j < len(want); j++ {
					if want[j].e.Off < want[i].e.Off ||
						(want[j].e.Off == want[i].e.Off && want[j].h < want[i].h) {
						want[i], want[j] = want[j], want[i]
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("query %v: got %d hits, want %d", q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i].v {
					t.Fatalf("query %v: hit %d = %d, want %d", q, i, got[i], want[i].v)
				}
			}
		}
	}
}

// TestQuickSweepMatchesPairwise checks the sweep-line overlap matrix against
// the O(P²) pairwise-merge oracle on random view sets.
func TestQuickSweepMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for round := 0; round < 200; round++ {
		p := 1 + r.Intn(8)
		views := make([]interval.List, p)
		for i := range views {
			views[i] = randList(r)
		}
		got := SweepOverlaps(views)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				want := i != j && views[i].Overlaps(views[j])
				if got[i][j] != want {
					t.Fatalf("round %d: W[%d][%d] = %v, want %v\nviews=%v",
						round, i, j, got[i][j], want, views)
				}
			}
		}
	}
}

// TestQuickSweepSpansMatchesPairwise checks span mode against pairwise
// Extent.Overlaps, including empty spans.
func TestQuickSweepSpansMatchesPairwise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 300; round++ {
		p := 1 + r.Intn(8)
		spans := make([]interval.Extent, p)
		for i := range spans {
			spans[i] = randExtent(r)
		}
		got := SweepSpans(spans)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				want := i != j && spans[i].Overlaps(spans[j])
				if got[i][j] != want {
					t.Fatalf("W[%d][%d] = %v, want %v for %v", i, j, got[i][j], want, spans)
				}
			}
		}
	}
}

// TestQuickClipAllMatchesSubtract checks the one-pass clip against the
// per-rank subtract-of-higher-union oracle.
func TestQuickClipAllMatchesSubtract(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for round := 0; round < 200; round++ {
		p := 1 + r.Intn(6)
		views := make([]interval.List, p)
		for i := range views {
			views[i] = randList(r)
		}
		got := ClipAll(views)
		for rank := 0; rank < p; rank++ {
			var higher interval.List
			for j := rank + 1; j < p; j++ {
				higher = append(higher, views[j]...)
			}
			want := views[rank].Subtract(higher)
			if !got[rank].Equal(want) {
				t.Fatalf("rank %d clip = %v, want %v\nviews=%v", rank, got[rank], want, views)
			}
			if !got[rank].IsCanonical() {
				t.Fatalf("rank %d clip not canonical: %v", rank, got[rank])
			}
		}
	}
}

// TestQuickSetMatchesListAlgebra drives a Set and an interval.List through
// the same adds, checking Add's newly-covered parts against Subtract and
// Visit/Covers against the accumulated union.
func TestQuickSetMatchesListAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for round := 0; round < 100; round++ {
		var s Set
		var mirror interval.List // canonical accumulated coverage
		for op := 0; op < 60; op++ {
			e := randExtent(r)
			wantNew := (interval.List{e}).Subtract(mirror)
			gotNew := interval.List(s.Add(e))
			if !gotNew.Equal(wantNew) {
				t.Fatalf("Add(%v) new parts = %v, want %v (set %v)", e, gotNew, wantNew, mirror)
			}
			mirror = mirror.Union(interval.List{e})
			if !s.Extents().Equal(mirror) {
				t.Fatalf("set extents = %v, want %v", s.Extents(), mirror)
			}
			if s.CoveredBytes() != mirror.TotalLen() {
				t.Fatalf("covered = %d, want %d", s.CoveredBytes(), mirror.TotalLen())
			}
			q := randExtent(r)
			var visited, coveredParts interval.List
			s.Visit(q, func(part interval.Extent, covered bool) bool {
				visited = append(visited, part)
				if covered {
					coveredParts = append(coveredParts, part)
				}
				return true
			})
			if q.Empty() {
				continue
			}
			if visited.TotalLen() != q.Len {
				t.Fatalf("Visit(%v) covered %d bytes, want %d", q, visited.TotalLen(), q.Len)
			}
			if !coveredParts.Equal(mirror.Intersect(interval.List{q})) {
				t.Fatalf("Visit(%v) covered parts = %v, want %v", q, coveredParts,
					mirror.Intersect(interval.List{q}))
			}
			if s.Covers(q) != mirror.Contains(interval.List{q}) {
				t.Fatalf("Covers(%v) = %v, want %v", q, s.Covers(q), !s.Covers(q))
			}
		}
	}
}
