package mpiio

import (
	"errors"
	"fmt"
	"testing"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/mpi"
	"atomio/internal/pfs"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

func listioFS() *pfs.FileSystem {
	cfg := testFS().Config()
	cfg.AtomicListIO = true
	return pfs.MustNew(cfg)
}

func TestListIOStrategyIsAtomic(t *testing.T) {
	// The §3.2 extension: one atomic vectored call per rank satisfies MPI
	// atomicity with no locks and no handshake.
	fs := listioFS()
	views := writeColumnWise(t, fs, nil, 16, 64, 4, 4, core.ListIO{})
	rep, err := verify.Check(fs, "shared.dat", views)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("listio violated atomicity: %v", rep.Violations)
	}
	if rep.Atoms == 0 {
		t.Fatal("vacuous: no overlap atoms")
	}
}

func TestListIORequiresCapability(t *testing.T) {
	fs := testFS() // no AtomicListIO
	run(t, 2, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(8, 16, 2, 2, c.Rank())
		f, err := Open(c, fs, nil, "cap.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.ListIO{})
		err = f.WriteAll(make([]byte, piece.BufBytes))
		if !errors.Is(err, pfs.ErrNoAtomicListIO) {
			return fmt.Errorf("err = %v, want ErrNoAtomicListIO", err)
		}
		return nil
	})
}

func TestListIOSerializesInVirtualTime(t *testing.T) {
	// Two overlapping atomic vectored writes must not overlap in virtual
	// time: the later one's completion reflects queueing behind the first.
	fs := listioFS()
	var times [2]int64
	run(t, 2, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(64, 256, 2, 8, c.Rank())
		f, err := Open(c, fs, nil, "ser.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.ListIO{})
		if err := f.WriteAll(make([]byte, piece.BufBytes)); err != nil {
			return err
		}
		times[c.Rank()] = int64(c.Now())
		return f.Close()
	})
	// One of the two completed roughly twice as late as the other.
	early, late := times[0], times[1]
	if early > late {
		early, late = late, early
	}
	if late < early*3/2 {
		t.Fatalf("atomic listio calls overlapped in virtual time: %d vs %d", early, late)
	}
}

func TestByNameIncludesListIO(t *testing.T) {
	s, err := core.ByName("listio")
	if err != nil || s.Name() != "listio" {
		t.Fatalf("ByName(listio) = %v, %v", s, err)
	}
}
