package mpiio

import (
	"atomio/internal/core"
	"atomio/internal/lock"
	"atomio/internal/obs"
)

// WriteAll collectively writes buf through the file view at the current
// file pointer, like MPI_File_write_all. In atomic mode the configured
// strategy guarantees MPI atomicity for overlapping requests; in non-atomic
// mode each contiguous file segment is issued as an individual request and
// the overlapped result is undefined (it can interleave, as the paper's
// Figure 2 shows). Every rank of the communicator must call WriteAll
// together; ranks may pass empty buffers.
func (f *File) WriteAll(buf []byte) error {
	if err := f.checkRequest(buf); err != nil {
		return err
	}
	maps := f.view.MapAt(f.pos, int64(len(buf)))
	f.pos += int64(len(buf))

	if !f.atomic {
		f.client.WriteV(mapsToSegments(buf, maps))
		return nil
	}
	// Journal the full mapped request before the strategy runs: if fault
	// injection damages any of these bytes, recovery replays the whole
	// intent. A no-op unless the file system's write-ahead log is on.
	if err := f.fs.LogIntent(f.name, f.comm.Rank(), mapsToSegments(buf, maps)); err != nil {
		return err
	}
	if o := f.events; o != nil && f.fs.Config().WAL {
		o.Emit(obs.Event{
			T: f.comm.Clock().Now(), Actor: f.comm.Rank(), Layer: obs.LayerPFS,
			Kind: obs.KindWALAppend, Peer: -1, Size: int64(len(buf)),
		})
		o.Count(f.comm.Rank(), obs.MetricWALAppends, 1)
	}
	ctx := &core.Context{Comm: f.comm, Client: f.client, LockMgr: f.mgr, Trace: f.tracer, Fault: f.faults}
	return f.strategy.WriteAll(ctx, buf, maps)
}

// Write performs an independent (non-collective) write through the view at
// the current file pointer, like MPI_File_write. In atomic mode only
// locking can guarantee atomicity — the handshaking strategies need to know
// the participating processes, which only collective calls provide (§5:
// "File locking seems to be the only way to ensure atomic results in
// non-collective I/O calls in MPI") — so an atomic independent write on a
// lockless file system returns core.ErrNoLockManager.
func (f *File) Write(buf []byte) error {
	if err := f.checkRequest(buf); err != nil {
		return err
	}
	maps := f.view.MapAt(f.pos, int64(len(buf)))
	f.pos += int64(len(buf))

	if !f.atomic {
		f.client.WriteV(mapsToSegments(buf, maps))
		return nil
	}
	if f.mgr == nil {
		return core.ErrNoLockManager
	}
	clock := f.comm.Clock()
	span := spanOf(maps)
	if span.Len == 0 {
		return nil
	}
	grant := f.mgr.Lock(f.comm.Rank(), span, lock.Exclusive, clock.Now())
	clock.AdvanceTo(grant)
	f.client.WriteV(mapsToSegments(buf, maps))
	f.client.Sync()
	clock.AdvanceTo(f.mgr.Unlock(f.comm.Rank(), span, clock.Now()))
	return nil
}

// ReadAll collectively reads into buf through the file view at the current
// file pointer, like MPI_File_read_all. In atomic mode on a locking file
// system a shared lock covers the request span and the cache is
// invalidated first, so the read returns committed server data.
func (f *File) ReadAll(buf []byte) error {
	return f.read(buf)
}

// Read performs an independent read at the current file pointer.
func (f *File) Read(buf []byte) error {
	return f.read(buf)
}

func (f *File) read(buf []byte) error {
	if err := f.checkRequest(buf); err != nil {
		return err
	}
	maps := f.view.MapAt(f.pos, int64(len(buf)))
	f.pos += int64(len(buf))

	segs := mapsToSegments(buf, maps)
	if !f.atomic {
		f.client.ReadV(segs)
		return nil
	}
	// Atomic reads must observe committed data, not stale cache (§3).
	f.client.Invalidate()
	if f.mgr != nil {
		clock := f.comm.Clock()
		span := spanOf(maps)
		if span.Len == 0 {
			return nil
		}
		grant := f.mgr.Lock(f.comm.Rank(), span, lock.Shared, clock.Now())
		clock.AdvanceTo(grant)
		f.client.ReadV(segs)
		clock.AdvanceTo(f.mgr.Unlock(f.comm.Rank(), span, clock.Now()))
		return nil
	}
	f.client.ReadV(segs)
	return nil
}
