package mpiio

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/mpi"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

func TestWriteReadRoundTripThroughView(t *testing.T) {
	// Write through a column-wise view and read the same bytes back
	// through the same view: the scatter/gather must invert exactly.
	fs := testFS()
	run(t, 4, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(16, 64, 4, 4, c.Rank())
		f, err := Open(c, fs, testMgr(), "rt.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.RankOrder{})
		out := make([]byte, piece.BufBytes)
		for i := range out {
			out[i] = byte(c.Rank()*50 + i%50)
		}
		if err := f.WriteAll(out); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		// Rewind and read back; with rank ordering the surrendered
		// bytes hold the higher rank's data, so compare only the bytes
		// this rank kept.
		if err := f.SeekSet(0); err != nil {
			return err
		}
		in := make([]byte, piece.BufBytes)
		if err := f.ReadAll(in); err != nil {
			return err
		}
		// Check a definitely-owned region: the columns this rank kept
		// under rank ordering (interior columns, away from both the
		// higher neighbour's claim and the lower neighbour's overlap).
		for row := 0; row < piece.Rows; row++ {
			for col := 4; col < piece.Cols-4; col++ {
				idx := row*piece.Cols + col
				if in[idx] != out[idx] {
					return fmt.Errorf("rank %d byte (%d,%d): got %d want %d",
						c.Rank(), row, col, in[idx], out[idx])
				}
			}
		}
		return f.Close()
	})
}

func TestSeekTell(t *testing.T) {
	fs := testFS()
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "seek.dat")
		if err != nil {
			return err
		}
		// int32 etype: offsets are in 4-byte units.
		etype := datatype.Elem{Width: 4, Name: "int32"}
		f.SetView(0, etype, datatype.NewContiguous(8, etype))
		if f.Tell() != 0 {
			return fmt.Errorf("fresh Tell = %d", f.Tell())
		}
		if err := f.WriteAll(make([]byte, 8)); err != nil { // 2 etypes
			return err
		}
		if f.Tell() != 2 {
			return fmt.Errorf("Tell after 2-etype write = %d", f.Tell())
		}
		if err := f.SeekSet(5); err != nil {
			return err
		}
		if f.Tell() != 5 {
			return fmt.Errorf("Tell after seek = %d", f.Tell())
		}
		if err := f.SeekSet(-1); err == nil {
			return fmt.Errorf("negative seek accepted")
		}
		return f.Close()
	})
}

func TestSuccessiveWritesAdvancePointer(t *testing.T) {
	fs := testFS()
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "adv.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(false)
		if err := f.WriteAll([]byte("abc")); err != nil {
			return err
		}
		if err := f.WriteAll([]byte("def")); err != nil {
			return err
		}
		return f.Close()
	})
	snap, err := fs.Snapshot("adv.dat", intervalExt(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != "abcdef" {
		t.Fatalf("file = %q", snap)
	}
}

func TestEtypeGranularityEnforced(t *testing.T) {
	fs := testFS()
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "etype.dat")
		if err != nil {
			return err
		}
		etype := datatype.Elem{Width: 8, Name: "double"}
		f.SetView(0, etype, datatype.NewContiguous(4, etype))
		if err := f.WriteAll(make([]byte, 12)); err == nil {
			return fmt.Errorf("1.5-etype write accepted")
		}
		if err := f.WriteAll(make([]byte, 16)); err != nil {
			return err
		}
		return f.Close()
	})
}

func TestClosedFileErrors(t *testing.T) {
	fs := testFS()
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "closed.dat")
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		for name, op := range map[string]func() error{
			"WriteAll":     func() error { return f.WriteAll([]byte("x")) },
			"ReadAll":      func() error { return f.ReadAll(make([]byte, 1)) },
			"SetView":      func() error { return f.SetView(0, datatype.Byte, datatype.Byte) },
			"SetAtomicity": func() error { return f.SetAtomicity(true) },
			"SetStrategy":  func() error { return f.SetStrategy(core.RankOrder{}) },
			"Sync":         func() error { return f.Sync() },
			"SeekSet":      func() error { return f.SeekSet(0) },
			"Close":        func() error { return f.Close() },
		} {
			if err := op(); !errors.Is(err, ErrClosed) {
				return fmt.Errorf("%s on closed file: %v", name, err)
			}
		}
		return nil
	})
}

func TestSetStrategyNil(t *testing.T) {
	fs := testFS()
	run(t, 1, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "nil.dat")
		if err != nil {
			return err
		}
		if err := f.SetStrategy(nil); err == nil {
			return fmt.Errorf("nil strategy accepted")
		}
		return f.Close()
	})
}

func TestIndependentWriteAtomicWithLocking(t *testing.T) {
	// §5: independent (non-collective) atomic writes are possible only
	// through locking. Two ranks write overlapping contiguous ranges
	// independently; the result must be single-source.
	fs := testFS()
	mgr := testMgr()
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, fs, mgr, "indep.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(true)
		// Overlapping whole-file views (contiguous).
		buf := make([]byte, 64)
		verify.Fill(c.Rank(), buf)
		if err := f.Write(buf); err != nil {
			return err
		}
		return f.Close()
	})
	snap, err := fs.Snapshot("indep.dat", intervalExt(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	first := snap[0]
	for i, b := range snap {
		if b != first {
			t.Fatalf("independent atomic writes interleaved at byte %d: %v", i, snap[:16])
		}
	}
	if first != verify.Marker(0) && first != verify.Marker(1) {
		t.Fatalf("foreign data %d", first)
	}
}

func TestIndependentAtomicWriteWithoutLockingFails(t *testing.T) {
	fs := testFS()
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "indep2.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(true)
		err = f.Write(make([]byte, 8))
		if !errors.Is(err, core.ErrNoLockManager) {
			return fmt.Errorf("err = %v, want ErrNoLockManager (paper §5)", err)
		}
		return f.Close()
	})
}

func TestAtomicReadSeesCommittedData(t *testing.T) {
	// Writer flushes under lock; reader's atomic read invalidates its
	// cache and takes a shared lock, so it must observe the write.
	fs := cachingFS()
	mgr := testMgr()
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, fs, mgr, "rw.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(true)
		if c.Rank() == 0 {
			buf := bytes.Repeat([]byte{42}, 128)
			if err := f.Write(buf); err != nil {
				return err
			}
		}
		// Order the read after the write.
		c.Barrier()
		if c.Rank() == 1 {
			in := make([]byte, 128)
			if err := f.Read(in); err != nil {
				return err
			}
			for i, b := range in {
				if b != 42 {
					return fmt.Errorf("byte %d = %d, want 42", i, b)
				}
			}
		}
		return f.Close()
	})
}

func TestAccessors(t *testing.T) {
	fs := testFS()
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, fs, nil, "acc.dat")
		if err != nil {
			return err
		}
		if f.Name() != "acc.dat" {
			return fmt.Errorf("Name = %q", f.Name())
		}
		if f.Comm().Size() != 2 {
			return fmt.Errorf("comm size = %d", f.Comm().Size())
		}
		if f.Client() == nil {
			return fmt.Errorf("nil client")
		}
		if f.Atomicity() {
			return fmt.Errorf("atomicity should default to off")
		}
		if f.View().Disp != 0 {
			return fmt.Errorf("default view disp = %d", f.View().Disp)
		}
		return f.Close()
	})
}

func TestMultiTileWriteAppendsSlabs(t *testing.T) {
	// Writing 2x the filetype size tiles the view: the second tile lands
	// one whole-array slab later (subarray extent = whole array). This is
	// how a time-series of checkpoints lands in one file.
	fs := testFS()
	run(t, 2, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(4, 8, 2, 2, c.Rank())
		f, err := Open(c, fs, nil, "tiles.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.RankOrder{})
		buf := make([]byte, 2*piece.BufBytes)
		verify.Fill(c.Rank(), buf)
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		return f.Close()
	})
	size, err := fs.FileSize("tiles.dat")
	if err != nil {
		t.Fatal(err)
	}
	if size != 2*4*8 {
		t.Fatalf("file size = %d, want two full slabs (%d)", size, 2*4*8)
	}
	// Both slabs' overlap columns hold the higher rank's marker.
	for slab := int64(0); slab < 2; slab++ {
		off := slab*32 + 3 // row 0, overlapped column 3 of that slab
		snap, _ := fs.Snapshot("tiles.dat", intervalExt(off, 2))
		for _, b := range snap {
			if b != verify.Marker(1) {
				t.Fatalf("slab %d overlap byte = %d, want rank 1 marker", slab, b)
			}
		}
	}
}

func TestEmptyRankParticipatesInCollectives(t *testing.T) {
	// A rank whose buffer is empty must still join the collective
	// handshakes, or the others deadlock.
	fs := testFS()
	views := make([][2]int64, 3)
	_ = views
	run(t, 3, func(c *mpi.Comm) error {
		f, err := Open(c, fs, testMgr(), "empty.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(true)
		for _, strat := range []core.Strategy{core.Coloring{}, core.RankOrder{}} {
			if err := f.SetStrategy(strat); err != nil {
				return err
			}
			var buf []byte
			if c.Rank() != 1 { // rank 1 writes nothing
				buf = bytes.Repeat([]byte{byte(c.Rank() + 1)}, 32)
				f.SeekSet(int64(c.Rank()) * 16) // overlapping ranges
			}
			if err := f.WriteAll(buf); err != nil {
				return err
			}
		}
		return f.Close()
	})
}
