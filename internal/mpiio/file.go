// Package mpiio is the MPI-IO layer of the reproduction: files opened on a
// communicator, file views set from derived datatypes, collective and
// independent reads and writes, and the MPI atomic mode implemented by the
// strategies of package core.
//
// The API mirrors the MPI-2 calls the paper's Figure 4 code uses:
//
//	MPI_File_open            -> Open
//	MPI_File_set_view        -> File.SetView
//	MPI_File_set_atomicity   -> File.SetAtomicity
//	MPI_File_write_all       -> File.WriteAll
//	MPI_File_read_all        -> File.ReadAll
//	MPI_File_sync            -> File.Sync
//	MPI_File_close           -> File.Close
package mpiio

import (
	"errors"
	"fmt"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/fileview"
	"atomio/internal/lock"
	"atomio/internal/mpi"
	"atomio/internal/obs"
	"atomio/internal/pfs"
	"atomio/internal/trace"
)

// ErrClosed is returned for operations on a closed file.
var ErrClosed = errors.New("mpiio: file is closed")

// File is an MPI file handle: one per rank, collectively opened.
type File struct {
	comm     *mpi.Comm // library-private dup
	fs       *pfs.FileSystem
	client   *pfs.Client
	mgr      lock.Manager
	name     string
	view     fileview.View
	pos      int64 // file pointer, in bytes of the view's linear stream
	atomic   bool
	strategy core.Strategy
	tracer   *trace.Recorder
	events   *obs.Recorder
	faults   core.Faults
	closed   bool
}

// Open collectively opens (creating if necessary) the named file on the
// given file system. mgr may be nil for file systems without byte-range
// locking (ENFS); the locking strategy then reports ErrNoLockManager.
// Every rank of comm must call Open together.
func Open(comm *mpi.Comm, fs *pfs.FileSystem, mgr lock.Manager, name string) (*File, error) {
	lib := comm.Dup()
	client, err := fs.Open(name, lib.Rank(), lib.Clock())
	if err != nil {
		return nil, err
	}
	f := &File{
		comm:   lib,
		fs:     fs,
		client: client,
		mgr:    mgr,
		name:   name,
		view:   fileview.New(0, datatype.Byte, datatype.NewContiguous(1, datatype.Byte)),
	}
	// ROMIO's default for atomic mode is byte-range locking; platforms
	// without locking default to the best handshaking strategy.
	if mgr != nil {
		f.strategy = core.Locking{}
	} else {
		f.strategy = core.RankOrder{}
	}
	lib.Barrier()
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Comm returns the library communicator the file was opened on.
func (f *File) Comm() *mpi.Comm { return f.comm }

// Client exposes the underlying file-system client (for cache control and
// traffic accounting in experiments).
func (f *File) Client() *pfs.Client { return f.client }

// SetView installs the (displacement, etype, filetype) triple and resets
// the file pointer, like MPI_File_set_view. Collective.
func (f *File) SetView(disp int64, etype, filetype datatype.Datatype) error {
	if f.closed {
		return ErrClosed
	}
	f.view = fileview.New(disp, etype, filetype)
	f.pos = 0
	f.comm.Barrier()
	return nil
}

// View returns the current file view.
func (f *File) View() fileview.View { return f.view }

// SetAtomicity switches MPI atomic mode on or off, like
// MPI_File_set_atomicity. Collective.
func (f *File) SetAtomicity(on bool) error {
	if f.closed {
		return ErrClosed
	}
	f.atomic = on
	f.comm.Barrier()
	return nil
}

// Atomicity reports whether atomic mode is on.
func (f *File) Atomicity() bool { return f.atomic }

// SetStrategy selects the atomicity implementation used by collective
// writes in atomic mode. Collective; all ranks must pick the same strategy.
func (f *File) SetStrategy(s core.Strategy) error {
	if f.closed {
		return ErrClosed
	}
	if s == nil {
		return fmt.Errorf("mpiio: nil strategy")
	}
	f.strategy = s
	f.comm.Barrier()
	return nil
}

// Strategy returns the current atomicity strategy.
func (f *File) Strategy() core.Strategy { return f.strategy }

// SetFaults attaches a failure-injection plan that atomic collective
// writes consult for writer crashes. Pass nil to disable. Local
// (non-collective): every rank carries the same plan but only its own
// entry applies.
func (f *File) SetFaults(p core.Faults) { f.faults = p }

// SetTrace attaches a phase recorder that atomic collective writes report
// their virtual-time breakdown to (handshake, lock wait, transfer, ...).
// Pass nil to disable. Local (non-collective).
func (f *File) SetTrace(rec *trace.Recorder) { f.tracer = rec }

// SetEvents attaches an event recorder for MPI-IO-layer instants this handle
// emits (write-ahead-log appends). Pass nil to disable. Local
// (non-collective).
func (f *File) SetEvents(o *obs.Recorder) { f.events = o }

// Tell returns the file pointer in etype units.
func (f *File) Tell() int64 { return f.pos / f.view.Etype.Size() }

// SeekSet positions the file pointer at off etype units into the view.
func (f *File) SeekSet(off int64) error {
	if f.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("mpiio: negative seek offset %d", off)
	}
	f.pos = off * f.view.Etype.Size()
	return nil
}

// Sync flushes this rank's cached data and synchronizes the ranks, like
// MPI_File_sync (collective).
func (f *File) Sync() error {
	if f.closed {
		return ErrClosed
	}
	f.client.Sync()
	f.client.Invalidate()
	f.comm.Barrier()
	return nil
}

// Close flushes and closes the handle. Collective.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	if err := f.client.Close(); err != nil {
		return err
	}
	f.comm.Barrier()
	f.closed = true
	return nil
}

// checkRequest validates a request buffer against the view's etype.
func (f *File) checkRequest(buf []byte) error {
	if f.closed {
		return ErrClosed
	}
	if int64(len(buf))%f.view.Etype.Size() != 0 {
		return fmt.Errorf("mpiio: request of %d bytes is not a whole number of etypes (%d bytes)",
			len(buf), f.view.Etype.Size())
	}
	return nil
}
