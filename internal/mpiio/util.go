package mpiio

import (
	"atomio/internal/fileview"
	"atomio/internal/interval"
	"atomio/internal/pfs"
)

// mapsToSegments materializes the pfs segments of a mapped request.
func mapsToSegments(buf []byte, maps []fileview.Mapping) []pfs.Segment {
	segs := make([]pfs.Segment, len(maps))
	for i, m := range maps {
		segs[i] = pfs.Segment{Off: m.File.Off, Data: buf[m.Buf : m.Buf+m.File.Len]}
	}
	return segs
}

// spanOf returns the single extent covering a mapped request.
func spanOf(maps []fileview.Mapping) interval.Extent {
	l := make(interval.List, len(maps))
	for i, m := range maps {
		l[i] = m.File
	}
	return l.Span()
}

// intervalExt abbreviates extent construction for tests and tools.
func intervalExt(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }
