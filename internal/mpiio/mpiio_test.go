package mpiio

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"atomio/internal/core"
	"atomio/internal/datatype"
	"atomio/internal/interval"
	"atomio/internal/lock"
	"atomio/internal/mpi"
	"atomio/internal/pfs"
	"atomio/internal/sim"
	"atomio/internal/verify"
	"atomio/internal/workload"
)

// testFS returns a small, fast, storing file system without caching.
func testFS() *pfs.FileSystem {
	return pfs.MustNew(pfs.Config{
		Servers:     2,
		StripeSize:  64,
		ServerModel: sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 16 << 20},
		ClientModel: sim.LinearCost{Latency: 2 * sim.Microsecond, BytesPerSec: 64 << 20},
		SegOverhead: sim.Microsecond,
		StoreData:   true,
	})
}

// cachingFS returns a storing file system with write-behind + read-ahead.
func cachingFS() *pfs.FileSystem {
	cfg := testFS().Config()
	cfg.Cache = pfs.CacheConfig{
		Enabled:         true,
		BlockSize:       64,
		ReadAheadBlocks: 1,
		WriteBehind:     true,
		MemModel:        sim.LinearCost{Latency: 100, BytesPerSec: 1 << 30},
	}
	return pfs.MustNew(cfg)
}

func testMgr() lock.Manager {
	return lock.NewCentral(lock.CentralConfig{MsgCost: 5 * sim.Microsecond, ServiceTime: 2 * sim.Microsecond})
}

func run(t *testing.T, procs int, body mpi.RankFunc) {
	t.Helper()
	if _, err := mpi.Run(mpi.Config{Procs: procs, Timeout: 60 * time.Second}, body); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// writeColumnWise runs the paper's column-wise concurrent overlapping write
// with the given strategy and returns the per-rank views for verification.
func writeColumnWise(t *testing.T, fs *pfs.FileSystem, mgr lock.Manager, m, n, p, r int, strat core.Strategy) []interval.List {
	t.Helper()
	views := make([]interval.List, p)
	run(t, p, func(c *mpi.Comm) error {
		piece, err := workload.ColumnWise(m, n, p, r, c.Rank())
		if err != nil {
			return err
		}
		views[c.Rank()] = interval.List(piece.Filetype.Flatten())

		f, err := Open(c, fs, mgr, "shared.dat")
		if err != nil {
			return err
		}
		if err := f.SetView(0, datatype.Byte, piece.Filetype); err != nil {
			return err
		}
		if err := f.SetAtomicity(true); err != nil {
			return err
		}
		if strat != nil {
			if err := f.SetStrategy(strat); err != nil {
				return err
			}
		}
		buf := make([]byte, piece.BufBytes)
		verify.Fill(c.Rank(), buf)
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		return f.Close()
	})
	return views
}

func TestAtomicityAllStrategiesColumnWise(t *testing.T) {
	// The repository's central claim: the paper's three strategies — and
	// the two-phase collective-buffering extension — all produce MPI
	// atomic results for the column-wise overlapping write.
	strategies := append(core.All(), core.TwoPhase{})
	for _, strat := range strategies {
		for _, p := range []int{2, 4, 8} {
			name := fmt.Sprintf("%s/P=%d", strat.Name(), p)
			t.Run(name, func(t *testing.T) {
				fs := testFS()
				views := writeColumnWise(t, fs, testMgr(), 16, 64, p, 4, strat)
				rep, err := verify.Check(fs, "shared.dat", views)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Atomic() {
					t.Fatalf("strategy %s violated atomicity: %v", strat.Name(), rep.Violations[0])
				}
				if rep.Atoms == 0 {
					t.Fatal("workload produced no overlaps; test is vacuous")
				}
			})
		}
	}
}

func TestAtomicityWithWriteBehindCache(t *testing.T) {
	// Same claim on a caching file system (sync/invalidate paths).
	for _, strat := range append(core.All(), core.TwoPhase{}) {
		t.Run(strat.Name(), func(t *testing.T) {
			fs := cachingFS()
			views := writeColumnWise(t, fs, testMgr(), 16, 64, 4, 4, strat)
			rep, err := verify.Check(fs, "shared.dat", views)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Atomic() {
				t.Fatalf("%s with cache: %v", strat.Name(), rep.Violations[0])
			}
		})
	}
}

func TestRankOrderingHighestRankWins(t *testing.T) {
	// §3.3.2: every contested byte must hold the highest covering rank's
	// data. The two-phase extension uses the same merge rule, so it must
	// satisfy the same property.
	for _, strat := range []core.Strategy{core.RankOrder{}, core.TwoPhase{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			fs := testFS()
			views := writeColumnWise(t, fs, nil, 8, 32, 4, 4, strat)
			rep, err := verify.Check(fs, "shared.dat", views)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Atomic() {
				t.Fatalf("violations: %v", rep.Violations)
			}
			for region, winner := range rep.WinnerByRegion {
				max := -1
				for rank, v := range views {
					if v.ContainsOffset(region.Off) && rank > max {
						max = rank
					}
				}
				if winner != max {
					t.Fatalf("region %v won by %d, want highest rank %d", region, winner, max)
				}
			}
		})
	}
}

func TestColoringWithSpansStillAtomic(t *testing.T) {
	// The conservative span-based handshake over-approximates conflicts
	// (ablation A5) — it can only add colors, so atomicity must hold.
	fs := testFS()
	views := writeColumnWise(t, fs, nil, 16, 64, 4, 4, core.Coloring{UseSpans: true})
	rep, err := verify.Check(fs, "shared.dat", views)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Atomic() {
		t.Fatalf("span-based coloring violated atomicity: %v", rep.Violations)
	}
}

func TestRankOrderingReducesIOVolume(t *testing.T) {
	// Lower ranks surrender (P-1)*R*M bytes in total.
	const m, n, p, r = 8, 32, 4, 4
	fs := testFS()
	written := make([]int64, p)
	run(t, p, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(m, n, p, r, c.Rank())
		f, err := Open(c, fs, nil, "vol.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.RankOrder{})
		buf := make([]byte, piece.BufBytes)
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		written[c.Rank()] = f.Client().BytesWritten()
		return f.Close()
	})
	var total, viewTotal int64
	for rank := 0; rank < p; rank++ {
		piece, _ := workload.ColumnWise(m, n, p, r, rank)
		viewTotal += piece.BufBytes
		total += written[rank]
	}
	if want := viewTotal - int64((p-1)*r*m); total != want {
		t.Fatalf("ordering wrote %d bytes, want %d (saved %d)", total, want, viewTotal-want)
	}
}

func TestLockingRequiresLockManager(t *testing.T) {
	// On ENFS-like systems the locking strategy must fail loudly.
	fs := testFS()
	run(t, 2, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(8, 16, 2, 2, c.Rank())
		f, err := Open(c, fs, nil, "nolock.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		f.SetAtomicity(true)
		f.SetStrategy(core.Locking{})
		err = f.WriteAll(make([]byte, piece.BufBytes))
		if !errors.Is(err, core.ErrNoLockManager) {
			return fmt.Errorf("err = %v, want ErrNoLockManager", err)
		}
		return nil
	})
}

func TestDefaultStrategyDependsOnLockManager(t *testing.T) {
	fs := testFS()
	run(t, 2, func(c *mpi.Comm) error {
		f, err := Open(c, fs, testMgr(), "a")
		if err != nil {
			return err
		}
		if f.Strategy().Name() != "locking" {
			return fmt.Errorf("default with mgr = %s", f.Strategy().Name())
		}
		g, err := Open(c, fs, nil, "b")
		if err != nil {
			return err
		}
		if g.Strategy().Name() != "ordering" {
			return fmt.Errorf("default without mgr = %s", g.Strategy().Name())
		}
		return nil
	})
}

func TestFigure2AtomicVsNonAtomic(t *testing.T) {
	// The paper's Figure 2: two column-wise writers, 6 segments each.
	// Non-atomic mode with an adversarial schedule interleaves the
	// overlapped columns; atomic mode never does.
	const m, n, p, r = 6, 8, 2, 2

	// Part 1: non-atomic, zig-zag schedule -> interleaving.
	fs := testFS()
	views := make([]interval.List, p)
	// Controller: strict alternation with per-row swap of who goes last:
	// row i is written R0-then-R1 for even i, R1-then-R0 for odd i.
	type req struct {
		rank  int
		seg   int
		grant chan struct{}
		done  chan struct{}
	}
	reqs := make(chan req, 4)
	go func() {
		pending := map[int]map[int]req{0: {}, 1: {}}
		for seg := 0; seg < m; seg++ {
			order := []int{0, 1}
			if seg%2 == 1 {
				order = []int{1, 0}
			}
			for _, rank := range order {
				r, ok := pending[rank][seg]
				for !ok {
					in := <-reqs
					pending[in.rank][in.seg] = in
					r, ok = pending[rank][seg]
				}
				close(r.grant)
				<-r.done
			}
		}
	}()
	run(t, p, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(m, n, p, r, c.Rank())
		views[c.Rank()] = interval.List(piece.Filetype.Flatten())
		f, err := Open(c, fs, nil, "fig2.dat")
		if err != nil {
			return err
		}
		f.SetView(0, datatype.Byte, piece.Filetype)
		// MPI non-atomic mode.
		rank := c.Rank()
		var cur req
		f.Client().BeforeSegment = func(i int) {
			cur = req{rank: rank, seg: i, grant: make(chan struct{}), done: make(chan struct{})}
			reqs <- cur
			<-cur.grant
		}
		f.Client().AfterSegment = func(i int) { close(cur.done) }
		buf := make([]byte, piece.BufBytes)
		verify.Fill(c.Rank(), buf)
		if err := f.WriteAll(buf); err != nil {
			return err
		}
		f.Client().BeforeSegment, f.Client().AfterSegment = nil, nil
		return f.Close()
	})
	rep, err := verify.Check(fs, "fig2.dat", views)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atomic() {
		t.Fatal("non-atomic mode under adversarial schedule should interleave (Figure 2)")
	}

	// Part 2: atomic mode (any strategy) under concurrent execution
	// never interleaves; covered exhaustively elsewhere, spot-check here.
	fs2 := testFS()
	views2 := writeColumnWise(t, fs2, testMgr(), m, n, p, r, core.Locking{})
	rep2, err := verify.Check(fs2, "shared.dat", views2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Atomic() {
		t.Fatalf("atomic mode interleaved: %v", rep2.Violations)
	}
}

func TestPerSegmentLockingViolatesMPIAtomicity(t *testing.T) {
	// §3.2: "Enforcing the atomicity of individual read()/write() calls
	// is not sufficient to enforce MPI atomicity." The per-segment
	// locking mode locks each row separately; with an adversarial
	// schedule the overlap interleaves even though every single write
	// was locked.
	// Each rank writes its column-wise piece as two half-height requests,
	// every contiguous row individually locked (PerSegment mode). A
	// barrier between the halves forces the schedule
	//   rank 0: top rows    | rank 1: bottom rows
	//   --- barrier ---
	//   rank 0: bottom rows | rank 1: top rows
	// so the overlap's top rows end up from rank 1 and its bottom rows
	// from rank 0 — every single write was locked, yet no serialization
	// order of the two requests explains the result.
	const m, n, p, r = 6, 8, 2, 2
	fs := testFS()
	mgr := testMgr()
	views := make([]interval.List, p)
	run(t, p, func(c *mpi.Comm) error {
		piece, _ := workload.ColumnWise(m, n, p, r, c.Rank())
		views[c.Rank()] = interval.List(piece.Filetype.Flatten())
		f, err := Open(c, fs, mgr, "perseg.dat")
		if err != nil {
			return err
		}
		f.SetAtomicity(true)
		f.SetStrategy(core.Locking{PerSegment: true})

		top := datatype.NewSubarray([]int{m, n}, []int{m / 2, piece.Cols},
			[]int{0, piece.StartCol}, datatype.Byte)
		bottom := datatype.NewSubarray([]int{m, n}, []int{m / 2, piece.Cols},
			[]int{m / 2, piece.StartCol}, datatype.Byte)
		halves := []datatype.Datatype{top, bottom}
		if c.Rank() == 1 {
			halves[0], halves[1] = halves[1], halves[0]
		}
		buf := make([]byte, piece.BufBytes/2)
		verify.Fill(c.Rank(), buf)
		for _, half := range halves {
			if err := f.SetView(0, datatype.Byte, half); err != nil {
				return err
			}
			if err := f.WriteAll(buf); err != nil {
				return err
			}
		}
		return f.Close()
	})
	rep, err := verify.Check(fs, "perseg.dat", views)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Atomic() {
		t.Fatal("per-segment locking should NOT satisfy MPI atomicity")
	}
	if len(rep.Violations) == 0 && rep.OrderViolation == nil {
		t.Fatal("expected an order violation")
	}
}
