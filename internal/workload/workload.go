// Package workload generates the paper's overlapping access patterns: the
// row-wise and column-wise 2-D partitionings of §3.1/Figure 3 and the
// block-block ghost-cell partitioning of Figure 1.
//
// All patterns describe an M×N array of bytes stored row-major in a shared
// file, partitioned over P processes with R rows/columns of overlap between
// neighbouring subdomains (R even). Each rank's piece is returned as the
// subarray filetype of the paper's Figure 4 plus the matching buffer size.
package workload

import (
	"fmt"

	"atomio/internal/datatype"
)

// Piece is one rank's share of a partitioned array.
type Piece struct {
	// Filetype is the subarray datatype selecting the rank's file region;
	// use it with a zero displacement and byte etype.
	Filetype datatype.Datatype
	// BufBytes is the number of bytes the rank writes (the size of its
	// sub-array).
	BufBytes int64
	// Rows and Cols are the sub-array shape, for buffer construction.
	Rows, Cols int
	// StartRow and StartCol locate the sub-array in the global array.
	StartRow, StartCol int
}

func validate(m, n, p, r int) error {
	switch {
	case m <= 0 || n <= 0:
		return fmt.Errorf("workload: array %dx%d must be positive", m, n)
	case p <= 0:
		return fmt.Errorf("workload: process count %d must be positive", p)
	case r < 0 || r%2 != 0:
		return fmt.Errorf("workload: overlap %d must be even and non-negative", r)
	default:
		return nil
	}
}

// ColumnWise partitions an M×N byte array over P ranks along the least
// significant (column) axis with R overlap columns between neighbours
// (Figure 3(b)): interior ranks own N/P+R columns starting at
// rank*N/P - R/2; the two boundary ranks own R/2 fewer.
func ColumnWise(m, n, p, r, rank int) (Piece, error) {
	if err := validate(m, n, p, r); err != nil {
		return Piece{}, err
	}
	if rank < 0 || rank >= p {
		return Piece{}, fmt.Errorf("workload: rank %d out of range [0,%d)", rank, p)
	}
	if n%p != 0 {
		return Piece{}, fmt.Errorf("workload: N=%d not divisible by P=%d", n, p)
	}
	w := n / p
	if r > w {
		return Piece{}, fmt.Errorf("workload: overlap %d exceeds partition width %d", r, w)
	}
	start := rank*w - r/2
	width := w + r
	if rank == 0 {
		start = 0
		width = w + r/2
	}
	if rank == p-1 {
		width = n - start
	}
	if p == 1 {
		start, width = 0, n
	}
	ft := datatype.NewSubarray([]int{m, n}, []int{m, width}, []int{0, start}, datatype.Byte)
	return Piece{
		Filetype: ft,
		BufBytes: int64(m) * int64(width),
		Rows:     m, Cols: width,
		StartRow: 0, StartCol: start,
	}, nil
}

// RowWise partitions an M×N byte array over P ranks along the most
// significant (row) axis with R overlap rows between neighbours
// (Figure 3(a)). Each rank's file region is contiguous (§3.2).
func RowWise(m, n, p, r, rank int) (Piece, error) {
	if err := validate(m, n, p, r); err != nil {
		return Piece{}, err
	}
	if rank < 0 || rank >= p {
		return Piece{}, fmt.Errorf("workload: rank %d out of range [0,%d)", rank, p)
	}
	if m%p != 0 {
		return Piece{}, fmt.Errorf("workload: M=%d not divisible by P=%d", m, p)
	}
	h := m / p
	if r > h {
		return Piece{}, fmt.Errorf("workload: overlap %d exceeds partition height %d", r, h)
	}
	start := rank*h - r/2
	height := h + r
	if rank == 0 {
		start = 0
		height = h + r/2
	}
	if rank == p-1 {
		height = m - start
	}
	if p == 1 {
		start, height = 0, m
	}
	ft := datatype.NewSubarray([]int{m, n}, []int{height, n}, []int{start, 0}, datatype.Byte)
	return Piece{
		Filetype: ft,
		BufBytes: int64(height) * int64(n),
		Rows:     height, Cols: n,
		StartRow: start, StartCol: 0,
	}, nil
}

// BlockBlock partitions an M×N byte array over a Px×Py process grid with R
// ghost rows/columns around each block (Figure 1): a rank's sub-array
// overlaps its 8 neighbours, and the four R/2×R/2 corners are written by 4
// processes concurrently. rank = row*Py + col.
func BlockBlock(m, n, px, py, r, rank int) (Piece, error) {
	if err := validate(m, n, px*py, r); err != nil {
		return Piece{}, err
	}
	if rank < 0 || rank >= px*py {
		return Piece{}, fmt.Errorf("workload: rank %d out of range [0,%d)", rank, px*py)
	}
	if m%px != 0 || n%py != 0 {
		return Piece{}, fmt.Errorf("workload: %dx%d array not divisible by %dx%d grid", m, n, px, py)
	}
	bh, bw := m/px, n/py
	if r > bh || r > bw {
		return Piece{}, fmt.Errorf("workload: overlap %d exceeds block %dx%d", r, bh, bw)
	}
	brow, bcol := rank/py, rank%py

	rowStart := brow*bh - r/2
	rowEnd := (brow+1)*bh + r/2
	if brow == 0 {
		rowStart = 0
	}
	if brow == px-1 {
		rowEnd = m
	}
	colStart := bcol*bw - r/2
	colEnd := (bcol+1)*bw + r/2
	if bcol == 0 {
		colStart = 0
	}
	if bcol == py-1 {
		colEnd = n
	}
	height, width := rowEnd-rowStart, colEnd-colStart
	ft := datatype.NewSubarray([]int{m, n}, []int{height, width}, []int{rowStart, colStart}, datatype.Byte)
	return Piece{
		Filetype: ft,
		BufBytes: int64(height) * int64(width),
		Rows:     height, Cols: width,
		StartRow: rowStart, StartCol: colStart,
	}, nil
}
