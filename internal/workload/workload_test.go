package workload

import (
	"testing"

	"atomio/internal/interval"
)

func views(t *testing.T, gen func(rank int) (Piece, error), p int) []interval.List {
	t.Helper()
	out := make([]interval.List, p)
	for rank := 0; rank < p; rank++ {
		piece, err := gen(rank)
		if err != nil {
			t.Fatal(err)
		}
		out[rank] = interval.List(piece.Filetype.Flatten()).Normalize()
		if got := piece.Filetype.Size(); got != piece.BufBytes {
			t.Fatalf("rank %d: filetype size %d != BufBytes %d", rank, got, piece.BufBytes)
		}
	}
	return out
}

func TestColumnWiseViews(t *testing.T) {
	// Figure 3(b): M x N over P ranks, R overlap columns. Interior ranks
	// own N/P+R columns; boundary ranks R/2 fewer.
	const m, n, p, r = 8, 32, 4, 4
	var pieces []Piece
	for rank := 0; rank < p; rank++ {
		piece, err := ColumnWise(m, n, p, r, rank)
		if err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, piece)
	}
	if pieces[0].Cols != n/p+r/2 || pieces[p-1].Cols != n/p+r/2 {
		t.Fatalf("boundary widths = %d,%d, want %d", pieces[0].Cols, pieces[p-1].Cols, n/p+r/2)
	}
	for rank := 1; rank < p-1; rank++ {
		if pieces[rank].Cols != n/p+r {
			t.Fatalf("interior rank %d width = %d, want %d", rank, pieces[rank].Cols, n/p+r)
		}
		if pieces[rank].StartCol != rank*n/p-r/2 {
			t.Fatalf("interior rank %d start = %d", rank, pieces[rank].StartCol)
		}
	}
	// Neighbours overlap exactly R columns; non-neighbours are disjoint.
	vs := views(t, func(rank int) (Piece, error) { return ColumnWise(m, n, p, r, rank) }, p)
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			inter := vs[i].Intersect(vs[j]).TotalLen()
			want := int64(0)
			if j == i+1 {
				want = int64(m * r)
			}
			if inter != want {
				t.Fatalf("ranks %d,%d share %d bytes, want %d", i, j, inter, want)
			}
		}
	}
	// The union covers the whole array.
	var union interval.List
	for _, v := range vs {
		union = union.Union(v)
	}
	if !union.Equal(interval.List{{Off: 0, Len: m * n}}) {
		t.Fatalf("union = %v", union)
	}
}

func TestColumnWiseNonContiguousViews(t *testing.T) {
	piece, err := ColumnWise(8, 32, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	flat := piece.Filetype.Flatten()
	if len(flat) != 8 { // one segment per row
		t.Fatalf("column-wise view has %d segments, want 8", len(flat))
	}
}

func TestRowWiseViews(t *testing.T) {
	// Figure 3(a): overlap rows; every view is one contiguous segment.
	const m, n, p, r = 32, 8, 4, 4
	vs := views(t, func(rank int) (Piece, error) { return RowWise(m, n, p, r, rank) }, p)
	for rank, v := range vs {
		if len(v) != 1 {
			t.Fatalf("row-wise rank %d view not contiguous: %v", rank, v)
		}
	}
	for i := 0; i < p-1; i++ {
		inter := vs[i].Intersect(vs[i+1]).TotalLen()
		if inter != int64(r*n) {
			t.Fatalf("ranks %d,%d share %d bytes, want %d", i, i+1, inter, r*n)
		}
	}
	var union interval.List
	for _, v := range vs {
		union = union.Union(v)
	}
	if !union.Equal(interval.List{{Off: 0, Len: m * n}}) {
		t.Fatalf("union = %v", union)
	}
}

func TestBlockBlockOverlapCounts(t *testing.T) {
	// Figure 1: on a 3x3 grid, the center rank overlaps all 8 neighbours,
	// and each corner of its ghost region is shared by 4 ranks.
	const m, n, px, py, r = 24, 24, 3, 3, 4
	p := px * py
	vs := views(t, func(rank int) (Piece, error) { return BlockBlock(m, n, px, py, r, rank) }, p)

	center := 4 // rank (1,1)
	overlapping := 0
	for j := 0; j < p; j++ {
		if j != center && vs[center].Overlaps(vs[j]) {
			overlapping++
		}
	}
	if overlapping != 8 {
		t.Fatalf("center overlaps %d ranks, want 8", overlapping)
	}

	// A corner byte of the center block's ghost ring: global position
	// (row 8-1, col 8-1) = just inside blocks (0,0),(0,1),(1,0),(1,1).
	cornerOff := int64((m/px-1)*n + (n/py - 1))
	covering := 0
	for j := 0; j < p; j++ {
		if vs[j].ContainsOffset(cornerOff) {
			covering++
		}
	}
	if covering != 4 {
		t.Fatalf("corner byte covered by %d ranks, want 4 (Figure 1)", covering)
	}

	// Union covers the array exactly.
	var union interval.List
	for _, v := range vs {
		union = union.Union(v)
	}
	if !union.Equal(interval.List{{Off: 0, Len: m * n}}) {
		t.Fatalf("union = %v", union)
	}
}

func TestSingleProcessOwnsEverything(t *testing.T) {
	for _, gen := range []func() (Piece, error){
		func() (Piece, error) { return ColumnWise(4, 8, 1, 2, 0) },
		func() (Piece, error) { return RowWise(8, 4, 1, 2, 0) },
		func() (Piece, error) { return BlockBlock(8, 8, 1, 1, 2, 0) },
	} {
		piece, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if piece.BufBytes != 32 && piece.BufBytes != 64 {
			t.Fatalf("single-process piece = %d bytes", piece.BufBytes)
		}
		v := interval.List(piece.Filetype.Flatten()).Normalize()
		if len(v) != 1 || v[0].Off != 0 {
			t.Fatalf("single-process view = %v", v)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]func() (Piece, error){
		"bad rank":        func() (Piece, error) { return ColumnWise(4, 8, 2, 0, 5) },
		"negative rank":   func() (Piece, error) { return RowWise(8, 4, 2, 0, -1) },
		"odd overlap":     func() (Piece, error) { return ColumnWise(4, 8, 2, 3, 0) },
		"indivisible N":   func() (Piece, error) { return ColumnWise(4, 9, 2, 0, 0) },
		"indivisible M":   func() (Piece, error) { return RowWise(9, 4, 2, 0, 0) },
		"overlap too big": func() (Piece, error) { return ColumnWise(4, 8, 4, 4, 0) },
		"zero array":      func() (Piece, error) { return ColumnWise(0, 8, 2, 0, 0) },
		"zero procs":      func() (Piece, error) { return RowWise(8, 4, 0, 0, 0) },
		"bad grid":        func() (Piece, error) { return BlockBlock(8, 8, 3, 3, 0, 0) },
		"bb bad rank":     func() (Piece, error) { return BlockBlock(8, 8, 2, 2, 0, 9) },
		"bb overlap":      func() (Piece, error) { return BlockBlock(8, 8, 2, 2, 6, 0) },
	}
	for name, f := range cases {
		if _, err := f(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPaperDimensionsAreValid(t *testing.T) {
	// The three Figure 8 array sizes with P in {4,8,16} must construct.
	for _, n := range []int{8192, 32768, 262144} {
		for _, p := range []int{4, 8, 16} {
			for rank := 0; rank < p; rank += p - 1 {
				if _, err := ColumnWise(4096, n, p, 64, rank); err != nil {
					t.Fatalf("4096x%d P=%d rank %d: %v", n, p, rank, err)
				}
			}
		}
	}
}
