package runner

import (
	"fmt"
	"time"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/pfs/scenario"
	"atomio/internal/platform"
)

// Size is one array shape of a grid.
type Size struct {
	M, N int
	// Label names the size in cell IDs ("32 MB"); empty derives "MxN".
	Label string
}

func (s Size) label() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("%dx%d", s.M, s.N)
}

// SizeLabel names a size the way cell IDs do ("32 MB", or the derived
// "MxN" when unlabeled) — the single definition label-based filters must
// share so they cannot drift from generated cell IDs.
func SizeLabel(s Size) string { return s.label() }

// Grid is a cross-product of experiment parameters. Cells enumerates it in
// the paper's layout order: sizes, then platforms, then process counts,
// then strategies — the order Figure 8 and the benchmark suite both use.
type Grid struct {
	Platforms []platform.Profile
	Sizes     []Size
	Procs     []int
	Overlap   int
	Pattern   harness.Pattern
	// Strategies to measure; nil means the paper's per-platform set
	// (harness.Methods), which omits locking on platforms without it.
	Strategies []core.Strategy
	// SkipUnsupported drops locking cells on platforms without byte-range
	// locking instead of producing cells that fail.
	SkipUnsupported bool
	StoreData       bool
	Verify          bool
	Trace           bool
	// AtomicListIO grants the simulated file system atomic vectored
	// writes. Cells using the listio strategy get it regardless.
	AtomicListIO bool
	// LockShards overrides the lock manager's table shard count on every
	// cell (0 keeps platform defaults). Reported numbers are invariant in
	// the shard count; only host-side wall-clock can change.
	LockShards int
	// Servers overrides the simulated I/O-server count on every cell
	// (0 keeps platform defaults). Unlike LockShards this is a real model
	// parameter: reported numbers change with it.
	Servers int
	// SharedStore runs every cell on the pre-striping shared file store
	// (the oracle layout) instead of per-server stores. Reported numbers
	// are byte-identical either way — the flag is a live oracle check.
	SharedStore bool
	// TraceEvents records every cell's structured event stream and metrics
	// registry (see internal/obs); the metrics feed the messages /
	// max_queue_depth / lock-wait columns of emitted records.
	TraceEvents bool
	// TraceLimit bounds per-actor event memory when TraceEvents is on
	// (> 0 ring of newest events, 0 unbounded, < 0 metrics only).
	TraceLimit int
}

// CellID builds the canonical cell identifier used in Figure 8
// sub-benchmark names and result records.
func CellID(platform, sizeLabel string, procs int, strategy string) string {
	return fmt.Sprintf("%s/%s/P%d/%s", platform, sizeLabel, procs, strategy)
}

// Cells expands the grid into runnable cells with canonical IDs.
func (g Grid) Cells() []Cell {
	var cells []Cell
	for _, size := range g.Sizes {
		for _, prof := range g.Platforms {
			strategies := g.Strategies
			if strategies == nil {
				strategies = harness.Methods(prof)
			}
			for _, procs := range g.Procs {
				for _, strat := range strategies {
					if g.SkipUnsupported && strat.Name() == "locking" && !prof.SupportsLocking() {
						continue
					}
					cells = append(cells, Cell{
						ID: CellID(prof.Name, size.label(), procs, strat.Name()),
						Experiment: harness.Experiment{
							Platform:     prof,
							M:            size.M,
							N:            size.N,
							Procs:        procs,
							Overlap:      g.Overlap,
							Pattern:      g.Pattern,
							Strategy:     strat,
							StoreData:    g.StoreData,
							Verify:       g.Verify,
							Trace:        g.Trace,
							AtomicListIO: g.AtomicListIO || strat.Name() == "listio",
							LockShards:   g.LockShards,
							Servers:      g.Servers,
							SharedStore:  g.SharedStore,
							TraceEvents:  g.TraceEvents,
							EventLimit:   g.TraceLimit,
						},
					})
				}
			}
		}
	}
	return cells
}

// WithPlatform narrows the grid to one platform by Table 1 name.
func (g Grid) WithPlatform(name string) (Grid, error) {
	for _, prof := range g.Platforms {
		if prof.Name == name {
			g.Platforms = []platform.Profile{prof}
			return g, nil
		}
	}
	return g, fmt.Errorf("runner: no platform %q in grid", name)
}

// WithSize narrows the grid to one array size by label.
func (g Grid) WithSize(label string) (Grid, error) {
	for _, size := range g.Sizes {
		if size.label() == label {
			g.Sizes = []Size{size}
			return g, nil
		}
	}
	return g, fmt.Errorf("runner: no array size %q in grid", label)
}

// Figure8Grid is the paper's full Figure 8 evaluation: three array sizes on
// three platforms, written by 4, 8 and 16 processes with every applicable
// strategy, column-wise. This is the single definition the figure8 command
// and the benchmark suite both enumerate.
func Figure8Grid() Grid {
	sizes := make([]Size, len(harness.Figure8Sizes))
	for i, s := range harness.Figure8Sizes {
		sizes[i] = Size{M: harness.Figure8M, N: s.N, Label: s.Label}
	}
	return Grid{
		Platforms:       platform.All(),
		Sizes:           sizes,
		Procs:           harness.Figure8Procs,
		Overlap:         harness.Figure8Overlap,
		Pattern:         harness.ColumnWise,
		SkipUnsupported: true,
	}
}

// ScalingPoint is one cell shape of the large-P scaling grid: Procs ranks
// writing an M×N byte array column-wise, so every rank's view has M
// non-contiguous extents and neighbouring views interleave.
type ScalingPoint struct {
	Procs int
	M, N  int
}

// ScalingPoints pairs process counts with per-rank extent counts. The
// handshaking strategies decode all P views on every rank — O(P²·M)
// extents live at the allgather — so the largest process counts carry
// fewer extents per rank to keep a full simulation of thousands of ranks
// runnable on one host: thousands of extents per rank at moderate P,
// P=1024 with leaner views.
var ScalingPoints = []ScalingPoint{
	{Procs: 64, M: 4096, N: 64 * 64},
	{Procs: 256, M: 1024, N: 256 * 64},
	{Procs: 1024, M: 64, N: 1024 * 64},
}

// ExtendedScalingPoints continue the grid past the classic 1024-rank
// ceiling, the regime the event-loop engine exists for: a P=16384 cell is
// 16384 resumable coroutines in one scheduler loop, not 16384 OS-scheduled
// goroutines. These points run the locking strategy only — the handshaking
// strategies open with a ring allgather of all P views, which is O(P²)
// messages (~268M at P=16384) and does not complete in useful time on one
// host, while locking stays O(P) events per step.
var ExtendedScalingPoints = []ScalingPoint{
	{Procs: 2048, M: 32, N: 2048 * 64},
	{Procs: 4096, M: 16, N: 4096 * 64},
	{Procs: 8192, M: 8, N: 8192 * 64},
	{Procs: 16384, M: 4, N: 16384 * 64},
}

// ScalingOverlap is the overlap column count of the scaling grid (even,
// below the 64-column partition width).
const ScalingOverlap = 16

// ScalingGrid is the large-P scaling study the interval index exists for:
// process counts up to 1024 with non-contiguous interleaved views, run
// column-wise on one locking-capable platform with the paper's strategy
// set. Unlike Figure8Grid it pairs each process count with its own array
// shape, so it enumerates cells directly.
func ScalingGrid() []Cell { return ScalingGridTo(1024) }

// ScalingGridTo returns the scaling cells with process counts up to maxP:
// the classic grid (every strategy, up to 1024 ranks) plus, past 1024, the
// locking-only ExtendedScalingPoints. ScalingGridTo(1024) is exactly
// ScalingGrid.
func ScalingGridTo(maxP int) []Cell {
	prof := platform.IBMSP()
	var cells []Cell
	add := func(pt ScalingPoint, strat core.Strategy) {
		label := fmt.Sprintf("%dx%d", pt.M, pt.N)
		cells = append(cells, Cell{
			ID: CellID(prof.Name, label, pt.Procs, strat.Name()),
			Experiment: harness.Experiment{
				Platform: prof,
				M:        pt.M,
				N:        pt.N,
				Procs:    pt.Procs,
				Overlap:  ScalingOverlap,
				Pattern:  harness.ColumnWise,
				Strategy: strat,
				// A P=1024 handshake pushes ~P² simulated messages
				// through one host; give the deadlock guard room.
				RunTimeout: 30 * time.Minute,
			},
		})
	}
	for _, pt := range ScalingPoints {
		if pt.Procs > maxP {
			continue
		}
		for _, strat := range harness.Methods(prof) {
			add(pt, strat)
		}
	}
	locking, err := core.ByName("locking")
	if err != nil {
		panic(err)
	}
	for _, pt := range ExtendedScalingPoints {
		if pt.Procs > maxP {
			continue
		}
		add(pt, locking)
	}
	return cells
}

// ShardSweepShards are the lock-table shard counts the shard sweep runs.
var ShardSweepShards = []int{1, 2, 4, 8}

// ShardSweepGrid sweeps the lock-table shard count on one contended
// multi-stripe locking cell: P ranks writing column-wise with interleaved
// non-contiguous views on the central-manager platform, so every rank's
// span lock crosses many offset stripes and every shard count exercises the
// cross-shard reserve/commit path. One cell per S in ShardSweepShards, each
// emitting a normal atomio.bench/v1 record (cell IDs carry an "+S<n>"
// suffix on the size label). The simulated numbers are byte-identical
// across the sweep — that invariance is the point; wall_ns is where the
// shard count shows up.
func ShardSweepGrid() []Cell {
	prof := platform.Origin2000()
	const m, n, procs = 512, 64 * 64, 64
	strat, err := core.ByName("locking")
	if err != nil {
		panic(err)
	}
	label := fmt.Sprintf("%dx%d", m, n)
	var cells []Cell
	for _, s := range ShardSweepShards {
		cells = append(cells, Cell{
			ID: CellID(prof.Name, fmt.Sprintf("%s+S%d", label, s), procs, strat.Name()),
			Experiment: harness.Experiment{
				Platform:   prof,
				M:          m,
				N:          n,
				Procs:      procs,
				Overlap:    ScalingOverlap,
				Pattern:    harness.ColumnWise,
				Strategy:   strat,
				LockShards: s,
			},
		})
	}
	return cells
}

// DegradedScenarios are the per-server perturbation profiles the degraded
// grid sweeps, on the affinity-mode Cplant profile (12 I/O servers):
// healthy baseline, one 4×-degraded server, a hot server absorbing half the
// client affinity map, and a post-failure rebalance to half the servers.
func DegradedScenarios() []scenario.Profile {
	return []scenario.Profile{
		scenario.Healthy(),
		scenario.SlowServer(0, 4),
		scenario.HotSpot(0, 12),
		scenario.Rebalance(6),
	}
}

// DegradedGrid is the degraded-server scenario study: every scenario ×
// process count × applicable strategy on one affinity-mode platform, with
// data-less cells sized to run in seconds. Cell IDs carry a "+<scenario>"
// suffix on the size label; the per-server stats columns of the emitted
// records are where the perturbations show up (a slow server's queue
// dominates the makespan, a hot server absorbs a skewed byte share).
// Scenario cells that perturb service models or affinity are explicitly
// non-comparable to healthy Figure 8 output.
func DegradedGrid() []Cell {
	prof := platform.Cplant()
	const m, n = 256, 4096
	label := fmt.Sprintf("%dx%d", m, n)
	var cells []Cell
	for _, scen := range DegradedScenarios() {
		scen := scen
		for _, procs := range []int{4, 8} {
			for _, strat := range harness.Methods(prof) {
				cells = append(cells, Cell{
					ID: CellID(prof.Name, fmt.Sprintf("%s+%s", label, scen.Name), procs, strat.Name()),
					Experiment: harness.Experiment{
						Platform: prof,
						M:        m,
						N:        n,
						Procs:    procs,
						Overlap:  ScalingOverlap,
						Pattern:  harness.ColumnWise,
						Strategy: strat,
						Scenario: &scen,
					},
				})
			}
		}
	}
	return cells
}

// DegradedSmokeCell returns the smallest cell of the degraded grid that
// actually perturbs a server — the cell CI's bench-smoke job runs.
func DegradedSmokeCell() Cell {
	for _, cell := range DegradedGrid() {
		if cell.Experiment.Scenario.Perturbs() && cell.Experiment.Procs == 4 {
			return cell
		}
	}
	panic("runner: degraded grid has no perturbing cell")
}
