package runner

import (
	"strings"
	"testing"

	"atomio/internal/core"
	"atomio/internal/harness"
)

// TestFigure8GridShape pins the canonical evaluation grid: 3 sizes × 3
// platforms × 3 process counts, with locking absent on Cplant (2 strategies
// there, 3 elsewhere) — 72 cells with unique panel-layout IDs.
func TestFigure8GridShape(t *testing.T) {
	cells := Figure8Grid().Cells()
	if len(cells) != 72 {
		t.Fatalf("got %d cells, want 72", len(cells))
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.ID] {
			t.Errorf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
		if strings.HasPrefix(c.ID, "Cplant/") && strings.HasSuffix(c.ID, "/locking") {
			t.Errorf("Cplant cell %s uses locking", c.ID)
		}
		if c.Experiment.M != harness.Figure8M || c.Experiment.Overlap != harness.Figure8Overlap {
			t.Errorf("cell %s has M=%d R=%d", c.ID, c.Experiment.M, c.Experiment.Overlap)
		}
	}
	// The enumeration order is the paper's layout: sizes outermost.
	if !strings.Contains(cells[0].ID, "/32 MB/") {
		t.Errorf("first cell %s is not a 32 MB cell", cells[0].ID)
	}
	if !strings.Contains(cells[len(cells)-1].ID, "/1 GB/") {
		t.Errorf("last cell %s is not a 1 GB cell", cells[len(cells)-1].ID)
	}
}

func TestGridFilters(t *testing.T) {
	g, err := Figure8Grid().WithPlatform("IBM SP")
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.WithSize("32 MB")
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 9 { // 3 procs × 3 strategies
		t.Errorf("filtered grid has %d cells, want 9", len(cells))
	}
	for _, c := range cells {
		if !strings.HasPrefix(c.ID, "IBM SP/32 MB/") {
			t.Errorf("unexpected cell %s", c.ID)
		}
	}
	if _, err := Figure8Grid().WithPlatform("VAX"); err == nil {
		t.Error("WithPlatform(VAX): want error")
	}
	if _, err := Figure8Grid().WithSize("2 GB"); err == nil {
		t.Error("WithSize(2 GB): want error")
	}
}

// TestGridListIO checks listio cells get the atomic vectored-write
// capability their strategy requires.
func TestGridListIO(t *testing.T) {
	g := smallGrid()
	g.Strategies = []core.Strategy{core.RankOrder{}, core.ListIO{}}
	for _, c := range g.Cells() {
		want := c.Experiment.Strategy.Name() == "listio"
		if c.Experiment.AtomicListIO != want {
			t.Errorf("cell %s AtomicListIO=%v, want %v", c.ID, c.Experiment.AtomicListIO, want)
		}
	}
}

func TestScalingGridCells(t *testing.T) {
	cells := ScalingGrid()
	if len(cells) != len(ScalingPoints)*3 {
		t.Fatalf("cells = %d, want %d points x 3 strategies", len(cells), len(ScalingPoints))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
		e := c.Experiment
		if e.N%e.Procs != 0 {
			t.Fatalf("%s: N=%d not divisible by P=%d", c.ID, e.N, e.Procs)
		}
		if w := e.N / e.Procs; ScalingOverlap > w {
			t.Fatalf("%s: overlap %d exceeds partition width %d", c.ID, ScalingOverlap, w)
		}
		if e.StoreData || e.Verify {
			t.Fatalf("%s: scaling cells must run data-less", c.ID)
		}
	}
	// The grid must actually reach P=1024 and thousands of extents/rank.
	var maxP, maxM int
	for _, pt := range ScalingPoints {
		if pt.Procs > maxP {
			maxP = pt.Procs
		}
		if pt.M > maxM {
			maxM = pt.M
		}
	}
	if maxP < 1024 || maxM < 1024 {
		t.Fatalf("scaling points too small: maxP=%d maxM=%d", maxP, maxM)
	}
}

// TestScalingSmallestCellRuns executes the smallest scaling point end to
// end per strategy, so the grid shape is known-runnable (the full grid is
// exercised by the -scale command and BenchmarkScaling).
func TestScalingSmallestCellRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation cell")
	}
	for _, c := range ScalingGrid() {
		e := c.Experiment
		if e.Procs != ScalingPoints[0].Procs {
			continue
		}
		e.M = 128 // shrink rows: same shape, quick run
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if res.Makespan <= 0 || res.BandwidthMBs <= 0 {
			t.Fatalf("%s: degenerate result %+v", c.ID, res)
		}
	}
}

func TestShardSweepGridRuns(t *testing.T) {
	cells := ShardSweepGrid()
	if len(cells) != len(ShardSweepShards) {
		t.Fatalf("cells = %d, want one per shard count %v", len(cells), ShardSweepShards)
	}
	if testing.Short() {
		t.Skip("full simulation cells")
	}
	results := Run(cells, Options{Workers: 2})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	// The sweep's whole point: simulated numbers are invariant in the
	// shard count, and the records carry it.
	recs := Records(results)
	for i, r := range recs {
		if r.LockShards != ShardSweepShards[i] {
			t.Fatalf("record %d lock_shards = %d, want %d", i, r.LockShards, ShardSweepShards[i])
		}
		if r.MakespanNS != recs[0].MakespanNS || r.BandwidthMBs != recs[0].BandwidthMBs {
			t.Fatalf("shard count changed simulated output: %+v vs %+v", r, recs[0])
		}
	}
}

func TestDegradedGridShape(t *testing.T) {
	cells := DegradedGrid()
	// 4 scenarios × 2 process counts × 2 Cplant strategies.
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
		if c.Experiment.Scenario == nil {
			t.Fatalf("cell %s has no scenario", c.ID)
		}
		if !strings.Contains(c.ID, "+"+c.Experiment.Scenario.Name+"/") {
			t.Fatalf("cell %s does not carry scenario %q", c.ID, c.Experiment.Scenario.Name)
		}
	}
	smoke := DegradedSmokeCell()
	if !smoke.Experiment.Scenario.Perturbs() || smoke.Experiment.Procs != 4 {
		t.Fatalf("smoke cell %s is not a smallest perturbing cell", smoke.ID)
	}
}

func TestDegradedSmokeCellRunsWithStats(t *testing.T) {
	cell := DegradedSmokeCell()
	results := Run([]Cell{cell}, Options{Workers: 1})
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	recs := Records(results)
	r := recs[0]
	if r.Scenario == "" || r.Scenario == "healthy" {
		t.Fatalf("smoke record scenario = %q, want a perturbing scenario", r.Scenario)
	}
	if len(r.ServerStats) == 0 {
		t.Fatal("smoke record has no per-server stats columns")
	}
	var bytes int64
	for _, s := range r.ServerStats {
		bytes += s.Bytes
		if s.BusyNS < 0 || s.FreeAtNS < s.BusyNS {
			t.Fatalf("implausible server stat %+v", s)
		}
	}
	if bytes < r.WrittenBytes {
		t.Fatalf("server stats account %d bytes, cell wrote %d", bytes, r.WrittenBytes)
	}
}
