package runner

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"atomio/internal/core"
	"atomio/internal/fileview"
	"atomio/internal/harness"
	"atomio/internal/platform"
)

// smallGrid is a fast multi-cell grid covering all three platforms.
func smallGrid() Grid {
	return Grid{
		Platforms:       platform.All(),
		Sizes:           []Size{{M: 64, N: 256, Label: "16 KB"}},
		Procs:           []int{2, 4},
		Overlap:         4,
		Pattern:         harness.ColumnWise,
		SkipUnsupported: true,
		StoreData:       true,
	}
}

// TestRunOrderDeterministic runs the same grid with one worker and many
// workers: results must arrive in cell order with identical simulated
// metrics — parallelism is a wall-clock optimization only.
func TestRunOrderDeterministic(t *testing.T) {
	cells := smallGrid().Cells()
	if len(cells) < 8 {
		t.Fatalf("want a multi-cell grid, got %d cells", len(cells))
	}
	seq := Run(cells, Options{Workers: 1})
	par := Run(cells, Options{Workers: 8})
	if len(seq) != len(cells) || len(par) != len(cells) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(cells))
	}
	for i := range cells {
		if seq[i].Cell.ID != cells[i].ID || par[i].Cell.ID != cells[i].ID {
			t.Fatalf("result %d out of order: seq=%s par=%s want=%s",
				i, seq[i].Cell.ID, par[i].Cell.ID, cells[i].ID)
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %s failed: seq=%v par=%v", cells[i].ID, seq[i].Err, par[i].Err)
		}
		s, p := seq[i].Result, par[i].Result
		if s.Makespan != p.Makespan || s.WrittenBytes != p.WrittenBytes ||
			math.Abs(s.BandwidthMBs-p.BandwidthMBs) > 1e-12 {
			t.Errorf("cell %s differs across worker counts: seq={%v %d %.6f} par={%v %d %.6f}",
				cells[i].ID, s.Makespan, s.WrittenBytes, s.BandwidthMBs,
				p.Makespan, p.WrittenBytes, p.BandwidthMBs)
		}
	}
}

// TestRunRepeatable runs the same grid twice — once sequentially, once
// concurrently — and requires identical simulated metrics: the determinism
// gate (sim.Gate) makes every cell's virtual timings independent of
// goroutine scheduling, which is what lets `figure8 -workers N` reproduce
// `-workers 1` byte for byte. The grid includes locking cells on both the
// central (Origin2000) and distributed (IBM SP) lock managers.
func TestRunRepeatable(t *testing.T) {
	cells := smallGrid().Cells()
	a := Records(Run(cells, Options{Workers: 1}))
	b := Records(Run(cells, Options{Workers: 8}))
	for i := range a {
		a[i].WallNS, b[i].WallNS = 0, 0 // real time legitimately differs
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("repeat run differs:\n a=%+v\n b=%+v", a, b)
	}
}

// TestRunFailingCellIsolated checks that a failing cell reports its error
// in place while sibling cells still produce results.
func TestRunFailingCellIsolated(t *testing.T) {
	good := harness.Experiment{
		Platform: platform.Origin2000(), M: 64, N: 256, Procs: 2, Overlap: 4,
		Pattern: harness.ColumnWise, Strategy: core.RankOrder{}, StoreData: true,
	}
	bad := good
	bad.Platform = platform.Cplant() // no lock manager
	bad.Strategy = core.Locking{}
	cells := []Cell{
		{ID: "good-0", Experiment: good},
		{ID: "bad", Experiment: bad},
		{ID: "good-1", Experiment: good},
	}
	results := Run(cells, Options{Workers: 3})
	if results[1].Err == nil {
		t.Error("bad cell: want error, got nil")
	}
	if results[1].Result != nil {
		t.Error("bad cell: want nil result alongside error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("sibling %s aborted: %v", results[i].Cell.ID, results[i].Err)
		}
		if results[i].Result == nil || results[i].Result.BandwidthMBs <= 0 {
			t.Errorf("sibling %s missing result", results[i].Cell.ID)
		}
	}
	if err := FirstErr(results); err == nil {
		t.Error("FirstErr: want non-nil")
	}
}

// panicStrategy blows up inside the simulated ranks.
type panicStrategy struct{}

func (panicStrategy) Name() string { return "panic" }
func (panicStrategy) WriteAll(*core.Context, []byte, []fileview.Mapping) error {
	panic("deliberate test panic")
}

// TestRunPanickingCellIsolated checks that a cell whose strategy panics is
// captured as an error without taking down the pool.
func TestRunPanickingCellIsolated(t *testing.T) {
	good := harness.Experiment{
		Platform: platform.Origin2000(), M: 64, N: 256, Procs: 2, Overlap: 4,
		Pattern: harness.ColumnWise, Strategy: core.RankOrder{}, StoreData: true,
	}
	boom := good
	boom.Strategy = panicStrategy{}
	results := Run([]Cell{
		{ID: "boom", Experiment: boom},
		{ID: "good", Experiment: good},
	}, Options{Workers: 2})
	if results[0].Err == nil {
		t.Error("panicking cell: want error, got nil")
	}
	if results[1].Err != nil {
		t.Errorf("sibling failed: %v", results[1].Err)
	}
}

// TestRunProgress checks the progress callback fires once per cell with a
// monotonically increasing done count.
func TestRunProgress(t *testing.T) {
	cells := smallGrid().Cells()
	var mu sync.Mutex
	var calls int
	results := Run(cells, Options{Workers: 4, Progress: func(done, total int, r CellResult) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done != calls {
			t.Errorf("done=%d on call %d", done, calls)
		}
		if total != len(cells) {
			t.Errorf("total=%d, want %d", total, len(cells))
		}
		if r.Cell.ID == "" {
			t.Error("progress delivered empty cell")
		}
	}})
	if calls != len(cells) {
		t.Errorf("progress fired %d times, want %d", calls, len(cells))
	}
	if len(results) != len(cells) {
		t.Errorf("got %d results, want %d", len(results), len(cells))
	}
}

// TestRunEmpty ensures a zero-cell grid is a no-op, not a hang.
func TestRunEmpty(t *testing.T) {
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) returned %d results", len(got))
	}
}
