package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"atomio/internal/obs"
)

// Schema identifies the emitted result format, for future trajectory
// tracking over BENCH_*.json files.
const Schema = "atomio.bench/v1"

// Record is one cell's outcome flattened for machine consumption. Virtual
// times are integer nanoseconds of simulated time; WallNS is real time.
type Record struct {
	ID           string  `json:"id"`
	Platform     string  `json:"platform"`
	M            int     `json:"m"`
	N            int     `json:"n"`
	Procs        int     `json:"procs"`
	Overlap      int     `json:"overlap"`
	Pattern      string  `json:"pattern"`
	Strategy     string  `json:"strategy"`
	Engine       string  `json:"engine"`
	LockShards   int     `json:"lock_shards,omitempty"`
	Servers      int     `json:"servers,omitempty"`
	Scenario     string  `json:"scenario,omitempty"`
	Fault        string  `json:"fault,omitempty"`
	Recovery     bool    `json:"recovery,omitempty"`
	ArrayBytes   int64   `json:"array_bytes"`
	WrittenBytes int64   `json:"written_bytes"`
	MakespanNS   int64   `json:"makespan_ns"`
	BandwidthMBs float64 `json:"bandwidth_mbs"`
	WallNS       int64   `json:"wall_ns"`
	// Messages is the total simulated point-to-point message count
	// (collectives included), from the metrics registry of traced cells
	// (zero when the cell ran without TraceEvents).
	Messages int64 `json:"messages,omitempty"`
	// MaxQueueDepth is the deepest any I/O server queue got during the run
	// (traced cells only).
	MaxQueueDepth int64 `json:"max_queue_depth,omitempty"`
	// LockWaitP50NS and LockWaitP99NS are virtual lock-wait quantiles
	// (request to grant) from the traced histogram, as power-of-two bucket
	// upper bounds (traced locking cells only).
	LockWaitP50NS int64 `json:"lock_wait_p50_ns,omitempty"`
	LockWaitP99NS int64 `json:"lock_wait_p99_ns,omitempty"`
	// Verdict is the atomicity classification of verified cells
	// (serializable / torn / recovered-serializable; empty when the cell
	// did not verify content).
	Verdict string `json:"verdict,omitempty"`
	// Replayed lists the ranks whose write-ahead intents recovery
	// replayed, ascending.
	Replayed []int `json:"replayed,omitempty"`
	// ServerStats is the per-server statistics layer: one entry per
	// simulated I/O server, in server order.
	ServerStats []ServerStat `json:"server_stats,omitempty"`
	Error       string       `json:"error,omitempty"`
}

// ServerStat is one I/O server's traffic and queue occupancy in a record.
type ServerStat struct {
	Server   int   `json:"server"`
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
	// BusyNS is the total virtual service time charged on the server;
	// BusyNS/MakespanNS is the server's queue occupancy.
	BusyNS int64 `json:"busy_ns"`
	// FreeAtNS is the virtual time at which the server's queue drains.
	FreeAtNS int64 `json:"free_at_ns"`
}

// Document wraps records with the schema tag; it is the JSON file layout.
type Document struct {
	Schema  string   `json:"schema"`
	Records []Record `json:"records"`
}

// Records flattens results into records, in grid order. Failed cells carry
// their error string and zero metrics.
func Records(results []CellResult) []Record {
	out := make([]Record, len(results))
	for i, r := range results {
		e := r.Cell.Experiment
		rec := Record{
			ID:         r.Cell.ID,
			Platform:   e.Platform.Name,
			M:          e.M,
			N:          e.N,
			Procs:      e.Procs,
			Overlap:    e.Overlap,
			Pattern:    e.Pattern.String(),
			Strategy:   e.Strategy.Name(),
			Engine:     e.EngineName(),
			LockShards: e.LockShards,
			Servers:    e.Servers,
			Recovery:   e.Recovery,
			WallNS:     r.Wall.Nanoseconds(),
		}
		if e.Scenario != nil {
			rec.Scenario = e.Scenario.Name
		}
		if e.Faults != nil {
			rec.Fault = e.Faults.Name
		}
		if r.Err != nil {
			rec.Error = r.Err.Error()
		} else if r.Result != nil {
			rec.ArrayBytes = r.Result.ArrayBytes
			rec.WrittenBytes = r.Result.WrittenBytes
			rec.MakespanNS = int64(r.Result.Makespan)
			rec.BandwidthMBs = r.Result.BandwidthMBs
			rec.Verdict = string(r.Result.Verdict)
			rec.Replayed = append([]int(nil), r.Result.Replayed...)
			if m := r.Result.Metrics; m != nil {
				rec.Messages = m.Counter(obs.MetricMsgs)
				rec.MaxQueueDepth = m.Gauge(obs.MetricQueueDepth)
				rec.LockWaitP50NS = m.Quantile(obs.MetricLockWait, 0.50)
				rec.LockWaitP99NS = m.Quantile(obs.MetricLockWait, 0.99)
			}
			for _, s := range r.Result.ServerStats {
				rec.ServerStats = append(rec.ServerStats, ServerStat{
					Server:   s.Server,
					Requests: s.Requests,
					Bytes:    s.Bytes,
					BusyNS:   int64(s.Busy),
					FreeAtNS: int64(s.FreeAt),
				})
			}
		}
		out[i] = rec
	}
	return out
}

// WriteJSON emits records as an indented JSON document.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Document{Schema: Schema, Records: recs})
}

// ReadJSON parses a document written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("runner: decoding JSON results: %w", err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("runner: unexpected schema %q (want %q)", doc.Schema, Schema)
	}
	return doc.Records, nil
}

// EmitFiles writes results to the requested paths — JSON, CSV, or both.
// Empty paths are skipped.
func EmitFiles(jsonPath, csvPath string, results []CellResult) error {
	recs := Records(results)
	write := func(path string, emit func(io.Writer, []Record) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f, recs); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonPath, WriteJSON); err != nil {
		return err
	}
	return write(csvPath, WriteCSV)
}

// csvHeader is the CSV column order; it mirrors Record field order. The
// server_stats column packs the per-server entries as
// "server:requests:bytes:busy_ns:free_at_ns" joined by ';'.
var csvHeader = []string{
	"id", "platform", "m", "n", "procs", "overlap", "pattern", "strategy",
	"engine", "lock_shards", "servers", "scenario", "fault", "recovery",
	"array_bytes", "written_bytes", "makespan_ns", "bandwidth_mbs",
	"wall_ns", "verdict", "replayed", "server_stats",
	"messages", "max_queue_depth", "lock_wait_p50_ns", "lock_wait_p99_ns",
	"error",
}

// formatReplayed packs the replayed rank list as ';'-joined integers.
func formatReplayed(ranks []int) string {
	parts := make([]string, len(ranks))
	for i, r := range ranks {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, ";")
}

// parseReplayed is the inverse of formatReplayed.
func parseReplayed(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("runner: replayed rank %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

// formatServerStats packs per-server stats into the CSV cell encoding.
func formatServerStats(stats []ServerStat) string {
	parts := make([]string, len(stats))
	for i, s := range stats {
		parts[i] = fmt.Sprintf("%d:%d:%d:%d:%d",
			s.Server, s.Requests, s.Bytes, s.BusyNS, s.FreeAtNS)
	}
	return strings.Join(parts, ";")
}

// parseServerStats is the inverse of formatServerStats.
func parseServerStats(s string) ([]ServerStat, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]ServerStat, len(parts))
	for i, p := range parts {
		fields := strings.Split(p, ":")
		if len(fields) != 5 {
			return nil, fmt.Errorf("runner: server stat %q has %d fields, want 5", p, len(fields))
		}
		var err error
		get := func(k int) int64 {
			if err != nil {
				return 0
			}
			var v int64
			v, err = strconv.ParseInt(fields[k], 10, 64)
			return v
		}
		out[i] = ServerStat{
			Server:   int(get(0)),
			Requests: get(1),
			Bytes:    get(2),
			BusyNS:   get(3),
			FreeAtNS: get(4),
		}
		if err != nil {
			return nil, fmt.Errorf("runner: server stat %q: %w", p, err)
		}
	}
	return out, nil
}

// WriteCSV emits records as CSV with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.ID, r.Platform,
			strconv.Itoa(r.M), strconv.Itoa(r.N),
			strconv.Itoa(r.Procs), strconv.Itoa(r.Overlap),
			r.Pattern, r.Strategy, r.Engine,
			strconv.Itoa(r.LockShards),
			strconv.Itoa(r.Servers),
			r.Scenario,
			r.Fault,
			strconv.FormatBool(r.Recovery),
			strconv.FormatInt(r.ArrayBytes, 10),
			strconv.FormatInt(r.WrittenBytes, 10),
			strconv.FormatInt(r.MakespanNS, 10),
			strconv.FormatFloat(r.BandwidthMBs, 'g', -1, 64),
			strconv.FormatInt(r.WallNS, 10),
			r.Verdict,
			formatReplayed(r.Replayed),
			formatServerStats(r.ServerStats),
			strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.MaxQueueDepth, 10),
			strconv.FormatInt(r.LockWaitP50NS, 10),
			strconv.FormatInt(r.LockWaitP99NS, 10),
			r.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a file written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("runner: decoding CSV results: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("runner: CSV results missing header")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("runner: CSV header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, name := range csvHeader {
		if rows[0][i] != name {
			return nil, fmt.Errorf("runner: CSV column %d is %q, want %q", i, rows[0][i], name)
		}
	}
	recs := make([]Record, 0, len(rows)-1)
	for n, row := range rows[1:] {
		rec := Record{ID: row[0], Platform: row[1], Pattern: row[6], Strategy: row[7],
			Engine: row[8], Scenario: row[11], Fault: row[12], Verdict: row[19],
			Error: row[26]}
		var err error
		parse := func(i int, dst *int) {
			if err == nil {
				*dst, err = strconv.Atoi(row[i])
			}
		}
		parse64 := func(i int, dst *int64) {
			if err == nil {
				*dst, err = strconv.ParseInt(row[i], 10, 64)
			}
		}
		parse(2, &rec.M)
		parse(3, &rec.N)
		parse(4, &rec.Procs)
		parse(5, &rec.Overlap)
		parse(9, &rec.LockShards)
		parse(10, &rec.Servers)
		if err == nil {
			rec.Recovery, err = strconv.ParseBool(row[13])
		}
		parse64(14, &rec.ArrayBytes)
		parse64(15, &rec.WrittenBytes)
		parse64(16, &rec.MakespanNS)
		if err == nil {
			rec.BandwidthMBs, err = strconv.ParseFloat(row[17], 64)
		}
		parse64(18, &rec.WallNS)
		if err == nil {
			rec.Replayed, err = parseReplayed(row[20])
		}
		if err == nil {
			rec.ServerStats, err = parseServerStats(row[21])
		}
		parse64(22, &rec.Messages)
		parse64(23, &rec.MaxQueueDepth)
		parse64(24, &rec.LockWaitP50NS)
		parse64(25, &rec.LockWaitP99NS)
		if err != nil {
			return nil, fmt.Errorf("runner: CSV row %d: %w", n+2, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
