package runner

import (
	"fmt"

	"atomio/internal/core"
	"atomio/internal/harness"
	"atomio/internal/platform"
	"atomio/internal/sim/fault"
	"atomio/internal/verify"
)

// This file is the failure-injection fleet: a seeded grid of randomized
// (platform × strategy × pattern × fault-script × recovery) cells whose
// verdicts make atomicity-under-failure a swept, machine-checked property.
// Cell 0 is a pinned negative control that is torn by construction; the
// remaining cells are drawn from the seed alone, so a fleet is reproduced
// exactly by (seed, cells) and a failing cell shrinks to a minimal repro
// with Shrink.

// fleetProcs / fleet shapes are deliberately small: a fleet buys coverage
// with cell count, not cell size, and CI sweeps hundreds of cells.
var (
	fleetProcs    = []int{4, 8}
	fleetRowsPer  = []int{8, 16} // M = procs * rowsPer keeps row-wise pieces taller than the overlap
	fleetNs       = []int{512, 1024}
	fleetOverlaps = []int{4, 8}
	fleetPatterns = []harness.Pattern{harness.ColumnWise, harness.RowWise}
)

// fleetServers pins every fleet cell to two I/O servers so generated crash
// windows always target a live server and a single outage damages a large
// stripe share.
const fleetServers = 2

// fleetStrategies are the strategies a fleet samples on a platform: the
// paper's per-platform methods plus two-phase, the strategy whose recovery
// story (partial commits healed by intent replay) the fleet exists to
// sweep.
func fleetStrategies(prof platform.Profile) []core.Strategy {
	return append(harness.Methods(prof), core.TwoPhase{})
}

// fleetID names a fleet cell from its parameters alone, so IDs are stable
// across runs and engines: the usual platform/size/P/strategy layout with
// the fault script, pattern and recovery riding on the size label.
func fleetID(e harness.Experiment) string {
	label := fmt.Sprintf("%dx%d", e.M, e.N)
	if e.Pattern == harness.RowWise {
		label += "+row"
	}
	if e.Faults != nil {
		label += "+" + e.Faults.Name
	}
	if e.Recovery {
		label += "+rec"
	}
	return CellID(e.Platform.Name, label, e.Procs, e.Strategy.Name())
}

// NegativeControlCell is fleet cell 0, pinned on every seed: a server down
// from t=0 under the locking strategy with no recovery. Half the stripes
// are lost, so the verdict is torn by construction — the cell that proves
// the fleet's verifier can fail.
func NegativeControlCell() Cell {
	script := fault.ServerOutage()
	e := harness.Experiment{
		Platform:  platform.Origin2000(),
		M:         32,
		N:         512,
		Procs:     4,
		Overlap:   4,
		Pattern:   harness.ColumnWise,
		Strategy:  core.Locking{},
		Servers:   fleetServers,
		StoreData: true,
		Verify:    true,
		Faults:    &script,
	}
	return Cell{ID: fleetID(e), Experiment: e}
}

// FleetGrid generates the seeded fleet: cell 0 is the pinned negative
// control, and every further cell is drawn from the seed's PRNG stream —
// platform, strategy, pattern, shape, recovery, and a generated fault
// script (always with a positive lease, so lock faults heal by revocation
// instead of wedging the run). The same (seed, cells) pair generates the
// identical grid forever.
func FleetGrid(seed uint64, cells int) []Cell {
	if cells < 1 {
		return nil
	}
	out := make([]Cell, 0, cells)
	out = append(out, NegativeControlCell())
	rng := fault.NewRand(seed)
	profiles := platform.All()
	for len(out) < cells {
		prof := profiles[rng.Intn(len(profiles))]
		strategies := fleetStrategies(prof)
		strat := strategies[rng.Intn(len(strategies))]
		procs := fleetProcs[rng.Intn(len(fleetProcs))]
		name := strat.Name()
		script := fault.Generate(rng.Uint64(), fault.GenParams{
			Servers: fleetServers,
			Ranks:   procs,
			// Lock faults only have observable outcomes where locks are
			// taken; writer crashes are implemented by the strategies
			// that commit data directly from the faulted rank.
			LockFaults:  prof.SupportsLocking() && name == "locking",
			WriterCrash: name == "locking" || name == "twophase",
		})
		e := harness.Experiment{
			Platform:  prof,
			M:         procs * fleetRowsPer[rng.Intn(len(fleetRowsPer))],
			N:         fleetNs[rng.Intn(len(fleetNs))],
			Procs:     procs,
			Overlap:   fleetOverlaps[rng.Intn(len(fleetOverlaps))],
			Pattern:   fleetPatterns[rng.Intn(len(fleetPatterns))],
			Strategy:  strat,
			Servers:   fleetServers,
			StoreData: true,
			Verify:    true,
			Faults:    &script,
			Recovery:  rng.Intn(2) == 1,
		}
		out = append(out, Cell{ID: fleetID(e), Experiment: e})
	}
	return out
}

// FleetGate enforces the fleet's acceptance property over a run's results:
//
//   - every cell must complete and carry a verdict;
//   - every recovery-enabled cell must end serializable or
//     recovered-serializable — no fault class may tear a file past the
//     write-ahead log;
//   - at least one cell must be torn, proving the negative control (and
//     with it the verifier's ability to reject) is present.
//
// Recovery-disabled faulted cells may legitimately be torn; they are the
// fleet's evidence that the faults bite.
func FleetGate(results []CellResult) error {
	torn := 0
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("runner: fleet gate: cell %s failed: %w", r.Cell.ID, r.Err)
		}
		v := r.Result.Verdict
		if v == "" {
			return fmt.Errorf("runner: fleet gate: cell %s has no verdict", r.Cell.ID)
		}
		if r.Cell.Experiment.Recovery && v == verify.Torn {
			return fmt.Errorf("runner: fleet gate: cell %s is torn despite recovery", r.Cell.ID)
		}
		if v == verify.Torn {
			torn++
		}
	}
	if torn == 0 {
		return fmt.Errorf("runner: fleet gate: no torn cell — the negative control did not bite")
	}
	return nil
}

// Shrink reduces a failing fleet cell to a smaller cell that still
// satisfies bad, probing one reduction at a time: drop a fault event, then
// halve processes, rows, columns or overlap. A probe that fails differently
// (or not at all) rejects its reduction. budget bounds the number of probe
// runs; the final cell re-runs under the caller, not here. The returned
// cell's ID reflects the reduced parameters.
func Shrink(cell Cell, bad func(CellResult) bool, budget int) Cell {
	probe := func(c Cell) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return bad(runCell(c))
	}
	for changed := true; changed && budget > 0; {
		changed = false
		if s := cell.Experiment.Faults; s != nil && len(s.Events) > 0 {
			for i := range s.Events {
				reduced := *s
				reduced.Events = append(append([]fault.Event(nil), s.Events[:i]...), s.Events[i+1:]...)
				cand := cell
				cand.Experiment.Faults = &reduced
				if probe(cand) {
					cell = cand
					changed = true
					break
				}
			}
			if changed {
				continue
			}
		}
		for _, reduce := range []func(*harness.Experiment) bool{
			func(e *harness.Experiment) bool {
				if e.Procs <= 2 {
					return false
				}
				e.Procs /= 2
				return true
			},
			func(e *harness.Experiment) bool {
				// Keep row-wise pieces at least one overlap tall.
				if e.M%2 != 0 || e.M/2%e.Procs != 0 || e.M/2/e.Procs < e.Overlap {
					return false
				}
				e.M /= 2
				return true
			},
			func(e *harness.Experiment) bool {
				if e.N%2 != 0 || e.N/2%e.Procs != 0 || e.N/2/e.Procs < e.Overlap {
					return false
				}
				e.N /= 2
				return true
			},
			func(e *harness.Experiment) bool {
				if e.Overlap <= 2 {
					return false
				}
				e.Overlap /= 2
				return true
			},
		} {
			cand := cell
			if !reduce(&cand.Experiment) {
				continue
			}
			if probe(cand) {
				cell = cand
				changed = true
				break
			}
		}
	}
	cell.ID = fleetID(cell.Experiment)
	return cell
}
