package runner

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// runSmall executes a small real grid once per test binary.
func runSmall(t *testing.T) []CellResult {
	t.Helper()
	return Run(smallGrid().Cells(), Options{Workers: 4})
}

func TestRecordsCarryMetrics(t *testing.T) {
	recs := Records(runSmall(t))
	for _, r := range recs {
		if r.Error != "" {
			t.Fatalf("cell %s failed: %s", r.ID, r.Error)
		}
		if r.BandwidthMBs <= 0 || r.MakespanNS <= 0 || r.WrittenBytes <= 0 {
			t.Errorf("cell %s has empty metrics: %+v", r.ID, r)
		}
		if r.ArrayBytes != int64(r.M)*int64(r.N) {
			t.Errorf("cell %s array bytes %d != %d*%d", r.ID, r.ArrayBytes, r.M, r.N)
		}
		if r.Pattern != "column-wise" {
			t.Errorf("cell %s pattern %q", r.ID, r.Pattern)
		}
		if r.Engine != "eventloop" {
			t.Errorf("cell %s engine %q, want the eventloop default", r.ID, r.Engine)
		}
	}
}

// normalize clears the one field that legitimately differs between runs and
// is irrelevant to round-trip fidelity checks against a rewrite.
func normalize(recs []Record) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}

func TestJSONRoundTrip(t *testing.T) {
	recs := Records(runSmall(t))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Schema) {
		t.Errorf("JSON output missing schema tag %q", Schema)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(recs), normalize(back)) {
		t.Errorf("JSON round trip mismatch:\n in=%+v\nout=%+v", recs, back)
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other/v9","records":[]}`)); err == nil {
		t.Error("ReadJSON: want schema mismatch error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	results := runSmall(t)
	// Include a failed cell so the error column round-trips too.
	bad := results[0]
	bad.Cell.ID = "bad"
	bad.Result = nil
	bad.Err = errFake("it broke, badly")
	results = append(results, bad)

	recs := Records(results)
	// A non-default engine name must survive the packed format too.
	recs[0].Engine = "goroutine"
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(recs), normalize(back)) {
		t.Errorf("CSV round trip mismatch:\n in=%+v\nout=%+v", recs, back)
	}
	if back[len(back)-1].Error != "it broke, badly" {
		t.Errorf("error column lost: %+v", back[len(back)-1])
	}

	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("ReadCSV(empty): want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("ReadCSV(bad header): want error")
	}
}

// TestMetricsColumnsRoundTrip runs a traced grid (metrics-only, no event
// retention) and checks the observability columns — messages,
// max_queue_depth and the lock-wait quantiles — are populated from the
// metrics registry and survive both emit formats exactly.
func TestMetricsColumnsRoundTrip(t *testing.T) {
	g := smallGrid()
	g.TraceEvents = true
	g.TraceLimit = -1
	results := Run(g.Cells(), Options{Workers: 4})
	recs := Records(results)

	var sawMessages, sawDepth, sawLockWait bool
	for _, r := range recs {
		if r.Error != "" {
			t.Fatalf("cell %s failed: %s", r.ID, r.Error)
		}
		if r.Messages > 0 {
			sawMessages = true
		}
		if r.MaxQueueDepth > 0 {
			sawDepth = true
		}
		if r.Strategy == "locking" && r.LockWaitP99NS > 0 {
			sawLockWait = true
		}
		if r.LockWaitP50NS > r.LockWaitP99NS {
			t.Errorf("cell %s: p50 %d > p99 %d", r.ID, r.LockWaitP50NS, r.LockWaitP99NS)
		}
	}
	if !sawMessages || !sawDepth || !sawLockWait {
		t.Fatalf("metrics columns never populated: messages=%v depth=%v lockwait=%v",
			sawMessages, sawDepth, sawLockWait)
	}

	var jsonBuf, csvBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, recs); err != nil {
		t.Fatal(err)
	}
	jsonBack, err := ReadJSON(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, jsonBack) {
		t.Error("metrics columns lost in JSON round trip")
	}
	if err := WriteCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	csvBack, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, csvBack) {
		t.Error("metrics columns lost in CSV round trip")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }
