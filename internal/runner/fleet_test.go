package runner

import (
	"bytes"
	"reflect"
	"testing"

	"atomio/internal/harness"
	"atomio/internal/sim/fault"
	"atomio/internal/verify"
)

// TestFleetGridDeterministic pins that the fleet is a pure function of
// (seed, cells): two generations agree cell by cell, and a different seed
// diverges.
func TestFleetGridDeterministic(t *testing.T) {
	a := FleetGrid(7, 40)
	b := FleetGrid(7, 40)
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("fleet sizes %d, %d, want 40", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("cell %d IDs diverge: %q vs %q", i, a[i].ID, b[i].ID)
		}
		if !reflect.DeepEqual(*a[i].Experiment.Faults, *b[i].Experiment.Faults) {
			t.Fatalf("cell %d scripts diverge:\n%+v\n%+v", i, a[i].Experiment.Faults, b[i].Experiment.Faults)
		}
	}
	c := FleetGrid(8, 40)
	same := 0
	for i := range a {
		if a[i].ID == c[i].ID {
			same++
		}
	}
	if same > 20 {
		t.Errorf("seeds 7 and 8 share %d/40 cell IDs; the seed barely matters", same)
	}
}

// TestFleetGridShape checks the structural invariants every fleet cell must
// carry: verification on, materialized bytes, two servers, a fault script
// with a positive lease, and the pinned negative control at cell 0.
func TestFleetGridShape(t *testing.T) {
	cells := FleetGrid(1, 30)
	neg := cells[0]
	if neg.Experiment.Recovery {
		t.Error("negative control has recovery on")
	}
	if neg.Experiment.Faults.Name != "server-outage" {
		t.Errorf("negative control script %q, want server-outage", neg.Experiment.Faults.Name)
	}
	if !reflect.DeepEqual(neg, NegativeControlCell()) {
		t.Error("cell 0 is not the pinned negative control")
	}
	seen := make(map[string]bool)
	for i, c := range cells {
		e := c.Experiment
		if !e.Verify || !e.StoreData {
			t.Errorf("cell %d (%s) does not verify content", i, c.ID)
		}
		if e.Servers != fleetServers {
			t.Errorf("cell %d (%s) has %d servers", i, c.ID, e.Servers)
		}
		if e.Faults == nil || (len(e.Faults.Events) > 0 && e.Faults.Lease <= 0 && i != 0) {
			t.Errorf("cell %d (%s) script %+v lacks a lease", i, c.ID, e.Faults)
		}
		if seen[c.ID] {
			t.Errorf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

// TestFleetRunAndGate runs a small fleet end to end: the gate must pass —
// which requires every recovery cell to heal and the negative control to
// tear — and the emitted records must carry fault, recovery and verdict
// columns through a CSV round trip.
func TestFleetRunAndGate(t *testing.T) {
	cells := FleetGrid(3, 10)
	results := Run(cells, Options{Workers: 4})
	if err := FleetGate(results); err != nil {
		for _, r := range results {
			if r.Result != nil {
				t.Logf("%s: %s", r.Cell.ID, r.Result.Verdict)
			}
		}
		t.Fatal(err)
	}
	if results[0].Result.Verdict != verify.Torn {
		t.Fatalf("negative control verdict %q, want torn", results[0].Result.Verdict)
	}

	recs := Records(results)
	for i, rec := range recs {
		if rec.Fault == "" || rec.Verdict == "" {
			t.Errorf("record %d (%s) missing fault/verdict: %+v", i, rec.ID, rec)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, back) {
		t.Errorf("fleet CSV round trip mismatch:\n in=%+v\nout=%+v", recs, back)
	}
}

// TestFleetGateRejects feeds the gate hand-made outcomes it must refuse: a
// torn recovery cell, a missing verdict, and a fleet with no torn cell.
func TestFleetGateRejects(t *testing.T) {
	mk := func(recovery bool, verdict verify.Verdict) CellResult {
		cells := FleetGrid(1, 2)
		c := cells[1]
		c.Experiment.Recovery = recovery
		return CellResult{Cell: c, Result: &harness.Result{Verdict: verdict}}
	}
	if err := FleetGate([]CellResult{mk(true, verify.Torn)}); err == nil {
		t.Error("gate accepted a torn recovery cell")
	}
	if err := FleetGate([]CellResult{mk(false, "")}); err == nil {
		t.Error("gate accepted a cell with no verdict")
	}
	if err := FleetGate([]CellResult{mk(false, verify.Serializable)}); err == nil {
		t.Error("gate accepted a fleet with no torn cell")
	}
}

// TestShrinkDropsIrrelevantEvents starts from the negative control with two
// irrelevant lock-fault events appended and shrinks against "still torn":
// the extra events must fall away while the outage (the actual cause)
// survives.
func TestShrinkDropsIrrelevantEvents(t *testing.T) {
	cell := NegativeControlCell()
	script := *cell.Experiment.Faults
	script.Lease = fault.DefaultLease
	script.Events = append(append([]fault.Event(nil), script.Events...),
		fault.UnlockDupScript().Events...)
	script.Events = append(script.Events, fault.LockReorder().Events...)
	cell.Experiment.Faults = &script

	bad := func(r CellResult) bool {
		return r.Err == nil && r.Result.Verdict == verify.Torn
	}
	if !bad(runCell(cell)) {
		t.Fatal("augmented negative control is not torn; shrink has nothing to do")
	}
	shrunk := Shrink(cell, bad, 30)
	if got := len(shrunk.Experiment.Faults.Events); got != 1 {
		t.Errorf("shrunk script has %d events, want the outage alone: %+v",
			got, shrunk.Experiment.Faults.Events)
	}
	if shrunk.Experiment.Faults.Events[0].Kind != fault.ServerCrash {
		t.Errorf("surviving event %v is not the server crash", shrunk.Experiment.Faults.Events[0])
	}
	if !bad(runCell(shrunk)) {
		t.Error("shrunk cell no longer reproduces the torn verdict")
	}
	if shrunk.Experiment.Procs > cell.Experiment.Procs {
		t.Errorf("shrink grew the cell: %+v", shrunk.Experiment)
	}
}
