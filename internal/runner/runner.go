// Package runner orchestrates grids of experiments: it executes independent
// harness.Experiment cells concurrently on a bounded worker pool, captures
// per-cell errors without aborting sibling cells, preserves deterministic
// result ordering regardless of scheduling, and emits results as JSON or CSV
// for machine consumption.
//
// Every cell is one independent virtual-time simulation, so running cells in
// parallel changes only wall-clock time, never the simulated results: the
// bandwidths produced with N workers are identical to those produced with
// one.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"atomio/internal/harness"
)

// Cell is one experiment of a grid, tagged with a stable identifier.
type Cell struct {
	// ID names the cell, canonically "platform/size/P<procs>/strategy"
	// (the layout used for Figure 8 sub-benchmark names).
	ID string
	// Experiment is the cell's full parameter set.
	Experiment harness.Experiment
}

// CellResult is the outcome of one cell.
type CellResult struct {
	Cell Cell
	// Result is the experiment's outcome; nil when Err is set.
	Result *harness.Result
	// Err is the cell's failure, if any. A failing cell never aborts its
	// siblings; callers inspect each result.
	Err error
	// Wall is the real (not virtual) time the cell took to simulate.
	Wall time.Duration
}

// ProgressFunc observes cell completions. done counts finished cells (1-based),
// total is the grid size. Calls are serialized; completions arrive in
// whatever order cells finish, not grid order.
type ProgressFunc func(done, total int, r CellResult)

// Options configures a Run.
type Options struct {
	// Workers bounds the number of cells simulating concurrently;
	// 0 or negative means runtime.NumCPU().
	Workers int
	// Progress, when non-nil, is invoked after each cell completes.
	Progress ProgressFunc
}

// Run executes every cell and returns results in cell order: results[i]
// always corresponds to cells[i], whatever the execution interleaving. A
// cell that returns an error or panics is captured in its CellResult and
// the remaining cells still run.
func Run(cells []Cell, opts Options) []CellResult {
	results := make([]CellResult, len(cells))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		return results
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes Progress and the done counter
		done int
		jobs = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runCell(cells[i])
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(cells), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runCell executes one cell, converting a panic inside the simulation into
// an ordinary per-cell error so sibling cells keep running.
func runCell(c Cell) (out CellResult) {
	out.Cell = c
	//atomiovet:allow simclock wall_ns measures real host time and is reported beside, never inside, simulated results
	start := time.Now()
	defer func() {
		//atomiovet:allow simclock wall_ns measures real host time and is reported beside, never inside, simulated results
		out.Wall = time.Since(start)
		if p := recover(); p != nil {
			out.Result = nil
			out.Err = fmt.Errorf("runner: cell %s panicked: %v", c.ID, p)
		}
	}()
	out.Result, out.Err = c.Experiment.Run()
	return out
}

// FirstErr returns the first failing result in grid order, or nil.
func FirstErr(results []CellResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Cell.ID, r.Err)
		}
	}
	return nil
}
