// Package fileview implements MPI file views: the (displacement, etype,
// filetype) triple set by MPI_File_set_view that makes the non-contiguous
// regions selected by a derived datatype appear to a process as one linear
// byte stream.
//
// A view tiles its filetype repeatedly starting at the displacement: tile i
// occupies file offsets [Disp + i*Extent(filetype), ...). Mapping a request
// of n bytes walks the tiles' flattened segments in logical order, producing
// the (file extent, buffer offset) pairs an MPI-IO implementation hands to
// the file system.
package fileview

import (
	"fmt"

	"atomio/internal/datatype"
	"atomio/internal/interval"
)

// View is an MPI file view.
type View struct {
	// Disp is the absolute displacement, in bytes, at which the tiling of
	// the filetype begins.
	Disp int64
	// Etype is the elementary unit of the view. Offsets and sizes in MPI
	// I/O calls are expressed in etype units; this repository uses byte
	// etypes throughout, as the paper's Figure 4 code does (MPI_CHAR).
	Etype datatype.Datatype
	// Filetype selects the visible file regions; it is tiled repeatedly.
	Filetype datatype.Datatype
}

// New constructs a view after validating the triple.
func New(disp int64, etype, filetype datatype.Datatype) View {
	if disp < 0 {
		panic(fmt.Sprintf("fileview: negative displacement %d", disp))
	}
	if etype.Size() <= 0 {
		panic("fileview: etype must have positive size")
	}
	if filetype.Size()%etype.Size() != 0 {
		panic(fmt.Sprintf("fileview: filetype size %d not a multiple of etype size %d",
			filetype.Size(), etype.Size()))
	}
	return View{Disp: disp, Etype: etype, Filetype: filetype}
}

// Mapping relates one contiguous file extent to the request-buffer offset
// its bytes stream from (for writes) or into (for reads).
type Mapping struct {
	File interval.Extent
	Buf  int64
}

// Map converts a request of nbytes starting at view position 0 into the
// ordered list of (file extent, buffer offset) pairs. Adjacent file segments
// are coalesced. Map panics if nbytes is negative or if the view's filetype
// selects no bytes while nbytes is positive.
func (v View) Map(nbytes int64) []Mapping { return v.MapAt(0, nbytes) }

// MapAt is Map starting at logical view position start (in bytes of the
// view's linear stream), the position an MPI file pointer would hold after
// writing start bytes through the view.
func (v View) MapAt(start, nbytes int64) []Mapping {
	if start < 0 || nbytes < 0 {
		panic(fmt.Sprintf("fileview: negative request start %d or size %d", start, nbytes))
	}
	if nbytes == 0 {
		return nil
	}
	tileSize := v.Filetype.Size()
	if tileSize <= 0 {
		panic("fileview: request on a view whose filetype selects no bytes")
	}
	flat := v.Filetype.Flatten()
	ext := v.Filetype.Extent()

	var out []Mapping
	var buf int64
	skip := start % tileSize
	remaining := nbytes
	for tile := start / tileSize; remaining > 0; tile++ {
		tileOff := v.Disp + tile*ext
		for _, seg := range flat {
			if remaining <= 0 {
				break
			}
			if skip >= seg.Len {
				skip -= seg.Len
				continue
			}
			seg = interval.Extent{Off: seg.Off + skip, Len: seg.Len - skip}
			skip = 0
			take := seg.Len
			if take > remaining {
				take = remaining
			}
			fe := interval.Extent{Off: tileOff + seg.Off, Len: take}
			if n := len(out); n > 0 && out[n-1].File.End() == fe.Off &&
				out[n-1].Buf+out[n-1].File.Len == buf {
				out[n-1].File.Len += take
			} else {
				out = append(out, Mapping{File: fe, Buf: buf})
			}
			buf += take
			remaining -= take
		}
	}
	return out
}

// Extents returns the physical file extents of a request of nbytes, in
// logical order. The result is ordered and non-overlapping (a valid
// interval.List in canonical order) because filetype segments are increasing
// within a tile and tiles advance monotonically.
func (v View) Extents(nbytes int64) interval.List {
	maps := v.Map(nbytes)
	out := make(interval.List, len(maps))
	for i, m := range maps {
		out[i] = m.File
	}
	return out
}

// Span returns the single extent from the first to the last byte a request
// of nbytes touches — the range the byte-range locking strategy must lock.
// Only the first and last logical byte are mapped (two O(filetype-segment)
// walks), not the full request: a column-wise request of thousands of tiles
// no longer materializes its extent list just to take first-to-last.
func (v View) Span(nbytes int64) interval.Extent {
	if nbytes == 0 {
		return interval.Extent{}
	}
	first := v.MapAt(0, 1)[0].File
	last := v.MapAt(nbytes-1, 1)[0].File
	lo, hi := first.Off, last.End()
	if last.Off < lo {
		lo = last.Off
	}
	if first.End() > hi {
		hi = first.End()
	}
	return interval.Extent{Off: lo, Len: hi - lo}
}

// Contiguous reports whether a request of nbytes maps to a single contiguous
// file extent (the row-wise partitioning case of §3.2, where plain POSIX
// atomicity suffices).
func (v View) Contiguous(nbytes int64) bool {
	return len(v.Map(nbytes)) <= 1
}

// String describes the view.
func (v View) String() string {
	return fmt.Sprintf("view(disp=%d, etype=%s, filetype=%s)", v.Disp, v.Etype, v.Filetype)
}
