package fileview

import (
	"testing"

	"atomio/internal/datatype"
	"atomio/internal/interval"
)

func ext(off, l int64) interval.Extent { return interval.Extent{Off: off, Len: l} }

func TestWholeFileByteView(t *testing.T) {
	v := New(0, datatype.Byte, datatype.NewContiguous(1, datatype.Byte))
	maps := v.Map(100)
	if len(maps) != 1 || maps[0].File != ext(0, 100) || maps[0].Buf != 0 {
		t.Fatalf("whole-file map = %+v", maps)
	}
	if !v.Contiguous(100) {
		t.Fatal("whole-file view should be contiguous")
	}
}

func TestMapZeroBytes(t *testing.T) {
	v := New(0, datatype.Byte, datatype.Byte)
	if got := v.Map(0); got != nil {
		t.Fatalf("Map(0) = %v", got)
	}
}

func TestColumnWiseViewSingleTile(t *testing.T) {
	// 4x12 array, rank owning columns 3..5: the Figure 4 pattern.
	ft := datatype.NewSubarray([]int{4, 12}, []int{4, 3}, []int{0, 3}, datatype.Byte)
	v := New(0, datatype.Byte, ft)
	maps := v.Map(12) // full sub-array: one tile
	wantFile := []interval.Extent{ext(3, 3), ext(15, 3), ext(27, 3), ext(39, 3)}
	if len(maps) != 4 {
		t.Fatalf("maps = %+v", maps)
	}
	for i, m := range maps {
		if m.File != wantFile[i] {
			t.Errorf("segment %d file = %v, want %v", i, m.File, wantFile[i])
		}
		if m.Buf != int64(i*3) {
			t.Errorf("segment %d buf = %d, want %d", i, m.Buf, i*3)
		}
	}
	if v.Contiguous(12) {
		t.Fatal("column-wise view must be non-contiguous")
	}
	if got := v.Span(12); got != ext(3, 39) {
		t.Fatalf("span = %v, want [3,42)", got)
	}
}

func TestMapPartialRequestCutsSegment(t *testing.T) {
	ft := datatype.NewSubarray([]int{2, 8}, []int{2, 4}, []int{0, 0}, datatype.Byte)
	v := New(0, datatype.Byte, ft)
	maps := v.Map(6) // first row (4) + half of second row (2)
	if len(maps) != 2 {
		t.Fatalf("maps = %+v", maps)
	}
	if maps[0].File != ext(0, 4) || maps[1].File != ext(8, 2) {
		t.Fatalf("maps = %+v", maps)
	}
}

func TestMapTilesRepeat(t *testing.T) {
	// Filetype: 2 bytes data in an extent of 8 -> tile i contributes
	// [8i, 8i+2). A 6-byte request needs 3 tiles.
	ft := datatype.NewResized(datatype.NewContiguous(2, datatype.Byte), 8)
	v := New(0, datatype.Byte, ft)
	maps := v.Map(6)
	want := []interval.Extent{ext(0, 2), ext(8, 2), ext(16, 2)}
	if len(maps) != 3 {
		t.Fatalf("maps = %+v", maps)
	}
	for i, m := range maps {
		if m.File != want[i] || m.Buf != int64(2*i) {
			t.Fatalf("maps = %+v, want files %v", maps, want)
		}
	}
}

func TestMapTilesCoalesceAcrossBoundary(t *testing.T) {
	// A dense filetype tiles into one long contiguous run.
	ft := datatype.NewContiguous(4, datatype.Byte)
	v := New(16, datatype.Byte, ft)
	maps := v.Map(12)
	if len(maps) != 1 || maps[0].File != ext(16, 12) {
		t.Fatalf("maps = %+v", maps)
	}
}

func TestDisplacementShiftsEverything(t *testing.T) {
	ft := datatype.NewVector(2, 1, 4, datatype.Byte)
	v := New(1000, datatype.Byte, ft)
	got := v.Extents(2)
	want := interval.List{ext(1000, 1), ext(1004, 1)}
	if !got.Equal(want) {
		t.Fatalf("extents = %v, want %v", got, want)
	}
}

func TestExtentsAreCanonicalOrder(t *testing.T) {
	ft := datatype.NewSubarray([]int{8, 8}, []int{8, 2}, []int{0, 2}, datatype.Byte)
	v := New(0, datatype.Byte, ft)
	exts := v.Extents(16)
	if !exts.IsCanonical() {
		t.Fatalf("extents not canonical: %v", exts)
	}
	if exts.TotalLen() != 16 {
		t.Fatalf("total = %d", exts.TotalLen())
	}
}

func TestMultiTileRequestOfSubarray(t *testing.T) {
	// Writing 2 full tiles of a subarray view appends a second whole-array
	// slab; extent of a subarray = whole array size.
	ft := datatype.NewSubarray([]int{2, 4}, []int{2, 2}, []int{0, 0}, datatype.Byte)
	v := New(0, datatype.Byte, ft)
	got := v.Extents(8)
	want := interval.List{ext(0, 2), ext(4, 2), ext(8, 2), ext(12, 2)}
	if !got.Equal(want) {
		t.Fatalf("extents = %v, want %v", got, want)
	}
}

func TestViewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"negative disp":    func() { New(-1, datatype.Byte, datatype.Byte) },
		"zero etype":       func() { New(0, datatype.Elem{Width: 0, Name: "void"}, datatype.Byte) },
		"etype not divide": func() { New(0, datatype.Elem{Width: 4, Name: "int"}, datatype.NewContiguous(3, datatype.Byte)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMapPanicsOnNegativeAndEmptyFiletype(t *testing.T) {
	v := New(0, datatype.Byte, datatype.Byte)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative nbytes")
			}
		}()
		v.Map(-1)
	}()
	empty := View{Disp: 0, Etype: datatype.Byte, Filetype: datatype.NewContiguous(0, datatype.Byte)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for empty filetype with bytes requested")
			}
		}()
		empty.Map(1)
	}()
}

func TestMapAtResumesMidStream(t *testing.T) {
	// A file pointer mid-way through a tile: MapAt(start, n) must produce
	// exactly the extents Map(start+n) produces after the first start bytes.
	ft := datatype.NewSubarray([]int{4, 8}, []int{4, 3}, []int{0, 2}, datatype.Byte)
	v := New(0, datatype.Byte, ft)
	full := v.Extents(24) // two tiles worth
	for start := int64(0); start <= 20; start += 5 {
		n := int64(24) - start
		got := v.MapAt(start, n)
		var gotExts interval.List
		for _, m := range got {
			gotExts = append(gotExts, m.File)
		}
		// Reference: bytes [start, start+n) of the full mapping.
		var ref interval.List
		var pos int64
		for _, e := range full {
			segStart := pos
			pos += e.Len
			keepLo := start - segStart
			if keepLo < 0 {
				keepLo = 0
			}
			keepHi := start + n - segStart
			if keepHi > e.Len {
				keepHi = e.Len
			}
			if keepHi > keepLo {
				ref = append(ref, interval.Extent{Off: e.Off + keepLo, Len: keepHi - keepLo})
			}
		}
		if !gotExts.Equal(ref) {
			t.Fatalf("MapAt(%d): got %v, want %v", start, gotExts, ref)
		}
		// Buffer offsets must restart at 0 and partition [0, n).
		var expect int64
		for _, m := range got {
			if m.Buf != expect {
				t.Fatalf("MapAt(%d) buf offset %d, want %d", start, m.Buf, expect)
			}
			expect += m.File.Len
		}
	}
}

func TestBufferOffsetsArePerfectPartition(t *testing.T) {
	// Buffer offsets must tile [0, n) exactly, in order.
	ft := datatype.NewSubarray([]int{16, 16}, []int{16, 5}, []int{0, 7}, datatype.Byte)
	v := New(128, datatype.Byte, ft)
	const n = 80
	maps := v.Map(n)
	var expect int64
	for _, m := range maps {
		if m.Buf != expect {
			t.Fatalf("buffer offset %d, want %d", m.Buf, expect)
		}
		expect += m.File.Len
	}
	if expect != n {
		t.Fatalf("mapped %d bytes, want %d", expect, n)
	}
}

// TestSpanMatchesExtentsSpan pins the direct first/last-byte Span against
// the full-materialization definition across view shapes: contiguous,
// strided vectors (with and without a tail gap), displacement, and request
// sizes cutting tiles at every alignment.
func TestSpanMatchesExtentsSpan(t *testing.T) {
	views := []View{
		New(0, datatype.Byte, datatype.NewContiguous(4, datatype.Byte)),
		New(7, datatype.Byte, datatype.NewContiguous(3, datatype.Byte)),
		New(0, datatype.Byte, datatype.NewVector(4, 2, 5, datatype.Byte)),
		New(11, datatype.Byte, datatype.NewVector(3, 3, 8, datatype.Byte)),
		New(2, datatype.Byte, datatype.NewVector(1, 2, 9, datatype.Byte)),
	}
	for _, v := range views {
		tile := v.Filetype.Size()
		for nbytes := int64(0); nbytes <= 4*tile+1; nbytes++ {
			want := v.Extents(nbytes).Span()
			got := v.Span(nbytes)
			if got != want {
				t.Fatalf("%v Span(%d) = %v, want %v", v, nbytes, got, want)
			}
		}
	}
}

// BenchmarkSpan measures Span on a many-tile request; the direct
// computation must not scale with the number of tiles.
func BenchmarkSpan(b *testing.B) {
	v := New(0, datatype.Byte, datatype.NewVector(1, 64, 4096, datatype.Byte))
	const nbytes = 64 * 100000 // 100k tiles
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := v.Span(nbytes); sp.Empty() {
			b.Fatal("empty span")
		}
	}
}
