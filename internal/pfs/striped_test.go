package pfs

// Property tests pinning the per-server striped store to the shared-store
// oracle: on any healthy configuration the two layouts must be observably
// identical — same read bytes, same snapshots, same written extents, same
// file sizes, and byte-identical virtual clocks after every operation.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"atomio/internal/interval"
	"atomio/internal/sim"
)

// oraclePair builds the same file system twice: once on per-server stores,
// once on the shared-store oracle layout.
func oraclePair(servers int, mode StripeMode) (striped, shared *FileSystem) {
	cfg := Config{
		Servers:      servers,
		StripeSize:   16,
		Mode:         mode,
		ServerModel:  sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 1 << 20},
		ClientModel:  sim.LinearCost{Latency: 5 * sim.Microsecond, BytesPerSec: 8 << 20},
		SegOverhead:  sim.Microsecond,
		StoreData:    true,
		AtomicListIO: true,
	}
	ocfg := cfg
	ocfg.SharedStore = true
	return MustNew(cfg), MustNew(ocfg)
}

// TestStripedStoreMatchesSharedOracle drives randomized read/write/listio
// workloads from several client ranks through both layouts for servers ∈
// {1, 4, 7} × both stripe modes, comparing every observable after every
// operation.
func TestStripedStoreMatchesSharedOracle(t *testing.T) {
	const (
		ranks = 5
		span  = 2000
		ops   = 400
	)
	for _, servers := range []int{1, 4, 7} {
		for _, mode := range []StripeMode{RoundRobin, ClientAffinity} {
			t.Run(fmt.Sprintf("S%d/%s", servers, mode), func(t *testing.T) {
				fsS, fsO := oraclePair(servers, mode)
				var cS, cO [ranks]*Client
				var clkS, clkO [ranks]*sim.Clock
				for r := 0; r < ranks; r++ {
					clkS[r], clkO[r] = sim.NewClock(0), sim.NewClock(0)
					var err error
					if cS[r], err = fsS.Open("f", r, clkS[r]); err != nil {
						t.Fatal(err)
					}
					if cO[r], err = fsO.Open("f", r, clkO[r]); err != nil {
						t.Fatal(err)
					}
				}
				rnd := rand.New(rand.NewSource(int64(servers)*31 + int64(mode)))
				randSegs := func(n int) []Segment {
					segs := make([]Segment, n)
					for i := range segs {
						data := make([]byte, 1+rnd.Intn(120))
						rnd.Read(data)
						segs[i] = Segment{Off: int64(rnd.Intn(span)), Data: data}
					}
					return segs
				}
				for op := 0; op < ops; op++ {
					r := rnd.Intn(ranks)
					switch rnd.Intn(5) {
					case 0: // contiguous write
						segs := randSegs(1)
						cS[r].WriteAt(segs[0].Off, segs[0].Data)
						cO[r].WriteAt(segs[0].Off, segs[0].Data)
					case 1: // vectored write
						segs := randSegs(1 + rnd.Intn(3))
						cS[r].WriteV(segs)
						cO[r].WriteV(segs)
					case 2: // atomic listio write
						segs := randSegs(1 + rnd.Intn(3))
						if err := cS[r].WriteVAtomic(segs); err != nil {
							t.Fatal(err)
						}
						if err := cO[r].WriteVAtomic(segs); err != nil {
							t.Fatal(err)
						}
					case 3: // read
						off := int64(rnd.Intn(span))
						bufS := make([]byte, 1+rnd.Intn(300))
						bufO := make([]byte, len(bufS))
						cS[r].ReadAt(off, bufS)
						cO[r].ReadAt(off, bufO)
						if !bytes.Equal(bufS, bufO) {
							t.Fatalf("op %d: read [%d,%d) differs between layouts", op, off, off+int64(len(bufS)))
						}
					case 4: // vectored read
						segsS := randSegs(2)
						segsO := make([]Segment, len(segsS))
						for i, s := range segsS {
							segsS[i].Data = make([]byte, len(s.Data))
							segsO[i] = Segment{Off: s.Off, Data: make([]byte, len(s.Data))}
						}
						cS[r].ReadV(segsS)
						cO[r].ReadV(segsO)
						for i := range segsS {
							if !bytes.Equal(segsS[i].Data, segsO[i].Data) {
								t.Fatalf("op %d: vectored read seg %d differs", op, i)
							}
						}
					}
					if clkS[r].Now() != clkO[r].Now() {
						t.Fatalf("op %d: rank %d clocks diverged: striped %v, shared %v",
							op, r, clkS[r].Now(), clkO[r].Now())
					}
				}
				// Final cross-server merges: extents, size, full snapshot.
				extS, err := fsS.WrittenExtents("f")
				if err != nil {
					t.Fatal(err)
				}
				extO, err := fsO.WrittenExtents("f")
				if err != nil {
					t.Fatal(err)
				}
				if !extS.Equal(extO) {
					t.Fatalf("written extents differ:\nstriped %v\nshared  %v", extS, extO)
				}
				sizeS, _ := fsS.FileSize("f")
				sizeO, _ := fsO.FileSize("f")
				if sizeS != sizeO {
					t.Fatalf("file sizes differ: striped %d, shared %d", sizeS, sizeO)
				}
				full := interval.Extent{Off: 0, Len: span + 256}
				snapS, err := fsS.Snapshot("f", full)
				if err != nil {
					t.Fatal(err)
				}
				snapO, err := fsO.Snapshot("f", full)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snapS, snapO) {
					for i := range snapS {
						if snapS[i] != snapO[i] {
							t.Fatalf("snapshot differs first at byte %d: striped %#x, shared %#x",
								i, snapS[i], snapO[i])
						}
					}
				}
			})
		}
	}
}

// TestAffinityOverwriteAcrossServers pins the cross-server merge read: in
// affinity mode two ranks on different servers write the same range, and a
// reader must see the later write even though both copies exist on
// different servers' stores.
func TestAffinityOverwriteAcrossServers(t *testing.T) {
	fsS, fsO := oraclePair(4, ClientAffinity)
	for _, fs := range []*FileSystem{fsS, fsO} {
		c0, _ := fs.Open("f", 0, sim.NewClock(0)) // server 0
		c1, _ := fs.Open("f", 1, sim.NewClock(0)) // server 1
		c0.WriteAt(10, []byte("aaaaaaaa"))
		c1.WriteAt(12, []byte("bbbb"))
		c0.WriteAt(14, []byte("cc"))
		// Final content: [10,12) from c0's first write, [12,14) from c1,
		// [14,16) from c0's later write, [16,18) from c0's first write.
		const want = "\x00aabbccaa\x00"
		buf := make([]byte, 10)
		c1.ReadAt(9, buf)
		if string(buf) != want {
			t.Fatalf("shared=%v: merged read = %q, want %q", fs.cfg.SharedStore, buf, want)
		}
	}
}

// TestRoundRobinStripesPartitionServers pins storage routing: with the
// striped layout each server's store holds exactly the stripes the
// round-robin map assigns it.
func TestRoundRobinStripesPartitionServers(t *testing.T) {
	fs := MustNew(Config{Servers: 4, StripeSize: 16, StoreData: true})
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, bytes.Repeat([]byte{1}, 64)) // one full stripe per server
	st := fs.files["f"].content.(*stripedStore)
	for i, sv := range st.servers {
		want := interval.List{{Off: int64(i) * 16, Len: 16}}
		if got := sv.written.Extents(); !got.Equal(want) {
			t.Fatalf("server %d stores %v, want %v", i, got, want)
		}
	}
}

// TestAffinitySegRecordsPruned pins the merge-metadata bound: overwriting
// the same range repeatedly must not grow the per-server record index —
// superseded records are pruned on write.
func TestAffinitySegRecordsPruned(t *testing.T) {
	cfg := basicFS(2).Config()
	cfg.Mode = ClientAffinity
	fs := MustNew(cfg)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	for i := 0; i < 100; i++ {
		c.WriteAt(0, bytes.Repeat([]byte{byte(i)}, 64))
	}
	st := fs.files["f"].content.(*stripedStore)
	if n := st.servers[0].segs.Len(); n != 1 {
		t.Fatalf("server 0 holds %d seg records after 100 identical overwrites, want 1", n)
	}
	buf := make([]byte, 64)
	c.ReadAt(0, buf)
	if buf[0] != 99 || buf[63] != 99 {
		t.Fatalf("pruning lost the latest write: %v", buf[:4])
	}
}
