package pfs

import (
	"bytes"
	"reflect"
	"testing"

	"atomio/internal/interval"
	"atomio/internal/sim"
	"atomio/internal/sim/fault"
)

// faultFS builds a 2-server round-robin file system with a small stripe
// and the given script armed.
func faultFS(t *testing.T, script fault.Script, shared bool) *FileSystem {
	t.Helper()
	fs := MustNew(Config{
		Servers:     2,
		StripeSize:  8,
		StoreData:   true,
		WAL:         true,
		SharedStore: shared,
	})
	fs.SetFault(fault.New(script))
	return fs
}

// TestServerCrashDropsStripes pins the drop semantics: with server 0 down
// forever, exactly the stripes homed on server 0 read back as zeros and
// appear in the damage set, for both store layouts.
func TestServerCrashDropsStripes(t *testing.T) {
	for _, shared := range []bool{false, true} {
		fs := faultFS(t, fault.ServerOutage(), shared)
		c, _ := fs.Open("f", 0, sim.NewClock(0))
		data := bytes.Repeat([]byte{7}, 32) // 4 stripes: s0 s1 s0 s1
		c.WriteAt(0, data)

		got, err := fs.Snapshot("f", interval.Extent{Off: 0, Len: 32})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 32)
		copy(want[8:16], data[8:16])   // stripe 1 → server 1
		copy(want[24:32], data[24:32]) // stripe 3 → server 1
		if !bytes.Equal(got, want) {
			t.Errorf("shared=%v: file = % x, want % x", shared, got, want)
		}

		damaged, err := fs.Damaged("f")
		if err != nil {
			t.Fatal(err)
		}
		wantDamage := interval.List{{Off: 0, Len: 8}, {Off: 16, Len: 8}}
		if !reflect.DeepEqual(damaged, wantDamage) {
			t.Errorf("shared=%v: damage = %v, want %v", shared, damaged, wantDamage)
		}
	}
}

// TestServerCrashWindowCloses pins the restart: writes after Until land
// normally.
func TestServerCrashWindowCloses(t *testing.T) {
	fs := faultFS(t, fault.Script{Events: []fault.Event{
		{Kind: fault.ServerCrash, Server: 0, From: 0, Until: 100 * sim.Microsecond},
	}}, false)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, []byte{1, 2, 3, 4}) // dropped: window open at t=0... but client cost advances first
	clk.AdvanceTo(time200())
	c.WriteAt(0, []byte{5, 6, 7, 8}) // window closed
	got, _ := fs.Snapshot("f", interval.Extent{Off: 0, Len: 4})
	if !bytes.Equal(got, []byte{5, 6, 7, 8}) {
		t.Errorf("post-restart write lost: % x", got)
	}
}

func time200() sim.VTime { return 200 * sim.Microsecond }

// TestRecoverReplaysDamagedIntents pins the WAL path: after a crash drops
// rank 1's stripes, Recover replays exactly the ranks whose intents
// intersect the damage, in rank order, and the file heals.
func TestRecoverReplaysDamagedIntents(t *testing.T) {
	fs := faultFS(t, fault.ServerOutage(), false)
	c0, _ := fs.Open("f", 0, sim.NewClock(0))
	c1, _ := fs.Open("f", 1, sim.NewClock(0))

	seg0 := []Segment{{Off: 0, Data: bytes.Repeat([]byte{1}, 16)}}  // stripes 0,1
	seg1 := []Segment{{Off: 16, Data: bytes.Repeat([]byte{2}, 16)}} // stripes 2,3
	if err := fs.LogIntent("f", 0, seg0); err != nil {
		t.Fatal(err)
	}
	if err := fs.LogIntent("f", 1, seg1); err != nil {
		t.Fatal(err)
	}
	c0.WriteV(seg0)
	c1.WriteV(seg1)

	replayed, err := fs.Recover("f")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed = %v, want %v", replayed, want)
	}
	got, _ := fs.Snapshot("f", interval.Extent{Off: 0, Len: 32})
	want := append(bytes.Repeat([]byte{1}, 16), bytes.Repeat([]byte{2}, 16)...)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered file = % x, want % x", got, want)
	}
}

// TestRecoverSkipsUntouchedRanks pins that ranks whose intents do not
// intersect the damage are not replayed.
func TestRecoverSkipsUntouchedRanks(t *testing.T) {
	fs := faultFS(t, fault.Script{Events: []fault.Event{
		{Kind: fault.ServerCrash, Server: 0}, // stripes 0, 2, ... dropped
	}}, false)
	c0, _ := fs.Open("f", 0, sim.NewClock(0))
	c1, _ := fs.Open("f", 1, sim.NewClock(0))

	seg0 := []Segment{{Off: 0, Data: bytes.Repeat([]byte{1}, 8)}} // stripe 0 → dropped
	seg1 := []Segment{{Off: 8, Data: bytes.Repeat([]byte{2}, 8)}} // stripe 1 → survives
	fs.LogIntent("f", 0, seg0)
	fs.LogIntent("f", 1, seg1)
	c0.WriteV(seg0)
	c1.WriteV(seg1)

	replayed, err := fs.Recover("f")
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0}; !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed = %v, want %v", replayed, want)
	}
}

// TestRecoverNoDamage pins that a healthy file recovers to nothing.
func TestRecoverNoDamage(t *testing.T) {
	fs := faultFS(t, fault.Script{}, false)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	seg := []Segment{{Off: 0, Data: []byte{1, 2, 3}}}
	fs.LogIntent("f", 0, seg)
	c.WriteV(seg)
	replayed, err := fs.Recover("f")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != nil {
		t.Fatalf("replayed = %v on a healthy file", replayed)
	}
}

// TestLogIntentDisabled pins that without Config.WAL the log stays empty
// and Recover finds nothing to replay.
func TestLogIntentDisabled(t *testing.T) {
	fs := MustNew(Config{Servers: 2, StripeSize: 8, StoreData: true})
	fs.SetFault(fault.New(fault.ServerOutage()))
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	seg := []Segment{{Off: 0, Data: bytes.Repeat([]byte{1}, 8)}}
	if err := fs.LogIntent("f", 0, seg); err != nil {
		t.Fatal(err)
	}
	c.WriteV(seg)
	replayed, err := fs.Recover("f")
	if err != nil {
		t.Fatal(err)
	}
	if replayed != nil {
		t.Fatalf("replayed = %v with WAL disabled", replayed)
	}
}

// TestDamageAffinityMode pins whole-segment drops in client-affinity mode:
// the faulted rank's home server drops its entire segment.
func TestDamageAffinityMode(t *testing.T) {
	fs := MustNew(Config{Servers: 2, Mode: ClientAffinity, StoreData: true})
	fs.SetFault(fault.New(fault.ServerOutage())) // server 0 = rank 0's home
	c0, _ := fs.Open("f", 0, sim.NewClock(0))
	c1, _ := fs.Open("f", 1, sim.NewClock(0))
	c0.WriteAt(0, bytes.Repeat([]byte{1}, 4))
	c1.WriteAt(4, bytes.Repeat([]byte{2}, 4))
	got, _ := fs.Snapshot("f", interval.Extent{Off: 0, Len: 8})
	want := []byte{0, 0, 0, 0, 2, 2, 2, 2}
	if !bytes.Equal(got, want) {
		t.Errorf("file = % x, want % x", got, want)
	}
	damaged, _ := fs.Damaged("f")
	if want := (interval.List{{Off: 0, Len: 4}}); !reflect.DeepEqual(damaged, want) {
		t.Errorf("damage = %v, want %v", damaged, want)
	}
}

// TestClientDamage pins the writer-crash hook: extents reported through
// Client.Damage join the damage set without being written.
func TestClientDamage(t *testing.T) {
	fs := MustNew(Config{Servers: 2, StripeSize: 8, StoreData: true, WAL: true})
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.Damage(interval.List{{Off: 4, Len: 4}})
	damaged, _ := fs.Damaged("f")
	if want := (interval.List{{Off: 4, Len: 4}}); !reflect.DeepEqual(damaged, want) {
		t.Errorf("damage = %v, want %v", damaged, want)
	}
}
