package pfs

import (
	"sort"

	"atomio/internal/interval"
	"atomio/internal/obs"
	"atomio/internal/sim/fault"
)

// This file is the file system's failure-injection and recovery surface.
//
// Injected server crashes act at the write path: a write piece routed to a
// server whose drop window is open at the piece's virtual time is
// discarded — no bytes stored, no service booked — and its extent is
// recorded in the file's damage set. The decision is a pure function of
// the writing client's own clock and the script, so faulted runs stay
// byte-identical across engines and across the shared and striped store
// layouts (the drop happens before storage routing).
//
// Recovery is the write-ahead/replay path: with Config.WAL on, collective
// writes log their full mapped request per rank before touching the
// servers, and Recover replays — in ascending rank order — every logged
// intent whose extents intersect the damage, writing directly into the
// store (the servers have restarted). Replaying full intents rather than
// clipping to the damage is what keeps the result serializable: the final
// file equals "every non-replayed writer in its original serialization
// order, then the replayed writers in rank order", which is a serial
// schedule of the original requests. Recovery happens after the simulated
// run and charges no virtual time.

// SetFault arms the failure-injection script for this run. Call before the
// run starts (alongside SetCoord); nil disarms.
func (fs *FileSystem) SetFault(in *fault.Injector) { fs.fault = in }

// Fault returns the armed injector, or nil on healthy runs.
func (fs *FileSystem) Fault() *fault.Injector { return fs.fault }

// dropFaulted partitions a write request over its target servers and
// removes the pieces routed to servers that are down at the client's
// current virtual time, recording their extents as damage. Healthy runs
// return segs unchanged.
func (c *Client) dropFaulted(segs []Segment) []Segment {
	in := c.fs.fault
	if in == nil || !in.HasServerFaults() {
		return segs
	}
	now := c.clock.Now()
	out := segs[:0:0]
	var damaged interval.List
	for _, s := range segs {
		n := int64(len(s.Data))
		if n == 0 {
			out = append(out, s)
			continue
		}
		if c.fs.cfg.Mode == ClientAffinity {
			// Affinity mode: the whole segment has one home server.
			if in.ServerDropped(c.fs.serverFor(s.Off, c.rank), now) {
				damaged = append(damaged, interval.Extent{Off: s.Off, Len: n})
			} else {
				out = append(out, s)
			}
			continue
		}
		// Round-robin: split at stripe boundaries with the same piece
		// iterator that routes queueing and storage.
		eachStripePiece(c.fs.cfg.StripeSize, c.fs.cfg.Servers, s.Off, n, func(server int, off, take int64) {
			if in.ServerDropped(server, now) {
				damaged = append(damaged, interval.Extent{Off: off, Len: take})
			} else {
				out = append(out, Segment{Off: off, Data: s.Data[off-s.Off : off-s.Off+take]})
			}
		})
	}
	if len(damaged) > 0 {
		if o := c.fs.obs; o != nil {
			for _, e := range damaged {
				o.Emit(obs.Event{
					T: now, Actor: c.rank, Layer: obs.LayerFault, Kind: obs.KindDrop,
					Peer: -1, Off: e.Off, Len: e.Len,
				})
			}
			o.Count(c.rank, obs.MetricFaultPrefix+obs.KindDrop, int64(len(damaged)))
		}
		c.f.recordDamage(damaged)
	}
	return out
}

// Damage records extents as damaged without writing them — the hook a
// crashed writer's unwritten remainder is reported through, so recovery
// knows which ranks' intents to replay.
func (c *Client) Damage(exts interval.List) {
	if len(exts) == 0 {
		return
	}
	if o := c.fs.obs; o != nil {
		now := c.clock.Now()
		for _, e := range exts {
			o.Emit(obs.Event{
				T: now, Actor: c.rank, Layer: obs.LayerFault, Kind: obs.KindCrash,
				Peer: -1, Off: e.Off, Len: e.Len,
			})
		}
		o.Count(c.rank, obs.MetricFaultPrefix+obs.KindCrash, int64(len(exts)))
	}
	c.f.recordDamage(exts)
}

// recordDamage unions extents into the file's damage set. The set is
// canonical and union is commutative, so the result is independent of the
// real-time order concurrent clients record in.
func (f *file) recordDamage(exts interval.List) {
	f.damageMu.Lock()
	defer f.damageMu.Unlock()
	for _, e := range exts {
		if !e.Empty() {
			f.damage.Add(e)
		}
	}
}

// Damaged returns the canonical list of byte ranges the named file has
// surrendered to injected faults.
func (fs *FileSystem) Damaged(name string) (interval.List, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	f.damageMu.Lock()
	defer f.damageMu.Unlock()
	return f.damage.Extents(), nil
}

// LogIntent appends rank's full mapped write request to the named file's
// write-ahead intent log. Data is copied — the caller's buffers may be
// reused. A no-op unless Config.WAL is on, so healthy configurations pay
// nothing.
func (fs *FileSystem) LogIntent(name string, rank int, segs []Segment) error {
	if !fs.cfg.WAL {
		return nil
	}
	f, err := fs.lookup(name, true)
	if err != nil {
		return err
	}
	f.walMu.Lock()
	defer f.walMu.Unlock()
	if f.intents == nil {
		f.intents = make(map[int][]Segment)
	}
	for _, s := range segs {
		if len(s.Data) == 0 {
			continue
		}
		data := make([]byte, len(s.Data))
		copy(data, s.Data)
		f.intents[rank] = append(f.intents[rank], Segment{Off: s.Off, Data: data})
	}
	return nil
}

// Recover replays the named file's write-ahead log over its fault damage:
// every rank whose logged intents intersect a damaged extent has its full
// intents rewritten, in ascending rank order, directly into the store. It
// returns the replayed ranks (nil when there is no damage or no
// intersecting intent). The log is keyed and ordered by rank, so the
// replay — and therefore the recovered file — is deterministic.
func (fs *FileSystem) Recover(name string) ([]int, error) {
	f, err := fs.lookup(name, false)
	if err != nil {
		return nil, err
	}
	f.damageMu.Lock()
	damaged := f.damage.Extents()
	f.damageMu.Unlock()
	if len(damaged) == 0 {
		return nil, nil
	}
	f.walMu.Lock()
	defer f.walMu.Unlock()
	ranks := make([]int, 0, len(f.intents))
	for rank := range f.intents {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	var replayed []int
	for _, rank := range ranks {
		if !intentsIntersect(f.intents[rank], damaged) {
			continue
		}
		for _, s := range f.intents[rank] {
			f.writeAt(s.Off, s.Data, rank)
		}
		replayed = append(replayed, rank)
	}
	return replayed, nil
}

// intentsIntersect reports whether any logged segment overlaps any damaged
// extent.
func intentsIntersect(segs []Segment, damaged interval.List) bool {
	for _, s := range segs {
		e := interval.Extent{Off: s.Off, Len: int64(len(s.Data))}
		for _, d := range damaged {
			if e.Overlaps(d) {
				return true
			}
		}
	}
	return false
}
