package pfs

import (
	"errors"
	"sort"

	"atomio/internal/obs"
	"atomio/internal/sim"
)

// Segment is one contiguous piece of a vectored request.
type Segment struct {
	Off  int64
	Data []byte
}

// Client is one process's handle to a file. A client is owned by a single
// rank goroutine: it advances that rank's virtual clock as it charges I/O
// time and, when caching is enabled, holds that rank's private cache —
// which is exactly what makes concurrent overlapping I/O interesting.
type Client struct {
	fs    *FileSystem
	f     *file
	clock *sim.Clock
	rank  int
	cache *cache

	bytesWritten int64
	bytesRead    int64

	// inAtomic marks a WriteVAtomic in progress: the client already holds
	// the coordinator turn for the whole call, so inner server bookings
	// must not re-enter the coordinator (the turn is what serializes
	// atomic listio calls).
	inAtomic bool

	// BeforeSegment and AfterSegment, when non-nil, run around each
	// segment of a direct (non-cached) write landing in the file store.
	// Tests use them to force deterministic interleavings of concurrent
	// non-atomic writers — the failure injection behind the Figure 2
	// reproduction. They may block.
	BeforeSegment func(segIndex int)
	AfterSegment  func(segIndex int)
}

// Open returns a client handle for rank on the named file, creating the
// file on first open. The clock is the rank's virtual clock.
func (fs *FileSystem) Open(name string, rank int, clock *sim.Clock) (*Client, error) {
	f, err := fs.lookup(name, true)
	if err != nil {
		return nil, err
	}
	c := &Client{fs: fs, f: f, clock: clock, rank: rank}
	if fs.cfg.Cache.Enabled {
		c.cache = newCache(fs.cfg.Cache, fs.cfg.StoreData)
	}
	return c, nil
}

// Rank returns the owning rank.
func (c *Client) Rank() int { return c.rank }

// BytesWritten returns the total bytes this client has written (through
// cache or directly).
func (c *Client) BytesWritten() int64 { return c.bytesWritten }

// BytesRead returns the total bytes this client has read.
func (c *Client) BytesRead() int64 { return c.bytesRead }

// WriteAt writes one contiguous segment.
func (c *Client) WriteAt(off int64, data []byte) {
	c.WriteV([]Segment{{Off: off, Data: data}})
}

// WriteV writes a vectored request: the lio_listio-style multi-segment
// write the paper discusses in §3.2. With write-behind caching enabled the
// data is absorbed into the client cache at memory cost and reaches the
// servers at the next Sync; otherwise it is transferred immediately.
func (c *Client) WriteV(segs []Segment) {
	var total int64
	for _, s := range segs {
		total += int64(len(s.Data))
	}
	c.bytesWritten += total
	if c.cache != nil && c.fs.cfg.Cache.WriteBehind {
		c.clock.Advance(c.fs.cfg.Cache.MemModel.Cost(total))
		c.cache.absorb(segs)
		return
	}
	c.transferWrite(segs)
}

// transferWrite moves segments to the servers, charging client-side cost
// serially and queueing per-server service on the server pool.
func (c *Client) transferWrite(segs []Segment) {
	var total int64
	for _, s := range segs {
		total += int64(len(s.Data))
	}
	if total == 0 {
		return
	}
	// Client-side: link transfer plus per-extra-segment processing.
	cost := c.fs.cfg.ClientModel.Cost(total)
	if n := len(segs); n > 1 {
		cost += sim.VTime(n-1) * c.fs.cfg.SegOverhead
	}
	c.clock.Advance(cost)

	// Surrender the pieces routed to crashed servers: the client has paid
	// the link cost, but a down server neither stores nor serves them.
	segs = c.dropFaulted(segs)

	// Store the bytes (per segment, so concurrent overlapping writers
	// genuinely interleave in file content).
	for i, s := range segs {
		if c.BeforeSegment != nil {
			c.BeforeSegment(i)
		}
		if len(s.Data) > 0 {
			c.f.writeAt(s.Off, s.Data, c.rank)
		}
		if c.AfterSegment != nil {
			c.AfterSegment(i)
		}
	}

	// Server-side: accumulate service per server and queue it.
	c.queueServerService(segs)
}

// queueServerService books per-server FCFS service for the given segments
// and advances the client clock to the last completion.
func (c *Client) queueServerService(segs []Segment) {
	type load struct {
		bytes int64
		reqs  int64
	}
	loads := make(map[int]*load)
	add := func(server int, n int64) {
		l := loads[server]
		if l == nil {
			l = &load{}
			loads[server] = l
		}
		l.bytes += n
		l.reqs++
	}
	for _, s := range segs {
		n := int64(len(s.Data))
		if n == 0 {
			continue
		}
		if c.fs.cfg.Mode == ClientAffinity {
			add(c.fs.serverFor(s.Off, c.rank), n)
			continue
		}
		// Split the segment at stripe boundaries (the same piece iterator
		// the striped store routes storage with).
		eachStripePiece(c.fs.cfg.StripeSize, c.fs.cfg.Servers, s.Off, n, func(server int, _, take int64) {
			add(server, take)
		})
	}
	now := c.clock.Now()
	if co := c.fs.coord; co != nil && !c.inAtomic {
		// The whole batch books at `now` under one coordinator turn, so
		// concurrent clients hit the per-server FCFS queues in
		// deterministic virtual-time order.
		co.Await(c.rank, now)
	}
	// Book the per-server service in ascending server order: every queue
	// is hit at the same `now`, but a fixed order keeps the booking
	// sequence (and so any tie-breaking inside the queues) deterministic.
	servers := make([]int, 0, len(loads))
	for server := range loads {
		servers = append(servers, server)
	}
	sort.Ints(servers)
	var latest sim.VTime
	for _, server := range servers {
		l := loads[server]
		m := c.fs.serverModel(server)
		svc := sim.VTime(l.reqs)*m.Latency +
			sim.LinearCost{BytesPerSec: m.BytesPerSec}.Cost(l.bytes)
		c.fs.stats[server].requests.Add(l.reqs)
		c.fs.stats[server].bytes.Add(l.bytes)
		start, end := c.fs.servers.Member(server).Acquire(now, svc)
		if o := c.fs.obs; o != nil {
			depth := c.fs.noteBooking(server, now, end)
			o.Emit(obs.Event{
				T: now, Actor: c.rank, Layer: obs.LayerPFS, Kind: obs.KindQueue,
				Peer: server, Size: l.bytes, Aux: depth,
			})
			o.Emit(obs.Event{
				T: start, Actor: c.rank, Layer: obs.LayerPFS, Kind: obs.KindServiceStart,
				Peer: server, Size: l.bytes,
			})
			o.Emit(obs.Event{
				T: end, Actor: c.rank, Layer: obs.LayerPFS, Kind: obs.KindServiceDone,
				Peer: server, Size: l.bytes, Dur: end - start,
			})
			o.Count(c.rank, obs.MetricPFSReqs, l.reqs)
			o.Observe(c.rank, obs.MetricPFSService, int64(end-start))
			o.MaxGauge(c.rank, obs.MetricQueueDepth, depth)
		}
		if end > latest {
			latest = end
		}
	}
	c.clock.AdvanceTo(latest)
}

// ErrNoAtomicListIO is returned by WriteVAtomic on file systems without the
// atomic vectored-write capability.
var ErrNoAtomicListIO = errors.New("pfs: file system does not provide atomic listio")

// WriteVAtomic performs a vectored write that is atomic with respect to
// every other WriteVAtomic on the same file — the lio_listio-with-POSIX-
// atomicity capability of the paper's §3.2. It bypasses the write-behind
// cache (the data must be committed as one unit) and serializes with other
// atomic vectored writes in both real execution and virtual time.
func (c *Client) WriteVAtomic(segs []Segment) error {
	if !c.fs.cfg.AtomicListIO {
		return ErrNoAtomicListIO
	}
	if co := c.fs.coord; co != nil {
		// Take the coordinator turn for the whole atomic call: admission
		// order determines the serialization of atomic vectored writes,
		// and holding the turn keeps listioMu uncontended (a blocked real
		// mutex would deadlock against the coordinator).
		co.Await(c.rank, c.clock.Now())
		c.inAtomic = true
		defer func() { c.inAtomic = false }()
	}
	c.f.listioMu.Lock()
	defer c.f.listioMu.Unlock()
	// Queue behind earlier atomic vectored writes in virtual time.
	c.clock.AdvanceTo(c.f.listioFreeAt)
	var total int64
	for _, s := range segs {
		total += int64(len(s.Data))
	}
	c.bytesWritten += total
	c.transferWrite(segs)
	c.f.listioFreeAt = c.clock.Now()
	return nil
}

// ReadAt fills buf from the file at off. With caching enabled, whole cache
// blocks are fetched (plus read-ahead) and hits are served at memory cost;
// otherwise the read goes straight to the servers.
func (c *Client) ReadAt(off int64, buf []byte) {
	c.bytesRead += int64(len(buf))
	if c.cache != nil {
		c.cache.read(c, off, buf)
		return
	}
	c.transferRead(off, buf)
}

// ReadV reads a vectored request segment by segment.
func (c *Client) ReadV(segs []Segment) {
	for _, s := range segs {
		c.ReadAt(s.Off, s.Data)
	}
}

// transferRead fetches bytes from the servers with full cost accounting.
func (c *Client) transferRead(off int64, buf []byte) {
	if len(buf) == 0 {
		return
	}
	c.clock.Advance(c.fs.cfg.ClientModel.Cost(int64(len(buf))))
	c.f.readAt(off, buf)
	c.queueServerService([]Segment{{Off: off, Data: buf}})
}

// Sync flushes write-behind data to the servers and waits for it, the
// file-sync call the paper requires after every write when handshaking is
// used on a caching file system.
func (c *Client) Sync() {
	if c.cache == nil {
		return
	}
	segs := c.cache.takeDirty()
	if len(segs) == 0 {
		return
	}
	c.transferWrite(segs)
}

// Invalidate discards cached *clean* data so subsequent reads fetch fresh
// bytes from the servers — the cache-invalidation step the paper pairs with
// Sync for the handshaking strategies. Dirty write-behind data is not
// discarded; call Sync first.
func (c *Client) Invalidate() {
	if c.cache != nil {
		c.cache.invalidate()
	}
}

// DirtyBytes returns the amount of write-behind data not yet flushed.
func (c *Client) DirtyBytes() int64 {
	if c.cache == nil {
		return 0
	}
	return c.cache.dirtyBytes
}

// Close flushes any write-behind data and releases the handle.
func (c *Client) Close() error {
	c.Sync()
	return nil
}
