package pfs

import (
	"bytes"
	"testing"

	"atomio/internal/sim"
)

func cachingFS(readAhead int) *FileSystem {
	return MustNew(Config{
		Servers:     2,
		StripeSize:  64,
		ServerModel: sim.LinearCost{Latency: 100 * sim.Microsecond, BytesPerSec: 1 << 20},
		ClientModel: sim.LinearCost{Latency: 10 * sim.Microsecond, BytesPerSec: 8 << 20},
		SegOverhead: sim.Microsecond,
		StoreData:   true,
		Cache: CacheConfig{
			Enabled:         true,
			BlockSize:       64,
			ReadAheadBlocks: readAhead,
			WriteBehind:     true,
			MemModel:        sim.LinearCost{Latency: 100, BytesPerSec: 1 << 30},
		},
	})
}

func TestWriteBehindDefersServerTraffic(t *testing.T) {
	fs := cachingFS(0)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, []byte("deferred"))
	if got := c.DirtyBytes(); got != 8 {
		t.Fatalf("dirty = %d", got)
	}
	ops, _ := fs.Servers().Member(0).Stats()
	if ops != 0 {
		t.Fatal("write-behind write reached servers before sync")
	}
	c.Sync()
	if c.DirtyBytes() != 0 {
		t.Fatal("sync left dirty bytes")
	}
	snap, _ := fs.Snapshot("f", ext(0, 8))
	if string(snap) != "deferred" {
		t.Fatalf("after sync file = %q", snap)
	}
}

func TestWriteBehindCoalescesAdjacentWrites(t *testing.T) {
	fs := cachingFS(0)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	// 16 adjacent 4-byte writes become one 64-byte flush: one server op.
	for i := 0; i < 16; i++ {
		c.WriteAt(int64(4*i), []byte{byte(i), byte(i), byte(i), byte(i)})
	}
	c.Sync()
	ops0, _ := fs.Servers().Member(0).Stats()
	ops1, _ := fs.Servers().Member(1).Stats()
	if ops0+ops1 != 1 {
		t.Fatalf("flush produced %d server ops, want 1", ops0+ops1)
	}
	snap, _ := fs.Snapshot("f", ext(60, 4))
	if !bytes.Equal(snap, []byte{15, 15, 15, 15}) {
		t.Fatalf("coalesced data wrong: %v", snap)
	}
}

func TestWriteBehindLaterWriteWinsOnOverlap(t *testing.T) {
	fs := cachingFS(0)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, []byte("aaaaaaaa"))
	c.WriteAt(2, []byte("BB"))
	c.Sync()
	snap, _ := fs.Snapshot("f", ext(0, 8))
	if string(snap) != "aaBBaaaa" {
		t.Fatalf("overlap resolution = %q", snap)
	}
}

func TestCloseFlushes(t *testing.T) {
	fs := cachingFS(0)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, []byte("bye"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	snap, _ := fs.Snapshot("f", ext(0, 3))
	if string(snap) != "bye" {
		t.Fatalf("close did not flush: %q", snap)
	}
}

func TestReadAheadPrefetches(t *testing.T) {
	fs := cachingFS(4)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, make([]byte, 5*64))
	c.Sync()
	c.Invalidate()

	buf := make([]byte, 8)
	c.ReadAt(0, buf) // miss: fetches block 0 + 4 read-ahead blocks
	t1 := clk.Now()
	c.ReadAt(64, buf) // hit thanks to read-ahead
	t2 := clk.Now()
	c.ReadAt(2*64, buf) // hit
	t3 := clk.Now()

	missCost := t1
	hitCost := t2 - t1
	if hitCost >= missCost/10 {
		t.Fatalf("read-ahead hit (%v) not much cheaper than miss (%v)", hitCost, missCost)
	}
	if t3-t2 != hitCost {
		t.Fatalf("second hit cost %v != first hit cost %v", t3-t2, hitCost)
	}
}

func TestInvalidateForcesRefetch(t *testing.T) {
	fs := cachingFS(0)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, make([]byte, 64))
	c.Sync()

	buf := make([]byte, 8)
	c.ReadAt(0, buf)
	t1 := clk.Now()
	c.ReadAt(0, buf) // cached (the write validated the block)
	hit := clk.Now() - t1
	c.Invalidate()
	t2 := clk.Now()
	c.ReadAt(0, buf) // must refetch
	miss := clk.Now() - t2
	if miss <= hit {
		t.Fatalf("post-invalidate read (%v) should cost more than a hit (%v)", miss, hit)
	}
}

func TestInvalidatePreservesDirtyData(t *testing.T) {
	fs := cachingFS(0)
	c, _ := fs.Open("f", 0, sim.NewClock(0))
	c.WriteAt(0, []byte("keep"))
	c.Invalidate()
	if c.DirtyBytes() != 4 {
		t.Fatal("invalidate dropped dirty data")
	}
	c.Sync()
	snap, _ := fs.Snapshot("f", ext(0, 4))
	if string(snap) != "keep" {
		t.Fatalf("data lost: %q", snap)
	}
}

func TestWriteBehindWithoutStoreData(t *testing.T) {
	cfg := cachingFS(0).Config()
	cfg.StoreData = false
	fs := MustNew(cfg)
	clk := sim.NewClock(0)
	c, _ := fs.Open("f", 0, clk)
	c.WriteAt(0, make([]byte, 128))
	before := clk.Now()
	c.Sync()
	if clk.Now() <= before {
		t.Fatal("dataless sync charged no time")
	}
	size, _ := fs.FileSize("f")
	if size != 128 {
		t.Fatalf("size = %d", size)
	}
}

func TestCacheBlockSizeDefault(t *testing.T) {
	if (CacheConfig{}).blockSize() != 64<<10 {
		t.Fatal("default block size wrong")
	}
}
